file(REMOVE_RECURSE
  "CMakeFiles/mnemo.dir/main.cpp.o"
  "CMakeFiles/mnemo.dir/main.cpp.o.d"
  "mnemo"
  "mnemo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnemo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
