# Empty dependencies file for mnemo.
# This may be replaced when dependencies are built.
