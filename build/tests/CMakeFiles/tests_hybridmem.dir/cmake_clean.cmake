file(REMOVE_RECURSE
  "CMakeFiles/tests_hybridmem.dir/hybridmem/test_hybrid_memory.cpp.o"
  "CMakeFiles/tests_hybridmem.dir/hybridmem/test_hybrid_memory.cpp.o.d"
  "CMakeFiles/tests_hybridmem.dir/hybridmem/test_llc.cpp.o"
  "CMakeFiles/tests_hybridmem.dir/hybridmem/test_llc.cpp.o.d"
  "CMakeFiles/tests_hybridmem.dir/hybridmem/test_memory_node.cpp.o"
  "CMakeFiles/tests_hybridmem.dir/hybridmem/test_memory_node.cpp.o.d"
  "CMakeFiles/tests_hybridmem.dir/hybridmem/test_placement.cpp.o"
  "CMakeFiles/tests_hybridmem.dir/hybridmem/test_placement.cpp.o.d"
  "tests_hybridmem"
  "tests_hybridmem.pdb"
  "tests_hybridmem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_hybridmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
