# Empty compiler generated dependencies file for tests_hybridmem.
# This may be replaced when dependencies are built.
