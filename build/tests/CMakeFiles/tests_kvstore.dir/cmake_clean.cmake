file(REMOVE_RECURSE
  "CMakeFiles/tests_kvstore.dir/kvstore/test_assoc.cpp.o"
  "CMakeFiles/tests_kvstore.dir/kvstore/test_assoc.cpp.o.d"
  "CMakeFiles/tests_kvstore.dir/kvstore/test_btree.cpp.o"
  "CMakeFiles/tests_kvstore.dir/kvstore/test_btree.cpp.o.d"
  "CMakeFiles/tests_kvstore.dir/kvstore/test_dict.cpp.o"
  "CMakeFiles/tests_kvstore.dir/kvstore/test_dict.cpp.o.d"
  "CMakeFiles/tests_kvstore.dir/kvstore/test_dual_server.cpp.o"
  "CMakeFiles/tests_kvstore.dir/kvstore/test_dual_server.cpp.o.d"
  "CMakeFiles/tests_kvstore.dir/kvstore/test_eviction_policy.cpp.o"
  "CMakeFiles/tests_kvstore.dir/kvstore/test_eviction_policy.cpp.o.d"
  "CMakeFiles/tests_kvstore.dir/kvstore/test_journal.cpp.o"
  "CMakeFiles/tests_kvstore.dir/kvstore/test_journal.cpp.o.d"
  "CMakeFiles/tests_kvstore.dir/kvstore/test_service_model.cpp.o"
  "CMakeFiles/tests_kvstore.dir/kvstore/test_service_model.cpp.o.d"
  "CMakeFiles/tests_kvstore.dir/kvstore/test_slab.cpp.o"
  "CMakeFiles/tests_kvstore.dir/kvstore/test_slab.cpp.o.d"
  "CMakeFiles/tests_kvstore.dir/kvstore/test_store_semantics.cpp.o"
  "CMakeFiles/tests_kvstore.dir/kvstore/test_store_semantics.cpp.o.d"
  "CMakeFiles/tests_kvstore.dir/kvstore/test_stores.cpp.o"
  "CMakeFiles/tests_kvstore.dir/kvstore/test_stores.cpp.o.d"
  "CMakeFiles/tests_kvstore.dir/kvstore/test_ttl_scan.cpp.o"
  "CMakeFiles/tests_kvstore.dir/kvstore/test_ttl_scan.cpp.o.d"
  "tests_kvstore"
  "tests_kvstore.pdb"
  "tests_kvstore[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_kvstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
