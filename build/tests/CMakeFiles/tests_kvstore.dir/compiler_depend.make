# Empty compiler generated dependencies file for tests_kvstore.
# This may be replaced when dependencies are built.
