
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/kvstore/test_assoc.cpp" "tests/CMakeFiles/tests_kvstore.dir/kvstore/test_assoc.cpp.o" "gcc" "tests/CMakeFiles/tests_kvstore.dir/kvstore/test_assoc.cpp.o.d"
  "/root/repo/tests/kvstore/test_btree.cpp" "tests/CMakeFiles/tests_kvstore.dir/kvstore/test_btree.cpp.o" "gcc" "tests/CMakeFiles/tests_kvstore.dir/kvstore/test_btree.cpp.o.d"
  "/root/repo/tests/kvstore/test_dict.cpp" "tests/CMakeFiles/tests_kvstore.dir/kvstore/test_dict.cpp.o" "gcc" "tests/CMakeFiles/tests_kvstore.dir/kvstore/test_dict.cpp.o.d"
  "/root/repo/tests/kvstore/test_dual_server.cpp" "tests/CMakeFiles/tests_kvstore.dir/kvstore/test_dual_server.cpp.o" "gcc" "tests/CMakeFiles/tests_kvstore.dir/kvstore/test_dual_server.cpp.o.d"
  "/root/repo/tests/kvstore/test_eviction_policy.cpp" "tests/CMakeFiles/tests_kvstore.dir/kvstore/test_eviction_policy.cpp.o" "gcc" "tests/CMakeFiles/tests_kvstore.dir/kvstore/test_eviction_policy.cpp.o.d"
  "/root/repo/tests/kvstore/test_journal.cpp" "tests/CMakeFiles/tests_kvstore.dir/kvstore/test_journal.cpp.o" "gcc" "tests/CMakeFiles/tests_kvstore.dir/kvstore/test_journal.cpp.o.d"
  "/root/repo/tests/kvstore/test_service_model.cpp" "tests/CMakeFiles/tests_kvstore.dir/kvstore/test_service_model.cpp.o" "gcc" "tests/CMakeFiles/tests_kvstore.dir/kvstore/test_service_model.cpp.o.d"
  "/root/repo/tests/kvstore/test_slab.cpp" "tests/CMakeFiles/tests_kvstore.dir/kvstore/test_slab.cpp.o" "gcc" "tests/CMakeFiles/tests_kvstore.dir/kvstore/test_slab.cpp.o.d"
  "/root/repo/tests/kvstore/test_store_semantics.cpp" "tests/CMakeFiles/tests_kvstore.dir/kvstore/test_store_semantics.cpp.o" "gcc" "tests/CMakeFiles/tests_kvstore.dir/kvstore/test_store_semantics.cpp.o.d"
  "/root/repo/tests/kvstore/test_stores.cpp" "tests/CMakeFiles/tests_kvstore.dir/kvstore/test_stores.cpp.o" "gcc" "tests/CMakeFiles/tests_kvstore.dir/kvstore/test_stores.cpp.o.d"
  "/root/repo/tests/kvstore/test_ttl_scan.cpp" "tests/CMakeFiles/tests_kvstore.dir/kvstore/test_ttl_scan.cpp.o" "gcc" "tests/CMakeFiles/tests_kvstore.dir/kvstore/test_ttl_scan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mnemo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pricing/CMakeFiles/mnemo_pricing.dir/DependInfo.cmake"
  "/root/repo/build/src/kvstore/CMakeFiles/mnemo_kvstore.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mnemo_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/hybridmem/CMakeFiles/mnemo_hybridmem.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mnemo_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mnemo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
