file(REMOVE_RECURSE
  "CMakeFiles/tests_stats.dir/stats/test_cdf_histogram.cpp.o"
  "CMakeFiles/tests_stats.dir/stats/test_cdf_histogram.cpp.o.d"
  "CMakeFiles/tests_stats.dir/stats/test_fenwick.cpp.o"
  "CMakeFiles/tests_stats.dir/stats/test_fenwick.cpp.o.d"
  "CMakeFiles/tests_stats.dir/stats/test_log_histogram.cpp.o"
  "CMakeFiles/tests_stats.dir/stats/test_log_histogram.cpp.o.d"
  "CMakeFiles/tests_stats.dir/stats/test_regression.cpp.o"
  "CMakeFiles/tests_stats.dir/stats/test_regression.cpp.o.d"
  "CMakeFiles/tests_stats.dir/stats/test_summary.cpp.o"
  "CMakeFiles/tests_stats.dir/stats/test_summary.cpp.o.d"
  "tests_stats"
  "tests_stats.pdb"
  "tests_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
