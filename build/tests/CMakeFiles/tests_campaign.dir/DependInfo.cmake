
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_campaign.cpp" "tests/CMakeFiles/tests_campaign.dir/core/test_campaign.cpp.o" "gcc" "tests/CMakeFiles/tests_campaign.dir/core/test_campaign.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mnemo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pricing/CMakeFiles/mnemo_pricing.dir/DependInfo.cmake"
  "/root/repo/build/src/kvstore/CMakeFiles/mnemo_kvstore.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mnemo_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/hybridmem/CMakeFiles/mnemo_hybridmem.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mnemo_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mnemo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
