# Empty dependencies file for tests_campaign.
# This may be replaced when dependencies are built.
