file(REMOVE_RECURSE
  "CMakeFiles/tests_campaign.dir/core/test_campaign.cpp.o"
  "CMakeFiles/tests_campaign.dir/core/test_campaign.cpp.o.d"
  "tests_campaign"
  "tests_campaign.pdb"
  "tests_campaign[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
