
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/workload/test_characterize.cpp" "tests/CMakeFiles/tests_workload.dir/workload/test_characterize.cpp.o" "gcc" "tests/CMakeFiles/tests_workload.dir/workload/test_characterize.cpp.o.d"
  "/root/repo/tests/workload/test_distributions.cpp" "tests/CMakeFiles/tests_workload.dir/workload/test_distributions.cpp.o" "gcc" "tests/CMakeFiles/tests_workload.dir/workload/test_distributions.cpp.o.d"
  "/root/repo/tests/workload/test_downsample.cpp" "tests/CMakeFiles/tests_workload.dir/workload/test_downsample.cpp.o" "gcc" "tests/CMakeFiles/tests_workload.dir/workload/test_downsample.cpp.o.d"
  "/root/repo/tests/workload/test_inserts.cpp" "tests/CMakeFiles/tests_workload.dir/workload/test_inserts.cpp.o" "gcc" "tests/CMakeFiles/tests_workload.dir/workload/test_inserts.cpp.o.d"
  "/root/repo/tests/workload/test_record_size.cpp" "tests/CMakeFiles/tests_workload.dir/workload/test_record_size.cpp.o" "gcc" "tests/CMakeFiles/tests_workload.dir/workload/test_record_size.cpp.o.d"
  "/root/repo/tests/workload/test_spec_file.cpp" "tests/CMakeFiles/tests_workload.dir/workload/test_spec_file.cpp.o" "gcc" "tests/CMakeFiles/tests_workload.dir/workload/test_spec_file.cpp.o.d"
  "/root/repo/tests/workload/test_suite.cpp" "tests/CMakeFiles/tests_workload.dir/workload/test_suite.cpp.o" "gcc" "tests/CMakeFiles/tests_workload.dir/workload/test_suite.cpp.o.d"
  "/root/repo/tests/workload/test_trace.cpp" "tests/CMakeFiles/tests_workload.dir/workload/test_trace.cpp.o" "gcc" "tests/CMakeFiles/tests_workload.dir/workload/test_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mnemo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pricing/CMakeFiles/mnemo_pricing.dir/DependInfo.cmake"
  "/root/repo/build/src/kvstore/CMakeFiles/mnemo_kvstore.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mnemo_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/hybridmem/CMakeFiles/mnemo_hybridmem.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mnemo_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mnemo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
