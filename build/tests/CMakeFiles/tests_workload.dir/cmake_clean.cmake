file(REMOVE_RECURSE
  "CMakeFiles/tests_workload.dir/workload/test_characterize.cpp.o"
  "CMakeFiles/tests_workload.dir/workload/test_characterize.cpp.o.d"
  "CMakeFiles/tests_workload.dir/workload/test_distributions.cpp.o"
  "CMakeFiles/tests_workload.dir/workload/test_distributions.cpp.o.d"
  "CMakeFiles/tests_workload.dir/workload/test_downsample.cpp.o"
  "CMakeFiles/tests_workload.dir/workload/test_downsample.cpp.o.d"
  "CMakeFiles/tests_workload.dir/workload/test_inserts.cpp.o"
  "CMakeFiles/tests_workload.dir/workload/test_inserts.cpp.o.d"
  "CMakeFiles/tests_workload.dir/workload/test_record_size.cpp.o"
  "CMakeFiles/tests_workload.dir/workload/test_record_size.cpp.o.d"
  "CMakeFiles/tests_workload.dir/workload/test_spec_file.cpp.o"
  "CMakeFiles/tests_workload.dir/workload/test_spec_file.cpp.o.d"
  "CMakeFiles/tests_workload.dir/workload/test_suite.cpp.o"
  "CMakeFiles/tests_workload.dir/workload/test_suite.cpp.o.d"
  "CMakeFiles/tests_workload.dir/workload/test_trace.cpp.o"
  "CMakeFiles/tests_workload.dir/workload/test_trace.cpp.o.d"
  "tests_workload"
  "tests_workload.pdb"
  "tests_workload[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
