file(REMOVE_RECURSE
  "CMakeFiles/tests_pricing.dir/pricing/test_pricing.cpp.o"
  "CMakeFiles/tests_pricing.dir/pricing/test_pricing.cpp.o.d"
  "tests_pricing"
  "tests_pricing.pdb"
  "tests_pricing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_pricing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
