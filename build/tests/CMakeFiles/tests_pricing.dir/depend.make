# Empty dependencies file for tests_pricing.
# This may be replaced when dependencies are built.
