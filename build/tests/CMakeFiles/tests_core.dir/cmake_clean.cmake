file(REMOVE_RECURSE
  "CMakeFiles/tests_core.dir/core/test_cost_model.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_cost_model.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_determinism.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_determinism.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_estimate_engine.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_estimate_engine.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_estimate_properties.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_estimate_properties.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_integration.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_integration.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_migration.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_migration.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_mnemo.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_mnemo.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_pattern_engine.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_pattern_engine.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_profilers.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_profilers.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_sensitivity_engine.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_sensitivity_engine.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_slo_advisor.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_slo_advisor.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_tail_estimator.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_tail_estimator.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_tiering.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_tiering.cpp.o.d"
  "tests_core"
  "tests_core.pdb"
  "tests_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
