
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_cost_model.cpp" "tests/CMakeFiles/tests_core.dir/core/test_cost_model.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_cost_model.cpp.o.d"
  "/root/repo/tests/core/test_determinism.cpp" "tests/CMakeFiles/tests_core.dir/core/test_determinism.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_determinism.cpp.o.d"
  "/root/repo/tests/core/test_estimate_engine.cpp" "tests/CMakeFiles/tests_core.dir/core/test_estimate_engine.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_estimate_engine.cpp.o.d"
  "/root/repo/tests/core/test_estimate_properties.cpp" "tests/CMakeFiles/tests_core.dir/core/test_estimate_properties.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_estimate_properties.cpp.o.d"
  "/root/repo/tests/core/test_integration.cpp" "tests/CMakeFiles/tests_core.dir/core/test_integration.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_integration.cpp.o.d"
  "/root/repo/tests/core/test_migration.cpp" "tests/CMakeFiles/tests_core.dir/core/test_migration.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_migration.cpp.o.d"
  "/root/repo/tests/core/test_mnemo.cpp" "tests/CMakeFiles/tests_core.dir/core/test_mnemo.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_mnemo.cpp.o.d"
  "/root/repo/tests/core/test_pattern_engine.cpp" "tests/CMakeFiles/tests_core.dir/core/test_pattern_engine.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_pattern_engine.cpp.o.d"
  "/root/repo/tests/core/test_profilers.cpp" "tests/CMakeFiles/tests_core.dir/core/test_profilers.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_profilers.cpp.o.d"
  "/root/repo/tests/core/test_sensitivity_engine.cpp" "tests/CMakeFiles/tests_core.dir/core/test_sensitivity_engine.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_sensitivity_engine.cpp.o.d"
  "/root/repo/tests/core/test_slo_advisor.cpp" "tests/CMakeFiles/tests_core.dir/core/test_slo_advisor.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_slo_advisor.cpp.o.d"
  "/root/repo/tests/core/test_tail_estimator.cpp" "tests/CMakeFiles/tests_core.dir/core/test_tail_estimator.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_tail_estimator.cpp.o.d"
  "/root/repo/tests/core/test_tiering.cpp" "tests/CMakeFiles/tests_core.dir/core/test_tiering.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_tiering.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mnemo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pricing/CMakeFiles/mnemo_pricing.dir/DependInfo.cmake"
  "/root/repo/build/src/kvstore/CMakeFiles/mnemo_kvstore.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mnemo_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/hybridmem/CMakeFiles/mnemo_hybridmem.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mnemo_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mnemo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
