# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tests_campaign[1]_include.cmake")
include("/root/repo/build/tests/tests_util[1]_include.cmake")
include("/root/repo/build/tests/tests_stats[1]_include.cmake")
include("/root/repo/build/tests/tests_hybridmem[1]_include.cmake")
include("/root/repo/build/tests/tests_workload[1]_include.cmake")
include("/root/repo/build/tests/tests_kvstore[1]_include.cmake")
include("/root/repo/build/tests/tests_core[1]_include.cmake")
include("/root/repo/build/tests/tests_pricing[1]_include.cmake")
include("/root/repo/build/tests/tests_cli[1]_include.cmake")
