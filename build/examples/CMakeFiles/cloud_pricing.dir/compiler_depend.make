# Empty compiler generated dependencies file for cloud_pricing.
# This may be replaced when dependencies are built.
