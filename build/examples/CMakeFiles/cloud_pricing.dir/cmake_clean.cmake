file(REMOVE_RECURSE
  "CMakeFiles/cloud_pricing.dir/cloud_pricing.cpp.o"
  "CMakeFiles/cloud_pricing.dir/cloud_pricing.cpp.o.d"
  "cloud_pricing"
  "cloud_pricing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_pricing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
