# Empty dependencies file for tiering_advisor.
# This may be replaced when dependencies are built.
