file(REMOVE_RECURSE
  "CMakeFiles/downsample_study.dir/downsample_study.cpp.o"
  "CMakeFiles/downsample_study.dir/downsample_study.cpp.o.d"
  "downsample_study"
  "downsample_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/downsample_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
