# Empty dependencies file for downsample_study.
# This may be replaced when dependencies are built.
