# Empty dependencies file for mnemo_cli.
# This may be replaced when dependencies are built.
