file(REMOVE_RECURSE
  "libmnemo_cli.a"
)
