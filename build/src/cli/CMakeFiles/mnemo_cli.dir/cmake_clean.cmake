file(REMOVE_RECURSE
  "CMakeFiles/mnemo_cli.dir/cli.cpp.o"
  "CMakeFiles/mnemo_cli.dir/cli.cpp.o.d"
  "libmnemo_cli.a"
  "libmnemo_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnemo_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
