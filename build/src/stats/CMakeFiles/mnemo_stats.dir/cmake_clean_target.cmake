file(REMOVE_RECURSE
  "libmnemo_stats.a"
)
