# Empty compiler generated dependencies file for mnemo_stats.
# This may be replaced when dependencies are built.
