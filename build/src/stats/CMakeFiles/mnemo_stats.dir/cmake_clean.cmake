file(REMOVE_RECURSE
  "CMakeFiles/mnemo_stats.dir/cdf.cpp.o"
  "CMakeFiles/mnemo_stats.dir/cdf.cpp.o.d"
  "CMakeFiles/mnemo_stats.dir/histogram.cpp.o"
  "CMakeFiles/mnemo_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/mnemo_stats.dir/log_histogram.cpp.o"
  "CMakeFiles/mnemo_stats.dir/log_histogram.cpp.o.d"
  "CMakeFiles/mnemo_stats.dir/regression.cpp.o"
  "CMakeFiles/mnemo_stats.dir/regression.cpp.o.d"
  "CMakeFiles/mnemo_stats.dir/summary.cpp.o"
  "CMakeFiles/mnemo_stats.dir/summary.cpp.o.d"
  "libmnemo_stats.a"
  "libmnemo_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnemo_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
