
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/cdf.cpp" "src/stats/CMakeFiles/mnemo_stats.dir/cdf.cpp.o" "gcc" "src/stats/CMakeFiles/mnemo_stats.dir/cdf.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/stats/CMakeFiles/mnemo_stats.dir/histogram.cpp.o" "gcc" "src/stats/CMakeFiles/mnemo_stats.dir/histogram.cpp.o.d"
  "/root/repo/src/stats/log_histogram.cpp" "src/stats/CMakeFiles/mnemo_stats.dir/log_histogram.cpp.o" "gcc" "src/stats/CMakeFiles/mnemo_stats.dir/log_histogram.cpp.o.d"
  "/root/repo/src/stats/regression.cpp" "src/stats/CMakeFiles/mnemo_stats.dir/regression.cpp.o" "gcc" "src/stats/CMakeFiles/mnemo_stats.dir/regression.cpp.o.d"
  "/root/repo/src/stats/summary.cpp" "src/stats/CMakeFiles/mnemo_stats.dir/summary.cpp.o" "gcc" "src/stats/CMakeFiles/mnemo_stats.dir/summary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mnemo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
