file(REMOVE_RECURSE
  "CMakeFiles/mnemo_workload.dir/characterize.cpp.o"
  "CMakeFiles/mnemo_workload.dir/characterize.cpp.o.d"
  "CMakeFiles/mnemo_workload.dir/downsample.cpp.o"
  "CMakeFiles/mnemo_workload.dir/downsample.cpp.o.d"
  "CMakeFiles/mnemo_workload.dir/key_distribution.cpp.o"
  "CMakeFiles/mnemo_workload.dir/key_distribution.cpp.o.d"
  "CMakeFiles/mnemo_workload.dir/record_size.cpp.o"
  "CMakeFiles/mnemo_workload.dir/record_size.cpp.o.d"
  "CMakeFiles/mnemo_workload.dir/spec_file.cpp.o"
  "CMakeFiles/mnemo_workload.dir/spec_file.cpp.o.d"
  "CMakeFiles/mnemo_workload.dir/suite.cpp.o"
  "CMakeFiles/mnemo_workload.dir/suite.cpp.o.d"
  "CMakeFiles/mnemo_workload.dir/trace.cpp.o"
  "CMakeFiles/mnemo_workload.dir/trace.cpp.o.d"
  "CMakeFiles/mnemo_workload.dir/workload_spec.cpp.o"
  "CMakeFiles/mnemo_workload.dir/workload_spec.cpp.o.d"
  "libmnemo_workload.a"
  "libmnemo_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnemo_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
