file(REMOVE_RECURSE
  "libmnemo_workload.a"
)
