# Empty dependencies file for mnemo_workload.
# This may be replaced when dependencies are built.
