
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/characterize.cpp" "src/workload/CMakeFiles/mnemo_workload.dir/characterize.cpp.o" "gcc" "src/workload/CMakeFiles/mnemo_workload.dir/characterize.cpp.o.d"
  "/root/repo/src/workload/downsample.cpp" "src/workload/CMakeFiles/mnemo_workload.dir/downsample.cpp.o" "gcc" "src/workload/CMakeFiles/mnemo_workload.dir/downsample.cpp.o.d"
  "/root/repo/src/workload/key_distribution.cpp" "src/workload/CMakeFiles/mnemo_workload.dir/key_distribution.cpp.o" "gcc" "src/workload/CMakeFiles/mnemo_workload.dir/key_distribution.cpp.o.d"
  "/root/repo/src/workload/record_size.cpp" "src/workload/CMakeFiles/mnemo_workload.dir/record_size.cpp.o" "gcc" "src/workload/CMakeFiles/mnemo_workload.dir/record_size.cpp.o.d"
  "/root/repo/src/workload/spec_file.cpp" "src/workload/CMakeFiles/mnemo_workload.dir/spec_file.cpp.o" "gcc" "src/workload/CMakeFiles/mnemo_workload.dir/spec_file.cpp.o.d"
  "/root/repo/src/workload/suite.cpp" "src/workload/CMakeFiles/mnemo_workload.dir/suite.cpp.o" "gcc" "src/workload/CMakeFiles/mnemo_workload.dir/suite.cpp.o.d"
  "/root/repo/src/workload/trace.cpp" "src/workload/CMakeFiles/mnemo_workload.dir/trace.cpp.o" "gcc" "src/workload/CMakeFiles/mnemo_workload.dir/trace.cpp.o.d"
  "/root/repo/src/workload/workload_spec.cpp" "src/workload/CMakeFiles/mnemo_workload.dir/workload_spec.cpp.o" "gcc" "src/workload/CMakeFiles/mnemo_workload.dir/workload_spec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mnemo_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mnemo_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
