file(REMOVE_RECURSE
  "CMakeFiles/mnemo_hybridmem.dir/emulation_profile.cpp.o"
  "CMakeFiles/mnemo_hybridmem.dir/emulation_profile.cpp.o.d"
  "CMakeFiles/mnemo_hybridmem.dir/hybrid_memory.cpp.o"
  "CMakeFiles/mnemo_hybridmem.dir/hybrid_memory.cpp.o.d"
  "CMakeFiles/mnemo_hybridmem.dir/llc_model.cpp.o"
  "CMakeFiles/mnemo_hybridmem.dir/llc_model.cpp.o.d"
  "CMakeFiles/mnemo_hybridmem.dir/memory_node.cpp.o"
  "CMakeFiles/mnemo_hybridmem.dir/memory_node.cpp.o.d"
  "CMakeFiles/mnemo_hybridmem.dir/placement.cpp.o"
  "CMakeFiles/mnemo_hybridmem.dir/placement.cpp.o.d"
  "libmnemo_hybridmem.a"
  "libmnemo_hybridmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnemo_hybridmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
