file(REMOVE_RECURSE
  "libmnemo_hybridmem.a"
)
