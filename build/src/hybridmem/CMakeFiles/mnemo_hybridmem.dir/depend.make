# Empty dependencies file for mnemo_hybridmem.
# This may be replaced when dependencies are built.
