
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hybridmem/emulation_profile.cpp" "src/hybridmem/CMakeFiles/mnemo_hybridmem.dir/emulation_profile.cpp.o" "gcc" "src/hybridmem/CMakeFiles/mnemo_hybridmem.dir/emulation_profile.cpp.o.d"
  "/root/repo/src/hybridmem/hybrid_memory.cpp" "src/hybridmem/CMakeFiles/mnemo_hybridmem.dir/hybrid_memory.cpp.o" "gcc" "src/hybridmem/CMakeFiles/mnemo_hybridmem.dir/hybrid_memory.cpp.o.d"
  "/root/repo/src/hybridmem/llc_model.cpp" "src/hybridmem/CMakeFiles/mnemo_hybridmem.dir/llc_model.cpp.o" "gcc" "src/hybridmem/CMakeFiles/mnemo_hybridmem.dir/llc_model.cpp.o.d"
  "/root/repo/src/hybridmem/memory_node.cpp" "src/hybridmem/CMakeFiles/mnemo_hybridmem.dir/memory_node.cpp.o" "gcc" "src/hybridmem/CMakeFiles/mnemo_hybridmem.dir/memory_node.cpp.o.d"
  "/root/repo/src/hybridmem/placement.cpp" "src/hybridmem/CMakeFiles/mnemo_hybridmem.dir/placement.cpp.o" "gcc" "src/hybridmem/CMakeFiles/mnemo_hybridmem.dir/placement.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mnemo_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mnemo_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
