file(REMOVE_RECURSE
  "libmnemo_core.a"
)
