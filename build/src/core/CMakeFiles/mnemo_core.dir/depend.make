# Empty dependencies file for mnemo_core.
# This may be replaced when dependencies are built.
