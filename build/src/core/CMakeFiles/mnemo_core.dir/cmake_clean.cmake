file(REMOVE_RECURSE
  "CMakeFiles/mnemo_core.dir/baselines.cpp.o"
  "CMakeFiles/mnemo_core.dir/baselines.cpp.o.d"
  "CMakeFiles/mnemo_core.dir/campaign.cpp.o"
  "CMakeFiles/mnemo_core.dir/campaign.cpp.o.d"
  "CMakeFiles/mnemo_core.dir/cost_model.cpp.o"
  "CMakeFiles/mnemo_core.dir/cost_model.cpp.o.d"
  "CMakeFiles/mnemo_core.dir/estimate_engine.cpp.o"
  "CMakeFiles/mnemo_core.dir/estimate_engine.cpp.o.d"
  "CMakeFiles/mnemo_core.dir/migration.cpp.o"
  "CMakeFiles/mnemo_core.dir/migration.cpp.o.d"
  "CMakeFiles/mnemo_core.dir/mnemo.cpp.o"
  "CMakeFiles/mnemo_core.dir/mnemo.cpp.o.d"
  "CMakeFiles/mnemo_core.dir/pattern_engine.cpp.o"
  "CMakeFiles/mnemo_core.dir/pattern_engine.cpp.o.d"
  "CMakeFiles/mnemo_core.dir/placement_engine.cpp.o"
  "CMakeFiles/mnemo_core.dir/placement_engine.cpp.o.d"
  "CMakeFiles/mnemo_core.dir/profilers.cpp.o"
  "CMakeFiles/mnemo_core.dir/profilers.cpp.o.d"
  "CMakeFiles/mnemo_core.dir/sensitivity_engine.cpp.o"
  "CMakeFiles/mnemo_core.dir/sensitivity_engine.cpp.o.d"
  "CMakeFiles/mnemo_core.dir/slo_advisor.cpp.o"
  "CMakeFiles/mnemo_core.dir/slo_advisor.cpp.o.d"
  "CMakeFiles/mnemo_core.dir/tail_estimator.cpp.o"
  "CMakeFiles/mnemo_core.dir/tail_estimator.cpp.o.d"
  "CMakeFiles/mnemo_core.dir/tiering.cpp.o"
  "CMakeFiles/mnemo_core.dir/tiering.cpp.o.d"
  "libmnemo_core.a"
  "libmnemo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnemo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
