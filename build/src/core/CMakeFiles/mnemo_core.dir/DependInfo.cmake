
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baselines.cpp" "src/core/CMakeFiles/mnemo_core.dir/baselines.cpp.o" "gcc" "src/core/CMakeFiles/mnemo_core.dir/baselines.cpp.o.d"
  "/root/repo/src/core/campaign.cpp" "src/core/CMakeFiles/mnemo_core.dir/campaign.cpp.o" "gcc" "src/core/CMakeFiles/mnemo_core.dir/campaign.cpp.o.d"
  "/root/repo/src/core/cost_model.cpp" "src/core/CMakeFiles/mnemo_core.dir/cost_model.cpp.o" "gcc" "src/core/CMakeFiles/mnemo_core.dir/cost_model.cpp.o.d"
  "/root/repo/src/core/estimate_engine.cpp" "src/core/CMakeFiles/mnemo_core.dir/estimate_engine.cpp.o" "gcc" "src/core/CMakeFiles/mnemo_core.dir/estimate_engine.cpp.o.d"
  "/root/repo/src/core/migration.cpp" "src/core/CMakeFiles/mnemo_core.dir/migration.cpp.o" "gcc" "src/core/CMakeFiles/mnemo_core.dir/migration.cpp.o.d"
  "/root/repo/src/core/mnemo.cpp" "src/core/CMakeFiles/mnemo_core.dir/mnemo.cpp.o" "gcc" "src/core/CMakeFiles/mnemo_core.dir/mnemo.cpp.o.d"
  "/root/repo/src/core/pattern_engine.cpp" "src/core/CMakeFiles/mnemo_core.dir/pattern_engine.cpp.o" "gcc" "src/core/CMakeFiles/mnemo_core.dir/pattern_engine.cpp.o.d"
  "/root/repo/src/core/placement_engine.cpp" "src/core/CMakeFiles/mnemo_core.dir/placement_engine.cpp.o" "gcc" "src/core/CMakeFiles/mnemo_core.dir/placement_engine.cpp.o.d"
  "/root/repo/src/core/profilers.cpp" "src/core/CMakeFiles/mnemo_core.dir/profilers.cpp.o" "gcc" "src/core/CMakeFiles/mnemo_core.dir/profilers.cpp.o.d"
  "/root/repo/src/core/sensitivity_engine.cpp" "src/core/CMakeFiles/mnemo_core.dir/sensitivity_engine.cpp.o" "gcc" "src/core/CMakeFiles/mnemo_core.dir/sensitivity_engine.cpp.o.d"
  "/root/repo/src/core/slo_advisor.cpp" "src/core/CMakeFiles/mnemo_core.dir/slo_advisor.cpp.o" "gcc" "src/core/CMakeFiles/mnemo_core.dir/slo_advisor.cpp.o.d"
  "/root/repo/src/core/tail_estimator.cpp" "src/core/CMakeFiles/mnemo_core.dir/tail_estimator.cpp.o" "gcc" "src/core/CMakeFiles/mnemo_core.dir/tail_estimator.cpp.o.d"
  "/root/repo/src/core/tiering.cpp" "src/core/CMakeFiles/mnemo_core.dir/tiering.cpp.o" "gcc" "src/core/CMakeFiles/mnemo_core.dir/tiering.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kvstore/CMakeFiles/mnemo_kvstore.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mnemo_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/hybridmem/CMakeFiles/mnemo_hybridmem.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mnemo_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mnemo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
