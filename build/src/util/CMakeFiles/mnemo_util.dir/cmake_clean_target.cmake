file(REMOVE_RECURSE
  "libmnemo_util.a"
)
