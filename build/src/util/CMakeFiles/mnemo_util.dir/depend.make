# Empty dependencies file for mnemo_util.
# This may be replaced when dependencies are built.
