file(REMOVE_RECURSE
  "CMakeFiles/mnemo_util.dir/argparse.cpp.o"
  "CMakeFiles/mnemo_util.dir/argparse.cpp.o.d"
  "CMakeFiles/mnemo_util.dir/ascii_plot.cpp.o"
  "CMakeFiles/mnemo_util.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/mnemo_util.dir/bytes.cpp.o"
  "CMakeFiles/mnemo_util.dir/bytes.cpp.o.d"
  "CMakeFiles/mnemo_util.dir/csv.cpp.o"
  "CMakeFiles/mnemo_util.dir/csv.cpp.o.d"
  "CMakeFiles/mnemo_util.dir/logging.cpp.o"
  "CMakeFiles/mnemo_util.dir/logging.cpp.o.d"
  "CMakeFiles/mnemo_util.dir/table.cpp.o"
  "CMakeFiles/mnemo_util.dir/table.cpp.o.d"
  "CMakeFiles/mnemo_util.dir/thread_pool.cpp.o"
  "CMakeFiles/mnemo_util.dir/thread_pool.cpp.o.d"
  "CMakeFiles/mnemo_util.dir/timer.cpp.o"
  "CMakeFiles/mnemo_util.dir/timer.cpp.o.d"
  "libmnemo_util.a"
  "libmnemo_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnemo_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
