file(REMOVE_RECURSE
  "CMakeFiles/mnemo_kvstore.dir/cachet/assoc.cpp.o"
  "CMakeFiles/mnemo_kvstore.dir/cachet/assoc.cpp.o.d"
  "CMakeFiles/mnemo_kvstore.dir/cachet/cachet.cpp.o"
  "CMakeFiles/mnemo_kvstore.dir/cachet/cachet.cpp.o.d"
  "CMakeFiles/mnemo_kvstore.dir/cachet/slab.cpp.o"
  "CMakeFiles/mnemo_kvstore.dir/cachet/slab.cpp.o.d"
  "CMakeFiles/mnemo_kvstore.dir/dual_server.cpp.o"
  "CMakeFiles/mnemo_kvstore.dir/dual_server.cpp.o.d"
  "CMakeFiles/mnemo_kvstore.dir/dynastore/btree.cpp.o"
  "CMakeFiles/mnemo_kvstore.dir/dynastore/btree.cpp.o.d"
  "CMakeFiles/mnemo_kvstore.dir/dynastore/dynastore.cpp.o"
  "CMakeFiles/mnemo_kvstore.dir/dynastore/dynastore.cpp.o.d"
  "CMakeFiles/mnemo_kvstore.dir/dynastore/journal.cpp.o"
  "CMakeFiles/mnemo_kvstore.dir/dynastore/journal.cpp.o.d"
  "CMakeFiles/mnemo_kvstore.dir/factory.cpp.o"
  "CMakeFiles/mnemo_kvstore.dir/factory.cpp.o.d"
  "CMakeFiles/mnemo_kvstore.dir/kvstore.cpp.o"
  "CMakeFiles/mnemo_kvstore.dir/kvstore.cpp.o.d"
  "CMakeFiles/mnemo_kvstore.dir/record.cpp.o"
  "CMakeFiles/mnemo_kvstore.dir/record.cpp.o.d"
  "CMakeFiles/mnemo_kvstore.dir/service_profile.cpp.o"
  "CMakeFiles/mnemo_kvstore.dir/service_profile.cpp.o.d"
  "CMakeFiles/mnemo_kvstore.dir/vermilion/dict.cpp.o"
  "CMakeFiles/mnemo_kvstore.dir/vermilion/dict.cpp.o.d"
  "CMakeFiles/mnemo_kvstore.dir/vermilion/vermilion.cpp.o"
  "CMakeFiles/mnemo_kvstore.dir/vermilion/vermilion.cpp.o.d"
  "libmnemo_kvstore.a"
  "libmnemo_kvstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnemo_kvstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
