# Empty dependencies file for mnemo_kvstore.
# This may be replaced when dependencies are built.
