
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kvstore/cachet/assoc.cpp" "src/kvstore/CMakeFiles/mnemo_kvstore.dir/cachet/assoc.cpp.o" "gcc" "src/kvstore/CMakeFiles/mnemo_kvstore.dir/cachet/assoc.cpp.o.d"
  "/root/repo/src/kvstore/cachet/cachet.cpp" "src/kvstore/CMakeFiles/mnemo_kvstore.dir/cachet/cachet.cpp.o" "gcc" "src/kvstore/CMakeFiles/mnemo_kvstore.dir/cachet/cachet.cpp.o.d"
  "/root/repo/src/kvstore/cachet/slab.cpp" "src/kvstore/CMakeFiles/mnemo_kvstore.dir/cachet/slab.cpp.o" "gcc" "src/kvstore/CMakeFiles/mnemo_kvstore.dir/cachet/slab.cpp.o.d"
  "/root/repo/src/kvstore/dual_server.cpp" "src/kvstore/CMakeFiles/mnemo_kvstore.dir/dual_server.cpp.o" "gcc" "src/kvstore/CMakeFiles/mnemo_kvstore.dir/dual_server.cpp.o.d"
  "/root/repo/src/kvstore/dynastore/btree.cpp" "src/kvstore/CMakeFiles/mnemo_kvstore.dir/dynastore/btree.cpp.o" "gcc" "src/kvstore/CMakeFiles/mnemo_kvstore.dir/dynastore/btree.cpp.o.d"
  "/root/repo/src/kvstore/dynastore/dynastore.cpp" "src/kvstore/CMakeFiles/mnemo_kvstore.dir/dynastore/dynastore.cpp.o" "gcc" "src/kvstore/CMakeFiles/mnemo_kvstore.dir/dynastore/dynastore.cpp.o.d"
  "/root/repo/src/kvstore/dynastore/journal.cpp" "src/kvstore/CMakeFiles/mnemo_kvstore.dir/dynastore/journal.cpp.o" "gcc" "src/kvstore/CMakeFiles/mnemo_kvstore.dir/dynastore/journal.cpp.o.d"
  "/root/repo/src/kvstore/factory.cpp" "src/kvstore/CMakeFiles/mnemo_kvstore.dir/factory.cpp.o" "gcc" "src/kvstore/CMakeFiles/mnemo_kvstore.dir/factory.cpp.o.d"
  "/root/repo/src/kvstore/kvstore.cpp" "src/kvstore/CMakeFiles/mnemo_kvstore.dir/kvstore.cpp.o" "gcc" "src/kvstore/CMakeFiles/mnemo_kvstore.dir/kvstore.cpp.o.d"
  "/root/repo/src/kvstore/record.cpp" "src/kvstore/CMakeFiles/mnemo_kvstore.dir/record.cpp.o" "gcc" "src/kvstore/CMakeFiles/mnemo_kvstore.dir/record.cpp.o.d"
  "/root/repo/src/kvstore/service_profile.cpp" "src/kvstore/CMakeFiles/mnemo_kvstore.dir/service_profile.cpp.o" "gcc" "src/kvstore/CMakeFiles/mnemo_kvstore.dir/service_profile.cpp.o.d"
  "/root/repo/src/kvstore/vermilion/dict.cpp" "src/kvstore/CMakeFiles/mnemo_kvstore.dir/vermilion/dict.cpp.o" "gcc" "src/kvstore/CMakeFiles/mnemo_kvstore.dir/vermilion/dict.cpp.o.d"
  "/root/repo/src/kvstore/vermilion/vermilion.cpp" "src/kvstore/CMakeFiles/mnemo_kvstore.dir/vermilion/vermilion.cpp.o" "gcc" "src/kvstore/CMakeFiles/mnemo_kvstore.dir/vermilion/vermilion.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hybridmem/CMakeFiles/mnemo_hybridmem.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mnemo_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mnemo_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mnemo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
