file(REMOVE_RECURSE
  "libmnemo_kvstore.a"
)
