file(REMOVE_RECURSE
  "CMakeFiles/mnemo_pricing.dir/catalog.cpp.o"
  "CMakeFiles/mnemo_pricing.dir/catalog.cpp.o.d"
  "CMakeFiles/mnemo_pricing.dir/cost_regression.cpp.o"
  "CMakeFiles/mnemo_pricing.dir/cost_regression.cpp.o.d"
  "libmnemo_pricing.a"
  "libmnemo_pricing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnemo_pricing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
