# Empty compiler generated dependencies file for mnemo_pricing.
# This may be replaced when dependencies are built.
