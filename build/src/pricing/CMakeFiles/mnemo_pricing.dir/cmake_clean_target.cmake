file(REMOVE_RECURSE
  "libmnemo_pricing.a"
)
