# Empty compiler generated dependencies file for fig5_sweeps.
# This may be replaced when dependencies are built.
