file(REMOVE_RECURSE
  "CMakeFiles/fig5_sweeps.dir/fig5_sweeps.cpp.o"
  "CMakeFiles/fig5_sweeps.dir/fig5_sweeps.cpp.o.d"
  "fig5_sweeps"
  "fig5_sweeps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_sweeps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
