file(REMOVE_RECURSE
  "CMakeFiles/fig8_accuracy.dir/fig8_accuracy.cpp.o"
  "CMakeFiles/fig8_accuracy.dir/fig8_accuracy.cpp.o.d"
  "fig8_accuracy"
  "fig8_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
