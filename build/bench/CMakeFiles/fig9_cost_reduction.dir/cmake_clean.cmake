file(REMOVE_RECURSE
  "CMakeFiles/fig9_cost_reduction.dir/fig9_cost_reduction.cpp.o"
  "CMakeFiles/fig9_cost_reduction.dir/fig9_cost_reduction.cpp.o.d"
  "fig9_cost_reduction"
  "fig9_cost_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_cost_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
