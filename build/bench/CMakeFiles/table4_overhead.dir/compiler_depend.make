# Empty compiler generated dependencies file for table4_overhead.
# This may be replaced when dependencies are built.
