# Empty compiler generated dependencies file for fig1_vm_cost.
# This may be replaced when dependencies are built.
