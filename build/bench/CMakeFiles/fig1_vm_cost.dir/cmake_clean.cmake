file(REMOVE_RECURSE
  "CMakeFiles/fig1_vm_cost.dir/fig1_vm_cost.cpp.o"
  "CMakeFiles/fig1_vm_cost.dir/fig1_vm_cost.cpp.o.d"
  "fig1_vm_cost"
  "fig1_vm_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_vm_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
