// Capacity planner: the Fig 9 workflow as a deployable tool.
//
// Given a fleet of workloads, a store architecture, and a performance SLO,
// answer the operator question: "how much DRAM vs NVM should each
// deployment buy, and what does that do to the memory bill?"
//
//   ./capacity_planner [slo_slowdown] [threads] [cache_dir]
//     slo_slowdown defaults to 0.10 (the paper's SLO); threads controls
//     the measurement-campaign fan-out (0 = hardware concurrency);
//     cache_dir (optional) persists the measurement grids, so re-running
//     the planner with a different SLO answers from the artifact cache
//     without a single emulator replay.

#include <cstdio>
#include <cstdlib>

#include "core/campaign.hpp"
#include "core/mnemo.hpp"
#include "core/session.hpp"
#include "kvstore/factory.hpp"
#include "util/bytes.hpp"
#include "util/table.hpp"
#include "workload/suite.hpp"

int main(int argc, char** argv) {
  using namespace mnemo;
  const double slo = argc > 1 ? std::atof(argv[1]) : 0.10;
  const std::size_t threads =
      argc > 2
          ? static_cast<std::size_t>(std::strtoul(argv[2], nullptr, 10))
          : 0;
  const std::string cache_dir = argc > 3 ? argv[3] : "";
  if (slo < 0.0 || slo >= 1.0) {
    std::fprintf(stderr,
                 "usage: %s [slo_slowdown in [0,1)] [threads] [cache_dir]\n",
                 argv[0]);
    return 1;
  }
  std::printf("capacity plan at %.0f%% permissible slowdown, p = 0.2\n\n",
              slo * 100.0);

  util::TablePrinter table({"workload", "store", "DRAM to buy", "NVM to buy",
                            "memory bill", "slowdown", "validated"});

  std::size_t cells_executed = 0;
  for (const kvstore::StoreKind store : kvstore::kAllStoreKinds) {
    core::SessionConfig config;
    config.mnemo.store = store;
    config.mnemo.repeats = 2;
    config.mnemo.threads = threads;
    config.mnemo.slo_slowdown = slo;
    config.mnemo.ordering = core::OrderingPolicy::kTiered;  // MnemoT
    config.cache_dir = cache_dir;
    // validate() needs a direct measurement outside the pipeline; the
    // profiling itself runs through the staged Session.
    const core::MnemoT mnemo(config.mnemo);

    for (const auto& spec : workload::paper_suite()) {
      const workload::Trace trace = workload::Trace::generate(spec);
      core::Session session(trace, config);
      const core::MnemoReport report = session.to_report();
      cells_executed += session.campaign_cells_run();
      if (!report.slo_choice) {
        table.add_row({spec.name, std::string(kvstore::to_string(store)),
                       "-", "-", "-", "-", "SLO unreachable"});
        continue;
      }
      const core::SloChoice& c = *report.slo_choice;
      const std::uint64_t total = trace.dataset_bytes();

      // Validate by executing the advised placement.
      const core::RunMeasurement validated =
          mnemo.validate(trace, report.order, c.point);
      const double real_slowdown =
          1.0 -
          validated.throughput_ops / report.baselines.fast.throughput_ops;

      table.add_row(
          {spec.name, std::string(kvstore::to_string(store)),
           util::format_bytes(c.point.fast_bytes),
           util::format_bytes(total - c.point.fast_bytes),
           util::TablePrinter::pct(c.cost_factor, 0) + " of DRAM-only",
           util::TablePrinter::pct(c.slowdown_vs_fast, 1),
           util::TablePrinter::pct(real_slowdown, 1)});
    }
  }
  table.print();
  std::printf("\ncampaign cells executed for the plan: %zu%s\n",
              cells_executed,
              cache_dir.empty() ? "" : " (0 means fully warm cache)");
  std::printf(
      "'validated' re-executes the advised placement; it should sit at "
      "or under the SLO column.\n\n%s",
      core::campaign_totals().render("campaign totals").c_str());
  return 0;
}
