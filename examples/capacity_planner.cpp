// Capacity planner: the Fig 9 workflow as a deployable tool.
//
// Given a fleet of workloads, a store architecture, and a performance SLO,
// answer the operator question: "how much DRAM vs NVM should each
// deployment buy, and what does that do to the memory bill?"
//
//   ./capacity_planner [slo_slowdown] [threads]
//     slo_slowdown defaults to 0.10 (the paper's SLO); threads controls
//     the measurement-campaign fan-out (0 = hardware concurrency).

#include <cstdio>
#include <cstdlib>

#include "core/campaign.hpp"
#include "core/mnemo.hpp"
#include "core/placement_engine.hpp"
#include "util/bytes.hpp"
#include "util/table.hpp"
#include "workload/suite.hpp"

int main(int argc, char** argv) {
  using namespace mnemo;
  const double slo = argc > 1 ? std::atof(argv[1]) : 0.10;
  const std::size_t threads =
      argc > 2
          ? static_cast<std::size_t>(std::strtoul(argv[2], nullptr, 10))
          : 0;
  if (slo < 0.0 || slo >= 1.0) {
    std::fprintf(stderr, "usage: %s [slo_slowdown in [0,1)] [threads]\n",
                 argv[0]);
    return 1;
  }
  std::printf("capacity plan at %.0f%% permissible slowdown, p = 0.2\n\n",
              slo * 100.0);

  util::TablePrinter table({"workload", "store", "DRAM to buy", "NVM to buy",
                            "memory bill", "slowdown", "validated"});

  for (const kvstore::StoreKind store : kvstore::kAllStoreKinds) {
    core::MnemoConfig config;
    config.store = store;
    config.repeats = 2;
    config.threads = threads;
    config.slo_slowdown = slo;
    config.ordering = core::OrderingPolicy::kTiered;  // MnemoT
    const core::MnemoT mnemo(config);

    for (const auto& spec : workload::paper_suite()) {
      const workload::Trace trace = workload::Trace::generate(spec);
      const core::MnemoReport report = mnemo.profile(trace);
      if (!report.slo_choice) {
        table.add_row({spec.name, std::string(kvstore::to_string(store)),
                       "-", "-", "-", "-", "SLO unreachable"});
        continue;
      }
      const core::SloChoice& c = *report.slo_choice;
      const std::uint64_t total = trace.dataset_bytes();

      // Validate by executing the advised placement.
      const core::RunMeasurement validated =
          mnemo.validate(trace, report.order, c.point);
      const double real_slowdown =
          1.0 -
          validated.throughput_ops / report.baselines.fast.throughput_ops;

      table.add_row(
          {spec.name, std::string(kvstore::to_string(store)),
           util::format_bytes(c.point.fast_bytes),
           util::format_bytes(total - c.point.fast_bytes),
           util::TablePrinter::pct(c.cost_factor, 0) + " of DRAM-only",
           util::TablePrinter::pct(c.slowdown_vs_fast, 1),
           util::TablePrinter::pct(real_slowdown, 1)});
    }
  }
  table.print();
  std::printf(
      "\n'validated' re-executes the advised placement; it should sit at "
      "or under the SLO column.\n\n%s",
      core::campaign_totals().render("campaign totals").c_str());
  return 0;
}
