// Workload downsampling study (paper §V-A "Workload downsampling").
//
// Real request logs run to millions of entries; Mnemo's inputs can be a
// downsized sample as long as the key-popularity structure survives. This
// example downsamples Timeline at several keep-rates, re-profiles, and
// compares the resulting cost/performance advice against the full trace.

//   ./downsample_study [threads]   (0 = hardware concurrency)

#include <cstdio>
#include <cstdlib>

#include "core/campaign.hpp"
#include "core/mnemo.hpp"
#include "util/table.hpp"
#include "workload/downsample.hpp"
#include "workload/suite.hpp"

int main(int argc, char** argv) {
  using namespace mnemo;
  const workload::Trace full =
      workload::Trace::generate(workload::paper_workload("timeline"));

  core::MnemoConfig config;
  config.repeats = 2;
  config.threads =
      argc > 1
          ? static_cast<std::size_t>(std::strtoul(argv[1], nullptr, 10))
          : 0;
  const core::Mnemo mnemo(config);

  const core::MnemoReport full_report = mnemo.profile(full);
  const double full_cost = full_report.slo_choice->cost_factor;

  util::TablePrinter table({"keep rate", "requests", "KS distance",
                            "sensitivity", "SLO cost R(p)",
                            "advice drift vs full"});
  table.add_row(
      {"100% (full)", std::to_string(full.requests().size()), "0.000",
       util::TablePrinter::pct(full_report.baselines.sensitivity(), 1),
       util::TablePrinter::num(full_cost, 3), "-"});

  for (const double keep : {0.5, 0.25, 0.1, 0.05}) {
    const workload::Trace down = workload::downsample(full, keep, 0xd0);
    const double ks = workload::key_distribution_distance(full, down);
    const core::MnemoReport report = mnemo.profile(down);
    const double cost = report.slo_choice ? report.slo_choice->cost_factor
                                          : 1.0;
    char drift[32];
    std::snprintf(drift, sizeof drift, "%+.3f", cost - full_cost);
    table.add_row({util::TablePrinter::pct(keep, 0),
                   std::to_string(down.requests().size()),
                   util::TablePrinter::num(ks, 4),
                   util::TablePrinter::pct(report.baselines.sensitivity(), 1),
                   util::TablePrinter::num(cost, 3), drift});
  }
  table.print();

  std::printf(
      "\nrandom-interval eviction preserves the key-popularity CDF (small "
      "KS distance), so the downsized profile reproduces the full trace's "
      "sensitivity and lands on (nearly) the same sizing advice — the "
      "paper's claim that sampled workloads suffice as Mnemo inputs.\n\n%s",
      core::campaign_totals().render("campaign totals").c_str());
  return 0;
}
