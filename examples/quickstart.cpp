// Quickstart: profile one workload through the staged pipeline.
//
// 1. Describe (or generate) a workload: key sequence + request types +
//    record sizes. Here: the paper's "Trending" workload — hotspot reads
//    of ~100 KB thumbnails.
// 2. Open a core::Session — the consultant as an explicit pipeline:
//    characterize -> measure -> estimate -> advise -> report. Each stage
//    is lazy: asking for the report pulls exactly what it needs, and the
//    measure stage is the only one that touches the emulator.
// 3. Pick the sweet spot: the cheapest configuration within a 10%
//    slowdown SLO, write the paper's 3-column CSV artifact — then ask a
//    second SLO question against the same measured grid for free.

#include <cstdio>

#include "core/session.hpp"
#include "util/bytes.hpp"
#include "util/table.hpp"
#include "workload/suite.hpp"

int main() {
  using namespace mnemo;

  // -- 1. the workload descriptor --------------------------------------
  const workload::WorkloadSpec spec = workload::paper_workload("trending");
  const workload::Trace trace = workload::Trace::generate(spec);
  std::printf("workload: %s (%s)\n", trace.name().c_str(),
              spec.use_case.c_str());
  std::printf("  keys=%llu requests=%zu dataset=%s\n",
              static_cast<unsigned long long>(trace.key_count()),
              trace.requests().size(),
              util::format_bytes(trace.dataset_bytes()).c_str());

  // -- 2. the pipeline session -----------------------------------------
  // Passing a cache_dir here would persist every stage to a
  // content-addressed store, so the next process skips the emulator
  // entirely (try `mnemo run --cache-dir .mnemo-cache`).
  core::SessionConfig config;
  config.mnemo.store = kvstore::StoreKind::kVermilion;  // Redis-like
  config.mnemo.repeats = 2;
  core::Session session(trace, config);

  const core::CharacterizeArtifact& shape = session.characterize();
  std::printf("\ncharacterize: %zu keys ordered by %s\n",
              shape.order.size(), core::to_string(shape.ordering).data());

  const core::MeasureArtifact& grid = session.measure();
  std::printf("measure: %zu campaign cells executed\n",
              session.campaign_cells_run());
  std::printf("  FastMem-only: %.0f ops/s, avg %.1f us\n",
              grid.baselines.fast.throughput_ops,
              grid.baselines.fast.avg_latency_ns / 1e3);
  std::printf("  SlowMem-only: %.0f ops/s, avg %.1f us\n",
              grid.baselines.slow.throughput_ops,
              grid.baselines.slow.avg_latency_ns / 1e3);
  std::printf("  sensitivity: +%.1f%% throughput from FastMem\n",
              grid.baselines.sensitivity() * 100.0);

  // -- 3. the tradeoff curve and the sweet spot ------------------------
  const core::EstimateCurve& curve = session.estimate().curve;
  util::TablePrinter table({"FastMem keys", "FastMem bytes", "cost R(p)",
                            "est. ops/s", "vs FastMem-only"});
  for (const double frac : {0.0, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0}) {
    const auto idx = static_cast<std::size_t>(
        frac * static_cast<double>(curve.points.size() - 1));
    const core::EstimatePoint& p = curve.points[idx];
    table.add_row({std::to_string(p.fast_keys),
                   util::format_bytes(p.fast_bytes),
                   util::TablePrinter::num(p.cost_factor, 3),
                   util::TablePrinter::num(p.est_throughput_ops, 0),
                   util::TablePrinter::pct(p.est_throughput_ops /
                                               grid.baselines.fast
                                                   .throughput_ops -
                                           1.0)});
  }
  std::printf("\nestimate curve (excerpt):\n");
  table.print();

  if (session.advise().result.choice) {
    const core::SloChoice& c = *session.advise().result.choice;
    std::printf(
        "\nsweet spot @ 10%% SLO: %zu keys in FastMem -> memory cost %.0f%% "
        "of FastMem-only (%.0f%% savings), slowdown %.1f%%\n",
        c.point.fast_keys, c.cost_factor * 100.0, c.savings_vs_fast * 100.0,
        c.slowdown_vs_fast * 100.0);
  }

  core::MnemoReport report = session.to_report();
  report.write_csv("mnemo_trending.csv");
  std::printf("\nwrote mnemo_trending.csv (key id, est throughput, cost)\n");

  // -- 4. a second question, for free ----------------------------------
  // Tightening the SLO drops only the advise/report memos; the measured
  // grid is reused in place — zero additional emulator replays.
  const std::size_t cells_before = session.campaign_cells_run();
  session.set_slo(0.05);
  if (session.advise().result.choice) {
    std::printf(
        "re-advise @ 5%% SLO: %zu keys in FastMem (cost %.0f%%), "
        "%zu extra campaign cells\n",
        session.advise().result.choice->point.fast_keys,
        session.advise().result.choice->cost_factor * 100.0,
        session.campaign_cells_run() - cells_before);
  }
  return 0;
}
