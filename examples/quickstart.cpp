// Quickstart: profile one workload with Mnemo end to end.
//
// 1. Describe (or generate) a workload: key sequence + request types +
//    record sizes. Here: the paper's "Trending" workload — hotspot reads
//    of ~100 KB thumbnails.
// 2. Run Mnemo. It measures the FastMem-only and SlowMem-only baselines by
//    actually executing the workload on the emulated hybrid-memory
//    platform, then analytically estimates the full cost/performance
//    tradeoff curve at key granularity.
// 3. Pick the sweet spot: the cheapest configuration within a 10%
//    slowdown SLO, and write the paper's 3-column CSV artifact.

#include <cstdio>

#include "core/mnemo.hpp"
#include "util/bytes.hpp"
#include "util/table.hpp"
#include "workload/suite.hpp"

int main() {
  using namespace mnemo;

  // -- 1. the workload descriptor --------------------------------------
  const workload::WorkloadSpec spec = workload::paper_workload("trending");
  const workload::Trace trace = workload::Trace::generate(spec);
  std::printf("workload: %s (%s)\n", trace.name().c_str(),
              spec.use_case.c_str());
  std::printf("  keys=%llu requests=%zu dataset=%s\n",
              static_cast<unsigned long long>(trace.key_count()),
              trace.requests().size(),
              util::format_bytes(trace.dataset_bytes()).c_str());

  // -- 2. profile -------------------------------------------------------
  core::MnemoConfig config;
  config.store = kvstore::StoreKind::kVermilion;  // the Redis-like engine
  config.repeats = 2;
  core::Mnemo mnemo(config);
  const core::MnemoReport report = mnemo.profile(trace);

  std::printf("\nbaselines (measured):\n");
  std::printf("  FastMem-only: %.0f ops/s, avg %.1f us\n",
              report.baselines.fast.throughput_ops,
              report.baselines.fast.avg_latency_ns / 1e3);
  std::printf("  SlowMem-only: %.0f ops/s, avg %.1f us\n",
              report.baselines.slow.throughput_ops,
              report.baselines.slow.avg_latency_ns / 1e3);
  std::printf("  sensitivity: +%.1f%% throughput from FastMem\n",
              report.baselines.sensitivity() * 100.0);

  // -- 3. the tradeoff curve and the sweet spot ------------------------
  util::TablePrinter table({"FastMem keys", "FastMem bytes", "cost R(p)",
                            "est. ops/s", "vs FastMem-only"});
  for (const double frac : {0.0, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0}) {
    const auto idx = static_cast<std::size_t>(
        frac * static_cast<double>(report.curve.points.size() - 1));
    const core::EstimatePoint& p = report.curve.points[idx];
    table.add_row({std::to_string(p.fast_keys),
                   util::format_bytes(p.fast_bytes),
                   util::TablePrinter::num(p.cost_factor, 3),
                   util::TablePrinter::num(p.est_throughput_ops, 0),
                   util::TablePrinter::pct(p.est_throughput_ops /
                                               report.baselines.fast
                                                   .throughput_ops -
                                           1.0)});
  }
  std::printf("\nestimate curve (excerpt):\n");
  table.print();

  if (report.slo_choice) {
    const core::SloChoice& c = *report.slo_choice;
    std::printf(
        "\nsweet spot @ 10%% SLO: %zu keys in FastMem -> memory cost %.0f%% "
        "of FastMem-only (%.0f%% savings), slowdown %.1f%%\n",
        c.point.fast_keys, c.cost_factor * 100.0, c.savings_vs_fast * 100.0,
        c.slowdown_vs_fast * 100.0);
  }

  report.write_csv("mnemo_trending.csv");
  std::printf("\nwrote mnemo_trending.csv (key id, est throughput, cost)\n");
  return 0;
}
