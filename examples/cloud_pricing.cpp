// Cloud pricing explorer: turn the Fig 1 decomposition into deployment
// advice. Combines the per-GB memory rates extracted from 2018 VM price
// sheets with the paper's hybrid cost model to show what a DRAM+NVM VM
// would do to a concrete memory bill.
//
//   ./cloud_pricing [dataset_gb] [nvm_price_factor]

#include <cstdio>
#include <cstdlib>

#include "core/cost_model.hpp"
#include "pricing/cost_regression.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mnemo;
  const double dataset_gb = argc > 1 ? std::atof(argv[1]) : 512.0;
  const double p = argc > 2 ? std::atof(argv[2]) : 0.2;
  if (dataset_gb <= 0 || p <= 0 || p >= 1) {
    std::fprintf(stderr, "usage: %s [dataset_gb > 0] [p in (0,1)]\n",
                 argv[0]);
    return 1;
  }

  std::printf(
      "hosting a %.0f GB in-memory dataset; NVM at p = %.2f of the DRAM "
      "per-GB rate\n\n",
      dataset_gb, p);

  const core::CostModel model(p);
  util::TablePrinter table({"provider", "family", "DRAM $/GB-h",
                            "all-DRAM $/h", "50:50 $/h", "20:80 $/h",
                            "all-NVM $/h"});
  for (const auto& catalog : pricing::paper_catalogs()) {
    const auto d = pricing::decompose(catalog);
    const double dram_only = dataset_gb * d.gb_hourly_usd;
    auto hybrid = [&](double dram_fraction) {
      const auto fast = static_cast<std::uint64_t>(dram_fraction * 1000.0);
      return dram_only * model.reduction(fast, 1000);
    };
    table.add_row({catalog.provider, catalog.family,
                   util::TablePrinter::num(d.gb_hourly_usd, 5),
                   util::TablePrinter::num(dram_only, 2),
                   util::TablePrinter::num(hybrid(0.5), 2),
                   util::TablePrinter::num(hybrid(0.2), 2),
                   util::TablePrinter::num(hybrid(0.0), 2)});
  }
  table.print();

  std::printf(
      "\nread: a Trending-style workload that keeps 20%% of its data in "
      "DRAM (the paper's hot set) pays the '20:80' column — roughly %.0f%% "
      "of the all-DRAM memory bill — while staying within a 10%% "
      "performance SLO.\n",
      model.reduction(200, 1000) * 100.0);
  std::printf(
      "per-GB rates are extracted from the Nov-2018 price sheets via the "
      "paper's least-squares decomposition (see fig1_vm_cost).\n");
  return 0;
}
