// Tiering advisor: the three deployment scenarios of the paper's Fig 2 on
// one workload, side by side.
//
//   (a) stand-alone Mnemo           — first-touch key ordering
//   (b) external tiering + Mnemo    — ordering from a generic
//                                     instrumentation-based profiler
//   (c) MnemoT                      — key-value-store-optimized ordering
//
// Shows the estimate curve of each ordering and where its 10%-SLO sweet
// spot lands, then statically places the winning tiering onto the two
// servers with the Placement Engine.

#include <cstdio>

#include "core/mnemo.hpp"
#include "core/placement_engine.hpp"
#include "core/profilers.hpp"
#include "hybridmem/hybrid_memory.hpp"
#include "kvstore/dual_server.hpp"
#include "util/bytes.hpp"
#include "util/table.hpp"
#include "workload/suite.hpp"

int main() {
  using namespace mnemo;
  const workload::Trace trace =
      workload::Trace::generate(workload::paper_workload("timeline"));
  std::printf("workload: %s — %zu requests over %llu keys (%s)\n\n",
              trace.name().c_str(), trace.requests().size(),
              static_cast<unsigned long long>(trace.key_count()),
              util::format_bytes(trace.dataset_bytes()).c_str());

  core::MnemoConfig config;
  config.repeats = 2;
  const core::Mnemo standalone(config);

  // (a) stand-alone.
  const core::MnemoReport rep_a = standalone.profile(trace);

  // (b) external generic tiering feeding Mnemo (Fig 2b): use the
  // instrumentation-based profiler as the "existing tiering solution".
  core::SensitivityConfig sens_cfg;
  sens_cfg.repeats = config.repeats;
  const core::SensitivityEngine engine(sens_cfg);
  const core::ProfilerOutput external =
      core::run_instrumented_profiler(trace, engine);
  const core::MnemoReport rep_b =
      standalone.profile_with_order(trace, external.order);

  // (c) MnemoT.
  const core::MnemoT mnemot(config);
  const core::MnemoReport rep_c = mnemot.profile(trace);

  util::TablePrinter table({"scenario", "ordering", "SLO cost R(p)",
                            "savings", "FastMem keys", "FastMem bytes"});
  auto add = [&](const char* scenario, const core::MnemoReport& rep) {
    if (!rep.slo_choice) {
      table.add_row({scenario, std::string(to_string(rep.ordering)), "-",
                     "-", "-", "-"});
      return;
    }
    const core::SloChoice& c = *rep.slo_choice;
    table.add_row({scenario, std::string(to_string(rep.ordering)),
                   util::TablePrinter::num(c.cost_factor, 3),
                   util::TablePrinter::pct(c.savings_vs_fast, 1),
                   std::to_string(c.point.fast_keys),
                   util::format_bytes(c.point.fast_bytes)});
  };
  add("(a) stand-alone Mnemo", rep_a);
  add("(b) external tiering + Mnemo", rep_b);
  add("(c) MnemoT", rep_c);
  table.print();

  // Apply the winning tiering with the Placement Engine — the optional
  // final step where Mnemo populates FastServer and SlowServer itself.
  const core::MnemoReport& best = rep_c;
  const auto placement =
      core::PlacementEngine::placement_for(best.order,
                                           best.slo_choice->point);
  hybridmem::HybridMemory memory(hybridmem::paper_testbed_with_capacity(
      trace.dataset_bytes() * 2));
  kvstore::StoreConfig store_cfg;
  kvstore::DualServer servers(memory, config.store, store_cfg);
  core::PlacementEngine::populate(servers, trace, placement);
  std::printf(
      "\nplaced dataset for scenario (c): FastServer holds %zu records "
      "(%s), SlowServer %zu records (%s)\n",
      servers.fast().record_count(),
      util::format_bytes(memory.node(hybridmem::NodeId::kFast).used_bytes())
          .c_str(),
      servers.slow().record_count(),
      util::format_bytes(memory.node(hybridmem::NodeId::kSlow).used_bytes())
          .c_str());
  return 0;
}
