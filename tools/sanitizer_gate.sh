#!/bin/sh
# Sanitizer ctest gate: the label set DESIGN.md §13 promises stays clean
# under TSan and ASan+UBSan, built twice per sanitizer — once with the
# util::simd kernels on (default) and once with -DMNEMO_SIMD=OFF — so the
# vector and scalar replay paths are both race- and UB-checked. Results are
# bit-identical either way (§14); this gate is about keeping the fallback
# path green, not about comparing outputs.
#
# Usage: tools/sanitizer_gate.sh [jobs]
set -eu
cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"
LABELS='concurrency|serve|chaos|pipeline|sched|faults'

run_leg() {
  tree="$1"
  shift
  cmake -B "$tree" -S . "$@" >/dev/null
  cmake --build "$tree" -j "$JOBS"
  (cd "$tree" && ctest -L "$LABELS" --output-on-failure -j "$JOBS")
}

run_leg build-tsan -DMNEMO_TSAN=ON -DMNEMO_SIMD=ON
run_leg build-tsan-scalar -DMNEMO_TSAN=ON -DMNEMO_SIMD=OFF
run_leg build-asan -DMNEMO_ASAN=ON -DMNEMO_UBSAN=ON -DMNEMO_SIMD=ON
run_leg build-asan-scalar -DMNEMO_ASAN=ON -DMNEMO_UBSAN=ON -DMNEMO_SIMD=OFF
echo "sanitizer gate: all legs green"
