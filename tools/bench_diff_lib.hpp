#pragma once

// The comparison engine behind the bench_diff tool, split out header-only
// so tests can drive it directly (tests/tools/test_bench_diff.cpp) and the
// binary stays a thin argv shim. Compares two BENCH_*.json files produced
// by the bench binaries (mnemo.bench.replay/v1, mnemo.bench.campaign/v2,
// ...) and reports per-phase deltas for every median/speedup metric.
//
// The parser is a deliberately small recursive-descent reader for the
// machine-generated JSON our writers emit — objects, arrays, strings,
// numbers, bools — not a general-purpose JSON library.

#include <cctype>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

namespace mnemo::benchdiff {

struct Parser {
  const std::string& text;
  std::size_t pos = 0;
  bool failed = false;

  /// Flattened numeric leaves: "results[2].execute.median_ops_per_s" -> v.
  std::map<std::string, double> numbers;
  /// String leaves, used to label result rows ("store", workload name).
  std::map<std::string, std::string> strings;

  explicit Parser(const std::string& t) : text(t) {}

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
      ++pos;
    }
  }

  [[nodiscard]] char peek() {
    skip_ws();
    return pos < text.size() ? text[pos] : '\0';
  }

  bool expect(char ch) {
    if (peek() != ch) {
      failed = true;
      return false;
    }
    ++pos;
    return true;
  }

  std::string parse_string() {
    if (!expect('"')) return {};
    std::string out;
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\' && pos + 1 < text.size()) ++pos;
      out.push_back(text[pos++]);
    }
    if (!expect('"')) return {};
    return out;
  }

  void parse_value(const std::string& path) {
    const char ch = peek();
    if (ch == '{') {
      parse_object(path);
    } else if (ch == '[') {
      parse_array(path);
    } else if (ch == '"') {
      strings[path] = parse_string();
    } else if (std::strncmp(text.c_str() + pos, "true", 4) == 0) {
      pos += 4;
    } else if (std::strncmp(text.c_str() + pos, "false", 5) == 0) {
      pos += 5;
    } else if (std::strncmp(text.c_str() + pos, "null", 4) == 0) {
      pos += 4;
    } else {
      char* end = nullptr;
      const double v = std::strtod(text.c_str() + pos, &end);
      if (end == text.c_str() + pos) {
        failed = true;
        return;
      }
      pos = static_cast<std::size_t>(end - text.c_str());
      numbers[path] = v;
    }
  }

  void parse_object(const std::string& path) {
    if (!expect('{')) return;
    if (peek() == '}') {
      ++pos;
      return;
    }
    while (!failed) {
      const std::string key = parse_string();
      if (!expect(':')) return;
      parse_value(path.empty() ? key : path + "." + key);
      if (peek() == ',') {
        ++pos;
        continue;
      }
      expect('}');
      return;
    }
  }

  void parse_array(const std::string& path) {
    if (!expect('[')) return;
    if (peek() == ']') {
      ++pos;
      return;
    }
    std::size_t index = 0;
    while (!failed) {
      parse_value(path + "[" + std::to_string(index++) + "]");
      if (peek() == ',') {
        ++pos;
        continue;
      }
      expect(']');
      return;
    }
  }
};

/// Median metrics are the stable comparison surface; min_* values are
/// machine-noise floors and everything else is configuration echo.
[[nodiscard]] inline bool compared_metric(const std::string& path) {
  return path.find("median") != std::string::npos ||
         path.find("speedup") != std::string::npos;
}

/// True when larger values are better (throughput-style); false when
/// smaller is better (elapsed-time-style).
[[nodiscard]] inline bool higher_is_better(const std::string& path) {
  return path.find("ops_per_s") != std::string::npos ||
         path.find("throughput") != std::string::npos ||
         path.find("speedup") != std::string::npos;
}

/// Annotate a result-row metric with its identifying siblings, e.g.
/// "results[3].execute.median_ops_per_s [cachet t2]".
[[nodiscard]] inline std::string row_label(const Parser& p,
                                           const std::string& path) {
  const std::size_t bracket = path.find(']');
  if (bracket == std::string::npos) return path;
  const std::string row = path.substr(0, bracket + 1);
  std::string label;
  if (const auto it = p.strings.find(row + ".store");
      it != p.strings.end()) {
    label += it->second;
  }
  if (const auto it = p.numbers.find(row + ".threads");
      it != p.numbers.end()) {
    label += " t" + std::to_string(static_cast<long>(it->second));
  }
  if (const auto it = p.numbers.find(row + ".fast_fraction");
      it != p.numbers.end()) {
    char buf[32];
    std::snprintf(buf, sizeof buf, " f=%.3f", it->second);
    label += buf;
  }
  return label.empty() ? path : path + " [" + label + "]";
}

/// Outcome of one baseline-vs-candidate comparison. A comparison is only
/// trustworthy when every compared metric existed on both sides — a
/// metric that silently vanished (renamed section, dropped phase) would
/// otherwise read as "no regression" exactly when coverage was lost.
struct DiffResult {
  std::size_t compared = 0;   ///< metrics present on both sides
  std::size_t regressed = 0;  ///< compared metrics beyond the threshold
  std::size_t missing_in_candidate = 0;  ///< baseline-only metrics
  std::size_t missing_in_baseline = 0;   ///< candidate-only metrics
  std::string report;  ///< human-readable per-metric lines

  /// Tool exit status: 0 clean; 1 regressions or coverage loss (either
  /// side missing metrics the other has); 2 nothing comparable at all
  /// (wrong/renamed sections — the report says which side is empty).
  [[nodiscard]] int exit_code() const {
    if (compared == 0) return 2;
    if (regressed > 0 || missing_in_candidate > 0 ||
        missing_in_baseline > 0) {
      return 1;
    }
    return 0;
  }
};

/// Compare every median/speedup metric of `base` against `cand`.
/// Direction-aware: a metric regresses when it moves the wrong way by
/// more than `max_regress_pct` percent. Metrics present on only one side
/// are reported (MISSING / UNEXPECTED lines) and counted — see
/// DiffResult::exit_code for why that is a failure, not a skip.
[[nodiscard]] inline DiffResult diff_metrics(const Parser& base,
                                             const Parser& cand,
                                             double max_regress_pct) {
  DiffResult result;
  char line[512];
  for (const auto& [path, base_value] : base.numbers) {
    if (!compared_metric(path)) continue;
    const auto it = cand.numbers.find(path);
    if (it == cand.numbers.end()) {
      ++result.missing_in_candidate;
      std::snprintf(line, sizeof line,
                    "MISSING   %s (baseline %.6f, no candidate value)\n",
                    row_label(base, path).c_str(), base_value);
      result.report += line;
      continue;
    }
    const double cand_value = it->second;
    ++result.compared;
    double delta_pct = 0.0;
    if (base_value != 0.0) {
      delta_pct = (cand_value - base_value) / base_value * 100.0;
    }
    const double regress_pct =
        higher_is_better(path) ? -delta_pct : delta_pct;
    const bool bad = regress_pct > max_regress_pct;
    if (bad) ++result.regressed;
    std::snprintf(line, sizeof line, "%-9s %s  %.6f -> %.6f  (%+.1f%%)\n",
                  bad ? "REGRESSED" : "ok", row_label(base, path).c_str(),
                  base_value, cand_value, delta_pct);
    result.report += line;
  }
  // The reverse sweep catches metrics the baseline never had — a renamed
  // section shows up here instead of silently shrinking the comparison.
  for (const auto& [path, cand_value] : cand.numbers) {
    if (!compared_metric(path)) continue;
    if (base.numbers.find(path) == base.numbers.end()) {
      ++result.missing_in_baseline;
      std::snprintf(line, sizeof line,
                    "UNEXPECTED %s (candidate %.6f, no baseline value; "
                    "refresh the baseline?)\n",
                    row_label(cand, path).c_str(), cand_value);
      result.report += line;
    }
  }
  if (result.compared == 0) {
    result.report +=
        "bench_diff: no comparable median metrics found — the files share "
        "no median/speedup keys (missing or renamed sections?)\n";
  }
  return result;
}

}  // namespace mnemo::benchdiff
