// The `mnemo` command-line tool. All logic lives in src/cli so the test
// suite can exercise it; this translation unit only adapts argv.

#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return mnemo::cli::run(args, std::cout, std::cerr);
}
