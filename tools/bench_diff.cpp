// bench_diff: compare two BENCH_*.json files produced by the bench
// binaries (mnemo.bench.replay/v1, mnemo.bench.campaign/v1, ...) and
// report per-phase deltas for every median metric.
//
//   bench_diff BASELINE.json CANDIDATE.json [--max-regress PCT]
//
// Exit status: 0 when no compared metric regressed by more than
// --max-regress percent (default 10), 1 when at least one did, 2 on
// usage/parse errors. Metric direction is inferred from the key name:
// throughput-style keys (ops_per_s, speedup, throughput) regress when
// they go down; time-style keys (*_s, *_ns) regress when they go up.
//
// The parser below is a deliberately small recursive-descent reader for
// the machine-generated JSON our writers emit — objects, arrays, strings,
// numbers, bools — not a general-purpose JSON library.

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Parser {
  const std::string& text;
  std::size_t pos = 0;
  bool failed = false;

  /// Flattened numeric leaves: "results[2].execute.median_ops_per_s" -> v.
  std::map<std::string, double> numbers;
  /// String leaves, used to label result rows ("store", workload name).
  std::map<std::string, std::string> strings;

  explicit Parser(const std::string& t) : text(t) {}

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
      ++pos;
    }
  }

  [[nodiscard]] char peek() {
    skip_ws();
    return pos < text.size() ? text[pos] : '\0';
  }

  bool expect(char ch) {
    if (peek() != ch) {
      failed = true;
      return false;
    }
    ++pos;
    return true;
  }

  std::string parse_string() {
    if (!expect('"')) return {};
    std::string out;
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\' && pos + 1 < text.size()) ++pos;
      out.push_back(text[pos++]);
    }
    if (!expect('"')) return {};
    return out;
  }

  void parse_value(const std::string& path) {
    const char ch = peek();
    if (ch == '{') {
      parse_object(path);
    } else if (ch == '[') {
      parse_array(path);
    } else if (ch == '"') {
      strings[path] = parse_string();
    } else if (std::strncmp(text.c_str() + pos, "true", 4) == 0) {
      pos += 4;
    } else if (std::strncmp(text.c_str() + pos, "false", 5) == 0) {
      pos += 5;
    } else if (std::strncmp(text.c_str() + pos, "null", 4) == 0) {
      pos += 4;
    } else {
      char* end = nullptr;
      const double v = std::strtod(text.c_str() + pos, &end);
      if (end == text.c_str() + pos) {
        failed = true;
        return;
      }
      pos = static_cast<std::size_t>(end - text.c_str());
      numbers[path] = v;
    }
  }

  void parse_object(const std::string& path) {
    if (!expect('{')) return;
    if (peek() == '}') {
      ++pos;
      return;
    }
    while (!failed) {
      const std::string key = parse_string();
      if (!expect(':')) return;
      parse_value(path.empty() ? key : path + "." + key);
      if (peek() == ',') {
        ++pos;
        continue;
      }
      expect('}');
      return;
    }
  }

  void parse_array(const std::string& path) {
    if (!expect('[')) return;
    if (peek() == ']') {
      ++pos;
      return;
    }
    std::size_t index = 0;
    while (!failed) {
      parse_value(path + "[" + std::to_string(index++) + "]");
      if (peek() == ',') {
        ++pos;
        continue;
      }
      expect(']');
      return;
    }
  }
};

bool load(const std::string& path, Parser** out, std::string* storage) {
  std::ifstream file(path);
  if (!file.good()) {
    std::fprintf(stderr, "bench_diff: cannot read %s\n", path.c_str());
    return false;
  }
  std::stringstream ss;
  ss << file.rdbuf();
  *storage = ss.str();
  auto* parser = new Parser(*storage);
  parser->parse_value("");
  if (parser->failed) {
    std::fprintf(stderr, "bench_diff: %s is not valid JSON\n", path.c_str());
    delete parser;
    return false;
  }
  *out = parser;
  return true;
}

/// Median metrics are the stable comparison surface; min_* values are
/// machine-noise floors and everything else is configuration echo.
bool compared_metric(const std::string& path) {
  return path.find("median") != std::string::npos ||
         path.find("speedup") != std::string::npos;
}

/// True when larger values are better (throughput-style); false when
/// smaller is better (elapsed-time-style).
bool higher_is_better(const std::string& path) {
  return path.find("ops_per_s") != std::string::npos ||
         path.find("throughput") != std::string::npos ||
         path.find("speedup") != std::string::npos;
}

/// Annotate a result-row metric with its identifying siblings, e.g.
/// "results[3].execute.median_ops_per_s [cachet t2]".
std::string row_label(const Parser& p, const std::string& path) {
  const std::size_t bracket = path.find(']');
  if (bracket == std::string::npos) return path;
  const std::string row = path.substr(0, bracket + 1);
  std::string label;
  if (const auto it = p.strings.find(row + ".store");
      it != p.strings.end()) {
    label += it->second;
  }
  if (const auto it = p.numbers.find(row + ".threads");
      it != p.numbers.end()) {
    label += " t" + std::to_string(static_cast<long>(it->second));
  }
  if (const auto it = p.numbers.find(row + ".fast_fraction");
      it != p.numbers.end()) {
    char buf[32];
    std::snprintf(buf, sizeof buf, " f=%.3f", it->second);
    label += buf;
  }
  return label.empty() ? path : path + " [" + label + "]";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  double max_regress_pct = 10.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--max-regress") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_diff: --max-regress needs a value\n");
        return 2;
      }
      max_regress_pct = std::strtod(argv[++i], nullptr);
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: bench_diff BASELINE.json CANDIDATE.json "
          "[--max-regress PCT]\n");
      return 0;
    } else {
      files.push_back(arg);
    }
  }
  if (files.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_diff BASELINE.json CANDIDATE.json "
                 "[--max-regress PCT]\n");
    return 2;
  }

  std::string base_text;
  std::string cand_text;
  Parser* base = nullptr;
  Parser* cand = nullptr;
  if (!load(files[0], &base, &base_text) ||
      !load(files[1], &cand, &cand_text)) {
    return 2;
  }

  const auto base_schema = base->strings.find("schema");
  const auto cand_schema = cand->strings.find("schema");
  if (base_schema != base->strings.end() &&
      cand_schema != cand->strings.end() &&
      base_schema->second != cand_schema->second) {
    std::fprintf(stderr, "bench_diff: schema mismatch: %s vs %s\n",
                 base_schema->second.c_str(), cand_schema->second.c_str());
    return 2;
  }

  std::size_t compared = 0;
  std::size_t regressed = 0;
  for (const auto& [path, base_value] : base->numbers) {
    if (!compared_metric(path)) continue;
    const auto it = cand->numbers.find(path);
    if (it == cand->numbers.end()) {
      std::printf("MISSING   %s (baseline %.6f, no candidate value)\n",
                  row_label(*base, path).c_str(), base_value);
      continue;
    }
    const double cand_value = it->second;
    ++compared;
    double delta_pct = 0.0;
    if (base_value != 0.0) {
      delta_pct = (cand_value - base_value) / base_value * 100.0;
    }
    const double regress_pct =
        higher_is_better(path) ? -delta_pct : delta_pct;
    const bool bad = regress_pct > max_regress_pct;
    if (bad) ++regressed;
    std::printf("%-9s %s  %.6f -> %.6f  (%+.1f%%)\n",
                bad ? "REGRESSED" : "ok", row_label(*base, path).c_str(),
                base_value, cand_value, delta_pct);
  }

  std::printf("bench_diff: %zu metrics compared, %zu regressed beyond "
              "%.1f%%\n",
              compared, regressed, max_regress_pct);
  delete base;
  delete cand;
  if (compared == 0) {
    std::fprintf(stderr, "bench_diff: no comparable median metrics found\n");
    return 2;
  }
  return regressed == 0 ? 0 : 1;
}
