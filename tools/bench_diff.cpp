// bench_diff: compare two BENCH_*.json files produced by the bench
// binaries (mnemo.bench.replay/v1, mnemo.bench.campaign/v2, ...) and
// report per-phase deltas for every median metric.
//
//   bench_diff BASELINE.json CANDIDATE.json [--max-regress PCT]
//
// Exit status: 0 when every compared metric is within --max-regress
// percent (default 10) and both files cover the same metrics; 1 when a
// metric regressed OR one side is missing metrics the other has (coverage
// loss must not read as a pass); 2 on usage/parse errors or when the
// files share no comparable metrics at all. Metric direction is inferred
// from the key name: throughput-style keys (ops_per_s, speedup,
// throughput) regress when they go down; time-style keys (*_s, *_ns)
// regress when they go up.
//
// The comparison engine lives in bench_diff_lib.hpp (header-only) so the
// unit tests exercise exactly the logic this binary ships.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_diff_lib.hpp"

namespace {

using mnemo::benchdiff::DiffResult;
using mnemo::benchdiff::Parser;

bool load(const std::string& path, std::unique_ptr<Parser>* out,
          std::string* storage) {
  std::ifstream file(path);
  if (!file.good()) {
    std::fprintf(stderr, "bench_diff: cannot read %s\n", path.c_str());
    return false;
  }
  std::stringstream ss;
  ss << file.rdbuf();
  *storage = ss.str();
  auto parser = std::make_unique<Parser>(*storage);
  parser->parse_value("");
  if (parser->failed) {
    std::fprintf(stderr, "bench_diff: %s is not valid JSON\n", path.c_str());
    return false;
  }
  *out = std::move(parser);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  double max_regress_pct = 10.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--max-regress") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_diff: --max-regress needs a value\n");
        return 2;
      }
      max_regress_pct = std::strtod(argv[++i], nullptr);
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: bench_diff BASELINE.json CANDIDATE.json "
          "[--max-regress PCT]\n");
      return 0;
    } else {
      files.push_back(arg);
    }
  }
  if (files.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_diff BASELINE.json CANDIDATE.json "
                 "[--max-regress PCT]\n");
    return 2;
  }

  std::string base_text;
  std::string cand_text;
  std::unique_ptr<Parser> base;
  std::unique_ptr<Parser> cand;
  if (!load(files[0], &base, &base_text) ||
      !load(files[1], &cand, &cand_text)) {
    return 2;
  }

  const auto base_schema = base->strings.find("schema");
  const auto cand_schema = cand->strings.find("schema");
  if (base_schema != base->strings.end() &&
      cand_schema != cand->strings.end() &&
      base_schema->second != cand_schema->second) {
    std::fprintf(stderr, "bench_diff: schema mismatch: %s vs %s\n",
                 base_schema->second.c_str(), cand_schema->second.c_str());
    return 2;
  }

  const DiffResult diff =
      mnemo::benchdiff::diff_metrics(*base, *cand, max_regress_pct);
  std::fputs(diff.report.c_str(), stdout);
  std::printf(
      "bench_diff: %zu metrics compared, %zu regressed beyond %.1f%%, "
      "%zu missing in candidate, %zu missing in baseline\n",
      diff.compared, diff.regressed, max_regress_pct,
      diff.missing_in_candidate, diff.missing_in_baseline);
  return diff.exit_code();
}
