// Table II: performance baselines, capacity sizings and memory cost
// reduction factors, under the paper's cost model
//   R(p) = (F + (C - F) * p) / C,  p = 0.2.

#include <cstdio>

#include "core/cost_model.hpp"
#include "util/bytes.hpp"
#include "util/table.hpp"

int main() {
  using namespace mnemo;
  std::printf(
      "== Table II: baselines, capacity sizings, cost reduction (p = 0.2) "
      "==\n\n");

  const core::CostModel model;  // paper default p = 0.2
  const std::uint64_t c = util::kGiB;  // dataset size C

  util::TablePrinter table(
      {"Runtime", "FastMem", "SlowMem", "Cost Reduction R(p)"});
  table.add_row({"Best Case", "C bytes", "0 bytes",
                 util::TablePrinter::num(model.reduction(c, c), 2)});
  table.add_row({"In between", "F bytes", "C - F bytes",
                 "(F + (C-F)*p) / C"});
  table.add_row({"Worst Case", "0 bytes", "C bytes",
                 util::TablePrinter::num(model.reduction(0, c), 2)});
  table.print();

  std::printf("\nR(p) across FastMem fractions (C = %s):\n",
              util::format_bytes(c).c_str());
  util::TablePrinter sweep({"FastMem share", "p=0.1", "p=0.2", "p=0.33"});
  for (const double f : {0.0, 0.2, 0.36, 0.5, 0.8, 1.0}) {
    const auto fast = static_cast<std::uint64_t>(f * static_cast<double>(c));
    sweep.add_row(
        {util::TablePrinter::pct(f, 0),
         util::TablePrinter::num(core::CostModel(0.1).reduction(fast, c), 3),
         util::TablePrinter::num(core::CostModel(0.2).reduction(fast, c), 3),
         util::TablePrinter::num(core::CostModel(1.0 / 3).reduction(fast, c),
                                 3)});
  }
  sweep.print();

  std::printf(
      "\nindustry projections put NVDIMMs at 3-7x cheaper per GB than DRAM "
      "(p in [0.14, 0.33]); the paper fixes p = 0.2.\n");
  return 0;
}
