// Platform-parameter sensitivity: how Mnemo's advice moves as the slow
// tier's technology and price change. The paper fixes Table I's throttled
// DRAM (B 0.12x, L 3.62x) and p = 0.2, and notes that real NVDIMM price
// and speed were unknown at publication; this bench sweeps both.
//
//   - technology sweep: SlowMem latency multiple L and bandwidth factor B
//     (including an Optane-DC-like projection: L ~ 3x, B ~ 0.35x)
//   - price sweep: p in [0.1, 0.5]
// reporting the Trending sweet spot (Redis-like store, 10% SLO).

#include <cstdio>

#include "core/mnemo.hpp"
#include "util/table.hpp"
#include "workload/suite.hpp"

namespace {

using namespace mnemo;

core::SloChoice advise(const hybridmem::EmulationProfile& platform,
                       double price_factor, const workload::Trace& trace) {
  core::MnemoConfig cfg;
  cfg.platform = platform;
  cfg.price_factor = price_factor;
  cfg.repeats = 1;
  cfg.ordering = core::OrderingPolicy::kTiered;
  const core::MnemoT mnemo(cfg);
  const auto report = mnemo.profile(trace);
  MNEMO_EXPECTS(report.slo_choice.has_value());
  return *report.slo_choice;
}

}  // namespace

int main() {
  std::printf(
      "== Platform sensitivity of the Trending sweet spot (Redis-like, "
      "10%% SLO) ==\n\n");

  workload::WorkloadSpec spec = workload::paper_workload("trending");
  spec.key_count = 2'000;
  spec.request_count = 20'000;
  const workload::Trace trace = workload::Trace::generate(spec);
  const auto base = hybridmem::paper_testbed();

  // ---- technology sweep ------------------------------------------------
  struct Tech {
    const char* label;
    double latency_mult;   // vs FastMem
    double bandwidth_frac;  // vs FastMem
  };
  const Tech techs[] = {
      {"paper testbed (L3.62 B0.12)", 3.62, 0.12},
      {"Optane-DC projection (L3.0 B0.35)", 3.0, 0.35},
      {"aggressive NVM (L2.0 B0.5)", 2.0, 0.5},
      {"pessimistic NVM (L6.0 B0.08)", 6.0, 0.08},
      {"near-DRAM CXL (L1.5 B0.8)", 1.5, 0.8},
  };
  util::TablePrinter tech_table({"slow tier", "SLO cost R(p)", "savings",
                                 "FastMem keys"});
  for (const Tech& t : techs) {
    hybridmem::EmulationProfile platform = base;
    platform.slow.latency_ns = base.fast.latency_ns * t.latency_mult;
    platform.slow.bandwidth_gbps = base.fast.bandwidth_gbps * t.bandwidth_frac;
    const core::SloChoice c = advise(platform, 0.2, trace);
    tech_table.add_row({t.label, util::TablePrinter::num(c.cost_factor, 3),
                        util::TablePrinter::pct(c.savings_vs_fast, 1),
                        std::to_string(c.point.fast_keys)});
  }
  std::printf("-- slow-tier technology sweep (p = 0.2) --\n");
  tech_table.print();

  // ---- price sweep -----------------------------------------------------
  util::TablePrinter price_table({"p (SlowMem price factor)",
                                  "SLO cost R(p)", "savings",
                                  "FastMem keys"});
  for (const double p : {0.1, 0.2, 0.3, 0.4, 0.5}) {
    const core::SloChoice c = advise(base, p, trace);
    price_table.add_row({util::TablePrinter::num(p, 2),
                         util::TablePrinter::num(c.cost_factor, 3),
                         util::TablePrinter::pct(c.savings_vs_fast, 1),
                         std::to_string(c.point.fast_keys)});
  }
  std::printf("\n-- price sweep (paper testbed timings) --\n");
  price_table.print();

  std::printf(
      "\nreading: faster slow tiers let the SLO tolerate more SlowMem "
      "(fewer FastMem keys), and the cost floor p bounds the savings; the "
      "FastMem key count is driven by technology, the bill by price.\n");
  return 0;
}
