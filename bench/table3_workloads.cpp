// Table III: the custom YCSB workloads adapted to social-media use cases.
// Prints the declared suite and verifies each workload's empirical
// properties (measured read ratio, record sizes, skew) at the paper's
// scale of 10,000 keys and 100,000 requests.

#include <cstdio>

#include "util/bytes.hpp"
#include "util/table.hpp"
#include "workload/suite.hpp"
#include "workload/trace.hpp"

int main() {
  using namespace mnemo;
  std::printf("== Table III: custom YCSB workloads ==\n\n");

  util::TablePrinter decl({"Workload", "Distribution", "Read:Write ratio",
                           "Record Size Type", "Use Case"});
  util::TablePrinter measured({"Workload", "keys", "requests",
                               "measured R:W", "mean record", "dataset",
                               "hot-20% share"});

  for (const auto& spec : workload::paper_suite()) {
    decl.add_row({spec.name, std::string(to_string(spec.distribution)),
                  spec.ratio_label(),
                  std::string(to_string(spec.record_size)),
                  spec.use_case});

    const workload::Trace trace = workload::Trace::generate(spec);
    const double read_frac = static_cast<double>(trace.total_reads()) /
                             static_cast<double>(trace.requests().size());
    char ratio[32];
    std::snprintf(ratio, sizeof ratio, "%.0f:%.0f", read_frac * 100.0,
                  (1.0 - read_frac) * 100.0);
    measured.add_row(
        {spec.name, std::to_string(trace.key_count()),
         std::to_string(trace.requests().size()), ratio,
         util::format_bytes(trace.dataset_bytes() / trace.key_count()),
         util::format_bytes(trace.dataset_bytes()),
         util::TablePrinter::pct(trace.hot_share(0.2), 1)});
  }

  std::printf("declared suite (paper Table III):\n");
  decl.print();
  std::printf("\nempirical verification of the generated traces:\n");
  measured.print();
  std::printf(
      "\npaper Table III: number of keys 10,000; number of requests "
      "100,000; thumbnails ~100 KB, text posts ~10 KB, captions ~1 KB.\n");
  return 0;
}
