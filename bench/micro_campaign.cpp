// Wall-clock campaign microbenchmark for the replay executors (DESIGN.md
// §12, §14): times the same measure_grid — the engine behind every sweep,
// baseline and session — under ReplayMode::kLegacy (per-cell
// rehash/redigest on the heap), ReplayMode::kCompiled (shared
// CompiledTrace + hash/digest passthrough + per-worker arena, the PR 8
// per-cell baseline) and ReplayMode::kFused (the default: lane-fused
// bands replaying K cells per trace pass with util::simd batch kernels).
// All arms return measurements that are asserted bit-identical here —
// the bench refuses to report on any divergence — so every speedup is
// provably a pure implementation win. Results go to BENCH_campaign.json
// ("mnemo.bench.campaign/v2") for bench_diff.
//
//   ./micro_campaign                full run, writes BENCH_campaign.json
//   ./micro_campaign --smoke        tiny workload + schema self-check (CI)
//   ./micro_campaign --out FILE     alternate output path
//   ./micro_campaign --repeats N    timing repeats per (store, threads) cell

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/sensitivity_engine.hpp"
#include "util/argparse.hpp"
#include "util/timer.hpp"
#include "workload/trace.hpp"
#include "workload/workload_spec.hpp"

namespace {

using namespace mnemo;

struct CellResult {
  kvstore::StoreKind store = kvstore::StoreKind::kVermilion;
  std::size_t threads = 0;
  std::size_t grid_cells = 0;  ///< placements × repeats replayed per timing
  double legacy_median_s = 0.0;
  double legacy_min_s = 0.0;
  double compiled_median_s = 0.0;
  double compiled_min_s = 0.0;
  double fused_median_s = 0.0;
  double fused_min_s = 0.0;

  [[nodiscard]] double speedup() const {
    return compiled_median_s > 0.0 ? legacy_median_s / compiled_median_s
                                   : 0.0;
  }
  /// Paired-median win of the fused executor over the per-cell compiled
  /// baseline it replaced — the headline this PR's acceptance gates on.
  [[nodiscard]] double fused_speedup() const {
    return fused_median_s > 0.0 ? compiled_median_s / fused_median_s : 0.0;
  }
};

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

workload::Trace make_trace(bool smoke) {
  workload::WorkloadSpec spec;
  spec.name = smoke ? "campaign_smoke" : "campaign";
  spec.distribution = workload::DistributionKind::kZipfian;
  spec.dist_params.zipf_theta = 0.9;
  spec.read_fraction = 0.9;
  spec.record_size = workload::RecordSizeType::kPreviewMix;
  spec.key_count = smoke ? 300 : 2'000;
  spec.request_count = smoke ? 3'000 : 20'000;
  spec.seed = 0x5eed;
  return workload::Trace::generate(spec);
}

std::vector<hybridmem::Placement> make_placements(
    const workload::Trace& trace) {
  std::vector<std::uint64_t> order(trace.key_count());
  for (std::uint64_t k = 0; k < trace.key_count(); ++k) order[k] = k;
  std::vector<hybridmem::Placement> placements;
  for (const double f : {0.0, 0.5, 1.0}) {
    placements.push_back(hybridmem::Placement::from_order(
        order, static_cast<std::size_t>(
                   f * static_cast<double>(trace.key_count()))));
  }
  return placements;
}

CellResult run_cell(const workload::Trace& trace,
                    const std::vector<hybridmem::Placement>& placements,
                    kvstore::StoreKind store, std::size_t threads,
                    int repeats) {
  core::SensitivityConfig cfg;
  cfg.store = store;
  cfg.repeats = 2;
  cfg.threads = threads;
  const core::SensitivityEngine engine(cfg);

  std::vector<double> legacy_s;
  std::vector<double> compiled_s;
  std::vector<double> fused_s;
  std::vector<core::RunMeasurement> legacy_grid;
  std::vector<core::RunMeasurement> compiled_grid;
  std::vector<core::RunMeasurement> fused_grid;
  for (int r = 0; r < repeats; ++r) {
    {
      core::CampaignRunner runner(threads);
      runner.set_replay_mode(core::ReplayMode::kLegacy);
      util::WallTimer timer;
      legacy_grid = runner.measure_grid(engine, trace, placements);
      legacy_s.push_back(timer.elapsed_s());
    }
    {
      core::CampaignRunner runner(threads);
      runner.set_replay_mode(core::ReplayMode::kCompiled);
      util::WallTimer timer;
      compiled_grid = runner.measure_grid(engine, trace, placements);
      compiled_s.push_back(timer.elapsed_s());
    }
    {
      core::CampaignRunner runner(threads);  // default: ReplayMode::kFused
      util::WallTimer timer;
      fused_grid = runner.measure_grid(engine, trace, placements);
      fused_s.push_back(timer.elapsed_s());
    }
    // The arms must agree bit for bit or the comparison is meaningless —
    // refuse to report anything on divergence.
    if (legacy_grid != compiled_grid) {
      std::fprintf(stderr,
                   "micro_campaign: compiled grid diverged from legacy\n");
      std::exit(1);
    }
    if (fused_grid != compiled_grid) {
      std::fprintf(stderr,
                   "micro_campaign: fused grid diverged from compiled\n");
      std::exit(1);
    }
  }

  CellResult cell;
  cell.store = store;
  cell.threads = threads;
  cell.grid_cells =
      placements.size() * static_cast<std::size_t>(cfg.repeats);
  cell.legacy_median_s = median(legacy_s);
  cell.legacy_min_s = *std::min_element(legacy_s.begin(), legacy_s.end());
  cell.compiled_median_s = median(compiled_s);
  cell.compiled_min_s =
      *std::min_element(compiled_s.begin(), compiled_s.end());
  cell.fused_median_s = median(fused_s);
  cell.fused_min_s = *std::min_element(fused_s.begin(), fused_s.end());
  return cell;
}

void write_json(const std::string& path, const workload::Trace& trace,
                bool smoke, int repeats,
                const std::vector<CellResult>& cells) {
  double legacy_total = 0.0;
  double compiled_total = 0.0;
  double fused_total = 0.0;
  for (const CellResult& c : cells) {
    legacy_total += c.legacy_median_s;
    compiled_total += c.compiled_median_s;
    fused_total += c.fused_median_s;
  }
  const double aggregate =
      compiled_total > 0.0 ? legacy_total / compiled_total : 0.0;
  const double fused_aggregate =
      fused_total > 0.0 ? compiled_total / fused_total : 0.0;

  std::ostringstream out;
  char buf[64];
  const auto num = [&](double v) {
    std::snprintf(buf, sizeof buf, "%.6f", v);
    return std::string(buf);
  };
  out << "{\n";
  out << "  \"schema\": \"mnemo.bench.campaign/v2\",\n";
  out << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  out << "  \"repeats\": " << repeats << ",\n";
  out << "  \"workload\": {\"name\": \"" << trace.name()
      << "\", \"key_count\": " << trace.key_count()
      << ", \"request_count\": " << trace.requests().size() << "},\n";
  out << "  \"results\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    out << "    {\"store\": \"" << kvstore::to_string(c.store)
        << "\", \"threads\": " << c.threads
        << ", \"grid_cells\": " << c.grid_cells << ",\n";
    out << "     \"legacy\": {\"median_s\": " << num(c.legacy_median_s)
        << ", \"min_s\": " << num(c.legacy_min_s) << "},\n";
    out << "     \"compiled\": {\"median_s\": " << num(c.compiled_median_s)
        << ", \"min_s\": " << num(c.compiled_min_s) << "},\n";
    out << "     \"fused\": {\"median_s\": " << num(c.fused_median_s)
        << ", \"min_s\": " << num(c.fused_min_s) << "},\n";
    out << "     \"speedup\": " << num(c.speedup())
        << ", \"fused_speedup\": " << num(c.fused_speedup()) << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"aggregate\": {\"legacy_s\": " << num(legacy_total)
      << ", \"compiled_s\": " << num(compiled_total)
      << ", \"fused_s\": " << num(fused_total)
      << ", \"speedup\": " << num(aggregate)
      << ", \"fused_speedup\": " << num(fused_aggregate) << "}\n";
  out << "}\n";

  std::ofstream file(path);
  file << out.str();
  if (!file.good()) {
    std::fprintf(stderr, "micro_campaign: cannot write %s\n", path.c_str());
    std::exit(1);
  }
}

/// Schema self-check for --smoke: stable keys present, braces balanced,
/// one result object per (store, threads) cell.
bool validate_json(const std::string& path, std::size_t expected_results) {
  std::ifstream file(path);
  std::stringstream ss;
  ss << file.rdbuf();
  const std::string text = ss.str();
  if (text.empty()) return false;
  for (const char* key :
       {"\"schema\": \"mnemo.bench.campaign/v2\"", "\"repeats\"",
        "\"workload\"", "\"results\"", "\"legacy\"", "\"compiled\"",
        "\"fused\"", "\"median_s\"", "\"speedup\"",
        "\"fused_speedup\"", "\"aggregate\""}) {
    if (text.find(key) == std::string::npos) {
      std::fprintf(stderr, "micro_campaign: missing key %s\n", key);
      return false;
    }
  }
  long depth = 0;
  for (const char ch : text) {
    if (ch == '{') ++depth;
    if (ch == '}') --depth;
    if (depth < 0) return false;
  }
  if (depth != 0) return false;
  std::size_t stores = 0;
  for (std::size_t pos = text.find("\"store\""); pos != std::string::npos;
       pos = text.find("\"store\"", pos + 1)) {
    ++stores;
  }
  return stores == expected_results;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser parser(
      "micro_campaign",
      "legacy vs compiled vs lane-fused campaign wall-clock benchmark");
  parser.add_flag("smoke", "tiny workload + schema self-check (CI)");
  parser.add_option("out", "output JSON path", "BENCH_campaign.json");
  parser.add_option("repeats", "timing repeats per cell", "");
  std::vector<std::string> args(argv + 1, argv + argc);
  std::string error;
  if (!parser.parse(args, &error)) {
    std::fprintf(stderr, "%s\n%s", error.c_str(), parser.help().c_str());
    return 2;
  }
  const bool smoke = parser.has_flag("smoke");
  const int repeats = parser.get("repeats").empty()
                          ? (smoke ? 2 : 5)
                          : static_cast<int>(parser.get_u64("repeats"));
  const std::string out = parser.get("out");

  const workload::Trace trace = make_trace(smoke);
  const std::vector<hybridmem::Placement> placements =
      make_placements(trace);
  const std::vector<kvstore::StoreKind> stores = {
      kvstore::StoreKind::kVermilion, kvstore::StoreKind::kCachet,
      kvstore::StoreKind::kDynaStore};
  const std::vector<std::size_t> thread_counts = {1, 2, 8};

  std::printf(
      "== micro_campaign: %s, %llu keys, %zu requests, %d repeats ==\n",
      trace.name().c_str(),
      static_cast<unsigned long long>(trace.key_count()),
      trace.requests().size(), repeats);

  std::vector<CellResult> cells;
  for (const kvstore::StoreKind store : stores) {
    for (const std::size_t threads : thread_counts) {
      const CellResult cell =
          run_cell(trace, placements, store, threads, repeats);
      std::printf(
          "%-10s threads %zu  legacy %8.1f ms  compiled %8.1f ms  "
          "fused %8.1f ms  speedup %.2fx  fused %.2fx\n",
          std::string(kvstore::to_string(store)).c_str(), threads,
          cell.legacy_median_s * 1e3, cell.compiled_median_s * 1e3,
          cell.fused_median_s * 1e3, cell.speedup(), cell.fused_speedup());
      cells.push_back(cell);
    }
  }

  write_json(out, trace, smoke, repeats, cells);
  std::printf("wrote %s\n", out.c_str());
  if (smoke && !validate_json(out, cells.size())) {
    std::fprintf(stderr, "micro_campaign: schema validation FAILED\n");
    return 1;
  }
  if (smoke) std::printf("schema ok\n");
  return 0;
}
