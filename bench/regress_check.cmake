# Non-fatal perf regression gate: diff a freshly produced BENCH_*.json
# against the checked-in baseline with bench_diff. Wall-clock numbers are
# machine-dependent, so drift is surfaced as a WARNING for a human to
# read in the ctest log — this script always succeeds.
#
# Invoked by ctest as:
#   cmake -DBENCH_DIFF=... -DBASELINE=... -DCANDIDATE=... -P regress_check.cmake

if(NOT EXISTS "${BASELINE}")
  message(WARNING "bench baseline ${BASELINE} missing; skipping diff")
  return()
endif()
if(NOT EXISTS "${CANDIDATE}")
  message(WARNING
    "candidate ${CANDIDATE} missing; run the bench smoke test first")
  return()
endif()

execute_process(
  COMMAND "${BENCH_DIFF}" "${BASELINE}" "${CANDIDATE}" --max-regress 25
  OUTPUT_VARIABLE diff_output
  ERROR_VARIABLE diff_output
  RESULT_VARIABLE diff_status)
message(STATUS "bench_diff output:\n${diff_output}")
if(NOT diff_status EQUAL 0)
  message(WARNING
    "bench_diff reports regressions beyond 25% against the checked-in "
    "baseline (non-fatal: wall-clock medians vary across machines):\n"
    "${diff_output}")
endif()
