// Ablation benches for the design choices DESIGN.md calls out:
//   1. LLC model on/off — how much cache locality bends the measured
//      curve away from the analytical estimate.
//   2. Service jitter on/off — noise contribution to estimate error.
//   3. Greedy (accesses/size) vs exact 0/1-knapsack tiering — captured
//      accesses under tight FastMem budgets.
//   4. Stored vs synthetic payloads — simulated results must be identical.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "core/tiering.hpp"
#include "stats/summary.hpp"
#include "util/bytes.hpp"
#include "util/table.hpp"
#include "workload/suite.hpp"

namespace {

using namespace mnemo;

std::vector<double> sweep_errors(const workload::Trace& trace,
                                 const core::MnemoConfig& config) {
  const bench::SweepResult sweep =
      bench::run_sweep(trace, config.store, config);
  std::vector<double> errs;
  for (const auto& p : sweep.points) {
    errs.push_back(std::fabs(p.throughput_error_pct));
  }
  return errs;
}

}  // namespace

int main() {
  std::printf("== Ablations of the emulation/model design choices ==\n\n");

  // ---- 1 & 2: LLC and jitter contributions to estimate error ----------
  {
    workload::WorkloadSpec spec = workload::paper_workload("trending_preview");
    const workload::Trace trace = workload::Trace::generate(spec);

    core::MnemoConfig base;
    base.repeats = 2;

    core::MnemoConfig no_llc = base;
    // An LLC of 1 byte effectively disables caching (everything bypasses).
    no_llc.platform.llc_bytes = 1;
    no_llc.platform.llc_bypass_fraction = 1.0;

    const auto with_llc = sweep_errors(trace, base);
    const auto without_llc = sweep_errors(trace, no_llc);

    util::TablePrinter table({"configuration", "median |err| %", "max |err| %"});
    table.add_row({"full model (LLC + jitter)",
                   util::TablePrinter::num(stats::median(with_llc), 4),
                   util::TablePrinter::num(
                       *std::max_element(with_llc.begin(), with_llc.end()),
                       4)});
    table.add_row({"LLC disabled",
                   util::TablePrinter::num(stats::median(without_llc), 4),
                   util::TablePrinter::num(
                       *std::max_element(without_llc.begin(),
                                         without_llc.end()),
                       4)});
    std::printf("-- estimate error sources (trending_preview, cache-"
                "friendly small records in the mix) --\n");
    table.print();
    std::printf(
        "the LLC is the main un-modeled effect; disabling it collapses the "
        "residual error toward pure jitter noise.\n\n");
  }

  // ---- 2b: uniform-delta vs size-aware estimate model ------------------
  {
    // Under MnemoT's size-correlated ordering of a mixed-size dataset the
    // paper's uniform-delta model over-promises; the size-aware extension
    // regresses service time against record size and stays honest.
    workload::WorkloadSpec spec = workload::paper_workload("trending_preview");
    const workload::Trace trace = workload::Trace::generate(spec);

    util::TablePrinter table({"estimate model", "median |err| %",
                              "max |err| %"});
    for (const core::EstimateModel model :
         {core::EstimateModel::kUniformDelta,
          core::EstimateModel::kSizeAware}) {
      core::MnemoConfig cfg;
      cfg.repeats = 2;
      cfg.ordering = core::OrderingPolicy::kTiered;
      cfg.estimate_model = model;
      cfg.store = kvstore::StoreKind::kVermilion;
      const auto errs = sweep_errors(trace, cfg);
      table.add_row({std::string(to_string(model)),
                     util::TablePrinter::num(stats::median(errs), 4),
                     util::TablePrinter::num(
                         *std::max_element(errs.begin(), errs.end()), 4)});
    }
    std::printf("-- estimate model under MnemoT ordering (mixed-size "
                "preview workload) --\n");
    table.print();
    std::printf(
        "the size-aware model (this repo's extension) removes the "
        "systematic bias the uniform model shows on size-correlated "
        "orderings.\n\n");
  }

  // ---- 3: greedy vs knapsack tiering ----------------------------------
  {
    workload::WorkloadSpec spec = workload::paper_workload("trending_preview");
    spec.key_count = 2'000;
    spec.request_count = 20'000;
    const workload::Trace trace = workload::Trace::generate(spec);
    const core::AccessPattern pattern = core::PatternEngine::analyze(trace);
    const auto greedy_order = core::TieringEngine::priority_order(pattern);

    util::TablePrinter table({"FastMem budget", "greedy captured",
                              "knapsack captured", "knapsack gain"});
    for (const double frac : {0.05, 0.1, 0.2, 0.4}) {
      const auto budget = static_cast<std::uint64_t>(
          frac * static_cast<double>(pattern.total_bytes()));
      const std::uint64_t greedy = core::TieringEngine::captured_accesses(
          pattern, greedy_order, budget);
      // Cell size must stay below the smallest records (captions clamp at 512 B) or
      // quantization would overcharge them and cripple the DP.
      const auto chosen = core::TieringEngine::knapsack_select(
          pattern, budget, /*granularity=*/512);
      std::uint64_t knapsack = 0;
      for (std::size_t k = 0; k < chosen.size(); ++k) {
        if (chosen[k]) knapsack += pattern.accesses(k);
      }
      table.add_row(
          {util::format_bytes(budget), std::to_string(greedy),
           std::to_string(knapsack),
           util::TablePrinter::pct(
               static_cast<double>(knapsack) /
                       std::max<std::uint64_t>(1, greedy) - 1.0, 2)});
    }
    std::printf("-- greedy (accesses/size order) vs exact 0/1 knapsack --\n");
    table.print();
    std::printf(
        "the two agree within ~1%% at every budget (the DP is exact on "
        "512-byte-quantized sizes, which costs it a sliver on sub-cell "
        "records) — why MnemoT and the solutions it mirrors use the "
        "simple weight ordering.\n\n");
  }

  // ---- 4: stored vs synthetic payloads --------------------------------
  {
    workload::WorkloadSpec spec = workload::paper_workload("timeline");
    spec.key_count = 500;
    spec.request_count = 5'000;
    const workload::Trace trace = workload::Trace::generate(spec);

    core::SensitivityConfig stored_cfg;
    stored_cfg.repeats = 1;
    stored_cfg.payload_mode = kvstore::PayloadMode::kStored;
    core::SensitivityConfig synth_cfg = stored_cfg;
    synth_cfg.payload_mode = kvstore::PayloadMode::kSynthetic;

    const core::SensitivityEngine stored(stored_cfg);
    const core::SensitivityEngine synth(synth_cfg);
    const hybridmem::Placement all_fast(trace.key_count(),
                                        hybridmem::NodeId::kFast);
    const double stored_runtime =
        stored.run_once(trace, all_fast).runtime_ns;
    const double synth_runtime = synth.run_once(trace, all_fast).runtime_ns;
    std::printf("-- stored vs synthetic payloads --\n");
    std::printf("simulated runtime stored:    %s\n",
                util::format_ns(stored_runtime).c_str());
    std::printf("simulated runtime synthetic: %s\n",
                util::format_ns(synth_runtime).c_str());
    std::printf("identical: %s (all timing comes from the simulated clock; "
                "synthetic mode only skips wall-clock memcpy)\n",
                stored_runtime == synth_runtime ? "yes" : "NO — BUG");
  }
  return 0;
}
