// Serve-mode microbenchmark: what single-flight deduplication is worth
// when concurrent clients ask the consultant the same question. Three
// phases against one Server (caching off, so the only dedup layer is the
// in-memory single-flight memo):
//
//   cold       one client, distinct measure keys — every request replays
//   warm       one client, repeats of a memoized key — zero replays
//   contended  N clients × one identical request each, fresh server —
//              one leader replays, everyone else joins or memo-hits
//   mixed      big and small requests with distinct keys contending for
//              one worker pool: cell-granular scheduling (submit_line on
//              the shared TaskScheduler, smalls deadline-armed so EDF
//              lifts their cells to the head of each round) vs a
//              one-worker-per-request emulation (FIFO dispatchers owning
//              a whole request each). Reports small-request p95 both
//              ways and the speedup — the tentpole acceptance is >= 2x.
//   deadlines  N clients against chaos-stalled campaigns, half carrying a
//              hair-trigger request deadline (the rest ride the server
//              default) — every hair-trigger settles typed via the
//              scheduler's deadline timer, the rest complete
//
// Results go to BENCH_serve.json in a stable schema
// ("mnemo.bench.serve/v1") that future PRs diff against. The smoke mode
// also asserts the dedup contract: the warm phase replays zero campaign
// cells, the contended phase replays exactly one leader's worth, and the
// deadline phase's hit rate is exactly the hair-trigger fraction.
//
//   ./micro_serve               full run, writes BENCH_serve.json
//   ./micro_serve --smoke       tiny workload + schema self-check (CI)
//   ./micro_serve --out FILE    alternate output path
//   ./micro_serve --repeats N   timing repeats per phase (min/median)
//   ./micro_serve --clients N   contended-phase client threads

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/campaign.hpp"
#include "faultinject/io_fault.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/argparse.hpp"
#include "util/timer.hpp"

namespace {

using namespace mnemo;

struct PhaseResult {
  double min_s = 0.0;
  double median_s = 0.0;
  std::size_t campaign_cells = 0;  ///< per repeat (identical across them)
};

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

PhaseResult reduce(const std::vector<double>& seconds, std::size_t cells) {
  PhaseResult r;
  r.min_s = *std::min_element(seconds.begin(), seconds.end());
  r.median_s = median(seconds);
  r.campaign_cells = cells;
  return r;
}

/// Nearest-rank p95 (n >= 1).
double p95(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t rank = (95 * v.size() + 99) / 100;  // ceil(0.95 n)
  return v[rank - 1];
}

serve::Request make_request(bool smoke, std::string id, std::uint64_t seed) {
  serve::Request req;
  req.id = std::move(id);
  req.op = serve::RequestOp::kAdvise;
  req.keys = smoke ? 150 : 1'000;
  req.requests = smoke ? 1'500 : 20'000;
  req.repeats = 1;
  if (seed > 0) req.seed = seed;  // distinct seed => distinct measure key
  return req;
}

struct MixedResult {
  double sched_p95_s = 0.0;  ///< small-request p95, cell-granular server
  double base_p95_s = 0.0;   ///< small-request p95, whole-request baseline
  double speedup = 0.0;      ///< base / sched (higher is better)
};

void write_json(const std::string& path, bool smoke, int repeats,
                std::size_t clients, const PhaseResult& cold,
                const PhaseResult& warm, const PhaseResult& contended,
                const serve::ServeStats& stats, const MixedResult& mixed,
                const PhaseResult& deadlines,
                const serve::ServeStats& deadline_stats) {
  std::ostringstream out;
  char buf[64];
  const auto phase = [&](const char* name, const PhaseResult& r,
                         const char* tail) {
    std::snprintf(buf, sizeof buf, "%.6f", r.min_s);
    out << "    \"" << name << "\": {\"min_s\": " << buf;
    std::snprintf(buf, sizeof buf, "%.6f", r.median_s);
    out << ", \"median_s\": " << buf
        << ", \"campaign_cells\": " << r.campaign_cells << "}" << tail
        << "\n";
  };
  const std::uint64_t dedup = stats.single_flight_joins +
                              stats.measure_memo_hits;
  const double join_rate =
      stats.requests > 0
          ? static_cast<double>(dedup) / static_cast<double>(stats.requests)
          : 0.0;
  out << "{\n";
  out << "  \"schema\": \"mnemo.bench.serve/v1\",\n";
  out << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  out << "  \"repeats\": " << repeats << ",\n";
  out << "  \"clients\": " << clients << ",\n";
  out << "  \"results\": {\n";
  phase("cold", cold, ",");
  phase("warm", warm, ",");
  phase("contended", contended, ",");
  phase("deadline", deadlines, ",");
  out << "    \"single_flight\": {\"leads\": " << stats.measure_leads
      << ", \"joins\": " << stats.single_flight_joins
      << ", \"memo_hits\": " << stats.measure_memo_hits << ", ";
  std::snprintf(buf, sizeof buf, "%.3f", join_rate);
  out << "\"join_rate\": " << buf << "},\n";
  std::snprintf(buf, sizeof buf, "%.6f", mixed.sched_p95_s);
  out << "    \"mixed\": {\"small_p95_s\": " << buf;
  std::snprintf(buf, sizeof buf, "%.6f", mixed.base_p95_s);
  out << ", \"baseline_small_p95_s\": " << buf;
  std::snprintf(buf, sizeof buf, "%.3f", mixed.speedup);
  out << ", \"speedup\": " << buf << "},\n";
  const double hit_rate =
      deadline_stats.requests > 0
          ? static_cast<double>(deadline_stats.deadline_hits) /
                static_cast<double>(deadline_stats.requests)
          : 0.0;
  out << "    \"deadlines\": {\"requests\": " << deadline_stats.requests
      << ", \"hits\": " << deadline_stats.deadline_hits << ", ";
  std::snprintf(buf, sizeof buf, "%.3f", hit_rate);
  out << "\"hit_rate\": " << buf << "}\n";
  out << "  }\n";
  out << "}\n";

  std::ofstream file(path);
  file << out.str();
  if (!file.good()) {
    std::fprintf(stderr, "micro_serve: cannot write %s\n", path.c_str());
    std::exit(1);
  }
}

/// Schema self-check for --smoke: the stable keys are present and the
/// braces balance (not a full parser, just enough to catch a malformed
/// writer before a CI consumer does).
bool validate_json(const std::string& path) {
  std::ifstream file(path);
  std::stringstream ss;
  ss << file.rdbuf();
  const std::string text = ss.str();
  if (text.empty()) return false;
  for (const char* key :
       {"\"schema\": \"mnemo.bench.serve/v1\"", "\"repeats\"", "\"clients\"",
        "\"results\"", "\"cold\"", "\"warm\"", "\"contended\"",
        "\"campaign_cells\"", "\"single_flight\"", "\"join_rate\"",
        "\"mixed\"", "\"small_p95_s\"", "\"speedup\"",
        "\"deadlines\"", "\"hit_rate\""}) {
    if (text.find(key) == std::string::npos) {
      std::fprintf(stderr, "micro_serve: missing key %s\n", key);
      return false;
    }
  }
  long depth = 0;
  for (const char ch : text) {
    if (ch == '{') ++depth;
    if (ch == '}') --depth;
    if (depth < 0) return false;
  }
  return depth == 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser parser("micro_serve",
                         "serve-mode single-flight dedup microbenchmark");
  parser.add_flag("smoke", "tiny workload + schema self-check (CI)");
  parser.add_option("out", "output JSON path", "BENCH_serve.json");
  parser.add_option("repeats", "timing repeats per phase", "");
  parser.add_option("clients", "contended-phase client threads", "8");
  std::vector<std::string> args(argv + 1, argv + argc);
  std::string error;
  if (!parser.parse(args, &error)) {
    std::fprintf(stderr, "%s\n%s", error.c_str(), parser.help().c_str());
    return 2;
  }
  const bool smoke = parser.has_flag("smoke");
  const int repeats = parser.get("repeats").empty()
                          ? (smoke ? 2 : 5)
                          : static_cast<int>(parser.get_u64("repeats"));
  const std::size_t clients =
      static_cast<std::size_t>(parser.get_u64("clients"));
  const std::string out = parser.get("out");

  std::printf("== micro_serve: %s, %d repeats, %zu clients ==\n",
              smoke ? "smoke" : "full", repeats, clients);

  // Cold: one client, a distinct measure key per repeat (seed-varied), so
  // every request pays a full emulator replay.
  std::vector<double> cold_s;
  std::size_t cold_cells = 0;
  serve::ServeOptions cold_options;
  cold_options.threads = 1;
  serve::Server cold_server(std::move(cold_options));
  for (int r = 0; r < repeats; ++r) {
    const std::size_t before = core::campaign_totals().cells;
    util::WallTimer timer;
    const serve::Response resp = cold_server.handle(
        make_request(smoke, "cold-" + std::to_string(r),
                     0x5eed0000ULL + static_cast<std::uint64_t>(r)));
    cold_s.push_back(timer.elapsed_s());
    if (!resp.ok) {
      std::fprintf(stderr, "micro_serve: cold request failed: %s\n",
                   resp.error_message.c_str());
      return 1;
    }
    cold_cells = core::campaign_totals().cells - before;
  }

  // Warm: repeats of a key the cold phase memoized — pure memo hits.
  std::vector<double> warm_s;
  std::size_t warm_cells = 0;
  for (int r = 0; r < repeats; ++r) {
    const std::size_t before = core::campaign_totals().cells;
    util::WallTimer timer;
    const serve::Response resp = cold_server.handle(
        make_request(smoke, "warm-" + std::to_string(r), 0x5eed0000ULL));
    warm_s.push_back(timer.elapsed_s());
    if (!resp.ok) return 1;
    warm_cells = core::campaign_totals().cells - before;
  }

  // Contended: a fresh server per repeat; N clients fire one identical
  // request each, concurrently. Wall clock covers admission to the last
  // response — one leader replays while the rest block and join.
  std::vector<double> contended_s;
  std::size_t contended_cells = 0;
  serve::ServeStats contended_stats;
  for (int r = 0; r < repeats; ++r) {
    serve::ServeOptions options;
    options.threads = clients;
    options.queue_capacity = clients;
    serve::Server server(std::move(options));
    const std::size_t before = core::campaign_totals().cells;

    std::vector<std::future<std::string>> responses(clients);
    util::WallTimer timer;
    {
      std::vector<std::thread> workers;
      workers.reserve(clients);
      for (std::size_t c = 0; c < clients; ++c) {
        workers.emplace_back([&, c] {
          responses[c] = server.submit_line(
              make_request(smoke, "cont-" + std::to_string(c), 0x5eed0000ULL)
                  .to_json_line());
        });
      }
      for (std::thread& t : workers) t.join();
    }
    for (std::future<std::string>& f : responses) (void)f.get();
    contended_s.push_back(timer.elapsed_s());
    contended_cells = core::campaign_totals().cells - before;
    contended_stats = server.stats();
  }

  // Mixed: the cell-granular scheduling payoff. 6 big requests (8 grid
  // repeats => 16 chaos-stalled cells each) are admitted ahead of 8 small
  // ones (2 cells each), every key distinct so single-flight can't help.
  // Scheduler mode submits everything to one Server: requests share the
  // worker pool at cell granularity and the smalls carry a (generous)
  // deadline, so EDF dispatches their cells at the head of every round.
  // The baseline emulates the old one-worker-per-request server: FIFO
  // dispatcher threads each own a whole request at a time, so a small
  // request admitted behind the bigs waits for whole campaigns to clear.
  constexpr std::size_t kMixedBigs = 6;
  constexpr std::size_t kMixedSmalls = 8;
  constexpr std::size_t kMixedThreads = 4;
  const auto mixed_request = [&](std::size_t i, bool big) {
    serve::Request req = make_request(
        smoke, (big ? "big-" : "small-") + std::to_string(i),
        (big ? 0xb160000ULL : 0x5a110000ULL) +
            static_cast<std::uint64_t>(i));
    req.repeats = big ? 8 : 1;
    if (!big) req.deadline_ms = 600'000;  // EDF key, far from expiring
    return req;
  };
  std::vector<double> mixed_sched_p95;
  std::vector<double> mixed_base_p95;
  for (int r = 0; r < repeats; ++r) {
    faultinject::IoFaultPlan plan;
    plan.slow_cell_rate = 1.0;
    plan.slow_cell_ms = smoke ? 10.0 : 5.0;
    faultinject::ScopedIoFaults chaos(plan);

    // Cell-granular: all requests in service at once on one scheduler.
    {
      serve::ServeOptions options;
      options.threads = kMixedThreads;
      options.queue_capacity = kMixedBigs + kMixedSmalls;
      serve::Server server(std::move(options));
      util::WallTimer timer;
      std::vector<std::future<std::string>> bigs;
      for (std::size_t i = 0; i < kMixedBigs; ++i) {
        bigs.push_back(
            server.submit_line(mixed_request(i, true).to_json_line()));
      }
      std::vector<std::future<std::string>> smalls;
      for (std::size_t i = 0; i < kMixedSmalls; ++i) {
        smalls.push_back(
            server.submit_line(mixed_request(i, false).to_json_line()));
      }
      std::vector<double> small_done(kMixedSmalls);
      std::vector<std::thread> waiters;
      for (std::size_t i = 0; i < kMixedSmalls; ++i) {
        waiters.emplace_back([&, i] {
          const std::string line = smalls[i].get();
          small_done[i] = timer.elapsed_s();
          if (line.find("\"ok\":true") == std::string::npos) {
            std::fprintf(stderr, "micro_serve: mixed small failed: %s\n",
                         line.c_str());
            std::exit(1);
          }
        });
      }
      for (std::thread& t : waiters) t.join();
      for (std::future<std::string>& f : bigs) (void)f.get();
      mixed_sched_p95.push_back(p95(small_done));
    }

    // Whole-request baseline: same request mix and arrival order, but
    // dispatcher threads own one request each from admission to answer.
    {
      serve::ServeOptions options;
      options.threads = kMixedThreads;
      options.queue_capacity = kMixedBigs + kMixedSmalls;
      serve::Server server(std::move(options));
      std::vector<serve::Request> fifo;
      for (std::size_t i = 0; i < kMixedBigs; ++i) {
        fifo.push_back(mixed_request(i, true));
      }
      for (std::size_t i = 0; i < kMixedSmalls; ++i) {
        fifo.push_back(mixed_request(i, false));
      }
      std::vector<double> done(fifo.size());
      std::atomic<std::size_t> next{0};
      util::WallTimer timer;
      std::vector<std::thread> dispatchers;
      for (std::size_t t = 0; t < kMixedThreads; ++t) {
        dispatchers.emplace_back([&] {
          for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= fifo.size()) return;
            const serve::Response resp = server.handle(fifo[i]);
            done[i] = timer.elapsed_s();
            if (!resp.ok) {
              std::fprintf(stderr,
                           "micro_serve: mixed baseline failed: %s\n",
                           resp.error_message.c_str());
              std::exit(1);
            }
          }
        });
      }
      for (std::thread& t : dispatchers) t.join();
      mixed_base_p95.push_back(p95(
          {done.begin() + static_cast<std::ptrdiff_t>(kMixedBigs),
           done.end()}));
    }
  }
  MixedResult mixed;
  mixed.sched_p95_s = median(mixed_sched_p95);
  mixed.base_p95_s = median(mixed_base_p95);
  mixed.speedup =
      mixed.sched_p95_s > 0.0 ? mixed.base_p95_s / mixed.sched_p95_s : 0.0;

  // Deadlines: a fresh server per repeat with every campaign cell stalled
  // by injected chaos (so a hair-trigger deadline always lapses
  // mid-campaign). Even-numbered clients carry a 1ms request deadline —
  // the scheduler's deadline timer turns each into a typed
  // deadline_exceeded answer — while
  // the rest carry none and ride the generous server default to a full
  // answer. Distinct seeds keep the flights separate, so the hit count is
  // exactly the hair-trigger fraction.
  std::vector<double> deadline_s;
  serve::ServeStats deadline_stats;
  for (int r = 0; r < repeats; ++r) {
    faultinject::IoFaultPlan plan;
    plan.slow_cell_rate = 1.0;
    plan.slow_cell_ms = smoke ? 20.0 : 5.0;
    faultinject::ScopedIoFaults chaos(plan);

    serve::ServeOptions options;
    options.threads = clients;
    options.queue_capacity = clients;
    options.default_deadline_ms = 600'000;
    serve::Server server(std::move(options));

    std::vector<std::future<std::string>> responses(clients);
    util::WallTimer timer;
    for (std::size_t c = 0; c < clients; ++c) {
      serve::Request req =
          make_request(smoke, "dl-" + std::to_string(c),
                       0xdead0000ULL + static_cast<std::uint64_t>(c));
      if (c % 2 == 0) req.deadline_ms = 1;
      responses[c] = server.submit_line(req.to_json_line());
    }
    for (std::future<std::string>& f : responses) (void)f.get();
    deadline_s.push_back(timer.elapsed_s());
    deadline_stats = server.stats();
  }

  const PhaseResult cold = reduce(cold_s, cold_cells);
  const PhaseResult warm = reduce(warm_s, warm_cells);
  const PhaseResult contended = reduce(contended_s, contended_cells);
  const PhaseResult deadlines = reduce(deadline_s, 0);
  std::printf("cold      %10.3f ms (min %10.3f)  %zu campaign cells\n",
              cold.median_s * 1e3, cold.min_s * 1e3, cold.campaign_cells);
  std::printf("warm      %10.3f ms (min %10.3f)  %zu campaign cells\n",
              warm.median_s * 1e3, warm.min_s * 1e3, warm.campaign_cells);
  std::printf("contended %10.3f ms (min %10.3f)  %zu campaign cells\n",
              contended.median_s * 1e3, contended.min_s * 1e3,
              contended.campaign_cells);
  std::printf("mixed     small p95 %8.3f ms vs baseline %8.3f ms "
              "(%.2fx)\n",
              mixed.sched_p95_s * 1e3, mixed.base_p95_s * 1e3,
              mixed.speedup);
  std::printf("deadline  %10.3f ms (min %10.3f)  %llu/%llu hit\n",
              deadlines.median_s * 1e3, deadlines.min_s * 1e3,
              static_cast<unsigned long long>(deadline_stats.deadline_hits),
              static_cast<unsigned long long>(deadline_stats.requests));
  std::printf("single-flight: %llu leads, %llu joins, %llu memo hits\n",
              static_cast<unsigned long long>(contended_stats.measure_leads),
              static_cast<unsigned long long>(
                  contended_stats.single_flight_joins),
              static_cast<unsigned long long>(
                  contended_stats.measure_memo_hits));

  write_json(out, smoke, repeats, clients, cold, warm, contended,
             contended_stats, mixed, deadlines, deadline_stats);
  std::printf("wrote %s\n", out.c_str());

  if (smoke) {
    if (warm.campaign_cells != 0) {
      std::fprintf(stderr, "micro_serve: warm request replayed the grid\n");
      return 1;
    }
    if (contended.campaign_cells != cold.campaign_cells) {
      std::fprintf(stderr,
                   "micro_serve: contended phase replayed more than one "
                   "leader's worth (%zu vs %zu cells)\n",
                   contended.campaign_cells, cold.campaign_cells);
      return 1;
    }
    if (contended_stats.measure_leads != 1 ||
        contended_stats.single_flight_joins +
                contended_stats.measure_memo_hits !=
            clients - 1) {
      std::fprintf(stderr, "micro_serve: dedup accounting is off\n");
      return 1;
    }
    if (mixed.speedup < 2.0) {
      std::fprintf(stderr,
                   "micro_serve: mixed-phase small-request p95 speedup "
                   "%.2fx is below the 2x acceptance floor (sched %.3f ms "
                   "vs baseline %.3f ms)\n",
                   mixed.speedup, mixed.sched_p95_s * 1e3,
                   mixed.base_p95_s * 1e3);
      return 1;
    }
    const std::uint64_t hair_trigger = (clients + 1) / 2;
    if (deadline_stats.deadline_hits != hair_trigger ||
        deadline_stats.ok != clients - hair_trigger) {
      std::fprintf(stderr,
                   "micro_serve: deadline accounting is off "
                   "(%llu hits, %llu ok; expected %llu/%llu)\n",
                   static_cast<unsigned long long>(
                       deadline_stats.deadline_hits),
                   static_cast<unsigned long long>(deadline_stats.ok),
                   static_cast<unsigned long long>(hair_trigger),
                   static_cast<unsigned long long>(clients - hair_trigger));
      return 1;
    }
    if (!validate_json(out)) {
      std::fprintf(stderr, "micro_serve: schema validation FAILED\n");
      return 1;
    }
    std::printf("schema ok\n");
  }
  return 0;
}
