// Figure 4: "CDF of common data sizes used across social media platforms.
// Horizontal axis depicts size (Bytes) in logarithmic scale."
//
// Plots (a) the cheat-sheet dataset of typical content sizes across
// platforms and (b) the per-key size models the Table III workloads use
// (photo caption ~1 KB, text post ~10 KB, thumbnail ~100 KB).

#include <cmath>
#include <cstdio>

#include "stats/cdf.hpp"
#include "util/ascii_plot.hpp"
#include "util/bytes.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "workload/record_size.hpp"

int main() {
  using namespace mnemo;
  std::printf("== Fig 4: CDF of common social-media data sizes ==\n\n");

  // (a) the cheat-sheet dataset itself.
  std::vector<double> log_sizes;
  for (const auto& e : workload::social_media_size_table()) {
    log_sizes.push_back(std::log10(static_cast<double>(e.typical_bytes)));
  }
  const stats::EmpiricalCdf sheet_cdf(log_sizes);
  util::AsciiPlot plot("Fig 4: data-size CDF (x = log10 bytes)",
                       "log10(size bytes)", "CDF", 72, 18);
  {
    util::PlotSeries series;
    series.name = "social media cheat sheet entries";
    series.marker = '*';
    for (const auto& [x, y] : sheet_cdf.curve(40)) {
      series.x.push_back(x);
      series.y.push_back(y);
    }
    plot.add(std::move(series));
  }

  // (b) the workload record-size models.
  util::csv::Writer csv("fig4_size_cdf.csv");
  csv.row({"model", "log10_bytes", "cdf"});
  const std::vector<std::pair<workload::RecordSizeType, char>> models = {
      {workload::RecordSizeType::kPhotoCaption, 'c'},
      {workload::RecordSizeType::kTextPost, 't'},
      {workload::RecordSizeType::kThumbnail, 'T'},
      {workload::RecordSizeType::kPreviewMix, 'm'},
  };
  util::TablePrinter table(
      {"size model", "p10", "median", "p90", "nominal"});
  for (const auto& [type, marker] : models) {
    const auto model = workload::make_size_model(type, 0xf16);
    std::vector<double> logs;
    std::vector<double> raw;
    for (std::uint64_t k = 0; k < 10'000; ++k) {
      const auto bytes = model->size_of(k);
      raw.push_back(static_cast<double>(bytes));
      logs.push_back(std::log10(static_cast<double>(bytes)));
    }
    const stats::EmpiricalCdf cdf(logs);
    util::PlotSeries series;
    series.name = std::string(to_string(type));
    series.marker = marker;
    for (const auto& [x, y] : cdf.curve(40)) {
      series.x.push_back(x);
      series.y.push_back(y);
      csv.field(std::string(to_string(type))).field(x, 5).field(y, 5);
      csv.end_row();
    }
    plot.add(std::move(series));

    const stats::EmpiricalCdf raw_cdf(raw);
    table.add_row(
        {std::string(to_string(type)),
         util::format_bytes(static_cast<std::uint64_t>(raw_cdf.quantile(0.1))),
         util::format_bytes(static_cast<std::uint64_t>(raw_cdf.quantile(0.5))),
         util::format_bytes(static_cast<std::uint64_t>(raw_cdf.quantile(0.9))),
         util::format_bytes(workload::nominal_bytes(type))});
  }

  plot.print();
  std::printf("\nworkload record-size models (Table III types):\n");
  table.print();
  std::printf(
      "\npaper: captions ~1 KB, text posts ~10 KB, thumbnails ~100 KB — "
      "three decades of size, all exercised by the Trending Preview mix.\n"
      "wrote fig4_size_cdf.csv\n");
  return 0;
}
