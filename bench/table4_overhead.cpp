// Table IV: comparison of the profiling overheads between MnemoT and
// existing tiering solutions.
//
// Each strategy is actually implemented and wall-clock timed on the
// Trending workload at paper scale:
//   - MnemoT: descriptor-only weights, two executed baselines
//   - instrumentation (X-Mem / Unimem style): per-access event stream
//   - one baseline + learned model (Tahoe style): training-data
//     collection plus inference of the FastMem baseline
// These are the only wall-clock numbers in the repository — they time the
// profilers themselves, not the simulated workload.

#include <cstdio>
#include <cstdlib>

#include "core/campaign.hpp"
#include "core/profilers.hpp"
#include "util/table.hpp"
#include "workload/suite.hpp"

int main(int argc, char** argv) {
  using namespace mnemo;
  std::printf("== Table IV: profiling overhead comparison ==\n\n");

  const workload::Trace trace =
      workload::Trace::generate(workload::paper_workload("trending"));
  core::SensitivityConfig cfg;
  cfg.repeats = 1;
  // Optional: ./table4_overhead [threads]  (0 = hardware concurrency).
  cfg.threads = argc > 1 ? static_cast<std::size_t>(std::strtoul(
                               argv[1], nullptr, 10))
                         : 0;
  const core::SensitivityEngine engine(cfg);

  const auto mnemot = core::run_mnemot_profiler(trace, engine);
  const auto instr = core::run_instrumented_profiler(trace, engine);
  const auto ml = core::run_ml_baseline_profiler(trace, engine);

  util::TablePrinter table({"strategy", "input prep (ms)", "baselines (ms)",
                            "tiering (ms)", "total (ms)", "fast baseline"});
  auto add = [&](const core::ProfilerOutput& out) {
    char inferred[64];
    if (out.fast_baseline_inferred) {
      std::snprintf(inferred, sizeof inferred, "inferred (%.1f%% err)",
                    out.inferred_fast_runtime_error_pct);
    } else {
      std::snprintf(inferred, sizeof inferred, "measured");
    }
    table.add_row({out.strategy,
                   util::TablePrinter::num(out.costs.input_prep_s * 1e3, 3),
                   util::TablePrinter::num(out.costs.baselines_s * 1e3, 3),
                   util::TablePrinter::num(out.costs.tiering_s * 1e3, 3),
                   util::TablePrinter::num(out.costs.total_s() * 1e3, 3),
                   inferred});
  };
  add(mnemot);
  add(instr);
  add(ml);
  table.print();

  std::printf("\ntiering-stage overhead vs MnemoT: instrumentation %.1fx, "
              "ML-baseline %.1fx\n",
              instr.costs.tiering_s / std::max(1e-9, mnemot.costs.tiering_s),
              ml.costs.tiering_s / std::max(1e-9, mnemot.costs.tiering_s));
  std::printf("baseline-stage overhead vs MnemoT: ML-baseline %.1fx "
              "(training-data collection dominates)\n",
              ml.costs.baselines_s /
                  std::max(1e-9, mnemot.costs.baselines_s));

  std::printf(
      "\nqualitative columns of the paper's Table IV:\n"
      "  input preparation: MnemoT needs only the workload descriptor "
      "(keys + sizes); others instrument the server with a custom "
      "allocation API.\n"
      "  performance baselines: MnemoT executes both extremes as-is; "
      "X-Mem runs microbenchmarks; Tahoe executes one baseline and infers "
      "the other from a trained model.\n"
      "  tiering: MnemoT computes accesses/size per key from the "
      "descriptor; others aggregate low-level access monitoring (Pin "
      "instrumentation can add up to 40x).\n");
  std::printf("\n%s",
              core::campaign_totals().render("campaign totals").c_str());
  return 0;
}
