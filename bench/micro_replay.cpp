// Wall-clock replay microbenchmark: the tool's own speed, not the
// simulated system's. Every sweep cell the campaign runner fans out is one
// full trace replay (populate + execute) through DualServer → HybridMemory
// → LlcModel, so ops/sec here is the multiplier on everything the repo
// reproduces. Results go to BENCH_replay.json in a stable schema
// ("mnemo.bench.replay/v1") that future PRs diff against to prove
// regressions or speedups.
//
//   ./micro_replay                 full run, writes BENCH_replay.json
//   ./micro_replay --smoke         few iterations + schema self-check (CI)
//   ./micro_replay --out FILE      alternate output path
//   ./micro_replay --repeats N     timing repeats per cell (min/median)

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "hybridmem/emulation_profile.hpp"
#include "hybridmem/hybrid_memory.hpp"
#include "kvstore/dual_server.hpp"
#include "util/argparse.hpp"
#include "util/timer.hpp"
#include "workload/trace.hpp"
#include "workload/workload_spec.hpp"

namespace {

using namespace mnemo;

struct PhaseTiming {
  std::uint64_t ops = 0;
  double min_ops_per_s = 0.0;
  double median_ops_per_s = 0.0;
};

struct CellResult {
  kvstore::StoreKind store = kvstore::StoreKind::kVermilion;
  double fast_fraction = 0.0;
  PhaseTiming load;
  PhaseTiming execute;
};

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

PhaseTiming reduce(std::uint64_t ops, const std::vector<double>& seconds) {
  PhaseTiming t;
  t.ops = ops;
  std::vector<double> rates;
  rates.reserve(seconds.size());
  for (const double s : seconds) {
    rates.push_back(static_cast<double>(ops) / s);
  }
  t.min_ops_per_s = *std::min_element(rates.begin(), rates.end());
  t.median_ops_per_s = median(rates);
  return t;
}

workload::Trace make_trace(bool smoke) {
  workload::WorkloadSpec spec;
  spec.name = smoke ? "replay_smoke" : "replay";
  spec.distribution = workload::DistributionKind::kZipfian;
  spec.dist_params.zipf_theta = 0.9;
  spec.read_fraction = 0.9;
  spec.record_size = workload::RecordSizeType::kPreviewMix;
  spec.key_count = smoke ? 300 : 4'000;
  spec.request_count = smoke ? 3'000 : 200'000;
  spec.seed = 0x5eed;
  return workload::Trace::generate(spec);
}

CellResult run_cell(const workload::Trace& trace, kvstore::StoreKind store,
                    double fast_fraction, int repeats) {
  std::vector<std::uint64_t> order(trace.key_count());
  for (std::uint64_t k = 0; k < trace.key_count(); ++k) order[k] = k;
  const auto prefix = static_cast<std::size_t>(
      fast_fraction * static_cast<double>(trace.key_count()));
  const hybridmem::Placement placement =
      hybridmem::Placement::from_order(order, prefix);

  const std::uint64_t need = std::max<std::uint64_t>(
      trace.dataset_bytes() * 2, 64ULL * 1024 * 1024);

  std::vector<double> load_s;
  std::vector<double> exec_s;
  for (int r = 0; r < repeats; ++r) {
    hybridmem::HybridMemory memory(
        hybridmem::paper_testbed_with_capacity(need));
    kvstore::StoreConfig cfg;
    cfg.seed = 0xbe7c + static_cast<std::uint64_t>(r);
    kvstore::DualServer servers(memory, store, cfg);

    util::WallTimer timer;
    if (!servers.populate(trace, placement).ok()) {
      std::fprintf(stderr, "micro_replay: populate failed\n");
      std::exit(1);
    }
    load_s.push_back(timer.elapsed_s());

    memory.drop_caches();
    timer.reset();
    for (const workload::Request& req : trace.requests()) {
      const util::Result<kvstore::OpResult> served = servers.execute(req);
      if (!served.ok() || !served.value().ok) {
        std::fprintf(stderr, "micro_replay: execute failed\n");
        std::exit(1);
      }
    }
    exec_s.push_back(timer.elapsed_s());
  }

  CellResult cell;
  cell.store = store;
  cell.fast_fraction = fast_fraction;
  cell.load = reduce(trace.initial_key_count(), load_s);
  cell.execute = reduce(trace.requests().size(), exec_s);
  return cell;
}

void write_json(const std::string& path, const workload::Trace& trace,
                bool smoke, int repeats,
                const std::vector<CellResult>& cells) {
  std::ostringstream out;
  char buf[64];
  out << "{\n";
  out << "  \"schema\": \"mnemo.bench.replay/v1\",\n";
  out << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  out << "  \"repeats\": " << repeats << ",\n";
  out << "  \"workload\": {\"name\": \"" << trace.name()
      << "\", \"key_count\": " << trace.key_count()
      << ", \"request_count\": " << trace.requests().size() << "},\n";
  out << "  \"results\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    std::snprintf(buf, sizeof buf, "%.3f", c.fast_fraction);
    out << "    {\"store\": \"" << kvstore::to_string(c.store)
        << "\", \"fast_fraction\": " << buf << ",\n";
    const auto phase = [&](const char* name, const PhaseTiming& t,
                           const char* tail) {
      out << "     \"" << name << "\": {\"ops\": " << t.ops;
      std::snprintf(buf, sizeof buf, "%.1f", t.min_ops_per_s);
      out << ", \"min_ops_per_s\": " << buf;
      std::snprintf(buf, sizeof buf, "%.1f", t.median_ops_per_s);
      out << ", \"median_ops_per_s\": " << buf << "}" << tail << "\n";
    };
    phase("load", c.load, ",");
    phase("execute", c.execute, "");
    out << "    }" << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";

  std::ofstream file(path);
  file << out.str();
  if (!file.good()) {
    std::fprintf(stderr, "micro_replay: cannot write %s\n", path.c_str());
    std::exit(1);
  }
}

/// Schema self-check for --smoke: re-read the file and verify the stable
/// keys are present and the JSON braces balance. Not a full parser — just
/// enough to catch a malformed writer before a CI consumer does.
bool validate_json(const std::string& path, std::size_t expected_results) {
  std::ifstream file(path);
  std::stringstream ss;
  ss << file.rdbuf();
  const std::string text = ss.str();
  if (text.empty()) return false;
  for (const char* key :
       {"\"schema\": \"mnemo.bench.replay/v1\"", "\"repeats\"",
        "\"workload\"", "\"results\"", "\"load\"", "\"execute\"",
        "\"min_ops_per_s\"", "\"median_ops_per_s\""}) {
    if (text.find(key) == std::string::npos) {
      std::fprintf(stderr, "micro_replay: missing key %s\n", key);
      return false;
    }
  }
  long depth = 0;
  for (const char ch : text) {
    if (ch == '{') ++depth;
    if (ch == '}') --depth;
    if (depth < 0) return false;
  }
  if (depth != 0) return false;
  std::size_t stores = 0;
  for (std::size_t pos = text.find("\"store\""); pos != std::string::npos;
       pos = text.find("\"store\"", pos + 1)) {
    ++stores;
  }
  return stores == expected_results;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser parser("micro_replay",
                         "wall-clock replay throughput microbenchmark");
  parser.add_flag("smoke", "tiny workload + schema self-check (CI)");
  parser.add_option("out", "output JSON path", "BENCH_replay.json");
  parser.add_option("repeats", "timing repeats per cell", "");
  std::vector<std::string> args(argv + 1, argv + argc);
  std::string error;
  if (!parser.parse(args, &error)) {
    std::fprintf(stderr, "%s\n%s", error.c_str(), parser.help().c_str());
    return 2;
  }
  const bool smoke = parser.has_flag("smoke");
  const int repeats = parser.get("repeats").empty()
                          ? (smoke ? 2 : 5)
                          : static_cast<int>(parser.get_u64("repeats"));
  const std::string out = parser.get("out");

  const workload::Trace trace = make_trace(smoke);
  const std::vector<kvstore::StoreKind> stores = {
      kvstore::StoreKind::kVermilion, kvstore::StoreKind::kCachet,
      kvstore::StoreKind::kDynaStore};
  const std::vector<double> splits = {0.0, 0.5, 1.0};

  std::printf("== micro_replay: %s, %llu keys, %zu requests, %d repeats ==\n",
              trace.name().c_str(),
              static_cast<unsigned long long>(trace.key_count()),
              trace.requests().size(), repeats);

  std::vector<CellResult> cells;
  for (const kvstore::StoreKind store : stores) {
    for (const double split : splits) {
      const CellResult cell = run_cell(trace, store, split, repeats);
      std::printf(
          "%-10s split %.2f  load %12.0f ops/s (min %12.0f)  "
          "execute %12.0f ops/s (min %12.0f)\n",
          std::string(kvstore::to_string(store)).c_str(), split,
          cell.load.median_ops_per_s, cell.load.min_ops_per_s,
          cell.execute.median_ops_per_s, cell.execute.min_ops_per_s);
      cells.push_back(cell);
    }
  }

  write_json(out, trace, smoke, repeats, cells);
  std::printf("wrote %s\n", out.c_str());
  if (smoke && !validate_json(out, cells.size())) {
    std::fprintf(stderr, "micro_replay: schema validation FAILED\n");
    return 1;
  }
  if (smoke) std::printf("schema ok\n");
  return 0;
}
