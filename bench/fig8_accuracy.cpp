// Figure 8: evaluation of Mnemo's estimate accuracy across key-value
// stores.
//   (a) boxplots of throughput-estimate error per store  (paper: ~0.07%
//       median)
//   (b) store comparison on the Trending workload (DynamoDB-like most
//       sensitive, Memcached-like flat)
//   (c) average-latency estimate accuracy
//   (d/e) p95 / p99 tail latencies (reported, not estimated)
//   (f) MnemoT's estimate stays accurate under the tiered key ordering

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_common.hpp"
#include "core/tail_estimator.hpp"
#include "core/tiering.hpp"
#include "stats/summary.hpp"
#include "util/ascii_plot.hpp"
#include "util/bytes.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "workload/suite.hpp"

namespace {

using namespace mnemo;

void print_boxplot_row(util::TablePrinter& table, const char* label,
                       std::vector<double> errors) {
  const auto b = stats::boxplot(errors);
  table.add_row({label, util::TablePrinter::num(b.whisker_lo, 3),
                 util::TablePrinter::num(b.q1, 3),
                 util::TablePrinter::num(b.median, 3),
                 util::TablePrinter::num(b.q3, 3),
                 util::TablePrinter::num(b.whisker_hi, 3),
                 std::to_string(b.n), std::to_string(b.outliers)});
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Fig 8: estimate accuracy across key-value stores ==\n");
  core::MnemoConfig config;
  config.repeats = 2;
  // Optional: ./fig8_accuracy [threads]  (0 = hardware concurrency).
  config.threads = argc > 1
                       ? static_cast<std::size_t>(std::strtoul(
                             argv[1], nullptr, 10))
                       : 0;

  const auto suite = workload::paper_suite();
  util::csv::Writer csv("fig8_accuracy.csv");
  csv.row({"store", "workload", "cost_factor", "thr_err_pct", "lat_err_pct",
           "meas_p95_us", "meas_p99_us"});

  // Collect sweeps for every store x workload.
  struct Cell {
    kvstore::StoreKind store;
    bench::SweepResult sweep;
  };
  std::vector<Cell> cells;
  for (const kvstore::StoreKind store : kvstore::kAllStoreKinds) {
    for (const auto& spec : suite) {
      const workload::Trace trace = workload::Trace::generate(spec);
      cells.push_back({store, bench::run_sweep(trace, store, config)});
    }
  }

  // ---- (a) throughput error boxplots + (c) latency error ----
  util::TablePrinter boxes({"store", "whisk-lo", "q1", "median", "q3",
                            "whisk-hi", "n", "outliers"});
  util::TablePrinter lat_boxes({"store", "whisk-lo", "q1", "median", "q3",
                                "whisk-hi", "n", "outliers"});
  std::vector<double> all_errors;
  for (const kvstore::StoreKind store : kvstore::kAllStoreKinds) {
    std::vector<double> thr_err;
    std::vector<double> lat_err;
    for (const Cell& cell : cells) {
      if (cell.store != store) continue;
      for (const bench::SweepPoint& p : cell.sweep.points) {
        thr_err.push_back(p.throughput_error_pct);
        lat_err.push_back(p.latency_error_pct);
        all_errors.push_back(std::fabs(p.throughput_error_pct));
        csv.field(std::string(kvstore::to_string(store)))
            .field(cell.sweep.workload)
            .field(p.cost_factor, 4)
            .field(p.throughput_error_pct, 5)
            .field(p.latency_error_pct, 5)
            .field(p.meas_p95_ns / 1e3, 6)
            .field(p.meas_p99_ns / 1e3, 6);
        csv.end_row();
      }
    }
    print_boxplot_row(boxes, bench::store_label(store), thr_err);
    print_boxplot_row(lat_boxes, bench::store_label(store), lat_err);
  }
  std::printf("\n-- Fig 8a: throughput estimate error %% ((r-e)/r*100) --\n");
  boxes.print();
  std::printf("\noverall |error| median: %.3f%% (paper: 0.07%% median)\n",
              stats::median(all_errors));
  std::printf("\n-- Fig 8c: average-latency estimate error %% --\n");
  lat_boxes.print();

  // ---- (b) store comparison on Trending ----
  std::printf("\n-- Fig 8b: store comparison, Trending workload --\n");
  util::AsciiPlot cmp("Fig 8b: trending across stores", "memory cost R(p)",
                      "throughput (ops/s)", 72, 20);
  util::TablePrinter sens({"store", "SlowMem-only ops/s", "FastMem-only ops/s",
                           "sensitivity"});
  const char cmp_markers[] = {'r', 'm', 'd'};
  std::size_t mi = 0;
  for (const kvstore::StoreKind store : kvstore::kAllStoreKinds) {
    for (const Cell& cell : cells) {
      if (cell.store != store || cell.sweep.workload != "trending") continue;
      util::PlotSeries series;
      series.name = bench::store_label(store);
      series.marker = cmp_markers[mi];
      for (const bench::SweepPoint& p : cell.sweep.points) {
        series.x.push_back(p.cost_factor);
        series.y.push_back(p.meas_throughput);
      }
      cmp.add(std::move(series));
      const auto& b = cell.sweep.report.baselines;
      sens.add_row({bench::store_label(store),
                    util::TablePrinter::num(b.slow.throughput_ops, 0),
                    util::TablePrinter::num(b.fast.throughput_ops, 0),
                    util::TablePrinter::pct(b.sensitivity(), 1)});
    }
    ++mi;
  }
  cmp.print();
  sens.print();

  // ---- (d/e) tail latencies ----
  std::printf(
      "\n-- Fig 8d/8e: tail latencies (paper: reported only; est columns "
      "are this repo's mixture-model extension) --\n");
  util::TablePrinter tails({"store", "workload", "cost", "avg (us)",
                            "p95 (us)", "est p95", "p99 (us)", "est p99"});
  for (const Cell& cell : cells) {
    if (cell.sweep.workload != "trending") continue;
    for (const bench::SweepPoint& p : cell.sweep.points) {
      if (p.fast_keys != 0 &&
          p.fast_keys != cell.sweep.report.pattern.key_count() &&
          p.cost_factor > 0.45 && p.cost_factor < 0.75) {
        const core::TailEstimate est = core::TailEstimator::estimate(
            cell.sweep.report.pattern, cell.sweep.report.order, p.fast_keys,
            cell.sweep.report.baselines);
        tails.add_row({bench::store_label(cell.store), cell.sweep.workload,
                       util::TablePrinter::num(p.cost_factor, 2),
                       util::TablePrinter::num(p.meas_avg_latency_ns / 1e3, 1),
                       util::TablePrinter::num(p.meas_p95_ns / 1e3, 1),
                       util::TablePrinter::num(est.p95_ns / 1e3, 1),
                       util::TablePrinter::num(p.meas_p99_ns / 1e3, 1),
                       util::TablePrinter::num(est.p99_ns / 1e3, 1)});
      }
    }
  }
  tails.print();
  std::printf(
      "note: p99 >> avg (deterministic tail-spike model); the paper's "
      "simple analytical model deliberately does not estimate tails. The "
      "est columns use the baseline-mixture extension "
      "(core/tail_estimator).\n");

  // ---- (f) MnemoT ordering accuracy ----
  std::printf("\n-- Fig 8f: estimate accuracy under MnemoT tiered ordering --\n");
  {
    const workload::Trace trace =
        workload::Trace::generate(workload::paper_workload("timeline"));
    core::MnemoConfig tiered_cfg = config;
    tiered_cfg.ordering = core::OrderingPolicy::kTiered;
    const bench::SweepResult tiered = bench::run_sweep(
        trace, kvstore::StoreKind::kVermilion, tiered_cfg);
    util::TablePrinter table({"ordering", "cost", "est ops/s", "meas ops/s",
                              "err %"});
    std::vector<double> errs;
    for (const bench::SweepPoint& p : tiered.points) {
      errs.push_back(std::fabs(p.throughput_error_pct));
      table.add_row({"MnemoT (accesses/size)",
                     util::TablePrinter::num(p.cost_factor, 3),
                     util::TablePrinter::num(p.est_throughput, 0),
                     util::TablePrinter::num(p.meas_throughput, 0),
                     util::TablePrinter::num(p.throughput_error_pct, 3)});
    }
    table.print();
    std::printf(
        "MnemoT |error| median: %.3f%% — the model stays accurate after "
        "re-ordering keys (paper Fig 8f).\n",
        stats::median(errs));
  }

  std::printf("\nwrote fig8_accuracy.csv\n");
  bench::print_campaign_totals();
  return 0;
}
