// Dynamic re-tiering extension ("MnemoDyn") vs Mnemo's static placements.
//
// The paper ships static placement only and observes that News-Feed-style
// workloads — whose hot set keeps moving — can barely profit from it
// (Fig 9). This bench quantifies the gap an epoch-based, drift-predictive
// migrator closes, at a fixed 30%-of-dataset FastMem budget:
//   - static oracle: whole-trace accesses/size priority (MnemoT's advice)
//   - dynamic reactive: EWMA re-tiering, no prediction
//   - dynamic predictive: + hot-zone velocity estimation and pre-promotion

#include <algorithm>
#include <cstdio>

#include "core/migration.hpp"
#include "util/bytes.hpp"
#include "util/table.hpp"
#include "workload/suite.hpp"

namespace {

using namespace mnemo;

struct Row {
  const char* label;
  double throughput;
  std::uint64_t migrations;
  double migration_ms;
};

}  // namespace

int main() {
  std::printf(
      "== Dynamic re-tiering vs static placement (FastMem budget = 30%% "
      "of dataset) ==\n\n");

  core::SensitivityConfig sens;
  sens.repeats = 1;

  for (const char* name : {"trending", "news_feed", "ycsb_d"}) {
    workload::WorkloadSpec spec =
        std::string(name) == "ycsb_d" ? workload::ycsb_d()
                                      : workload::paper_workload(name);
    spec.key_count = 2'000;
    spec.request_count = 40'000;
    if (spec.insert_fraction == 0.0 &&
        spec.distribution == workload::DistributionKind::kLatest) {
      // Hot zone sweeps the key space once over the run. (ycsb_d needs no
      // synthetic drift — its inserts move the hot set natively.)
      spec.dist_params.latest_drift =
          static_cast<double>(spec.key_count) /
          static_cast<double>(spec.request_count);
    }
    const workload::Trace trace = workload::Trace::generate(spec);

    core::MigrationConfig mig;
    mig.fast_budget_bytes = static_cast<std::uint64_t>(
        0.3 * static_cast<double>(trace.dataset_bytes()));
    mig.epoch_requests = 2'000;
    // Per-epoch copy budget proportional to the dataset so small-record
    // workloads don't thrash (score noise would otherwise churn far more
    // keys than the hot set actually moves).
    mig.migration_bytes_per_epoch = std::clamp<std::uint64_t>(
        trace.dataset_bytes() / 16, 2ULL << 20, 16ULL << 20);

    core::MigrationConfig reactive = mig;
    reactive.predictive = false;
    core::MigrationConfig background = mig;
    background.foreground = false;

    const core::DynamicTierer pred(sens, mig);
    const core::DynamicTierer react(sens, reactive);
    const core::DynamicTierer bg(sens, background);

    const auto oracle = pred.run_static_oracle(trace);
    const auto r_react = react.run(trace);
    const auto r_pred = pred.run(trace);
    const auto r_bg = bg.run(trace);

    std::printf("-- %s (%s keys, %zu requests) --\n", name,
                util::format_bytes(trace.dataset_bytes()).c_str(),
                trace.requests().size());
    util::TablePrinter table({"strategy", "throughput (ops/s)",
                              "vs static", "keys moved", "migration (ms)"});
    auto add = [&](const char* label, double thr, std::uint64_t migs,
                   double mig_ms) {
      table.add_row({label, util::TablePrinter::num(thr, 0),
                     util::TablePrinter::pct(thr / oracle.throughput_ops - 1.0,
                                             1),
                     std::to_string(migs),
                     util::TablePrinter::num(mig_ms, 0)});
    };
    add("static oracle (MnemoT advice)", oracle.throughput_ops, 0, 0.0);
    add("dynamic, reactive", r_react.measurement.throughput_ops,
        r_react.migrations, r_react.migration_ns / 1e6);
    add("dynamic, predictive (fg copies)",
        r_pred.measurement.throughput_ops, r_pred.migrations,
        r_pred.migration_ns / 1e6);
    add("dynamic, predictive (bg copies)",
        r_bg.measurement.throughput_ops, r_bg.migrations,
        r_bg.migration_ns / 1e6);
    table.print();
    std::printf("\n");
  }

  std::printf(
      "expected shape: on the stationary trending hot set the static "
      "oracle is (near) unbeatable — dynamic pays learning and copy costs "
      "for nothing; on the drifting news feed every static placement goes "
      "stale and the predictive migrator wins it back. ycsb_d's 10 KB "
      "posts fit the LLC, which absorbs the moving hot set regardless of "
      "placement — background-dynamic merely matches the oracle there, "
      "itself a correct call (don't migrate what the cache already "
      "hides).\n");
  return 0;
}
