#pragma once

// Shared harness code for the per-figure bench binaries: capacity sweeps
// that pair Mnemo's analytical estimate with actual (simulated) execution
// of the same placements, the way the paper's Fig 5/8/9 pair estimate
// lines with measured points.

#include <cstdio>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/mnemo.hpp"
#include "core/placement_engine.hpp"

namespace mnemo::bench {

/// One measured-vs-estimated capacity point of a sweep.
struct SweepPoint {
  double cost_factor = 0.0;
  std::size_t fast_keys = 0;
  double est_throughput = 0.0;
  double meas_throughput = 0.0;
  double est_avg_latency_ns = 0.0;
  double meas_avg_latency_ns = 0.0;
  double meas_p95_ns = 0.0;
  double meas_p99_ns = 0.0;
  double throughput_error_pct = 0.0;  ///< (r - e)/r * 100
  double latency_error_pct = 0.0;
};

struct SweepResult {
  std::string workload;
  kvstore::StoreKind store = kvstore::StoreKind::kVermilion;
  core::MnemoReport report;
  std::vector<SweepPoint> points;  ///< includes both baselines
  core::CampaignStats stats;       ///< fan-out accounting of the sweep
};

/// Default measured fractions of the key-ordering prefix (the paper plots
/// ~8-10 measured markers per curve plus the two baselines).
inline std::vector<double> default_fractions() {
  return {0.0, 0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0};
}

/// Profile `trace` with Mnemo and validate the estimate at the given
/// prefix fractions by executing those placements. The validation runs
/// go through the campaign runner as one {placement × repeat} grid, so
/// they fan out across threads yet merge deterministically.
inline SweepResult run_sweep(const workload::Trace& trace,
                             kvstore::StoreKind store,
                             const core::MnemoConfig& base_config,
                             const std::vector<double>& fractions =
                                 default_fractions()) {
  core::MnemoConfig config = base_config;
  config.store = store;
  const core::Mnemo mnemo(config);

  SweepResult result;
  result.workload = trace.name();
  result.store = store;
  result.report = mnemo.profile(trace);

  std::vector<const core::EstimatePoint*> curve_points;
  std::vector<hybridmem::Placement> placements;
  curve_points.reserve(fractions.size());
  placements.reserve(fractions.size());
  for (const double fraction : fractions) {
    const auto idx = static_cast<std::size_t>(
        fraction *
        static_cast<double>(result.report.curve.points.size() - 1));
    const core::EstimatePoint& p = result.report.curve.points[idx];
    curve_points.push_back(&p);
    placements.push_back(
        core::PlacementEngine::placement_for(result.report.order, p));
  }

  core::CampaignRunner runner(config.threads);
  const std::vector<core::RunMeasurement> measured =
      runner.measure_grid(mnemo.sensitivity(), trace, placements);
  result.stats = runner.stats();

  result.points.resize(fractions.size());
  for (std::size_t i = 0; i < fractions.size(); ++i) {
    const core::EstimatePoint& p = *curve_points[i];
    const core::RunMeasurement& m = measured[i];
    SweepPoint& sp = result.points[i];
    sp.cost_factor = p.cost_factor;
    sp.fast_keys = p.fast_keys;
    sp.est_throughput = p.est_throughput_ops;
    sp.meas_throughput = m.throughput_ops;
    sp.est_avg_latency_ns = p.est_avg_latency_ns;
    sp.meas_avg_latency_ns = m.avg_latency_ns;
    sp.meas_p95_ns = m.p95_ns;
    sp.meas_p99_ns = m.p99_ns;
    sp.throughput_error_pct =
        core::estimate_error_pct(m.throughput_ops, p.est_throughput_ops);
    sp.latency_error_pct =
        core::estimate_error_pct(m.avg_latency_ns, p.est_avg_latency_ns);
  }
  return result;
}

/// Footer every sweep bench prints: the process-wide campaign accounting
/// (cells, wall vs cpu, per-cell p50/p95, speedup/occupancy).
inline void print_campaign_totals() {
  std::printf("\n%s",
              core::campaign_totals().render("campaign totals").c_str());
}

/// Thin the full key-granularity estimate curve to `n` plot samples.
inline void sample_curve(const core::EstimateCurve& curve, std::size_t n,
                         std::vector<double>* xs, std::vector<double>* ys) {
  for (std::size_t i = 0; i < n; ++i) {
    const auto idx = static_cast<std::size_t>(
        static_cast<double>(i) / static_cast<double>(n - 1) *
        static_cast<double>(curve.points.size() - 1));
    xs->push_back(curve.points[idx].cost_factor);
    ys->push_back(curve.points[idx].est_throughput_ops);
  }
}

inline const char* store_label(kvstore::StoreKind kind) {
  switch (kind) {
    case kvstore::StoreKind::kVermilion:
      return "Redis-like (Vermilion)";
    case kvstore::StoreKind::kCachet:
      return "Memcached-like (Cachet)";
    case kvstore::StoreKind::kDynaStore:
      return "DynamoDB-like (DynaStore)";
  }
  return "?";
}

}  // namespace mnemo::bench
