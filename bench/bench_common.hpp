#pragma once

// Shared harness code for the per-figure bench binaries: capacity sweeps
// that pair Mnemo's analytical estimate with actual (simulated) execution
// of the same placements, the way the paper's Fig 5/8/9 pair estimate
// lines with measured points.

#include <cstdio>
#include <string>
#include <vector>

#include "core/mnemo.hpp"
#include "core/placement_engine.hpp"
#include "util/thread_pool.hpp"

namespace mnemo::bench {

/// One measured-vs-estimated capacity point of a sweep.
struct SweepPoint {
  double cost_factor = 0.0;
  std::size_t fast_keys = 0;
  double est_throughput = 0.0;
  double meas_throughput = 0.0;
  double est_avg_latency_ns = 0.0;
  double meas_avg_latency_ns = 0.0;
  double meas_p95_ns = 0.0;
  double meas_p99_ns = 0.0;
  double throughput_error_pct = 0.0;  ///< (r - e)/r * 100
  double latency_error_pct = 0.0;
};

struct SweepResult {
  std::string workload;
  kvstore::StoreKind store = kvstore::StoreKind::kVermilion;
  core::MnemoReport report;
  std::vector<SweepPoint> points;  ///< includes both baselines
};

/// Default measured fractions of the key-ordering prefix (the paper plots
/// ~8-10 measured markers per curve plus the two baselines).
inline std::vector<double> default_fractions() {
  return {0.0, 0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0};
}

/// Profile `trace` with Mnemo and validate the estimate at the given
/// prefix fractions by executing those placements. Points are measured in
/// parallel (each run is shared-nothing).
inline SweepResult run_sweep(const workload::Trace& trace,
                             kvstore::StoreKind store,
                             const core::MnemoConfig& base_config,
                             const std::vector<double>& fractions =
                                 default_fractions()) {
  core::MnemoConfig config = base_config;
  config.store = store;
  const core::Mnemo mnemo(config);

  SweepResult result;
  result.workload = trace.name();
  result.store = store;
  result.report = mnemo.profile(trace);

  result.points.resize(fractions.size());
  util::parallel_for(fractions.size(), [&](std::size_t i) {
    const auto idx = static_cast<std::size_t>(
        fractions[i] *
        static_cast<double>(result.report.curve.points.size() - 1));
    const core::EstimatePoint& p = result.report.curve.points[idx];
    const core::RunMeasurement m =
        mnemo.validate(trace, result.report.order, p);
    SweepPoint& sp = result.points[i];
    sp.cost_factor = p.cost_factor;
    sp.fast_keys = p.fast_keys;
    sp.est_throughput = p.est_throughput_ops;
    sp.meas_throughput = m.throughput_ops;
    sp.est_avg_latency_ns = p.est_avg_latency_ns;
    sp.meas_avg_latency_ns = m.avg_latency_ns;
    sp.meas_p95_ns = m.p95_ns;
    sp.meas_p99_ns = m.p99_ns;
    sp.throughput_error_pct =
        core::estimate_error_pct(m.throughput_ops, p.est_throughput_ops);
    sp.latency_error_pct =
        core::estimate_error_pct(m.avg_latency_ns, p.est_avg_latency_ns);
  });
  return result;
}

/// Thin the full key-granularity estimate curve to `n` plot samples.
inline void sample_curve(const core::EstimateCurve& curve, std::size_t n,
                         std::vector<double>* xs, std::vector<double>* ys) {
  for (std::size_t i = 0; i < n; ++i) {
    const auto idx = static_cast<std::size_t>(
        static_cast<double>(i) / static_cast<double>(n - 1) *
        static_cast<double>(curve.points.size() - 1));
    xs->push_back(curve.points[idx].cost_factor);
    ys->push_back(curve.points[idx].est_throughput_ops);
  }
}

inline const char* store_label(kvstore::StoreKind kind) {
  switch (kind) {
    case kvstore::StoreKind::kVermilion:
      return "Redis-like (Vermilion)";
    case kvstore::StoreKind::kCachet:
      return "Memcached-like (Cachet)";
    case kvstore::StoreKind::kDynaStore:
      return "DynamoDB-like (DynaStore)";
  }
  return "?";
}

}  // namespace mnemo::bench
