// Figure 3: "CDF of the key space across different request pattern
// distributions. Shows the probability for a key ID to be requested
// throughout the workload."
//
// Generates Table III-scale traces (10,000 keys, 100,000 requests) for
// each request distribution and prints the cumulative request share by
// key ID — the exact curves of the paper's Fig 3.

#include <cstdio>

#include "stats/cdf.hpp"
#include "util/ascii_plot.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "workload/trace.hpp"

int main() {
  using namespace mnemo;
  std::printf("== Fig 3: CDF of the key space per request distribution ==\n\n");

  struct Entry {
    workload::DistributionKind kind;
    char marker;
  };
  const std::vector<Entry> kinds = {
      {workload::DistributionKind::kUniform, 'u'},
      {workload::DistributionKind::kZipfian, 'z'},
      {workload::DistributionKind::kScrambledZipfian, 's'},
      {workload::DistributionKind::kLatest, 'l'},
      {workload::DistributionKind::kHotspot, 'h'},
  };

  util::AsciiPlot plot("Fig 3: key-space CDF", "key ID",
                       "P(requested key <= ID)", 72, 22);
  util::TablePrinter table({"distribution", "share@10%", "share@20%",
                            "share@50%", "share@90%"});
  util::csv::Writer csv("fig3_key_cdf.csv");
  csv.row({"distribution", "key_id", "cumulative_share"});

  for (const auto& [kind, marker] : kinds) {
    workload::WorkloadSpec spec;
    spec.name = std::string(to_string(kind));
    spec.distribution = kind;
    spec.record_size = workload::RecordSizeType::kThumbnail;
    const workload::Trace trace = workload::Trace::generate(spec);
    const auto share = stats::cumulative_share(trace.access_counts());

    util::PlotSeries series;
    series.name = spec.name;
    series.marker = marker;
    for (std::size_t i = 0; i < share.size(); i += 100) {
      series.x.push_back(static_cast<double>(i));
      series.y.push_back(share[i]);
      csv.field(spec.name)
          .field(static_cast<std::uint64_t>(i))
          .field(share[i], 6);
      csv.end_row();
    }
    plot.add(std::move(series));

    auto at = [&](double frac) {
      return share[static_cast<std::size_t>(frac * (share.size() - 1))];
    };
    table.add_row({spec.name, util::TablePrinter::pct(at(0.1), 1),
                   util::TablePrinter::pct(at(0.2), 1),
                   util::TablePrinter::pct(at(0.5), 1),
                   util::TablePrinter::pct(at(0.9), 1)});
  }

  plot.print();
  std::printf("\ncumulative request share at key-ID fractions:\n");
  table.print();
  std::printf(
      "\npaper: hotspot concentrates ~80%% of requests on the first 20%% "
      "of keys; zipfian front-loads hot keys; scrambled zipfian spreads "
      "them across the ID space; latest concentrates on the highest IDs.\n"
      "wrote fig3_key_cdf.csv\n");
  return 0;
}
