// Figure 9: "Cost reduction across all workloads and key-value stores for
// performance that adheres to 10% permissible application slowdown. The
// lower the cost the better, with a threshold of 20%, which is the
// assumed relative cost of using only SlowMem."
//
// For every Table III workload x store, Mnemo's SLO advisor picks the
// cheapest configuration within a 10% throughput slowdown of the
// FastMem-only baseline, and the chosen placement is validated by actual
// execution.

#include <cstdio>

#include "bench_common.hpp"
#include "core/placement_engine.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "workload/suite.hpp"

int main() {
  using namespace mnemo;
  std::printf(
      "== Fig 9: cost reduction at 10%% permissible slowdown (floor = "
      "0.20) ==\n\n");

  core::MnemoConfig config;
  config.repeats = 2;
  config.slo_slowdown = 0.10;
  // The paper notes all workloads "can be profiled in a way that orders
  // keys with respect to request counts" for the cost analysis — use the
  // MnemoT frequency-aware ordering so FastMem holds exactly the keys
  // that buy back the most performance.
  config.ordering = core::OrderingPolicy::kTiered;

  const auto suite = workload::paper_suite();
  util::csv::Writer csv("fig9_cost_reduction.csv");
  csv.row({"store", "workload", "cost_factor", "savings_pct",
           "est_slowdown_pct", "validated_slowdown_pct", "fast_keys"});

  util::TablePrinter table({"workload", "Redis-like", "Memcached-like",
                            "DynamoDB-like"});
  std::vector<std::vector<std::string>> rows(suite.size());

  for (std::size_t w = 0; w < suite.size(); ++w) {
    rows[w].push_back(suite[w].name);
  }

  for (const kvstore::StoreKind store : kvstore::kAllStoreKinds) {
    core::MnemoConfig cfg = config;
    cfg.store = store;
    const core::Mnemo mnemo(cfg);
    for (std::size_t w = 0; w < suite.size(); ++w) {
      const workload::Trace trace = workload::Trace::generate(suite[w]);
      const core::MnemoReport report = mnemo.profile(trace);
      if (!report.slo_choice) {
        rows[w].push_back("-");
        continue;
      }
      const core::SloChoice& c = *report.slo_choice;
      // Validate the advised placement by executing it.
      const core::RunMeasurement validated =
          mnemo.validate(trace, report.order, c.point);
      const double real_slowdown =
          1.0 - validated.throughput_ops /
                    report.baselines.fast.throughput_ops;
      char cell[64];
      std::snprintf(cell, sizeof cell, "%.2f (-%.0f%%)", c.cost_factor,
                    c.savings_vs_fast * 100.0);
      rows[w].push_back(cell);
      csv.field(std::string(kvstore::to_string(store)))
          .field(suite[w].name)
          .field(c.cost_factor, 4)
          .field(c.savings_vs_fast * 100.0, 4)
          .field(c.slowdown_vs_fast * 100.0, 4)
          .field(real_slowdown * 100.0, 4)
          .field(static_cast<std::uint64_t>(c.point.fast_keys));
      csv.end_row();
    }
  }
  for (auto& row : rows) table.add_row(std::move(row));
  std::printf(
      "memory cost as a fraction of FastMem-only (lower = cheaper; 0.20 = "
      "floor):\n");
  table.print();

  std::printf(
      "\npaper Fig 9 shape: Memcached-like tolerates SlowMem-only (cost "
      "-> 0.2 everywhere); Redis-like saves most on Trending-style hot-key "
      "workloads and least on News Feed; DynamoDB-like only reaches "
      "20-30%% savings on favourable patterns.\nwrote "
      "fig9_cost_reduction.csv\n");
  return 0;
}
