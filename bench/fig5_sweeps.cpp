// Figure 5: application performance of the Redis-like store for
// incremental FastMem:SlowMem capacity ratio, with Mnemo's estimate line
// against measured points.
//   (a) key distribution  — trending / news feed / timeline
//   (b) read:write ratio  — timeline (100:0) vs edit thumbnail (50:50)
//   (c) record size       — timeline at 100 KB / 10 KB / 1 KB records
//
// Shape expectations from the paper: throughput tracks the key-access
// CDF; hot-key workloads saturate early (cheap sweet spots); write-heavy
// and small-record workloads are flatter.

#include <cstdio>
#include <cstdlib>

#include "bench_common.hpp"
#include "util/ascii_plot.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "workload/suite.hpp"

namespace {

using namespace mnemo;

void run_panel(const char* title, const std::vector<workload::WorkloadSpec>& specs,
               const core::MnemoConfig& config, util::csv::Writer& csv) {
  std::printf("\n---- %s ----\n", title);
  util::AsciiPlot plot(title, "memory cost R(p)", "throughput (ops/s)", 72,
                       20);
  util::TablePrinter table({"workload", "cost", "est ops/s", "meas ops/s",
                            "err %", "vs FastMem-only"});
  char markers[] = {'*', 'o', '+', 'x', '#'};
  std::size_t mi = 0;

  for (const auto& spec : specs) {
    const workload::Trace trace = workload::Trace::generate(spec);
    const bench::SweepResult sweep =
        bench::run_sweep(trace, kvstore::StoreKind::kVermilion, config);

    // Estimate line (densely sampled curve).
    util::PlotSeries est;
    est.name = spec.name + " (estimate)";
    est.marker = markers[mi % sizeof markers];
    bench::sample_curve(sweep.report.curve, 60, &est.x, &est.y);
    plot.add(std::move(est));

    const double fast_thr = sweep.report.baselines.fast.throughput_ops;
    for (const bench::SweepPoint& p : sweep.points) {
      table.add_row(
          {spec.name, util::TablePrinter::num(p.cost_factor, 3),
           util::TablePrinter::num(p.est_throughput, 0),
           util::TablePrinter::num(p.meas_throughput, 0),
           util::TablePrinter::num(p.throughput_error_pct, 3),
           util::TablePrinter::pct(p.meas_throughput / fast_thr - 1.0, 1)});
      csv.field(title).field(spec.name).field(p.cost_factor, 4)
          .field(p.est_throughput, 8)
          .field(p.meas_throughput, 8)
          .field(p.throughput_error_pct, 4);
      csv.end_row();
    }
    ++mi;
  }
  plot.print();
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "== Fig 5: Redis-like throughput vs memory cost, estimate vs "
      "measured ==\n");

  core::MnemoConfig config;
  config.repeats = 2;
  // Optional: ./fig5_sweeps [threads]  (0 = hardware concurrency).
  config.threads = argc > 1
                       ? static_cast<std::size_t>(std::strtoul(
                             argv[1], nullptr, 10))
                       : 0;

  util::csv::Writer csv("fig5_sweeps.csv");
  csv.row({"panel", "workload", "cost_factor", "est_throughput",
           "meas_throughput", "error_pct"});

  run_panel("Fig 5a: key distribution", workload::distribution_sweep(),
            config, csv);
  run_panel("Fig 5b: read-write ratio", workload::ratio_sweep(), config,
            csv);
  run_panel("Fig 5c: record size", workload::record_size_sweep(), config,
            csv);

  std::printf(
      "\npaper: (a) throughput follows the key-access distribution — "
      "trending reaches within 10%% of FastMem-only at ~36%% of its cost; "
      "(b) the write-heavy edit-thumbnail curve is flatter than the "
      "read-only timeline; (c) big records bend the curve far more than "
      "small ones.\nwrote fig5_sweeps.csv\n");
  bench::print_campaign_totals();
  return 0;
}
