// Session-pipeline microbenchmark: what the content-addressed artifact
// cache is worth in wall-clock terms. Three phases, each a fresh
// core::Session against the same workload:
//
//   cold     empty cache directory — the full campaign grid runs
//   warm     same cache directory — every stage loads, zero replays
//   requery  warm grid, new SLO each repeat — advise/report only
//
// Results go to BENCH_pipeline.json in a stable schema
// ("mnemo.bench.pipeline/v1") that future PRs diff against. The smoke
// mode also asserts the cache contract: warm sessions execute zero
// campaign cells and reproduce the cold report byte for byte.
//
//   ./micro_pipeline               full run, writes BENCH_pipeline.json
//   ./micro_pipeline --smoke       tiny workload + schema self-check (CI)
//   ./micro_pipeline --out FILE    alternate output path
//   ./micro_pipeline --repeats N   timing repeats per phase (min/median)

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/session.hpp"
#include "util/argparse.hpp"
#include "util/timer.hpp"
#include "workload/trace.hpp"
#include "workload/workload_spec.hpp"

namespace {

using namespace mnemo;

struct PhaseResult {
  double min_s = 0.0;
  double median_s = 0.0;
  std::size_t campaign_cells = 0;  ///< per repeat (identical across them)
};

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

PhaseResult reduce(const std::vector<double>& seconds, std::size_t cells) {
  PhaseResult r;
  r.min_s = *std::min_element(seconds.begin(), seconds.end());
  r.median_s = median(seconds);
  r.campaign_cells = cells;
  return r;
}

workload::Trace make_trace(bool smoke) {
  workload::WorkloadSpec spec;
  spec.name = smoke ? "pipeline_smoke" : "pipeline";
  spec.distribution = workload::DistributionKind::kZipfian;
  spec.dist_params.zipf_theta = 0.9;
  spec.read_fraction = 0.9;
  spec.record_size = workload::RecordSizeType::kPreviewMix;
  spec.key_count = smoke ? 200 : 2'000;
  spec.request_count = smoke ? 2'000 : 50'000;
  spec.seed = 0x5eed;
  return workload::Trace::generate(spec);
}

core::SessionConfig make_config(const std::string& cache_dir) {
  core::SessionConfig sc;
  sc.mnemo.repeats = 2;
  sc.cache_dir = cache_dir;
  return sc;
}

void write_json(const std::string& path, const workload::Trace& trace,
                bool smoke, int repeats, const PhaseResult& cold,
                const PhaseResult& warm, const PhaseResult& requery) {
  std::ostringstream out;
  char buf[64];
  const auto phase = [&](const char* name, const PhaseResult& r,
                         const char* tail) {
    std::snprintf(buf, sizeof buf, "%.6f", r.min_s);
    out << "    \"" << name << "\": {\"min_s\": " << buf;
    std::snprintf(buf, sizeof buf, "%.6f", r.median_s);
    out << ", \"median_s\": " << buf
        << ", \"campaign_cells\": " << r.campaign_cells << "}" << tail
        << "\n";
  };
  out << "{\n";
  out << "  \"schema\": \"mnemo.bench.pipeline/v1\",\n";
  out << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  out << "  \"repeats\": " << repeats << ",\n";
  out << "  \"workload\": {\"name\": \"" << trace.name()
      << "\", \"key_count\": " << trace.key_count()
      << ", \"request_count\": " << trace.requests().size() << "},\n";
  out << "  \"results\": {\n";
  phase("cold", cold, ",");
  phase("warm", warm, ",");
  phase("requery", requery, ",");
  std::snprintf(buf, sizeof buf, "%.1f",
                warm.median_s > 0.0 ? cold.median_s / warm.median_s : 0.0);
  out << "    \"warm_speedup_median\": " << buf << "\n";
  out << "  }\n";
  out << "}\n";

  std::ofstream file(path);
  file << out.str();
  if (!file.good()) {
    std::fprintf(stderr, "micro_pipeline: cannot write %s\n", path.c_str());
    std::exit(1);
  }
}

/// Schema self-check for --smoke: the stable keys are present and the
/// braces balance (not a full parser, just enough to catch a malformed
/// writer before a CI consumer does).
bool validate_json(const std::string& path) {
  std::ifstream file(path);
  std::stringstream ss;
  ss << file.rdbuf();
  const std::string text = ss.str();
  if (text.empty()) return false;
  for (const char* key :
       {"\"schema\": \"mnemo.bench.pipeline/v1\"", "\"repeats\"",
        "\"workload\"", "\"results\"", "\"cold\"", "\"warm\"",
        "\"requery\"", "\"campaign_cells\"", "\"warm_speedup_median\""}) {
    if (text.find(key) == std::string::npos) {
      std::fprintf(stderr, "micro_pipeline: missing key %s\n", key);
      return false;
    }
  }
  long depth = 0;
  for (const char ch : text) {
    if (ch == '{') ++depth;
    if (ch == '}') --depth;
    if (depth < 0) return false;
  }
  return depth == 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser parser("micro_pipeline",
                         "cold vs warm session latency microbenchmark");
  parser.add_flag("smoke", "tiny workload + schema self-check (CI)");
  parser.add_option("out", "output JSON path", "BENCH_pipeline.json");
  parser.add_option("repeats", "timing repeats per phase", "");
  std::vector<std::string> args(argv + 1, argv + argc);
  std::string error;
  if (!parser.parse(args, &error)) {
    std::fprintf(stderr, "%s\n%s", error.c_str(), parser.help().c_str());
    return 2;
  }
  const bool smoke = parser.has_flag("smoke");
  const int repeats = parser.get("repeats").empty()
                          ? (smoke ? 2 : 5)
                          : static_cast<int>(parser.get_u64("repeats"));
  const std::string out = parser.get("out");

  const workload::Trace trace = make_trace(smoke);
  namespace fs = std::filesystem;
  const fs::path cache =
      fs::temp_directory_path() /
      ("mnemo_bench_pipeline_" + std::to_string(::getpid()));
  fs::remove_all(cache);

  std::printf(
      "== micro_pipeline: %s, %llu keys, %zu requests, %d repeats ==\n",
      trace.name().c_str(),
      static_cast<unsigned long long>(trace.key_count()),
      trace.requests().size(), repeats);

  // Cold: every repeat starts from an empty cache directory.
  std::vector<double> cold_s;
  std::size_t cold_cells = 0;
  std::string cold_text;
  for (int r = 0; r < repeats; ++r) {
    fs::remove_all(cache);
    core::Session session(trace, make_config(cache.string()));
    util::WallTimer timer;
    cold_text = session.report().text;
    cold_s.push_back(timer.elapsed_s());
    cold_cells = session.campaign_cells_run();
  }

  // Warm: fresh sessions over the cache the last cold repeat filled.
  std::vector<double> warm_s;
  std::size_t warm_cells = 0;
  std::string warm_text;
  for (int r = 0; r < repeats; ++r) {
    core::Session session(trace, make_config(cache.string()));
    util::WallTimer timer;
    warm_text = session.report().text;
    warm_s.push_back(timer.elapsed_s());
    warm_cells = session.campaign_cells_run();
  }

  // Requery: one warm session answering a different SLO per repeat — the
  // incremental-rerun path (estimate/advise/report only, never the grid).
  std::vector<double> requery_s;
  std::size_t requery_cells = 0;
  {
    core::Session session(trace, make_config(cache.string()));
    for (int r = 0; r < repeats; ++r) {
      session.set_slo(0.05 + 0.01 * r);
      util::WallTimer timer;
      (void)session.report().text;
      requery_s.push_back(timer.elapsed_s());
    }
    requery_cells = session.campaign_cells_run();
  }
  fs::remove_all(cache);

  const PhaseResult cold = reduce(cold_s, cold_cells);
  const PhaseResult warm = reduce(warm_s, warm_cells);
  const PhaseResult requery = reduce(requery_s, requery_cells);
  std::printf("cold    %10.3f ms (min %10.3f)  %zu campaign cells\n",
              cold.median_s * 1e3, cold.min_s * 1e3, cold.campaign_cells);
  std::printf("warm    %10.3f ms (min %10.3f)  %zu campaign cells\n",
              warm.median_s * 1e3, warm.min_s * 1e3, warm.campaign_cells);
  std::printf("requery %10.3f ms (min %10.3f)  %zu campaign cells\n",
              requery.median_s * 1e3, requery.min_s * 1e3,
              requery.campaign_cells);

  write_json(out, trace, smoke, repeats, cold, warm, requery);
  std::printf("wrote %s\n", out.c_str());

  if (smoke) {
    if (warm.campaign_cells != 0 || requery.campaign_cells != 0) {
      std::fprintf(stderr,
                   "micro_pipeline: warm session replayed the emulator\n");
      return 1;
    }
    if (warm_text != cold_text) {
      std::fprintf(stderr,
                   "micro_pipeline: warm report differs from cold\n");
      return 1;
    }
    if (!validate_json(out)) {
      std::fprintf(stderr, "micro_pipeline: schema validation FAILED\n");
      return 1;
    }
    std::printf("schema ok\n");
  }
  return 0;
}
