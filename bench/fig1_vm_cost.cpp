// Figure 1: "Percentage of the cost of memory in select Memory Optimized
// Virtual Machines across major cloud providers."
//
// Reproduces the paper's least-squares decomposition of Nov-2018 VM price
// sheets into per-vCPU and per-GB rates (VMcost = vCPU*C + GB*M, the Amur
// et al. methodology) and reports the memory share of every
// memory-optimized instance. Paper's headline: memory is ~60-85% of the
// VM cost.

#include <cstdio>

#include "pricing/cost_regression.hpp"
#include "util/table.hpp"

int main() {
  using namespace mnemo;
  std::printf(
      "== Fig 1: memory share of Memory Optimized VM cost (Nov 2018 "
      "price sheets) ==\n\n");

  const auto catalogs = pricing::paper_catalogs();

  util::TablePrinter rates(
      {"provider", "family", "C ($/vCPU-h)", "M ($/GB-h)", "R^2", "fit"});
  for (const auto& catalog : catalogs) {
    const auto d = pricing::decompose(catalog);
    rates.add_row({catalog.provider, catalog.family,
                   util::TablePrinter::num(d.vcpu_hourly_usd, 5),
                   util::TablePrinter::num(d.gb_hourly_usd, 5),
                   util::TablePrinter::num(d.r_squared, 4),
                   d.clamped_nonnegative ? "clamped" : "OLS"});
  }
  std::printf("least-squares rate decomposition per provider:\n");
  rates.print();

  const auto shares = pricing::figure1_shares(catalogs);
  util::TablePrinter table({"provider", "instance", "memory share", ""});
  double lo = 1.0;
  double hi = 0.0;
  for (const auto& s : shares) {
    lo = std::min(lo, s.fraction);
    hi = std::max(hi, s.fraction);
    const int bar = static_cast<int>(s.fraction * 40.0);
    table.add_row({s.provider, s.instance,
                   util::TablePrinter::pct(s.fraction, 1),
                   std::string(static_cast<std::size_t>(bar), '#')});
  }
  std::printf("\nmemory share per memory-optimized instance:\n");
  table.print();

  std::printf(
      "\npaper: memory constitutes ~60%%-85%% of the VM cost.\n"
      "measured here: %.0f%%-%.0f%% across %zu instances.\n",
      lo * 100.0, hi * 100.0, shares.size());
  return 0;
}
