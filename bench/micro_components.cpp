// google-benchmark microbenchmarks of the substrate itself: store
// operation costs (wall-clock of the simulator, not simulated time),
// distribution generators, LLC model, estimate engine and pattern
// analysis. These quantify the profiling tool's own speed — the property
// Table IV is about.

#include <benchmark/benchmark.h>

#include "core/estimate_engine.hpp"
#include "core/pattern_engine.hpp"
#include "core/tiering.hpp"
#include "hybridmem/hybrid_memory.hpp"
#include "kvstore/factory.hpp"
#include "util/bytes.hpp"
#include "workload/suite.hpp"

namespace {

using namespace mnemo;

void BM_StoreGet(benchmark::State& state) {
  const auto kind = static_cast<kvstore::StoreKind>(state.range(0));
  hybridmem::HybridMemory memory(
      hybridmem::paper_testbed_with_capacity(512 * util::kMiB));
  kvstore::StoreConfig cfg;
  auto store = kvstore::make_store(kind, memory, cfg);
  constexpr std::uint64_t kKeys = 10'000;
  for (std::uint64_t k = 0; k < kKeys; ++k) store->put(k, 1024);
  std::uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store->get(k));
    k = (k + 7919) % kKeys;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(std::string(kvstore::to_string(kind)));
}
BENCHMARK(BM_StoreGet)->Arg(0)->Arg(1)->Arg(2);

void BM_StorePut(benchmark::State& state) {
  const auto kind = static_cast<kvstore::StoreKind>(state.range(0));
  hybridmem::HybridMemory memory(
      hybridmem::paper_testbed_with_capacity(512 * util::kMiB));
  kvstore::StoreConfig cfg;
  auto store = kvstore::make_store(kind, memory, cfg);
  std::uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store->put(k % 10'000, 1024));
    ++k;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(std::string(kvstore::to_string(kind)));
}
BENCHMARK(BM_StorePut)->Arg(0)->Arg(1)->Arg(2);

void BM_DistributionNext(benchmark::State& state) {
  const auto kind = static_cast<workload::DistributionKind>(state.range(0));
  auto dist = workload::make_distribution(kind, 10'000);
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist->next(rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(std::string(to_string(kind)));
}
BENCHMARK(BM_DistributionNext)->DenseRange(0, 4);

void BM_LlcAccess(benchmark::State& state) {
  hybridmem::LlcModel llc(12 * util::kMiB, 12.0, 100.0, 0.01);
  util::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(llc.access(rng.uniform(0, 9999), 1024));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LlcAccess);

void BM_PatternAnalyze(benchmark::State& state) {
  const workload::Trace trace =
      workload::Trace::generate(workload::paper_workload("timeline"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::PatternEngine::analyze(trace));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(trace.requests().size()));
}
BENCHMARK(BM_PatternAnalyze);

void BM_EstimateCurve(benchmark::State& state) {
  const workload::Trace trace =
      workload::Trace::generate(workload::paper_workload("timeline"));
  const core::AccessPattern pattern = core::PatternEngine::analyze(trace);
  core::PerfBaselines baselines;
  baselines.slow.requests = trace.requests().size();
  baselines.slow.reads = trace.total_reads();
  baselines.slow.avg_read_ns = 3000.0;
  baselines.slow.runtime_ns =
      static_cast<double>(trace.requests().size()) * 3000.0;
  baselines.fast = baselines.slow;
  baselines.fast.avg_read_ns = 1000.0;
  baselines.fast.runtime_ns =
      static_cast<double>(trace.requests().size()) * 1000.0;
  const core::EstimateEngine engine;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.estimate(pattern, pattern.touch_order, baselines));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(trace.key_count()));
}
BENCHMARK(BM_EstimateCurve);

void BM_TieringPriorityOrder(benchmark::State& state) {
  const workload::Trace trace =
      workload::Trace::generate(workload::paper_workload("trending"));
  const core::AccessPattern pattern = core::PatternEngine::analyze(trace);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::TieringEngine::priority_order(pattern));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(trace.key_count()));
}
BENCHMARK(BM_TieringPriorityOrder);

void BM_TraceGenerate(benchmark::State& state) {
  const workload::WorkloadSpec spec = workload::paper_workload("timeline");
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload::Trace::generate(spec));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(spec.request_count));
}
BENCHMARK(BM_TraceGenerate);

}  // namespace
