// Table I: testbed bandwidth and latency values for DRAM (FastMem) and
// emulated NVM (SlowMem).
//
// Characterizes the emulator the way one characterizes real hardware:
// a dependent pointer-chase microbenchmark for idle latency and a large
// sequential stream for sustained bandwidth, run against each node.

#include <cstdio>

#include "hybridmem/hybrid_memory.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace mnemo;
using hybridmem::AccessTraits;
using hybridmem::MemOp;
using hybridmem::NodeId;

/// Idle latency: average cost of dependent single-line touches.
double measure_latency_ns(const hybridmem::HybridMemory& mem, NodeId node) {
  util::Rng rng(1);
  AccessTraits t;
  t.latency_touches = 1;
  t.streamed_bytes = 0;
  double total = 0.0;
  constexpr int kChases = 100'000;
  for (int i = 0; i < kChases; ++i) {
    total += mem.raw_access_ns(node, t, MemOp::kRead);
    (void)rng.next_u64();  // the pointer chase's address computation
  }
  return total / kChases;
}

/// Sustained bandwidth: stream 1 GiB and divide by the time.
double measure_bandwidth_gbps(const hybridmem::HybridMemory& mem,
                              NodeId node) {
  AccessTraits t;
  t.latency_touches = 1;
  t.streamed_bytes = util::kGiB;
  const double ns = mem.raw_access_ns(node, t, MemOp::kRead);
  return static_cast<double>(util::kGiB) / ns;  // bytes/ns == GB/s
}

}  // namespace

int main() {
  std::printf("== Table I: testbed bandwidth and latency values ==\n\n");
  const hybridmem::HybridMemory mem(hybridmem::paper_testbed());

  const double fast_lat = measure_latency_ns(mem, NodeId::kFast);
  const double slow_lat = measure_latency_ns(mem, NodeId::kSlow);
  const double fast_bw = measure_bandwidth_gbps(mem, NodeId::kFast);
  const double slow_bw = measure_bandwidth_gbps(mem, NodeId::kSlow);

  util::TablePrinter table({"Node", "FastMem", "SlowMem"});
  char factor[64];
  std::snprintf(factor, sizeof factor, "B:%.2f L:%.2f", slow_bw / fast_bw,
                slow_lat / fast_lat);
  table.add_row({"Factor", "B:1 L:1", factor});
  table.add_row({"Latency (ns)", util::TablePrinter::num(fast_lat, 1),
                 util::TablePrinter::num(slow_lat, 1)});
  table.add_row({"BW (GB/s)", util::TablePrinter::num(fast_bw, 1),
                 util::TablePrinter::num(slow_bw, 2)});
  table.print();

  std::printf(
      "\npaper Table I: FastMem 65.7 ns / 14.9 GB/s, SlowMem 238.1 ns / "
      "1.81 GB/s (B:0.12 L:3.62)\n");
  std::printf("LLC: %s shared, %.0f ns hit latency\n",
              util::format_bytes(mem.profile().llc_bytes).c_str(),
              mem.profile().llc_latency_ns);
  return 0;
}
