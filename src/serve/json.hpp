#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mnemo::serve {

/// Minimal JSON document model for the serve line protocol. Hand-rolled
/// (the repo takes no external dependencies) and deliberately strict: the
/// parser rejects duplicate object keys, oversized inputs and strings,
/// and over-deep nesting with a typed util::ParseError carrying the
/// 1-based byte offset of the offending content — malformed requests must
/// produce a diagnosable error, never a crash or an allocation blow-up.
struct JsonValue {
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  /// One object member, with the byte offset of its key token so the
  /// protocol layer can point at the exact field in its own errors.
  /// Defined after the enclosing struct: it holds a JsonValue by value.
  struct Member;

  Kind kind = Kind::kNull;
  bool boolean = false;
  /// Numbers keep both views: `number` is the double value; when the
  /// token was integral (no '.', no exponent) `integral` is set and
  /// `magnitude`/`negative` hold the exact 64-bit form, so u64 fields
  /// (seeds) never round-trip through double precision.
  double number = 0.0;
  std::uint64_t magnitude = 0;
  bool integral = false;
  bool negative = false;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<Member> object;

  [[nodiscard]] bool is_object() const noexcept {
    return kind == Kind::kObject;
  }
  /// Member lookup (objects only); nullptr when absent.
  [[nodiscard]] const Member* find(std::string_view key) const;
};

struct JsonValue::Member {
  std::string key;
  JsonValue value;
  std::size_t pos = 0;  ///< 1-based byte offset of the key's opening '"'
};

std::string_view to_string(JsonValue::Kind kind);

/// Hard bounds the parser enforces (each violation is a ParseError, with
/// the input-size check first so a hostile line cannot cost more than
/// max_input bytes of work).
struct JsonLimits {
  std::size_t max_input = 1 << 20;  ///< whole-document byte budget
  std::size_t max_string = 4096;    ///< per-string byte budget (unescaped)
  std::size_t max_depth = 16;       ///< array/object nesting
  std::size_t max_members = 256;    ///< members per object / array elements
};

/// Parse exactly one JSON document (trailing bytes are an error). Throws
/// util::ParseError("request", <1-based byte offset>, message) on any
/// violation; never crashes on truncated or garbage input.
[[nodiscard]] JsonValue json_parse(std::string_view text,
                                   const JsonLimits& limits = {});

/// Quote + escape a string per JSON (control chars as \u00XX).
[[nodiscard]] std::string json_quote(std::string_view s);

/// Shortest round-trip decimal rendering of a double (std::to_chars), so
/// serialize -> parse returns the bit-identical value.
[[nodiscard]] std::string json_number(double v);

}  // namespace mnemo::serve
