#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <thread>

namespace mnemo::serve {

/// One timer thread firing per-request deadline callbacks. The server
/// arms a ticket when it admits a deadlined request and disarms it when
/// the request settles; if the deadline strikes first, the callback runs
/// on the watchdog thread (it only cancels the request's CancelToken —
/// never touches the response, so there is exactly one settle path).
///
/// Firing and disarming race benignly: disarm() of an already-fired
/// ticket is a no-op, and a callback that fires just as the request
/// completes cancels a token nobody reads again. Armed entries are
/// bounded by the server's admission queue, so the scan is tiny.
class DeadlineWatchdog {
 public:
  using Ticket = std::uint64_t;

  DeadlineWatchdog();
  /// Joins the timer thread. Pending callbacks that have not fired are
  /// dropped, so destruction must precede (or outlive) whatever the
  /// callbacks touch — in the Server, the watchdog is destroyed after
  /// the worker pool drains.
  ~DeadlineWatchdog();

  DeadlineWatchdog(const DeadlineWatchdog&) = delete;
  DeadlineWatchdog& operator=(const DeadlineWatchdog&) = delete;

  /// Schedule `fire` to run once at `when` (watchdog thread). Returns a
  /// ticket for disarm(). `fire` must not call back into the watchdog.
  [[nodiscard]] Ticket arm(std::chrono::steady_clock::time_point when,
                           std::function<void()> fire);

  /// Cancel a pending ticket. No-op when the ticket already fired.
  void disarm(Ticket ticket);

  /// Tickets currently pending (test introspection).
  [[nodiscard]] std::size_t armed() const;

 private:
  struct Entry {
    std::chrono::steady_clock::time_point when;
    std::function<void()> fire;
  };

  void run();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<Ticket, Entry> entries_;
  Ticket next_ = 1;
  bool stop_ = false;
  std::thread thread_;  ///< declared last: started after, joined before
};

}  // namespace mnemo::serve
