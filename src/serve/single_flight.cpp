#include "serve/single_flight.hpp"

#include <utility>

#include "util/assert.hpp"

namespace mnemo::serve {

MeasureCache::Lease MeasureCache::acquire(const std::string& key,
                                          util::CancelToken* cancel) {
  // Wake-up plumbing: the watchdog's cancel() must rouse a joiner parked
  // on cv_. The callback takes mu_ before notifying so the wake can never
  // slip between a joiner's predicate check and its wait. Removal on every
  // exit path; the RAII guard keeps the throw paths honest.
  std::size_t callback_id = 0;
  if (cancel != nullptr) {
    callback_id = cancel->on_cancel([this] {
      std::lock_guard lock(mu_);
      cv_.notify_all();
    });
  }
  struct CallbackGuard {
    util::CancelToken* token;
    std::size_t id;
    ~CallbackGuard() {
      if (token != nullptr) token->remove_callback(id);
    }
  } guard{cancel, callback_id};

  std::unique_lock lock(mu_);
  for (;;) {
    if (const auto done = done_.find(key); done != done_.end()) {
      return Lease{false, done->second, false};
    }
    // A canceled caller must not become leader: it would immediately
    // abandon and thrash the election.
    if (cancel != nullptr) cancel->check();
    const auto flight = flights_.find(key);
    if (flight == flights_.end()) {
      flights_.emplace(key, std::make_shared<Flight>());
      return Lease{true, nullptr, false};
    }
    // Hold our own reference: publish/abandon erase the map entry while
    // we sleep, and a fresh flight under the same key is a *different*
    // Flight object we must not confuse with ours.
    const std::shared_ptr<Flight> ours = flight->second;
    const auto woken = [&] {
      return ours->abandoned || done_.contains(key) ||
             (cancel != nullptr && cancel->canceled());
    };
    while (!woken()) {
      // A deadline-armed token bounds the sleep directly: expiry is
      // passive (no one need call cancel()) yet still wakes the joiner.
      const util::Deadline deadline =
          cancel != nullptr ? cancel->deadline() : util::Deadline::never();
      if (deadline.armed()) {
        cv_.wait_until(lock, deadline.when());
      } else {
        cv_.wait(lock);
      }
    }
    if (const auto done = done_.find(key); done != done_.end()) {
      return Lease{false, done->second, true};
    }
    // Leader abandoned or we were canceled: the next loop iteration
    // either re-elects, joins the replacement leader, or throws.
  }
}

std::optional<MeasureCache::Lease> MeasureCache::try_acquire(
    const std::string& key, util::CancelToken* cancel,
    std::function<void()> wake) {
  std::shared_ptr<Waiter> waiter;
  {
    std::unique_lock lock(mu_);
    if (const auto done = done_.find(key); done != done_.end()) {
      return Lease{false, done->second, false};
    }
    if (cancel != nullptr) cancel->check();
    const auto flight = flights_.find(key);
    if (flight == flights_.end()) {
      flights_.emplace(key, std::make_shared<Flight>());
      return Lease{true, nullptr, false};
    }
    waiter = std::make_shared<Waiter>();
    waiter->wake = std::move(wake);
    flight->second->waiters.push_back(waiter);
  }
  if (cancel != nullptr) {
    // Registered outside mu_ (on_cancel may invoke the callback inline if
    // the token is already canceled) and deliberately never removed: once
    // fired, the callback is a no-op holding only the small Waiter shell —
    // the wake itself, with whatever request context it captures, has
    // already been moved out and released.
    (void)cancel->on_cancel([waiter] { waiter->fire(); });
  }
  return std::nullopt;
}

void MeasureCache::publish(
    const std::string& key,
    std::shared_ptr<const core::MeasureArtifact> artifact) {
  MNEMO_EXPECTS(artifact != nullptr);
  std::vector<std::shared_ptr<Waiter>> waiters;
  {
    std::lock_guard lock(mu_);
    done_[key] = std::move(artifact);
    if (const auto flight = flights_.find(key); flight != flights_.end()) {
      waiters = std::move(flight->second->waiters);
      flights_.erase(flight);
    }
    cv_.notify_all();
  }
  // Outside mu_: a wake may re-enter try_acquire immediately.
  for (const std::shared_ptr<Waiter>& w : waiters) w->fire();
}

void MeasureCache::abandon(const std::string& key) {
  std::vector<std::shared_ptr<Waiter>> waiters;
  {
    std::lock_guard lock(mu_);
    const auto flight = flights_.find(key);
    MNEMO_EXPECTS(flight != flights_.end());
    flight->second->abandoned = true;
    waiters = std::move(flight->second->waiters);
    flights_.erase(flight);
    cv_.notify_all();
  }
  // Woken waiters race back through try_acquire; the first re-entrant
  // becomes the replacement leader, the rest re-park — the same
  // promotion the blocking path gets from its cv loop.
  for (const std::shared_ptr<Waiter>& w : waiters) w->fire();
}

std::size_t MeasureCache::memo_size() const {
  std::lock_guard lock(mu_);
  return done_.size();
}

}  // namespace mnemo::serve
