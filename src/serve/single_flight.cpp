#include "serve/single_flight.hpp"

#include <utility>

#include "util/assert.hpp"

namespace mnemo::serve {

MeasureCache::Lease MeasureCache::acquire(const std::string& key) {
  std::unique_lock lock(mu_);
  for (;;) {
    if (const auto done = done_.find(key); done != done_.end()) {
      return Lease{false, done->second, false};
    }
    const auto flight = flights_.find(key);
    if (flight == flights_.end()) {
      flights_.emplace(key, std::make_shared<Flight>());
      return Lease{true, nullptr, false};
    }
    // Hold our own reference: publish/abandon erase the map entry while
    // we sleep, and a fresh flight under the same key is a *different*
    // Flight object we must not confuse with ours.
    const std::shared_ptr<Flight> ours = flight->second;
    cv_.wait(lock, [&] {
      return ours->abandoned || done_.contains(key);
    });
    if (const auto done = done_.find(key); done != done_.end()) {
      return Lease{false, done->second, true};
    }
    // Leader abandoned: loop to either become the new leader or wait on
    // whoever beat us to it.
  }
}

void MeasureCache::publish(
    const std::string& key,
    std::shared_ptr<const core::MeasureArtifact> artifact) {
  MNEMO_EXPECTS(artifact != nullptr);
  std::lock_guard lock(mu_);
  done_[key] = std::move(artifact);
  flights_.erase(key);
  cv_.notify_all();
}

void MeasureCache::abandon(const std::string& key) {
  std::lock_guard lock(mu_);
  const auto flight = flights_.find(key);
  MNEMO_EXPECTS(flight != flights_.end());
  flight->second->abandoned = true;
  flights_.erase(flight);
  cv_.notify_all();
}

std::size_t MeasureCache::memo_size() const {
  std::lock_guard lock(mu_);
  return done_.size();
}

}  // namespace mnemo::serve
