#pragma once

#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/artifacts.hpp"
#include "util/cancel.hpp"

namespace mnemo::serve {

/// Single-flight deduplication of the measure stage, keyed on
/// Session::measure_key(). The first requester of a key becomes the
/// *leader* and runs the emulator campaign; concurrent requesters of the
/// same key block until the leader publishes, then adopt the leader's
/// artifact (*join*). Published artifacts are memoized for the server's
/// lifetime, so each distinct measure key is replayed at most once per
/// server — later requests are memo hits even with the artifact cache
/// disabled. A leader that fails (exception, degraded grid) abandons the
/// flight; one waiter is promoted to leader and the rest keep waiting, so
/// a transient failure never wedges the key.
class MeasureCache {
 public:
  /// The outcome of acquire(): either this caller must compute and then
  /// publish()/abandon() (leader), or the artifact is already here.
  struct Lease {
    bool leader = false;
    /// Set iff !leader: the artifact to adopt.
    std::shared_ptr<const core::MeasureArtifact> artifact;
    /// True when this caller blocked on another request's in-flight
    /// computation (as opposed to hitting the memo without waiting).
    bool joined = false;
  };

  /// Claim the key: returns a leader lease, a memo hit, or blocks until
  /// the in-flight leader publishes. When `cancel` is given, the wait is
  /// a cancellation point: a canceled joiner wakes (the token's cancel
  /// callbacks notify this cache's cv) and throws util::CanceledError
  /// instead of waiting on a leader it no longer cares about — and a
  /// token whose deadline is armed also bounds the sleep itself, so a
  /// joiner never outsleeps its deadline even with no watchdog running.
  /// A memo hit is still returned when available: adopting a finished
  /// artifact costs nothing. A canceled caller never becomes leader.
  [[nodiscard]] Lease acquire(const std::string& key,
                              util::CancelToken* cancel = nullptr);

  /// Leader completion: memoize the artifact and wake all joiners.
  void publish(const std::string& key,
               std::shared_ptr<const core::MeasureArtifact> artifact);

  /// Leader failure: release the key without a result. Waiters race to be
  /// promoted; each request still fails (or retries) independently.
  void abandon(const std::string& key);

  /// Distinct keys memoized so far.
  [[nodiscard]] std::size_t memo_size() const;

 private:
  struct Flight {
    bool abandoned = false;
  };

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<std::string, std::shared_ptr<Flight>> flights_;
  std::unordered_map<std::string, std::shared_ptr<const core::MeasureArtifact>>
      done_;
};

}  // namespace mnemo::serve
