#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/artifacts.hpp"
#include "util/cancel.hpp"

namespace mnemo::serve {

/// Single-flight deduplication of the measure stage, keyed on
/// Session::measure_key(). The first requester of a key becomes the
/// *leader* and runs the emulator campaign; concurrent requesters of the
/// same key block until the leader publishes, then adopt the leader's
/// artifact (*join*). Published artifacts are memoized for the server's
/// lifetime, so each distinct measure key is replayed at most once per
/// server — later requests are memo hits even with the artifact cache
/// disabled. A leader that fails (exception, degraded grid) abandons the
/// flight; one waiter is promoted to leader and the rest keep waiting, so
/// a transient failure never wedges the key.
class MeasureCache {
 public:
  /// The outcome of acquire(): either this caller must compute and then
  /// publish()/abandon() (leader), or the artifact is already here.
  struct Lease {
    bool leader = false;
    /// Set iff !leader: the artifact to adopt.
    std::shared_ptr<const core::MeasureArtifact> artifact;
    /// True when this caller blocked on another request's in-flight
    /// computation (as opposed to hitting the memo without waiting).
    bool joined = false;
  };

  /// Claim the key: returns a leader lease, a memo hit, or blocks until
  /// the in-flight leader publishes. When `cancel` is given, the wait is
  /// a cancellation point: a canceled joiner wakes (the token's cancel
  /// callbacks notify this cache's cv) and throws util::CanceledError
  /// instead of waiting on a leader it no longer cares about — and a
  /// token whose deadline is armed also bounds the sleep itself, so a
  /// joiner never outsleeps its deadline even with no watchdog running.
  /// A memo hit is still returned when available: adopting a finished
  /// artifact costs nothing. A canceled caller never becomes leader.
  [[nodiscard]] Lease acquire(const std::string& key,
                              util::CancelToken* cancel = nullptr);

  /// Non-blocking acquire for continuation-style callers (the serve
  /// scheduler): a memo hit or leadership returns a Lease immediately;
  /// an in-flight leader returns nullopt after registering `wake`, which
  /// runs exactly once when the flight publishes, abandons, or `cancel`
  /// fires — the caller parks no thread and re-enters try_acquire from
  /// the wake-up. A canceled caller throws util::CanceledError like
  /// acquire() (memo hits are still served first). Note the cancel wake
  /// is driven by cancel() callbacks only: a caller whose token has a
  /// deadline but no watchdog arming cancel() must bound its own wait.
  [[nodiscard]] std::optional<Lease> try_acquire(const std::string& key,
                                                 util::CancelToken* cancel,
                                                 std::function<void()> wake);

  /// Leader completion: memoize the artifact and wake all joiners.
  void publish(const std::string& key,
               std::shared_ptr<const core::MeasureArtifact> artifact);

  /// Leader failure: release the key without a result. Waiters race to be
  /// promoted; each request still fails (or retries) independently.
  void abandon(const std::string& key);

  /// Distinct keys memoized so far.
  [[nodiscard]] std::size_t memo_size() const;

 private:
  /// One parked try_acquire() caller. `fire()` is idempotent and safe
  /// from any thread: whichever of publish/abandon/cancel gets there
  /// first moves the wake out (breaking any reference cycle through the
  /// caller's context) and runs it; later firers are no-ops.
  struct Waiter {
    std::atomic<bool> fired{false};
    std::function<void()> wake;

    void fire() {
      if (!fired.exchange(true)) {
        std::function<void()> w = std::move(wake);
        if (w) w();
      }
    }
  };

  struct Flight {
    bool abandoned = false;
    std::vector<std::shared_ptr<Waiter>> waiters;  ///< guarded by mu_
  };

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<std::string, std::shared_ptr<Flight>> flights_;
  std::unordered_map<std::string, std::shared_ptr<const core::MeasureArtifact>>
      done_;
};

}  // namespace mnemo::serve
