#pragma once

#include <atomic>
#include <string>

#include "serve/server.hpp"
#include "util/status.hpp"

namespace mnemo::serve {

/// Unix-domain-socket front end for a Server: accepts connections on
/// `path` and runs the line protocol (Server::serve_stream) on each, one
/// thread per connection. All connections share the Server — and thus
/// the artifact store, the single-flight memo, and the backpressure
/// budget.
class SocketEndpoint {
 public:
  /// Borrows `server`; it must outlive the endpoint.
  SocketEndpoint(Server& server, std::string path);

  SocketEndpoint(const SocketEndpoint&) = delete;
  SocketEndpoint& operator=(const SocketEndpoint&) = delete;

  /// Bind, listen and accept until stop(). Replaces a stale socket file
  /// at `path`. Returns non-ok on bind/listen failures. On return every
  /// connection thread has been joined and the socket file removed.
  [[nodiscard]] util::Status serve();

  /// Unblock serve() from another thread (or a signal handler — only
  /// async-signal-safe calls are made). Idempotent.
  void stop();

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  Server& server_;
  std::string path_;
  std::atomic<bool> stopping_{false};
  std::atomic<int> listen_fd_{-1};
};

}  // namespace mnemo::serve
