#include "serve/watchdog.hpp"

#include <algorithm>
#include <utility>
#include <vector>

namespace mnemo::serve {

DeadlineWatchdog::DeadlineWatchdog() : thread_([this] { run(); }) {}

DeadlineWatchdog::~DeadlineWatchdog() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

DeadlineWatchdog::Ticket DeadlineWatchdog::arm(
    std::chrono::steady_clock::time_point when, std::function<void()> fire) {
  Ticket ticket = 0;
  {
    std::lock_guard lock(mu_);
    ticket = next_++;
    entries_.emplace(ticket, Entry{when, std::move(fire)});
  }
  cv_.notify_all();
  return ticket;
}

void DeadlineWatchdog::disarm(Ticket ticket) {
  std::lock_guard lock(mu_);
  entries_.erase(ticket);
}

std::size_t DeadlineWatchdog::armed() const {
  std::lock_guard lock(mu_);
  return entries_.size();
}

void DeadlineWatchdog::run() {
  std::unique_lock lock(mu_);
  for (;;) {
    if (stop_) return;
    if (entries_.empty()) {
      cv_.wait(lock);
      continue;
    }
    // Earliest deadline among the (queue-bounded, so tiny) armed set.
    auto earliest = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.when < earliest->second.when) earliest = it;
    }
    const auto now = std::chrono::steady_clock::now();
    // Copied out of the map node: wait_until re-reads its time point on
    // every wakeup, and a concurrent disarm() may erase the node while
    // we are blocked.
    const auto next_due = earliest->second.when;
    if (next_due > now) {
      cv_.wait_until(lock, next_due);
      continue;  // re-evaluate: arms/disarms may have changed the set
    }
    // Collect everything due, then fire outside the lock: a callback
    // cancels a token whose own callbacks may grab other locks. The map
    // is keyed by ticket, so sort the batch by deadline — a stalled
    // sweep that finds several tickets due must still fire them in the
    // order their deadlines struck.
    std::vector<Entry> due;
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (it->second.when <= now) {
        due.push_back(std::move(it->second));
        it = entries_.erase(it);
      } else {
        ++it;
      }
    }
    std::stable_sort(due.begin(), due.end(),
                     [](const Entry& a, const Entry& b) {
                       return a.when < b.when;
                     });
    lock.unlock();
    for (Entry& entry : due) entry.fire();
    lock.lock();
  }
}

}  // namespace mnemo::serve
