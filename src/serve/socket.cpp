#include "serve/socket.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <istream>
#include <mutex>
#include <ostream>
#include <streambuf>
#include <thread>
#include <utility>
#include <vector>

namespace mnemo::serve {

namespace {

/// iostream adapter over a connected socket fd. Writes use send() with
/// MSG_NOSIGNAL so a client that hangs up mid-response surfaces as a
/// stream error, not SIGPIPE.
class FdBuf : public std::streambuf {
 public:
  explicit FdBuf(int fd) : fd_(fd) {
    setg(in_, in_, in_);
    setp(out_, out_ + sizeof(out_));
  }

 protected:
  int_type underflow() override {
    // EINTR is an interruption, not a hangup: retrying keeps a stray
    // signal from masquerading as client EOF and dropping a connection.
    ssize_t n = 0;
    do {
      n = ::read(fd_, in_, sizeof(in_));
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return traits_type::eof();
    setg(in_, in_, in_ + n);
    return traits_type::to_int_type(in_[0]);
  }

  int_type overflow(int_type c) override {
    if (!flush_out()) return traits_type::eof();
    if (!traits_type::eq_int_type(c, traits_type::eof())) {
      *pptr() = traits_type::to_char_type(c);
      pbump(1);
    }
    return traits_type::not_eof(c);
  }

  int sync() override { return flush_out() ? 0 : -1; }

 private:
  bool flush_out() {
    // Full-write loop: short sends continue where they left off, EINTR
    // retries. Only a real error (EPIPE from a vanished client) fails
    // the stream — which serve_stream absorbs as a disconnect.
    const char* p = pbase();
    while (p < pptr()) {
      const ssize_t n = ::send(fd_, p, static_cast<std::size_t>(pptr() - p),
                               MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      p += n;
    }
    setp(out_, out_ + sizeof(out_));
    return true;
  }

  int fd_;
  char in_[4096];
  char out_[4096];
};

}  // namespace

SocketEndpoint::SocketEndpoint(Server& server, std::string path)
    : server_(server), path_(std::move(path)) {}

util::Status SocketEndpoint::serve() {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path_.size() >= sizeof(addr.sun_path)) {
    return util::Error{util::ErrorCode::kInvalidArgument,
                       "socket path too long: " + path_};
  }
  std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return util::Error{util::ErrorCode::kFailedPrecondition,
                       std::string("socket: ") + std::strerror(errno)};
  }
  ::unlink(path_.c_str());  // replace a stale socket file
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(fd, 16) < 0) {
    const int err = errno;
    ::close(fd);
    return util::Error{util::ErrorCode::kFailedPrecondition,
                       "bind/listen " + path_ + ": " + std::strerror(err)};
  }
  listen_fd_.store(fd, std::memory_order_release);

  std::mutex conns_mu;
  std::vector<int> conn_fds;
  std::vector<std::thread> conn_threads;

  while (!stopping_.load(std::memory_order_acquire)) {
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn < 0) {
      if (stopping_.load(std::memory_order_acquire)) break;
      if (errno == EINTR) continue;
      break;
    }
    {
      std::lock_guard lock(conns_mu);
      conn_fds.push_back(conn);
    }
    conn_threads.emplace_back([this, conn] {
      FdBuf buf(conn);
      std::istream in(&buf);
      std::ostream out(&buf);
      server_.serve_stream(in, out);
      ::close(conn);
    });
  }

  // Shutdown: kick every open connection so its serve_stream sees EOF,
  // then join. Admitted requests still complete (graceful drain) — only
  // unread input is abandoned.
  {
    std::lock_guard lock(conns_mu);
    for (const int conn : conn_fds) ::shutdown(conn, SHUT_RDWR);
  }
  for (std::thread& t : conn_threads) t.join();
  ::close(fd);
  listen_fd_.store(-1, std::memory_order_release);
  ::unlink(path_.c_str());
  return {};
}

void SocketEndpoint::stop() {
  // Async-signal-safe: one atomic store plus shutdown(2). The accept loop
  // wakes with an error, observes stopping_, and does the cleanup on its
  // own thread.
  stopping_.store(true, std::memory_order_release);
  const int fd = listen_fd_.load(std::memory_order_acquire);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

}  // namespace mnemo::serve
