#include "serve/protocol.hpp"

#include <limits>

#include "kvstore/factory.hpp"
#include "serve/json.hpp"

namespace mnemo::serve {

namespace {

/// Field-value bounds: large enough for every paper workload, small
/// enough that a hostile request cannot commission an unbounded campaign.
constexpr std::uint64_t kMaxKeys = 1'000'000;
constexpr std::uint64_t kMaxRequests = 10'000'000;
constexpr std::uint32_t kMaxRepeats = 16;
/// One day. Large enough for any real request; small enough that the
/// watchdog arithmetic can never overflow on hostile input.
constexpr std::uint64_t kMaxDeadlineMs = 86'400'000;

[[noreturn]] void fail_at(std::size_t pos, const std::string& message) {
  throw util::ParseError("request", pos, message);
}

const JsonValue& expect_kind(const JsonValue::Member& m,
                             JsonValue::Kind kind) {
  if (m.value.kind != kind) {
    fail_at(m.pos, "field '" + m.key + "' must be a " +
                       std::string(to_string(kind)) + ", got " +
                       std::string(to_string(m.value.kind)));
  }
  return m.value;
}

std::uint64_t read_u64(const JsonValue::Member& m, std::uint64_t max) {
  const JsonValue& v = expect_kind(m, JsonValue::Kind::kNumber);
  if (!v.integral || v.negative) {
    fail_at(m.pos, "field '" + m.key + "' must be a non-negative integer");
  }
  if (v.magnitude > max) {
    fail_at(m.pos, "field '" + m.key + "' exceeds " + std::to_string(max));
  }
  return v.magnitude;
}

double read_positive_double(const JsonValue::Member& m) {
  const JsonValue& v = expect_kind(m, JsonValue::Kind::kNumber);
  if (!(v.number > 0.0)) {
    fail_at(m.pos, "field '" + m.key + "' must be > 0");
  }
  return v.number;
}

}  // namespace

std::string_view to_string(RequestOp op) {
  switch (op) {
    case RequestOp::kCharacterize: return "characterize";
    case RequestOp::kMeasure: return "measure";
    case RequestOp::kAdvise: return "advise";
    case RequestOp::kReport: return "report";
    case RequestOp::kStats: return "stats";
  }
  return "?";
}

std::optional<RequestOp> parse_op(std::string_view name) {
  for (const RequestOp op :
       {RequestOp::kCharacterize, RequestOp::kMeasure, RequestOp::kAdvise,
        RequestOp::kReport, RequestOp::kStats}) {
    if (name == to_string(op)) return op;
  }
  return std::nullopt;
}

std::string Request::to_json_line() const {
  std::string out = "{";
  out += "\"id\":" + json_quote(id);
  out += ",\"op\":" + json_quote(to_string(op));
  out += ",\"workload\":" + json_quote(workload);
  out += ",\"keys\":" + std::to_string(keys);
  out += ",\"requests\":" + std::to_string(requests);
  out += ",\"seed\":" + std::to_string(seed);
  out += ",\"store\":" + json_quote(store);
  out += std::string(",\"tiered\":") + (tiered ? "true" : "false");
  out += ",\"model\":" + json_quote(model);
  out += ",\"p\":" + json_number(p);
  out += ",\"slo\":" + json_number(slo);
  out += ",\"repeats\":" + std::to_string(repeats);
  out += ",\"deadline_ms\":" + std::to_string(deadline_ms);
  out += std::string(",\"timing\":") + (timing ? "true" : "false");
  out += "}";
  return out;
}

Request Request::parse_line(std::string_view line) {
  const JsonValue doc = json_parse(line);
  if (!doc.is_object()) {
    fail_at(1, "request must be a JSON object, got " +
                   std::string(to_string(doc.kind)));
  }
  Request req;
  bool have_id = false;
  bool have_op = false;
  for (const JsonValue::Member& m : doc.object) {
    if (m.key == "id") {
      req.id = expect_kind(m, JsonValue::Kind::kString).string;
      have_id = true;
    } else if (m.key == "op") {
      const std::string& name =
          expect_kind(m, JsonValue::Kind::kString).string;
      const std::optional<RequestOp> op = parse_op(name);
      if (!op) fail_at(m.pos, "unknown op '" + name + "'");
      req.op = *op;
      have_op = true;
    } else if (m.key == "workload") {
      req.workload = expect_kind(m, JsonValue::Kind::kString).string;
    } else if (m.key == "keys") {
      req.keys = read_u64(m, kMaxKeys);
    } else if (m.key == "requests") {
      req.requests = read_u64(m, kMaxRequests);
    } else if (m.key == "seed") {
      req.seed = read_u64(m, std::numeric_limits<std::uint64_t>::max());
    } else if (m.key == "store") {
      const std::string& name =
          expect_kind(m, JsonValue::Kind::kString).string;
      bool known = false;
      for (const kvstore::StoreKind kind : kvstore::kAllStoreKinds) {
        known = known || name == kvstore::to_string(kind);
      }
      if (!known) fail_at(m.pos, "unknown store '" + name + "'");
      req.store = name;
    } else if (m.key == "tiered") {
      req.tiered = expect_kind(m, JsonValue::Kind::kBool).boolean;
    } else if (m.key == "model") {
      const std::string& name =
          expect_kind(m, JsonValue::Kind::kString).string;
      if (name != "uniform" && name != "size-aware") {
        fail_at(m.pos, "unknown model '" + name + "'");
      }
      req.model = name;
    } else if (m.key == "p") {
      req.p = read_positive_double(m);
    } else if (m.key == "slo") {
      req.slo = read_positive_double(m);
    } else if (m.key == "repeats") {
      const std::uint64_t r = read_u64(m, kMaxRepeats);
      if (r == 0) fail_at(m.pos, "field 'repeats' must be >= 1");
      req.repeats = static_cast<std::uint32_t>(r);
    } else if (m.key == "deadline_ms") {
      req.deadline_ms = read_u64(m, kMaxDeadlineMs);
    } else if (m.key == "timing") {
      req.timing = expect_kind(m, JsonValue::Kind::kBool).boolean;
    } else {
      fail_at(m.pos, "unknown field '" + m.key + "'");
    }
  }
  if (!have_id || req.id.empty()) {
    fail_at(1, "request requires a non-empty 'id'");
  }
  if (!have_op) fail_at(1, "request requires an 'op'");
  return req;
}

std::string Response::to_json_line() const {
  std::string out = "{";
  out += "\"id\":" + json_quote(id);
  out += ",\"op\":" + json_quote(to_string(op));
  if (ok) {
    out += ",\"ok\":true";
    out += ",\"output\":" + json_quote(output);
    if (!csv.empty()) out += ",\"csv\":" + json_quote(csv);
  } else {
    out += ",\"ok\":false";
    out += ",\"error\":{\"code\":" + json_quote(error_code);
    out += ",\"message\":" + json_quote(error_message);
    if (error_position > 0) {
      out += ",\"position\":" + std::to_string(error_position);
    }
    out += "}";
  }
  if (timing) {
    out += ",\"timing\":{\"queue_ms\":" + json_number(queue_ms);
    out += ",\"run_ms\":" + json_number(run_ms);
    out += ",\"cells_run\":" + std::to_string(cells_run);
    out += "}";
  }
  out += "}";
  return out;
}

Response error_response(std::string id, RequestOp op,
                        const util::Error& error) {
  Response r;
  r.id = std::move(id);
  r.op = op;
  r.ok = false;
  r.error_code = std::string(util::to_string(error.code));
  r.error_message = error.message;
  return r;
}

Response parse_error_response(const util::ParseError& e) {
  Response r;
  r.op = RequestOp::kAdvise;
  r.ok = false;
  r.error_code = "parse_error";
  r.error_message = e.what();
  r.error_position = e.line();
  return r;
}

}  // namespace mnemo::serve
