#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <iosfwd>
#include <mutex>
#include <string>

#include "core/artifact_store.hpp"
#include "serve/protocol.hpp"
#include "serve/single_flight.hpp"
#include "serve/watchdog.hpp"
#include "util/cancel.hpp"
#include "util/thread_pool.hpp"

namespace mnemo::core {
class Session;
}  // namespace mnemo::core

namespace mnemo::serve {

/// Tuning of one Server instance.
struct ServeOptions {
  /// Worker threads answering requests (0 = hardware concurrency). Each
  /// request's campaign runs single-threaded inside its worker — results
  /// are bit-identical at any campaign thread count (DESIGN.md §6), and
  /// concurrency across *requests* is what serving mode is for.
  std::size_t threads = 0;
  /// Bound on requests admitted but not yet answered. Submissions beyond
  /// it are refused immediately with a typed `overloaded` error instead
  /// of queueing without bound (backpressure).
  std::size_t queue_capacity = 64;
  /// Artifact-store directory shared by every request (empty = no disk
  /// cache; the in-memory single-flight memo still applies).
  std::string cache_dir;
  bool use_cache = true;
  /// Deadline applied to requests that do not carry their own
  /// `deadline_ms`; 0 = no default (requests without a deadline run to
  /// completion). The clock starts at admission, so queue wait counts —
  /// a request stuck behind a saturated pool times out like any other.
  std::uint64_t default_deadline_ms = 0;
  /// Run ArtifactStore::fsck over cache_dir before serving (crash
  /// recovery): torn or foreign files are quarantined so a damaged cache
  /// degrades to cache misses instead of poisoning responses.
  bool fsck_on_start = true;
  /// Test seam: runs on the worker thread just before a request is
  /// handled. Lets tests hold workers inside the pool to make queue
  /// pressure deterministic. Not called for refused (overloaded) or
  /// unparseable requests.
  std::function<void(const Request&)> on_request;
};

/// The server's own ledger, returned by the `stats` op and printed on
/// shutdown. Counters cover the whole server lifetime.
struct ServeStats {
  std::uint64_t requests = 0;       ///< lines submitted (incl. refused)
  std::uint64_t ok = 0;             ///< successful responses
  std::uint64_t errors = 0;         ///< failed responses (excl. parse/overload)
  std::uint64_t parse_errors = 0;   ///< lines that did not parse
  std::uint64_t overloaded = 0;     ///< refused by backpressure
  std::uint64_t measure_leads = 0;  ///< campaigns actually replayed
  std::uint64_t measure_memo_hits = 0;   ///< measure served from the memo
  std::uint64_t single_flight_joins = 0; ///< blocked on an in-flight leader
  std::uint64_t queue_depth_hwm = 0;     ///< max in-service requests seen
  std::uint64_t deadline_hits = 0;  ///< requests answered deadline_exceeded
  std::uint64_t canceled = 0;       ///< requests canceled for other reasons
  std::uint64_t disconnects = 0;    ///< clients that vanished mid-stream

  [[nodiscard]] std::string render() const;
};

/// The concurrent consultant: a bounded worker pool answering protocol
/// requests against one shared ArtifactStore and one single-flight
/// measure memo. Every response's answer text is produced by the same
/// core::render_* functions the CLI subcommands use, so a serve response
/// is bit-identical to the single-client CLI answer for the same
/// configuration. Destruction drains: in-service requests complete
/// before the pool joins (graceful shutdown).
class Server {
 public:
  explicit Server(ServeOptions options);

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Answer one already-parsed request synchronously on this thread.
  /// `cancel` (optional) makes the work cooperative-cancelable: a token
  /// canceled (by the deadline watchdog, or out-of-band) settles the
  /// request with a typed deadline_exceeded/canceled error at the next
  /// cancellation point. This is the *only* settle path — the watchdog
  /// never fabricates a response of its own.
  [[nodiscard]] Response handle(const Request& request,
                                util::CancelToken* cancel = nullptr);

  /// Parse one line and enqueue it. Parse failures and backpressure
  /// refusals yield an immediately ready future, so every submitted line
  /// produces exactly one response either way.
  [[nodiscard]] std::future<std::string> submit_line(std::string line);

  /// Run the line protocol over a stream pair until EOF: one JSON object
  /// per input line, one response line per request, *in arrival order*
  /// regardless of completion order — a transcript is byte-stable at any
  /// worker count. Returns after every admitted request has been
  /// answered and written (graceful drain).
  void serve_stream(std::istream& in, std::ostream& out);

  [[nodiscard]] ServeStats stats() const;
  [[nodiscard]] const ServeOptions& options() const noexcept {
    return options_;
  }

 private:
  /// Materialize the session's measure stage through the single-flight
  /// memo: lead, join, or adopt from the memo. The token makes both the
  /// join wait and the led campaign cancelable.
  void resolve_measure(core::Session& session, util::CancelToken* cancel);

  ServeOptions options_;
  core::ArtifactStore store_;
  MeasureCache measures_;

  mutable std::mutex mu_;  ///< guards stats_ and pending_
  ServeStats stats_;
  std::size_t pending_ = 0;  ///< admitted, not yet completed

  /// Declared after the members its callbacks reach (tokens notify the
  /// measure cache's cv) and before the pool: destruction joins the
  /// timer thread only after every worker has settled.
  DeadlineWatchdog watchdog_;

  /// Declared last: destroyed first, draining outstanding work while the
  /// members above are still alive for the workers to use.
  util::ThreadPool pool_;
};

}  // namespace mnemo::serve
