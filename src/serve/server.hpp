#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>

#include "core/artifact_store.hpp"
#include "serve/protocol.hpp"
#include "serve/single_flight.hpp"
#include "util/cancel.hpp"
#include "util/task_scheduler.hpp"

namespace mnemo::core {
class Session;
struct SessionConfig;
}  // namespace mnemo::core

namespace mnemo::serve {

/// Tuning of one Server instance.
struct ServeOptions {
  /// Workers of the global task scheduler (0 = hardware concurrency).
  /// Requests do not own workers: every request's campaign cells
  /// interleave with every other's on this one pool, so a small request
  /// overtakes a big one mid-grid instead of queueing behind it. Results
  /// are bit-identical at any count (DESIGN.md §6).
  std::size_t threads = 0;
  /// Bound on requests admitted but not yet answered. Submissions beyond
  /// it are refused immediately with a typed `overloaded` error instead
  /// of queueing without bound (backpressure).
  std::size_t queue_capacity = 64;
  /// Artifact-store directory shared by every request (empty = no disk
  /// cache; the in-memory single-flight memo still applies).
  std::string cache_dir;
  bool use_cache = true;
  /// Deadline applied to requests that do not carry their own
  /// `deadline_ms`; 0 = no default (requests without a deadline run to
  /// completion). The clock starts at admission, so queue wait counts —
  /// a request stuck behind a saturated scheduler times out like any
  /// other.
  std::uint64_t default_deadline_ms = 0;
  /// Run ArtifactStore::fsck over cache_dir before serving (crash
  /// recovery): torn or foreign files are quarantined so a damaged cache
  /// degrades to cache misses instead of poisoning responses.
  bool fsck_on_start = true;
  /// Test seam: runs on the scheduler thread just before a request is
  /// handled. Lets tests hold workers to make queue pressure
  /// deterministic. Not called for refused (overloaded) or unparseable
  /// requests.
  std::function<void(const Request&)> on_request;
};

/// The server's own ledger, returned by the `stats` op and printed on
/// shutdown. Counters cover the whole server lifetime.
struct ServeStats {
  std::uint64_t requests = 0;       ///< lines submitted (incl. refused)
  std::uint64_t ok = 0;             ///< successful responses
  std::uint64_t errors = 0;         ///< failed responses (excl. parse/overload)
  std::uint64_t parse_errors = 0;   ///< lines that did not parse
  std::uint64_t overloaded = 0;     ///< refused by backpressure
  std::uint64_t measure_leads = 0;  ///< campaigns actually replayed
  std::uint64_t measure_memo_hits = 0;   ///< measure served from the memo
  std::uint64_t single_flight_joins = 0; ///< parked on an in-flight leader
  std::uint64_t queue_depth_hwm = 0;     ///< max in-service requests seen
  std::uint64_t deadline_hits = 0;  ///< requests answered deadline_exceeded
  std::uint64_t canceled = 0;       ///< requests canceled for other reasons
  std::uint64_t disconnects = 0;    ///< clients that vanished mid-stream
  std::uint64_t cells_run = 0;      ///< campaign cells executed by requests
  double queue_ms_total = 0.0;      ///< summed admission -> start waits
  double run_ms_total = 0.0;        ///< summed start -> settle times

  [[nodiscard]] std::string render() const;
};

/// The concurrent consultant as a scheduler-driven state machine: every
/// submitted request becomes a task group on one global TaskScheduler,
/// its campaign cells interleaving with every other request's under
/// deadline-aware weighted fair dispatch. No request owns a worker —
/// drivers run as short scheduler tasks, single-flight joiners park as
/// continuations (zero threads blocked), and deadlines live in the
/// scheduler's own timer queue. Every response's answer text is produced
/// by the same core::render_* functions the CLI subcommands use, so a
/// serve response is bit-identical to the single-client CLI answer for
/// the same configuration. Destruction drains: admitted requests settle
/// before the scheduler joins (graceful shutdown).
class Server {
 public:
  explicit Server(ServeOptions options);
  /// Waits until every admitted request has settled, then joins the
  /// scheduler's workers.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Answer one already-parsed request synchronously on this thread.
  /// The campaign still fans out on the global scheduler (the caller
  /// helps run cells); `cancel` (optional) makes the work
  /// cooperative-cancelable: a token canceled (by a deadline ticket, or
  /// out-of-band) settles the request with a typed
  /// deadline_exceeded/canceled error at the next cancellation point.
  /// This is the *only* settle path — timers only cancel, they never
  /// fabricate a response.
  [[nodiscard]] Response handle(const Request& request,
                                util::CancelToken* cancel = nullptr);

  /// Parse one line and enqueue it as a scheduler task group. Parse
  /// failures and backpressure refusals yield an immediately ready
  /// future, so every submitted line produces exactly one response
  /// either way.
  [[nodiscard]] std::future<std::string> submit_line(std::string line);

  /// Run the line protocol over a stream pair until EOF: one JSON object
  /// per input line, one response line per request, *in arrival order*
  /// regardless of completion order — a transcript is byte-stable at any
  /// worker count. Returns after every admitted request has been
  /// answered and written (graceful drain).
  void serve_stream(std::istream& in, std::ostream& out);

  [[nodiscard]] ServeStats stats() const;
  [[nodiscard]] const ServeOptions& options() const noexcept {
    return options_;
  }
  /// The global scheduler (test introspection: timer queue, threads).
  [[nodiscard]] util::TaskScheduler& scheduler() noexcept {
    return scheduler_;
  }

 private:
  /// One admitted asynchronous request: the group its tasks run under,
  /// the deadline plumbing, the session being driven, and the promise
  /// that settles exactly once. Tasks of a request run one at a time
  /// (each continuation submits the next), so the mutable state needs no
  /// lock of its own.
  struct RequestCtx;

  /// State-machine steps, each running as a kRequest scheduler task.
  void start_request(const std::shared_ptr<RequestCtx>& ctx);
  void resolve_measure_async(const std::shared_ptr<RequestCtx>& ctx);
  void finish(const std::shared_ptr<RequestCtx>& ctx);
  void settle(const std::shared_ptr<RequestCtx>& ctx, Response resp);

  /// Shared sync/async helpers.
  [[nodiscard]] core::SessionConfig make_session_config(
      const Request& request, util::CancelToken* cancel,
      util::TaskScheduler::Group* group);
  void render_answer(const Request& request, core::Session& session,
                     Response& resp);
  void account(Response& resp, const Request& request, double queue_ms,
               double run_ms, std::uint64_t cells);

  /// Blocking single-flight resolution for the synchronous handle()
  /// path: lead, join, or adopt from the memo.
  void resolve_measure(core::Session& session, util::CancelToken* cancel);

  ServeOptions options_;
  core::ArtifactStore store_;
  MeasureCache measures_;

  mutable std::mutex mu_;  ///< guards stats_ and pending_
  std::condition_variable drain_cv_;  ///< pending_ -> 0 (destructor)
  ServeStats stats_;
  std::size_t pending_ = 0;  ///< admitted, not yet settled

  /// Declared last: destroyed first, draining outstanding tasks while
  /// the members above are still alive for them to use. Also hosts the
  /// deadline timer queue (the former watchdog thread).
  util::TaskScheduler scheduler_;
};

}  // namespace mnemo::serve
