#include "serve/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <system_error>

#include "util/status.hpp"

namespace mnemo::serve {

namespace {

/// Recursive-descent parser over a bounded string_view. Positions are
/// byte offsets; every error path funnels through fail() so the offset
/// convention (1-based, pointing at the offending byte) is uniform.
class Parser {
 public:
  Parser(std::string_view text, const JsonLimits& limits)
      : text_(text), limits_(limits) {}

  JsonValue parse_document() {
    if (text_.size() > limits_.max_input) {
      fail(limits_.max_input, "request exceeds " +
                                  std::to_string(limits_.max_input) +
                                  " bytes");
    }
    skip_ws();
    JsonValue v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail(pos_, "trailing bytes after document");
    return v;
  }

 private:
  [[noreturn]] void fail(std::size_t pos, const std::string& message) const {
    throw util::ParseError("request", pos + 1, message);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  void expect(char c, const char* what) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(pos_, std::string("expected ") + what);
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value(std::size_t depth) {
    if (depth > limits_.max_depth) {
      fail(pos_, "nesting deeper than " + std::to_string(limits_.max_depth));
    }
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.string = parse_string();
        return v;
      }
      case 't': {
        if (!consume_literal("true")) fail(pos_, "invalid literal");
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        if (!consume_literal("false")) fail(pos_, "invalid literal");
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        v.boolean = false;
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail(pos_, "invalid literal");
        return JsonValue{};
      }
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
        fail(pos_, std::string("unexpected character '") + c + "'");
    }
  }

  JsonValue parse_object(std::size_t depth) {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    expect('{', "'{'");
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      const std::size_t key_pos = pos_;
      if (peek() != '"') fail(pos_, "expected member key string");
      std::string key = parse_string();
      for (const JsonValue::Member& m : v.object) {
        if (m.key == key) fail(key_pos, "duplicate field '" + key + "'");
      }
      if (v.object.size() >= limits_.max_members) {
        fail(key_pos,
             "more than " + std::to_string(limits_.max_members) + " members");
      }
      skip_ws();
      expect(':', "':'");
      skip_ws();
      JsonValue member = parse_value(depth + 1);
      v.object.push_back(
          JsonValue::Member{std::move(key), std::move(member), key_pos + 1});
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}', "',' or '}'");
      return v;
    }
  }

  JsonValue parse_array(std::size_t depth) {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    expect('[', "'['");
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      if (v.array.size() >= limits_.max_members) {
        fail(pos_,
             "more than " + std::to_string(limits_.max_members) + " elements");
      }
      v.array.push_back(parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']', "',' or ']'");
      return v;
    }
  }

  std::string parse_string() {
    const std::size_t start = pos_;
    expect('"', "'\"'");
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail(start, "unterminated string");
      if (out.size() > limits_.max_string) {
        fail(start, "string longer than " +
                        std::to_string(limits_.max_string) + " bytes");
      }
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail(pos_, "unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (pos_ >= text_.size()) fail(start, "unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_unicode_escape(&out); break;
        default:
          fail(pos_ - 1, std::string("invalid escape '\\") + e + "'");
      }
    }
  }

  /// \uXXXX -> UTF-8. Surrogate pairs are rejected (the protocol carries
  /// ASCII identifiers; full UTF-16 plumbing would be dead weight).
  void append_unicode_escape(std::string* out) {
    if (pos_ + 4 > text_.size()) fail(pos_, "truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_ + static_cast<std::size_t>(i)];
      code <<= 4;
      if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
      else fail(pos_ + static_cast<std::size_t>(i), "invalid \\u escape digit");
    }
    if (code >= 0xD800 && code <= 0xDFFF) {
      fail(pos_ - 2, "surrogate \\u escapes are not supported");
    }
    pos_ += 4;
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    if (peek() == '-') {
      v.negative = true;
      ++pos_;
    }
    if (peek() < '0' || peek() > '9') fail(pos_, "expected digit");
    while (peek() >= '0' && peek() <= '9') ++pos_;
    bool fractional = false;
    if (peek() == '.') {
      fractional = true;
      ++pos_;
      if (peek() < '0' || peek() > '9') fail(pos_, "expected fraction digit");
      while (peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      fractional = true;
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (peek() < '0' || peek() > '9') fail(pos_, "expected exponent digit");
      while (peek() >= '0' && peek() <= '9') ++pos_;
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    const char* first = token.data();
    const char* last = token.data() + token.size();
    if (!fractional) {
      // Exact 64-bit integer view, so u64 fields survive round-trips.
      const char* digits = v.negative ? first + 1 : first;
      std::uint64_t mag = 0;
      const auto [ptr, ec] = std::from_chars(digits, last, mag);
      if (ec == std::errc() && ptr == last) {
        v.integral = true;
        v.magnitude = mag;
      } else if (ec == std::errc::result_out_of_range) {
        fail(start, "integer out of 64-bit range");
      }
    }
    double d = 0.0;
    const auto [ptr, ec] = std::from_chars(first, last, d);
    if (ec != std::errc() || ptr != last || !std::isfinite(d)) {
      fail(start, "number out of range");
    }
    v.number = d;
    return v;
  }

  std::string_view text_;
  const JsonLimits& limits_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue::Member* JsonValue::find(std::string_view key) const {
  for (const Member& m : object) {
    if (m.key == key) return &m;
  }
  return nullptr;
}

std::string_view to_string(JsonValue::Kind kind) {
  switch (kind) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return "bool";
    case JsonValue::Kind::kNumber: return "number";
    case JsonValue::Kind::kString: return "string";
    case JsonValue::Kind::kArray: return "array";
    case JsonValue::Kind::kObject: return "object";
  }
  return "?";
}

JsonValue json_parse(std::string_view text, const JsonLimits& limits) {
  return Parser(text, limits).parse_document();
}

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string json_number(double v) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  if (ec != std::errc()) return "0";
  std::string out(buf, ptr);
  // Bare integers like "1" are also valid JSON; keep them as-is.
  return out;
}

}  // namespace mnemo::serve
