#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "util/status.hpp"

namespace mnemo::serve {

/// The serve line protocol: one JSON object per line in, one JSON object
/// per line out. Requests mirror the pipeline subcommands; the protocol
/// layer is strict (unknown fields, wrong types and out-of-range values
/// are ParseErrors with byte positions) so a malformed client can never
/// silently get a default-configured answer.

/// What the client wants computed — the pipeline stage to stop at, plus
/// `stats` for the server's own ledger.
enum class RequestOp : std::uint8_t {
  kCharacterize,
  kMeasure,
  kAdvise,
  kReport,
  kStats,
};

std::string_view to_string(RequestOp op);
/// nullopt when `name` is not a known op.
std::optional<RequestOp> parse_op(std::string_view name);

/// One parsed request line. Defaults match the CLI option defaults, so a
/// request carrying only {"id","op"} answers exactly like the bare
/// subcommand. Field semantics are the subcommand flags of the same name.
struct Request {
  std::string id;  ///< client-chosen correlation id, echoed in the response
  RequestOp op = RequestOp::kAdvise;
  std::string workload = "trending";  ///< built-in Table III workload name
  std::uint64_t keys = 0;             ///< 0 = workload default
  std::uint64_t requests = 0;         ///< 0 = workload default
  std::uint64_t seed = 0;             ///< 0 = workload default
  std::string store = "vermilion";
  bool tiered = false;
  std::string model = "size-aware";
  double p = 0.2;    ///< SlowMem price factor
  double slo = 0.1;  ///< permissible slowdown vs FastMem-only
  std::uint32_t repeats = 2;
  /// Per-request deadline in wall-clock milliseconds; 0 (the default)
  /// falls back to the server's default_deadline_ms (which may also be
  /// "none"). A request past its deadline stops at the next cancellation
  /// point and answers with a typed `deadline_exceeded` error; work that
  /// completed stays deterministic and nothing partial is published.
  std::uint64_t deadline_ms = 0;
  /// Opt into the response's per-request timing block (queue_ms / run_ms
  /// / cells_run). Off by default: the numbers are wall-clock and would
  /// break the byte-stable transcript property for clients that diff.
  bool timing = false;

  bool operator==(const Request&) const = default;

  /// Canonical one-line JSON form: every field, fixed order. parse_line()
  /// of the result reproduces the struct exactly (round-trip property).
  [[nodiscard]] std::string to_json_line() const;

  /// Strict parse of one request line. Throws util::ParseError("request",
  /// <1-based byte offset>, message) on malformed JSON, unknown or
  /// duplicate fields, wrong types, unknown op/store/model names, or
  /// out-of-range sizes. Never crashes on hostile input.
  [[nodiscard]] static Request parse_line(std::string_view line);
};

/// One response line. `ok` responses carry the stage's rendered answer
/// (bit-identical to the CLI answer for the same configuration); report
/// responses additionally carry the CSV body. Error responses carry a
/// typed code, a message, and — for parse errors — the byte position.
struct Response {
  std::string id;
  RequestOp op = RequestOp::kAdvise;
  bool ok = false;
  std::string output;
  std::string csv;  ///< report only
  std::string error_code;
  std::string error_message;
  std::size_t error_position = 0;  ///< 1-based byte offset; 0 = none

  /// Per-request cost accounting, serialized only when the request set
  /// `timing` (the values are wall-clock and nondeterministic). Present
  /// on both ok and error responses, so a deadline miss still reports
  /// how long it queued and how many cells it burned before the cut.
  bool timing = false;
  double queue_ms = 0.0;        ///< admission -> first scheduled work
  double run_ms = 0.0;          ///< first scheduled work -> settle
  std::uint64_t cells_run = 0;  ///< campaign cells this request executed

  [[nodiscard]] std::string to_json_line() const;
};

/// Error response from a typed util::Error (code rendered via
/// util::to_string(ErrorCode)).
[[nodiscard]] Response error_response(std::string id, RequestOp op,
                                      const util::Error& error);

/// Error response for a line that failed to parse: code "parse_error",
/// position from the exception. The id is empty — a line that did not
/// parse has no trustworthy id.
[[nodiscard]] Response parse_error_response(const util::ParseError& e);

}  // namespace mnemo::serve
