#include "serve/server.hpp"

#include <condition_variable>
#include <deque>
#include <istream>
#include <memory>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/render.hpp"
#include "core/session.hpp"
#include "kvstore/factory.hpp"
#include "serve/json.hpp"
#include "util/logging.hpp"
#include "workload/suite.hpp"

namespace mnemo::serve {

namespace {

kvstore::StoreKind store_kind(const std::string& name) {
  for (const kvstore::StoreKind kind : kvstore::kAllStoreKinds) {
    if (name == kvstore::to_string(kind)) return kind;
  }
  throw std::invalid_argument("unknown store " + name);
}

core::EstimateModel estimate_model(const std::string& name) {
  if (name == "uniform") return core::EstimateModel::kUniformDelta;
  return core::EstimateModel::kSizeAware;
}

workload::Trace request_trace(const Request& req) {
  // paper_workload() treats an unknown name as a caller contract violation
  // (abort); for a server it is client input, so pre-validate into a typed
  // error response instead.
  bool known = false;
  for (const workload::WorkloadSpec& s : workload::paper_suite()) {
    known = known || s.name == req.workload;
  }
  if (!known) {
    throw std::invalid_argument("unknown workload " + req.workload);
  }
  workload::WorkloadSpec spec = workload::paper_workload(req.workload);
  if (req.keys > 0) spec.key_count = req.keys;
  if (req.requests > 0) spec.request_count = req.requests;
  if (req.seed > 0) spec.seed = req.seed;
  return workload::Trace::generate(spec);
}

}  // namespace

std::string ServeStats::render() const {
  std::ostringstream out;
  out << "serve stats\n"
      << "  requests            " << requests << "\n"
      << "  ok                  " << ok << "\n"
      << "  errors              " << errors << "\n"
      << "  parse errors        " << parse_errors << "\n"
      << "  overloaded          " << overloaded << "\n"
      << "  measure leads       " << measure_leads << "\n"
      << "  measure memo hits   " << measure_memo_hits << "\n"
      << "  single-flight joins " << single_flight_joins << "\n"
      << "  queue depth (hwm)   " << queue_depth_hwm << "\n"
      << "  deadline exceeded   " << deadline_hits << "\n"
      << "  canceled            " << canceled << "\n"
      << "  dropped connections " << disconnects << "\n";
  return out.str();
}

Server::Server(ServeOptions options)
    : options_(std::move(options)),
      store_(options_.cache_dir),
      pool_(options_.threads) {
  // Crash recovery before the first request: a cache dir damaged by a
  // previous crash (torn writes, dead writers' temps) is quarantined so
  // every key degrades to a recomputable miss, never a poisoned answer.
  if (options_.fsck_on_start && store_.enabled()) {
    const core::FsckReport report = store_.fsck(/*repair=*/true);
    if (!report.clean()) {
      MNEMO_LOG_WARN("serve: startup fsck repaired %s:\n%s",
                     store_.dir().c_str(), report.render().c_str());
    }
  }
}

Response Server::handle(const Request& request, util::CancelToken* cancel) {
  if (options_.on_request) options_.on_request(request);
  Response resp;
  resp.id = request.id;
  resp.op = request.op;
  try {
    if (request.op == RequestOp::kStats) {
      resp.ok = true;
      resp.output = stats().render();
      return resp;
    }

    core::SessionConfig sc;
    sc.mnemo.store = store_kind(request.store);
    sc.mnemo.ordering = request.tiered ? core::OrderingPolicy::kTiered
                                       : core::OrderingPolicy::kTouchOrder;
    sc.mnemo.estimate_model = estimate_model(request.model);
    sc.mnemo.price_factor = request.p;
    sc.mnemo.slo_slowdown = request.slo;
    sc.mnemo.repeats = static_cast<int>(request.repeats);
    // One campaign thread per request: concurrency lives across requests,
    // and campaign results are thread-count-invariant (DESIGN.md §6).
    sc.mnemo.threads = 1;
    sc.mnemo.cancel = cancel;
    sc.use_cache = options_.use_cache;
    sc.shared_store = &store_;

    core::Session session(request_trace(request), sc);

    if (request.op != RequestOp::kCharacterize) {
      resolve_measure(session, cancel);
    }

    switch (request.op) {
      case RequestOp::kCharacterize:
        resp.output =
            core::render_characterize(session.trace(), session.characterize());
        break;
      case RequestOp::kMeasure:
        resp.output = core::render_measure(session.measure());
        break;
      case RequestOp::kAdvise:
        resp.output = session.measure().degraded
                          ? core::render_measure(session.measure())
                          : core::render_advise(session.measure(),
                                                session.advise());
        break;
      case RequestOp::kReport:
        resp.output = session.report().text;
        resp.csv = session.report().csv;
        break;
      case RequestOp::kStats:
        break;  // handled above
    }
    resp.ok = true;
  } catch (const util::CanceledError& e) {
    // The one settle path for a deadlined/canceled request: the worker
    // reaches a cancellation point and answers typed. Nothing partial
    // was published (the session never caches a canceled stage) and the
    // completed cells before the cut stayed deterministic.
    resp = error_response(request.id, request.op, e.error());
  } catch (const std::invalid_argument& e) {
    resp = error_response(
        request.id, request.op,
        util::Error{util::ErrorCode::kInvalidArgument, e.what()});
  } catch (const std::exception& e) {
    resp = error_response(
        request.id, request.op,
        util::Error{util::ErrorCode::kFailedPrecondition, e.what()});
  }
  {
    std::lock_guard lock(mu_);
    if (resp.ok) {
      ++stats_.ok;
    } else {
      ++stats_.errors;
      if (resp.error_code ==
          util::to_string(util::ErrorCode::kDeadlineExceeded)) {
        ++stats_.deadline_hits;
      } else if (resp.error_code ==
                 util::to_string(util::ErrorCode::kCanceled)) {
        ++stats_.canceled;
      }
    }
  }
  return resp;
}

void Server::resolve_measure(core::Session& session,
                             util::CancelToken* cancel) {
  const std::string key = session.measure_key();
  // Fast path: a prior stage load already materialized it (disk cache).
  if (session.measured()) return;
  MeasureCache::Lease lease = measures_.acquire(key, cancel);
  if (!lease.leader) {
    session.adopt_measure(*lease.artifact);
    std::lock_guard lock(mu_);
    if (lease.joined) {
      ++stats_.single_flight_joins;
    } else {
      ++stats_.measure_memo_hits;
    }
    return;
  }
  try {
    const core::MeasureArtifact& m = session.measure();
    // Degraded grids never enter the memo, matching the artifact store's
    // rule: a faulted campaign must not be laundered into later requests.
    if (!m.degraded && m.failures.empty()) {
      measures_.publish(key,
                        std::make_shared<const core::MeasureArtifact>(m));
    } else {
      measures_.abandon(key);
    }
    std::lock_guard lock(mu_);
    ++stats_.measure_leads;
  } catch (...) {
    measures_.abandon(key);
    throw;
  }
}

std::future<std::string> Server::submit_line(std::string line) {
  auto ready = [](Response resp) {
    std::promise<std::string> p;
    p.set_value(resp.to_json_line());
    return p.get_future();
  };

  Request req;
  try {
    req = Request::parse_line(line);
  } catch (const util::ParseError& e) {
    std::lock_guard lock(mu_);
    ++stats_.requests;
    ++stats_.parse_errors;
    return ready(parse_error_response(e));
  }

  {
    std::lock_guard lock(mu_);
    ++stats_.requests;
    if (pending_ >= options_.queue_capacity) {
      ++stats_.overloaded;
      return ready(error_response(
          req.id, req.op,
          util::Error{util::ErrorCode::kOverloaded,
                      "queue full (" +
                          std::to_string(options_.queue_capacity) +
                          " requests in service) — retry later"}));
    }
    ++pending_;
    if (pending_ > stats_.queue_depth_hwm) stats_.queue_depth_hwm = pending_;
  }

  // Deadline plumbing: the token is shared between the worker (which
  // polls it at cancellation points) and the watchdog ticket (which
  // cancels it when the deadline strikes). The clock starts here, at
  // admission, so time spent queued counts against the deadline.
  const std::uint64_t deadline_ms =
      req.deadline_ms != 0 ? req.deadline_ms : options_.default_deadline_ms;
  std::shared_ptr<util::CancelToken> token;
  DeadlineWatchdog::Ticket ticket = 0;
  if (deadline_ms != 0) {
    token = std::make_shared<util::CancelToken>(
        util::Deadline::after_ms(deadline_ms));
    ticket = watchdog_.arm(token->deadline().when(), [token] {
      // Only cancels — never settles. The worker produces the one and
      // only response when it reaches its next cancellation point.
      token->cancel(util::CancelToken::deadline_error());
    });
  }

  return pool_.submit(
      [this, req = std::move(req), token, ticket]() -> std::string {
        const Response resp = handle(req, token.get());
        if (token != nullptr) watchdog_.disarm(ticket);
        {
          std::lock_guard lock(mu_);
          --pending_;
        }
        return resp.to_json_line();
      });
}

void Server::serve_stream(std::istream& in, std::ostream& out) {
  // Responses are emitted strictly in request arrival order: the reader
  // appends futures to a queue and a single writer drains it front to
  // back. Workers may finish out of order; the transcript never does.
  std::mutex qmu;
  std::condition_variable qcv;
  std::deque<std::future<std::string>> queue;
  bool done = false;

  std::thread writer([&] {
    bool sink_alive = true;
    for (;;) {
      std::future<std::string> next;
      {
        std::unique_lock lock(qmu);
        qcv.wait(lock, [&] { return !queue.empty() || done; });
        if (queue.empty()) return;
        next = std::move(queue.front());
        queue.pop_front();
      }
      if (sink_alive) {
        out << next.get() << "\n" << std::flush;
        if (!out) {
          // Client vanished mid-stream (EPIPE/ECONNRESET surfaces as a
          // failed stream). Keep draining so every admitted request
          // still completes and updates the memo/stats — just stop
          // writing into the void. The server keeps serving others.
          sink_alive = false;
          std::lock_guard lock(mu_);
          ++stats_.disconnects;
        }
      } else {
        next.get();  // drain: completion still matters, the bytes don't
      }
    }
  });

  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::future<std::string> fut = submit_line(std::move(line));
    {
      std::lock_guard lock(qmu);
      queue.push_back(std::move(fut));
    }
    qcv.notify_one();
  }
  {
    std::lock_guard lock(qmu);
    done = true;
  }
  qcv.notify_one();
  writer.join();  // graceful drain: every admitted request is answered
}

ServeStats Server::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

}  // namespace mnemo::serve
