#include "serve/server.hpp"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <iomanip>
#include <istream>
#include <memory>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/render.hpp"
#include "core/session.hpp"
#include "kvstore/factory.hpp"
#include "serve/json.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"
#include "workload/suite.hpp"

namespace mnemo::serve {

namespace {

kvstore::StoreKind store_kind(const std::string& name) {
  for (const kvstore::StoreKind kind : kvstore::kAllStoreKinds) {
    if (name == kvstore::to_string(kind)) return kind;
  }
  throw std::invalid_argument("unknown store " + name);
}

core::EstimateModel estimate_model(const std::string& name) {
  if (name == "uniform") return core::EstimateModel::kUniformDelta;
  return core::EstimateModel::kSizeAware;
}

workload::Trace request_trace(const Request& req) {
  // paper_workload() treats an unknown name as a caller contract violation
  // (abort); for a server it is client input, so pre-validate into a typed
  // error response instead.
  bool known = false;
  for (const workload::WorkloadSpec& s : workload::paper_suite()) {
    known = known || s.name == req.workload;
  }
  if (!known) {
    throw std::invalid_argument("unknown workload " + req.workload);
  }
  workload::WorkloadSpec spec = workload::paper_workload(req.workload);
  if (req.keys > 0) spec.key_count = req.keys;
  if (req.requests > 0) spec.request_count = req.requests;
  if (req.seed > 0) spec.seed = req.seed;
  return workload::Trace::generate(spec);
}

/// The one exception -> typed response mapping, shared by the sync and
/// async paths. Must be called from inside a catch block.
Response response_for_exception(const Request& request) {
  try {
    throw;
  } catch (const util::CanceledError& e) {
    // The one settle path for a deadlined/canceled request: the request
    // reaches a cancellation point and answers typed. Nothing partial
    // was published (the session never caches a canceled stage) and the
    // completed cells before the cut stayed deterministic.
    return error_response(request.id, request.op, e.error());
  } catch (const std::invalid_argument& e) {
    return error_response(
        request.id, request.op,
        util::Error{util::ErrorCode::kInvalidArgument, e.what()});
  } catch (const std::exception& e) {
    return error_response(
        request.id, request.op,
        util::Error{util::ErrorCode::kFailedPrecondition, e.what()});
  }
}

[[nodiscard]] double ms_between(std::chrono::steady_clock::time_point from,
                                std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

}  // namespace

std::string ServeStats::render() const {
  std::ostringstream out;
  out << "serve stats\n"
      << "  requests            " << requests << "\n"
      << "  ok                  " << ok << "\n"
      << "  errors              " << errors << "\n"
      << "  parse errors        " << parse_errors << "\n"
      << "  overloaded          " << overloaded << "\n"
      << "  measure leads       " << measure_leads << "\n"
      << "  measure memo hits   " << measure_memo_hits << "\n"
      << "  single-flight joins " << single_flight_joins << "\n"
      << "  queue depth (hwm)   " << queue_depth_hwm << "\n"
      << "  deadline exceeded   " << deadline_hits << "\n"
      << "  canceled            " << canceled << "\n"
      << "  dropped connections " << disconnects << "\n"
      << "  cells run           " << cells_run << "\n"
      << std::fixed << std::setprecision(1)
      << "  queue wait ms (sum) " << queue_ms_total << "\n"
      << "  run time ms (sum)   " << run_ms_total << "\n";
  return out.str();
}

/// One admitted asynchronous request. Its lifecycle is a chain of
/// kRequest scheduler tasks (start -> resolve -> finish -> settle), each
/// submitting the next, so exactly one task touches the context at a
/// time and the struct needs no lock. Kept alive by the task closures;
/// settles its promise exactly once.
struct Server::RequestCtx {
  Request req;
  /// Null when the request carries no deadline. Shared with the timer
  /// ticket (which only cancels — never settles).
  std::shared_ptr<util::CancelToken> token;
  std::shared_ptr<util::TaskScheduler::Group> group;
  util::TaskScheduler::Ticket ticket = 0;
  std::promise<std::string> promise;
  std::chrono::steady_clock::time_point admitted;
  std::chrono::steady_clock::time_point started;
  std::unique_ptr<core::Session> session;
  std::string measure_key;
  /// True once this request parked behind an in-flight leader at least
  /// once — the lease it eventually adopts counts as a join, not a memo
  /// hit.
  bool waited = false;
};

Server::Server(ServeOptions options)
    : options_(std::move(options)),
      store_(options_.cache_dir),
      scheduler_(options_.threads) {
  // Crash recovery before the first request: a cache dir damaged by a
  // previous crash (torn writes, dead writers' temps) is quarantined so
  // every key degrades to a recomputable miss, never a poisoned answer.
  if (options_.fsck_on_start && store_.enabled()) {
    const core::FsckReport report = store_.fsck(/*repair=*/true);
    if (!report.clean()) {
      MNEMO_LOG_WARN("serve: startup fsck repaired %s:\n%s",
                     store_.dir().c_str(), report.render().c_str());
    }
  }
}

Server::~Server() {
  // Graceful drain: every admitted request settles before the scheduler
  // (declared last, destroyed first) joins its workers.
  std::unique_lock lock(mu_);
  drain_cv_.wait(lock, [this] { return pending_ == 0; });
}

core::SessionConfig Server::make_session_config(
    const Request& request, util::CancelToken* cancel,
    util::TaskScheduler::Group* group) {
  core::SessionConfig sc;
  sc.mnemo.store = store_kind(request.store);
  sc.mnemo.ordering = request.tiered ? core::OrderingPolicy::kTiered
                                     : core::OrderingPolicy::kTouchOrder;
  sc.mnemo.estimate_model = estimate_model(request.model);
  sc.mnemo.price_factor = request.p;
  sc.mnemo.slo_slowdown = request.slo;
  sc.mnemo.repeats = static_cast<int>(request.repeats);
  // Cells fan out on the one global scheduler: concurrency is shared
  // across requests, not owned per request, and campaign results are
  // thread-count-invariant (DESIGN.md §6).
  sc.mnemo.threads = scheduler_.threads();
  sc.mnemo.cancel = cancel;
  sc.mnemo.scheduler = &scheduler_;
  sc.mnemo.group = group;
  sc.use_cache = options_.use_cache;
  sc.shared_store = &store_;
  return sc;
}

void Server::render_answer(const Request& request, core::Session& session,
                           Response& resp) {
  switch (request.op) {
    case RequestOp::kCharacterize:
      resp.output =
          core::render_characterize(session.trace(), session.characterize());
      break;
    case RequestOp::kMeasure:
      resp.output = core::render_measure(session.measure());
      break;
    case RequestOp::kAdvise:
      resp.output = session.measure().degraded
                        ? core::render_measure(session.measure())
                        : core::render_advise(session.measure(),
                                              session.advise());
      break;
    case RequestOp::kReport:
      resp.output = session.report().text;
      resp.csv = session.report().csv;
      break;
    case RequestOp::kStats:
      break;  // answered before a session exists
  }
  resp.ok = true;
}

void Server::account(Response& resp, const Request& request, double queue_ms,
                     double run_ms, std::uint64_t cells) {
  if (request.timing) {
    resp.timing = true;
    resp.queue_ms = queue_ms;
    resp.run_ms = run_ms;
    resp.cells_run = cells;
  }
  std::lock_guard lock(mu_);
  stats_.queue_ms_total += queue_ms;
  stats_.run_ms_total += run_ms;
  stats_.cells_run += cells;
  // The ledger op reports the counters without perturbing them.
  if (request.op == RequestOp::kStats) return;
  if (resp.ok) {
    ++stats_.ok;
  } else {
    ++stats_.errors;
    if (resp.error_code ==
        util::to_string(util::ErrorCode::kDeadlineExceeded)) {
      ++stats_.deadline_hits;
    } else if (resp.error_code ==
               util::to_string(util::ErrorCode::kCanceled)) {
      ++stats_.canceled;
    }
  }
}

Response Server::handle(const Request& request, util::CancelToken* cancel) {
  if (options_.on_request) options_.on_request(request);
  util::WallTimer run_timer;
  Response resp;
  resp.id = request.id;
  resp.op = request.op;
  std::unique_ptr<core::Session> session;
  try {
    if (request.op == RequestOp::kStats) {
      resp.ok = true;
      resp.output = stats().render();
    } else {
      session = std::make_unique<core::Session>(
          request_trace(request),
          make_session_config(request, cancel, /*group=*/nullptr));
      if (request.op != RequestOp::kCharacterize) {
        resolve_measure(*session, cancel);
      }
      render_answer(request, *session, resp);
    }
  } catch (...) {
    resp = response_for_exception(request);
  }
  account(resp, request, /*queue_ms=*/0.0, run_timer.elapsed_s() * 1e3,
          session != nullptr ? session->campaign_cells_run() : 0);
  return resp;
}

void Server::resolve_measure(core::Session& session,
                             util::CancelToken* cancel) {
  const std::string key = session.measure_key();
  // Fast path: a prior stage load already materialized it (disk cache).
  if (session.measured()) return;
  MeasureCache::Lease lease = measures_.acquire(key, cancel);
  if (!lease.leader) {
    session.adopt_measure(*lease.artifact);
    std::lock_guard lock(mu_);
    if (lease.joined) {
      ++stats_.single_flight_joins;
    } else {
      ++stats_.measure_memo_hits;
    }
    return;
  }
  try {
    const core::MeasureArtifact& m = session.measure();
    // Degraded grids never enter the memo, matching the artifact store's
    // rule: a faulted campaign must not be laundered into later requests.
    if (!m.degraded && m.failures.empty()) {
      measures_.publish(key,
                        std::make_shared<const core::MeasureArtifact>(m));
    } else {
      measures_.abandon(key);
    }
    std::lock_guard lock(mu_);
    ++stats_.measure_leads;
  } catch (...) {
    measures_.abandon(key);
    throw;
  }
}

void Server::start_request(const std::shared_ptr<RequestCtx>& ctx) {
  ctx->started = std::chrono::steady_clock::now();
  try {
    if (options_.on_request) options_.on_request(ctx->req);
    if (ctx->req.op == RequestOp::kStats) {
      Response resp;
      resp.id = ctx->req.id;
      resp.op = ctx->req.op;
      resp.ok = true;
      resp.output = stats().render();
      settle(ctx, std::move(resp));
      return;
    }
    ctx->session = std::make_unique<core::Session>(
        request_trace(ctx->req),
        make_session_config(ctx->req, ctx->token.get(), ctx->group.get()));
    if (ctx->req.op == RequestOp::kCharacterize) {
      finish(ctx);
      return;
    }
    resolve_measure_async(ctx);
  } catch (...) {
    settle(ctx, response_for_exception(ctx->req));
  }
}

void Server::resolve_measure_async(const std::shared_ptr<RequestCtx>& ctx) {
  try {
    core::Session& session = *ctx->session;
    if (session.measured()) {
      finish(ctx);
      return;
    }
    if (ctx->measure_key.empty()) ctx->measure_key = session.measure_key();
    // Continuation-style single flight: a parked joiner occupies no
    // worker — the wake re-submits this step as a fresh task when the
    // leader publishes, abandons, or the deadline cancels the token.
    std::optional<MeasureCache::Lease> lease = measures_.try_acquire(
        ctx->measure_key, ctx->token.get(), [this, ctx] {
          ctx->group->submit(util::TaskScheduler::TaskClass::kRequest,
                             [this, ctx] { resolve_measure_async(ctx); });
        });
    if (!lease.has_value()) {
      ctx->waited = true;
      return;
    }
    if (!lease->leader) {
      session.adopt_measure(*lease->artifact);
      {
        std::lock_guard lock(mu_);
        if (ctx->waited) {
          ++stats_.single_flight_joins;
        } else {
          ++stats_.measure_memo_hits;
        }
      }
      finish(ctx);
      return;
    }
    // Leader: the campaign's cells join this request's group and fan out
    // across the scheduler; the continuation publishes (or abandons) and
    // renders. Cheap resolutions (disk hit, canceled) run it inline.
    session.measure_async(
        ctx->group, [this, ctx](std::exception_ptr error) {
          if (error != nullptr) {
            measures_.abandon(ctx->measure_key);
            try {
              std::rethrow_exception(error);
            } catch (...) {
              settle(ctx, response_for_exception(ctx->req));
            }
            return;
          }
          const core::MeasureArtifact& m = ctx->session->measure();
          // Degraded grids never enter the memo, matching the artifact
          // store's rule: a faulted campaign must not be laundered into
          // later requests.
          if (!m.degraded && m.failures.empty()) {
            measures_.publish(
                ctx->measure_key,
                std::make_shared<const core::MeasureArtifact>(m));
          } else {
            measures_.abandon(ctx->measure_key);
          }
          {
            std::lock_guard lock(mu_);
            ++stats_.measure_leads;
          }
          finish(ctx);
        });
  } catch (...) {
    settle(ctx, response_for_exception(ctx->req));
  }
}

void Server::finish(const std::shared_ptr<RequestCtx>& ctx) {
  Response resp;
  resp.id = ctx->req.id;
  resp.op = ctx->req.op;
  try {
    // The analytic stages carry their own cancellation points, so a
    // deadline that strikes after the grid still answers typed.
    render_answer(ctx->req, *ctx->session, resp);
  } catch (...) {
    resp = response_for_exception(ctx->req);
  }
  settle(ctx, std::move(resp));
}

void Server::settle(const std::shared_ptr<RequestCtx>& ctx, Response resp) {
  if (ctx->ticket != 0) scheduler_.disarm(ctx->ticket);
  const auto now = std::chrono::steady_clock::now();
  account(resp, ctx->req, ms_between(ctx->admitted, ctx->started),
          ms_between(ctx->started, now),
          ctx->session != nullptr ? ctx->session->campaign_cells_run() : 0);
  {
    std::lock_guard lock(mu_);
    MNEMO_ASSERT(pending_ > 0);
    --pending_;
  }
  drain_cv_.notify_all();
  ctx->promise.set_value(resp.to_json_line());
}

std::future<std::string> Server::submit_line(std::string line) {
  auto ready = [](Response resp) {
    std::promise<std::string> p;
    p.set_value(resp.to_json_line());
    return p.get_future();
  };

  Request req;
  try {
    req = Request::parse_line(line);
  } catch (const util::ParseError& e) {
    std::lock_guard lock(mu_);
    ++stats_.requests;
    ++stats_.parse_errors;
    return ready(parse_error_response(e));
  }

  {
    std::lock_guard lock(mu_);
    ++stats_.requests;
    if (pending_ >= options_.queue_capacity) {
      ++stats_.overloaded;
      return ready(error_response(
          req.id, req.op,
          util::Error{util::ErrorCode::kOverloaded,
                      "queue full (" +
                          std::to_string(options_.queue_capacity) +
                          " requests in service) — retry later"}));
    }
    ++pending_;
    if (pending_ > stats_.queue_depth_hwm) stats_.queue_depth_hwm = pending_;
  }

  auto ctx = std::make_shared<RequestCtx>();
  ctx->req = std::move(req);
  ctx->admitted = std::chrono::steady_clock::now();

  // Deadline plumbing: the token is shared between the request's tasks
  // (which poll it at cancellation points) and a scheduler timer ticket
  // (which cancels it when the deadline strikes). The clock starts here,
  // at admission, so time spent queued counts against the deadline — and
  // the same deadline is the group's EDF key, so the closer a request is
  // to its deadline the sooner its cells dispatch.
  const std::uint64_t deadline_ms = ctx->req.deadline_ms != 0
                                        ? ctx->req.deadline_ms
                                        : options_.default_deadline_ms;
  util::TaskScheduler::GroupOptions gopts;
  if (deadline_ms != 0) {
    ctx->token = std::make_shared<util::CancelToken>(
        util::Deadline::after_ms(deadline_ms));
    gopts.deadline = ctx->token->deadline();
    gopts.cancel = ctx->token.get();
    ctx->ticket = scheduler_.arm(
        ctx->token->deadline().when(), [token = ctx->token] {
          // Only cancels — never settles. The request produces the one
          // and only response when it reaches a cancellation point.
          token->cancel(util::CancelToken::deadline_error());
        });
  }
  ctx->group = scheduler_.make_group(gopts);

  std::future<std::string> fut = ctx->promise.get_future();
  ctx->group->submit(util::TaskScheduler::TaskClass::kRequest,
                     [this, ctx] { start_request(ctx); });
  return fut;
}

void Server::serve_stream(std::istream& in, std::ostream& out) {
  // Responses are emitted strictly in request arrival order: the reader
  // appends futures to a queue and a single writer drains it front to
  // back. Requests may finish out of order; the transcript never does.
  std::mutex qmu;
  std::condition_variable qcv;
  std::deque<std::future<std::string>> queue;
  bool done = false;

  std::thread writer([&] {
    bool sink_alive = true;
    for (;;) {
      std::future<std::string> next;
      {
        std::unique_lock lock(qmu);
        qcv.wait(lock, [&] { return !queue.empty() || done; });
        if (queue.empty()) return;
        next = std::move(queue.front());
        queue.pop_front();
      }
      if (sink_alive) {
        out << next.get() << "\n" << std::flush;
        if (!out) {
          // Client vanished mid-stream (EPIPE/ECONNRESET surfaces as a
          // failed stream). Keep draining so every admitted request
          // still completes and updates the memo/stats — just stop
          // writing into the void. The server keeps serving others.
          sink_alive = false;
          std::lock_guard lock(mu_);
          ++stats_.disconnects;
        }
      } else {
        next.get();  // drain: completion still matters, the bytes don't
      }
    }
  });

  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::future<std::string> fut = submit_line(std::move(line));
    {
      std::lock_guard lock(qmu);
      queue.push_back(std::move(fut));
    }
    qcv.notify_one();
  }
  {
    std::lock_guard lock(qmu);
    done = true;
  }
  qcv.notify_one();
  writer.join();  // graceful drain: every admitted request is answered
}

ServeStats Server::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

}  // namespace mnemo::serve
