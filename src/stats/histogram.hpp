#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mnemo::stats {

/// Fixed-width linear histogram over [lo, hi); out-of-range samples land in
/// saturating edge buckets. Cheap enough to sit on the simulator's per
/// request path (tail-latency tracking for Fig 8d/8e).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return total_; }
  [[nodiscard]] std::size_t buckets() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const;
  [[nodiscard]] double bucket_lo(std::size_t i) const;
  [[nodiscard]] double bucket_hi(std::size_t i) const;

  /// Quantile estimated by linear interpolation inside the bucket.
  [[nodiscard]] double quantile(double q) const;

  /// Compact terminal rendering (one line per non-empty bucket).
  [[nodiscard]] std::string render(std::size_t max_rows = 20) const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace mnemo::stats
