#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/assert.hpp"

namespace mnemo::stats {

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo),
      width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  MNEMO_EXPECTS(hi > lo);
  MNEMO_EXPECTS(buckets > 0);
}

void Histogram::add(double x) noexcept {
  double idx = (x - lo_) / width_;
  idx = std::clamp(idx, 0.0, static_cast<double>(counts_.size()) - 1.0);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::uint64_t Histogram::bucket_count(std::size_t i) const {
  MNEMO_EXPECTS(i < counts_.size());
  return counts_[i];
}

double Histogram::bucket_lo(std::size_t i) const {
  MNEMO_EXPECTS(i < counts_.size());
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const { return bucket_lo(i) + width_; }

double Histogram::quantile(double q) const {
  MNEMO_EXPECTS(q >= 0.0 && q <= 1.0);
  MNEMO_EXPECTS(total_ > 0);
  const double target = q * static_cast<double>(total_);
  double running = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto c = static_cast<double>(counts_[i]);
    if (running + c >= target && c > 0.0) {
      const double frac = (target - running) / c;
      return bucket_lo(i) + frac * width_;
    }
    running += c;
  }
  return bucket_hi(counts_.size() - 1);
}

std::string Histogram::render(std::size_t max_rows) const {
  std::uint64_t peak = 0;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  std::size_t rows = 0;
  for (std::size_t i = 0; i < counts_.size() && rows < max_rows; ++i) {
    if (counts_[i] == 0) continue;
    const int bar =
        peak == 0 ? 0
                  : static_cast<int>(40.0 * static_cast<double>(counts_[i]) /
                                     static_cast<double>(peak));
    char buf[64];
    std::snprintf(buf, sizeof buf, "[%10.3g, %10.3g) %8llu ", bucket_lo(i),
                  bucket_hi(i),
                  static_cast<unsigned long long>(counts_[i]));
    out << buf << std::string(static_cast<std::size_t>(bar), '#') << "\n";
    ++rows;
  }
  return out.str();
}

}  // namespace mnemo::stats
