#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace mnemo::stats {

/// Log-scale latency histogram: fixed range [10 ns, 10 s), 20 buckets per
/// decade (180 buckets total), plus saturating edge buckets. Default
/// constructible and cheap to copy, so it can ride along in measurement
/// structs; used to carry full latency distributions out of baseline runs
/// for mixture-based tail estimation.
class LogHistogram {
 public:
  static constexpr double kMinNs = 10.0;
  static constexpr double kMaxNs = 10.0e9;
  static constexpr std::size_t kBucketsPerDecade = 20;
  static constexpr std::size_t kDecades = 9;
  static constexpr std::size_t kBuckets = kBucketsPerDecade * kDecades;

  void add(double ns) noexcept;

  /// The bucket add(ns) increments: floor of the clamped log10 position.
  /// This is the scalar reference the batch path is held against.
  [[nodiscard]] static std::size_t bucket_index(double ns) noexcept;

  /// Batch add without libm: bucket indices come from a branchless binary
  /// search of bucket_bounds() (util::simd — vectorized when the CPU
  /// allows). Counts commute, so add_batch(v) produces exactly the same
  /// histogram as add()-ing each element in any order; the boundary table
  /// is exact by construction (see bucket_bounds), so every index matches
  /// bucket_index() bit for bit. This is the lane-fused replay path's
  /// histogram (DESIGN.md §14); per-op add() stays the per-cell oracle.
  void add_batch(std::span<const double> ns) noexcept;

  /// Ascending boundary table driving add_batch: bounds[i] is the
  /// smallest double whose bucket_index is i (bounds[0] = -inf so every
  /// input has a predecessor), padded with +inf to 256 entries for the
  /// fixed-depth search. Built once per process by bit-level bisection
  /// against bucket_index itself — monotonicity of the index function
  /// makes the table exact, not approximate.
  [[nodiscard]] static std::span<const double, 256> bucket_bounds() noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return counts_[i];
  }

  /// Lower/upper bound of bucket i in ns.
  [[nodiscard]] static double bucket_lo_ns(std::size_t i);
  [[nodiscard]] static double bucket_hi_ns(std::size_t i);

  /// Quantile with log-linear interpolation inside the bucket. Requires a
  /// non-empty histogram.
  [[nodiscard]] double quantile(double q) const;

  /// Accumulate another histogram (e.g. across repeated runs).
  void merge(const LogHistogram& other) noexcept;

  /// Overwrite the bucket counts (artifact deserialization). The total is
  /// recomputed — every add() lands in exactly one bucket, so the sum of
  /// buckets is the count by construction.
  void restore(std::span<const std::uint64_t, kBuckets> counts) noexcept;

  [[nodiscard]] friend bool operator==(const LogHistogram&,
                                       const LogHistogram&) = default;

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t total_ = 0;
};

/// Quantile of the two-component mixture wa·A + wb·B (weights need not be
/// normalized). This is the tail-estimation primitive: requests served by
/// FastMem draw their latency from the fast baseline's distribution,
/// SlowMem requests from the slow baseline's.
double mixture_quantile(const LogHistogram& a, double wa,
                        const LogHistogram& b, double wb, double q);

}  // namespace mnemo::stats
