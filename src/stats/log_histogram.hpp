#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace mnemo::stats {

/// Log-scale latency histogram: fixed range [10 ns, 10 s), 20 buckets per
/// decade (180 buckets total), plus saturating edge buckets. Default
/// constructible and cheap to copy, so it can ride along in measurement
/// structs; used to carry full latency distributions out of baseline runs
/// for mixture-based tail estimation.
class LogHistogram {
 public:
  static constexpr double kMinNs = 10.0;
  static constexpr double kMaxNs = 10.0e9;
  static constexpr std::size_t kBucketsPerDecade = 20;
  static constexpr std::size_t kDecades = 9;
  static constexpr std::size_t kBuckets = kBucketsPerDecade * kDecades;

  void add(double ns) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return counts_[i];
  }

  /// Lower/upper bound of bucket i in ns.
  [[nodiscard]] static double bucket_lo_ns(std::size_t i);
  [[nodiscard]] static double bucket_hi_ns(std::size_t i);

  /// Quantile with log-linear interpolation inside the bucket. Requires a
  /// non-empty histogram.
  [[nodiscard]] double quantile(double q) const;

  /// Accumulate another histogram (e.g. across repeated runs).
  void merge(const LogHistogram& other) noexcept;

  /// Overwrite the bucket counts (artifact deserialization). The total is
  /// recomputed — every add() lands in exactly one bucket, so the sum of
  /// buckets is the count by construction.
  void restore(std::span<const std::uint64_t, kBuckets> counts) noexcept;

  [[nodiscard]] friend bool operator==(const LogHistogram&,
                                       const LogHistogram&) = default;

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t total_ = 0;
};

/// Quantile of the two-component mixture wa·A + wb·B (weights need not be
/// normalized). This is the tail-estimation primitive: requests served by
/// FastMem draw their latency from the fast baseline's distribution,
/// SlowMem requests from the slow baseline's.
double mixture_quantile(const LogHistogram& a, double wa,
                        const LogHistogram& b, double wb, double q);

}  // namespace mnemo::stats
