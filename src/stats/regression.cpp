#include "stats/regression.hpp"

#include <cmath>
#include <stdexcept>

#include "util/assert.hpp"

namespace mnemo::stats {

std::vector<double> solve_linear(std::vector<std::vector<double>> a,
                                 std::vector<double> b) {
  const std::size_t n = b.size();
  MNEMO_EXPECTS(a.size() == n);
  for (const auto& row : a) MNEMO_EXPECTS(row.size() == n);

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    }
    if (std::fabs(a[pivot][col]) < 1e-12) {
      throw std::runtime_error("solve_linear: singular system");
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);

    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a[r][col] / a[col][col];
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a[r][c] -= f * a[col][c];
      b[r] -= f * b[col];
    }
  }

  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double sum = b[i];
    for (std::size_t c = i + 1; c < n; ++c) sum -= a[i][c] * x[c];
    x[i] = sum / a[i][i];
  }
  return x;
}

namespace {

std::vector<double> normal_equations(std::span<const std::vector<double>> rows,
                                     std::span<const double> y,
                                     double lambda) {
  if (rows.size() != y.size()) {
    throw std::invalid_argument("regression: rows/y size mismatch");
  }
  if (rows.empty()) {
    throw std::invalid_argument("regression: empty sample");
  }
  const std::size_t k = rows[0].size();
  for (const auto& r : rows) {
    if (r.size() != k) {
      throw std::invalid_argument("regression: ragged feature rows");
    }
  }

  std::vector<std::vector<double>> xtx(k, std::vector<double>(k, 0.0));
  std::vector<double> xty(k, 0.0);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (std::size_t a = 0; a < k; ++a) {
      xty[a] += rows[i][a] * y[i];
      for (std::size_t b = a; b < k; ++b) {
        xtx[a][b] += rows[i][a] * rows[i][b];
      }
    }
  }
  for (std::size_t a = 0; a < k; ++a) {
    xtx[a][a] += lambda;
    for (std::size_t b = 0; b < a; ++b) xtx[a][b] = xtx[b][a];
  }
  return solve_linear(std::move(xtx), std::move(xty));
}

}  // namespace

std::vector<double> least_squares(std::span<const std::vector<double>> rows,
                                  std::span<const double> y) {
  return normal_equations(rows, y, 0.0);
}

std::vector<double> ridge(std::span<const std::vector<double>> rows,
                          std::span<const double> y, double lambda) {
  MNEMO_EXPECTS(lambda >= 0.0);
  return normal_equations(rows, y, lambda);
}

Line fit_line(std::span<const double> x, std::span<const double> y) {
  MNEMO_EXPECTS(x.size() == y.size());
  MNEMO_EXPECTS(x.size() >= 2);
  std::vector<std::vector<double>> rows;
  rows.reserve(x.size());
  for (double xi : x) rows.push_back({1.0, xi});
  const auto beta = least_squares(rows, y);
  return Line{beta[0], beta[1]};
}

Line fit_line_moments(double n, double sum_x, double sum_xx,
                      std::span<const double> x, std::span<const double> y) {
  MNEMO_EXPECTS(x.size() == y.size());
  MNEMO_EXPECTS(x.size() >= 2);
  // The y-side accumulators below sum in index order, exactly like
  // normal_equations' per-row loop; each accumulator is an independent
  // chain of additions, so splitting them from the x-side chains cannot
  // change any of the four sums.
  double sum_y = 0.0;
  double sum_xy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sum_y += y[i];
    sum_xy += x[i] * y[i];
  }
  std::vector<std::vector<double>> xtx = {{n, sum_x}, {sum_x, sum_xx}};
  std::vector<double> xty = {sum_y, sum_xy};
  const auto beta = solve_linear(std::move(xtx), std::move(xty));
  return Line{beta[0], beta[1]};
}

double r_squared(std::span<const double> y, std::span<const double> yhat) {
  MNEMO_EXPECTS(y.size() == yhat.size());
  MNEMO_EXPECTS(!y.empty());
  double mean = 0.0;
  for (double v : y) mean += v;
  mean /= static_cast<double>(y.size());
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    ss_res += (y[i] - yhat[i]) * (y[i] - yhat[i]);
    ss_tot += (y[i] - mean) * (y[i] - mean);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace mnemo::stats
