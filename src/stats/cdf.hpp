#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace mnemo::stats {

/// Empirical cumulative distribution function over a sample. Construction
/// sorts a private copy; evaluation is O(log n). Backs the paper's Fig 3
/// (key-request CDFs) and Fig 4 (record-size CDFs).
class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::span<const double> samples);

  /// P(X <= x).
  [[nodiscard]] double at(double x) const;

  /// Smallest sample value v such that P(X <= v) >= q.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::size_t size() const { return sorted_.size(); }
  [[nodiscard]] double min() const { return sorted_.front(); }
  [[nodiscard]] double max() const { return sorted_.back(); }

  /// Evenly spaced (x, F(x)) pairs for plotting; `points >= 2`.
  [[nodiscard]] std::vector<std::pair<double, double>> curve(
      std::size_t points) const;

 private:
  std::vector<double> sorted_;
};

/// Cumulative share curve over per-item counts: entry k of the result is
/// (sum of counts[0..k]) / total. This is exactly what the paper plots in
/// Fig 3 when keys are in ID order ("probability for a key ID to be
/// requested throughout the workload").
std::vector<double> cumulative_share(std::span<const std::uint64_t> counts);

}  // namespace mnemo::stats
