#pragma once

#include <span>
#include <vector>

namespace mnemo::stats {

/// Ordinary least squares fit of y ≈ X·beta via the normal equations
/// (XᵀX)·beta = Xᵀy, solved with partially pivoted Gaussian elimination.
/// `rows[i]` is one observation's feature vector; all rows must have equal
/// length. Throws std::invalid_argument on shape mismatch and
/// std::runtime_error if the system is singular.
///
/// This is the Amur et al. methodology the paper uses to split VM prices
/// into per-vCPU and per-GB components (Fig 1), and the learner behind the
/// Tahoe-style comparator in Table IV.
std::vector<double> least_squares(
    std::span<const std::vector<double>> rows, std::span<const double> y);

/// Ridge regression: (XᵀX + lambda·I)·beta = Xᵀy. lambda >= 0; lambda == 0
/// degrades to least_squares.
std::vector<double> ridge(std::span<const std::vector<double>> rows,
                          std::span<const double> y, double lambda);

/// Solve a dense linear system A·x = b in place (A is row-major n×n).
/// Throws std::runtime_error if A is singular.
std::vector<double> solve_linear(std::vector<std::vector<double>> a,
                                 std::vector<double> b);

/// Fit y ≈ a + b·x; returns {a, b}. Convenience wrapper for 1-D trends.
struct Line {
  double intercept = 0.0;
  double slope = 0.0;
  [[nodiscard]] double at(double x) const { return intercept + slope * x; }
  [[nodiscard]] friend bool operator==(const Line&, const Line&) = default;
};
Line fit_line(std::span<const double> x, std::span<const double> y);

/// fit_line with the x-side normal-equation moments precomputed by the
/// caller: n = Σ1, sum_x = Σx[i], sum_xx = Σx[i]², each accumulated in
/// index order exactly as fit_line's own loop would. The y-side moments
/// are accumulated here in the same order, and the identical 2×2 system
/// goes through the same solver — the returned Line is bit-identical to
/// fit_line(x, y). Used by the compiled replay path, where x (the byte
/// stream) is campaign-invariant but y (latency) changes per cell; it
/// also skips fit_line's per-row feature-vector materialization.
Line fit_line_moments(double n, double sum_x, double sum_xx,
                      std::span<const double> x, std::span<const double> y);

/// Coefficient of determination of predictions vs observations.
double r_squared(std::span<const double> y, std::span<const double> yhat);

}  // namespace mnemo::stats
