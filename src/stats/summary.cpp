#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace mnemo::stats {

void Welford::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Welford::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Welford::stddev() const noexcept { return std::sqrt(variance()); }

void Welford::merge(const Welford& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double percentile_sorted(std::span<const double> sorted, double q) {
  MNEMO_EXPECTS(!sorted.empty());
  MNEMO_EXPECTS(q >= 0.0 && q <= 1.0);
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted[sorted.size() - 1];
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double percentile(std::span<const double> xs, double q) {
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  return percentile_sorted(copy, q);
}

double mean(std::span<const double> xs) {
  MNEMO_EXPECTS(!xs.empty());
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double median(std::span<const double> xs) { return percentile(xs, 0.5); }

double stddev(std::span<const double> xs) {
  Welford w;
  for (double x : xs) w.add(x);
  return w.stddev();
}

BoxplotStats boxplot(std::span<const double> xs) {
  MNEMO_EXPECTS(!xs.empty());
  std::vector<double> s(xs.begin(), xs.end());
  std::sort(s.begin(), s.end());
  BoxplotStats b;
  b.n = s.size();
  b.min = s.front();
  b.max = s.back();
  b.q1 = percentile_sorted(s, 0.25);
  b.median = percentile_sorted(s, 0.5);
  b.q3 = percentile_sorted(s, 0.75);
  const double iqr = b.q3 - b.q1;
  const double lo_fence = b.q1 - 1.5 * iqr;
  const double hi_fence = b.q3 + 1.5 * iqr;
  b.whisker_lo = b.max;
  b.whisker_hi = b.min;
  for (double x : s) {
    if (x >= lo_fence) {
      b.whisker_lo = x;
      break;
    }
  }
  for (auto it = s.rbegin(); it != s.rend(); ++it) {
    if (*it <= hi_fence) {
      b.whisker_hi = *it;
      break;
    }
  }
  for (double x : s) {
    if (x < lo_fence || x > hi_fence) ++b.outliers;
  }
  return b;
}

}  // namespace mnemo::stats
