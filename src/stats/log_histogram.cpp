#include "stats/log_histogram.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace mnemo::stats {

namespace {

double log_min() { return std::log10(LogHistogram::kMinNs); }

constexpr double kBucketWidthLog =
    1.0 / static_cast<double>(LogHistogram::kBucketsPerDecade);

}  // namespace

void LogHistogram::add(double ns) noexcept {
  double idx =
      (std::log10(std::max(ns, kMinNs)) - log_min()) / kBucketWidthLog;
  idx = std::clamp(idx, 0.0, static_cast<double>(kBuckets) - 1.0);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double LogHistogram::bucket_lo_ns(std::size_t i) {
  MNEMO_EXPECTS(i < kBuckets);
  return std::pow(10.0, log_min() + kBucketWidthLog * static_cast<double>(i));
}

double LogHistogram::bucket_hi_ns(std::size_t i) {
  return std::pow(10.0,
                  log_min() + kBucketWidthLog * static_cast<double>(i + 1));
}

double LogHistogram::quantile(double q) const {
  MNEMO_EXPECTS(total_ > 0);
  MNEMO_EXPECTS(q >= 0.0 && q <= 1.0);
  const double target = q * static_cast<double>(total_);
  double running = 0.0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const auto c = static_cast<double>(counts_[i]);
    if (running + c >= target && c > 0.0) {
      const double frac = (target - running) / c;
      const double lo = std::log10(bucket_lo_ns(i));
      return std::pow(10.0, lo + frac * kBucketWidthLog);
    }
    running += c;
  }
  return bucket_hi_ns(kBuckets - 1);
}

void LogHistogram::merge(const LogHistogram& other) noexcept {
  for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
}

void LogHistogram::restore(
    std::span<const std::uint64_t, kBuckets> counts) noexcept {
  total_ = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    counts_[i] = counts[i];
    total_ += counts[i];
  }
}

double mixture_quantile(const LogHistogram& a, double wa,
                        const LogHistogram& b, double wb, double q) {
  MNEMO_EXPECTS(wa >= 0.0 && wb >= 0.0 && wa + wb > 0.0);
  MNEMO_EXPECTS(q >= 0.0 && q <= 1.0);
  // Normalize each component to a probability mass, then scale by its
  // mixture weight.
  const double ta =
      a.count() > 0 ? wa / static_cast<double>(a.count()) : 0.0;
  const double tb =
      b.count() > 0 ? wb / static_cast<double>(b.count()) : 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < LogHistogram::kBuckets; ++i) {
    total += static_cast<double>(a.bucket(i)) * ta +
             static_cast<double>(b.bucket(i)) * tb;
  }
  MNEMO_EXPECTS(total > 0.0);
  const double target = q * total;
  double running = 0.0;
  for (std::size_t i = 0; i < LogHistogram::kBuckets; ++i) {
    const double c = static_cast<double>(a.bucket(i)) * ta +
                     static_cast<double>(b.bucket(i)) * tb;
    if (running + c >= target && c > 0.0) {
      const double frac = (target - running) / c;
      const double lo = std::log10(LogHistogram::bucket_lo_ns(i));
      const double width = std::log10(LogHistogram::bucket_hi_ns(i)) - lo;
      return std::pow(10.0, lo + frac * width);
    }
    running += c;
  }
  return LogHistogram::bucket_hi_ns(LogHistogram::kBuckets - 1);
}

}  // namespace mnemo::stats
