#include "stats/log_histogram.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <limits>

#include "util/assert.hpp"
#include "util/simd.hpp"

namespace mnemo::stats {

namespace {

double log_min() { return std::log10(LogHistogram::kMinNs); }

constexpr double kBucketWidthLog =
    1.0 / static_cast<double>(LogHistogram::kBucketsPerDecade);

/// Build the exact boundary table: for each bucket i, the smallest double
/// x with bucket_index(x) == i. The index function is monotone
/// non-decreasing (log10, scale, clamp and floor all are), so for
/// positive doubles — whose IEEE bit patterns order the same way as their
/// values — the boundary can be found by bisecting bit patterns between a
/// point below the step and a point at-or-above it. 64 compares per
/// bucket, once per process.
std::array<double, 256> build_bounds() {
  std::array<double, 256> bounds;
  bounds[0] = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 1; i < LogHistogram::kBuckets; ++i) {
    // Seed the bracket from the pow estimate of the boundary, then widen
    // until it actually straddles the step (pow is within a few ULP).
    const double guess = std::pow(
        10.0, log_min() + kBucketWidthLog * static_cast<double>(i));
    double lo = guess * (1.0 - 1e-9);
    double hi = guess * (1.0 + 1e-9);
    while (LogHistogram::bucket_index(lo) >= i) lo *= 1.0 - 1e-9;
    while (LogHistogram::bucket_index(hi) < i) hi *= 1.0 + 1e-9;
    std::uint64_t lo_bits = std::bit_cast<std::uint64_t>(lo);
    std::uint64_t hi_bits = std::bit_cast<std::uint64_t>(hi);
    while (hi_bits - lo_bits > 1) {
      const std::uint64_t mid_bits = lo_bits + (hi_bits - lo_bits) / 2;
      const double mid = std::bit_cast<double>(mid_bits);
      if (LogHistogram::bucket_index(mid) >= i) {
        hi_bits = mid_bits;
      } else {
        lo_bits = mid_bits;
      }
    }
    bounds[i] = std::bit_cast<double>(hi_bits);
    MNEMO_ASSERT(LogHistogram::bucket_index(bounds[i]) == i);
    MNEMO_ASSERT(LogHistogram::bucket_index(std::bit_cast<double>(
                     hi_bits - 1)) == i - 1);
  }
  for (std::size_t i = LogHistogram::kBuckets; i < bounds.size(); ++i) {
    bounds[i] = std::numeric_limits<double>::infinity();
  }
  return bounds;
}

}  // namespace

std::size_t LogHistogram::bucket_index(double ns) noexcept {
  double idx =
      (std::log10(std::max(ns, kMinNs)) - log_min()) / kBucketWidthLog;
  idx = std::clamp(idx, 0.0, static_cast<double>(kBuckets) - 1.0);
  return static_cast<std::size_t>(idx);
}

std::span<const double, 256> LogHistogram::bucket_bounds() noexcept {
  static const std::array<double, 256> bounds = build_bounds();
  return bounds;
}

void LogHistogram::add(double ns) noexcept {
  ++counts_[bucket_index(ns)];
  ++total_;
}

void LogHistogram::add_batch(std::span<const double> ns) noexcept {
  const double* bounds = bucket_bounds().data();
  constexpr std::size_t kChunk = 128;
  std::uint32_t idx[kChunk];
  std::size_t i = 0;
  while (i < ns.size()) {
    const std::size_t n = std::min(kChunk, ns.size() - i);
    util::simd::partition_index_batch(bounds, ns.data() + i, idx, n);
    for (std::size_t j = 0; j < n; ++j) ++counts_[idx[j]];
    i += n;
  }
  total_ += ns.size();
}

double LogHistogram::bucket_lo_ns(std::size_t i) {
  MNEMO_EXPECTS(i < kBuckets);
  return std::pow(10.0, log_min() + kBucketWidthLog * static_cast<double>(i));
}

double LogHistogram::bucket_hi_ns(std::size_t i) {
  return std::pow(10.0,
                  log_min() + kBucketWidthLog * static_cast<double>(i + 1));
}

double LogHistogram::quantile(double q) const {
  MNEMO_EXPECTS(total_ > 0);
  MNEMO_EXPECTS(q >= 0.0 && q <= 1.0);
  const double target = q * static_cast<double>(total_);
  double running = 0.0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const auto c = static_cast<double>(counts_[i]);
    if (running + c >= target && c > 0.0) {
      const double frac = (target - running) / c;
      const double lo = std::log10(bucket_lo_ns(i));
      return std::pow(10.0, lo + frac * kBucketWidthLog);
    }
    running += c;
  }
  return bucket_hi_ns(kBuckets - 1);
}

void LogHistogram::merge(const LogHistogram& other) noexcept {
  for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
}

void LogHistogram::restore(
    std::span<const std::uint64_t, kBuckets> counts) noexcept {
  total_ = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    counts_[i] = counts[i];
    total_ += counts[i];
  }
}

double mixture_quantile(const LogHistogram& a, double wa,
                        const LogHistogram& b, double wb, double q) {
  MNEMO_EXPECTS(wa >= 0.0 && wb >= 0.0 && wa + wb > 0.0);
  MNEMO_EXPECTS(q >= 0.0 && q <= 1.0);
  // Normalize each component to a probability mass, then scale by its
  // mixture weight.
  const double ta =
      a.count() > 0 ? wa / static_cast<double>(a.count()) : 0.0;
  const double tb =
      b.count() > 0 ? wb / static_cast<double>(b.count()) : 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < LogHistogram::kBuckets; ++i) {
    total += static_cast<double>(a.bucket(i)) * ta +
             static_cast<double>(b.bucket(i)) * tb;
  }
  MNEMO_EXPECTS(total > 0.0);
  const double target = q * total;
  double running = 0.0;
  for (std::size_t i = 0; i < LogHistogram::kBuckets; ++i) {
    const double c = static_cast<double>(a.bucket(i)) * ta +
                     static_cast<double>(b.bucket(i)) * tb;
    if (running + c >= target && c > 0.0) {
      const double frac = (target - running) / c;
      const double lo = std::log10(LogHistogram::bucket_lo_ns(i));
      const double width = std::log10(LogHistogram::bucket_hi_ns(i)) - lo;
      return std::pow(10.0, lo + frac * width);
    }
    running += c;
  }
  return LogHistogram::bucket_hi_ns(LogHistogram::kBuckets - 1);
}

}  // namespace mnemo::stats
