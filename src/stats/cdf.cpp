#include "stats/cdf.hpp"

#include <algorithm>
#include <cstdint>

#include "util/assert.hpp"

namespace mnemo::stats {

EmpiricalCdf::EmpiricalCdf(std::span<const double> samples)
    : sorted_(samples.begin(), samples.end()) {
  MNEMO_EXPECTS(!samples.empty());
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::at(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double q) const {
  MNEMO_EXPECTS(q >= 0.0 && q <= 1.0);
  if (q <= 0.0) return sorted_.front();
  const auto idx = static_cast<std::size_t>(
      std::min<double>(static_cast<double>(sorted_.size()) - 1.0,
                       q * static_cast<double>(sorted_.size())));
  return sorted_[idx];
}

std::vector<std::pair<double, double>> EmpiricalCdf::curve(
    std::size_t points) const {
  MNEMO_EXPECTS(points >= 2);
  std::vector<std::pair<double, double>> out;
  out.reserve(points);
  const double lo = min();
  const double hi = max();
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(x, at(x));
  }
  return out;
}

std::vector<double> cumulative_share(std::span<const std::uint64_t> counts) {
  std::vector<double> out;
  out.reserve(counts.size());
  std::uint64_t total = 0;
  for (auto c : counts) total += c;
  MNEMO_EXPECTS(total > 0);
  std::uint64_t running = 0;
  for (auto c : counts) {
    running += c;
    out.push_back(static_cast<double>(running) / static_cast<double>(total));
  }
  return out;
}

}  // namespace mnemo::stats
