#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace mnemo::stats {

/// Welford online accumulator for mean/variance without storing samples.
/// Used by the sensitivity engine to aggregate per-request service times.
class Welford {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Merge another accumulator (parallel reduction), Chan et al. update.
  void merge(const Welford& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact quantile of a sample using linear interpolation between order
/// statistics (type-7, the numpy/R default). q in [0, 1]. The input span is
/// copied; use percentile_sorted to avoid the copy.
double percentile(std::span<const double> xs, double q);

/// Same, but `sorted` must already be ascending.
double percentile_sorted(std::span<const double> sorted, double q);

double mean(std::span<const double> xs);
double median(std::span<const double> xs);
double stddev(std::span<const double> xs);

/// Five-number summary plus Tukey whiskers/outliers, matching what the
/// paper's Fig 8a boxplots display.
struct BoxplotStats {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
  double whisker_lo = 0.0;  ///< lowest sample >= q1 - 1.5*IQR
  double whisker_hi = 0.0;  ///< highest sample <= q3 + 1.5*IQR
  std::size_t n = 0;
  std::size_t outliers = 0;  ///< samples outside the whiskers
};

BoxplotStats boxplot(std::span<const double> xs);

}  // namespace mnemo::stats
