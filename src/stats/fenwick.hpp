#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace mnemo::stats {

/// Fenwick (binary indexed) tree over doubles: point update, prefix sum,
/// O(log n) each. Backs the byte-granular LRU stack-distance computation
/// in workload characterization.
class FenwickTree {
 public:
  explicit FenwickTree(std::size_t size) : tree_(size + 1, 0.0) {}

  /// Add `delta` at position `i` (0-based, i < size()).
  void add(std::size_t i, double delta) {
    MNEMO_EXPECTS(i < size());
    for (std::size_t j = i + 1; j < tree_.size(); j += j & (~j + 1)) {
      tree_[j] += delta;
    }
  }

  /// Sum of positions [0, i) — i may equal size().
  [[nodiscard]] double prefix_sum(std::size_t i) const {
    MNEMO_EXPECTS(i <= size());
    double sum = 0.0;
    for (std::size_t j = i; j > 0; j -= j & (~j + 1)) {
      sum += tree_[j];
    }
    return sum;
  }

  /// Sum of positions [lo, hi). Requires lo <= hi <= size().
  [[nodiscard]] double range_sum(std::size_t lo, std::size_t hi) const {
    MNEMO_EXPECTS(lo <= hi);
    return prefix_sum(hi) - prefix_sum(lo);
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return tree_.size() - 1;
  }

 private:
  std::vector<double> tree_;
};

}  // namespace mnemo::stats
