#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/sensitivity_engine.hpp"
#include "hybridmem/placement.hpp"
#include "workload/trace.hpp"

namespace mnemo::core {

/// One cell of a measurement grid: execute `placement` once with the
/// engine's seed shifted by `repeat` (exactly what run_once does).
struct CampaignCell {
  hybridmem::Placement placement;
  int repeat = 0;
};

/// Timing/occupancy accounting of a measurement campaign. All numbers are
/// real wall-clock of the *tool itself* (like Table IV), never the
/// simulated clock, so they are safe to print without perturbing results.
struct CampaignStats {
  std::size_t cells = 0;    ///< simulation runs fanned out
  std::size_t threads = 0;  ///< workers the fan-out used
  double wall_s = 0.0;      ///< end-to-end wall time of the campaign
  double cpu_s = 0.0;       ///< sum of per-cell wall times
  double cell_p50_s = 0.0;  ///< median cell duration
  double cell_p95_s = 0.0;  ///< p95 cell duration

  /// cpu / wall: average number of cells in flight — the wall-clock
  /// speedup over running the same cells serially.
  [[nodiscard]] double speedup() const;

  /// speedup / threads: fraction of the worker pool kept busy.
  [[nodiscard]] double occupancy() const;

  /// Merge another campaign's accounting (wall times add: campaigns in
  /// one process run back to back, not concurrently).
  void merge(const CampaignStats& other);

  /// Render as a util::table (one metric per row).
  [[nodiscard]] std::string render(const std::string& title) const;
};

/// The campaign runner: takes a set of (placement, repeat) cells and fans
/// them out across a util::ThreadPool as shared-nothing simulation tasks.
/// Each cell builds its own deployment and seed-shifted RNG inside
/// SensitivityEngine::run_once, and results are merged in the fixed cell
/// order — so aggregates are bit-identical to the serial path at any
/// thread count. Every sweep-shaped feature (baselines, validation
/// sweeps, sharding) should go through here rather than hand-rolling a
/// parallel_for over measurements.
class CampaignRunner {
 public:
  /// `threads` = 0 picks hardware concurrency; the pool never exceeds the
  /// cell count.
  explicit CampaignRunner(std::size_t threads = 0);

  /// Execute every cell and return one measurement per cell, in cell
  /// order regardless of scheduling.
  [[nodiscard]] std::vector<RunMeasurement> run(
      const SensitivityEngine& engine, const workload::Trace& trace,
      const std::vector<CampaignCell>& cells);

  /// The {placement × repeat} grid behind measure()/baselines(): each
  /// placement runs engine.config().repeats times (repeat-major within a
  /// placement) and the repeats are averaged. Returns one merged
  /// measurement per placement, in placement order.
  [[nodiscard]] std::vector<RunMeasurement> measure_grid(
      const SensitivityEngine& engine, const workload::Trace& trace,
      const std::vector<hybridmem::Placement>& placements);

  [[nodiscard]] std::size_t threads() const noexcept { return threads_; }

  /// Accounting of the most recent run()/measure_grid() on this runner.
  [[nodiscard]] const CampaignStats& stats() const noexcept { return stats_; }

 private:
  std::size_t threads_;
  CampaignStats stats_;
};

/// Process-wide aggregate over every campaign run so far (thread-safe);
/// what the CLI's --stats and the bench footers print.
[[nodiscard]] CampaignStats campaign_totals();
void reset_campaign_totals();

}  // namespace mnemo::core
