#pragma once

#include <algorithm>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/lane_band.hpp"
#include "core/sensitivity_engine.hpp"
#include "faultinject/fault_plan.hpp"
#include "hybridmem/placement.hpp"
#include "util/cancel.hpp"
#include "util/status.hpp"
#include "util/task_scheduler.hpp"
#include "workload/trace.hpp"

namespace mnemo::core {

/// One cell of a measurement grid: execute `placement` once with the
/// engine's seed shifted by `repeat` (exactly what run_once does).
struct CampaignCell {
  hybridmem::Placement placement;
  int repeat = 0;
};

/// How the runner replays each cell (DESIGN.md §12, §14). kFused — the
/// default — partitions the cell vector into bands of lane_width()
/// consecutive cells and replays each band with core::LaneBand: one pass
/// over the shared CompiledTrace advances every lane's independent state
/// machine, amortizing the op-stream decode and hint loads across lanes.
/// kCompiled replays the same CompiledTrace one cell at a time (the PR 8
/// per-cell baseline and the fused path's pairwise oracle). kLegacy
/// replays the raw Trace per cell on the heap. All three produce
/// bit-identical measurements — the slower modes exist as equivalence
/// oracles for tests and as the "before" arms of bench_campaign.
enum class ReplayMode : std::uint8_t {
  kFused = 0,
  kCompiled = 1,
  kLegacy = 2,
};

/// Ledger entry for a campaign cell quarantined by the fault-injection
/// campaign: the cell either errored out (typed error preserved) or its
/// measurement absorbed fault events — meaning it is *not* bit-identical
/// to the fault-free platform — on both the first run and the one retry.
struct CellFailure {
  std::size_t cell = 0;       ///< index into the campaign's cell vector
  std::size_t fast_keys = 0;  ///< identifies the placement of the cell
  int repeat = 0;             ///< seed shift of the cell
  int attempts = 0;           ///< runs consumed (first try + retries)
  util::Error error;          ///< why the final attempt was rejected
  faultinject::FaultStats faults;  ///< events the final attempt absorbed

  [[nodiscard]] bool operator==(const CellFailure&) const = default;
};

/// Outcome of a checked (fault-aware) campaign: one slot per cell, where a
/// quarantined cell is nullopt and described in `failures` instead. Every
/// populated measurement is bit-identical to the fault-free campaign's —
/// that is the acceptance rule, not a best effort (see run_checked).
struct CampaignResult {
  std::vector<std::optional<RunMeasurement>> measurements;  ///< cell order
  std::vector<CellFailure> failures;                        ///< cell order

  [[nodiscard]] bool partial() const noexcept { return !failures.empty(); }
};

/// Render the quarantine ledger as a util::table (one row per cell).
[[nodiscard]] std::string render_failure_ledger(
    const std::vector<CellFailure>& failures);

/// Timing/occupancy accounting of a measurement campaign. All numbers are
/// real wall-clock of the *tool itself* (like Table IV), never the
/// simulated clock, so they are safe to print without perturbing results.
struct CampaignStats {
  std::size_t cells = 0;    ///< simulation runs fanned out
  std::size_t threads = 0;  ///< workers the fan-out used
  double wall_s = 0.0;      ///< end-to-end wall time of the campaign
  double cpu_s = 0.0;       ///< sum of per-cell wall times
  double cell_p50_s = 0.0;  ///< median cell duration
  double cell_p95_s = 0.0;  ///< p95 cell duration
  /// Lanes per fused band this campaign replayed with (1 = per-cell
  /// replay, i.e. ReplayMode::kCompiled/kLegacy). Max-merged: the widest
  /// band any merged campaign used.
  std::size_t lane_width = 0;
  /// High-water mark of any single cell arena's bytes_allocated() across
  /// the campaign — the grow-once footprint one lane of replay needs.
  /// Max-merged; 0 when no arena was used (kLegacy).
  std::size_t arena_peak_bytes = 0;

  /// cpu / wall: average number of cells in flight — the wall-clock
  /// speedup over running the same cells serially.
  [[nodiscard]] double speedup() const;

  /// speedup / threads: fraction of the worker pool kept busy.
  [[nodiscard]] double occupancy() const;

  /// Merge another campaign's accounting (wall times add: campaigns in
  /// one process run back to back, not concurrently).
  void merge(const CampaignStats& other);

  /// Render as a util::table (one metric per row).
  [[nodiscard]] std::string render(const std::string& title) const;
};

/// The campaign runner: takes a set of (placement, repeat) cells and
/// submits them to a util::TaskScheduler as shared-nothing cell tasks.
/// Each cell builds its own deployment and seed-shifted RNG inside
/// SensitivityEngine::run_once, and results are merged in the fixed cell
/// order — so aggregates are bit-identical to the serial path at any
/// thread count. Every sweep-shaped feature (baselines, validation
/// sweeps, sharding) should go through here rather than hand-rolling a
/// parallel_for over measurements.
class CampaignRunner {
 public:
  /// `threads` = 0 picks hardware concurrency; the fan-out never exceeds
  /// the cell count. `cancel` (optional, not owned, must outlive the
  /// runner's calls) makes every run a cooperative cancellation point: the
  /// token is checked *between* cells — a cell that has started always
  /// finishes, so the cells that did complete are bit-identical to an
  /// uncanceled campaign — and a canceled run throws util::CanceledError
  /// instead of returning, so partial grids can never flow into caches or
  /// artifacts.
  ///
  /// When `scheduler` is set the runner owns no workers at all: cells run
  /// as tasks of `group` (or of a transient group when `group` is null) on
  /// the shared scheduler, interleaved with every other campaign's cells
  /// under its fairness policy, while the calling thread cooperatively
  /// helps. Without a scheduler the runner spins up a transient one sized
  /// by `threads` (a plain serial loop when that is 1).
  explicit CampaignRunner(std::size_t threads = 0,
                          const util::CancelToken* cancel = nullptr,
                          util::TaskScheduler* scheduler = nullptr,
                          util::TaskScheduler::Group* group = nullptr);

  /// Execute every cell and return one measurement per cell, in cell
  /// order regardless of scheduling.
  [[nodiscard]] std::vector<RunMeasurement> run(
      const SensitivityEngine& engine, const workload::Trace& trace,
      const std::vector<CampaignCell>& cells);

  /// Fault-aware variant for engines with a nonempty fault plan. A cell is
  /// accepted only when its run succeeds AND absorbed zero fault events —
  /// the condition under which it is bit-identical to the fault-free
  /// campaign. A rejected cell is retried exactly once with an
  /// attempt-shifted fault stream (the workload seed never changes), then
  /// quarantined into the failure ledger while the remaining cells
  /// complete. With an empty plan this degenerates to run(): every cell
  /// accepted on the first attempt. Deterministic at any thread count.
  [[nodiscard]] CampaignResult run_checked(
      const SensitivityEngine& engine, const workload::Trace& trace,
      const std::vector<CampaignCell>& cells);

  /// Checked counterpart of measure_grid: each placement's repeats are
  /// averaged only if *every* repeat was accepted — a partial average
  /// would not be bit-identical to the fault-free grid, so one quarantined
  /// repeat quarantines the whole placement (nullopt slot). The failure
  /// ledger indexes cells of the underlying repeat-major grid.
  [[nodiscard]] CampaignResult measure_grid_checked(
      const SensitivityEngine& engine, const workload::Trace& trace,
      const std::vector<hybridmem::Placement>& placements);

  /// The {placement × repeat} grid behind measure()/baselines(): each
  /// placement runs engine.config().repeats times (repeat-major within a
  /// placement) and the repeats are averaged. Returns one merged
  /// measurement per placement, in placement order.
  [[nodiscard]] std::vector<RunMeasurement> measure_grid(
      const SensitivityEngine& engine, const workload::Trace& trace,
      const std::vector<hybridmem::Placement>& placements);

  /// What measure_grid_checked_async hands its continuation: either the
  /// merged grid + accounting, or the exception the synchronous path
  /// would have thrown (util::CanceledError for canceled campaigns),
  /// preserved as-is so callers keep one error-mapping path.
  struct AsyncOutcome {
    std::exception_ptr error;  ///< null on success
    CampaignResult grid;       ///< one slot per placement (merged repeats)
    CampaignStats stats;
  };

  /// Continuation-based counterpart of measure_grid_checked for the serve
  /// scheduler: submits every cell of the {placement × repeat} grid to
  /// `group` and returns immediately — no thread blocks on the campaign.
  /// After the last cell settles, the merge runs as a kRequest task of
  /// the same group and invokes `done` exactly once with the outcome
  /// (bit-identical to what measure_grid_checked would have returned).
  /// `engine` is kept alive by the in-flight cells; `trace` must outlive
  /// `done`. `cancel` follows the same between-cells contract as the
  /// synchronous path.
  static void measure_grid_checked_async(
      std::shared_ptr<const SensitivityEngine> engine,
      const workload::Trace& trace,
      std::vector<hybridmem::Placement> placements,
      const util::CancelToken* cancel,
      std::shared_ptr<util::TaskScheduler::Group> group,
      std::function<void(AsyncOutcome)> done);

  [[nodiscard]] std::size_t threads() const noexcept { return threads_; }

  /// Replay strategy for subsequent run()/measure_grid() calls; results
  /// are bit-identical either way (see ReplayMode).
  void set_replay_mode(ReplayMode mode) noexcept { mode_ = mode; }
  [[nodiscard]] ReplayMode replay_mode() const noexcept { return mode_; }

  /// Lanes per fused band under ReplayMode::kFused, clamped to
  /// [1, LaneBand::kMaxLanes]; width 1 replays the same schedule one cell
  /// per band. The band partition depends only on the cell count and this
  /// width — never on the thread count — so grids stay bit-identical at
  /// any `threads`, and fixed lane widths stay comparable across runs.
  void set_lane_width(std::size_t width) noexcept {
    lane_width_ = std::clamp<std::size_t>(width, 1, LaneBand::kMaxLanes);
  }
  [[nodiscard]] std::size_t lane_width() const noexcept { return lane_width_; }

  /// Accounting of the most recent run()/measure_grid() on this runner.
  [[nodiscard]] const CampaignStats& stats() const noexcept { return stats_; }

 private:
  /// Throws util::CanceledError when the token says stop. Called after
  /// the fan-out returns on the coordinating thread, so the throw never
  /// crosses the scheduler.
  void throw_if_canceled() const;

  /// Run fn(0..n) to completion: on the injected scheduler group when one
  /// was provided, else on a transient scheduler (serial loop at 1).
  void fan_out(std::size_t n, const std::function<void(std::size_t)>& fn);

  std::size_t threads_;
  const util::CancelToken* cancel_;
  util::TaskScheduler* scheduler_;
  util::TaskScheduler::Group* group_;
  ReplayMode mode_ = ReplayMode::kFused;
  std::size_t lane_width_ = LaneBand::kDefaultLanes;
  CampaignStats stats_;
};

/// Process-wide aggregate over every campaign run so far (thread-safe);
/// what the CLI's --stats and the bench footers print.
[[nodiscard]] CampaignStats campaign_totals();
void reset_campaign_totals();

}  // namespace mnemo::core
