#pragma once

#include <cstdint>

#include "core/baselines.hpp"
#include "hybridmem/emulation_profile.hpp"
#include "hybridmem/placement.hpp"
#include "kvstore/kvstore.hpp"
#include "kvstore/service_profile.hpp"
#include "workload/trace.hpp"

namespace mnemo::core {

/// Configuration of a measurement campaign: which store architecture, on
/// which emulated platform, how many repeated runs per configuration.
struct SensitivityConfig {
  kvstore::StoreKind store = kvstore::StoreKind::kVermilion;
  hybridmem::EmulationProfile platform;  ///< default: paper testbed
  kvstore::PayloadMode payload_mode = kvstore::PayloadMode::kSynthetic;
  int repeats = 3;       ///< paper: "mean of multiple experiment runs"
  std::uint64_t seed = 0xbea5;

  SensitivityConfig();
};

/// The paper's Sensitivity Engine: a customized YCSB client that executes
/// the actual workload against the dual-server deployment and extracts
/// client-side performance — total runtime, throughput, average read and
/// write response times, and tail latencies. Runs the two extreme
/// placements to establish the baselines that bound the estimation curve,
/// and arbitrary placements for validation sweeps.
class SensitivityEngine {
 public:
  explicit SensitivityEngine(SensitivityConfig config);

  /// Execute the trace once against a fresh deployment with the given
  /// placement (seed-shifted by `repeat`), returning the client view.
  [[nodiscard]] RunMeasurement run_once(
      const workload::Trace& trace, const hybridmem::Placement& placement,
      int repeat = 0) const;

  /// Mean of `repeats` runs for one placement.
  [[nodiscard]] RunMeasurement measure(
      const workload::Trace& trace,
      const hybridmem::Placement& placement) const;

  /// The two extreme configurations: all-FastMem and all-SlowMem.
  [[nodiscard]] PerfBaselines baselines(const workload::Trace& trace) const;

  [[nodiscard]] const SensitivityConfig& config() const noexcept {
    return config_;
  }

 private:
  /// Node capacity big enough for the dataset plus engine overhead so
  /// either extreme placement fits on one node.
  [[nodiscard]] hybridmem::EmulationProfile sized_platform(
      const workload::Trace& trace) const;

  SensitivityConfig config_;
};

}  // namespace mnemo::core
