#pragma once

#include <cstdint>

#include "core/baselines.hpp"
#include "faultinject/fault_plan.hpp"
#include "hybridmem/emulation_profile.hpp"
#include "hybridmem/placement.hpp"
#include "kvstore/kvstore.hpp"
#include "kvstore/service_profile.hpp"
#include "util/cancel.hpp"
#include "util/status.hpp"
#include "util/task_scheduler.hpp"
#include "workload/trace.hpp"

namespace mnemo::util {
class Arena;
}

namespace mnemo::workload {
class CompiledTrace;
}

namespace mnemo::core {

/// Configuration of a measurement campaign: which store architecture, on
/// which emulated platform, how many repeated runs per configuration.
struct SensitivityConfig {
  kvstore::StoreKind store = kvstore::StoreKind::kVermilion;
  hybridmem::EmulationProfile platform;  ///< default: paper testbed
  kvstore::PayloadMode payload_mode = kvstore::PayloadMode::kSynthetic;
  int repeats = 3;       ///< paper: "mean of multiple experiment runs"
  std::uint64_t seed = 0xbea5;
  /// Worker threads for the {placement × repeat} measurement campaigns
  /// behind measure()/baselines(); 0 = hardware concurrency, 1 = serial.
  /// Results are bit-identical at any thread count (see core/campaign).
  std::size_t threads = 0;
  /// Deterministic fault plan armed on every deployment the engine builds
  /// (DESIGN.md §7). Empty = healthy platform; the default.
  faultinject::FaultPlan faults;
  /// Optional cooperative cancellation for the campaigns the engine fans
  /// out (not owned; must outlive the engine's calls). Checked between
  /// campaign cells; never hashed into cache keys — a request's deadline
  /// does not change what the answer *is*, only whether it finishes.
  const util::CancelToken* cancel = nullptr;
  /// Optional shared executor for the campaigns (not owned; must outlive
  /// the engine's calls). When set, cells run as tasks of `group` (or of
  /// a transient group) instead of on a private pool — the serve layer
  /// threads its global scheduler through here so every request's cells
  /// interleave under one fairness policy. Never changes results.
  util::TaskScheduler* scheduler = nullptr;
  util::TaskScheduler::Group* group = nullptr;

  SensitivityConfig();
};

/// The paper's Sensitivity Engine: a customized YCSB client that executes
/// the actual workload against the dual-server deployment and extracts
/// client-side performance — total runtime, throughput, average read and
/// write response times, and tail latencies. Runs the two extreme
/// placements to establish the baselines that bound the estimation curve,
/// and arbitrary placements for validation sweeps.
class SensitivityEngine {
 public:
  explicit SensitivityEngine(SensitivityConfig config);

  /// Execute the trace once against a fresh deployment with the given
  /// placement (seed-shifted by `repeat`), returning the client view.
  /// Asserting wrapper over try_run_once for healthy-platform callers.
  [[nodiscard]] RunMeasurement run_once(
      const workload::Trace& trace, const hybridmem::Placement& placement,
      int repeat = 0) const;

  /// Fault-aware variant: arms config().faults on the deployment (fault
  /// stream derived from repeat and `attempt`, store seeds untouched — a
  /// retry redraws the fault sequence, never the workload service noise)
  /// and returns a typed error instead of aborting when the run fails.
  /// The measurement's `faults` counters report every event absorbed.
  [[nodiscard]] util::Result<RunMeasurement> try_run_once(
      const workload::Trace& trace, const hybridmem::Placement& placement,
      int repeat = 0, int attempt = 0) const;

  /// Compiled-campaign variants (DESIGN.md §12): replay a CompiledTrace,
  /// passing each request's precomputed hash/digest through to the stores
  /// and (optionally) backing every per-cell allocation — platform tables,
  /// store slot pools, latency vectors — with `arena`. Results are
  /// bit-identical to the Trace overloads; the arena is an allocation
  /// strategy, never a behaviour change. The caller owns the arena's
  /// reset cycle (reset between cells, after the cell's state is gone).
  [[nodiscard]] RunMeasurement run_once(
      const workload::CompiledTrace& compiled,
      const hybridmem::Placement& placement, int repeat = 0,
      util::Arena* arena = nullptr) const;

  [[nodiscard]] util::Result<RunMeasurement> try_run_once(
      const workload::CompiledTrace& compiled,
      const hybridmem::Placement& placement, int repeat = 0, int attempt = 0,
      util::Arena* arena = nullptr) const;

  /// Mean of `repeats` runs for one placement, fanned out as a
  /// measurement campaign over config().threads workers.
  [[nodiscard]] RunMeasurement measure(
      const workload::Trace& trace,
      const hybridmem::Placement& placement) const;

  /// The two extreme configurations: all-FastMem and all-SlowMem, run as
  /// one 2×repeats campaign so both baselines measure concurrently.
  [[nodiscard]] PerfBaselines baselines(const workload::Trace& trace) const;

  [[nodiscard]] const SensitivityConfig& config() const noexcept {
    return config_;
  }

 private:
  /// Node capacity big enough for the dataset plus engine overhead so
  /// either extreme placement fits on one node.
  [[nodiscard]] hybridmem::EmulationProfile sized_platform(
      std::uint64_t dataset_bytes) const;

  /// The lane-fused executor (core/lane_band) replays K cells per trace
  /// pass; it builds each lane's deployment exactly like try_run_once, so
  /// it needs the same platform-sizing internals.
  friend class LaneBand;

  SensitivityConfig config_;
};

}  // namespace mnemo::core
