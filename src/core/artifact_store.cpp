#include "core/artifact_store.hpp"

#include <filesystem>
#include <utility>

#include "util/assert.hpp"
#include "util/hash.hpp"
#include "util/logging.hpp"

namespace mnemo::core {

namespace {

constexpr std::string_view kMagic = "MNA1";

/// True iff `raw` is a complete, checksum-valid artifact frame for
/// (schema, version); *payload receives its payload bytes. Used by the
/// concurrent-writer assertion in save_payload — deliberately quiet (no
/// events, no logging), unlike load_payload's classifying path.
bool decode_valid_frame(const std::string& raw, std::string_view schema,
                        std::uint32_t version, std::string* payload) {
  if (raw.size() < kMagic.size() ||
      std::string_view(raw).substr(0, kMagic.size()) != kMagic) {
    return false;
  }
  try {
    util::BinReader r(std::string_view(raw).substr(kMagic.size()));
    if (r.str() != schema) return false;
    if (r.u32() != version) return false;
    std::string body = r.str();
    const std::uint64_t lo = r.u64();
    const std::uint64_t hi = r.u64();
    if (!r.exhausted()) return false;
    util::StableHasher h;
    h.bytes(body.data(), body.size());
    if (h.lo() != lo || h.hi() != hi) return false;
    *payload = std::move(body);
    return true;
  } catch (const util::ArtifactError&) {
    return false;
  }
}

}  // namespace

std::string_view to_string(CacheMiss miss) {
  switch (miss) {
    case CacheMiss::kNone:
      return "none";
    case CacheMiss::kDisabled:
      return "cache disabled";
    case CacheMiss::kAbsent:
      return "absent";
    case CacheMiss::kBadMagic:
      return "bad magic";
    case CacheMiss::kSchemaMismatch:
      return "schema mismatch";
    case CacheMiss::kVersionMismatch:
      return "version mismatch";
    case CacheMiss::kTruncated:
      return "truncated";
    case CacheMiss::kChecksumMismatch:
      return "checksum mismatch";
    case CacheMiss::kCorrupt:
      return "corrupt payload";
  }
  return "?";
}

ArtifactStore::ArtifactStore(std::string dir) : dir_(std::move(dir)) {}

std::string ArtifactStore::path_for(std::string_view stage,
                                    std::string_view key) const {
  std::string path = dir_;
  if (!path.empty() && path.back() != '/') path += '/';
  path += stage;
  path += '-';
  path += key;
  path += ".mna";
  return path;
}

std::optional<std::string> ArtifactStore::load_payload(
    std::string_view stage, std::string_view schema, std::uint32_t version,
    std::string_view key, CacheMiss* why) {
  const auto miss = [&](CacheMiss m, std::string detail) {
    if (why != nullptr) *why = m;
    if (m == CacheMiss::kDisabled || m == CacheMiss::kAbsent) {
      record_miss(stage, key, m, std::move(detail));
    } else {
      reject(stage, key, m, std::move(detail));
    }
    return std::nullopt;
  };

  if (!enabled()) return miss(CacheMiss::kDisabled, "");
  std::string raw;
  if (!util::read_file(path_for(stage, key), &raw)) {
    return miss(CacheMiss::kAbsent, "");
  }
  if (raw.size() < kMagic.size() ||
      std::string_view(raw).substr(0, kMagic.size()) != kMagic) {
    return miss(CacheMiss::kBadMagic, "not an artifact file");
  }

  try {
    util::BinReader r(std::string_view(raw).substr(kMagic.size()));
    const std::string file_schema = r.str();
    if (file_schema != schema) {
      return miss(CacheMiss::kSchemaMismatch,
                  "holds '" + file_schema + "'");
    }
    const std::uint32_t file_version = r.u32();
    if (file_version != version) {
      return miss(CacheMiss::kVersionMismatch,
                  "v" + std::to_string(file_version) + " != v" +
                      std::to_string(version));
    }
    std::string payload = r.str();
    const std::uint64_t lo = r.u64();
    const std::uint64_t hi = r.u64();
    util::StableHasher h;
    h.bytes(payload.data(), payload.size());
    if (h.lo() != lo || h.hi() != hi) {
      return miss(CacheMiss::kChecksumMismatch, "payload digest differs");
    }
    if (why != nullptr) *why = CacheMiss::kNone;
    return payload;
  } catch (const util::ArtifactError& e) {
    return miss(CacheMiss::kTruncated, e.what());
  }
}

util::Status ArtifactStore::save_payload(std::string_view stage,
                                         std::string_view schema,
                                         std::uint32_t version,
                                         std::string_view key,
                                         std::string_view payload) {
  if (!enabled()) return {};

  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    util::Error err;
    err.code = util::ErrorCode::kInvalidArgument;
    err.message = "cannot create cache dir " + dir_ + ": " + ec.message();
    MNEMO_LOG_WARN("artifact store: %s", err.message.c_str());
    return err;
  }

  util::StableHasher h;
  h.bytes(payload.data(), payload.size());

  util::BinWriter w;
  w.str(schema);
  w.u32(version);
  w.str(payload);
  w.u64(h.lo());
  w.u64(h.hi());

  std::string file(kMagic);
  file += w.buffer();

  // Concurrent sessions may race to fill the same key. The store is
  // content-addressed, so every writer of a key must be carrying the same
  // bytes: if a valid artifact is already in place we can skip the write
  // outright (last-writer-wins degenerates to first-writer-wins), and a
  // valid incumbent whose payload differs is a broken key function — an
  // invariant violation, not a recoverable condition. An *invalid*
  // incumbent (truncated, foreign, corrupted) is simply overwritten.
  const std::string path = path_for(stage, key);
  std::string existing;
  if (util::read_file(path, &existing)) {
    if (existing == file) return {};
    std::string existing_payload;
    if (decode_valid_frame(existing, schema, version, &existing_payload)) {
      // Framing is deterministic, so a valid incumbent with different
      // bytes can only mean a different payload under the same key.
      MNEMO_ASSERT(existing_payload == payload &&
                   "two writers of one content-addressed key disagreed");
      return {};
    }
  }
  util::Status status = util::write_file_atomic(path, file);
  if (!status.ok()) {
    MNEMO_LOG_WARN("artifact store: %s", status.error().message.c_str());
  }
  return status;
}

void ArtifactStore::record_hit(std::string_view stage, std::string_view key) {
  std::lock_guard lock(mu_);
  events_.push_back(StoreEvent{std::string(stage), std::string(key), true,
                               CacheMiss::kNone, ""});
}

void ArtifactStore::record_miss(std::string_view stage, std::string_view key,
                                CacheMiss why, std::string detail) {
  std::lock_guard lock(mu_);
  events_.push_back(StoreEvent{std::string(stage), std::string(key), false,
                               why, std::move(detail)});
}

void ArtifactStore::reject(std::string_view stage, std::string_view key,
                           CacheMiss why, std::string detail) {
  MNEMO_LOG_WARN("artifact store: rejecting %s (%s: %s) -> cache miss",
                 path_for(stage, key).c_str(),
                 std::string(to_string(why)).c_str(), detail.c_str());
  record_miss(stage, key, why, std::move(detail));
}

}  // namespace mnemo::core
