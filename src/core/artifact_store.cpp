#include "core/artifact_store.hpp"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <set>
#include <sstream>
#include <utility>

#include "util/assert.hpp"
#include "util/hash.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

namespace mnemo::core {

namespace {

constexpr std::string_view kMagic = "MNA1";
constexpr std::string_view kJournalName = "journal.mnj";
constexpr std::string_view kQuarantineDir = "quarantine";

/// True iff `raw` is a complete, checksum-valid artifact frame for
/// (schema, version); *payload receives its payload bytes. Used by the
/// concurrent-writer assertion in save_payload — deliberately quiet (no
/// events, no logging), unlike load_payload's classifying path.
bool decode_valid_frame(const std::string& raw, std::string_view schema,
                        std::uint32_t version, std::string* payload) {
  if (raw.size() < kMagic.size() ||
      std::string_view(raw).substr(0, kMagic.size()) != kMagic) {
    return false;
  }
  try {
    util::BinReader r(std::string_view(raw).substr(kMagic.size()));
    if (r.str() != schema) return false;
    if (r.u32() != version) return false;
    std::string body = r.str();
    const std::uint64_t lo = r.u64();
    const std::uint64_t hi = r.u64();
    if (!r.exhausted()) return false;
    util::StableHasher h;
    h.bytes(body.data(), body.size());
    if (h.lo() != lo || h.hi() != hi) return false;
    *payload = std::move(body);
    return true;
  } catch (const util::ArtifactError&) {
    return false;
  }
}

/// Generic (schema-agnostic) frame validation for fsck: any stage's
/// artifact passes as long as magic, framing and checksum hold. Returns
/// true when healthy; otherwise sets *problem / *detail.
bool validate_generic_frame(const std::string& raw, FsckProblem* problem,
                            std::string* detail) {
  if (raw.size() < kMagic.size() ||
      std::string_view(raw).substr(0, kMagic.size()) != kMagic) {
    *problem = FsckProblem::kBadMagic;
    *detail = "not an artifact file";
    return false;
  }
  try {
    util::BinReader r(std::string_view(raw).substr(kMagic.size()));
    (void)r.str();  // schema: any
    (void)r.u32();  // version: any
    const std::string payload = r.str();
    const std::uint64_t lo = r.u64();
    const std::uint64_t hi = r.u64();
    if (!r.exhausted()) {
      *problem = FsckProblem::kTrailingBytes;
      *detail = std::to_string(r.remaining()) + " bytes past the frame";
      return false;
    }
    util::StableHasher h;
    h.bytes(payload.data(), payload.size());
    if (h.lo() != lo || h.hi() != hi) {
      *problem = FsckProblem::kChecksumMismatch;
      *detail = "payload digest differs";
      return false;
    }
  } catch (const util::ArtifactError& e) {
    *problem = FsckProblem::kTruncatedFrame;
    *detail = e.what();
    return false;
  }
  return true;
}

/// Writer pid of a `<name>.tmp.<pid>.<n>` temp file; 0 when the name
/// does not parse (foreign file — left alone, never reaped).
long temp_writer_pid(const std::string& name) {
  const std::size_t mark = name.rfind(".tmp.");
  if (mark == std::string::npos) return 0;
  const char* begin = name.c_str() + mark + 5;
  char* end = nullptr;
  const long pid = std::strtol(begin, &end, 10);
  if (end == begin || pid <= 0 || end == nullptr || *end != '.') return 0;
  return pid;
}

/// True when no process with this pid exists (ESRCH). A pid we cannot
/// probe (EPERM) is conservatively treated as alive.
bool pid_is_dead(long pid) {
  return ::kill(static_cast<pid_t>(pid), 0) != 0 && errno == ESRCH;
}

}  // namespace

std::string_view to_string(CacheMiss miss) {
  switch (miss) {
    case CacheMiss::kNone:
      return "none";
    case CacheMiss::kDisabled:
      return "cache disabled";
    case CacheMiss::kAbsent:
      return "absent";
    case CacheMiss::kBadMagic:
      return "bad magic";
    case CacheMiss::kSchemaMismatch:
      return "schema mismatch";
    case CacheMiss::kVersionMismatch:
      return "version mismatch";
    case CacheMiss::kTruncated:
      return "truncated";
    case CacheMiss::kChecksumMismatch:
      return "checksum mismatch";
    case CacheMiss::kCorrupt:
      return "corrupt payload";
  }
  return "?";
}

std::string_view to_string(FsckProblem problem) {
  switch (problem) {
    case FsckProblem::kBadMagic:
      return "bad magic";
    case FsckProblem::kTruncatedFrame:
      return "truncated frame";
    case FsckProblem::kChecksumMismatch:
      return "checksum mismatch";
    case FsckProblem::kTrailingBytes:
      return "trailing bytes";
    case FsckProblem::kOrphanTemp:
      return "orphaned temp";
    case FsckProblem::kJournalMissing:
      return "journaled, missing";
  }
  return "?";
}

std::string FsckReport::render() const {
  std::ostringstream out;
  out << "fsck: " << scanned << " artifacts scanned, " << healthy
      << " healthy, " << quarantined << " quarantined, " << reaped_temps
      << " temp files reaped\n";
  if (findings.empty()) return out.str();
  util::TablePrinter table({"file", "problem", "action", "detail"});
  for (const FsckFinding& f : findings) {
    const char* action = "reported";
    if (f.repaired) {
      action = f.problem == FsckProblem::kOrphanTemp ? "reaped"
                                                     : "quarantined";
    }
    table.add_row({f.file, std::string(to_string(f.problem)), action,
                   f.detail});
  }
  out << table.render();
  return out.str();
}

ArtifactStore::ArtifactStore(std::string dir) : dir_(std::move(dir)) {}

std::string ArtifactStore::path_for(std::string_view stage,
                                    std::string_view key) const {
  std::string path = dir_;
  if (!path.empty() && path.back() != '/') path += '/';
  path += stage;
  path += '-';
  path += key;
  path += ".mna";
  return path;
}

std::optional<std::string> ArtifactStore::load_payload(
    std::string_view stage, std::string_view schema, std::uint32_t version,
    std::string_view key, CacheMiss* why) {
  const auto miss = [&](CacheMiss m, std::string detail) {
    if (why != nullptr) *why = m;
    if (m == CacheMiss::kDisabled || m == CacheMiss::kAbsent) {
      record_miss(stage, key, m, std::move(detail));
    } else {
      reject(stage, key, m, std::move(detail));
    }
    return std::nullopt;
  };

  if (!enabled()) return miss(CacheMiss::kDisabled, "");
  std::string raw;
  if (!util::read_file(path_for(stage, key), &raw)) {
    return miss(CacheMiss::kAbsent, "");
  }
  if (raw.size() < kMagic.size() ||
      std::string_view(raw).substr(0, kMagic.size()) != kMagic) {
    return miss(CacheMiss::kBadMagic, "not an artifact file");
  }

  try {
    util::BinReader r(std::string_view(raw).substr(kMagic.size()));
    const std::string file_schema = r.str();
    if (file_schema != schema) {
      return miss(CacheMiss::kSchemaMismatch,
                  "holds '" + file_schema + "'");
    }
    const std::uint32_t file_version = r.u32();
    if (file_version != version) {
      return miss(CacheMiss::kVersionMismatch,
                  "v" + std::to_string(file_version) + " != v" +
                      std::to_string(version));
    }
    std::string payload = r.str();
    const std::uint64_t lo = r.u64();
    const std::uint64_t hi = r.u64();
    util::StableHasher h;
    h.bytes(payload.data(), payload.size());
    if (h.lo() != lo || h.hi() != hi) {
      return miss(CacheMiss::kChecksumMismatch, "payload digest differs");
    }
    if (why != nullptr) *why = CacheMiss::kNone;
    return payload;
  } catch (const util::ArtifactError& e) {
    return miss(CacheMiss::kTruncated, e.what());
  }
}

util::Status ArtifactStore::save_payload(std::string_view stage,
                                         std::string_view schema,
                                         std::uint32_t version,
                                         std::string_view key,
                                         std::string_view payload) {
  if (!enabled()) return {};

  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    util::Error err;
    err.code = util::ErrorCode::kInvalidArgument;
    err.message = "cannot create cache dir " + dir_ + ": " + ec.message();
    MNEMO_LOG_WARN("artifact store: %s", err.message.c_str());
    return err;
  }

  util::StableHasher h;
  h.bytes(payload.data(), payload.size());

  util::BinWriter w;
  w.str(schema);
  w.u32(version);
  w.str(payload);
  w.u64(h.lo());
  w.u64(h.hi());

  std::string file(kMagic);
  file += w.buffer();

  // Concurrent sessions may race to fill the same key. The store is
  // content-addressed, so every writer of a key must be carrying the same
  // bytes: if a valid artifact is already in place we can skip the write
  // outright (last-writer-wins degenerates to first-writer-wins), and a
  // valid incumbent whose payload differs is a broken key function — an
  // invariant violation, not a recoverable condition. An *invalid*
  // incumbent (truncated, foreign, corrupted) is simply overwritten.
  const std::string path = path_for(stage, key);
  std::string existing;
  if (util::read_file(path, &existing)) {
    if (existing == file) return {};
    std::string existing_payload;
    if (decode_valid_frame(existing, schema, version, &existing_payload)) {
      // Framing is deterministic, so a valid incumbent with different
      // bytes can only mean a different payload under the same key.
      MNEMO_ASSERT(existing_payload == payload &&
                   "two writers of one content-addressed key disagreed");
      return {};
    }
  }
  util::Status status = util::write_file_atomic(path, file);
  if (!status.ok()) {
    MNEMO_LOG_WARN("artifact store: %s", status.error().message.c_str());
    return status;
  }

  // Advisory write journal: one O_APPEND record per committed artifact,
  // written *after* the rename so a journaled file was durable at commit
  // time. fsck reads it to report journaled-but-missing artifacts; it
  // never condemns unjournaled files (pre-journal caches are legitimate),
  // so a lost or torn journal line costs a report, never an answer.
  util::StableHasher fh;
  fh.bytes(file.data(), file.size());
  std::string base(stage);
  base += '-';
  base += key;
  base += ".mna";
  std::ostringstream rec;
  rec << "commit " << base << ' ' << file.size() << ' ' << fh.lo() << ' '
      << fh.hi() << '\n';
  std::string journal = dir_;
  if (!journal.empty() && journal.back() != '/') journal += '/';
  journal += kJournalName;
  (void)util::append_file(journal, rec.str());  // best-effort, advisory
  return status;
}

FsckReport ArtifactStore::fsck(bool repair) {
  FsckReport report;
  if (!enabled()) return report;
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path root(dir_);
  if (!fs::is_directory(root, ec)) return report;

  // Deterministic scan order: findings sort by filename no matter how the
  // directory iterator enumerates.
  std::vector<std::string> artifacts;
  std::vector<std::string> temps;
  for (const fs::directory_entry& entry : fs::directory_iterator(root, ec)) {
    std::error_code file_ec;
    if (!entry.is_regular_file(file_ec)) continue;
    const std::string name = entry.path().filename().string();
    if (name == kJournalName) continue;
    if (name.find(".tmp.") != std::string::npos) {
      temps.push_back(name);
    } else if (name.size() > 4 && name.ends_with(".mna")) {
      artifacts.push_back(name);
    }
  }
  std::sort(artifacts.begin(), artifacts.end());
  std::sort(temps.begin(), temps.end());

  const fs::path qdir = root / kQuarantineDir;
  const auto quarantine = [&](const std::string& name, FsckProblem problem,
                              std::string detail) {
    FsckFinding finding;
    finding.file = name;
    finding.problem = problem;
    finding.detail = std::move(detail);
    if (repair) {
      std::error_code qec;
      fs::create_directories(qdir, qec);
      fs::rename(root / name, qdir / name, qec);
      if (!qec) {
        finding.repaired = true;
        ++report.quarantined;
        (void)util::append_file(
            (qdir / "ledger.log").string(),
            name + " " + std::string(to_string(problem)) + " " +
                finding.detail + "\n");
      }
    }
    report.findings.push_back(std::move(finding));
  };

  for (const std::string& name : artifacts) {
    ++report.scanned;
    std::string raw;
    if (!util::read_file((root / name).string(), &raw)) continue;
    FsckProblem problem = FsckProblem::kBadMagic;
    std::string detail;
    if (validate_generic_frame(raw, &problem, &detail)) {
      ++report.healthy;
    } else {
      quarantine(name, problem, detail);
    }
  }

  // Crash litter: a temp file whose writer pid no longer exists can never
  // be renamed into place — reap it. A live pid's temp is an in-flight
  // write and is left strictly alone.
  for (const std::string& name : temps) {
    const long pid = temp_writer_pid(name);
    if (pid == 0 || !pid_is_dead(pid)) continue;
    FsckFinding finding;
    finding.file = name;
    finding.problem = FsckProblem::kOrphanTemp;
    finding.detail = "writer pid " + std::to_string(pid) + " is dead";
    if (repair) {
      std::error_code rec_;
      if (fs::remove(root / name, rec_)) {
        finding.repaired = true;
        ++report.reaped_temps;
      }
    }
    report.findings.push_back(std::move(finding));
  }

  // Journal reconciliation (advisory). A committed file that has since
  // vanished — without this pass having quarantined it — is worth a
  // report: something outside the store deleted cache state.
  std::string journal_raw;
  std::string journal_path = (root / kJournalName).string();
  if (util::read_file(journal_path, &journal_raw)) {
    std::set<std::string> present(artifacts.begin(), artifacts.end());
    // A file quarantined (this pass or a previous one) is accounted for,
    // not "missing": its absence has already been reported once.
    std::error_code qec;
    for (const fs::directory_entry& entry :
         fs::directory_iterator(qdir, qec)) {
      std::error_code file_ec;
      if (!entry.is_regular_file(file_ec)) continue;
      present.insert(entry.path().filename().string());
    }
    std::set<std::string> reported;
    std::istringstream lines(journal_raw);
    std::string line;
    while (std::getline(lines, line)) {
      // A torn final record (crash mid-append) has no terminating
      // newline; getline yields it last with lines.eof() — skip it.
      if (lines.eof() && !journal_raw.empty() &&
          journal_raw.back() != '\n') {
        break;
      }
      std::istringstream fields(line);
      std::string verb;
      std::string file;
      if (!(fields >> verb >> file) || verb != "commit") continue;
      if (present.contains(file) || !reported.insert(file).second) continue;
      FsckFinding finding;
      finding.file = file;
      finding.problem = FsckProblem::kJournalMissing;
      finding.detail = "journaled commit, file absent";
      report.findings.push_back(std::move(finding));
    }
  }

  std::sort(report.findings.begin(), report.findings.end(),
            [](const FsckFinding& a, const FsckFinding& b) {
              return a.file < b.file;
            });
  return report;
}

void ArtifactStore::record_hit(std::string_view stage, std::string_view key) {
  std::lock_guard lock(mu_);
  events_.push_back(StoreEvent{std::string(stage), std::string(key), true,
                               CacheMiss::kNone, ""});
}

void ArtifactStore::record_miss(std::string_view stage, std::string_view key,
                                CacheMiss why, std::string detail) {
  std::lock_guard lock(mu_);
  events_.push_back(StoreEvent{std::string(stage), std::string(key), false,
                               why, std::move(detail)});
}

void ArtifactStore::reject(std::string_view stage, std::string_view key,
                           CacheMiss why, std::string detail) {
  MNEMO_LOG_WARN("artifact store: rejecting %s (%s: %s) -> cache miss",
                 path_for(stage, key).c_str(),
                 std::string(to_string(why)).c_str(), detail.c_str());
  record_miss(stage, key, why, std::move(detail));
}

}  // namespace mnemo::core
