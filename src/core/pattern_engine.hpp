#pragma once

#include <cstdint>
#include <vector>

#include "workload/trace.hpp"

namespace mnemo::core {

/// The relationship between keys and requests — Req(keys) in the paper's
/// data-flow figure — extracted from the workload descriptor.
struct AccessPattern {
  std::vector<std::uint64_t> reads;   ///< per-key read request count
  std::vector<std::uint64_t> writes;  ///< per-key write request count
  std::vector<std::uint64_t> sizes;   ///< per-key record bytes
  /// Keys in order of first access ("as they get touched by the workload
  /// access pattern" — Mnemo's stand-alone incremental-sizing order).
  /// Untouched keys follow in ID order.
  std::vector<std::uint64_t> touch_order;

  [[nodiscard]] std::size_t key_count() const noexcept {
    return sizes.size();
  }
  [[nodiscard]] std::uint64_t accesses(std::uint64_t key) const {
    return reads[key] + writes[key];
  }
  [[nodiscard]] std::uint64_t total_bytes() const;

  [[nodiscard]] friend bool operator==(const AccessPattern&,
                                       const AccessPattern&) = default;
};

/// The paper's Pattern Engine: analyzes the request access pattern and
/// establishes Req(keys).
class PatternEngine {
 public:
  [[nodiscard]] static AccessPattern analyze(const workload::Trace& trace);
};

}  // namespace mnemo::core
