#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/estimate_engine.hpp"
#include "core/pattern_engine.hpp"
#include "core/sensitivity_engine.hpp"
#include "core/slo_advisor.hpp"
#include "faultinject/fault_plan.hpp"

namespace mnemo::core {

/// How Mnemo orders keys for incremental FastMem sizing — the three
/// deployment scenarios of the paper's Figure 2.
enum class OrderingPolicy {
  /// Stand-alone (Fig 2a): keys in workload first-touch order.
  kTouchOrder,
  /// MnemoT (Fig 2c): the key-value-store-optimized tiering order
  /// (weight = accesses / size).
  kTiered,
  /// Existing tiering solution + stand-alone (Fig 2b): the caller supplies
  /// the ordering produced by an external tool.
  kExternal,
};

std::string_view to_string(OrderingPolicy policy);

/// Full configuration of a Mnemo profiling session.
struct MnemoConfig {
  kvstore::StoreKind store = kvstore::StoreKind::kVermilion;
  hybridmem::EmulationProfile platform;
  double price_factor = CostModel::kPaperPriceFactor;
  int repeats = 3;
  kvstore::PayloadMode payload_mode = kvstore::PayloadMode::kSynthetic;
  std::uint64_t seed = 0xbea5;
  /// Measurement-campaign worker threads (0 = hardware, 1 = serial);
  /// forwarded to the Sensitivity Engine. Never changes results.
  std::size_t threads = 0;
  OrderingPolicy ordering = OrderingPolicy::kTouchOrder;
  EstimateModel estimate_model = EstimateModel::kSizeAware;
  double slo_slowdown = SloAdvisor::kPaperSlowdown;
  /// Deterministic fault plan for degraded-mode campaigns (DESIGN.md §7).
  /// Empty (the default) profiles the healthy platform.
  faultinject::FaultPlan faults;
  /// What a quarantined campaign cell means for the session: kDegrade
  /// completes with partial results; kAbort makes the CLI exit nonzero
  /// identifying the failing cell. Only consulted by the CLI layer — the
  /// library always completes and reports.
  faultinject::FailPolicy fail_policy = faultinject::FailPolicy::kDegrade;
  /// Optional cooperative cancellation (not owned; must outlive the
  /// session's stage calls). Checked at stage entry and between campaign
  /// cells; a canceled stage throws util::CanceledError. Deliberately not
  /// part of any cache key: a deadline changes whether an answer arrives,
  /// never what it is.
  const util::CancelToken* cancel = nullptr;
  /// Optional shared executor + task group for the measurement campaigns
  /// (not owned; must outlive the session's stage calls). The serve layer
  /// sets these so every request's campaign cells interleave on one
  /// global scheduler; the CLI leaves them null and gets a transient
  /// per-campaign fan-out. Never changes results, never hashed into keys.
  util::TaskScheduler* scheduler = nullptr;
  util::TaskScheduler::Group* group = nullptr;

  MnemoConfig();
};

/// Everything a profiling session produces: the measured baselines, the
/// key ordering, the full estimate curve, and the SLO sweet spot.
struct MnemoReport {
  std::string workload;
  kvstore::StoreKind store = kvstore::StoreKind::kVermilion;
  OrderingPolicy ordering = OrderingPolicy::kTouchOrder;
  PerfBaselines baselines;
  AccessPattern pattern;
  std::vector<std::uint64_t> order;
  EstimateCurve curve;
  std::optional<SloChoice> slo_choice;

  /// Quarantine ledger of the baseline measurement campaign; empty on a
  /// healthy platform (or when every faulted cell came back clean).
  std::vector<CellFailure> cell_failures;
  /// True when a baseline placement lost at least one repeat to
  /// quarantine: the curve and SLO choice are then not populated, because
  /// any value derived from a perturbed baseline would silently differ
  /// from the fault-free profile.
  bool degraded = false;

  /// Some cells were quarantined — the report carries partial results.
  [[nodiscard]] bool partial() const noexcept { return !cell_failures.empty(); }

  /// The paper's output artifact: a CSV whose rows are
  /// (key id, estimated throughput ops/s, cost reduction factor) —
  /// FastMem serves all keys up to and including the row's key.
  void write_csv(const std::string& path) const;
};

/// The Mnemo facade: wires Sensitivity -> Pattern -> Estimate -> SLO
/// advisor into the one-call profiling flow of the paper's Figure 6.
/// Construct a `MnemoT` (ordering = kTiered) for the extended tool.
class Mnemo {
 public:
  explicit Mnemo(MnemoConfig config = MnemoConfig{});

  /// Profile a workload descriptor end to end.
  [[nodiscard]] MnemoReport profile(const workload::Trace& trace) const;

  /// Scenario 2b: estimate along an externally produced tiering order.
  [[nodiscard]] MnemoReport profile_with_order(
      const workload::Trace& trace,
      std::vector<std::uint64_t> external_order) const;

  /// Validate one curve row by actually executing that placement
  /// (measured counterpart of an estimate — Fig 5's point markers).
  [[nodiscard]] RunMeasurement validate(
      const workload::Trace& trace, const std::vector<std::uint64_t>& order,
      const EstimatePoint& point) const;

  [[nodiscard]] const MnemoConfig& config() const noexcept { return config_; }
  [[nodiscard]] const SensitivityEngine& sensitivity() const noexcept {
    return sensitivity_;
  }

 private:
  MnemoConfig config_;
  /// Kept for validate() and direct measurement callers; the profiling
  /// flow itself runs through core::Session (the one orchestration path).
  SensitivityEngine sensitivity_;
};

/// MnemoT: identical components, with the Pattern Engine extended to emit
/// the key-value-store-optimized priority ordering (paper Section IV).
class MnemoT : public Mnemo {
 public:
  explicit MnemoT(MnemoConfig config = MnemoConfig{});
};

}  // namespace mnemo::core
