#include "core/lane_band.hpp"

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory_resource>
#include <optional>
#include <span>
#include <vector>

#include "core/replay_internal.hpp"
#include "hybridmem/hybrid_memory.hpp"
#include "kvstore/dual_server.hpp"
#include "util/arena.hpp"
#include "util/assert.hpp"
#include "workload/compiled_trace.hpp"

namespace mnemo::core {

namespace {

constexpr std::size_t kSelf = static_cast<std::size_t>(-1);

/// Struct-of-arrays lane state: one complete per-cell replay world. The
/// member order is load-bearing — `servers` references `memory`, so
/// `memory` must outlive it (members destroy in reverse order).
struct LaneState {
  std::optional<hybridmem::HybridMemory> memory;
  std::optional<kvstore::DualServer> servers;
  /// Leader-only: each op's deterministic pre-noise service time, recorded
  /// through the kvstore skeleton tap for sibling lanes to replay.
  std::optional<std::pmr::vector<double>> skeleton;
  double* tap = nullptr;  ///< skeleton write cursor, shared by fast+slow
  std::optional<std::pmr::vector<double>> lat;  ///< flat per-op service ns
  std::optional<std::pmr::vector<double>> read_lat;
  std::optional<std::pmr::vector<double>> write_lat;
  RunMeasurement m;
  std::pmr::memory_resource* cell_memory = nullptr;
  std::size_t leader = kSelf;  ///< skeleton source; kSelf = replays fully
  bool active = false;
};

/// The per-lane StoreConfig, exactly as a per-cell try_run_once deployment
/// would build it (the repeat perturbs the noise seed only).
[[nodiscard]] kvstore::StoreConfig lane_store_config(
    const SensitivityConfig& cfg, const LaneBand::Lane& lane,
    std::pmr::memory_resource* memory) {
  kvstore::StoreConfig store_cfg;
  store_cfg.payload_mode = cfg.payload_mode;
  store_cfg.seed =
      cfg.seed + static_cast<std::uint64_t>(lane.repeat) * 0x9e37;
  store_cfg.table_memory = memory;
  return store_cfg;
}

/// Evictions and lazy TTL expirations are the only store behaviours whose
/// outcome can depend on the per-repeat seed (Vermilion samples eviction
/// victims from a seeded rng) or on the store's noisy clock (TTL
/// deadlines) — and each one leaves a counter behind. All-zero counters on
/// the leader prove its deterministic skeleton is repeat-invariant; the
/// triggers themselves (capacity pressure, TTL stamps) are seed-free, so a
/// sibling's full replay could not have taken a path the leader did not.
[[nodiscard]] std::uint64_t structural_divergence_events(
    const kvstore::DualServer& servers) {
  const kvstore::StoreStats& f = servers.fast().stats();
  const kvstore::StoreStats& s = servers.slow().stats();
  return f.evictions + s.evictions + f.expirations + s.expirations;
}

}  // namespace

void LaneBand::replay(
    const SensitivityEngine& engine, const workload::CompiledTrace& compiled,
    std::span<const Lane> lanes,
    std::span<std::optional<util::Result<RunMeasurement>>> out) {
  const std::size_t k = lanes.size();
  MNEMO_EXPECTS(k >= 1 && k <= kMaxLanes);
  MNEMO_EXPECTS(out.size() == k);

  if (compiled.request_count() == 0) {
    for (std::size_t l = 0; l < k; ++l) {
      out[l] = replay_detail::empty_trace_error();
    }
    return;
  }

  const SensitivityConfig& cfg = engine.config();
  // The platform depends only on the dataset, never on the lane, so the
  // sizing is hoisted out of the lane loop (same value as per-cell).
  const hybridmem::EmulationProfile platform =
      engine.sized_platform(compiled.dataset_bytes());
  const workload::CompiledTrace::ReplayCursor cur = compiled.cursor();

  std::array<LaneState, kMaxLanes> lane_state;

  // --- repeat-sibling detection ----------------------------------------
  // Lanes with identical placements replay the same deterministic state
  // machine: routing, index walks, LLC hits/misses and capacity accounting
  // depend on the op/key streams and the placement, never on the per-repeat
  // seed, which feeds only the service-noise rng. The first such lane
  // becomes the group leader; it records the skeleton of pre-noise service
  // times its siblings then replay through their own noise streams
  // (DESIGN.md §14). Fault plans are placement-crossing (a poisoned read
  // remaps its key mid-run), so any armed plan disables sharing and every
  // lane replays fully.
  std::array<bool, kMaxLanes> leads_group{};
  if (cfg.faults.empty()) {
    for (std::size_t i = 1; i < k; ++i) {
      for (std::size_t j = 0; j < i; ++j) {
        if (lane_state[j].leader != kSelf) continue;  // followers can't lead
        if (lanes[j].placement == lanes[i].placement ||
            *lanes[j].placement == *lanes[i].placement) {
          lane_state[i].leader = j;
          leads_group[j] = true;
          break;
        }
      }
    }
  }

  // --- lane setup: followers get only measurement buffers; every other
  // lane builds its deployment exactly like try_run_once(compiled, ...)
  // would, on its own arena ----------------------------------------------
  auto setup_full = [&](std::size_t l) -> bool {
    LaneState& s = lane_state[l];
    const Lane& lane = lanes[l];
    s.memory.emplace(platform, s.cell_memory);
    s.servers.emplace(*s.memory, cfg.store,
                      lane_store_config(cfg, lane, s.cell_memory));
    {
      util::Status loaded = s.servers->populate(compiled, *lane.placement);
      if (!loaded.ok()) {
        out[l] = loaded.error();
        return false;
      }
    }
    s.memory->drop_caches();
    // Per-lane fault counters: each lane's injector is seeded from its
    // own (repeat, attempt), untouched by what any other lane absorbs.
    if (!cfg.faults.empty()) {
      s.memory->arm_faults(
          cfg.faults, (static_cast<std::uint64_t>(lane.repeat) << 16) +
                          static_cast<std::uint64_t>(lane.attempt));
    }
    s.active = true;
    return true;
  };

  for (std::size_t l = 0; l < k; ++l) {
    LaneState& s = lane_state[l];
    s.cell_memory =
        lanes[l].arena != nullptr
            ? static_cast<std::pmr::memory_resource*>(lanes[l].arena)
            : std::pmr::get_default_resource();
    s.lat.emplace(s.cell_memory);
    s.lat->resize(compiled.request_count());
    s.read_lat.emplace(s.cell_memory);
    s.write_lat.emplace(s.cell_memory);
    s.read_lat->reserve(compiled.read_count());
    s.write_lat->reserve(compiled.write_count());
    s.m.requests = compiled.request_count();
    if (s.leader != kSelf) {
      s.active = true;  // resolved from its leader's skeleton below
      continue;
    }
    if (!setup_full(l)) continue;
    if (leads_group[l]) {
      s.skeleton.emplace(s.cell_memory);
      s.skeleton->resize(cur.size);
      s.tap = s.skeleton->data();
      s.servers->fast().set_skeleton_tap(&s.tap);
      s.servers->slow().set_skeleton_tap(&s.tap);
    }
  }

  // One lane's pass over ops [base, end): exactly the per-cell replay loop.
  // Service times land in a flat per-lane array (unconditional store, no
  // branch, no growth check); the read/write split, the histogram and the
  // percentile tail all happen once per lane after the pass, where they
  // batch (util::simd) instead of burning a log10 and two branches per op.
  // runtime is carried through a register: the same single sequential
  // addition chain try_run_once's `m.runtime_ns +=` performs, so the total
  // is bit-identical.
  auto run_range = [&](std::size_t l, std::size_t base, std::size_t end) {
    LaneState& s = lane_state[l];
    kvstore::DualServer& servers = *s.servers;
    double* lat = s.lat->data();
    double runtime = s.m.runtime_ns;
    for (std::size_t i = base; i < end; ++i) {
      const workload::CompiledTrace::ReplayCursor::Decoded d = cur.decode(i);
      const kvstore::KeyHints hints{d.hash, d.digest};
      const util::Result<kvstore::OpResult> served =
          servers.execute(d.op, d.key, hints);
      if (!served.ok()) {
        // The lane dies exactly where the per-cell run would have
        // returned; the other lanes keep replaying.
        out[l] = served.error();
        s.active = false;
        break;
      }
      const kvstore::OpResult r = served.value();
      MNEMO_ASSERT(r.ok && "all requested keys were populated");
      runtime += r.service_ns;
      lat[i] = r.service_ns;
    }
    s.m.runtime_ns = runtime;
  };

  // --- the fused pass: block-interleaved full lanes over one decode -----
  // Lanes advance in blocks of kBlock ops: lane 0 executes ops
  // [base, base+kBlock), then lane 1 the same ops, and so on. Each lane's
  // instruction sequence is exactly the per-cell one (only the
  // interleaving across lanes differs), its store/LLC working set stays
  // cache-resident for a whole block, and the op/key/hash/digest streams —
  // pulled from memory by the first lane of each block — are served to the
  // remaining lanes out of cache.
  constexpr std::size_t kBlock = 4096;
  for (std::size_t base = 0; base < cur.size; base += kBlock) {
    const std::size_t end = std::min(base + kBlock, cur.size);
    for (std::size_t l = 0; l < k; ++l) {
      LaneState& s = lane_state[l];
      if (!s.active || s.leader != kSelf) continue;
      run_range(l, base, end);
    }
  }
  for (std::size_t l = 0; l < k; ++l) {
    LaneState& s = lane_state[l];
    if (s.tap == nullptr || !s.servers) continue;
    s.servers->fast().set_skeleton_tap(nullptr);
    s.servers->slow().set_skeleton_tap(nullptr);
    MNEMO_ASSERT((!s.active || s.tap == s.skeleton->data() + cur.size) &&
                 "one skeleton entry per replayed op");
  }

  // --- resolve followers: replay the leader's skeleton through the
  // sibling's own noise streams -----------------------------------------
  for (std::size_t l = 0; l < k; ++l) {
    LaneState& s = lane_state[l];
    if (s.leader == kSelf) continue;
    const LaneState& ls = lane_state[s.leader];
    if (!ls.active || structural_divergence_events(*ls.servers) != 0) {
      // The leader died (its sibling would die identically — reproduce the
      // exact error) or its run took a seed-dependent path: fall back to
      // an ordinary full replay of this lane, exactly what per-cell does.
      s.leader = kSelf;
      if (!setup_full(l)) continue;
      run_range(l, 0, cur.size);
      continue;
    }
    // The sibling's noise streams, reproduced instance-exactly: same
    // profile resolution, same seeds, same rng type as its own deployment
    // would construct (kvstore::ServiceNoise::for_instance is the one
    // definition both paths share).
    const kvstore::StoreConfig base_cfg =
        lane_store_config(cfg, lanes[l], nullptr);
    kvstore::StoreConfig slow_cfg = base_cfg;
    slow_cfg.seed ^= kvstore::DualServer::kSlowSeedMix;
    kvstore::ServiceNoise fast_noise =
        kvstore::ServiceNoise::for_instance(base_cfg, cfg.store);
    kvstore::ServiceNoise slow_noise =
        kvstore::ServiceNoise::for_instance(slow_cfg, cfg.store);
    // Populate advances each instance's stream by one draw per loaded key
    // (DualServer::populate finalizes one put per key, in key order, routed
    // by the placement): replay that consumption so the streams enter the
    // measured run in the exact state the sibling's own deployment would.
    const hybridmem::Placement& placement = *lanes[l].placement;
    const std::uint64_t initial = compiled.initial_key_count();
    for (std::uint64_t key = 0; key < initial; ++key) {
      (placement.node_of(key) == hybridmem::NodeId::kFast ? fast_noise
                                                          : slow_noise)
          .apply(0.0);
    }
    const double* skeleton = ls.skeleton->data();
    double* lat = s.lat->data();
    double runtime = s.m.runtime_ns;
    for (std::size_t i = 0; i < cur.size; ++i) {
      const bool fast =
          placement.node_of(cur.keys[i]) == hybridmem::NodeId::kFast;
      const double service =
          (fast ? fast_noise : slow_noise).apply(skeleton[i]);
      runtime += service;
      lat[i] = service;
    }
    s.m.runtime_ns = runtime;
  }

  // --- per-lane epilogue: identical statistics tail as per-cell ---------
  for (std::size_t l = 0; l < k; ++l) {
    LaneState& s = lane_state[l];
    if (!s.active) continue;
    // Split the flat service-time array into the read/write vectors the
    // stats tail consumes — same values, same op order as the per-cell
    // per-op push_backs.
    const std::span<const double> lat(s.lat->data(), cur.size);
    for (std::size_t i = 0; i < cur.size; ++i) {
      (cur.ops[i] == workload::OpType::kRead ? *s.read_lat : *s.write_lat)
          .push_back(lat[i]);
    }
    // Histogram counts commute, so batching the adds after the pass is
    // the same histogram as per-op add(); the batch path's bucket
    // indices are exact (stats::LogHistogram::bucket_bounds) and SIMD
    // (util::simd::partition_index_batch).
    s.m.latency_hist.add_batch(lat);
    std::pmr::vector<double> merged(s.read_lat->get_allocator());
    const util::Status derived = replay_detail::derive_measurement(
        s.m, compiled.read_bytes(), compiled.write_bytes(), *s.read_lat,
        *s.write_lat, merged, replay_detail::PercentileMode::kSelect,
        &compiled.read_fit(), &compiled.write_fit());
    if (!derived.ok()) {
      out[l] = derived.error();
      continue;
    }
    // A skeleton-replayed lane's platform counters live on its leader's
    // deployment; the values are structurally identical (LLC decisions and
    // the absence of faults are placement functions, not seed functions).
    const LaneState& platform_state =
        s.leader == kSelf ? s : lane_state[s.leader];
    s.m.llc_hit_rate = platform_state.memory->llc().hit_rate();
    s.m.faults = platform_state.memory->fault_stats();
    out[l] = s.m;
  }
}

}  // namespace mnemo::core
