#include "core/render.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/bytes.hpp"

namespace mnemo::core {

std::string render_characterize(const workload::Trace& trace,
                                const CharacterizeArtifact& c) {
  std::ostringstream out;
  out << "workload: " << trace.name() << ": " << trace.key_count()
      << " keys, " << trace.requests().size() << " requests ("
      << util::format_bytes(trace.dataset_bytes()) << " dataset)\n";
  out << "ordering: " << to_string(c.ordering) << " | front of the order:";
  const std::size_t head = std::min<std::size_t>(8, c.order.size());
  for (std::size_t i = 0; i < head; ++i) out << ' ' << c.order[i];
  out << "\n";
  return out.str();
}

std::string render_measure(const MeasureArtifact& m) {
  if (m.degraded) {
    return "baselines quarantined: no estimate (see failure ledger)\n";
  }
  char line[160];
  std::snprintf(line, sizeof line,
                "baselines: FastMem-only %.0f ops/s | SlowMem-only %.0f "
                "ops/s | sensitivity +%.1f%%\n",
                m.baselines.fast.throughput_ops,
                m.baselines.slow.throughput_ops,
                m.baselines.sensitivity() * 100.0);
  return line;
}

std::string render_verdict(const AdviseArtifact& v) {
  if (!v.result.choice) return "no configuration satisfies the SLO\n";
  const SloChoice& c = *v.result.choice;
  char line[160];
  std::snprintf(line, sizeof line,
                "sweet spot @ %.0f%% SLO: %zu keys (%s) in FastMem -> "
                "memory cost %.0f%% of FastMem-only (%.0f%% savings)\n",
                v.slo_slowdown * 100.0, c.point.fast_keys,
                util::format_bytes(c.point.fast_bytes).c_str(),
                c.cost_factor * 100.0, c.savings_vs_fast * 100.0);
  return line;
}

std::string render_advise(const MeasureArtifact& m, const AdviseArtifact& v) {
  if (v.degraded) return render_measure(m);  // the quarantined notice
  return render_measure(m) + render_verdict(v);
}

}  // namespace mnemo::core
