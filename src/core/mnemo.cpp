#include "core/mnemo.hpp"

#include "core/placement_engine.hpp"
#include "core/tiering.hpp"
#include "util/assert.hpp"
#include "util/csv.hpp"

namespace mnemo::core {

std::string_view to_string(OrderingPolicy policy) {
  switch (policy) {
    case OrderingPolicy::kTouchOrder:
      return "touch_order";
    case OrderingPolicy::kTiered:
      return "tiered";
    case OrderingPolicy::kExternal:
      return "external";
  }
  return "?";
}

MnemoConfig::MnemoConfig() : platform(hybridmem::paper_testbed()) {}

namespace {

SensitivityConfig to_sensitivity_config(const MnemoConfig& cfg) {
  SensitivityConfig s;
  s.store = cfg.store;
  s.platform = cfg.platform;
  s.payload_mode = cfg.payload_mode;
  s.repeats = cfg.repeats;
  s.seed = cfg.seed;
  s.threads = cfg.threads;
  s.faults = cfg.faults;
  return s;
}

}  // namespace

Mnemo::Mnemo(MnemoConfig config)
    : config_(std::move(config)),
      sensitivity_(to_sensitivity_config(config_)),
      estimator_(CostModel(config_.price_factor), config_.estimate_model),
      advisor_(config_.slo_slowdown) {}

MnemoT::MnemoT(MnemoConfig config) : Mnemo([&] {
      config.ordering = OrderingPolicy::kTiered;
      return std::move(config);
    }()) {}

MnemoReport Mnemo::build_report(const workload::Trace& trace,
                                std::vector<std::uint64_t> order,
                                OrderingPolicy policy) const {
  MnemoReport report;
  report.workload = trace.name();
  report.store = config_.store;
  report.ordering = policy;
  report.pattern = PatternEngine::analyze(trace);
  report.order = std::move(order);

  if (config_.faults.empty()) {
    report.baselines = sensitivity_.baselines(trace);
  } else {
    // Degraded-mode campaign: each baseline cell is accepted only when it
    // is bit-identical to the fault-free platform (zero events after one
    // retry), so a non-degraded report matches the healthy profile
    // exactly; a lost baseline quarantines the estimates instead of
    // silently skewing them.
    CampaignRunner runner(config_.threads);
    CampaignResult grid = runner.measure_grid_checked(
        sensitivity_, trace,
        {hybridmem::Placement(trace.key_count(), hybridmem::NodeId::kFast),
         hybridmem::Placement(trace.key_count(), hybridmem::NodeId::kSlow)});
    report.cell_failures = std::move(grid.failures);
    if (!grid.measurements[0] || !grid.measurements[1]) {
      report.degraded = true;
      return report;
    }
    report.baselines.fast = *grid.measurements[0];
    report.baselines.slow = *grid.measurements[1];
  }

  report.curve =
      estimator_.estimate(report.pattern, report.order, report.baselines);
  report.slo_choice = advisor_.choose(report.curve, report.baselines);
  return report;
}

MnemoReport Mnemo::profile(const workload::Trace& trace) const {
  const AccessPattern pattern = PatternEngine::analyze(trace);
  std::vector<std::uint64_t> order;
  switch (config_.ordering) {
    case OrderingPolicy::kTouchOrder:
      order = pattern.touch_order;
      break;
    case OrderingPolicy::kTiered:
      order = TieringEngine::priority_order(pattern);
      break;
    case OrderingPolicy::kExternal:
      MNEMO_EXPECTS(false &&
                    "external ordering requires profile_with_order()");
      break;
  }
  return build_report(trace, std::move(order), config_.ordering);
}

MnemoReport Mnemo::profile_with_order(
    const workload::Trace& trace,
    std::vector<std::uint64_t> external_order) const {
  MNEMO_EXPECTS(external_order.size() == trace.key_count());
  return build_report(trace, std::move(external_order),
                      OrderingPolicy::kExternal);
}

RunMeasurement Mnemo::validate(const workload::Trace& trace,
                               const std::vector<std::uint64_t>& order,
                               const EstimatePoint& point) const {
  const auto placement = PlacementEngine::placement_for(order, point);
  return sensitivity_.measure(trace, placement);
}

void MnemoReport::write_csv(const std::string& path) const {
  util::csv::Writer w(path);
  w.row({"key_id", "est_throughput_ops", "cost_reduction_factor"});
  // Row 0 of the curve is the SlowMem-only bound; the CSV rows start with
  // the first key tiered into FastMem, as the paper specifies.
  for (std::size_t i = 1; i < curve.points.size(); ++i) {
    const EstimatePoint& p = curve.points[i];
    w.field(p.last_key)
        .field(p.est_throughput_ops, 10)
        .field(p.cost_factor, 6);
    w.end_row();
  }
}

}  // namespace mnemo::core
