#include "core/mnemo.hpp"

#include "core/placement_engine.hpp"
#include "core/session.hpp"
#include "util/assert.hpp"
#include "util/csv.hpp"

namespace mnemo::core {

std::string_view to_string(OrderingPolicy policy) {
  switch (policy) {
    case OrderingPolicy::kTouchOrder:
      return "touch_order";
    case OrderingPolicy::kTiered:
      return "tiered";
    case OrderingPolicy::kExternal:
      return "external";
  }
  return "?";
}

MnemoConfig::MnemoConfig() : platform(hybridmem::paper_testbed()) {}

namespace {

SensitivityConfig to_sensitivity_config(const MnemoConfig& cfg) {
  SensitivityConfig s;
  s.store = cfg.store;
  s.platform = cfg.platform;
  s.payload_mode = cfg.payload_mode;
  s.repeats = cfg.repeats;
  s.seed = cfg.seed;
  s.threads = cfg.threads;
  s.faults = cfg.faults;
  return s;
}

}  // namespace

Mnemo::Mnemo(MnemoConfig config)
    : config_(std::move(config)),
      sensitivity_(to_sensitivity_config(config_)) {}

MnemoT::MnemoT(MnemoConfig config) : Mnemo([&] {
      config.ordering = OrderingPolicy::kTiered;
      return std::move(config);
    }()) {}

MnemoReport Mnemo::profile(const workload::Trace& trace) const {
  MNEMO_EXPECTS(config_.ordering != OrderingPolicy::kExternal &&
                "external ordering requires profile_with_order()");
  // The facade is an uncached session: every profiling flow — CLI,
  // examples, benches — funnels through the same staged pipeline.
  SessionConfig sc;
  sc.mnemo = config_;
  Session session(trace, std::move(sc));
  return session.to_report();
}

MnemoReport Mnemo::profile_with_order(
    const workload::Trace& trace,
    std::vector<std::uint64_t> external_order) const {
  MNEMO_EXPECTS(external_order.size() == trace.key_count());
  SessionConfig sc;
  sc.mnemo = config_;
  sc.external_order = std::move(external_order);
  Session session(trace, std::move(sc));
  return session.to_report();
}

RunMeasurement Mnemo::validate(const workload::Trace& trace,
                               const std::vector<std::uint64_t>& order,
                               const EstimatePoint& point) const {
  const auto placement = PlacementEngine::placement_for(order, point);
  return sensitivity_.measure(trace, placement);
}

void MnemoReport::write_csv(const std::string& path) const {
  util::csv::Writer w(path);
  w.row({"key_id", "est_throughput_ops", "cost_reduction_factor"});
  // Row 0 of the curve is the SlowMem-only bound; the CSV rows start with
  // the first key tiered into FastMem, as the paper specifies.
  for (std::size_t i = 1; i < curve.points.size(); ++i) {
    const EstimatePoint& p = curve.points[i];
    w.field(p.last_key)
        .field(p.est_throughput_ops, 10)
        .field(p.cost_factor, 6);
    w.end_row();
  }
}

}  // namespace mnemo::core
