#include "core/baselines.hpp"

#include "util/assert.hpp"

namespace mnemo::core {

RunMeasurement average_runs(const std::vector<RunMeasurement>& runs) {
  MNEMO_EXPECTS(!runs.empty());
  RunMeasurement avg;
  const auto n = static_cast<double>(runs.size());
  for (const RunMeasurement& r : runs) {
    avg.runtime_ns += r.runtime_ns / n;
    avg.throughput_ops += r.throughput_ops / n;
    avg.avg_latency_ns += r.avg_latency_ns / n;
    avg.avg_read_ns += r.avg_read_ns / n;
    avg.avg_write_ns += r.avg_write_ns / n;
    avg.p95_ns += r.p95_ns / n;
    avg.p99_ns += r.p99_ns / n;
    avg.llc_hit_rate += r.llc_hit_rate / n;
    avg.read_vs_bytes.intercept += r.read_vs_bytes.intercept / n;
    avg.read_vs_bytes.slope += r.read_vs_bytes.slope / n;
    avg.write_vs_bytes.intercept += r.write_vs_bytes.intercept / n;
    avg.write_vs_bytes.slope += r.write_vs_bytes.slope / n;
    avg.latency_hist.merge(r.latency_hist);
    // Counters sum across repeats: the merged view reports every event
    // the group absorbed, not a fractional average.
    avg.faults.merge(r.faults);
  }
  avg.requests = runs.front().requests;
  avg.reads = runs.front().reads;
  avg.writes = runs.front().writes;
  return avg;
}

}  // namespace mnemo::core
