#pragma once

#include <cstdint>

#include "core/baselines.hpp"
#include "core/sensitivity_engine.hpp"
#include "workload/trace.hpp"

namespace mnemo::core {

/// Configuration of the epoch-based dynamic re-tiering extension
/// ("MnemoDyn"). The paper's Mnemo produces *static* placements only and
/// notes that News-Feed-style workloads — whose hot set keeps moving —
/// cannot profit from them. This engine closes that gap: it re-tieres at
/// fixed request epochs using exponentially decayed accesses/size scores,
/// within a fixed FastMem byte budget and a per-epoch migration budget.
struct MigrationConfig {
  std::uint64_t fast_budget_bytes = 0;  ///< fixed FastMem capacity (required)
  std::size_t epoch_requests = 5'000;   ///< re-tier cadence
  double ewma_alpha = 0.6;              ///< weight of the newest epoch
  /// Max bytes migrated per epoch (caps the disruption); 0 = unlimited.
  std::uint64_t migration_bytes_per_epoch = 0;
  /// Whether migrations stall the client (foreground) or only their
  /// simulated cost is reported separately (background copy).
  bool foreground = true;
  /// Predictive tracking: estimate the hot zone's drift velocity from the
  /// circular centroid of successive epochs' accesses and select the
  /// FastMem set from scores shifted one epoch *ahead*. Without this, a
  /// reactive controller always promotes yesterday's hot keys and loses
  /// the recency-skewed mass of drifting (News-Feed-like) workloads.
  /// No-op on stationary workloads (estimated velocity ~ 0).
  bool predictive = true;
  /// Hysteresis dead band: a currently-fast key is only demoted once it
  /// falls out of the top `keep_factor x budget` of the ranking, so
  /// borderline keys do not ping-pong between tiers every epoch.
  double keep_factor = 1.25;
};

/// Outcome of a dynamically tiered run.
struct MigrationResult {
  RunMeasurement measurement;  ///< client view (includes stalls if foreground)
  std::size_t epochs = 0;
  std::uint64_t migrations = 0;        ///< keys moved
  std::uint64_t bytes_migrated = 0;
  double migration_ns = 0.0;           ///< simulated time spent migrating
  std::uint64_t rejected_moves = 0;    ///< destination-full promotions
  /// Requests dropped because their read exhausted the fault plan's
  /// transient retries (always 0 without an armed fault plan).
  std::uint64_t failed_requests = 0;
};

/// Epoch-based dynamic tierer over the dual-server deployment.
class DynamicTierer {
 public:
  DynamicTierer(SensitivityConfig sensitivity, MigrationConfig migration);

  /// Execute the trace with dynamic re-tiering. The initial placement
  /// fills the FastMem budget in key-ID order (no workload foresight —
  /// the controller has to learn the hot set online).
  [[nodiscard]] MigrationResult run(const workload::Trace& trace) const;

  /// Static reference point: the best *oracle* static placement for the
  /// same budget (whole-trace accesses/size priority), measured with the
  /// same engine — what Mnemo/MnemoT would deploy.
  [[nodiscard]] RunMeasurement run_static_oracle(
      const workload::Trace& trace) const;

  [[nodiscard]] const MigrationConfig& migration_config() const noexcept {
    return migration_;
  }

 private:
  SensitivityConfig sensitivity_;
  MigrationConfig migration_;
};

}  // namespace mnemo::core
