#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/artifact_io.hpp"
#include "util/status.hpp"

namespace mnemo::core {

/// Why a cache lookup came back empty. kDisabled and kAbsent are the
/// ordinary cold-cache cases; the remaining codes mean an on-disk file
/// existed but was rejected — always a miss with a logged reason, never an
/// error (satellite: a truncated or foreign artifact must not crash a run).
enum class CacheMiss : std::uint8_t {
  kNone = 0,          ///< not a miss (the lookup hit)
  kDisabled,          ///< the store has no directory (caching off)
  kAbsent,            ///< no file for this key — a cold cell
  kBadMagic,          ///< file does not start with the artifact magic
  kSchemaMismatch,    ///< file holds a different artifact type
  kVersionMismatch,   ///< schema matches but the version moved on
  kTruncated,         ///< payload shorter than its own framing claims
  kChecksumMismatch,  ///< payload bytes do not hash to the stored digest
  kCorrupt,           ///< payload framing intact but undecodable
};

std::string_view to_string(CacheMiss miss);

/// What fsck found wrong with one file in the cache directory.
enum class FsckProblem : std::uint8_t {
  kBadMagic,          ///< .mna file that is not an artifact (foreign/torn)
  kTruncatedFrame,    ///< frame shorter than its own framing claims
  kChecksumMismatch,  ///< payload bytes do not hash to the stored digest
  kTrailingBytes,     ///< valid frame followed by junk
  kOrphanTemp,        ///< temp file left by a dead writer (crash litter)
  kJournalMissing,    ///< journaled commit whose file is gone (advisory)
};

std::string_view to_string(FsckProblem problem);

/// One damaged (or suspicious) file found by fsck.
struct FsckFinding {
  std::string file;  ///< basename within the cache dir
  FsckProblem problem = FsckProblem::kBadMagic;
  std::string detail;
  /// True when fsck acted: damaged artifacts moved to quarantine/,
  /// orphaned temps deleted. Always false on a dry run, and for the
  /// advisory kJournalMissing (there is nothing to move).
  bool repaired = false;
};

/// Outcome of one recovery pass over a cache directory.
struct FsckReport {
  std::size_t scanned = 0;      ///< .mna artifacts examined
  std::size_t healthy = 0;      ///< artifacts with a valid frame
  std::size_t quarantined = 0;  ///< damaged artifacts moved aside
  std::size_t reaped_temps = 0; ///< dead writers' temp files deleted
  std::vector<FsckFinding> findings;

  /// True when the directory needed no repairs.
  [[nodiscard]] bool clean() const noexcept { return findings.empty(); }

  /// Human-readable summary table (one row per finding).
  [[nodiscard]] std::string render() const;
};

/// One cache decision, kept for --explain-cache and the store tests.
struct StoreEvent {
  std::string stage;
  std::string key;
  bool hit = false;
  CacheMiss miss = CacheMiss::kNone;
  std::string detail;  ///< human-readable reason for a rejected file
};

/// Content-addressed on-disk artifact store. Each artifact lives in its
/// own file `<dir>/<stage>-<key>.mna` where `key` is the 128-bit stable
/// hash of everything the artifact's bytes depend on (see Session's
/// cache-key builders). File format:
///
///   "MNA1" | schema (len-prefixed) | version u32 | payload (len-prefixed)
///        | payload checksum (two u64 lanes, StableHasher)
///
/// Writes are crash-safe (temp file + rename), so a reader observes either
/// the previous artifact or the new one, never a torn file. Concurrent
/// writers of the same key — sessions racing to fill one cache dir —
/// resolve to last-writer-wins through writer-unique temp files; because
/// the store is content-addressed, both must be writing the same bytes,
/// which save_payload asserts whenever the incumbent file is a valid
/// artifact. Every load failure short of an I/O race is classified into a
/// CacheMiss and logged; load() never throws.
///
/// The store is thread-safe: one instance may be shared across sessions
/// on different threads (`mnemo serve` does), with the event ledger
/// guarded internally.
class ArtifactStore {
 public:
  /// A default-constructed (or empty-dir) store is disabled: every load
  /// misses with kDisabled and saves are dropped.
  ArtifactStore() = default;
  explicit ArtifactStore(std::string dir);

  [[nodiscard]] bool enabled() const noexcept { return !dir_.empty(); }
  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

  /// File this (stage, key) pair addresses — exposed for tests and
  /// --explain-cache output.
  [[nodiscard]] std::string path_for(std::string_view stage,
                                     std::string_view key) const;

  /// Load the raw payload for (stage, key), verifying magic, schema,
  /// version and checksum. nullopt on any miss; *why (when non-null)
  /// says which kind. Misses are recorded as events here; the hit event
  /// is recorded by the typed load() once the payload also decodes.
  [[nodiscard]] std::optional<std::string> load_payload(
      std::string_view stage, std::string_view schema, std::uint32_t version,
      std::string_view key, CacheMiss* why = nullptr);

  /// Persist a payload under (stage, key). No-op when disabled; an I/O
  /// failure is returned (and logged) but callers treat the cache as
  /// best-effort and continue.
  util::Status save_payload(std::string_view stage, std::string_view schema,
                            std::uint32_t version, std::string_view key,
                            std::string_view payload);

  /// Typed load: deserializes an artifact type A (kStage/kSchema/kVersion
  /// plus serialize/deserialize). A payload that passes the checksum but
  /// fails to decode is a kCorrupt miss, not an error.
  template <typename A>
  [[nodiscard]] std::optional<A> load(std::string_view key) {
    CacheMiss why = CacheMiss::kNone;
    std::optional<std::string> payload =
        load_payload(A::kStage, A::kSchema, A::kVersion, key, &why);
    if (!payload) return std::nullopt;
    try {
      util::BinReader r(*payload);
      A artifact = A::deserialize(r);
      if (!r.exhausted()) {
        reject(A::kStage, key, CacheMiss::kCorrupt, "trailing bytes");
        return std::nullopt;
      }
      record_hit(A::kStage, key);
      return artifact;
    } catch (const util::ArtifactError& e) {
      reject(A::kStage, key, CacheMiss::kCorrupt, e.what());
      return std::nullopt;
    }
  }

  /// Typed save (see save_payload for semantics).
  template <typename A>
  util::Status save(std::string_view key, const A& artifact) {
    util::BinWriter w;
    artifact.serialize(w);
    return save_payload(A::kStage, A::kSchema, A::kVersion, key, w.buffer());
  }

  /// Crash-recovery pass over the cache directory (`mnemo fsck`, and the
  /// server's startup scan). Validates every `*.mna` file's generic frame
  /// — magic, framing, checksum — without caring which stage wrote it,
  /// and with `repair`:
  ///
  ///   - damaged artifacts move to `<dir>/quarantine/` (recorded in
  ///     `quarantine/ledger.log`), so later loads see kAbsent misses and
  ///     recompute — damage degrades to a cold cell, never a crash;
  ///   - temp files whose writer pid is dead are deleted (crash litter);
  ///     temps of live pids are left alone (in-flight writers).
  ///
  /// The write journal (`journal.mnj`, appended on every successful save)
  /// is advisory: a journaled file that has gone missing is *reported*
  /// (kJournalMissing) but nothing is condemned for being unjournaled —
  /// pre-journal caches and foreign writers are legitimate. A torn final
  /// journal record (crash mid-append) is tolerated silently.
  ///
  /// With repair=false (dry run) the same findings are returned and
  /// nothing on disk changes. No-op (empty report) when disabled.
  [[nodiscard]] FsckReport fsck(bool repair = true);

  /// Every hit/miss decision since construction (or clear_events), in
  /// order — the raw material of --explain-cache. Returned by value: the
  /// ledger may be appended to concurrently by other threads sharing the
  /// store, so callers get a consistent snapshot.
  [[nodiscard]] std::vector<StoreEvent> events() const {
    std::lock_guard lock(mu_);
    return events_;
  }
  void clear_events() {
    std::lock_guard lock(mu_);
    events_.clear();
  }

 private:
  void record_hit(std::string_view stage, std::string_view key);
  void record_miss(std::string_view stage, std::string_view key,
                   CacheMiss why, std::string detail);
  /// A miss caused by a rejected on-disk file: recorded AND logged.
  void reject(std::string_view stage, std::string_view key, CacheMiss why,
              std::string detail);

  std::string dir_;
  mutable std::mutex mu_;  ///< guards events_ only; file I/O needs no lock
  std::vector<StoreEvent> events_;
};

}  // namespace mnemo::core
