#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/campaign.hpp"
#include "core/estimate_engine.hpp"
#include "core/mnemo.hpp"
#include "core/pattern_engine.hpp"
#include "core/slo_advisor.hpp"
#include "util/artifact_io.hpp"

namespace mnemo::core {

/// Typed artifacts flowing between the consultant pipeline's stages
/// (characterize -> measure -> estimate -> advise -> report). Every
/// artifact serializes to a deterministic byte stream (util::BinWriter)
/// and carries a stage name, schema id and version so the ArtifactStore
/// can reject foreign or out-of-date files as cache misses.
///
/// The serialization is total: load(save(x)) == x bit for bit, for every
/// field including latency histograms and failure ledgers — the property
/// tests in tests/core/test_artifacts.cpp enforce it per type.

/// Stage 1 — characterize: the access pattern and the key ordering the
/// configured policy derives from it. Pure function of the workload (and,
/// for kExternal, the supplied order), so it is cacheable by workload
/// identity alone.
struct CharacterizeArtifact {
  static constexpr std::string_view kStage = "characterize";
  static constexpr std::string_view kSchema = "mnemo.artifact.characterize";
  static constexpr std::uint32_t kVersion = 1;

  OrderingPolicy ordering = OrderingPolicy::kTouchOrder;
  AccessPattern pattern;
  std::vector<std::uint64_t> order;

  void serialize(util::BinWriter& w) const;
  static CharacterizeArtifact deserialize(util::BinReader& r);
  [[nodiscard]] friend bool operator==(const CharacterizeArtifact&,
                                       const CharacterizeArtifact&) = default;
};

/// Stage 2 — measure: the campaign grid's output. The only stage that
/// touches the emulator, hence the expensive one the cache exists for.
/// A degraded grid (quarantined cells) is carried for reporting but is
/// never written to the store — degraded cells must not be cached as
/// clean (see ArtifactStore usage in Session).
struct MeasureArtifact {
  static constexpr std::string_view kStage = "measure";
  static constexpr std::string_view kSchema = "mnemo.artifact.measure";
  static constexpr std::uint32_t kVersion = 1;

  PerfBaselines baselines;
  std::vector<CellFailure> failures;
  /// A baseline placement lost at least one repeat: baselines are not
  /// usable and downstream stages must not estimate from them.
  bool degraded = false;

  void serialize(util::BinWriter& w) const;
  static MeasureArtifact deserialize(util::BinReader& r);
  [[nodiscard]] friend bool operator==(const MeasureArtifact&,
                                       const MeasureArtifact&) = default;
};

/// Stage 3 — estimate: the full cost/performance tradeoff curve. Empty
/// when the measure stage was degraded.
struct EstimateArtifact {
  static constexpr std::string_view kStage = "estimate";
  static constexpr std::string_view kSchema = "mnemo.artifact.estimate";
  static constexpr std::uint32_t kVersion = 1;

  EstimateCurve curve;

  void serialize(util::BinWriter& w) const;
  static EstimateArtifact deserialize(util::BinReader& r);
  [[nodiscard]] friend bool operator==(const EstimateArtifact&,
                                       const EstimateArtifact&) = default;
};

/// Stage 4 — advise: the SLO verdict at one (slo, price) query point.
/// Re-querying with a different SLO or price only re-runs this stage and
/// the estimate — never the emulator.
struct AdviseArtifact {
  static constexpr std::string_view kStage = "advise";
  static constexpr std::string_view kSchema = "mnemo.artifact.advise";
  static constexpr std::uint32_t kVersion = 1;

  double slo_slowdown = SloAdvisor::kPaperSlowdown;
  double price_factor = CostModel::kPaperPriceFactor;
  /// Baselines were quarantined: no verdict is possible.
  bool degraded = false;
  SloResult result;

  void serialize(util::BinWriter& w) const;
  static AdviseArtifact deserialize(util::BinReader& r);
  [[nodiscard]] friend bool operator==(const AdviseArtifact&,
                                       const AdviseArtifact&) = default;
};

/// Stage 5 — report: the rendered consultant answer. `text` is the
/// human-readable report body; `csv` is the paper's 3-column output
/// artifact (empty when degraded). Byte-stable so cold and warm runs can
/// be diffed byte for byte.
struct ReportArtifact {
  static constexpr std::string_view kStage = "report";
  static constexpr std::string_view kSchema = "mnemo.artifact.report";
  static constexpr std::uint32_t kVersion = 1;

  std::string text;
  std::string csv;

  void serialize(util::BinWriter& w) const;
  static ReportArtifact deserialize(util::BinReader& r);
  [[nodiscard]] friend bool operator==(const ReportArtifact&,
                                       const ReportArtifact&) = default;
};

/// Shared piecewise serializers (also used by tests that need to
/// round-trip the component structs directly).
void write_measurement(util::BinWriter& w, const RunMeasurement& m);
RunMeasurement read_measurement(util::BinReader& r);
void write_cell_failure(util::BinWriter& w, const CellFailure& f);
CellFailure read_cell_failure(util::BinReader& r);

}  // namespace mnemo::core
