#include "core/tail_estimator.hpp"

#include "util/assert.hpp"

namespace mnemo::core {

double TailEstimator::fast_share(const AccessPattern& pattern,
                                 const std::vector<std::uint64_t>& order,
                                 std::size_t fast_keys) {
  MNEMO_EXPECTS(fast_keys <= order.size());
  MNEMO_EXPECTS(order.size() == pattern.key_count());
  std::uint64_t fast_requests = 0;
  std::uint64_t total = 0;
  for (std::uint64_t k = 0; k < pattern.key_count(); ++k) {
    total += pattern.accesses(k);
  }
  for (std::size_t i = 0; i < fast_keys; ++i) {
    fast_requests += pattern.accesses(order[i]);
  }
  if (total == 0) return 0.0;
  return static_cast<double>(fast_requests) / static_cast<double>(total);
}

TailEstimate TailEstimator::estimate(const AccessPattern& pattern,
                                     const std::vector<std::uint64_t>& order,
                                     std::size_t fast_keys,
                                     const PerfBaselines& baselines) {
  TailEstimate est;
  est.fast_request_share = fast_share(pattern, order, fast_keys);
  const double wf = est.fast_request_share;
  const double ws = 1.0 - wf;
  const auto& hf = baselines.fast.latency_hist;
  const auto& hs = baselines.slow.latency_hist;
  MNEMO_EXPECTS(hf.count() > 0 && hs.count() > 0);
  est.p50_ns = stats::mixture_quantile(hf, wf, hs, ws, 0.50);
  est.p95_ns = stats::mixture_quantile(hf, wf, hs, ws, 0.95);
  est.p99_ns = stats::mixture_quantile(hf, wf, hs, ws, 0.99);
  return est;
}

}  // namespace mnemo::core
