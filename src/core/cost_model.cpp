#include "core/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace mnemo::core {

CostModel::CostModel(double price_factor) : p_(price_factor) {
  MNEMO_EXPECTS(price_factor > 0.0 && price_factor < 1.0);
}

double CostModel::reduction(std::uint64_t fast_bytes,
                            std::uint64_t total_bytes) const {
  MNEMO_EXPECTS(total_bytes > 0);
  MNEMO_EXPECTS(fast_bytes <= total_bytes);
  const auto f = static_cast<double>(fast_bytes);
  const auto c = static_cast<double>(total_bytes);
  return (f + (c - f) * p_) / c;
}

std::uint64_t CostModel::fast_bytes_for(double cost_factor,
                                        std::uint64_t total_bytes) const {
  MNEMO_EXPECTS(cost_factor >= p_ && cost_factor <= 1.0);
  const auto c = static_cast<double>(total_bytes);
  const double f = c * (cost_factor - p_) / (1.0 - p_);
  return static_cast<std::uint64_t>(
      std::clamp(std::llround(f), static_cast<long long>(0),
                 static_cast<long long>(total_bytes)));
}

}  // namespace mnemo::core
