#pragma once

#include <optional>
#include <string_view>

#include "core/baselines.hpp"
#include "core/estimate_engine.hpp"

namespace mnemo::core {

/// A chosen operating point: the cheapest configuration that satisfies the
/// performance SLO.
struct SloChoice {
  EstimatePoint point;
  double slowdown_vs_fast = 0.0;  ///< 1 - throughput/fast_throughput
  double cost_factor = 0.0;       ///< R(p) — lower is cheaper
  double savings_vs_fast = 0.0;   ///< 1 - cost_factor

  [[nodiscard]] friend bool operator==(const SloChoice&,
                                       const SloChoice&) = default;
};

/// What the advisor concluded — an explicit verdict, so "the SLO cannot be
/// met by any split" is a first-class result, not an empty optional the
/// caller has to interpret.
enum class SloOutcome : std::uint8_t {
  kChosen,          ///< a feasible split exists; `choice` holds it
  kNoFeasibleSplit,  ///< no point on the curve meets the SLO
};

std::string_view to_string(SloOutcome outcome);

/// Advisor verdict: the outcome plus the chosen point when one exists.
struct SloResult {
  SloOutcome outcome = SloOutcome::kNoFeasibleSplit;
  std::optional<SloChoice> choice;

  [[nodiscard]] bool feasible() const noexcept {
    return outcome == SloOutcome::kChosen;
  }
  [[nodiscard]] friend bool operator==(const SloResult&,
                                       const SloResult&) = default;
};

/// Finds the "sweet spot" the paper automates (Fig 9): the lowest-cost row
/// of a tradeoff curve whose estimated throughput stays within
/// `permissible_slowdown` of the FastMem-only baseline (default 10%, the
/// SLO used throughout the paper's evaluation). Cost ties break toward the
/// smaller FastMem footprint — the cheaper split to actually provision.
///
/// A negative permissible slowdown demands throughput *above* the
/// FastMem-only baseline — an SLO tighter than the best the platform
/// measured, which yields kNoFeasibleSplit on any curve bounded by the
/// fast baseline.
class SloAdvisor {
 public:
  static constexpr double kPaperSlowdown = 0.10;

  explicit SloAdvisor(double permissible_slowdown = kPaperSlowdown);

  /// Full verdict: cheapest SLO-satisfying point, or an explicit
  /// no-feasible-split outcome when even FastMem-only misses the floor.
  [[nodiscard]] SloResult advise(const EstimateCurve& curve,
                                 const PerfBaselines& baselines) const;

  /// Legacy optional-shaped view of advise() (nullopt == no feasible
  /// split); prefer advise() in new code.
  [[nodiscard]] std::optional<SloChoice> choose(
      const EstimateCurve& curve, const PerfBaselines& baselines) const;

  [[nodiscard]] double permissible_slowdown() const noexcept {
    return slowdown_;
  }

 private:
  double slowdown_;
};

}  // namespace mnemo::core
