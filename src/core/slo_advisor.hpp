#pragma once

#include <optional>

#include "core/baselines.hpp"
#include "core/estimate_engine.hpp"

namespace mnemo::core {

/// A chosen operating point: the cheapest configuration that satisfies the
/// performance SLO.
struct SloChoice {
  EstimatePoint point;
  double slowdown_vs_fast = 0.0;  ///< 1 - throughput/fast_throughput
  double cost_factor = 0.0;       ///< R(p) — lower is cheaper
  double savings_vs_fast = 0.0;   ///< 1 - cost_factor
};

/// Finds the "sweet spot" the paper automates (Fig 9): the lowest-cost row
/// of a tradeoff curve whose estimated throughput stays within
/// `permissible_slowdown` of the FastMem-only baseline (default 10%, the
/// SLO used throughout the paper's evaluation).
class SloAdvisor {
 public:
  static constexpr double kPaperSlowdown = 0.10;

  explicit SloAdvisor(double permissible_slowdown = kPaperSlowdown);

  /// Cheapest SLO-satisfying point, or nullopt if even FastMem-only fails
  /// (cannot happen for curves bounded by the fast baseline itself).
  [[nodiscard]] std::optional<SloChoice> choose(
      const EstimateCurve& curve, const PerfBaselines& baselines) const;

  [[nodiscard]] double permissible_slowdown() const noexcept {
    return slowdown_;
  }

 private:
  double slowdown_;
};

}  // namespace mnemo::core
