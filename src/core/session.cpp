#include "core/session.hpp"

#include <cstdio>
#include <sstream>
#include <utility>

#include "core/campaign.hpp"
#include "core/estimate_engine.hpp"
#include "core/pattern_engine.hpp"
#include "core/render.hpp"
#include "core/sensitivity_engine.hpp"
#include "core/slo_advisor.hpp"
#include "core/tiering.hpp"
#include "hybridmem/placement.hpp"
#include "kvstore/kvstore.hpp"
#include "util/assert.hpp"
#include "util/bytes.hpp"
#include "util/csv.hpp"
#include "util/hash.hpp"

namespace mnemo::core {

namespace {

SensitivityConfig to_sensitivity_config(const MnemoConfig& cfg) {
  SensitivityConfig s;
  s.store = cfg.store;
  s.platform = cfg.platform;
  s.payload_mode = cfg.payload_mode;
  s.repeats = cfg.repeats;
  s.seed = cfg.seed;
  s.threads = cfg.threads;
  s.faults = cfg.faults;
  s.cancel = cfg.cancel;
  s.scheduler = cfg.scheduler;
  s.group = cfg.group;
  return s;
}

/// Stage-entry cancellation point. Placed *after* the in-memory memo
/// check in each accessor: an answer this session already computed is
/// returned even past the deadline (it costs nothing), but no new work —
/// not even a disk load — starts for a canceled request.
void check_cancel(const MnemoConfig& cfg) {
  if (cfg.cancel != nullptr) cfg.cancel->check();
}

/// Workload identity: the materialized trace bytes. Uniform across CSV-
/// loaded and spec-generated workloads — two specs that materialize the
/// same requests share every cached artifact.
void hash_trace(util::StableHasher& h, const workload::Trace& trace) {
  h.str(trace.name());
  h.u64(trace.key_count());
  h.u64(trace.initial_key_count());
  h.u64_span(trace.key_sizes());
  h.u64(trace.requests().size());
  for (const workload::Request& req : trace.requests()) {
    h.u32(req.key);
    h.u8(static_cast<std::uint8_t>(req.op));
  }
}

void hash_node(util::StableHasher& h, const hybridmem::NodeSpec& node) {
  h.str(node.name);
  h.f64(node.latency_ns);
  h.f64(node.bandwidth_gbps);
  h.u64(node.capacity_bytes);
}

/// Every emulator constant a measurement depends on.
void hash_platform(util::StableHasher& h,
                   const hybridmem::EmulationProfile& p) {
  hash_node(h, p.fast);
  hash_node(h, p.slow);
  h.u64(p.llc_bytes);
  h.f64(p.llc_latency_ns);
  h.f64(p.llc_bandwidth_gbps);
  h.f64(p.llc_bypass_fraction);
}

void hash_fault_plan(util::StableHasher& h,
                     const faultinject::FaultPlan& plan) {
  h.u64(plan.seed);
  h.f64(plan.transient_read_rate);
  h.i32(plan.transient_max_retries);
  h.f64(plan.transient_retry_cost_ns);
  h.f64(plan.transient_recover_prob);
  h.f64(plan.poison_rate);
  h.f64(plan.poison_remap_cost_ns);
  h.u64(plan.bw_period_accesses);
  h.u64(plan.bw_window_accesses);
  h.f64(plan.bw_degraded_factor);
}

}  // namespace

Session::Session(workload::Trace trace, SessionConfig config)
    : trace_(std::move(trace)),
      config_(std::move(config)),
      own_store_(config_.shared_store != nullptr ? std::string()
                                                 : config_.cache_dir) {
  util::StableHasher h;
  hash_trace(h, trace_);
  trace_key_ = h.hex();
  if (config_.mnemo.ordering == OrderingPolicy::kExternal) {
    MNEMO_EXPECTS(config_.external_order.has_value());
  }
  if (config_.external_order) {
    MNEMO_EXPECTS(config_.external_order->size() == trace_.key_count());
  }
}

OrderingPolicy Session::effective_ordering() const {
  return config_.external_order ? OrderingPolicy::kExternal
                                : config_.mnemo.ordering;
}

std::string Session::trace_key() const { return trace_key_; }

std::string Session::characterize_key() const {
  util::StableHasher h;
  h.str("characterize");
  h.str(trace_key_);
  h.str(to_string(effective_ordering()));
  if (config_.external_order) h.u64_span(*config_.external_order);
  return h.hex();
}

std::string Session::measure_key() const {
  // Everything the campaign grid's output depends on — and nothing it
  // does not: thread count and fail policy change scheduling and
  // presentation, never measured bytes (DESIGN.md §6), so they are
  // deliberately absent and a cache written at --threads 8 serves a
  // --threads 1 run.
  util::StableHasher h;
  h.str("measure");
  h.str(trace_key_);
  h.str(kvstore::to_string(config_.mnemo.store));
  hash_platform(h, config_.mnemo.platform);
  h.u8(static_cast<std::uint8_t>(config_.mnemo.payload_mode));
  h.i32(config_.mnemo.repeats);
  h.u64(config_.mnemo.seed);
  hash_fault_plan(h, config_.mnemo.faults);
  return h.hex();
}

std::string Session::estimate_key() const {
  util::StableHasher h;
  h.str("estimate");
  h.str(measure_key());
  h.str(characterize_key());
  h.str(to_string(config_.mnemo.estimate_model));
  h.f64(config_.mnemo.price_factor);
  return h.hex();
}

std::string Session::advise_key() const {
  util::StableHasher h;
  h.str("advise");
  h.str(estimate_key());
  h.f64(config_.mnemo.slo_slowdown);
  return h.hex();
}

std::string Session::report_key() const {
  util::StableHasher h;
  h.str("report");
  h.str(advise_key());
  return h.hex();
}

void Session::trace_stage(std::string_view stage, const std::string& key,
                          bool from_cache, bool saved, bool joined) {
  traces_.push_back(StageTrace{std::string(stage), key, from_cache,
                               !from_cache && !joined, saved, joined});
}

void Session::adopt_measure(MeasureArtifact measure) {
  MNEMO_EXPECTS(!measure_);
  MNEMO_EXPECTS(!measure.degraded && measure.failures.empty());
  measure_ = std::move(measure);
  trace_stage(MeasureArtifact::kStage, measure_key(), false, false, true);
}

const CharacterizeArtifact& Session::characterize() {
  if (characterize_) return *characterize_;
  check_cancel(config_.mnemo);
  const std::string key = characterize_key();
  if (cache_on()) {
    if (auto cached = store().load<CharacterizeArtifact>(key)) {
      characterize_ = std::move(*cached);
      trace_stage(CharacterizeArtifact::kStage, key, true, false);
      return *characterize_;
    }
  }

  CharacterizeArtifact a;
  a.ordering = effective_ordering();
  a.pattern = PatternEngine::analyze(trace_);
  switch (a.ordering) {
    case OrderingPolicy::kTouchOrder:
      a.order = a.pattern.touch_order;
      break;
    case OrderingPolicy::kTiered:
      a.order = TieringEngine::priority_order(a.pattern);
      break;
    case OrderingPolicy::kExternal:
      a.order = *config_.external_order;
      break;
  }
  bool saved = false;
  if (cache_on()) saved = store().save(key, a).ok();
  characterize_ = std::move(a);
  trace_stage(CharacterizeArtifact::kStage, key, false, saved);
  return *characterize_;
}

const MeasureArtifact& Session::measure() {
  if (measure_) return *measure_;
  check_cancel(config_.mnemo);
  const std::string key = measure_key();
  if (cache_on()) {
    if (auto cached = store().load<MeasureArtifact>(key)) {
      // Belt and braces: a degraded artifact is never written (below),
      // but if one ever appears on disk, recompute rather than trust it.
      if (!cached->degraded && cached->failures.empty()) {
        measure_ = std::move(*cached);
        trace_stage(MeasureArtifact::kStage, key, true, false);
        return *measure_;
      }
    }
  }

  MeasureArtifact a;
  const SensitivityEngine sensitivity(to_sensitivity_config(config_.mnemo));
  if (config_.mnemo.faults.empty()) {
    a.baselines = sensitivity.baselines(trace_);
    // The grid the campaign just ran: {Fast, Slow} × repeats. Counted from
    // the grid shape, not the process-wide totals delta, so concurrent
    // sessions on a shared scheduler never bleed into each other's count.
    cells_run_ += grid_cells();
    bool saved = false;
    if (cache_on()) saved = store().save(key, a).ok();
    measure_ = std::move(a);
    trace_stage(MeasureArtifact::kStage, key, false, saved);
    return *measure_;
  }
  // Degraded-mode campaign (DESIGN.md §7): a cell is accepted only when
  // it is bit-identical to the fault-free platform; a lost baseline
  // quarantines the estimates instead of silently skewing them.
  CampaignRunner runner(config_.mnemo.threads, config_.mnemo.cancel,
                        config_.mnemo.scheduler, config_.mnemo.group);
  CampaignResult grid = runner.measure_grid_checked(
      sensitivity, trace_,
      {hybridmem::Placement(trace_.key_count(), hybridmem::NodeId::kFast),
       hybridmem::Placement(trace_.key_count(), hybridmem::NodeId::kSlow)});
  install_measured_grid(std::move(grid));
  return *measure_;
}

/// Everything after the checked baseline grid lands, shared by the sync
/// and async measure paths: artifact assembly, the degraded verdict, the
/// clean-only cache write, memoization, and the stage trace.
void Session::install_measured_grid(CampaignResult grid) {
  const std::string key = measure_key();
  MeasureArtifact a;
  a.failures = std::move(grid.failures);
  if (!grid.measurements[0] || !grid.measurements[1]) {
    a.degraded = true;
  } else {
    a.baselines.fast = *grid.measurements[0];
    a.baselines.slow = *grid.measurements[1];
  }
  cells_run_ += grid_cells();

  // Never cache a degraded grid as if it were clean: only an artifact
  // with zero quarantined cells may persist.
  bool saved = false;
  if (cache_on() && !a.degraded && a.failures.empty()) {
    saved = store().save(key, a).ok();
  }
  measure_ = std::move(a);
  trace_stage(MeasureArtifact::kStage, key, false, saved);
}

void Session::measure_async(std::shared_ptr<util::TaskScheduler::Group> group,
                            std::function<void(std::exception_ptr)> done) {
  MNEMO_EXPECTS(group != nullptr);
  // The cheap resolutions — memo hit, cancellation, disk probe — mirror
  // measure() exactly and settle inline, in the calling task. Only a real
  // campaign goes asynchronous: its cells are submitted to `group` and
  // `done` runs later as a scheduler task, with the exception the sync
  // path would have thrown (or null). Exactly-once either way.
  try {
    if (measure_) {
      done(nullptr);
      return;
    }
    check_cancel(config_.mnemo);
    const std::string key = measure_key();
    if (cache_on()) {
      if (auto cached = store().load<MeasureArtifact>(key)) {
        if (!cached->degraded && cached->failures.empty()) {
          measure_ = std::move(*cached);
          trace_stage(MeasureArtifact::kStage, key, true, false);
          done(nullptr);
          return;
        }
      }
    }
  } catch (...) {
    done(std::current_exception());
    return;
  }

  // The engine must outlive the in-flight cells, which outlive this
  // session method: the async grid keeps it alive via shared_ptr.
  auto engine = std::make_shared<const SensitivityEngine>(
      to_sensitivity_config(config_.mnemo));
  CampaignRunner::measure_grid_checked_async(
      std::move(engine), trace_,
      {hybridmem::Placement(trace_.key_count(), hybridmem::NodeId::kFast),
       hybridmem::Placement(trace_.key_count(), hybridmem::NodeId::kSlow)},
      config_.mnemo.cancel, std::move(group),
      [this, done = std::move(done)](CampaignRunner::AsyncOutcome outcome) {
        if (outcome.error != nullptr) {
          done(outcome.error);
          return;
        }
        install_measured_grid(std::move(outcome.grid));
        done(nullptr);
      });
}

const EstimateArtifact& Session::estimate() {
  if (estimate_) return *estimate_;
  check_cancel(config_.mnemo);
  const std::string key = estimate_key();
  if (cache_on()) {
    if (auto cached = store().load<EstimateArtifact>(key)) {
      estimate_ = std::move(*cached);
      trace_stage(EstimateArtifact::kStage, key, true, false);
      return *estimate_;
    }
  }

  EstimateArtifact a;
  const MeasureArtifact& m = measure();
  if (!m.degraded) {
    const CharacterizeArtifact& c = characterize();
    const EstimateEngine estimator(CostModel(config_.mnemo.price_factor),
                                   config_.mnemo.estimate_model);
    a.curve = estimator.estimate(c.pattern, c.order, m.baselines);
  }
  bool saved = false;
  if (cache_on() && !m.degraded) saved = store().save(key, a).ok();
  estimate_ = std::move(a);
  trace_stage(EstimateArtifact::kStage, key, false, saved);
  return *estimate_;
}

const AdviseArtifact& Session::advise() {
  if (advise_) return *advise_;
  check_cancel(config_.mnemo);
  const std::string key = advise_key();
  if (cache_on()) {
    if (auto cached = store().load<AdviseArtifact>(key)) {
      advise_ = std::move(*cached);
      trace_stage(AdviseArtifact::kStage, key, true, false);
      return *advise_;
    }
  }

  AdviseArtifact a;
  a.slo_slowdown = config_.mnemo.slo_slowdown;
  a.price_factor = config_.mnemo.price_factor;
  const MeasureArtifact& m = measure();
  if (m.degraded) {
    a.degraded = true;
  } else {
    const SloAdvisor advisor(config_.mnemo.slo_slowdown);
    a.result = advisor.advise(estimate().curve, m.baselines);
  }
  bool saved = false;
  if (cache_on() && !m.degraded) saved = store().save(key, a).ok();
  advise_ = std::move(a);
  trace_stage(AdviseArtifact::kStage, key, false, saved);
  return *advise_;
}

const ReportArtifact& Session::report() {
  if (report_) return *report_;
  check_cancel(config_.mnemo);
  const std::string key = report_key();
  if (cache_on()) {
    if (auto cached = store().load<ReportArtifact>(key)) {
      report_ = std::move(*cached);
      trace_stage(ReportArtifact::kStage, key, true, false);
      return *report_;
    }
  }

  ReportArtifact a;
  std::ostringstream text;
  text << "workload: " << trace_.name() << " on "
       << kvstore::to_string(config_.mnemo.store) << " ("
       << to_string(effective_ordering()) << " ordering, "
       << to_string(config_.mnemo.estimate_model) << " model)\n";
  const MeasureArtifact& m = measure();
  text << render_measure(m);
  if (!m.degraded) {
    text << render_verdict(advise());

    // The paper's CSV artifact, rendered to a string so cold and warm
    // runs can be diffed byte for byte (MnemoReport::write_csv writes the
    // identical bytes to a file).
    std::ostringstream csv_stream;
    {
      util::csv::Writer w(csv_stream);
      w.row({"key_id", "est_throughput_ops", "cost_reduction_factor"});
      const EstimateCurve& curve = estimate().curve;
      for (std::size_t i = 1; i < curve.points.size(); ++i) {
        const EstimatePoint& p = curve.points[i];
        w.field(p.last_key)
            .field(p.est_throughput_ops, 10)
            .field(p.cost_factor, 6);
        w.end_row();
      }
    }
    a.csv = csv_stream.str();
  }
  a.text = text.str();

  bool saved = false;
  if (cache_on() && !m.degraded) saved = store().save(key, a).ok();
  report_ = std::move(a);
  trace_stage(ReportArtifact::kStage, key, false, saved);
  return *report_;
}

void Session::set_slo(double slo_slowdown) {
  if (slo_slowdown == config_.mnemo.slo_slowdown) return;
  config_.mnemo.slo_slowdown = slo_slowdown;
  advise_.reset();
  report_.reset();
}

void Session::set_price(double price_factor) {
  if (price_factor == config_.mnemo.price_factor) return;
  config_.mnemo.price_factor = price_factor;
  estimate_.reset();
  advise_.reset();
  report_.reset();
}

std::string Session::explain_cache() const {
  std::ostringstream out;
  out << "cache: "
      << (store().enabled()
              ? (config_.use_cache ? store().dir() : store().dir() +
                                                        " (bypassed)")
              : "disabled")
      << "\n";
  out << "stages:\n";
  for (const StageTrace& t : traces_) {
    out << "  " << t.stage;
    for (std::size_t i = t.stage.size(); i < 12; ++i) out << ' ';
    out << ' ' << t.key << "  "
        << (t.from_cache
                ? "cached"
                : (t.joined ? "joined (single-flight)"
                            : (t.saved ? "computed, saved" : "computed")))
        << "\n";
  }
  bool any_reject = false;
  for (const StoreEvent& e : store().events()) {
    if (e.hit || e.miss == CacheMiss::kAbsent ||
        e.miss == CacheMiss::kDisabled) {
      continue;
    }
    if (!any_reject) {
      out << "rejected artifacts (treated as misses):\n";
      any_reject = true;
    }
    out << "  " << e.stage << '-' << e.key << ".mna: " << to_string(e.miss);
    if (!e.detail.empty()) out << " (" << e.detail << ")";
    out << "\n";
  }
  return out.str();
}

MnemoReport Session::to_report() {
  MnemoReport r;
  r.workload = trace_.name();
  r.store = config_.mnemo.store;
  const CharacterizeArtifact& c = characterize();
  r.ordering = c.ordering;
  r.pattern = c.pattern;
  r.order = c.order;
  const MeasureArtifact& m = measure();
  r.cell_failures = m.failures;
  r.degraded = m.degraded;
  if (m.degraded) return r;
  r.baselines = m.baselines;
  r.curve = estimate().curve;
  r.slo_choice = advise().result.choice;
  return r;
}

}  // namespace mnemo::core
