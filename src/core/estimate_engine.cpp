#include "core/estimate_engine.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace mnemo::core {

const EstimatePoint& EstimateCurve::at_budget(
    std::uint64_t fast_bytes) const {
  MNEMO_EXPECTS(!points.empty());
  const EstimatePoint* best = &points.front();
  for (const EstimatePoint& p : points) {
    if (p.fast_bytes <= fast_bytes) best = &p;
  }
  return *best;
}

double EstimateCurve::throughput_at(std::uint64_t fast_bytes) const {
  return at_budget(fast_bytes).est_throughput_ops;
}

std::string_view to_string(EstimateModel model) {
  return model == EstimateModel::kUniformDelta ? "uniform_delta"
                                               : "size_aware";
}

EstimateEngine::EstimateEngine(CostModel cost_model, EstimateModel model)
    : cost_model_(cost_model), model_(model) {}

EstimateCurve EstimateEngine::estimate(
    const AccessPattern& pattern, const std::vector<std::uint64_t>& order,
    const PerfBaselines& baselines) const {
  MNEMO_EXPECTS(order.size() == pattern.key_count());

  const double read_delta = baselines.read_delta_ns();
  const double write_delta = baselines.write_delta_ns();
  const auto requests = static_cast<double>(baselines.slow.requests);
  const std::uint64_t total_bytes = pattern.total_bytes();

  // Per-key refund when the key moves to FastMem.
  auto uniform_refund = [&](std::uint64_t key) {
    return static_cast<double>(pattern.reads[key]) * read_delta +
           static_cast<double>(pattern.writes[key]) * write_delta;
  };
  auto size_aware_refund = [&](std::uint64_t key) {
    const auto bytes = static_cast<double>(pattern.sizes[key]);
    const double dr = baselines.slow.read_vs_bytes.at(bytes) -
                      baselines.fast.read_vs_bytes.at(bytes);
    const double dw = baselines.slow.write_vs_bytes.at(bytes) -
                      baselines.fast.write_vs_bytes.at(bytes);
    return static_cast<double>(pattern.reads[key]) * dr +
           static_cast<double>(pattern.writes[key]) * dw;
  };

  std::vector<double> refunds(order.size());
  double total_refund = 0.0;
  const bool size_aware = model_ == EstimateModel::kSizeAware;
  for (std::size_t i = 0; i < order.size(); ++i) {
    refunds[i] = size_aware ? size_aware_refund(order[i])
                            : uniform_refund(order[i]);
    total_refund += refunds[i];
  }
  // Pin the curve to both measured baselines: scale the per-key refunds
  // so they sum exactly to the measured runtime gap. For the uniform
  // model this is an identity (factor 1 up to float error); for the
  // size-aware model it absorbs regression residuals. If the refunds are
  // degenerate (no size information at all), fall back to uniform deltas.
  const double gap = baselines.slow.runtime_ns - baselines.fast.runtime_ns;
  if (total_refund <= 0.0 && size_aware) {
    for (std::size_t i = 0; i < order.size(); ++i) {
      refunds[i] = uniform_refund(order[i]);
      total_refund += refunds[i];
    }
  }
  const double scale = total_refund > 0.0 ? gap / total_refund : 0.0;

  EstimateCurve curve;
  curve.points.reserve(order.size() + 1);

  double runtime = baselines.slow.runtime_ns;
  std::uint64_t fast_bytes = 0;

  auto emit = [&](std::uint64_t last_key, std::size_t fast_keys) {
    EstimatePoint p;
    p.last_key = last_key;
    p.fast_keys = fast_keys;
    p.fast_bytes = fast_bytes;
    p.est_runtime_ns = runtime;
    p.est_avg_latency_ns = runtime / requests;
    p.est_throughput_ops = requests / (runtime / 1e9);
    p.cost_factor = cost_model_.reduction(fast_bytes, total_bytes);
    curve.points.push_back(p);
  };

  emit(/*last_key=*/0, /*fast_keys=*/0);  // SlowMem-only bound
  for (std::size_t i = 0; i < order.size(); ++i) {
    const std::uint64_t key = order[i];
    runtime -= refunds[i] * scale;
    fast_bytes += pattern.sizes[key];
    emit(key, i + 1);
  }
  // With every key migrated the curve lands on the FastMem baseline by
  // construction (modulo accumulated float error).
  MNEMO_ENSURES(std::fabs(runtime - baselines.fast.runtime_ns) <
                0.001 * baselines.fast.runtime_ns + 1.0);
  return curve;
}

double estimate_error_pct(double real, double estimate) {
  MNEMO_EXPECTS(real != 0.0);
  return (real - estimate) / real * 100.0;
}

}  // namespace mnemo::core
