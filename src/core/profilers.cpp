#include "core/profilers.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>

#include "core/pattern_engine.hpp"
#include "core/tiering.hpp"
#include "stats/regression.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"
#include "workload/suite.hpp"

namespace mnemo::core {

ProfilerOutput run_mnemot_profiler(const workload::Trace& trace,
                                   const SensitivityEngine& engine) {
  ProfilerOutput out;
  out.strategy = "MnemoT";

  // Input preparation: the descriptor already *is* the input — Mnemo needs
  // only the key/request sequence plus key-value sizes, no server
  // instrumentation. Cost: one pass to build the access pattern.
  util::WallTimer prep;
  const AccessPattern pattern = PatternEngine::analyze(trace);
  out.costs.input_prep_s = prep.elapsed_s();

  util::WallTimer base;
  out.baselines = engine.baselines(trace);
  out.costs.baselines_s = base.elapsed_s();

  // Tiering: weight = accesses/size from the descriptor alone.
  util::WallTimer tier;
  out.order = TieringEngine::priority_order(pattern);
  out.costs.tiering_s = tier.elapsed_s();
  return out;
}

namespace {

/// One instrumented memory-access event, as a Pin-style tool would record
/// (address proxy, object, size, kind). 32 bytes per event.
struct AccessEvent {
  std::uint64_t object;
  std::uint64_t bytes;
  std::uint32_t thread;
  std::uint8_t is_write;
};

}  // namespace

ProfilerOutput run_instrumented_profiler(const workload::Trace& trace,
                                         const SensitivityEngine& engine) {
  ProfilerOutput out;
  out.strategy = "instrumentation (X-Mem/Unimem style)";

  // Input preparation: the target must be rebuilt against the profiler's
  // custom allocation API so object identities are visible to the shim.
  // We model the mechanical part — walking the dataset and wrapping every
  // object in a registration record — not the (human) time to learn the
  // server internals, which Table IV can only describe qualitatively.
  util::WallTimer prep;
  std::unordered_map<std::uint64_t, std::uint64_t> registry;
  registry.reserve(trace.key_count());
  for (std::uint64_t k = 0; k < trace.key_count(); ++k) {
    registry.emplace(k, trace.size_of(k));
  }
  out.costs.input_prep_s = prep.elapsed_s();

  util::WallTimer base;
  out.baselines = engine.baselines(trace);
  out.costs.baselines_s = base.elapsed_s();

  // Tiering by full access monitoring: replay the workload through an
  // instrumentation shim that emits one event per cache-line-granular
  // touch, then aggregate weights from the event log. This is the
  // per-access cost structure that makes existing profilers 10-40x slower.
  util::WallTimer tier;
  std::vector<AccessEvent> log;
  constexpr std::uint64_t kLine = 64;
  // Reserve conservatively; the log grows with total touched lines.
  log.reserve(trace.requests().size() * 8);
  for (const workload::Request& r : trace.requests()) {
    const std::uint64_t bytes = trace.size_of(r.key);
    const std::uint64_t lines = (bytes + kLine - 1) / kLine;
    // Event-per-line emission, sampled 1:16 like PEBS-style tooling, so
    // the log stays bounded while preserving the cost shape.
    for (std::uint64_t line = 0; line < lines; line += 16) {
      log.push_back(AccessEvent{
          r.key, kLine, 0,
          static_cast<std::uint8_t>(r.op == workload::OpType::kUpdate)});
    }
  }
  std::unordered_map<std::uint64_t, std::uint64_t> touches;
  touches.reserve(trace.key_count());
  for (const AccessEvent& e : log) ++touches[e.object];

  std::vector<std::uint64_t> order(trace.key_count());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint64_t a, std::uint64_t b) {
                     const double wa =
                         static_cast<double>(touches[a]) /
                         static_cast<double>(registry[a]);
                     const double wb =
                         static_cast<double>(touches[b]) /
                         static_cast<double>(registry[b]);
                     if (wa != wb) return wa > wb;
                     return a < b;
                   });
  out.order = std::move(order);
  out.costs.tiering_s = tier.elapsed_s();
  return out;
}

ProfilerOutput run_ml_baseline_profiler(const workload::Trace& trace,
                                        const SensitivityEngine& engine) {
  ProfilerOutput out;
  out.strategy = "one baseline + learned model (Tahoe style)";
  out.fast_baseline_inferred = true;

  util::WallTimer prep;
  const AccessPattern pattern = PatternEngine::analyze(trace);
  out.costs.input_prep_s = prep.elapsed_s();

  util::WallTimer base;
  // Training-data collection: run both baselines for a set of calibration
  // workloads (this is the cost Tahoe's accounting hides) and fit
  //   fast_runtime_per_req ~ [1, slow_runtime_per_req, avg_bytes, read_frac]
  std::vector<std::vector<double>> features;
  std::vector<double> targets;
  std::uint64_t calib_seed = 0xca11b;
  for (const workload::WorkloadSpec& spec :
       workload::paper_suite(calib_seed)) {
    workload::WorkloadSpec small = spec;
    small.key_count = 1'000;
    small.request_count = 10'000;
    small.seed ^= 0x7ea0;
    const workload::Trace calib = workload::Trace::generate(small);
    const PerfBaselines b = engine.baselines(calib);
    const double reqs = static_cast<double>(b.slow.requests);
    features.push_back(
        {1.0, b.slow.runtime_ns / reqs,
         static_cast<double>(calib.dataset_bytes()) /
             static_cast<double>(calib.key_count()),
         static_cast<double>(calib.total_reads()) / reqs});
    targets.push_back(b.fast.runtime_ns / reqs);
  }
  const std::vector<double> beta = stats::ridge(features, targets, 1e-6);

  // Deployment: only the SlowMem baseline of the target workload runs.
  PerfBaselines target;
  target.slow = engine.measure(
      trace,
      hybridmem::Placement(trace.key_count(), hybridmem::NodeId::kSlow));
  const double reqs = static_cast<double>(target.slow.requests);
  const std::vector<double> x = {
      1.0, target.slow.runtime_ns / reqs,
      static_cast<double>(trace.dataset_bytes()) /
          static_cast<double>(trace.key_count()),
      static_cast<double>(trace.total_reads()) / reqs};
  double inferred_per_req = 0.0;
  for (std::size_t i = 0; i < beta.size(); ++i) inferred_per_req += beta[i] * x[i];

  target.fast = target.slow;  // copy counters/shape
  target.fast.runtime_ns = inferred_per_req * reqs;
  target.fast.avg_latency_ns = inferred_per_req;
  target.fast.throughput_ops = reqs / (target.fast.runtime_ns / 1e9);
  // Split the inferred runtime across read/write means in the slow run's
  // proportions (the model has no finer information).
  const double scale = target.fast.runtime_ns / target.slow.runtime_ns;
  target.fast.avg_read_ns = target.slow.avg_read_ns * scale;
  target.fast.avg_write_ns = target.slow.avg_write_ns * scale;
  target.fast.p95_ns = target.slow.p95_ns * scale;
  target.fast.p99_ns = target.slow.p99_ns * scale;
  out.baselines = target;
  out.costs.baselines_s = base.elapsed_s();

  // How wrong was the inference? (measured against ground truth)
  const RunMeasurement truth = engine.measure(
      trace,
      hybridmem::Placement(trace.key_count(), hybridmem::NodeId::kFast));
  out.inferred_fast_runtime_error_pct =
      (truth.runtime_ns - target.fast.runtime_ns) / truth.runtime_ns * 100.0;

  util::WallTimer tier;
  out.order = TieringEngine::priority_order(pattern);
  out.costs.tiering_s = tier.elapsed_s();
  return out;
}

}  // namespace mnemo::core
