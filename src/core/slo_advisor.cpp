#include "core/slo_advisor.hpp"

#include "util/assert.hpp"

namespace mnemo::core {

SloAdvisor::SloAdvisor(double permissible_slowdown)
    : slowdown_(permissible_slowdown) {
  MNEMO_EXPECTS(permissible_slowdown >= 0.0 && permissible_slowdown < 1.0);
}

std::optional<SloChoice> SloAdvisor::choose(
    const EstimateCurve& curve, const PerfBaselines& baselines) const {
  MNEMO_EXPECTS(!curve.points.empty());
  const double floor_throughput =
      baselines.fast.throughput_ops * (1.0 - slowdown_);

  const EstimatePoint* best = nullptr;
  for (const EstimatePoint& p : curve.points) {
    if (p.est_throughput_ops < floor_throughput) continue;
    if (best == nullptr || p.cost_factor < best->cost_factor) best = &p;
  }
  if (best == nullptr) return std::nullopt;

  SloChoice choice;
  choice.point = *best;
  choice.slowdown_vs_fast =
      1.0 - best->est_throughput_ops / baselines.fast.throughput_ops;
  choice.cost_factor = best->cost_factor;
  choice.savings_vs_fast = 1.0 - best->cost_factor;
  return choice;
}

}  // namespace mnemo::core
