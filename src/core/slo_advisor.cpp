#include "core/slo_advisor.hpp"

#include "util/assert.hpp"

namespace mnemo::core {

std::string_view to_string(SloOutcome outcome) {
  switch (outcome) {
    case SloOutcome::kChosen:
      return "chosen";
    case SloOutcome::kNoFeasibleSplit:
      return "no_feasible_split";
  }
  return "?";
}

SloAdvisor::SloAdvisor(double permissible_slowdown)
    : slowdown_(permissible_slowdown) {
  MNEMO_EXPECTS(permissible_slowdown > -1.0 && permissible_slowdown < 1.0);
}

SloResult SloAdvisor::advise(const EstimateCurve& curve,
                             const PerfBaselines& baselines) const {
  MNEMO_EXPECTS(!curve.points.empty());
  const double floor_throughput =
      baselines.fast.throughput_ops * (1.0 - slowdown_);

  const EstimatePoint* best = nullptr;
  for (const EstimatePoint& p : curve.points) {
    if (p.est_throughput_ops < floor_throughput) continue;
    // Strictly cheaper wins; equal cost breaks toward the smaller FastMem
    // footprint (the split that is cheaper to provision).
    if (best == nullptr || p.cost_factor < best->cost_factor ||
        (p.cost_factor == best->cost_factor &&
         p.fast_bytes < best->fast_bytes)) {
      best = &p;
    }
  }
  if (best == nullptr) return SloResult{SloOutcome::kNoFeasibleSplit, {}};

  SloChoice choice;
  choice.point = *best;
  choice.slowdown_vs_fast =
      1.0 - best->est_throughput_ops / baselines.fast.throughput_ops;
  choice.cost_factor = best->cost_factor;
  choice.savings_vs_fast = 1.0 - best->cost_factor;
  return SloResult{SloOutcome::kChosen, choice};
}

std::optional<SloChoice> SloAdvisor::choose(
    const EstimateCurve& curve, const PerfBaselines& baselines) const {
  return advise(curve, baselines).choice;
}

}  // namespace mnemo::core
