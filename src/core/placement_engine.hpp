#pragma once

#include <cstdint>
#include <vector>

#include "core/estimate_engine.hpp"
#include "hybridmem/placement.hpp"
#include "kvstore/dual_server.hpp"
#include "workload/trace.hpp"

namespace mnemo::core {

/// The paper's Placement Engine: turns a selected row of the estimate
/// curve into a static key placement and (optionally) populates the
/// FastServer/SlowServer pair with the actual dataset prior to execution.
/// Mnemo provides static allocations only — no dynamic migration.
class PlacementEngine {
 public:
  /// Placement realizing `point`: the first `point.fast_keys` keys of
  /// `order` go to FastMem.
  [[nodiscard]] static hybridmem::Placement placement_for(
      const std::vector<std::uint64_t>& order, const EstimatePoint& point);

  /// Placement for an explicit FastMem byte budget along `order`.
  [[nodiscard]] static hybridmem::Placement placement_for_budget(
      const std::vector<std::uint64_t>& order,
      const std::vector<std::uint64_t>& key_sizes,
      std::uint64_t fast_budget_bytes);

  /// Statically place the dataset onto the two servers (the optional last
  /// step the user may also perform manually).
  static void populate(kvstore::DualServer& servers,
                       const workload::Trace& trace,
                       const hybridmem::Placement& placement);
};

}  // namespace mnemo::core
