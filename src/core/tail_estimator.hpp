#pragma once

#include <cstdint>
#include <vector>

#include "core/baselines.hpp"
#include "core/pattern_engine.hpp"

namespace mnemo::core {

/// Estimated tail latencies for one capacity split.
struct TailEstimate {
  double p50_ns = 0.0;
  double p95_ns = 0.0;
  double p99_ns = 0.0;
  double fast_request_share = 0.0;  ///< fraction of requests served fast
};

/// Tail-latency estimator — an extension beyond the paper, which states
/// that its simple analytical model "is not sufficient to capture the
/// variabilities of the tail latencies" and only reports them.
///
/// Model: a request to a FastMem-resident key draws its service time from
/// the FastMem-only baseline's latency distribution; a SlowMem request
/// from the SlowMem-only baseline's. A capacity split that serves a
/// fraction w of requests from FastMem therefore has the latency
/// distribution  w·Fast + (1-w)·Slow, whose quantiles come straight from
/// the two baseline histograms the Sensitivity Engine already collects.
/// The approximation ignores conditional structure (hot keys may be
/// systematically cheaper than the baseline average), which is exactly
/// what the validation in bench/fig8_accuracy quantifies.
class TailEstimator {
 public:
  /// Requests-served-fast share for a placement prefix of `order`.
  [[nodiscard]] static double fast_share(
      const AccessPattern& pattern, const std::vector<std::uint64_t>& order,
      std::size_t fast_keys);

  /// Mixture tail estimate at a placement prefix.
  [[nodiscard]] static TailEstimate estimate(
      const AccessPattern& pattern, const std::vector<std::uint64_t>& order,
      std::size_t fast_keys, const PerfBaselines& baselines);
};

}  // namespace mnemo::core
