#include "core/placement_engine.hpp"

#include "util/assert.hpp"

namespace mnemo::core {

hybridmem::Placement PlacementEngine::placement_for(
    const std::vector<std::uint64_t>& order, const EstimatePoint& point) {
  return hybridmem::Placement::from_order(order, point.fast_keys);
}

hybridmem::Placement PlacementEngine::placement_for_budget(
    const std::vector<std::uint64_t>& order,
    const std::vector<std::uint64_t>& key_sizes,
    std::uint64_t fast_budget_bytes) {
  return hybridmem::Placement::from_order_with_budget(order, key_sizes,
                                                      fast_budget_bytes);
}

void PlacementEngine::populate(kvstore::DualServer& servers,
                               const workload::Trace& trace,
                               const hybridmem::Placement& placement) {
  const util::Status loaded = servers.populate(trace, placement);
  MNEMO_ASSERT(loaded.ok() && "engine-produced placements must fit");
}

}  // namespace mnemo::core
