#include "core/placement_engine.hpp"

namespace mnemo::core {

hybridmem::Placement PlacementEngine::placement_for(
    const std::vector<std::uint64_t>& order, const EstimatePoint& point) {
  return hybridmem::Placement::from_order(order, point.fast_keys);
}

hybridmem::Placement PlacementEngine::placement_for_budget(
    const std::vector<std::uint64_t>& order,
    const std::vector<std::uint64_t>& key_sizes,
    std::uint64_t fast_budget_bytes) {
  return hybridmem::Placement::from_order_with_budget(order, key_sizes,
                                                      fast_budget_bytes);
}

void PlacementEngine::populate(kvstore::DualServer& servers,
                               const workload::Trace& trace,
                               const hybridmem::Placement& placement) {
  servers.populate(trace, placement);
}

}  // namespace mnemo::core
