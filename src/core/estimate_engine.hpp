#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/baselines.hpp"
#include "core/cost_model.hpp"
#include "core/pattern_engine.hpp"

namespace mnemo::core {

/// One row of Mnemo's output (Section IV "Interfacing with Mnemo"): after
/// tiering the first `fast_keys` keys of the ordering into FastMem, the
/// estimated performance and the memory-system cost factor.
struct EstimatePoint {
  std::uint64_t last_key = 0;    ///< key this row added to FastMem
  std::size_t fast_keys = 0;     ///< keys resident in FastMem
  std::uint64_t fast_bytes = 0;  ///< FastMem capacity this row implies
  double est_runtime_ns = 0.0;
  double est_throughput_ops = 0.0;
  double est_avg_latency_ns = 0.0;
  double cost_factor = 0.0;  ///< R(p) at this capacity split

  [[nodiscard]] friend bool operator==(const EstimatePoint&,
                                       const EstimatePoint&) = default;
};

/// The full tradeoff curve: row 0 is the SlowMem-only configuration, the
/// last row the FastMem-only one; each intermediate row moves one more key
/// of the ordering into FastMem.
struct EstimateCurve {
  std::vector<EstimatePoint> points;

  /// The point whose FastMem capacity is closest to `fast_bytes` from
  /// below (i.e. the configuration a budget of fast_bytes can realize).
  [[nodiscard]] const EstimatePoint& at_budget(std::uint64_t fast_bytes) const;

  /// Estimated throughput at a FastMem byte budget (convenience).
  [[nodiscard]] double throughput_at(std::uint64_t fast_bytes) const;

  [[nodiscard]] friend bool operator==(const EstimateCurve&,
                                       const EstimateCurve&) = default;
};

/// How a key's per-request SlowMem penalty ("refund" when it moves to
/// FastMem) is derived from the baselines.
enum class EstimateModel {
  /// The paper's model: every read refunds the workload-wide average
  /// read delta, every write the average write delta. Exact for
  /// homogeneous record sizes; biased when the ordering correlates with
  /// size (e.g. MnemoT's accesses/size priority on a mixed-size dataset).
  kUniformDelta,
  /// Per-key deltas from the baselines' service-vs-bytes regression
  /// lines, normalized so the curve still lands exactly on both measured
  /// baselines. Degenerates to kUniformDelta on homogeneous sizes.
  kSizeAware,
};

std::string_view to_string(EstimateModel model);

/// The paper's Estimate Engine. Takes the performance baselines from the
/// Sensitivity Engine, the access pattern from the Pattern Engine, and the
/// cost-reduction factor p, and computes — analytically, in one pass —
/// the workload's estimated runtime/throughput for incremental tiering of
/// the key space:
///
///   runtime(prefix) = SlowRuntime
///     - sum_{key in FastMem prefix} [ reads(key)  * dr(key)
///                                   + writes(key) * dw(key) ]
///
/// i.e. every key moved to FastMem refunds its requests' SlowMem penalty;
/// dr/dw come from the EstimateModel. (The paper prints the model in
/// inverted delta form; this is the consistent reading — see DESIGN.md §3.)
class EstimateEngine {
 public:
  explicit EstimateEngine(CostModel cost_model = CostModel{},
                          EstimateModel model = EstimateModel::kSizeAware);

  /// Estimate along `order` (every prefix of it, key granularity).
  [[nodiscard]] EstimateCurve estimate(
      const AccessPattern& pattern, const std::vector<std::uint64_t>& order,
      const PerfBaselines& baselines) const;

  [[nodiscard]] EstimateModel model() const noexcept { return model_; }

  [[nodiscard]] const CostModel& cost_model() const noexcept {
    return cost_model_;
  }

 private:
  CostModel cost_model_;
  EstimateModel model_;
};

/// Percentage error between a real measurement r and estimate e, as the
/// paper tracks it: (r - e) / r * 100.
double estimate_error_pct(double real, double estimate);

}  // namespace mnemo::core
