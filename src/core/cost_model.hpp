#pragma once

#include <cstdint>

namespace mnemo::core {

/// The paper's memory-system cost model (Section II, Table II). With a
/// dataset of C bytes split into F bytes of FastMem and S = C - F bytes of
/// SlowMem, and SlowMem p times cheaper per byte than FastMem, the hybrid
/// system costs
///
///   R(p) = (F + (C - F) * p) / C
///
/// of the FastMem-only cost. R ranges from p (everything in SlowMem) to
/// 1.0 (everything in FastMem). The paper fixes p = 0.2 from industry
/// price projections; real deployments derive it from hardware or VM
/// pricing.
class CostModel {
 public:
  static constexpr double kPaperPriceFactor = 0.2;

  explicit CostModel(double price_factor = kPaperPriceFactor);

  [[nodiscard]] double price_factor() const noexcept { return p_; }

  /// Cost-reduction factor for `fast_bytes` of FastMem out of
  /// `total_bytes` of data. Requires fast_bytes <= total_bytes.
  [[nodiscard]] double reduction(std::uint64_t fast_bytes,
                                 std::uint64_t total_bytes) const;

  /// Inverse: FastMem bytes implied by a target cost factor.
  [[nodiscard]] std::uint64_t fast_bytes_for(double cost_factor,
                                             std::uint64_t total_bytes) const;

  /// The floor R(p) = p (SlowMem-only) and ceiling 1.0 (FastMem-only).
  [[nodiscard]] double floor() const noexcept { return p_; }
  [[nodiscard]] static double ceiling() noexcept { return 1.0; }

 private:
  double p_;
};

}  // namespace mnemo::core
