#include "core/migration.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "core/pattern_engine.hpp"
#include "core/tiering.hpp"
#include "hybridmem/hybrid_memory.hpp"
#include "kvstore/dual_server.hpp"
#include "stats/summary.hpp"
#include "util/assert.hpp"

namespace mnemo::core {

DynamicTierer::DynamicTierer(SensitivityConfig sensitivity,
                             MigrationConfig migration)
    : sensitivity_(std::move(sensitivity)), migration_(migration) {
  MNEMO_EXPECTS(migration_.fast_budget_bytes > 0);
  MNEMO_EXPECTS(migration_.epoch_requests > 0);
  MNEMO_EXPECTS(migration_.ewma_alpha > 0.0 && migration_.ewma_alpha <= 1.0);
}

namespace {

hybridmem::EmulationProfile sized_platform(
    const hybridmem::EmulationProfile& base, const workload::Trace& trace) {
  hybridmem::EmulationProfile platform = base;
  const std::uint64_t need = std::max<std::uint64_t>(
      trace.dataset_bytes() * 2, 64ULL * 1024 * 1024);
  platform.fast.capacity_bytes = std::max(platform.fast.capacity_bytes, need);
  platform.slow.capacity_bytes = std::max(platform.slow.capacity_bytes, need);
  return platform;
}

/// Circular mean position of the epoch's accesses over the key ring
/// [0, n): keys are mapped to angles so wrap-around (key n-1 -> key 0)
/// averages correctly. Returns a position in [0, n).
double circular_centroid(const std::vector<std::uint64_t>& counts) {
  const auto n = static_cast<double>(counts.size());
  double sx = 0.0;
  double sy = 0.0;
  for (std::size_t k = 0; k < counts.size(); ++k) {
    const double theta = 2.0 * M_PI * static_cast<double>(k) / n;
    sx += static_cast<double>(counts[k]) * std::cos(theta);
    sy += static_cast<double>(counts[k]) * std::sin(theta);
  }
  if (sx == 0.0 && sy == 0.0) return 0.0;
  double angle = std::atan2(sy, sx);
  if (angle < 0.0) angle += 2.0 * M_PI;
  return angle / (2.0 * M_PI) * n;
}

/// Signed shortest ring distance from `from` to `to` over a ring of n.
double ring_delta(double from, double to, double n) {
  double d = to - from;
  while (d > n / 2.0) d -= n;
  while (d < -n / 2.0) d += n;
  return d;
}

RunMeasurement summarize(std::vector<double>& latencies,
                         std::uint64_t reads, std::uint64_t writes,
                         double runtime_ns) {
  RunMeasurement m;
  m.requests = latencies.size();
  m.reads = reads;
  m.writes = writes;
  m.runtime_ns = runtime_ns;
  m.avg_latency_ns = runtime_ns / static_cast<double>(m.requests);
  m.throughput_ops = static_cast<double>(m.requests) / (runtime_ns / 1e9);
  std::sort(latencies.begin(), latencies.end());
  m.p95_ns = stats::percentile_sorted(latencies, 0.95);
  m.p99_ns = stats::percentile_sorted(latencies, 0.99);
  return m;
}

}  // namespace

MigrationResult DynamicTierer::run(const workload::Trace& trace) const {
  hybridmem::HybridMemory memory(
      sized_platform(sensitivity_.platform, trace));
  kvstore::StoreConfig store_cfg;
  store_cfg.payload_mode = sensitivity_.payload_mode;
  store_cfg.seed = sensitivity_.seed;
  kvstore::DualServer servers(memory, sensitivity_.store, store_cfg);

  // Initial placement: fill the budget in key-ID order (no foresight).
  std::vector<std::uint64_t> id_order(trace.key_count());
  std::iota(id_order.begin(), id_order.end(), 0);
  const auto initial = hybridmem::Placement::from_order_with_budget(
      id_order, trace.key_sizes(), migration_.fast_budget_bytes);
  {
    const util::Status loaded = servers.populate(trace, initial);
    MNEMO_ASSERT(loaded.ok() && "budgeted initial placement must fit");
  }
  memory.drop_caches();
  // Same convention as the Sensitivity Engine: faults hit the serving
  // window, not the load phase. The dynamic tierer uses one deployment
  // for the whole trace, so a single stream suffices.
  if (!sensitivity_.faults.empty()) {
    memory.arm_faults(sensitivity_.faults, 0);
  }

  MigrationResult result;
  std::vector<double> scores(trace.key_count(), 0.0);
  std::vector<std::uint64_t> epoch_counts(trace.key_count(), 0);
  double prev_centroid = -1.0;
  double velocity = 0.0;  ///< keys/epoch the hot zone moves (EWMA-smoothed)
  // Keys beyond this are not inserted yet and cannot be migrated.
  std::uint64_t live_keys = trace.initial_key_count();
  std::vector<double> latencies;
  latencies.reserve(trace.requests().size());
  double runtime = 0.0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;

  auto retier = [&] {
    ++result.epochs;
    // Estimate the hot zone's drift before decaying the epoch counts.
    const double centroid = circular_centroid(epoch_counts);
    if (prev_centroid >= 0.0) {
      const double step = ring_delta(prev_centroid, centroid,
                                     static_cast<double>(trace.key_count()));
      velocity = 0.5 * velocity + 0.5 * step;
    }
    prev_centroid = centroid;

    // Decay history and absorb the finished epoch.
    for (std::uint64_t k = 0; k < trace.key_count(); ++k) {
      scores[k] = (1.0 - migration_.ewma_alpha) * scores[k] +
                  migration_.ewma_alpha *
                      (static_cast<double>(epoch_counts[k]) /
                       static_cast<double>(trace.size_of(k)));
      epoch_counts[k] = 0;
    }

    // Selection scores: shifted one predicted epoch ahead, so the keys
    // about to become hot are promoted before their requests arrive.
    // Noise-gate sub-key velocities (stationary workloads).
    const std::vector<double>* selection = &scores;
    std::vector<double> predicted;
    const auto n = static_cast<std::int64_t>(trace.key_count());
    const auto shift = static_cast<std::int64_t>(std::llround(velocity));
    if (migration_.predictive && std::abs(shift) >= 1) {
      predicted.resize(trace.key_count());
      for (std::int64_t k = 0; k < n; ++k) {
        // Key k will look like key (k - shift) does now.
        const std::int64_t src = ((k - shift) % n + n) % n;
        predicted[static_cast<std::size_t>(k)] =
            scores[static_cast<std::size_t>(src)];
      }
      selection = &predicted;
    }

    // Desired fast set: greedy accesses/size order within the budget.
    std::vector<std::uint64_t> order(trace.key_count());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint64_t a, std::uint64_t b) {
                       if ((*selection)[a] != (*selection)[b]) {
                         return (*selection)[a] > (*selection)[b];
                       }
                       return a < b;
                     });
    // want_fast: the strict-budget target set. want_keep: the hysteresis
    // dead band — currently-fast keys inside it are not demoted even when
    // they slip out of the strict set, so borderline keys don't churn.
    std::vector<bool> want_fast(trace.key_count(), false);
    std::vector<bool> want_keep(trace.key_count(), false);
    const auto keep_budget = static_cast<std::uint64_t>(
        migration_.keep_factor *
        static_cast<double>(migration_.fast_budget_bytes));
    std::uint64_t strict_used = 0;
    std::uint64_t keep_used = 0;
    for (const std::uint64_t key : order) {
      const std::uint64_t size = trace.size_of(key);
      if (strict_used + size <= migration_.fast_budget_bytes) {
        strict_used += size;
        want_fast[key] = true;
      }
      if (keep_used + size <= keep_budget) {
        keep_used += size;
        want_keep[key] = true;
      }
    }
    // Demote first (frees capacity), then promote hottest-first, both
    // respecting the per-epoch migration byte cap. Promotions only go
    // ahead while the strict byte budget has room.
    std::uint64_t moved = 0;
    auto budget_left = [&] {
      return migration_.migration_bytes_per_epoch == 0 ||
             moved < migration_.migration_bytes_per_epoch;
    };
    std::uint64_t fast_bytes =
        servers.placement().bytes_on(hybridmem::NodeId::kFast,
                                     trace.key_sizes());
    for (std::uint64_t key = 0; key < live_keys && budget_left(); ++key) {
      if (!want_keep[key] &&
          servers.placement().node_of(key) == hybridmem::NodeId::kFast) {
        const util::Result<double> ns =
            servers.move_key(key, hybridmem::NodeId::kSlow);
        if (!ns.ok()) {
          // SlowMem full (or a faulting migration read exhausted its
          // retries): the key stays fast; try again next epoch.
          ++result.rejected_moves;
          continue;
        }
        result.migration_ns += ns.value();
        ++result.migrations;
        result.bytes_migrated += trace.size_of(key);
        moved += trace.size_of(key);
        fast_bytes -= trace.size_of(key);
      }
    }
    for (const std::uint64_t key : order) {
      if (!budget_left()) break;
      if (key >= live_keys || !want_fast[key] ||
          servers.placement().node_of(key) != hybridmem::NodeId::kSlow) {
        continue;
      }
      if (fast_bytes + trace.size_of(key) > keep_budget) continue;
      const util::Result<double> ns =
          servers.move_key(key, hybridmem::NodeId::kFast);
      if (!ns.ok()) {
        ++result.rejected_moves;
        continue;
      }
      result.migration_ns += ns.value();
      ++result.migrations;
      result.bytes_migrated += trace.size_of(key);
      moved += trace.size_of(key);
      fast_bytes += trace.size_of(key);
    }
  };

  std::size_t since_epoch = 0;
  for (const workload::Request& req : trace.requests()) {
    if (req.op == workload::OpType::kInsert) live_keys = req.key + 1;
    const util::Result<kvstore::OpResult> served = servers.execute(req);
    if (!served.ok()) {
      // Transient retries exhausted: the request is dropped, but the
      // access still informs the tiering scores — the client did ask.
      ++result.failed_requests;
      ++epoch_counts[req.key];
    } else {
      const kvstore::OpResult r = served.value();
      MNEMO_ASSERT(r.ok);
      runtime += r.service_ns;
      latencies.push_back(r.service_ns);
      ++epoch_counts[req.key];
      if (req.op == workload::OpType::kRead) {
        ++reads;
      } else {
        ++writes;
      }
    }
    if (++since_epoch >= migration_.epoch_requests) {
      since_epoch = 0;
      retier();
    }
  }
  if (migration_.foreground) runtime += result.migration_ns;
  result.measurement = summarize(latencies, reads, writes, runtime);
  return result;
}

RunMeasurement DynamicTierer::run_static_oracle(
    const workload::Trace& trace) const {
  const AccessPattern pattern = PatternEngine::analyze(trace);
  const auto order = TieringEngine::priority_order(pattern);
  const auto placement = hybridmem::Placement::from_order_with_budget(
      order, trace.key_sizes(), migration_.fast_budget_bytes);
  // The oracle is the *healthy* static reference: comparing a degraded
  // dynamic run against a degraded oracle would hide the fault penalty.
  SensitivityConfig healthy = sensitivity_;
  healthy.faults = faultinject::FaultPlan{};
  const SensitivityEngine engine(healthy);
  return engine.run_once(trace, placement);
}

}  // namespace mnemo::core
