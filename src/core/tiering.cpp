#include "core/tiering.hpp"

#include <algorithm>
#include <numeric>

#include "util/assert.hpp"

namespace mnemo::core {

std::vector<double> TieringEngine::weights(const AccessPattern& pattern) {
  std::vector<double> w(pattern.key_count());
  for (std::uint64_t k = 0; k < pattern.key_count(); ++k) {
    MNEMO_EXPECTS(pattern.sizes[k] > 0);
    w[k] = static_cast<double>(pattern.accesses(k)) /
           static_cast<double>(pattern.sizes[k]);
  }
  return w;
}

std::vector<std::uint64_t> TieringEngine::priority_order(
    const AccessPattern& pattern) {
  const auto w = weights(pattern);
  std::vector<std::uint64_t> order(pattern.key_count());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint64_t a, std::uint64_t b) {
                     if (w[a] != w[b]) return w[a] > w[b];
                     return a < b;
                   });
  return order;
}

std::vector<bool> TieringEngine::knapsack_select(
    const AccessPattern& pattern, std::uint64_t fast_budget_bytes,
    std::uint64_t granularity_bytes) {
  MNEMO_EXPECTS(granularity_bytes > 0);
  const std::size_t n = pattern.key_count();
  const auto cells = static_cast<std::size_t>(
      fast_budget_bytes / granularity_bytes);
  // The DP keeps an n x cells decision table; keep the grid coarse enough
  // (cells <= 2^17) that it stays in tens of megabytes.
  MNEMO_EXPECTS(cells <= (1u << 17));
  std::vector<bool> chosen(n, false);
  if (cells == 0) return chosen;

  // Classic DP over capacity cells, one row kept; choices reconstructed
  // from a per-key bitset (n * cells bits — fine at Mnemo's scales).
  std::vector<std::uint64_t> best(cells + 1, 0);
  std::vector<std::vector<bool>> took(n, std::vector<bool>(cells + 1, false));
  for (std::size_t k = 0; k < n; ++k) {
    const auto need = static_cast<std::size_t>(
        (pattern.sizes[k] + granularity_bytes - 1) / granularity_bytes);
    const std::uint64_t value = pattern.accesses(k);
    if (need > cells || value == 0) continue;
    for (std::size_t c = cells; c >= need; --c) {
      const std::uint64_t candidate = best[c - need] + value;
      if (candidate > best[c]) {
        best[c] = candidate;
        took[k][c] = true;
      }
    }
  }
  // Walk back through the rows to recover the chosen set.
  std::size_t c = cells;
  for (std::size_t k = n; k-- > 0;) {
    if (c == 0) break;
    if (took[k][c]) {
      chosen[k] = true;
      const auto need = static_cast<std::size_t>(
          (pattern.sizes[k] + granularity_bytes - 1) / granularity_bytes);
      c -= need;
    }
  }
  return chosen;
}

std::uint64_t TieringEngine::captured_accesses(
    const AccessPattern& pattern, const std::vector<std::uint64_t>& order,
    std::uint64_t fast_budget_bytes) {
  std::uint64_t used = 0;
  std::uint64_t captured = 0;
  for (const std::uint64_t key : order) {
    const std::uint64_t size = pattern.sizes[key];
    if (used + size > fast_budget_bytes) break;
    used += size;
    captured += pattern.accesses(key);
  }
  return captured;
}

}  // namespace mnemo::core
