#include "core/pattern_engine.hpp"

namespace mnemo::core {

std::uint64_t AccessPattern::total_bytes() const {
  std::uint64_t sum = 0;
  for (const auto s : sizes) sum += s;
  return sum;
}

AccessPattern PatternEngine::analyze(const workload::Trace& trace) {
  AccessPattern p;
  p.reads = trace.read_counts();
  p.writes = trace.write_counts();
  p.sizes = trace.key_sizes();

  p.touch_order.reserve(trace.key_count());
  std::vector<bool> seen(trace.key_count(), false);
  for (const workload::Request& r : trace.requests()) {
    if (!seen[r.key]) {
      seen[r.key] = true;
      p.touch_order.push_back(r.key);
    }
  }
  for (std::uint64_t k = 0; k < trace.key_count(); ++k) {
    if (!seen[k]) p.touch_order.push_back(k);
  }
  return p;
}

}  // namespace mnemo::core
