#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/baselines.hpp"
#include "core/sensitivity_engine.hpp"
#include "workload/trace.hpp"

namespace mnemo::core {

/// Wall-clock cost of each profiling stage (Table IV's comparison axes).
/// These are the only wall-clock measurements in the repository: they time
/// the profiling *tools themselves*, not the simulated workload.
struct ProfilingCosts {
  double input_prep_s = 0.0;  ///< preparing/instrumenting the input
  double baselines_s = 0.0;   ///< acquiring performance baselines
  double tiering_s = 0.0;     ///< computing the tiering order

  [[nodiscard]] double total_s() const {
    return input_prep_s + baselines_s + tiering_s;
  }
};

/// Common output of all tiering-profiler strategies.
struct ProfilerOutput {
  std::string strategy;
  std::vector<std::uint64_t> order;  ///< FastMem priority order
  PerfBaselines baselines;           ///< measured or (partly) inferred
  ProfilingCosts costs;
  bool fast_baseline_inferred = false;
  double inferred_fast_runtime_error_pct = 0.0;  ///< vs truth, if inferred
};

/// MnemoT's strategy (Table IV row "MnemoT"): descriptor-only weight
/// calculation, both baselines by actual execution, no instrumentation.
ProfilerOutput run_mnemot_profiler(const workload::Trace& trace,
                                   const SensitivityEngine& engine);

/// The generic instrumentation-based strategy existing solutions use
/// (X-Mem / Unimem style): every memory access of the run is recorded
/// through an instrumentation shim and per-object weights are aggregated
/// from the event log afterwards. Functionally equivalent ordering, paid
/// for with a per-access event stream — the 10-40x profiling slowdowns the
/// paper cites come from exactly this pattern.
ProfilerOutput run_instrumented_profiler(const workload::Trace& trace,
                                         const SensitivityEngine& engine);

/// The Tahoe-style strategy: execute only the SlowMem baseline and infer
/// the FastMem baseline from a model trained on previously collected
/// (workload features -> runtime) samples. Training-data collection — the
/// hidden cost the paper calls out — is included in baselines_s.
ProfilerOutput run_ml_baseline_profiler(const workload::Trace& trace,
                                        const SensitivityEngine& engine);

}  // namespace mnemo::core
