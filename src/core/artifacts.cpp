#include "core/artifacts.hpp"

#include <array>

namespace mnemo::core {

namespace {

void write_line(util::BinWriter& w, const stats::Line& line) {
  w.f64(line.intercept);
  w.f64(line.slope);
}

stats::Line read_line(util::BinReader& r) {
  stats::Line line;
  line.intercept = r.f64();
  line.slope = r.f64();
  return line;
}

void write_histogram(util::BinWriter& w, const stats::LogHistogram& h) {
  for (std::size_t i = 0; i < stats::LogHistogram::kBuckets; ++i) {
    w.u64(h.bucket(i));
  }
}

stats::LogHistogram read_histogram(util::BinReader& r) {
  std::array<std::uint64_t, stats::LogHistogram::kBuckets> counts{};
  for (auto& c : counts) c = r.u64();
  stats::LogHistogram h;
  h.restore(counts);
  return h;
}

void write_fault_stats(util::BinWriter& w,
                       const faultinject::FaultStats& s) {
  w.u64(s.transient_faults);
  w.u64(s.transient_retries);
  w.u64(s.transient_failures);
  w.u64(s.poison_hits);
  w.u64(s.degraded_accesses);
}

faultinject::FaultStats read_fault_stats(util::BinReader& r) {
  faultinject::FaultStats s;
  s.transient_faults = r.u64();
  s.transient_retries = r.u64();
  s.transient_failures = r.u64();
  s.poison_hits = r.u64();
  s.degraded_accesses = r.u64();
  return s;
}

void write_error(util::BinWriter& w, const util::Error& e) {
  w.u8(static_cast<std::uint8_t>(e.code));
  w.str(e.message);
  w.u64(e.key);
  w.u64(e.requested_bytes);
  w.u64(e.available_bytes);
  w.i32(e.attempts);
}

util::Error read_error(util::BinReader& r) {
  util::Error e;
  e.code = static_cast<util::ErrorCode>(r.u8());
  e.message = r.str();
  e.key = r.u64();
  e.requested_bytes = r.u64();
  e.available_bytes = r.u64();
  e.attempts = r.i32();
  return e;
}

void write_point(util::BinWriter& w, const EstimatePoint& p) {
  w.u64(p.last_key);
  w.u64(p.fast_keys);
  w.u64(p.fast_bytes);
  w.f64(p.est_runtime_ns);
  w.f64(p.est_throughput_ops);
  w.f64(p.est_avg_latency_ns);
  w.f64(p.cost_factor);
}

EstimatePoint read_point(util::BinReader& r) {
  EstimatePoint p;
  p.last_key = r.u64();
  p.fast_keys = r.u64();
  p.fast_bytes = r.u64();
  p.est_runtime_ns = r.f64();
  p.est_throughput_ops = r.f64();
  p.est_avg_latency_ns = r.f64();
  p.cost_factor = r.f64();
  return p;
}

void write_choice(util::BinWriter& w, const SloChoice& c) {
  write_point(w, c.point);
  w.f64(c.slowdown_vs_fast);
  w.f64(c.cost_factor);
  w.f64(c.savings_vs_fast);
}

SloChoice read_choice(util::BinReader& r) {
  SloChoice c;
  c.point = read_point(r);
  c.slowdown_vs_fast = r.f64();
  c.cost_factor = r.f64();
  c.savings_vs_fast = r.f64();
  return c;
}

}  // namespace

void write_measurement(util::BinWriter& w, const RunMeasurement& m) {
  w.f64(m.runtime_ns);
  w.f64(m.throughput_ops);
  w.f64(m.avg_latency_ns);
  w.f64(m.avg_read_ns);
  w.f64(m.avg_write_ns);
  w.f64(m.p95_ns);
  w.f64(m.p99_ns);
  w.u64(m.requests);
  w.u64(m.reads);
  w.u64(m.writes);
  w.f64(m.llc_hit_rate);
  write_line(w, m.read_vs_bytes);
  write_line(w, m.write_vs_bytes);
  write_histogram(w, m.latency_hist);
  write_fault_stats(w, m.faults);
}

RunMeasurement read_measurement(util::BinReader& r) {
  RunMeasurement m;
  m.runtime_ns = r.f64();
  m.throughput_ops = r.f64();
  m.avg_latency_ns = r.f64();
  m.avg_read_ns = r.f64();
  m.avg_write_ns = r.f64();
  m.p95_ns = r.f64();
  m.p99_ns = r.f64();
  m.requests = r.u64();
  m.reads = r.u64();
  m.writes = r.u64();
  m.llc_hit_rate = r.f64();
  m.read_vs_bytes = read_line(r);
  m.write_vs_bytes = read_line(r);
  m.latency_hist = read_histogram(r);
  m.faults = read_fault_stats(r);
  return m;
}

void write_cell_failure(util::BinWriter& w, const CellFailure& f) {
  w.u64(f.cell);
  w.u64(f.fast_keys);
  w.i32(f.repeat);
  w.i32(f.attempts);
  write_error(w, f.error);
  write_fault_stats(w, f.faults);
}

CellFailure read_cell_failure(util::BinReader& r) {
  CellFailure f;
  f.cell = r.u64();
  f.fast_keys = r.u64();
  f.repeat = r.i32();
  f.attempts = r.i32();
  f.error = read_error(r);
  f.faults = read_fault_stats(r);
  return f;
}

void CharacterizeArtifact::serialize(util::BinWriter& w) const {
  w.u8(static_cast<std::uint8_t>(ordering));
  w.u64_vec(pattern.reads);
  w.u64_vec(pattern.writes);
  w.u64_vec(pattern.sizes);
  w.u64_vec(pattern.touch_order);
  w.u64_vec(order);
}

CharacterizeArtifact CharacterizeArtifact::deserialize(util::BinReader& r) {
  CharacterizeArtifact a;
  a.ordering = static_cast<OrderingPolicy>(r.u8());
  a.pattern.reads = r.u64_vec();
  a.pattern.writes = r.u64_vec();
  a.pattern.sizes = r.u64_vec();
  a.pattern.touch_order = r.u64_vec();
  a.order = r.u64_vec();
  return a;
}

void MeasureArtifact::serialize(util::BinWriter& w) const {
  write_measurement(w, baselines.fast);
  write_measurement(w, baselines.slow);
  w.u64(failures.size());
  for (const CellFailure& f : failures) write_cell_failure(w, f);
  w.b(degraded);
}

MeasureArtifact MeasureArtifact::deserialize(util::BinReader& r) {
  MeasureArtifact a;
  a.baselines.fast = read_measurement(r);
  a.baselines.slow = read_measurement(r);
  const std::uint64_t n = r.u64();
  a.failures.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    a.failures.push_back(read_cell_failure(r));
  }
  a.degraded = r.b();
  return a;
}

void EstimateArtifact::serialize(util::BinWriter& w) const {
  w.u64(curve.points.size());
  for (const EstimatePoint& p : curve.points) write_point(w, p);
}

EstimateArtifact EstimateArtifact::deserialize(util::BinReader& r) {
  EstimateArtifact a;
  const std::uint64_t n = r.u64();
  a.curve.points.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    a.curve.points.push_back(read_point(r));
  }
  return a;
}

void AdviseArtifact::serialize(util::BinWriter& w) const {
  w.f64(slo_slowdown);
  w.f64(price_factor);
  w.b(degraded);
  w.u8(static_cast<std::uint8_t>(result.outcome));
  w.b(result.choice.has_value());
  if (result.choice) write_choice(w, *result.choice);
}

AdviseArtifact AdviseArtifact::deserialize(util::BinReader& r) {
  AdviseArtifact a;
  a.slo_slowdown = r.f64();
  a.price_factor = r.f64();
  a.degraded = r.b();
  a.result.outcome = static_cast<SloOutcome>(r.u8());
  if (r.b()) a.result.choice = read_choice(r);
  return a;
}

void ReportArtifact::serialize(util::BinWriter& w) const {
  w.str(text);
  w.str(csv);
}

ReportArtifact ReportArtifact::deserialize(util::BinReader& r) {
  ReportArtifact a;
  a.text = r.str();
  a.csv = r.str();
  return a;
}

}  // namespace mnemo::core
