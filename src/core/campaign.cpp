#include "core/campaign.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <utility>

#include "faultinject/io_fault.hpp"
#include "stats/summary.hpp"
#include "util/arena.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "workload/compiled_trace.hpp"

namespace mnemo::core {

namespace {

/// Process-wide accumulator behind campaign_totals(). Cell durations are
/// kept so the aggregate p50/p95 are exact; campaigns are small (at most
/// a few thousand cells per bench run).
struct TotalsRegistry {
  std::mutex mu;
  std::vector<double> cell_s;
  std::size_t threads = 0;  ///< widest fan-out seen
  double wall_s = 0.0;
  double cpu_s = 0.0;
  std::size_t lane_width = 0;        ///< widest fused band seen
  std::size_t arena_peak_bytes = 0;  ///< largest single-arena high-water
};

TotalsRegistry& totals_registry() {
  static TotalsRegistry registry;
  return registry;
}

void record_campaign(const CampaignStats& stats,
                     const std::vector<double>& cell_s) {
  TotalsRegistry& reg = totals_registry();
  std::lock_guard lock(reg.mu);
  reg.cell_s.insert(reg.cell_s.end(), cell_s.begin(), cell_s.end());
  reg.threads = std::max(reg.threads, stats.threads);
  reg.wall_s += stats.wall_s;
  reg.cpu_s += stats.cpu_s;
  reg.lane_width = std::max(reg.lane_width, stats.lane_width);
  reg.arena_peak_bytes =
      std::max(reg.arena_peak_bytes, stats.arena_peak_bytes);
}

/// Worker-local arena pool for fused bands: lane j of every band this
/// worker runs reuses arenas[j] under the same grow-once/reset-per-cell
/// cycle as the per-cell thread_local arena, so after a worker's first
/// band warmed its lanes up, later bands allocate without touching
/// malloc. Arenas are not movable, hence the unique_ptr indirection.
util::Arena& worker_arena(std::size_t lane) {
  thread_local std::vector<std::unique_ptr<util::Arena>> arenas;
  while (arenas.size() <= lane) {
    arenas.push_back(std::make_unique<util::Arena>());
  }
  return *arenas[lane];
}

/// Lock-free running max for the campaign-wide arena high-water mark.
void raise_peak(std::atomic<std::size_t>& peak, std::size_t candidate) {
  std::size_t seen = peak.load(std::memory_order_relaxed);
  while (candidate > seen && !peak.compare_exchange_weak(
                                 seen, candidate, std::memory_order_relaxed)) {
  }
}

/// The checked per-cell attempt loop shared by run_checked and the async
/// grid: accept only runs that are provably unperturbed (success AND zero
/// fault events), retry exactly once under an attempt-shifted fault
/// stream, then quarantine. Writes exactly one of `slot` / `failure`.
void execute_checked_cell(const SensitivityEngine& engine,
                          const workload::Trace& trace,
                          const workload::CompiledTrace* compiled,
                          const CampaignCell& cell, std::size_t index,
                          std::optional<RunMeasurement>& slot,
                          std::optional<CellFailure>& failure,
                          std::size_t& arena_bytes) {
  util::Error last_error;
  faultinject::FaultStats last_stats;
  int attempts = 0;
  bool accepted = false;
  arena_bytes = 0;
  for (int attempt = 0; attempt < 2 && !accepted; ++attempt) {
    util::Result<RunMeasurement> run = [&] {
      if (compiled != nullptr) {
        util::Arena& arena = worker_arena(0);
        // An attempt's state is fully torn down before the next starts,
        // so the rewind is safe between attempts too.
        arena.reset();
        util::Result<RunMeasurement> r = engine.try_run_once(
            *compiled, cell.placement, cell.repeat, attempt, &arena);
        // Deallocation is a no-op, so bytes_allocated() still reports the
        // attempt's full footprint after its state is gone.
        arena_bytes = std::max(arena_bytes, arena.bytes_allocated());
        return r;
      }
      return engine.try_run_once(trace, cell.placement, cell.repeat, attempt);
    }();
    ++attempts;
    if (run.ok() && run.value().faults.events() == 0) {
      slot = run.value();
      accepted = true;
    } else if (run.ok()) {
      last_stats = run.value().faults;
      last_error.code = util::ErrorCode::kFaultInjected;
      last_error.message = "measurement perturbed: " +
                           std::to_string(last_stats.events()) +
                           " fault events absorbed";
    } else {
      last_error = run.error();
      last_stats = faultinject::FaultStats{};
    }
  }
  if (!accepted) {
    CellFailure f;
    f.cell = index;
    f.fast_keys = cell.placement.fast_keys();
    f.repeat = cell.repeat;
    f.attempts = attempts;
    f.error = last_error;
    f.faults = last_stats;
    failure = std::move(f);
  }
}

/// Checked counterpart of one fused band: attempt 0 replays every lane of
/// cells [first, first + count) in a single LaneBand pass; a lane that
/// comes back provably unperturbed (success AND zero fault events) is
/// accepted, and every other lane *sheds to per-cell* — an attempt-1 retry
/// through engine.try_run_once on the lane's own arena, exactly the retry
/// execute_checked_cell would have run. Ledger parity is exact: the same
/// attempts counts, errors and fault stats as per-cell checked replay,
/// because each lane's attempt sequence is the same instruction stream,
/// only attempt 0 is interleaved with its bandmates.
void execute_checked_band(const SensitivityEngine& engine,
                          const workload::CompiledTrace& compiled,
                          const std::vector<CampaignCell>& cells,
                          std::size_t first, std::size_t count,
                          std::vector<std::optional<RunMeasurement>>& slots,
                          std::vector<std::optional<CellFailure>>& failed,
                          std::size_t& arena_bytes) {
  std::array<LaneBand::Lane, LaneBand::kMaxLanes> lanes;
  std::array<std::optional<util::Result<RunMeasurement>>, LaneBand::kMaxLanes>
      outs;
  for (std::size_t j = 0; j < count; ++j) {
    util::Arena& arena = worker_arena(j);
    arena.reset();
    lanes[j] = LaneBand::Lane{&cells[first + j].placement,
                              cells[first + j].repeat, 0, &arena};
  }
  LaneBand::replay(
      engine, compiled,
      std::span<const LaneBand::Lane>(lanes.data(), count),
      std::span<std::optional<util::Result<RunMeasurement>>>(outs.data(),
                                                             count));
  // Record every lane's attempt-0 footprint before any retry resets its
  // arena (deallocation is a no-op, so the counts are still live).
  arena_bytes = 0;
  for (std::size_t j = 0; j < count; ++j) {
    arena_bytes = std::max(arena_bytes, worker_arena(j).bytes_allocated());
  }
  for (std::size_t j = 0; j < count; ++j) {
    const std::size_t i = first + j;
    const CampaignCell& cell = cells[i];
    util::Result<RunMeasurement>& first_try = *outs[j];
    if (first_try.ok() && first_try.value().faults.events() == 0) {
      slots[i] = first_try.value();
      continue;
    }
    util::Error last_error;
    faultinject::FaultStats last_stats;
    if (first_try.ok()) {
      last_stats = first_try.value().faults;
      last_error.code = util::ErrorCode::kFaultInjected;
      last_error.message = "measurement perturbed: " +
                           std::to_string(last_stats.events()) +
                           " fault events absorbed";
    } else {
      last_error = first_try.error();
      last_stats = faultinject::FaultStats{};
    }
    util::Arena& arena = worker_arena(j);
    arena.reset();
    util::Result<RunMeasurement> retry =
        engine.try_run_once(compiled, cell.placement, cell.repeat, 1, &arena);
    arena_bytes = std::max(arena_bytes, arena.bytes_allocated());
    if (retry.ok() && retry.value().faults.events() == 0) {
      slots[i] = retry.value();
      continue;
    }
    if (retry.ok()) {
      last_stats = retry.value().faults;
      last_error.code = util::ErrorCode::kFaultInjected;
      last_error.message = "measurement perturbed: " +
                           std::to_string(last_stats.events()) +
                           " fault events absorbed";
    } else {
      last_error = retry.error();
      last_stats = faultinject::FaultStats{};
    }
    CellFailure f;
    f.cell = i;
    f.fast_keys = cell.placement.fast_keys();
    f.repeat = cell.repeat;
    f.attempts = 2;
    f.error = last_error;
    f.faults = last_stats;
    failed[i] = std::move(f);
  }
}

/// Fused band partition: bands of `width` consecutive cells; depends only
/// on the cell count and the width, never on threads or scheduling.
[[nodiscard]] std::size_t band_count(std::size_t cells, std::size_t width) {
  return cells == 0 ? 0 : (cells + width - 1) / width;
}

/// The repeat-major cell vector behind every measurement grid.
[[nodiscard]] std::vector<CampaignCell> build_grid_cells(
    const std::vector<hybridmem::Placement>& placements, int repeats) {
  std::vector<CampaignCell> cells;
  cells.reserve(placements.size() * static_cast<std::size_t>(repeats));
  for (const hybridmem::Placement& placement : placements) {
    for (int r = 0; r < repeats; ++r) cells.push_back({placement, r});
  }
  return cells;
}

/// Fold a repeat-major checked grid down to one slot per placement,
/// all-or-nothing: averaging a subset of the repeats would differ from
/// the fault-free average even if every surviving repeat is clean, so one
/// quarantined repeat quarantines the merge.
[[nodiscard]] CampaignResult merge_placement_grid(CampaignResult grid,
                                                  std::size_t num_placements,
                                                  int repeats) {
  CampaignResult merged;
  merged.failures = std::move(grid.failures);
  merged.measurements.reserve(num_placements);
  std::vector<RunMeasurement> group;
  for (std::size_t p = 0; p < num_placements; ++p) {
    group.clear();
    bool complete = true;
    for (int r = 0; r < repeats && complete; ++r) {
      const std::optional<RunMeasurement>& slot =
          grid.measurements[p * static_cast<std::size_t>(repeats) +
                            static_cast<std::size_t>(r)];
      if (slot) {
        group.push_back(*slot);
      } else {
        complete = false;
      }
    }
    if (complete) {
      merged.measurements.emplace_back(average_runs(group));
    } else {
      merged.measurements.emplace_back(std::nullopt);
    }
  }
  return merged;
}

/// Order statistics + totals fill shared by the sync and async paths.
void finalize_stats(CampaignStats& accounting,
                    const std::vector<double>& cell_s) {
  std::vector<double> sorted = cell_s;
  std::sort(sorted.begin(), sorted.end());
  for (const double s : sorted) accounting.cpu_s += s;
  accounting.cell_p50_s = stats::percentile_sorted(sorted, 0.50);
  accounting.cell_p95_s = stats::percentile_sorted(sorted, 0.95);
  record_campaign(accounting, cell_s);
}

}  // namespace

double CampaignStats::speedup() const {
  return wall_s > 0.0 ? cpu_s / wall_s : 0.0;
}

double CampaignStats::occupancy() const {
  return threads > 0 ? speedup() / static_cast<double>(threads) : 0.0;
}

void CampaignStats::merge(const CampaignStats& other) {
  // p50/p95 cannot be merged from summaries; keep a cell-weighted blend
  // as the closest order statistic available to a summary-only merge.
  const auto total = static_cast<double>(cells + other.cells);
  if (total > 0.0) {
    const auto wa = static_cast<double>(cells) / total;
    const auto wb = static_cast<double>(other.cells) / total;
    cell_p50_s = cell_p50_s * wa + other.cell_p50_s * wb;
    cell_p95_s = cell_p95_s * wa + other.cell_p95_s * wb;
  }
  cells += other.cells;
  threads = std::max(threads, other.threads);
  wall_s += other.wall_s;
  cpu_s += other.cpu_s;
  lane_width = std::max(lane_width, other.lane_width);
  arena_peak_bytes = std::max(arena_peak_bytes, other.arena_peak_bytes);
}

std::string CampaignStats::render(const std::string& title) const {
  util::TablePrinter table({title, "value"});
  table.add_row({"cells run", std::to_string(cells)});
  table.add_row({"threads", std::to_string(threads)});
  table.add_row({"lane width", std::to_string(lane_width)});
  table.add_row({"arena peak (KiB)",
                 util::TablePrinter::num(
                     static_cast<double>(arena_peak_bytes) / 1024.0, 1)});
  table.add_row({"wall time (ms)", util::TablePrinter::num(wall_s * 1e3, 1)});
  table.add_row({"cpu time (ms)", util::TablePrinter::num(cpu_s * 1e3, 1)});
  table.add_row(
      {"cell p50 (ms)", util::TablePrinter::num(cell_p50_s * 1e3, 2)});
  table.add_row(
      {"cell p95 (ms)", util::TablePrinter::num(cell_p95_s * 1e3, 2)});
  table.add_row({"speedup vs serial",
                 util::TablePrinter::num(speedup(), 2) + "x"});
  table.add_row({"pool occupancy", util::TablePrinter::pct(occupancy(), 1)});
  return table.render();
}

CampaignRunner::CampaignRunner(std::size_t threads,
                               const util::CancelToken* cancel,
                               util::TaskScheduler* scheduler,
                               util::TaskScheduler::Group* group)
    : threads_(threads == 0 ? util::hardware_threads() : threads),
      cancel_(cancel),
      scheduler_(scheduler),
      group_(group) {}

void CampaignRunner::throw_if_canceled() const {
  if (cancel_ != nullptr && cancel_->canceled()) {
    throw util::CanceledError(cancel_->reason());
  }
}

void CampaignRunner::fan_out(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  util::TaskScheduler::GroupOptions opts;
  opts.cancel = cancel_;
  if (scheduler_ != nullptr) {
    // Shared scheduler: cells interleave with every other campaign's under
    // its fairness policy; the calling thread helps run cells meanwhile.
    if (group_ != nullptr) {
      scheduler_->run_batch(*group_, n, fn);
    } else {
      auto group = scheduler_->make_group(opts);
      scheduler_->run_batch(*group, n, fn);
    }
    return;
  }
  const std::size_t workers = std::max<std::size_t>(1, std::min(threads_, n));
  if (workers == 1) {
    // Serial fast path: no workers at all, cells in cell order — the
    // reference schedule every parallel fan-out must be bit-identical to.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  util::TaskScheduler local(workers);
  auto group = local.make_group(opts);
  local.run_batch(*group, n, fn);
}

std::vector<RunMeasurement> CampaignRunner::run(
    const SensitivityEngine& engine, const workload::Trace& trace,
    const std::vector<CampaignCell>& cells) {
  const std::size_t width = mode_ == ReplayMode::kFused ? lane_width_ : 1;
  const std::size_t bands = band_count(cells.size(), width);
  stats_ = CampaignStats{};
  stats_.cells = cells.size();
  stats_.lane_width = width;
  // The scheduling unit is the band, so the fan-out never exceeds the
  // band count (== cell count when replay is per-cell).
  stats_.threads = std::max<std::size_t>(
      1, std::min(threads_, std::max<std::size_t>(1, bands)));

  std::vector<RunMeasurement> merged(cells.size());
  std::vector<double> cell_s(cells.size(), 0.0);
  if (cells.empty()) return merged;

  // Compile once per campaign: the per-key hashes/digests/byte streams are
  // placement- and repeat-invariant, so every cell shares one read-only
  // artifact instead of re-deriving them (DESIGN.md §12).
  std::optional<workload::CompiledTrace> compiled;
  if (mode_ != ReplayMode::kLegacy) compiled.emplace(trace);

  std::atomic<std::size_t> arena_peak{0};
  util::WallTimer wall;
  if (mode_ == ReplayMode::kFused) {
    // Shared-nothing band fan-out: band b writes only its members' slots,
    // so the merge order is the cell order by construction — and the band
    // partition ignores threads, so grids are bit-identical at any count.
    fan_out(bands, [&](std::size_t b) {
      // Cancellation point *between* bands: a canceled campaign skips
      // bands it has not started, never interrupts one mid-flight.
      if (cancel_ != nullptr && cancel_->canceled()) return;
      const std::size_t first = b * width;
      const std::size_t count = std::min(width, cells.size() - first);
      faultinject::chaos_band_delay(first, count);
      util::ThreadCpuTimer band_timer;
      std::array<LaneBand::Lane, LaneBand::kMaxLanes> lanes;
      std::array<std::optional<util::Result<RunMeasurement>>,
                 LaneBand::kMaxLanes>
          outs;
      for (std::size_t j = 0; j < count; ++j) {
        util::Arena& arena = worker_arena(j);
        arena.reset();
        lanes[j] = LaneBand::Lane{&cells[first + j].placement,
                                  cells[first + j].repeat, 0, &arena};
      }
      LaneBand::replay(
          engine, *compiled,
          std::span<const LaneBand::Lane>(lanes.data(), count),
          std::span<std::optional<util::Result<RunMeasurement>>>(outs.data(),
                                                                 count));
      std::size_t band_arena = 0;
      for (std::size_t j = 0; j < count; ++j) {
        MNEMO_ASSERT(outs[j].has_value() && outs[j]->ok() &&
                     "run requires cells that cannot fail");
        merged[first + j] = outs[j]->value();
        band_arena = std::max(band_arena, worker_arena(j).bytes_allocated());
      }
      raise_peak(arena_peak, band_arena);
      // The fused pass is genuinely shared work; attribute it evenly so
      // per-cell accounting stays comparable across replay modes.
      const double per_cell_s =
          band_timer.elapsed_s() / static_cast<double>(count);
      for (std::size_t j = 0; j < count; ++j) {
        cell_s[first + j] = per_cell_s;
      }
    });
  } else {
    // Per-cell fan-out: cell i writes only slot i, so the merge order is
    // the cell order by construction, independent of scheduling.
    fan_out(cells.size(), [&](std::size_t i) {
      // Cancellation point *between* cells: a canceled campaign skips
      // cells it has not started, never interrupts one mid-flight. The
      // skipped slots are discarded below by the throw.
      if (cancel_ != nullptr && cancel_->canceled()) return;
      faultinject::chaos_cell_delay(i);
      // Thread-CPU time, not wall: a cell's cost must not include the
      // time its worker spent descheduled, or an oversubscribed scheduler
      // would fabricate speedup.
      util::ThreadCpuTimer cell_timer;
      if (compiled) {
        // Each worker owns one arena for the whole campaign; resetting
        // rewinds the bump pointer while keeping the grown chunks, so
        // only a worker's first cell pays allocation at all.
        util::Arena& arena = worker_arena(0);
        arena.reset();
        merged[i] = engine.run_once(*compiled, cells[i].placement,
                                    cells[i].repeat, &arena);
        raise_peak(arena_peak, arena.bytes_allocated());
      } else {
        merged[i] =
            engine.run_once(trace, cells[i].placement, cells[i].repeat);
      }
      cell_s[i] = cell_timer.elapsed_s();
    });
  }
  stats_.wall_s = wall.elapsed_s();
  throw_if_canceled();

  stats_.arena_peak_bytes = arena_peak.load(std::memory_order_relaxed);
  finalize_stats(stats_, cell_s);
  return merged;
}

CampaignResult CampaignRunner::run_checked(
    const SensitivityEngine& engine, const workload::Trace& trace,
    const std::vector<CampaignCell>& cells) {
  const std::size_t width = mode_ == ReplayMode::kFused ? lane_width_ : 1;
  const std::size_t bands = band_count(cells.size(), width);
  stats_ = CampaignStats{};
  stats_.cells = cells.size();
  stats_.lane_width = width;
  stats_.threads = std::max<std::size_t>(
      1, std::min(threads_, std::max<std::size_t>(1, bands)));

  CampaignResult result;
  result.measurements.resize(cells.size());
  // Slot-indexed failures keep the ledger in cell order no matter how the
  // pool schedules cells — same shared-nothing trick as run().
  std::vector<std::optional<CellFailure>> failed(cells.size());
  std::vector<double> cell_s(cells.size(), 0.0);
  if (cells.empty()) return result;

  std::optional<workload::CompiledTrace> compiled;
  if (mode_ != ReplayMode::kLegacy) compiled.emplace(trace);

  std::atomic<std::size_t> arena_peak{0};
  util::WallTimer wall;
  if (mode_ == ReplayMode::kFused) {
    fan_out(bands, [&](std::size_t b) {
      if (cancel_ != nullptr && cancel_->canceled()) return;
      const std::size_t first = b * width;
      const std::size_t count = std::min(width, cells.size() - first);
      faultinject::chaos_band_delay(first, count);
      util::ThreadCpuTimer band_timer;
      std::size_t band_arena = 0;
      execute_checked_band(engine, *compiled, cells, first, count,
                           result.measurements, failed, band_arena);
      raise_peak(arena_peak, band_arena);
      const double per_cell_s =
          band_timer.elapsed_s() / static_cast<double>(count);
      for (std::size_t j = 0; j < count; ++j) {
        cell_s[first + j] = per_cell_s;
      }
    });
  } else {
    fan_out(cells.size(), [&](std::size_t i) {
      if (cancel_ != nullptr && cancel_->canceled()) return;
      faultinject::chaos_cell_delay(i);
      util::ThreadCpuTimer cell_timer;
      std::size_t cell_arena = 0;
      execute_checked_cell(engine, trace, compiled ? &*compiled : nullptr,
                           cells[i], i, result.measurements[i], failed[i],
                           cell_arena);
      raise_peak(arena_peak, cell_arena);
      cell_s[i] = cell_timer.elapsed_s();
    });
  }
  stats_.wall_s = wall.elapsed_s();
  throw_if_canceled();

  for (std::optional<CellFailure>& f : failed) {
    if (f) result.failures.push_back(std::move(*f));
  }

  stats_.arena_peak_bytes = arena_peak.load(std::memory_order_relaxed);
  finalize_stats(stats_, cell_s);
  return result;
}

CampaignResult CampaignRunner::measure_grid_checked(
    const SensitivityEngine& engine, const workload::Trace& trace,
    const std::vector<hybridmem::Placement>& placements) {
  const int repeats = engine.config().repeats;
  const std::vector<CampaignCell> cells = build_grid_cells(placements, repeats);
  return merge_placement_grid(run_checked(engine, trace, cells),
                              placements.size(), repeats);
}

namespace {

/// Shared state of one in-flight async grid. Owned jointly by the cell
/// closures and the merge continuation; the last reference dying frees it.
struct AsyncGrid {
  std::shared_ptr<const SensitivityEngine> engine;
  const workload::Trace* trace = nullptr;
  std::optional<workload::CompiledTrace> compiled;
  std::vector<CampaignCell> cells;
  std::size_t num_placements = 0;
  int repeats = 0;
  const util::CancelToken* cancel = nullptr;
  std::shared_ptr<util::TaskScheduler::Group> group;
  std::function<void(CampaignRunner::AsyncOutcome)> done;

  /// Lanes per fused band; the async grid always replays fused with the
  /// default width (the band partition never depends on the scheduler).
  std::size_t lane_width = LaneBand::kDefaultLanes;
  std::size_t bands = 0;

  util::WallTimer wall;
  std::vector<std::optional<RunMeasurement>> slots;
  std::vector<std::optional<CellFailure>> failed;
  std::vector<double> cell_s;
  std::atomic<std::size_t> arena_peak{0};
  std::atomic<std::size_t> remaining{0};  ///< bands still outstanding
};

/// The merge continuation: runs once, as a kRequest task, after the last
/// band settles. Mirrors run_checked's tail exactly (including skipping
/// the totals ledger for canceled campaigns).
void merge_async_grid(const std::shared_ptr<AsyncGrid>& grid) {
  CampaignRunner::AsyncOutcome outcome;
  outcome.stats.cells = grid->cells.size();
  outcome.stats.lane_width = grid->lane_width;
  outcome.stats.threads = std::max<std::size_t>(
      1, std::min(grid->group->scheduler().threads(),
                  std::max<std::size_t>(1, grid->bands)));
  outcome.stats.wall_s = grid->wall.elapsed_s();
  outcome.stats.arena_peak_bytes =
      grid->arena_peak.load(std::memory_order_relaxed);
  if (grid->cancel != nullptr && grid->cancel->canceled()) {
    outcome.error =
        std::make_exception_ptr(util::CanceledError(grid->cancel->reason()));
  } else {
    CampaignResult raw;
    raw.measurements = std::move(grid->slots);
    for (std::optional<CellFailure>& f : grid->failed) {
      if (f) raw.failures.push_back(std::move(*f));
    }
    finalize_stats(outcome.stats, grid->cell_s);
    outcome.grid = merge_placement_grid(std::move(raw), grid->num_placements,
                                        grid->repeats);
  }
  grid->done(std::move(outcome));
}

}  // namespace

void CampaignRunner::measure_grid_checked_async(
    std::shared_ptr<const SensitivityEngine> engine,
    const workload::Trace& trace,
    std::vector<hybridmem::Placement> placements,
    const util::CancelToken* cancel,
    std::shared_ptr<util::TaskScheduler::Group> group,
    std::function<void(AsyncOutcome)> done) {
  auto grid = std::make_shared<AsyncGrid>();
  grid->repeats = engine->config().repeats;
  grid->num_placements = placements.size();
  grid->cells = build_grid_cells(placements, grid->repeats);
  grid->engine = std::move(engine);
  grid->trace = &trace;
  grid->compiled.emplace(trace);
  grid->cancel = cancel;
  grid->group = std::move(group);
  grid->done = std::move(done);

  const std::size_t n = grid->cells.size();
  if (n == 0) {
    // Degenerate grid: still deliver asynchronously, as a group task, so
    // callers observe one completion path.
    grid->group->submit(util::TaskScheduler::TaskClass::kRequest,
                        [grid] { merge_async_grid(grid); });
    return;
  }
  grid->slots.resize(n);
  grid->failed.resize(n);
  grid->cell_s.assign(n, 0.0);
  grid->bands = band_count(n, grid->lane_width);
  grid->remaining.store(grid->bands, std::memory_order_relaxed);

  util::TaskScheduler::Group& g = *grid->group;
  for (std::size_t b = 0; b < grid->bands; ++b) {
    // A kCell task is now a lane band (fused attempt 0, per-cell retry
    // shedding) — same fairness unit across serve, session and campaigns.
    g.submit(util::TaskScheduler::TaskClass::kCell, [grid, b] {
      // Same band body as run_checked: cancellation between bands, chaos
      // delay, thread-CPU timing, checked band with per-cell shedding.
      if (grid->cancel == nullptr || !grid->cancel->canceled()) {
        const std::size_t first = b * grid->lane_width;
        const std::size_t count =
            std::min(grid->lane_width, grid->cells.size() - first);
        faultinject::chaos_band_delay(first, count);
        util::ThreadCpuTimer band_timer;
        std::size_t band_arena = 0;
        execute_checked_band(*grid->engine, *grid->compiled, grid->cells,
                             first, count, grid->slots, grid->failed,
                             band_arena);
        raise_peak(grid->arena_peak, band_arena);
        const double per_cell_s =
            band_timer.elapsed_s() / static_cast<double>(count);
        for (std::size_t j = 0; j < count; ++j) {
          grid->cell_s[first + j] = per_cell_s;
        }
      }
      // The last band to settle hands off to the merge continuation —
      // submitted from inside a still-outstanding task, so the scheduler
      // never observes a quiescent gap mid-campaign.
      if (grid->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        grid->group->submit(util::TaskScheduler::TaskClass::kRequest,
                            [grid] { merge_async_grid(grid); });
      }
    });
  }
}

std::string render_failure_ledger(const std::vector<CellFailure>& failures) {
  util::TablePrinter table({"cell", "fast keys", "repeat", "tries",
                            "events t/p/bw", "reason"});
  for (const CellFailure& f : failures) {
    const std::string events =
        std::to_string(f.faults.transient_faults) + "/" +
        std::to_string(f.faults.poison_hits) + "/" +
        std::to_string(f.faults.degraded_accesses);
    table.add_row({std::to_string(f.cell), std::to_string(f.fast_keys),
                   std::to_string(f.repeat), std::to_string(f.attempts),
                   events, f.error.to_string()});
  }
  return table.render();
}

std::vector<RunMeasurement> CampaignRunner::measure_grid(
    const SensitivityEngine& engine, const workload::Trace& trace,
    const std::vector<hybridmem::Placement>& placements) {
  const int repeats = engine.config().repeats;
  const std::vector<CampaignCell> cells = build_grid_cells(placements, repeats);
  const std::vector<RunMeasurement> runs = run(engine, trace, cells);

  std::vector<RunMeasurement> merged;
  merged.reserve(placements.size());
  std::vector<RunMeasurement> group(static_cast<std::size_t>(repeats));
  for (std::size_t p = 0; p < placements.size(); ++p) {
    for (int r = 0; r < repeats; ++r) {
      group[static_cast<std::size_t>(r)] =
          runs[p * static_cast<std::size_t>(repeats) +
               static_cast<std::size_t>(r)];
    }
    merged.push_back(average_runs(group));
  }
  return merged;
}

CampaignStats campaign_totals() {
  TotalsRegistry& reg = totals_registry();
  std::lock_guard lock(reg.mu);
  CampaignStats totals;
  totals.cells = reg.cell_s.size();
  totals.threads = reg.threads;
  totals.wall_s = reg.wall_s;
  totals.cpu_s = reg.cpu_s;
  totals.lane_width = reg.lane_width;
  totals.arena_peak_bytes = reg.arena_peak_bytes;
  if (!reg.cell_s.empty()) {
    std::vector<double> sorted = reg.cell_s;
    std::sort(sorted.begin(), sorted.end());
    totals.cell_p50_s = stats::percentile_sorted(sorted, 0.50);
    totals.cell_p95_s = stats::percentile_sorted(sorted, 0.95);
  }
  return totals;
}

void reset_campaign_totals() {
  TotalsRegistry& reg = totals_registry();
  std::lock_guard lock(reg.mu);
  reg.cell_s.clear();
  reg.threads = 0;
  reg.wall_s = 0.0;
  reg.cpu_s = 0.0;
  reg.lane_width = 0;
  reg.arena_peak_bytes = 0;
}

}  // namespace mnemo::core
