#include "core/campaign.hpp"

#include <algorithm>
#include <mutex>
#include <optional>

#include "faultinject/io_fault.hpp"
#include "stats/summary.hpp"
#include "util/arena.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "workload/compiled_trace.hpp"

namespace mnemo::core {

namespace {

/// Process-wide accumulator behind campaign_totals(). Cell durations are
/// kept so the aggregate p50/p95 are exact; campaigns are small (at most
/// a few thousand cells per bench run).
struct TotalsRegistry {
  std::mutex mu;
  std::vector<double> cell_s;
  std::size_t threads = 0;  ///< widest fan-out seen
  double wall_s = 0.0;
  double cpu_s = 0.0;
};

TotalsRegistry& totals_registry() {
  static TotalsRegistry registry;
  return registry;
}

void record_campaign(const CampaignStats& stats,
                     const std::vector<double>& cell_s) {
  TotalsRegistry& reg = totals_registry();
  std::lock_guard lock(reg.mu);
  reg.cell_s.insert(reg.cell_s.end(), cell_s.begin(), cell_s.end());
  reg.threads = std::max(reg.threads, stats.threads);
  reg.wall_s += stats.wall_s;
  reg.cpu_s += stats.cpu_s;
}

}  // namespace

double CampaignStats::speedup() const {
  return wall_s > 0.0 ? cpu_s / wall_s : 0.0;
}

double CampaignStats::occupancy() const {
  return threads > 0 ? speedup() / static_cast<double>(threads) : 0.0;
}

void CampaignStats::merge(const CampaignStats& other) {
  // p50/p95 cannot be merged from summaries; keep a cell-weighted blend
  // as the closest order statistic available to a summary-only merge.
  const auto total = static_cast<double>(cells + other.cells);
  if (total > 0.0) {
    const auto wa = static_cast<double>(cells) / total;
    const auto wb = static_cast<double>(other.cells) / total;
    cell_p50_s = cell_p50_s * wa + other.cell_p50_s * wb;
    cell_p95_s = cell_p95_s * wa + other.cell_p95_s * wb;
  }
  cells += other.cells;
  threads = std::max(threads, other.threads);
  wall_s += other.wall_s;
  cpu_s += other.cpu_s;
}

std::string CampaignStats::render(const std::string& title) const {
  util::TablePrinter table({title, "value"});
  table.add_row({"cells run", std::to_string(cells)});
  table.add_row({"threads", std::to_string(threads)});
  table.add_row({"wall time (ms)", util::TablePrinter::num(wall_s * 1e3, 1)});
  table.add_row({"cpu time (ms)", util::TablePrinter::num(cpu_s * 1e3, 1)});
  table.add_row(
      {"cell p50 (ms)", util::TablePrinter::num(cell_p50_s * 1e3, 2)});
  table.add_row(
      {"cell p95 (ms)", util::TablePrinter::num(cell_p95_s * 1e3, 2)});
  table.add_row({"speedup vs serial",
                 util::TablePrinter::num(speedup(), 2) + "x"});
  table.add_row({"pool occupancy", util::TablePrinter::pct(occupancy(), 1)});
  return table.render();
}

CampaignRunner::CampaignRunner(std::size_t threads,
                               const util::CancelToken* cancel)
    : threads_(threads == 0 ? util::hardware_threads() : threads),
      cancel_(cancel) {}

void CampaignRunner::throw_if_canceled() const {
  if (cancel_ != nullptr && cancel_->canceled()) {
    throw util::CanceledError(cancel_->reason());
  }
}

std::vector<RunMeasurement> CampaignRunner::run(
    const SensitivityEngine& engine, const workload::Trace& trace,
    const std::vector<CampaignCell>& cells) {
  stats_ = CampaignStats{};
  stats_.cells = cells.size();
  stats_.threads = std::max<std::size_t>(
      1, std::min(threads_, std::max<std::size_t>(1, cells.size())));

  std::vector<RunMeasurement> merged(cells.size());
  std::vector<double> cell_s(cells.size(), 0.0);
  if (cells.empty()) return merged;

  // Compile once per campaign: the per-key hashes/digests/byte streams are
  // placement- and repeat-invariant, so every cell shares one read-only
  // artifact instead of re-deriving them (DESIGN.md §12).
  std::optional<workload::CompiledTrace> compiled;
  if (mode_ == ReplayMode::kCompiled) compiled.emplace(trace);

  util::WallTimer wall;
  // Shared-nothing fan-out: cell i writes only slot i, so the merge order
  // is the cell order by construction, independent of scheduling.
  util::parallel_for(
      cells.size(),
      [&](std::size_t i) {
        // Cancellation point *between* cells: a canceled campaign skips
        // cells it has not started, never interrupts one mid-flight. The
        // skipped slots are discarded below by the throw.
        if (cancel_ != nullptr && cancel_->canceled()) return;
        faultinject::chaos_cell_delay(i);
        // Thread-CPU time, not wall: a cell's cost must not include the
        // time its worker spent descheduled, or an oversubscribed pool
        // would fabricate speedup.
        util::ThreadCpuTimer cell_timer;
        if (compiled) {
          // Each worker owns one arena for the whole campaign; resetting
          // rewinds the bump pointer while keeping the grown chunks, so
          // only a worker's first cell pays allocation at all.
          thread_local util::Arena arena;
          arena.reset();
          merged[i] = engine.run_once(*compiled, cells[i].placement,
                                      cells[i].repeat, &arena);
        } else {
          merged[i] =
              engine.run_once(trace, cells[i].placement, cells[i].repeat);
        }
        cell_s[i] = cell_timer.elapsed_s();
      },
      threads_);
  stats_.wall_s = wall.elapsed_s();
  throw_if_canceled();

  std::vector<double> sorted = cell_s;
  std::sort(sorted.begin(), sorted.end());
  for (const double s : sorted) stats_.cpu_s += s;
  stats_.cell_p50_s = stats::percentile_sorted(sorted, 0.50);
  stats_.cell_p95_s = stats::percentile_sorted(sorted, 0.95);
  record_campaign(stats_, cell_s);
  return merged;
}

CampaignResult CampaignRunner::run_checked(
    const SensitivityEngine& engine, const workload::Trace& trace,
    const std::vector<CampaignCell>& cells) {
  stats_ = CampaignStats{};
  stats_.cells = cells.size();
  stats_.threads = std::max<std::size_t>(
      1, std::min(threads_, std::max<std::size_t>(1, cells.size())));

  CampaignResult result;
  result.measurements.resize(cells.size());
  // Slot-indexed failures keep the ledger in cell order no matter how the
  // pool schedules cells — same shared-nothing trick as run().
  std::vector<std::optional<CellFailure>> failed(cells.size());
  std::vector<double> cell_s(cells.size(), 0.0);
  if (cells.empty()) return result;

  std::optional<workload::CompiledTrace> compiled;
  if (mode_ == ReplayMode::kCompiled) compiled.emplace(trace);

  util::WallTimer wall;
  util::parallel_for(
      cells.size(),
      [&](std::size_t i) {
        if (cancel_ != nullptr && cancel_->canceled()) return;
        faultinject::chaos_cell_delay(i);
        util::ThreadCpuTimer cell_timer;
        // Accept only runs that are provably unperturbed: success AND zero
        // fault events. Anything else gets exactly one retry under an
        // attempt-shifted fault stream (the workload/service seed is
        // untouched), then quarantine.
        util::Error last_error;
        faultinject::FaultStats last_stats;
        int attempts = 0;
        bool accepted = false;
        for (int attempt = 0; attempt < 2 && !accepted; ++attempt) {
          util::Result<RunMeasurement> run = [&] {
            if (compiled) {
              thread_local util::Arena arena;
              // An attempt's state is fully torn down before the next
              // starts, so the rewind is safe between attempts too.
              arena.reset();
              return engine.try_run_once(*compiled, cells[i].placement,
                                         cells[i].repeat, attempt, &arena);
            }
            return engine.try_run_once(trace, cells[i].placement,
                                       cells[i].repeat, attempt);
          }();
          ++attempts;
          if (run.ok() && run.value().faults.events() == 0) {
            result.measurements[i] = run.value();
            accepted = true;
          } else if (run.ok()) {
            last_stats = run.value().faults;
            last_error.code = util::ErrorCode::kFaultInjected;
            last_error.message =
                "measurement perturbed: " +
                std::to_string(last_stats.events()) +
                " fault events absorbed";
          } else {
            last_error = run.error();
            last_stats = faultinject::FaultStats{};
          }
        }
        if (!accepted) {
          CellFailure f;
          f.cell = i;
          f.fast_keys = cells[i].placement.fast_keys();
          f.repeat = cells[i].repeat;
          f.attempts = attempts;
          f.error = last_error;
          f.faults = last_stats;
          failed[i] = std::move(f);
        }
        cell_s[i] = cell_timer.elapsed_s();
      },
      threads_);
  stats_.wall_s = wall.elapsed_s();
  throw_if_canceled();

  for (std::optional<CellFailure>& f : failed) {
    if (f) result.failures.push_back(std::move(*f));
  }

  std::vector<double> sorted = cell_s;
  std::sort(sorted.begin(), sorted.end());
  for (const double s : sorted) stats_.cpu_s += s;
  stats_.cell_p50_s = stats::percentile_sorted(sorted, 0.50);
  stats_.cell_p95_s = stats::percentile_sorted(sorted, 0.95);
  record_campaign(stats_, cell_s);
  return result;
}

CampaignResult CampaignRunner::measure_grid_checked(
    const SensitivityEngine& engine, const workload::Trace& trace,
    const std::vector<hybridmem::Placement>& placements) {
  const int repeats = engine.config().repeats;
  std::vector<CampaignCell> cells;
  cells.reserve(placements.size() * static_cast<std::size_t>(repeats));
  for (const hybridmem::Placement& placement : placements) {
    for (int r = 0; r < repeats; ++r) cells.push_back({placement, r});
  }
  CampaignResult grid = run_checked(engine, trace, cells);

  CampaignResult merged;
  merged.failures = std::move(grid.failures);
  merged.measurements.reserve(placements.size());
  std::vector<RunMeasurement> group;
  for (std::size_t p = 0; p < placements.size(); ++p) {
    // All-or-nothing per placement: averaging a subset of the repeats
    // would differ from the fault-free average even if every surviving
    // repeat is clean, so one quarantined repeat quarantines the merge.
    group.clear();
    bool complete = true;
    for (int r = 0; r < repeats && complete; ++r) {
      const std::optional<RunMeasurement>& slot =
          grid.measurements[p * static_cast<std::size_t>(repeats) +
                            static_cast<std::size_t>(r)];
      if (slot) {
        group.push_back(*slot);
      } else {
        complete = false;
      }
    }
    if (complete) {
      merged.measurements.emplace_back(average_runs(group));
    } else {
      merged.measurements.emplace_back(std::nullopt);
    }
  }
  return merged;
}

std::string render_failure_ledger(const std::vector<CellFailure>& failures) {
  util::TablePrinter table({"cell", "fast keys", "repeat", "tries",
                            "events t/p/bw", "reason"});
  for (const CellFailure& f : failures) {
    const std::string events =
        std::to_string(f.faults.transient_faults) + "/" +
        std::to_string(f.faults.poison_hits) + "/" +
        std::to_string(f.faults.degraded_accesses);
    table.add_row({std::to_string(f.cell), std::to_string(f.fast_keys),
                   std::to_string(f.repeat), std::to_string(f.attempts),
                   events, f.error.to_string()});
  }
  return table.render();
}

std::vector<RunMeasurement> CampaignRunner::measure_grid(
    const SensitivityEngine& engine, const workload::Trace& trace,
    const std::vector<hybridmem::Placement>& placements) {
  const int repeats = engine.config().repeats;
  std::vector<CampaignCell> cells;
  cells.reserve(placements.size() * static_cast<std::size_t>(repeats));
  for (const hybridmem::Placement& placement : placements) {
    for (int r = 0; r < repeats; ++r) cells.push_back({placement, r});
  }
  const std::vector<RunMeasurement> runs = run(engine, trace, cells);

  std::vector<RunMeasurement> merged;
  merged.reserve(placements.size());
  std::vector<RunMeasurement> group(static_cast<std::size_t>(repeats));
  for (std::size_t p = 0; p < placements.size(); ++p) {
    for (int r = 0; r < repeats; ++r) {
      group[static_cast<std::size_t>(r)] =
          runs[p * static_cast<std::size_t>(repeats) +
               static_cast<std::size_t>(r)];
    }
    merged.push_back(average_runs(group));
  }
  return merged;
}

CampaignStats campaign_totals() {
  TotalsRegistry& reg = totals_registry();
  std::lock_guard lock(reg.mu);
  CampaignStats totals;
  totals.cells = reg.cell_s.size();
  totals.threads = reg.threads;
  totals.wall_s = reg.wall_s;
  totals.cpu_s = reg.cpu_s;
  if (!reg.cell_s.empty()) {
    std::vector<double> sorted = reg.cell_s;
    std::sort(sorted.begin(), sorted.end());
    totals.cell_p50_s = stats::percentile_sorted(sorted, 0.50);
    totals.cell_p95_s = stats::percentile_sorted(sorted, 0.95);
  }
  return totals;
}

void reset_campaign_totals() {
  TotalsRegistry& reg = totals_registry();
  std::lock_guard lock(reg.mu);
  reg.cell_s.clear();
  reg.threads = 0;
  reg.wall_s = 0.0;
  reg.cpu_s = 0.0;
}

}  // namespace mnemo::core
