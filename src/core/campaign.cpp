#include "core/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <optional>
#include <utility>

#include "faultinject/io_fault.hpp"
#include "stats/summary.hpp"
#include "util/arena.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "workload/compiled_trace.hpp"

namespace mnemo::core {

namespace {

/// Process-wide accumulator behind campaign_totals(). Cell durations are
/// kept so the aggregate p50/p95 are exact; campaigns are small (at most
/// a few thousand cells per bench run).
struct TotalsRegistry {
  std::mutex mu;
  std::vector<double> cell_s;
  std::size_t threads = 0;  ///< widest fan-out seen
  double wall_s = 0.0;
  double cpu_s = 0.0;
};

TotalsRegistry& totals_registry() {
  static TotalsRegistry registry;
  return registry;
}

void record_campaign(const CampaignStats& stats,
                     const std::vector<double>& cell_s) {
  TotalsRegistry& reg = totals_registry();
  std::lock_guard lock(reg.mu);
  reg.cell_s.insert(reg.cell_s.end(), cell_s.begin(), cell_s.end());
  reg.threads = std::max(reg.threads, stats.threads);
  reg.wall_s += stats.wall_s;
  reg.cpu_s += stats.cpu_s;
}

/// The checked per-cell attempt loop shared by run_checked and the async
/// grid: accept only runs that are provably unperturbed (success AND zero
/// fault events), retry exactly once under an attempt-shifted fault
/// stream, then quarantine. Writes exactly one of `slot` / `failure`.
void execute_checked_cell(const SensitivityEngine& engine,
                          const workload::Trace& trace,
                          const workload::CompiledTrace* compiled,
                          const CampaignCell& cell, std::size_t index,
                          std::optional<RunMeasurement>& slot,
                          std::optional<CellFailure>& failure) {
  util::Error last_error;
  faultinject::FaultStats last_stats;
  int attempts = 0;
  bool accepted = false;
  for (int attempt = 0; attempt < 2 && !accepted; ++attempt) {
    util::Result<RunMeasurement> run = [&] {
      if (compiled != nullptr) {
        thread_local util::Arena arena;
        // An attempt's state is fully torn down before the next starts,
        // so the rewind is safe between attempts too.
        arena.reset();
        return engine.try_run_once(*compiled, cell.placement, cell.repeat,
                                   attempt, &arena);
      }
      return engine.try_run_once(trace, cell.placement, cell.repeat, attempt);
    }();
    ++attempts;
    if (run.ok() && run.value().faults.events() == 0) {
      slot = run.value();
      accepted = true;
    } else if (run.ok()) {
      last_stats = run.value().faults;
      last_error.code = util::ErrorCode::kFaultInjected;
      last_error.message = "measurement perturbed: " +
                           std::to_string(last_stats.events()) +
                           " fault events absorbed";
    } else {
      last_error = run.error();
      last_stats = faultinject::FaultStats{};
    }
  }
  if (!accepted) {
    CellFailure f;
    f.cell = index;
    f.fast_keys = cell.placement.fast_keys();
    f.repeat = cell.repeat;
    f.attempts = attempts;
    f.error = last_error;
    f.faults = last_stats;
    failure = std::move(f);
  }
}

/// The repeat-major cell vector behind every measurement grid.
[[nodiscard]] std::vector<CampaignCell> build_grid_cells(
    const std::vector<hybridmem::Placement>& placements, int repeats) {
  std::vector<CampaignCell> cells;
  cells.reserve(placements.size() * static_cast<std::size_t>(repeats));
  for (const hybridmem::Placement& placement : placements) {
    for (int r = 0; r < repeats; ++r) cells.push_back({placement, r});
  }
  return cells;
}

/// Fold a repeat-major checked grid down to one slot per placement,
/// all-or-nothing: averaging a subset of the repeats would differ from
/// the fault-free average even if every surviving repeat is clean, so one
/// quarantined repeat quarantines the merge.
[[nodiscard]] CampaignResult merge_placement_grid(CampaignResult grid,
                                                  std::size_t num_placements,
                                                  int repeats) {
  CampaignResult merged;
  merged.failures = std::move(grid.failures);
  merged.measurements.reserve(num_placements);
  std::vector<RunMeasurement> group;
  for (std::size_t p = 0; p < num_placements; ++p) {
    group.clear();
    bool complete = true;
    for (int r = 0; r < repeats && complete; ++r) {
      const std::optional<RunMeasurement>& slot =
          grid.measurements[p * static_cast<std::size_t>(repeats) +
                            static_cast<std::size_t>(r)];
      if (slot) {
        group.push_back(*slot);
      } else {
        complete = false;
      }
    }
    if (complete) {
      merged.measurements.emplace_back(average_runs(group));
    } else {
      merged.measurements.emplace_back(std::nullopt);
    }
  }
  return merged;
}

/// Order statistics + totals fill shared by the sync and async paths.
void finalize_stats(CampaignStats& accounting,
                    const std::vector<double>& cell_s) {
  std::vector<double> sorted = cell_s;
  std::sort(sorted.begin(), sorted.end());
  for (const double s : sorted) accounting.cpu_s += s;
  accounting.cell_p50_s = stats::percentile_sorted(sorted, 0.50);
  accounting.cell_p95_s = stats::percentile_sorted(sorted, 0.95);
  record_campaign(accounting, cell_s);
}

}  // namespace

double CampaignStats::speedup() const {
  return wall_s > 0.0 ? cpu_s / wall_s : 0.0;
}

double CampaignStats::occupancy() const {
  return threads > 0 ? speedup() / static_cast<double>(threads) : 0.0;
}

void CampaignStats::merge(const CampaignStats& other) {
  // p50/p95 cannot be merged from summaries; keep a cell-weighted blend
  // as the closest order statistic available to a summary-only merge.
  const auto total = static_cast<double>(cells + other.cells);
  if (total > 0.0) {
    const auto wa = static_cast<double>(cells) / total;
    const auto wb = static_cast<double>(other.cells) / total;
    cell_p50_s = cell_p50_s * wa + other.cell_p50_s * wb;
    cell_p95_s = cell_p95_s * wa + other.cell_p95_s * wb;
  }
  cells += other.cells;
  threads = std::max(threads, other.threads);
  wall_s += other.wall_s;
  cpu_s += other.cpu_s;
}

std::string CampaignStats::render(const std::string& title) const {
  util::TablePrinter table({title, "value"});
  table.add_row({"cells run", std::to_string(cells)});
  table.add_row({"threads", std::to_string(threads)});
  table.add_row({"wall time (ms)", util::TablePrinter::num(wall_s * 1e3, 1)});
  table.add_row({"cpu time (ms)", util::TablePrinter::num(cpu_s * 1e3, 1)});
  table.add_row(
      {"cell p50 (ms)", util::TablePrinter::num(cell_p50_s * 1e3, 2)});
  table.add_row(
      {"cell p95 (ms)", util::TablePrinter::num(cell_p95_s * 1e3, 2)});
  table.add_row({"speedup vs serial",
                 util::TablePrinter::num(speedup(), 2) + "x"});
  table.add_row({"pool occupancy", util::TablePrinter::pct(occupancy(), 1)});
  return table.render();
}

CampaignRunner::CampaignRunner(std::size_t threads,
                               const util::CancelToken* cancel,
                               util::TaskScheduler* scheduler,
                               util::TaskScheduler::Group* group)
    : threads_(threads == 0 ? util::hardware_threads() : threads),
      cancel_(cancel),
      scheduler_(scheduler),
      group_(group) {}

void CampaignRunner::throw_if_canceled() const {
  if (cancel_ != nullptr && cancel_->canceled()) {
    throw util::CanceledError(cancel_->reason());
  }
}

void CampaignRunner::fan_out(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  util::TaskScheduler::GroupOptions opts;
  opts.cancel = cancel_;
  if (scheduler_ != nullptr) {
    // Shared scheduler: cells interleave with every other campaign's under
    // its fairness policy; the calling thread helps run cells meanwhile.
    if (group_ != nullptr) {
      scheduler_->run_batch(*group_, n, fn);
    } else {
      auto group = scheduler_->make_group(opts);
      scheduler_->run_batch(*group, n, fn);
    }
    return;
  }
  const std::size_t workers = std::max<std::size_t>(1, std::min(threads_, n));
  if (workers == 1) {
    // Serial fast path: no workers at all, cells in cell order — the
    // reference schedule every parallel fan-out must be bit-identical to.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  util::TaskScheduler local(workers);
  auto group = local.make_group(opts);
  local.run_batch(*group, n, fn);
}

std::vector<RunMeasurement> CampaignRunner::run(
    const SensitivityEngine& engine, const workload::Trace& trace,
    const std::vector<CampaignCell>& cells) {
  stats_ = CampaignStats{};
  stats_.cells = cells.size();
  stats_.threads = std::max<std::size_t>(
      1, std::min(threads_, std::max<std::size_t>(1, cells.size())));

  std::vector<RunMeasurement> merged(cells.size());
  std::vector<double> cell_s(cells.size(), 0.0);
  if (cells.empty()) return merged;

  // Compile once per campaign: the per-key hashes/digests/byte streams are
  // placement- and repeat-invariant, so every cell shares one read-only
  // artifact instead of re-deriving them (DESIGN.md §12).
  std::optional<workload::CompiledTrace> compiled;
  if (mode_ == ReplayMode::kCompiled) compiled.emplace(trace);

  util::WallTimer wall;
  // Shared-nothing fan-out: cell i writes only slot i, so the merge order
  // is the cell order by construction, independent of scheduling.
  fan_out(cells.size(), [&](std::size_t i) {
    // Cancellation point *between* cells: a canceled campaign skips
    // cells it has not started, never interrupts one mid-flight. The
    // skipped slots are discarded below by the throw.
    if (cancel_ != nullptr && cancel_->canceled()) return;
    faultinject::chaos_cell_delay(i);
    // Thread-CPU time, not wall: a cell's cost must not include the
    // time its worker spent descheduled, or an oversubscribed scheduler
    // would fabricate speedup.
    util::ThreadCpuTimer cell_timer;
    if (compiled) {
      // Each worker owns one arena for the whole campaign; resetting
      // rewinds the bump pointer while keeping the grown chunks, so
      // only a worker's first cell pays allocation at all.
      thread_local util::Arena arena;
      arena.reset();
      merged[i] = engine.run_once(*compiled, cells[i].placement,
                                  cells[i].repeat, &arena);
    } else {
      merged[i] = engine.run_once(trace, cells[i].placement, cells[i].repeat);
    }
    cell_s[i] = cell_timer.elapsed_s();
  });
  stats_.wall_s = wall.elapsed_s();
  throw_if_canceled();

  finalize_stats(stats_, cell_s);
  return merged;
}

CampaignResult CampaignRunner::run_checked(
    const SensitivityEngine& engine, const workload::Trace& trace,
    const std::vector<CampaignCell>& cells) {
  stats_ = CampaignStats{};
  stats_.cells = cells.size();
  stats_.threads = std::max<std::size_t>(
      1, std::min(threads_, std::max<std::size_t>(1, cells.size())));

  CampaignResult result;
  result.measurements.resize(cells.size());
  // Slot-indexed failures keep the ledger in cell order no matter how the
  // pool schedules cells — same shared-nothing trick as run().
  std::vector<std::optional<CellFailure>> failed(cells.size());
  std::vector<double> cell_s(cells.size(), 0.0);
  if (cells.empty()) return result;

  std::optional<workload::CompiledTrace> compiled;
  if (mode_ == ReplayMode::kCompiled) compiled.emplace(trace);

  util::WallTimer wall;
  fan_out(cells.size(), [&](std::size_t i) {
    if (cancel_ != nullptr && cancel_->canceled()) return;
    faultinject::chaos_cell_delay(i);
    util::ThreadCpuTimer cell_timer;
    execute_checked_cell(engine, trace, compiled ? &*compiled : nullptr,
                         cells[i], i, result.measurements[i], failed[i]);
    cell_s[i] = cell_timer.elapsed_s();
  });
  stats_.wall_s = wall.elapsed_s();
  throw_if_canceled();

  for (std::optional<CellFailure>& f : failed) {
    if (f) result.failures.push_back(std::move(*f));
  }

  finalize_stats(stats_, cell_s);
  return result;
}

CampaignResult CampaignRunner::measure_grid_checked(
    const SensitivityEngine& engine, const workload::Trace& trace,
    const std::vector<hybridmem::Placement>& placements) {
  const int repeats = engine.config().repeats;
  const std::vector<CampaignCell> cells = build_grid_cells(placements, repeats);
  return merge_placement_grid(run_checked(engine, trace, cells),
                              placements.size(), repeats);
}

namespace {

/// Shared state of one in-flight async grid. Owned jointly by the cell
/// closures and the merge continuation; the last reference dying frees it.
struct AsyncGrid {
  std::shared_ptr<const SensitivityEngine> engine;
  const workload::Trace* trace = nullptr;
  std::optional<workload::CompiledTrace> compiled;
  std::vector<CampaignCell> cells;
  std::size_t num_placements = 0;
  int repeats = 0;
  const util::CancelToken* cancel = nullptr;
  std::shared_ptr<util::TaskScheduler::Group> group;
  std::function<void(CampaignRunner::AsyncOutcome)> done;

  util::WallTimer wall;
  std::vector<std::optional<RunMeasurement>> slots;
  std::vector<std::optional<CellFailure>> failed;
  std::vector<double> cell_s;
  std::atomic<std::size_t> remaining{0};
};

/// The merge continuation: runs once, as a kRequest task, after the last
/// cell settles. Mirrors run_checked's tail exactly (including skipping
/// the totals ledger for canceled campaigns).
void merge_async_grid(const std::shared_ptr<AsyncGrid>& grid) {
  CampaignRunner::AsyncOutcome outcome;
  outcome.stats.cells = grid->cells.size();
  outcome.stats.threads = std::max<std::size_t>(
      1, std::min(grid->group->scheduler().threads(),
                  std::max<std::size_t>(1, grid->cells.size())));
  outcome.stats.wall_s = grid->wall.elapsed_s();
  if (grid->cancel != nullptr && grid->cancel->canceled()) {
    outcome.error =
        std::make_exception_ptr(util::CanceledError(grid->cancel->reason()));
  } else {
    CampaignResult raw;
    raw.measurements = std::move(grid->slots);
    for (std::optional<CellFailure>& f : grid->failed) {
      if (f) raw.failures.push_back(std::move(*f));
    }
    finalize_stats(outcome.stats, grid->cell_s);
    outcome.grid = merge_placement_grid(std::move(raw), grid->num_placements,
                                        grid->repeats);
  }
  grid->done(std::move(outcome));
}

}  // namespace

void CampaignRunner::measure_grid_checked_async(
    std::shared_ptr<const SensitivityEngine> engine,
    const workload::Trace& trace,
    std::vector<hybridmem::Placement> placements,
    const util::CancelToken* cancel,
    std::shared_ptr<util::TaskScheduler::Group> group,
    std::function<void(AsyncOutcome)> done) {
  auto grid = std::make_shared<AsyncGrid>();
  grid->repeats = engine->config().repeats;
  grid->num_placements = placements.size();
  grid->cells = build_grid_cells(placements, grid->repeats);
  grid->engine = std::move(engine);
  grid->trace = &trace;
  grid->compiled.emplace(trace);
  grid->cancel = cancel;
  grid->group = std::move(group);
  grid->done = std::move(done);

  const std::size_t n = grid->cells.size();
  if (n == 0) {
    // Degenerate grid: still deliver asynchronously, as a group task, so
    // callers observe one completion path.
    grid->group->submit(util::TaskScheduler::TaskClass::kRequest,
                        [grid] { merge_async_grid(grid); });
    return;
  }
  grid->slots.resize(n);
  grid->failed.resize(n);
  grid->cell_s.assign(n, 0.0);
  grid->remaining.store(n, std::memory_order_relaxed);

  util::TaskScheduler::Group& g = *grid->group;
  for (std::size_t i = 0; i < n; ++i) {
    g.submit(util::TaskScheduler::TaskClass::kCell, [grid, i] {
      // Same cell body as run_checked: cancellation between cells, chaos
      // delay, thread-CPU timing, checked attempt loop.
      if (grid->cancel == nullptr || !grid->cancel->canceled()) {
        faultinject::chaos_cell_delay(i);
        util::ThreadCpuTimer cell_timer;
        execute_checked_cell(*grid->engine, *grid->trace,
                             grid->compiled ? &*grid->compiled : nullptr,
                             grid->cells[i], i, grid->slots[i],
                             grid->failed[i]);
        grid->cell_s[i] = cell_timer.elapsed_s();
      }
      // The last cell to settle hands off to the merge continuation —
      // submitted from inside a still-outstanding task, so the scheduler
      // never observes a quiescent gap mid-campaign.
      if (grid->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        grid->group->submit(util::TaskScheduler::TaskClass::kRequest,
                            [grid] { merge_async_grid(grid); });
      }
    });
  }
}

std::string render_failure_ledger(const std::vector<CellFailure>& failures) {
  util::TablePrinter table({"cell", "fast keys", "repeat", "tries",
                            "events t/p/bw", "reason"});
  for (const CellFailure& f : failures) {
    const std::string events =
        std::to_string(f.faults.transient_faults) + "/" +
        std::to_string(f.faults.poison_hits) + "/" +
        std::to_string(f.faults.degraded_accesses);
    table.add_row({std::to_string(f.cell), std::to_string(f.fast_keys),
                   std::to_string(f.repeat), std::to_string(f.attempts),
                   events, f.error.to_string()});
  }
  return table.render();
}

std::vector<RunMeasurement> CampaignRunner::measure_grid(
    const SensitivityEngine& engine, const workload::Trace& trace,
    const std::vector<hybridmem::Placement>& placements) {
  const int repeats = engine.config().repeats;
  const std::vector<CampaignCell> cells = build_grid_cells(placements, repeats);
  const std::vector<RunMeasurement> runs = run(engine, trace, cells);

  std::vector<RunMeasurement> merged;
  merged.reserve(placements.size());
  std::vector<RunMeasurement> group(static_cast<std::size_t>(repeats));
  for (std::size_t p = 0; p < placements.size(); ++p) {
    for (int r = 0; r < repeats; ++r) {
      group[static_cast<std::size_t>(r)] =
          runs[p * static_cast<std::size_t>(repeats) +
               static_cast<std::size_t>(r)];
    }
    merged.push_back(average_runs(group));
  }
  return merged;
}

CampaignStats campaign_totals() {
  TotalsRegistry& reg = totals_registry();
  std::lock_guard lock(reg.mu);
  CampaignStats totals;
  totals.cells = reg.cell_s.size();
  totals.threads = reg.threads;
  totals.wall_s = reg.wall_s;
  totals.cpu_s = reg.cpu_s;
  if (!reg.cell_s.empty()) {
    std::vector<double> sorted = reg.cell_s;
    std::sort(sorted.begin(), sorted.end());
    totals.cell_p50_s = stats::percentile_sorted(sorted, 0.50);
    totals.cell_p95_s = stats::percentile_sorted(sorted, 0.95);
  }
  return totals;
}

void reset_campaign_totals() {
  TotalsRegistry& reg = totals_registry();
  std::lock_guard lock(reg.mu);
  reg.cell_s.clear();
  reg.threads = 0;
  reg.wall_s = 0.0;
  reg.cpu_s = 0.0;
}

}  // namespace mnemo::core
