#include "core/campaign.hpp"

#include <algorithm>
#include <mutex>

#include "stats/summary.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace mnemo::core {

namespace {

/// Process-wide accumulator behind campaign_totals(). Cell durations are
/// kept so the aggregate p50/p95 are exact; campaigns are small (at most
/// a few thousand cells per bench run).
struct TotalsRegistry {
  std::mutex mu;
  std::vector<double> cell_s;
  std::size_t threads = 0;  ///< widest fan-out seen
  double wall_s = 0.0;
  double cpu_s = 0.0;
};

TotalsRegistry& totals_registry() {
  static TotalsRegistry registry;
  return registry;
}

void record_campaign(const CampaignStats& stats,
                     const std::vector<double>& cell_s) {
  TotalsRegistry& reg = totals_registry();
  std::lock_guard lock(reg.mu);
  reg.cell_s.insert(reg.cell_s.end(), cell_s.begin(), cell_s.end());
  reg.threads = std::max(reg.threads, stats.threads);
  reg.wall_s += stats.wall_s;
  reg.cpu_s += stats.cpu_s;
}

}  // namespace

double CampaignStats::speedup() const {
  return wall_s > 0.0 ? cpu_s / wall_s : 0.0;
}

double CampaignStats::occupancy() const {
  return threads > 0 ? speedup() / static_cast<double>(threads) : 0.0;
}

void CampaignStats::merge(const CampaignStats& other) {
  // p50/p95 cannot be merged from summaries; keep a cell-weighted blend
  // as the closest order statistic available to a summary-only merge.
  const auto total = static_cast<double>(cells + other.cells);
  if (total > 0.0) {
    const auto wa = static_cast<double>(cells) / total;
    const auto wb = static_cast<double>(other.cells) / total;
    cell_p50_s = cell_p50_s * wa + other.cell_p50_s * wb;
    cell_p95_s = cell_p95_s * wa + other.cell_p95_s * wb;
  }
  cells += other.cells;
  threads = std::max(threads, other.threads);
  wall_s += other.wall_s;
  cpu_s += other.cpu_s;
}

std::string CampaignStats::render(const std::string& title) const {
  util::TablePrinter table({title, "value"});
  table.add_row({"cells run", std::to_string(cells)});
  table.add_row({"threads", std::to_string(threads)});
  table.add_row({"wall time (ms)", util::TablePrinter::num(wall_s * 1e3, 1)});
  table.add_row({"cpu time (ms)", util::TablePrinter::num(cpu_s * 1e3, 1)});
  table.add_row(
      {"cell p50 (ms)", util::TablePrinter::num(cell_p50_s * 1e3, 2)});
  table.add_row(
      {"cell p95 (ms)", util::TablePrinter::num(cell_p95_s * 1e3, 2)});
  table.add_row({"speedup vs serial",
                 util::TablePrinter::num(speedup(), 2) + "x"});
  table.add_row({"pool occupancy", util::TablePrinter::pct(occupancy(), 1)});
  return table.render();
}

CampaignRunner::CampaignRunner(std::size_t threads)
    : threads_(threads == 0 ? util::hardware_threads() : threads) {}

std::vector<RunMeasurement> CampaignRunner::run(
    const SensitivityEngine& engine, const workload::Trace& trace,
    const std::vector<CampaignCell>& cells) {
  stats_ = CampaignStats{};
  stats_.cells = cells.size();
  stats_.threads = std::max<std::size_t>(
      1, std::min(threads_, std::max<std::size_t>(1, cells.size())));

  std::vector<RunMeasurement> merged(cells.size());
  std::vector<double> cell_s(cells.size(), 0.0);
  if (cells.empty()) return merged;

  util::WallTimer wall;
  // Shared-nothing fan-out: cell i writes only slot i, so the merge order
  // is the cell order by construction, independent of scheduling.
  util::parallel_for(
      cells.size(),
      [&](std::size_t i) {
        // Thread-CPU time, not wall: a cell's cost must not include the
        // time its worker spent descheduled, or an oversubscribed pool
        // would fabricate speedup.
        util::ThreadCpuTimer cell_timer;
        merged[i] =
            engine.run_once(trace, cells[i].placement, cells[i].repeat);
        cell_s[i] = cell_timer.elapsed_s();
      },
      threads_);
  stats_.wall_s = wall.elapsed_s();

  std::vector<double> sorted = cell_s;
  std::sort(sorted.begin(), sorted.end());
  for (const double s : sorted) stats_.cpu_s += s;
  stats_.cell_p50_s = stats::percentile_sorted(sorted, 0.50);
  stats_.cell_p95_s = stats::percentile_sorted(sorted, 0.95);
  record_campaign(stats_, cell_s);
  return merged;
}

std::vector<RunMeasurement> CampaignRunner::measure_grid(
    const SensitivityEngine& engine, const workload::Trace& trace,
    const std::vector<hybridmem::Placement>& placements) {
  const int repeats = engine.config().repeats;
  std::vector<CampaignCell> cells;
  cells.reserve(placements.size() * static_cast<std::size_t>(repeats));
  for (const hybridmem::Placement& placement : placements) {
    for (int r = 0; r < repeats; ++r) cells.push_back({placement, r});
  }
  const std::vector<RunMeasurement> runs = run(engine, trace, cells);

  std::vector<RunMeasurement> merged;
  merged.reserve(placements.size());
  std::vector<RunMeasurement> group(static_cast<std::size_t>(repeats));
  for (std::size_t p = 0; p < placements.size(); ++p) {
    for (int r = 0; r < repeats; ++r) {
      group[static_cast<std::size_t>(r)] =
          runs[p * static_cast<std::size_t>(repeats) +
               static_cast<std::size_t>(r)];
    }
    merged.push_back(average_runs(group));
  }
  return merged;
}

CampaignStats campaign_totals() {
  TotalsRegistry& reg = totals_registry();
  std::lock_guard lock(reg.mu);
  CampaignStats totals;
  totals.cells = reg.cell_s.size();
  totals.threads = reg.threads;
  totals.wall_s = reg.wall_s;
  totals.cpu_s = reg.cpu_s;
  if (!reg.cell_s.empty()) {
    std::vector<double> sorted = reg.cell_s;
    std::sort(sorted.begin(), sorted.end());
    totals.cell_p50_s = stats::percentile_sorted(sorted, 0.50);
    totals.cell_p95_s = stats::percentile_sorted(sorted, 0.95);
  }
  return totals;
}

void reset_campaign_totals() {
  TotalsRegistry& reg = totals_registry();
  std::lock_guard lock(reg.mu);
  reg.cell_s.clear();
  reg.threads = 0;
  reg.wall_s = 0.0;
  reg.cpu_s = 0.0;
}

}  // namespace mnemo::core
