#pragma once

// Shared internals of the replay executors — the per-cell paths in
// sensitivity_engine.cpp and the lane-fused band in lane_band.cpp. Every
// run, whatever the ReplayMode, funnels its latency streams through
// derive_measurement here, which is what makes "bit-identical across
// replay modes" a structural property instead of a hope: the statistics
// code literally cannot diverge between modes. Not installed API — core
// internals only.

#include <algorithm>
#include <cstdint>
#include <span>

#include "core/baselines.hpp"
#include "stats/summary.hpp"
#include "util/assert.hpp"
#include "util/simd.hpp"
#include "util/status.hpp"
#include "workload/compiled_trace.hpp"

namespace mnemo::core::replay_detail {

/// Fit service ≈ a + b·bytes; degenerate samples (empty, or a single
/// record size) collapse to a flat line at the mean, which makes the
/// size-aware estimate model coincide with the uniform-delta one.
inline stats::Line fit_service_line(std::span<const double> bytes,
                                    std::span<const double> latency) {
  if (latency.empty()) return stats::Line{};
  const double first = bytes.front();
  bool distinct = false;
  for (const double b : bytes) {
    if (b != first) {
      distinct = true;
      break;
    }
  }
  if (!distinct || latency.size() < 2) {
    return stats::Line{stats::mean(latency), 0.0};
  }
  return stats::fit_line(bytes, latency);
}

/// fit_service_line with the campaign-invariant x-side work (distinct
/// scan + normal-equation moments) precomputed by CompiledTrace. Same
/// guards, same solver inputs, bit-identical Line — the byte stream is
/// only re-read for the y-side products.
inline stats::Line fit_service_line(
    const workload::ServiceFitMoments& moments,
    std::span<const double> bytes, std::span<const double> latency) {
  if (latency.empty()) return stats::Line{};
  if (!moments.distinct || latency.size() < 2) {
    return stats::Line{stats::mean(latency), 0.0};
  }
  return stats::fit_line_moments(moments.n, moments.sum_x, moments.sum_xx,
                                 bytes, latency);
}

/// How the tail percentiles are extracted from the latency multiset.
/// Both strategies interpolate between the same two sorted-rank values,
/// so they produce bit-identical p95/p99 — the compiled-replay
/// equivalence suite holds them against each other.
enum class PercentileMode : std::uint8_t {
  kSortMerge,  ///< legacy arm: sort both streams, merge, index (n log n)
  kSelect,     ///< compiled/fused arms: rank selection, no sort (O(n))
};

/// percentile_sorted without the sort: nth_element places exactly the
/// value that would sit at sorted rank `lo`, and the interpolation
/// partner at rank lo+1 is the minimum of the right partition (found by
/// util::simd::min_double — exact, order-independent). The interpolation
/// arithmetic is identical to stats::percentile_sorted, so the result is
/// the same double to the last bit. Mutates `scratch` (partial
/// ordering); O(n) per call.
template <typename Vec>
[[nodiscard]] double percentile_select(Vec& scratch, double q) {
  MNEMO_EXPECTS(!scratch.empty());
  if (scratch.size() == 1) return scratch[0];
  const double pos = q * static_cast<double>(scratch.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  const auto nth = scratch.begin() + static_cast<std::ptrdiff_t>(lo);
  std::nth_element(scratch.begin(), nth, scratch.end());
  if (lo + 1 >= scratch.size()) return scratch[scratch.size() - 1];
  const double next =
      util::simd::min_double(scratch.data() + lo + 1, scratch.size() - lo - 1);
  return *nth * (1.0 - frac) + next * frac;
}

/// Shared tail of every replay path: derive every per-run statistic from
/// the latency streams. Means and fits read the vectors in request order
/// *before* any reordering. kSortMerge then merges the two individually
/// sorted streams — the same sorted multiset (hence byte-identical
/// percentiles) as the concatenate-then-sort it replaced, without
/// re-comparing elements each stream already ordered. kSelect skips
/// sorting entirely and extracts the two tail ranks by selection; the
/// percentile values are provably the same doubles, and the compiled ≡
/// legacy tests plus the golden fixtures pin it.
///
/// `Vec` is std::vector<double> (heap replay) or std::pmr::vector<double>
/// (arena-backed compiled/fused replay); `merged` scratch must use the
/// same allocator strategy as the inputs. The compiled path hands in the
/// CompiledTrace's precomputed fit moments; the legacy path passes
/// nullptr and recomputes the x-side per cell.
template <typename Vec>
[[nodiscard]] util::Status derive_measurement(
    RunMeasurement& m, std::span<const double> read_bytes,
    std::span<const double> write_bytes, Vec& read_lat, Vec& write_lat,
    Vec& merged, PercentileMode percentiles,
    const workload::ServiceFitMoments* read_fit = nullptr,
    const workload::ServiceFitMoments* write_fit = nullptr) {
  m.reads = read_lat.size();
  m.writes = write_lat.size();
  m.avg_read_ns = read_lat.empty() ? 0.0 : stats::mean(read_lat);
  m.avg_write_ns = write_lat.empty() ? 0.0 : stats::mean(write_lat);
  m.read_vs_bytes = read_fit
                        ? fit_service_line(*read_fit, read_bytes, read_lat)
                        : fit_service_line(read_bytes, read_lat);
  m.write_vs_bytes =
      write_fit ? fit_service_line(*write_fit, write_bytes, write_lat)
                : fit_service_line(write_bytes, write_lat);
  if (!(m.runtime_ns > 0.0)) {
    // Every request cost 0ns (a degenerate profile): division would turn
    // avg_latency_ns/throughput_ops into NaN/inf and quietly poison every
    // downstream mean. Refuse with a typed error instead.
    util::Error e;
    e.code = util::ErrorCode::kFailedPrecondition;
    e.message = "run accumulated zero simulated runtime; "
                "throughput and average latency are undefined";
    return e;
  }
  m.avg_latency_ns = m.runtime_ns / static_cast<double>(m.requests);
  m.throughput_ops = static_cast<double>(m.requests) / (m.runtime_ns / 1e9);
  if (percentiles == PercentileMode::kSortMerge) {
    std::sort(read_lat.begin(), read_lat.end());
    std::sort(write_lat.begin(), write_lat.end());
    merged.resize(read_lat.size() + write_lat.size());
    std::merge(read_lat.begin(), read_lat.end(), write_lat.begin(),
               write_lat.end(), merged.begin());
    m.p95_ns = stats::percentile_sorted(merged, 0.95);
    m.p99_ns = stats::percentile_sorted(merged, 0.99);
  } else {
    merged.resize(read_lat.size() + write_lat.size());
    const auto split = std::copy(read_lat.begin(), read_lat.end(),
                                 merged.begin());
    std::copy(write_lat.begin(), write_lat.end(), split);
    m.p95_ns = percentile_select(merged, 0.95);
    m.p99_ns = percentile_select(merged, 0.99);
  }
  return {};
}

[[nodiscard]] inline util::Error empty_trace_error() {
  util::Error e;
  e.code = util::ErrorCode::kInvalidArgument;
  e.message = "trace has no requests to replay; measurement is undefined";
  return e;
}

}  // namespace mnemo::core::replay_detail
