#pragma once

#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/artifact_store.hpp"
#include "core/artifacts.hpp"
#include "core/mnemo.hpp"
#include "workload/trace.hpp"

namespace mnemo::core {

/// Configuration of a pipeline session: the Mnemo knobs plus the caching
/// policy. `cache_dir` empty (the default) runs everything in memory.
struct SessionConfig {
  MnemoConfig mnemo;
  /// Directory of the content-addressed artifact store; empty = no cache.
  std::string cache_dir;
  /// --no-cache: keep the directory configured but bypass it entirely.
  bool use_cache = true;
  /// Borrow an externally owned (thread-safe) store instead of opening
  /// `cache_dir`: `mnemo serve` shares one ArtifactStore across every
  /// client session. Non-owning; must outlive the Session. When set,
  /// `cache_dir` is ignored.
  ArtifactStore* shared_store = nullptr;
  /// Scenario 2b (ordering == kExternal): the externally produced tiering
  /// order. Required iff the ordering policy is kExternal.
  std::optional<std::vector<std::uint64_t>> external_order;
};

/// How one stage of a session run was satisfied — the --explain-cache
/// ledger entry.
struct StageTrace {
  std::string stage;
  std::string key;      ///< content hash addressing the stage's artifact
  bool from_cache = false;
  bool computed = false;
  bool saved = false;   ///< written back to the store this run
  bool joined = false;  ///< adopted from another session's in-flight work
};

/// The consultant as an explicit staged pipeline:
///
///   characterize -> measure -> estimate -> advise -> report
///
/// Each stage is lazy and memoized: asking for report() pulls exactly the
/// stages it needs, and each stage first consults the ArtifactStore under
/// a content hash of everything its output depends on. The measure stage
/// — the only one that touches the emulator — keys on the materialized
/// trace bytes, the store kind, the platform constants, the campaign grid
/// shape (payload mode, repeats, seed) and the fault plan; NOT on the
/// thread count (results are bit-identical at any count, DESIGN.md §6)
/// and NOT on presentation knobs like the fail policy. Downstream keys
/// chain on their upstream keys, so changing the SLO or the price factor
/// re-runs only the cheap analytic stages against a warm grid: a second
/// advise never touches the emulator (campaign_cells_run() == 0).
///
/// Degraded results never enter the store: a measure artifact with
/// quarantined cells is recomputed every run, so a cache can never launder
/// a faulted grid into a clean one.
class Session {
 public:
  Session(workload::Trace trace, SessionConfig config);

  /// Stage accessors: compute (or load) on first use, memoized after.
  const CharacterizeArtifact& characterize();
  const MeasureArtifact& measure();
  const EstimateArtifact& estimate();
  const AdviseArtifact& advise();
  const ReportArtifact& report();

  /// Re-query against the same grid: drops only the downstream memos, so
  /// the next advise()/report() reuses the measured baselines in place.
  void set_slo(double slo_slowdown);
  void set_price(double price_factor);

  /// Whether the measure stage has already been materialized (loaded,
  /// computed, or adopted) — the single-flight dispatcher's probe.
  [[nodiscard]] bool measured() const noexcept {
    return measure_.has_value();
  }

  /// Single-flight join: install a measure artifact computed by another
  /// session with the identical measure key, instead of replaying the
  /// grid here. The artifact must be clean (never adopt a degraded or
  /// partial grid) and the stage must not have been materialized yet.
  /// Recorded in the stage trace as "joined".
  void adopt_measure(MeasureArtifact measure);

  /// Continuation-based measure() for the serve scheduler: memo hits,
  /// cancellation, and disk-cache hits settle inline; otherwise the
  /// campaign's cells are submitted to `group` and `done` runs later as a
  /// scheduler task — no thread blocks on the grid. `done(error)` carries
  /// the exception measure() would have thrown (null on success, after
  /// which measured() is true). Exactly-once. The session must outlive
  /// `done`; results are bit-identical to measure() at any worker count.
  void measure_async(std::shared_ptr<util::TaskScheduler::Group> group,
                     std::function<void(std::exception_ptr)> done);

  /// Emulator campaign cells this session actually executed — 0 on a
  /// fully warm run (the incremental-rerun acceptance criterion).
  [[nodiscard]] std::size_t campaign_cells_run() const noexcept {
    return cells_run_;
  }

  /// The per-stage cache keys (computed on demand; stable across runs).
  [[nodiscard]] std::string trace_key() const;
  [[nodiscard]] std::string characterize_key() const;
  [[nodiscard]] std::string measure_key() const;
  [[nodiscard]] std::string estimate_key() const;
  [[nodiscard]] std::string advise_key() const;
  [[nodiscard]] std::string report_key() const;

  /// Stage-by-stage account of the run so far, for --explain-cache.
  [[nodiscard]] const std::vector<StageTrace>& stage_traces() const noexcept {
    return traces_;
  }
  [[nodiscard]] std::string explain_cache() const;

  /// The legacy one-shot report shape (Mnemo::profile's return type),
  /// assembled from the staged artifacts.
  [[nodiscard]] MnemoReport to_report();

  [[nodiscard]] const SessionConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const workload::Trace& trace() const noexcept {
    return trace_;
  }
  /// The store this session consults: the shared one when configured,
  /// otherwise the session-owned store opened on `cache_dir`.
  [[nodiscard]] ArtifactStore& store() noexcept {
    return config_.shared_store != nullptr ? *config_.shared_store
                                           : own_store_;
  }
  [[nodiscard]] const ArtifactStore& store() const noexcept {
    return config_.shared_store != nullptr ? *config_.shared_store
                                           : own_store_;
  }

 private:
  [[nodiscard]] OrderingPolicy effective_ordering() const;
  [[nodiscard]] bool cache_on() const noexcept {
    return config_.use_cache && store().enabled();
  }
  /// Cells of this session's measure grid: {Fast, Slow} × repeats.
  [[nodiscard]] std::size_t grid_cells() const noexcept {
    return 2 * static_cast<std::size_t>(config_.mnemo.repeats);
  }
  void install_measured_grid(CampaignResult grid);
  void trace_stage(std::string_view stage, const std::string& key,
                   bool from_cache, bool saved, bool joined = false);

  workload::Trace trace_;
  SessionConfig config_;
  ArtifactStore own_store_;
  std::string trace_key_;  ///< hashed once in the constructor

  std::optional<CharacterizeArtifact> characterize_;
  std::optional<MeasureArtifact> measure_;
  std::optional<EstimateArtifact> estimate_;
  std::optional<AdviseArtifact> advise_;
  std::optional<ReportArtifact> report_;

  std::size_t cells_run_ = 0;
  std::vector<StageTrace> traces_;
};

}  // namespace mnemo::core
