#pragma once

#include <cstdint>
#include <vector>

#include "core/pattern_engine.hpp"

namespace mnemo::core {

/// MnemoT's Pattern Engine extension: key-value-store-optimized tiering.
/// Each key gets a placement weight = accesses / size, so hot keys and
/// small keys are prioritized for FastMem — the methodology predominant in
/// existing tiering solutions (X-Mem, Unimem, Tahoe), computed here from
/// the workload descriptor alone at zero profiling overhead (Table IV).
class TieringEngine {
 public:
  /// Keys sorted by descending weight (ties broken by key ID for
  /// determinism). This converts any input distribution into a
  /// zipfian-like priority order (paper Fig 8f discussion).
  [[nodiscard]] static std::vector<std::uint64_t> priority_order(
      const AccessPattern& pattern);

  /// The per-key weights themselves (accesses / bytes).
  [[nodiscard]] static std::vector<double> weights(
      const AccessPattern& pattern);

  /// The 0/1-knapsack formulation some existing solutions use: choose the
  /// subset of keys maximizing total accesses subject to a FastMem byte
  /// budget. Exact dynamic program over a quantized capacity grid
  /// (`granularity_bytes` per cell); returns the chosen key set as a
  /// bitmap. Exponentially better than greedy only near the boundary, but
  /// included for fidelity and used as an ablation reference.
  [[nodiscard]] static std::vector<bool> knapsack_select(
      const AccessPattern& pattern, std::uint64_t fast_budget_bytes,
      std::uint64_t granularity_bytes = 4096);

  /// Total accesses captured by a FastMem prefix of `order` under a byte
  /// budget — the objective both greedy and knapsack maximize.
  [[nodiscard]] static std::uint64_t captured_accesses(
      const AccessPattern& pattern, const std::vector<std::uint64_t>& order,
      std::uint64_t fast_budget_bytes);
};

}  // namespace mnemo::core
