#pragma once

#include <cstdint>
#include <vector>

#include "faultinject/fault_plan.hpp"
#include "stats/log_histogram.hpp"
#include "stats/regression.hpp"

namespace mnemo::core {

/// Everything measured from one workload execution against one placement —
/// the client-side view the paper's Sensitivity Engine extracts.
struct RunMeasurement {
  double runtime_ns = 0.0;       ///< total simulated client runtime
  double throughput_ops = 0.0;   ///< requests / second
  double avg_latency_ns = 0.0;   ///< mean request service time
  double avg_read_ns = 0.0;      ///< mean over read requests
  double avg_write_ns = 0.0;     ///< mean over write requests
  double p95_ns = 0.0;           ///< tail latencies (reported, not modeled)
  double p99_ns = 0.0;
  std::uint64_t requests = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  double llc_hit_rate = 0.0;

  /// Service time regressed against record size (ns ≈ a + b·bytes), fit
  /// from the run's per-request samples. Lets the size-aware estimate
  /// model assign each key a delta matched to its record size instead of
  /// the workload-wide average (which biases size-correlated orderings
  /// like MnemoT's). Zero-initialized when a run has no such requests.
  stats::Line read_vs_bytes{};
  stats::Line write_vs_bytes{};

  /// Full per-request latency distribution of the run (log-scale
  /// buckets). Carried out of the baselines so the TailEstimator can form
  /// mixture quantiles for intermediate capacity splits.
  stats::LogHistogram latency_hist{};

  /// Fault events the deployment absorbed during this run; all-zero on a
  /// healthy platform, and all-zero is exactly the condition under which
  /// the measurement is bit-identical to the fault-free platform's.
  faultinject::FaultStats faults{};

  /// Field-for-field (hence bit-for-bit on identical computations)
  /// equality — the check behind the "cached == recomputed" contract.
  [[nodiscard]] friend bool operator==(const RunMeasurement&,
                                       const RunMeasurement&) = default;
};

/// The two extreme configurations that bound Mnemo's estimation curve.
struct PerfBaselines {
  RunMeasurement fast;  ///< all data in FastMem (best case)
  RunMeasurement slow;  ///< all data in SlowMem (worst case)

  /// Per-request service-time penalty of SlowMem residency, split by
  /// request type — the deltas the Estimate Engine applies per key.
  [[nodiscard]] double read_delta_ns() const {
    return slow.avg_read_ns - fast.avg_read_ns;
  }
  [[nodiscard]] double write_delta_ns() const {
    return slow.avg_write_ns - fast.avg_write_ns;
  }

  /// FastMem-only throughput gain over SlowMem-only (the paper's
  /// sensitivity headline, e.g. "up to 40% for Redis").
  [[nodiscard]] double sensitivity() const {
    return fast.throughput_ops / slow.throughput_ops - 1.0;
  }

  [[nodiscard]] friend bool operator==(const PerfBaselines&,
                                       const PerfBaselines&) = default;
};

/// Reduce repeated runs to a representative measurement (mean of every
/// field; tails are means of per-run tails).
RunMeasurement average_runs(const std::vector<RunMeasurement>& runs);

}  // namespace mnemo::core
