#pragma once

#include <string>

#include "core/artifacts.hpp"
#include "workload/trace.hpp"

namespace mnemo::core {

/// Stage-answer renderers shared by the CLI subcommands, Session::report
/// and the serve protocol. Serving mode promises responses bit-identical
/// to the single-client CLI answer, so there is exactly one place that
/// turns an artifact into text; presentation extras (cells-executed
/// counters, fault banners, cache diagnostics) stay in the CLI layer
/// because they depend on *how* a run was satisfied, not on the answer.

/// `mnemo characterize` body: workload summary + ordering head.
[[nodiscard]] std::string render_characterize(const workload::Trace& trace,
                                              const CharacterizeArtifact& c);

/// `mnemo measure` body: the baselines line, or the quarantined notice
/// when the grid is degraded.
[[nodiscard]] std::string render_measure(const MeasureArtifact& m);

/// The SLO verdict line (sweet spot or "no configuration..."). Only
/// meaningful for a non-degraded measure stage.
[[nodiscard]] std::string render_verdict(const AdviseArtifact& v);

/// `mnemo advise` body: baselines + verdict, degraded-aware.
[[nodiscard]] std::string render_advise(const MeasureArtifact& m,
                                        const AdviseArtifact& v);

}  // namespace mnemo::core
