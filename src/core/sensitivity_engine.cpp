#include "core/sensitivity_engine.hpp"

#include <algorithm>
#include <memory_resource>
#include <span>
#include <vector>

#include "core/campaign.hpp"
#include "core/replay_internal.hpp"
#include "hybridmem/hybrid_memory.hpp"
#include "kvstore/dual_server.hpp"
#include "stats/summary.hpp"
#include "util/arena.hpp"
#include "util/assert.hpp"
#include "workload/compiled_trace.hpp"

namespace mnemo::core {

SensitivityConfig::SensitivityConfig()
    : platform(hybridmem::paper_testbed()) {}

// The statistics tail (fit_service_line, percentile selection,
// derive_measurement) lives in replay_internal.hpp, shared verbatim with
// the lane-fused executor so the replay modes cannot drift apart.
using replay_detail::derive_measurement;
using replay_detail::empty_trace_error;
using replay_detail::PercentileMode;

SensitivityEngine::SensitivityEngine(SensitivityConfig config)
    : config_(std::move(config)) {
  MNEMO_EXPECTS(config_.repeats >= 1);
}

hybridmem::EmulationProfile SensitivityEngine::sized_platform(
    std::uint64_t dataset_bytes) const {
  hybridmem::EmulationProfile platform = config_.platform;
  // Headroom for index/journal overhead and slab rounding: 2x dataset.
  const std::uint64_t need =
      std::max<std::uint64_t>(dataset_bytes * 2, 64ULL * 1024 * 1024);
  platform.fast.capacity_bytes =
      std::max(platform.fast.capacity_bytes, need);
  platform.slow.capacity_bytes =
      std::max(platform.slow.capacity_bytes, need);
  return platform;
}

RunMeasurement SensitivityEngine::run_once(
    const workload::Trace& trace, const hybridmem::Placement& placement,
    int repeat) const {
  util::Result<RunMeasurement> run = try_run_once(trace, placement, repeat);
  MNEMO_ASSERT(run.ok() && "run_once requires a run that cannot fail");
  return run.value();
}

util::Result<RunMeasurement> SensitivityEngine::try_run_once(
    const workload::Trace& trace, const hybridmem::Placement& placement,
    int repeat, int attempt) const {
  if (trace.requests().empty()) return empty_trace_error();
  hybridmem::HybridMemory memory(sized_platform(trace.dataset_bytes()));

  kvstore::StoreConfig store_cfg;
  store_cfg.payload_mode = config_.payload_mode;
  store_cfg.seed = config_.seed + static_cast<std::uint64_t>(repeat) * 0x9e37;

  kvstore::DualServer servers(memory, config_.store, store_cfg);
  {
    util::Status loaded = servers.populate(trace, placement);
    if (!loaded.ok()) return loaded.error();
  }
  // The load phase should not pollute the measurement's cache state.
  memory.drop_caches();
  // Faults model degradation of the production serving window; the load
  // phase runs healthy, so a populate failure is always a genuine capacity
  // error. The stream folds in `attempt` so a quarantine retry redraws the
  // fault sequence while the store's service-jitter seed stays fixed.
  if (!config_.faults.empty()) {
    memory.arm_faults(config_.faults,
                      (static_cast<std::uint64_t>(repeat) << 16) +
                          static_cast<std::uint64_t>(attempt));
  }

  std::vector<double> read_lat;
  std::vector<double> write_lat;
  std::vector<double> read_bytes;
  std::vector<double> write_bytes;
  // The read/write split is unknown until the loop runs; full-length
  // reserves trade a little address space for zero growth reallocations.
  read_lat.reserve(trace.requests().size());
  write_lat.reserve(trace.requests().size());
  read_bytes.reserve(trace.requests().size());
  write_bytes.reserve(trace.requests().size());

  RunMeasurement m;
  m.requests = trace.requests().size();
  for (const workload::Request& req : trace.requests()) {
    const util::Result<kvstore::OpResult> served = servers.execute(req);
    if (!served.ok()) return served.error();
    const kvstore::OpResult r = served.value();
    MNEMO_ASSERT(r.ok && "all requested keys were populated");
    m.runtime_ns += r.service_ns;
    const auto bytes = static_cast<double>(trace.size_of(req.key));
    m.latency_hist.add(r.service_ns);
    if (req.op == workload::OpType::kRead) {
      read_lat.push_back(r.service_ns);
      read_bytes.push_back(bytes);
    } else {
      // Updates and inserts are both writes to the store.
      write_lat.push_back(r.service_ns);
      write_bytes.push_back(bytes);
    }
  }
  std::vector<double> merged;
  const util::Status derived =
      derive_measurement(m, read_bytes, write_bytes, read_lat, write_lat,
                         merged, PercentileMode::kSortMerge);
  if (!derived.ok()) return derived.error();
  m.llc_hit_rate = memory.llc().hit_rate();
  m.faults = memory.fault_stats();
  return m;
}

RunMeasurement SensitivityEngine::run_once(
    const workload::CompiledTrace& compiled,
    const hybridmem::Placement& placement, int repeat,
    util::Arena* arena) const {
  util::Result<RunMeasurement> run =
      try_run_once(compiled, placement, repeat, 0, arena);
  MNEMO_ASSERT(run.ok() && "run_once requires a run that cannot fail");
  return run.value();
}

util::Result<RunMeasurement> SensitivityEngine::try_run_once(
    const workload::CompiledTrace& compiled,
    const hybridmem::Placement& placement, int repeat, int attempt,
    util::Arena* arena) const {
  if (compiled.request_count() == 0) return empty_trace_error();

  // One resource backs every per-cell allocation below — the platform's
  // flat tables, both stores' slot pools, and the latency streams. With an
  // arena those become grow-once bump allocations the worker reuses across
  // cells; without one this is exactly the heap the Trace overload uses.
  std::pmr::memory_resource* cell_memory =
      arena != nullptr ? static_cast<std::pmr::memory_resource*>(arena)
                       : std::pmr::get_default_resource();

  hybridmem::HybridMemory memory(sized_platform(compiled.dataset_bytes()),
                                 cell_memory);

  kvstore::StoreConfig store_cfg;
  store_cfg.payload_mode = config_.payload_mode;
  store_cfg.seed = config_.seed + static_cast<std::uint64_t>(repeat) * 0x9e37;
  store_cfg.table_memory = cell_memory;

  kvstore::DualServer servers(memory, config_.store, store_cfg);
  {
    util::Status loaded = servers.populate(compiled, placement);
    if (!loaded.ok()) return loaded.error();
  }
  memory.drop_caches();
  if (!config_.faults.empty()) {
    memory.arm_faults(config_.faults,
                      (static_cast<std::uint64_t>(repeat) << 16) +
                          static_cast<std::uint64_t>(attempt));
  }

  std::pmr::vector<double> read_lat(cell_memory);
  std::pmr::vector<double> write_lat(cell_memory);
  // Exact counts are campaign invariants the compile step already paid for.
  read_lat.reserve(compiled.read_count());
  write_lat.reserve(compiled.write_count());

  RunMeasurement m;
  m.requests = compiled.request_count();
  const std::span<const std::uint64_t> hashes = compiled.key_hashes();
  const std::span<const std::uint64_t> digests = compiled.key_digests();
  // Replay off the compiled flat streams (1-byte ops + 4-byte keys) rather
  // than the Trace's Request structs, through the unchecked execute form —
  // every key was bounds-validated once when the trace compiled.
  const std::span<const workload::OpType> ops = compiled.ops();
  const std::span<const std::uint32_t> keys = compiled.keys();
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const std::uint32_t key = keys[i];
    const kvstore::KeyHints hints{hashes[key], digests[key]};
    const util::Result<kvstore::OpResult> served =
        servers.execute(ops[i], key, hints);
    if (!served.ok()) return served.error();
    const kvstore::OpResult r = served.value();
    MNEMO_ASSERT(r.ok && "all requested keys were populated");
    m.runtime_ns += r.service_ns;
    m.latency_hist.add(r.service_ns);
    if (ops[i] == workload::OpType::kRead) {
      read_lat.push_back(r.service_ns);
    } else {
      write_lat.push_back(r.service_ns);
    }
  }
  std::pmr::vector<double> merged(cell_memory);
  // The per-request byte streams are placement-invariant: the compiled
  // trace carries them pre-split, in the same order the pushes above used.
  const util::Status derived =
      derive_measurement(m, compiled.read_bytes(), compiled.write_bytes(),
                         read_lat, write_lat, merged,
                         PercentileMode::kSelect, &compiled.read_fit(),
                         &compiled.write_fit());
  if (!derived.ok()) return derived.error();
  m.llc_hit_rate = memory.llc().hit_rate();
  m.faults = memory.fault_stats();
  return m;
}

RunMeasurement SensitivityEngine::measure(
    const workload::Trace& trace,
    const hybridmem::Placement& placement) const {
  CampaignRunner runner(config_.threads, config_.cancel, config_.scheduler,
                        config_.group);
  return runner.measure_grid(*this, trace, {placement}).front();
}

PerfBaselines SensitivityEngine::baselines(
    const workload::Trace& trace) const {
  CampaignRunner runner(config_.threads, config_.cancel, config_.scheduler,
                        config_.group);
  const std::vector<RunMeasurement> merged = runner.measure_grid(
      *this, trace,
      {hybridmem::Placement(trace.key_count(), hybridmem::NodeId::kFast),
       hybridmem::Placement(trace.key_count(), hybridmem::NodeId::kSlow)});
  PerfBaselines b;
  b.fast = merged[0];
  b.slow = merged[1];
  return b;
}

}  // namespace mnemo::core
