#include "core/sensitivity_engine.hpp"

#include <algorithm>
#include <vector>

#include "core/campaign.hpp"
#include "hybridmem/hybrid_memory.hpp"
#include "kvstore/dual_server.hpp"
#include "stats/summary.hpp"
#include "util/assert.hpp"

namespace mnemo::core {

SensitivityConfig::SensitivityConfig()
    : platform(hybridmem::paper_testbed()) {}

namespace {

/// Fit service ≈ a + b·bytes; degenerate samples (empty, or a single
/// record size) collapse to a flat line at the mean, which makes the
/// size-aware estimate model coincide with the uniform-delta one.
stats::Line fit_service_line(const std::vector<double>& bytes,
                             const std::vector<double>& latency) {
  if (latency.empty()) return stats::Line{};
  const double first = bytes.front();
  bool distinct = false;
  for (const double b : bytes) {
    if (b != first) {
      distinct = true;
      break;
    }
  }
  if (!distinct || latency.size() < 2) {
    return stats::Line{stats::mean(latency), 0.0};
  }
  return stats::fit_line(bytes, latency);
}

}  // namespace

SensitivityEngine::SensitivityEngine(SensitivityConfig config)
    : config_(std::move(config)) {
  MNEMO_EXPECTS(config_.repeats >= 1);
}

hybridmem::EmulationProfile SensitivityEngine::sized_platform(
    const workload::Trace& trace) const {
  hybridmem::EmulationProfile platform = config_.platform;
  // Headroom for index/journal overhead and slab rounding: 2x dataset.
  const std::uint64_t need =
      std::max<std::uint64_t>(trace.dataset_bytes() * 2,
                              64ULL * 1024 * 1024);
  platform.fast.capacity_bytes =
      std::max(platform.fast.capacity_bytes, need);
  platform.slow.capacity_bytes =
      std::max(platform.slow.capacity_bytes, need);
  return platform;
}

RunMeasurement SensitivityEngine::run_once(
    const workload::Trace& trace, const hybridmem::Placement& placement,
    int repeat) const {
  util::Result<RunMeasurement> run = try_run_once(trace, placement, repeat);
  MNEMO_ASSERT(run.ok() && "run_once requires a run that cannot fail");
  return run.value();
}

util::Result<RunMeasurement> SensitivityEngine::try_run_once(
    const workload::Trace& trace, const hybridmem::Placement& placement,
    int repeat, int attempt) const {
  hybridmem::HybridMemory memory(sized_platform(trace));

  kvstore::StoreConfig store_cfg;
  store_cfg.payload_mode = config_.payload_mode;
  store_cfg.seed = config_.seed + static_cast<std::uint64_t>(repeat) * 0x9e37;

  kvstore::DualServer servers(memory, config_.store, store_cfg);
  {
    util::Status loaded = servers.populate(trace, placement);
    if (!loaded.ok()) return loaded.error();
  }
  // The load phase should not pollute the measurement's cache state.
  memory.drop_caches();
  // Faults model degradation of the production serving window; the load
  // phase runs healthy, so a populate failure is always a genuine capacity
  // error. The stream folds in `attempt` so a quarantine retry redraws the
  // fault sequence while the store's service-jitter seed stays fixed.
  if (!config_.faults.empty()) {
    memory.arm_faults(config_.faults,
                      (static_cast<std::uint64_t>(repeat) << 16) +
                          static_cast<std::uint64_t>(attempt));
  }

  std::vector<double> read_lat;
  std::vector<double> write_lat;
  std::vector<double> read_bytes;
  std::vector<double> write_bytes;
  read_lat.reserve(trace.requests().size());

  RunMeasurement m;
  m.requests = trace.requests().size();
  for (const workload::Request& req : trace.requests()) {
    const util::Result<kvstore::OpResult> served = servers.execute(req);
    if (!served.ok()) return served.error();
    const kvstore::OpResult r = served.value();
    MNEMO_ASSERT(r.ok && "all requested keys were populated");
    m.runtime_ns += r.service_ns;
    const auto bytes = static_cast<double>(trace.size_of(req.key));
    m.latency_hist.add(r.service_ns);
    if (req.op == workload::OpType::kRead) {
      read_lat.push_back(r.service_ns);
      read_bytes.push_back(bytes);
    } else {
      // Updates and inserts are both writes to the store.
      write_lat.push_back(r.service_ns);
      write_bytes.push_back(bytes);
    }
  }
  m.reads = read_lat.size();
  m.writes = write_lat.size();
  m.avg_read_ns = read_lat.empty() ? 0.0 : stats::mean(read_lat);
  m.avg_write_ns = write_lat.empty() ? 0.0 : stats::mean(write_lat);
  m.read_vs_bytes = fit_service_line(read_bytes, read_lat);
  m.write_vs_bytes = fit_service_line(write_bytes, write_lat);
  m.avg_latency_ns = m.runtime_ns / static_cast<double>(m.requests);
  m.throughput_ops = static_cast<double>(m.requests) / (m.runtime_ns / 1e9);

  std::vector<double> all;
  all.reserve(read_lat.size() + write_lat.size());
  all.insert(all.end(), read_lat.begin(), read_lat.end());
  all.insert(all.end(), write_lat.begin(), write_lat.end());
  std::sort(all.begin(), all.end());
  m.p95_ns = stats::percentile_sorted(all, 0.95);
  m.p99_ns = stats::percentile_sorted(all, 0.99);
  m.llc_hit_rate = memory.llc().hit_rate();
  m.faults = memory.fault_stats();
  return m;
}

RunMeasurement SensitivityEngine::measure(
    const workload::Trace& trace,
    const hybridmem::Placement& placement) const {
  CampaignRunner runner(config_.threads, config_.cancel);
  return runner.measure_grid(*this, trace, {placement}).front();
}

PerfBaselines SensitivityEngine::baselines(
    const workload::Trace& trace) const {
  CampaignRunner runner(config_.threads, config_.cancel);
  const std::vector<RunMeasurement> merged = runner.measure_grid(
      *this, trace,
      {hybridmem::Placement(trace.key_count(), hybridmem::NodeId::kFast),
       hybridmem::Placement(trace.key_count(), hybridmem::NodeId::kSlow)});
  PerfBaselines b;
  b.fast = merged[0];
  b.slow = merged[1];
  return b;
}

}  // namespace mnemo::core
