#pragma once

#include <cstddef>
#include <optional>
#include <span>

#include "core/sensitivity_engine.hpp"
#include "hybridmem/placement.hpp"
#include "util/status.hpp"

namespace mnemo::util {
class Arena;
}

namespace mnemo::workload {
class CompiledTrace;
}

namespace mnemo::core {

/// The lane-fused replay executor (DESIGN.md §14): one pass over the
/// shared CompiledTrace advances K independent per-cell state machines —
/// K deployments (HybridMemory + DualServer), K latency streams, K fault
/// injectors — so the op-stream decode, the key-hash/digest hint loads
/// and the fault-plan lookups are paid once per op instead of once per
/// op per cell, and the op/key streams stay cache-resident across lanes.
///
/// Bit-identity with the per-cell path is structural, not statistical:
/// each lane's state machine executes exactly the instruction sequence
/// SensitivityEngine::try_run_once would — same construction order, same
/// seeds, same per-op store calls, same sequential float accumulation
/// per lane — the lanes are only *interleaved*, and no state is shared
/// between them. One deliberate exception rides on top: lanes in the
/// same band that share a placement and differ only in `repeat`
/// ("repeat siblings") run identical deterministic state machines, so
/// the lowest-repeat sibling acts as leader and records the pre-noise
/// service time of every op; each follower then replays that skeleton
/// through its own per-repeat ServiceNoise streams, reproducing its
/// per-cell result bit-for-bit at a fraction of the cost. The sharing
/// self-disables whenever it could diverge: any armed fault plan, any
/// leader eviction/TTL-expiration, or a leader error sends followers
/// back to ordinary full replay. The batch kernels (util::simd) are exact:
/// per-lane service accumulation is elementwise (never a reassociated
/// reduction) and the histogram batch indexes through an exact boundary
/// table. tests/core/test_lane_fusion.cpp pins fused ≡ per-cell ≡ legacy
/// across lane widths, thread counts, stores and fault plans.
class LaneBand {
 public:
  /// Hard cap on lanes per band: bounds the per-band stack state and the
  /// fixed-width SIMD scratch. CampaignRunner clamps its lane width here.
  static constexpr std::size_t kMaxLanes = 16;
  /// Default band width — wide enough to amortize decode and fill an
  /// AVX2 vector, narrow enough to keep K deployments cache-friendly.
  static constexpr std::size_t kDefaultLanes = 4;

  /// One lane = one campaign cell replaying under this band. `arena` may
  /// be null (heap allocation, like the compiled path without an arena);
  /// when set it must be freshly reset and is exclusively this lane's
  /// for the duration of replay().
  struct Lane {
    const hybridmem::Placement* placement = nullptr;
    int repeat = 0;
    int attempt = 0;
    util::Arena* arena = nullptr;
  };

  /// Replay every lane in one pass. `out[i]` receives exactly what
  /// engine.try_run_once(compiled, *lanes[i].placement, lanes[i].repeat,
  /// lanes[i].attempt, lanes[i].arena) would return — including typed
  /// errors: a lane that fails (populate capacity, zero-runtime guard)
  /// carries its error while the surviving lanes complete the pass.
  /// Requires 1 <= lanes.size() <= kMaxLanes and out.size() ==
  /// lanes.size().
  static void replay(
      const SensitivityEngine& engine,
      const workload::CompiledTrace& compiled, std::span<const Lane> lanes,
      std::span<std::optional<util::Result<RunMeasurement>>> out);
};

}  // namespace mnemo::core
