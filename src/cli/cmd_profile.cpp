#include "cli/cli_common.hpp"
#include "cli/commands.hpp"
#include "core/campaign.hpp"
#include "core/mnemo.hpp"
#include "core/tail_estimator.hpp"
#include "kvstore/factory.hpp"
#include "util/bytes.hpp"
#include "util/table.hpp"
#include "workload/suite.hpp"

namespace mnemo::cli {

int cmd_profile(const Args& args, std::ostream& out, std::ostream& err) {
  util::ArgParser parser("mnemo profile",
                         "profile a workload and emit sizing advice");
  add_workload_options(parser);
  add_mnemo_options(parser);
  add_fault_options(parser);
  add_cache_options(parser);
  parser.add_option("out", "advice CSV path (key id, est throughput, cost)",
                    "");
  std::string error;
  if (!parser.parse(args, &error)) {
    err << error << "\n" << parser.help();
    return 2;
  }
  core::Session session(load_workload(parser), session_config(parser));
  print_fault_banner(session.config().mnemo, out);
  return emit_session_report(parser, session, out, err);
}

int cmd_plan(const Args& args, std::ostream& out, std::ostream& err) {
  util::ArgParser parser("mnemo plan",
                         "capacity plan for the Table III suite");
  add_mnemo_options(parser);
  add_fault_options(parser);
  std::string error;
  if (!parser.parse(args, &error)) {
    err << error << "\n" << parser.help();
    return 2;
  }
  core::MnemoConfig cfg = mnemo_config(parser);
  apply_fault_options(parser, cfg);
  const core::Mnemo mnemo(cfg);
  print_fault_banner(cfg, out);
  util::TablePrinter table(
      {"workload", "DRAM", "NVM", "cost vs DRAM-only", "slowdown"});
  std::vector<core::CellFailure> all_failures;
  std::string first_failed_workload;
  for (const auto& spec : workload::paper_suite()) {
    const workload::Trace trace = workload::Trace::generate(spec);
    const core::MnemoReport report = mnemo.profile(trace);
    if (report.partial()) {
      if (all_failures.empty()) first_failed_workload = spec.name;
      all_failures.insert(all_failures.end(), report.cell_failures.begin(),
                          report.cell_failures.end());
    }
    if (report.degraded) {
      table.add_row({spec.name, "-", "-", "quarantined", "-"});
      continue;
    }
    if (!report.slo_choice) {
      table.add_row({spec.name, "-", "-", "SLO unreachable", "-"});
      continue;
    }
    const core::SloChoice& c = *report.slo_choice;
    table.add_row(
        {spec.name, util::format_bytes(c.point.fast_bytes),
         util::format_bytes(trace.dataset_bytes() - c.point.fast_bytes),
         util::TablePrinter::pct(c.cost_factor, 0),
         util::TablePrinter::pct(c.slowdown_vs_fast, 1)});
  }
  out << table.render();
  if (!cfg.faults.empty()) {
    if (!all_failures.empty()) {
      out << "\npartial results: " << all_failures.size()
          << " campaign cell(s) quarantined\n"
          << core::render_failure_ledger(all_failures);
    } else {
      out << "\nno campaign cells quarantined\n";
    }
  }
  maybe_print_campaign_stats(parser, out);
  if (!all_failures.empty() &&
      cfg.fail_policy == faultinject::FailPolicy::kAbort) {
    const core::CellFailure& f = all_failures.front();
    err << "fault policy abort: workload " << first_failed_workload
        << " cell #" << f.cell << " (fast keys " << f.fast_keys
        << ", repeat " << f.repeat
        << ") quarantined: " << f.error.to_string() << "\n";
    return 1;
  }
  return 0;
}

int cmd_compare(const Args& args, std::ostream& out, std::ostream& err) {
  util::ArgParser parser("mnemo compare",
                         "profile one workload across all three store "
                         "architectures");
  add_workload_options(parser);
  add_mnemo_options(parser);
  std::string error;
  if (!parser.parse(args, &error)) {
    err << error << "\n" << parser.help();
    return 2;
  }
  const workload::Trace trace = load_workload(parser);
  core::MnemoConfig cfg = mnemo_config(parser);
  util::TablePrinter table({"store", "FastMem-only ops/s",
                            "SlowMem-only ops/s", "sensitivity",
                            "SLO cost R(p)", "savings"});
  for (const kvstore::StoreKind kind : kvstore::kAllStoreKinds) {
    cfg.store = kind;
    const core::Mnemo mnemo(cfg);
    const core::MnemoReport report = mnemo.profile(trace);
    std::string cost = "-";
    std::string savings = "-";
    if (report.slo_choice) {
      cost = util::TablePrinter::num(report.slo_choice->cost_factor, 3);
      savings =
          util::TablePrinter::pct(report.slo_choice->savings_vs_fast, 1);
    }
    table.add_row(
        {std::string(kvstore::to_string(kind)),
         util::TablePrinter::num(report.baselines.fast.throughput_ops, 0),
         util::TablePrinter::num(report.baselines.slow.throughput_ops, 0),
         util::TablePrinter::pct(report.baselines.sensitivity(), 1), cost,
         savings});
  }
  out << "workload: " << trace.name() << "\n" << table.render();
  maybe_print_campaign_stats(parser, out);
  return 0;
}

int cmd_tails(const Args& args, std::ostream& out, std::ostream& err) {
  util::ArgParser parser("mnemo tails",
                         "mixture-model tail estimates along the curve");
  add_workload_options(parser);
  add_mnemo_options(parser);
  std::string error;
  if (!parser.parse(args, &error)) {
    err << error << "\n" << parser.help();
    return 2;
  }
  const workload::Trace trace = load_workload(parser);
  const core::MnemoConfig cfg = mnemo_config(parser);
  const core::Mnemo mnemo(cfg);
  const core::MnemoReport report = mnemo.profile(trace);
  util::TablePrinter table({"FastMem keys", "cost R(p)", "fast req share",
                            "est p50 (us)", "est p95 (us)", "est p99 (us)"});
  for (const double frac : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const auto idx = static_cast<std::size_t>(
        frac * static_cast<double>(report.curve.points.size() - 1));
    const core::EstimatePoint& p = report.curve.points[idx];
    const core::TailEstimate est = core::TailEstimator::estimate(
        report.pattern, report.order, p.fast_keys, report.baselines);
    table.add_row({std::to_string(p.fast_keys),
                   util::TablePrinter::num(p.cost_factor, 3),
                   util::TablePrinter::pct(est.fast_request_share, 1),
                   util::TablePrinter::num(est.p50_ns / 1e3, 1),
                   util::TablePrinter::num(est.p95_ns / 1e3, 1),
                   util::TablePrinter::num(est.p99_ns / 1e3, 1)});
  }
  out << table.render();
  out << "\ntails use the baseline-mixture extension (the paper reports "
         "but does not estimate tails).\n";
  maybe_print_campaign_stats(parser, out);
  return 0;
}

}  // namespace mnemo::cli
