#include <cstdio>

#include "cli/cli_common.hpp"
#include "cli/commands.hpp"
#include "core/migration.hpp"
#include "hybridmem/emulation_profile.hpp"
#include "util/bytes.hpp"
#include "util/table.hpp"

namespace mnemo::cli {

int cmd_migrate(const Args& args, std::ostream& out, std::ostream& err) {
  util::ArgParser parser(
      "mnemo migrate",
      "dynamic re-tiering (MnemoDyn extension) vs static placement");
  add_workload_options(parser);
  parser.add_option("store", "store architecture", "vermilion");
  parser.add_option("threads",
                    "task-scheduler worker threads for measurement "
                    "campaigns (0 = hardware)",
                    "0");
  parser.add_option("budget", "FastMem budget as a dataset fraction", "0.3");
  parser.add_option("epoch", "requests per re-tiering epoch", "2000");
  parser.add_option("cap", "max migrated bytes per epoch (0 = unlimited)",
                    "16777216");
  parser.add_flag("background", "migrations do not stall the client");
  parser.add_flag("reactive", "disable drift prediction");
  std::string error;
  if (!parser.parse(args, &error)) {
    err << error << "\n" << parser.help();
    return 2;
  }
  const workload::Trace trace = load_workload(parser);
  const double budget = parser.get_double("budget");
  if (budget <= 0.0 || budget > 1.0) {
    err << "--budget must be in (0, 1]\n";
    return 2;
  }

  core::SensitivityConfig sens;
  sens.store = parse_store(parser.get("store"));
  sens.repeats = 1;
  sens.threads = static_cast<std::size_t>(parser.get_u64("threads"));
  core::MigrationConfig mig;
  mig.fast_budget_bytes = static_cast<std::uint64_t>(
      budget * static_cast<double>(trace.dataset_bytes()));
  mig.epoch_requests = parser.get_u64("epoch");
  mig.migration_bytes_per_epoch = parser.get_u64("cap");
  mig.foreground = !parser.has_flag("background");
  mig.predictive = !parser.has_flag("reactive");

  const core::DynamicTierer tierer(sens, mig);
  const core::RunMeasurement oracle = tierer.run_static_oracle(trace);
  const core::MigrationResult dynamic = tierer.run(trace);

  util::TablePrinter table({"strategy", "throughput (ops/s)", "vs static",
                            "keys moved", "migration (ms)"});
  table.add_row({"static oracle (MnemoT advice)",
                 util::TablePrinter::num(oracle.throughput_ops, 0), "0.0%",
                 "0", "0"});
  table.add_row(
      {mig.predictive ? "dynamic (predictive)" : "dynamic (reactive)",
       util::TablePrinter::num(dynamic.measurement.throughput_ops, 0),
       util::TablePrinter::pct(
           dynamic.measurement.throughput_ops / oracle.throughput_ops - 1.0,
           1),
       std::to_string(dynamic.migrations),
       util::TablePrinter::num(dynamic.migration_ns / 1e6, 0)});
  out << "workload: " << trace.name() << ", FastMem budget "
      << util::format_bytes(mig.fast_budget_bytes) << "\n"
      << table.render();
  return 0;
}

int cmd_testbed(const Args&, std::ostream& out, std::ostream&) {
  const auto p = hybridmem::paper_testbed();
  util::TablePrinter table({"node", "latency (ns)", "bandwidth (GB/s)",
                            "capacity"});
  table.add_row({std::string(p.fast.name),
                 util::TablePrinter::num(p.fast.latency_ns, 1),
                 util::TablePrinter::num(p.fast.bandwidth_gbps, 2),
                 util::format_bytes(p.fast.capacity_bytes)});
  table.add_row({std::string(p.slow.name),
                 util::TablePrinter::num(p.slow.latency_ns, 1),
                 util::TablePrinter::num(p.slow.bandwidth_gbps, 2),
                 util::format_bytes(p.slow.capacity_bytes)});
  out << table.render();
  char line[160];
  std::snprintf(line, sizeof line,
                "factors: B %.2fx bandwidth, L %.2fx latency; LLC %s\n",
                p.bandwidth_factor(), p.latency_factor(),
                util::format_bytes(p.llc_bytes).c_str());
  out << line;
  return 0;
}

int cmd_help(std::ostream& out) {
  out << "mnemo — memory sizing & data tiering consultant for hybrid "
         "memory systems\n\n"
         "usage: mnemo <command> [options]\n\n"
         "commands:\n"
         "  workloads    list the built-in Table III workload suite\n"
         "  generate     materialize a workload trace to CSV\n"
         "  inspect      characterize a workload (skew, reuse, cache fit)\n"
         "  profile      run Mnemo/MnemoT on a workload, emit the advice\n"
         "  run          the same flow as explicit pipeline stages\n"
         "  characterize stage 1: access pattern and key ordering\n"
         "  measure      stage 2: baseline measurement campaign\n"
         "  advise       stages 1-4: SLO verdict (warm cache: no replays)\n"
         "  report       stages 1-5: byte-stable report artifact\n"
         "  serve        long-running JSON service (pipe or Unix socket)\n"
         "  fsck         scan an artifact cache for crash damage\n"
         "  compare      profile one workload across all three stores\n"
         "  plan         capacity plan for the whole suite at an SLO\n"
         "  spec         print a workload spec-file template\n"
         "  downsample   shrink a trace while preserving its distribution\n"
         "  tails        mixture-model tail estimates along the curve\n"
         "  migrate      dynamic re-tiering vs static placement\n"
         "  testbed      show the emulated platform (Table I)\n"
         "  help         this text\n\n"
         "pipeline commands take --cache-dir DIR to reuse artifacts across "
         "runs,\n--no-cache to bypass it, and --explain-cache to see "
         "per-stage decisions.\n\n"
         "run `mnemo <command> --help` is not needed: invalid options "
         "print the command's usage.\n";
  return 0;
}

}  // namespace mnemo::cli
