#include <ostream>

#include "cli/cli_common.hpp"
#include "cli/commands.hpp"
#include "core/artifact_store.hpp"

/// `mnemo fsck` — crash recovery for an artifact cache directory. Scans
/// every artifact file for torn, truncated or foreign content, moves the
/// damaged ones into `<dir>/quarantine/` (with a ledger of why), reaps
/// temp files left behind by dead writers, and reconciles the write
/// journal. After a repair pass, a warm pipeline run recomputes exactly
/// the quarantined keys and serves everything else from cache.
namespace mnemo::cli {

int cmd_fsck(const Args& args, std::ostream& out, std::ostream& err) {
  util::ArgParser parser("mnemo fsck",
                         "scan an artifact cache directory for crash "
                         "damage; quarantine torn or foreign artifacts and "
                         "reap dead writers' temp files");
  parser.add_option("cache-dir",
                    "content-addressed artifact cache directory to check",
                    "");
  parser.add_flag("dry-run",
                  "report damage without moving or deleting anything; "
                  "exit 1 when damage is found");
  std::string error;
  if (!parser.parse(args, &error)) {
    err << error << "\n" << parser.help();
    return 2;
  }
  const std::string dir = parser.get("cache-dir");
  if (dir.empty()) {
    err << "--cache-dir is required\n" << parser.help();
    return 2;
  }

  const bool dry_run = parser.has_flag("dry-run");
  core::ArtifactStore store(dir);
  const core::FsckReport report = store.fsck(/*repair=*/!dry_run);
  out << report.render();
  // Repair leaves a healthy directory (exit 0); a dry run that found
  // damage exits 1, the conventional "errors remain on disk".
  return dry_run && !report.clean() ? 1 : 0;
}

}  // namespace mnemo::cli
