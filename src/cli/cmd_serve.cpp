#include <csignal>
#include <iostream>

#include "cli/cli_common.hpp"
#include "cli/commands.hpp"
#include "serve/server.hpp"
#include "serve/socket.hpp"

/// `mnemo serve` — the consultant as a long-running service. One Server
/// answers the newline-delimited JSON protocol either over stdin/stdout
/// (pipe mode, the default: trivially scriptable and transcript-testable)
/// or over a Unix-domain socket (--socket PATH) for multiple concurrent
/// clients. All clients share one artifact store and one single-flight
/// measure memo, so identical questions cost one emulator replay total.
namespace mnemo::cli {

namespace {

/// The endpoint the signal handler must reach. Written once before the
/// handlers are installed; the handler only calls the async-signal-safe
/// SocketEndpoint::stop().
serve::SocketEndpoint* g_endpoint = nullptr;

void handle_stop_signal(int) {
  if (g_endpoint != nullptr) g_endpoint->stop();
}

}  // namespace

int cmd_serve(const Args& args, std::ostream& out, std::ostream& err) {
  util::ArgParser parser("mnemo serve",
                         "serve the consultant over newline-delimited JSON: "
                         "stdin/stdout by default, or --socket PATH for "
                         "concurrent clients");
  parser.add_option("socket",
                    "Unix-domain socket path (empty = stdin/stdout pipe "
                    "mode)",
                    "");
  parser.add_option("threads", "worker threads (0 = hardware)", "0");
  parser.add_option("queue",
                    "max requests in service before refusing with "
                    "'overloaded'",
                    "64");
  parser.add_option("cache-dir",
                    "content-addressed artifact cache directory shared by "
                    "all requests (empty = no disk cache)",
                    "");
  parser.add_flag("no-cache",
                  "bypass the cache even when --cache-dir is set");
  parser.add_flag("stats", "print the serve ledger to stderr on shutdown");
  std::string error;
  if (!parser.parse(args, &error)) {
    err << error << "\n" << parser.help();
    return 2;
  }

  serve::ServeOptions options;
  options.threads = static_cast<std::size_t>(parser.get_u64("threads"));
  options.queue_capacity =
      static_cast<std::size_t>(parser.get_u64("queue"));
  options.cache_dir = parser.get("cache-dir");
  options.use_cache = !parser.has_flag("no-cache");
  if (options.queue_capacity == 0) {
    err << "--queue must be >= 1\n";
    return 2;
  }

  serve::Server server(std::move(options));
  int exit_code = 0;

  const std::string socket_path = parser.get("socket");
  if (socket_path.empty()) {
    server.serve_stream(std::cin, out);
  } else {
    serve::SocketEndpoint endpoint(server, socket_path);
    g_endpoint = &endpoint;
    std::signal(SIGINT, handle_stop_signal);
    std::signal(SIGTERM, handle_stop_signal);
    err << "serving on " << socket_path << "\n";
    const util::Status status = endpoint.serve();
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
    g_endpoint = nullptr;
    if (!status.ok()) {
      err << "error: " << status.error().to_string() << "\n";
      exit_code = 1;
    }
  }

  if (parser.has_flag("stats")) err << server.stats().render();
  return exit_code;
}

}  // namespace mnemo::cli
