#include <signal.h>

#include <csignal>
#include <iostream>

#include "cli/cli_common.hpp"
#include "cli/commands.hpp"
#include "serve/server.hpp"
#include "serve/socket.hpp"

/// `mnemo serve` — the consultant as a long-running service. One Server
/// answers the newline-delimited JSON protocol either over stdin/stdout
/// (pipe mode, the default: trivially scriptable and transcript-testable)
/// or over a Unix-domain socket (--socket PATH) for multiple concurrent
/// clients. All clients share one artifact store and one single-flight
/// measure memo, so identical questions cost one emulator replay total.
namespace mnemo::cli {

namespace {

/// The endpoint the signal handler must reach. Written once before the
/// handlers are installed; the handler only calls the async-signal-safe
/// SocketEndpoint::stop().
serve::SocketEndpoint* g_endpoint = nullptr;

/// Set by the handler so the main path knows shutdown was signal-driven
/// (graceful drain + ledger + exit 0, not an error).
volatile std::sig_atomic_t g_drain = 0;

void handle_stop_signal(int) {
  g_drain = 1;
  if (g_endpoint != nullptr) g_endpoint->stop();
}

/// Install via sigaction with sa_flags = 0 — deliberately no SA_RESTART.
/// glibc's std::signal() installs BSD semantics (SA_RESTART), under which
/// the read(2) beneath std::getline would silently resume and pipe-mode
/// SIGTERM could never interrupt an idle server. Without SA_RESTART the
/// read fails EINTR, getline fails, and serve_stream falls into its
/// graceful drain.
void install_stop_handlers() {
  struct sigaction sa {};
  sa.sa_handler = handle_stop_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

void restore_default_handlers() {
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
}

}  // namespace

int cmd_serve(const Args& args, std::ostream& out, std::ostream& err) {
  util::ArgParser parser("mnemo serve",
                         "serve the consultant over newline-delimited JSON: "
                         "stdin/stdout by default, or --socket PATH for "
                         "concurrent clients");
  parser.add_option("socket",
                    "Unix-domain socket path (empty = stdin/stdout pipe "
                    "mode)",
                    "");
  parser.add_option("threads",
                    "worker threads in the global task scheduler shared by "
                    "all requests at campaign-cell granularity (0 = "
                    "hardware)",
                    "0");
  parser.add_option("queue",
                    "max requests in service before refusing with "
                    "'overloaded'",
                    "64");
  parser.add_option("cache-dir",
                    "content-addressed artifact cache directory shared by "
                    "all requests (empty = no disk cache)",
                    "");
  parser.add_flag("no-cache",
                  "bypass the cache even when --cache-dir is set");
  parser.add_option("deadline-ms",
                    "default per-request deadline in milliseconds, "
                    "measured from admission (0 = none; a request's own "
                    "deadline_ms field overrides)",
                    "0");
  parser.add_flag("no-fsck",
                  "skip the startup crash-recovery scan of --cache-dir");
  parser.add_flag("stats", "print the serve ledger to stderr on shutdown");
  std::string error;
  if (!parser.parse(args, &error)) {
    err << error << "\n" << parser.help();
    return 2;
  }

  serve::ServeOptions options;
  options.threads = static_cast<std::size_t>(parser.get_u64("threads"));
  options.queue_capacity =
      static_cast<std::size_t>(parser.get_u64("queue"));
  options.cache_dir = parser.get("cache-dir");
  options.use_cache = !parser.has_flag("no-cache");
  options.default_deadline_ms = parser.get_u64("deadline-ms");
  options.fsck_on_start = !parser.has_flag("no-fsck");
  if (options.queue_capacity == 0) {
    err << "--queue must be >= 1\n";
    return 2;
  }

  serve::Server server(std::move(options));
  int exit_code = 0;
  g_drain = 0;

  const std::string socket_path = parser.get("socket");
  if (socket_path.empty()) {
    install_stop_handlers();
    server.serve_stream(std::cin, out);
    restore_default_handlers();
  } else {
    serve::SocketEndpoint endpoint(server, socket_path);
    g_endpoint = &endpoint;
    install_stop_handlers();
    err << "serving on " << socket_path << "\n";
    const util::Status status = endpoint.serve();
    restore_default_handlers();
    g_endpoint = nullptr;
    if (!status.ok()) {
      err << "error: " << status.error().to_string() << "\n";
      exit_code = 1;
    }
  }

  // A signal-driven shutdown always prints the ledger: the operator who
  // sent SIGTERM gets the lifetime accounting for free, and the drain
  // above guarantees every admitted request was answered first.
  if (parser.has_flag("stats") || g_drain != 0) {
    err << server.stats().render();
  }
  return exit_code;
}

}  // namespace mnemo::cli
