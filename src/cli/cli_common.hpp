#pragma once

#include <ostream>
#include <string>

#include "core/session.hpp"
#include "util/argparse.hpp"
#include "workload/trace.hpp"

/// Option plumbing shared by the mnemo subcommands (one per cmd_*.cpp).
/// Everything here is presentation/parsing glue; the work itself lives in
/// core::Session — the CLI's only orchestration path.
namespace mnemo::cli {

kvstore::StoreKind parse_store(const std::string& name);
core::EstimateModel parse_model(const std::string& name);

/// Shared workload-source options: either --trace file.csv or --workload
/// plus optional overrides.
void add_workload_options(util::ArgParser& parser);
workload::Trace load_workload(const util::ArgParser& parser);

void add_mnemo_options(util::ArgParser& parser);
core::MnemoConfig mnemo_config(const util::ArgParser& parser);

/// Fault-injection options — only the profiling-shaped commands take
/// them, so the other commands keep rejecting the flags with their usage
/// text.
void add_fault_options(util::ArgParser& parser);
void apply_fault_options(const util::ArgParser& parser,
                         core::MnemoConfig& cfg);

/// Banner printed only when a fault plan is armed, so fault-free output
/// stays byte-identical to the healthy tool's.
void print_fault_banner(const core::MnemoConfig& cfg, std::ostream& out);

/// Append the process-wide campaign accounting when --stats was given.
void maybe_print_campaign_stats(const util::ArgParser& parser,
                                std::ostream& out);

/// Artifact-cache options of the pipeline commands: --cache-dir,
/// --no-cache, --explain-cache.
void add_cache_options(util::ArgParser& parser);

/// Full session config: mnemo knobs + fault plan + cache policy.
core::SessionConfig session_config(const util::ArgParser& parser);

/// Print the per-stage cache account when --explain-cache was given.
void maybe_explain_cache(const util::ArgParser& parser,
                         core::Session& session, std::ostream& out);

/// Shared tail of the report-emitting commands (profile/run): report
/// text, optional --out CSV, quarantine ledger, cache/stats diagnostics.
/// Returns the exit code (honors --fail-policy abort).
int emit_session_report(const util::ArgParser& parser,
                        core::Session& session, std::ostream& out,
                        std::ostream& err);

}  // namespace mnemo::cli
