#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace mnemo::cli {

/// Entry point of the `mnemo` command-line tool, factored out of main()
/// so the test suite can drive it. Returns the process exit code; all
/// output goes to the provided streams.
///
/// Subcommands (see commands.hpp for the per-file grouping):
///   workloads            list the built-in Table III workload suite
///   generate             materialize a workload trace to CSV
///   inspect              characterize a workload (skew, reuse, cache fit)
///   profile              run Mnemo/MnemoT on a workload, emit the advice
///   run                  the same flow as explicit pipeline stages
///   characterize         stage 1: access pattern and key ordering
///   measure              stage 2: baseline measurement campaign
///   advise               stages 1-4: SLO verdict against a warm cache
///   report               stages 1-5: byte-stable report artifact
///   plan                 capacity plan for the whole suite at an SLO
///   compare              profile one workload across all three stores
///   spec                 print a workload spec-file template
///   downsample           shrink a trace while preserving its distribution
///   tails                mixture-model tail estimates along the curve
///   migrate              dynamic re-tiering vs static placement
///   testbed              show the emulated platform (Table I)
///   help                 usage
///
/// Pipeline commands accept --cache-dir/--no-cache/--explain-cache and
/// reuse artifacts from the content-addressed store across invocations.
int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err);

}  // namespace mnemo::cli
