#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace mnemo::cli {

/// Entry point of the `mnemo` command-line tool, factored out of main()
/// so the test suite can drive it. Returns the process exit code; all
/// output goes to the provided streams.
///
/// Subcommands:
///   workloads            list the built-in Table III workload suite
///   generate             materialize a workload trace to CSV
///   profile              run Mnemo/MnemoT on a workload, emit the advice
///   plan                 capacity plan for the whole suite at an SLO
///   downsample           shrink a trace while preserving its distribution
///   tails                mixture-model tail estimates along the curve
///   testbed              show the emulated platform (Table I)
///   help                 usage
int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err);

}  // namespace mnemo::cli
