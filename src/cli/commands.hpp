#pragma once

#include <ostream>
#include <string>
#include <vector>

/// One declaration per mnemo subcommand; implementations live in the
/// cmd_*.cpp files grouped by theme (workload tooling, consultant
/// commands, pipeline stages, system info). The dispatcher in cli.cpp is
/// the only consumer.
namespace mnemo::cli {

using Args = std::vector<std::string>;

// cmd_workloads.cpp — workload tooling
int cmd_workloads(const Args& args, std::ostream& out, std::ostream& err);
int cmd_generate(const Args& args, std::ostream& out, std::ostream& err);
int cmd_spec(const Args& args, std::ostream& out, std::ostream& err);
int cmd_inspect(const Args& args, std::ostream& out, std::ostream& err);
int cmd_downsample(const Args& args, std::ostream& out, std::ostream& err);

// cmd_profile.cpp — one-shot consultant commands
int cmd_profile(const Args& args, std::ostream& out, std::ostream& err);
int cmd_plan(const Args& args, std::ostream& out, std::ostream& err);
int cmd_compare(const Args& args, std::ostream& out, std::ostream& err);
int cmd_tails(const Args& args, std::ostream& out, std::ostream& err);

// cmd_pipeline.cpp — staged pipeline over the artifact cache
int cmd_run(const Args& args, std::ostream& out, std::ostream& err);
int cmd_characterize(const Args& args, std::ostream& out, std::ostream& err);
int cmd_measure(const Args& args, std::ostream& out, std::ostream& err);
int cmd_advise(const Args& args, std::ostream& out, std::ostream& err);
int cmd_report(const Args& args, std::ostream& out, std::ostream& err);

// cmd_serve.cpp — long-running consultant service
int cmd_serve(const Args& args, std::ostream& out, std::ostream& err);

// cmd_fsck.cpp — artifact cache crash recovery
int cmd_fsck(const Args& args, std::ostream& out, std::ostream& err);

// cmd_system.cpp — platform/system commands
int cmd_migrate(const Args& args, std::ostream& out, std::ostream& err);
int cmd_testbed(const Args& args, std::ostream& out, std::ostream& err);
int cmd_help(std::ostream& out);

}  // namespace mnemo::cli
