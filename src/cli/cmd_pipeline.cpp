#include <algorithm>
#include <cstdio>
#include <fstream>

#include "cli/cli_common.hpp"
#include "cli/commands.hpp"
#include "core/campaign.hpp"
#include "util/bytes.hpp"

/// The staged pipeline exposed as subcommands: each one materializes its
/// stage (and the stages it depends on) through a core::Session, so a
/// warm artifact cache lets `advise`/`report` answer without a single
/// emulator replay. All of them share the profile flag set plus
/// --cache-dir/--no-cache/--explain-cache.
namespace mnemo::cli {

namespace {

void add_pipeline_options(util::ArgParser& parser) {
  add_workload_options(parser);
  add_mnemo_options(parser);
  add_fault_options(parser);
  add_cache_options(parser);
  parser.add_option("out", "advice CSV path (key id, est throughput, cost)",
                    "");
}

/// "campaign cells executed: N" — the observable behind the incremental
/// re-run contract: 0 on a warm cache, grid-size on a cold one.
void print_cells_executed(const core::Session& session, std::ostream& out) {
  out << "campaign cells executed: " << session.campaign_cells_run() << "\n";
}

/// Render the measured baselines exactly as the report does.
void print_baselines(const core::MeasureArtifact& m, std::ostream& out) {
  char line[160];
  std::snprintf(line, sizeof line,
                "baselines: FastMem-only %.0f ops/s | SlowMem-only %.0f "
                "ops/s | sensitivity +%.1f%%\n",
                m.baselines.fast.throughput_ops,
                m.baselines.slow.throughput_ops,
                m.baselines.sensitivity() * 100.0);
  out << line;
}

int fault_abort_exit(const core::Session& session,
                     const core::MeasureArtifact& m, std::ostream& err) {
  if (m.failures.empty() || session.config().mnemo.fail_policy !=
                                faultinject::FailPolicy::kAbort) {
    return 0;
  }
  const core::CellFailure& f = m.failures.front();
  err << "fault policy abort: cell #" << f.cell << " (fast keys "
      << f.fast_keys << ", repeat " << f.repeat
      << ") quarantined: " << f.error.to_string() << "\n";
  return 1;
}

}  // namespace

int cmd_run(const Args& args, std::ostream& out, std::ostream& err) {
  util::ArgParser parser("mnemo run",
                         "run the full pipeline: characterize -> measure "
                         "-> estimate -> advise -> report");
  add_pipeline_options(parser);
  std::string error;
  if (!parser.parse(args, &error)) {
    err << error << "\n" << parser.help();
    return 2;
  }
  core::Session session(load_workload(parser), session_config(parser));
  print_fault_banner(session.config().mnemo, out);
  return emit_session_report(parser, session, out, err);
}

int cmd_characterize(const Args& args, std::ostream& out,
                     std::ostream& err) {
  util::ArgParser parser("mnemo characterize",
                         "stage 1 only: access pattern and key ordering");
  add_pipeline_options(parser);
  std::string error;
  if (!parser.parse(args, &error)) {
    err << error << "\n" << parser.help();
    return 2;
  }
  core::Session session(load_workload(parser), session_config(parser));
  const core::CharacterizeArtifact& c = session.characterize();
  const workload::Trace& trace = session.trace();
  out << "workload: " << trace.name() << ": " << trace.key_count()
      << " keys, " << trace.requests().size() << " requests ("
      << util::format_bytes(trace.dataset_bytes()) << " dataset)\n";
  out << "ordering: " << to_string(c.ordering) << " | front of the order:";
  const std::size_t head = std::min<std::size_t>(8, c.order.size());
  for (std::size_t i = 0; i < head; ++i) out << ' ' << c.order[i];
  out << "\n";
  maybe_explain_cache(parser, session, out);
  return 0;
}

int cmd_measure(const Args& args, std::ostream& out, std::ostream& err) {
  util::ArgParser parser("mnemo measure",
                         "stage 2 only: run (or load) the baseline "
                         "measurement campaign");
  add_pipeline_options(parser);
  std::string error;
  if (!parser.parse(args, &error)) {
    err << error << "\n" << parser.help();
    return 2;
  }
  core::Session session(load_workload(parser), session_config(parser));
  print_fault_banner(session.config().mnemo, out);
  const core::MeasureArtifact& m = session.measure();
  if (m.degraded) {
    out << "baselines quarantined: no estimate (see failure ledger)\n";
  } else {
    print_baselines(m, out);
  }
  print_cells_executed(session, out);
  if (!m.failures.empty()) {
    out << "\npartial results: " << m.failures.size()
        << " campaign cell(s) quarantined\n"
        << core::render_failure_ledger(m.failures);
  }
  maybe_explain_cache(parser, session, out);
  maybe_print_campaign_stats(parser, out);
  return fault_abort_exit(session, m, err);
}

int cmd_advise(const Args& args, std::ostream& out, std::ostream& err) {
  util::ArgParser parser("mnemo advise",
                         "stages 1-4: SLO verdict for --slo/--p, reusing "
                         "any cached measurement grid");
  add_pipeline_options(parser);
  std::string error;
  if (!parser.parse(args, &error)) {
    err << error << "\n" << parser.help();
    return 2;
  }
  core::Session session(load_workload(parser), session_config(parser));
  print_fault_banner(session.config().mnemo, out);
  const core::AdviseArtifact& verdict = session.advise();
  const core::MeasureArtifact& m = session.measure();
  if (verdict.degraded) {
    out << "baselines quarantined: no estimate (see failure ledger)\n";
  } else {
    print_baselines(m, out);
    if (verdict.result.choice) {
      const core::SloChoice& c = *verdict.result.choice;
      char line[160];
      std::snprintf(line, sizeof line,
                    "sweet spot @ %.0f%% SLO: %zu keys (%s) in FastMem -> "
                    "memory cost %.0f%% of FastMem-only (%.0f%% savings)\n",
                    verdict.slo_slowdown * 100.0, c.point.fast_keys,
                    util::format_bytes(c.point.fast_bytes).c_str(),
                    c.cost_factor * 100.0, c.savings_vs_fast * 100.0);
      out << line;
    } else {
      out << "no configuration satisfies the SLO\n";
    }
  }
  print_cells_executed(session, out);
  if (!m.failures.empty()) {
    out << "\npartial results: " << m.failures.size()
        << " campaign cell(s) quarantined\n"
        << core::render_failure_ledger(m.failures);
  }
  maybe_explain_cache(parser, session, out);
  maybe_print_campaign_stats(parser, out);
  return fault_abort_exit(session, m, err);
}

int cmd_report(const Args& args, std::ostream& out, std::ostream& err) {
  util::ArgParser parser("mnemo report",
                         "stages 1-5: the rendered report artifact only "
                         "(byte-stable; diffable across runs)");
  add_pipeline_options(parser);
  std::string error;
  if (!parser.parse(args, &error)) {
    err << error << "\n" << parser.help();
    return 2;
  }
  core::Session session(load_workload(parser), session_config(parser));
  const core::ReportArtifact& report = session.report();
  out << report.text;
  if (!parser.get("out").empty() && !session.measure().degraded) {
    std::ofstream file(parser.get("out"), std::ios::binary);
    if (!file) {
      err << "error: cannot open " << parser.get("out") << "\n";
      return 1;
    }
    file << report.csv;
  }
  maybe_explain_cache(parser, session, out);
  return fault_abort_exit(session, session.measure(), err);
}

}  // namespace mnemo::cli
