#include <algorithm>
#include <cstdio>
#include <fstream>

#include "cli/cli_common.hpp"
#include "cli/commands.hpp"
#include "core/campaign.hpp"
#include "core/render.hpp"
#include "util/bytes.hpp"

/// The staged pipeline exposed as subcommands: each one materializes its
/// stage (and the stages it depends on) through a core::Session, so a
/// warm artifact cache lets `advise`/`report` answer without a single
/// emulator replay. All of them share the profile flag set plus
/// --cache-dir/--no-cache/--explain-cache.
namespace mnemo::cli {

namespace {

void add_pipeline_options(util::ArgParser& parser) {
  add_workload_options(parser);
  add_mnemo_options(parser);
  add_fault_options(parser);
  add_cache_options(parser);
  parser.add_option("out", "advice CSV path (key id, est throughput, cost)",
                    "");
}

/// "campaign cells executed: N" — the observable behind the incremental
/// re-run contract: 0 on a warm cache, grid-size on a cold one.
void print_cells_executed(const core::Session& session, std::ostream& out) {
  out << "campaign cells executed: " << session.campaign_cells_run() << "\n";
}

int fault_abort_exit(const core::Session& session,
                     const core::MeasureArtifact& m, std::ostream& err) {
  if (m.failures.empty() || session.config().mnemo.fail_policy !=
                                faultinject::FailPolicy::kAbort) {
    return 0;
  }
  const core::CellFailure& f = m.failures.front();
  err << "fault policy abort: cell #" << f.cell << " (fast keys "
      << f.fast_keys << ", repeat " << f.repeat
      << ") quarantined: " << f.error.to_string() << "\n";
  return 1;
}

}  // namespace

int cmd_run(const Args& args, std::ostream& out, std::ostream& err) {
  util::ArgParser parser("mnemo run",
                         "run the full pipeline: characterize -> measure "
                         "-> estimate -> advise -> report");
  add_pipeline_options(parser);
  std::string error;
  if (!parser.parse(args, &error)) {
    err << error << "\n" << parser.help();
    return 2;
  }
  core::Session session(load_workload(parser), session_config(parser));
  print_fault_banner(session.config().mnemo, out);
  return emit_session_report(parser, session, out, err);
}

int cmd_characterize(const Args& args, std::ostream& out,
                     std::ostream& err) {
  util::ArgParser parser("mnemo characterize",
                         "stage 1 only: access pattern and key ordering");
  add_pipeline_options(parser);
  std::string error;
  if (!parser.parse(args, &error)) {
    err << error << "\n" << parser.help();
    return 2;
  }
  core::Session session(load_workload(parser), session_config(parser));
  out << core::render_characterize(session.trace(), session.characterize());
  maybe_explain_cache(parser, session, out);
  return 0;
}

int cmd_measure(const Args& args, std::ostream& out, std::ostream& err) {
  util::ArgParser parser("mnemo measure",
                         "stage 2 only: run (or load) the baseline "
                         "measurement campaign");
  add_pipeline_options(parser);
  std::string error;
  if (!parser.parse(args, &error)) {
    err << error << "\n" << parser.help();
    return 2;
  }
  core::Session session(load_workload(parser), session_config(parser));
  print_fault_banner(session.config().mnemo, out);
  const core::MeasureArtifact& m = session.measure();
  out << core::render_measure(m);
  print_cells_executed(session, out);
  if (!m.failures.empty()) {
    out << "\npartial results: " << m.failures.size()
        << " campaign cell(s) quarantined\n"
        << core::render_failure_ledger(m.failures);
  }
  maybe_explain_cache(parser, session, out);
  maybe_print_campaign_stats(parser, out);
  return fault_abort_exit(session, m, err);
}

int cmd_advise(const Args& args, std::ostream& out, std::ostream& err) {
  util::ArgParser parser("mnemo advise",
                         "stages 1-4: SLO verdict for --slo/--p, reusing "
                         "any cached measurement grid");
  add_pipeline_options(parser);
  std::string error;
  if (!parser.parse(args, &error)) {
    err << error << "\n" << parser.help();
    return 2;
  }
  core::Session session(load_workload(parser), session_config(parser));
  print_fault_banner(session.config().mnemo, out);
  const core::AdviseArtifact& verdict = session.advise();
  const core::MeasureArtifact& m = session.measure();
  out << core::render_advise(m, verdict);
  print_cells_executed(session, out);
  if (!m.failures.empty()) {
    out << "\npartial results: " << m.failures.size()
        << " campaign cell(s) quarantined\n"
        << core::render_failure_ledger(m.failures);
  }
  maybe_explain_cache(parser, session, out);
  maybe_print_campaign_stats(parser, out);
  return fault_abort_exit(session, m, err);
}

int cmd_report(const Args& args, std::ostream& out, std::ostream& err) {
  util::ArgParser parser("mnemo report",
                         "stages 1-5: the rendered report artifact only "
                         "(byte-stable; diffable across runs)");
  add_pipeline_options(parser);
  std::string error;
  if (!parser.parse(args, &error)) {
    err << error << "\n" << parser.help();
    return 2;
  }
  core::Session session(load_workload(parser), session_config(parser));
  const core::ReportArtifact& report = session.report();
  out << report.text;
  if (!parser.get("out").empty() && !session.measure().degraded) {
    std::ofstream file(parser.get("out"), std::ios::binary);
    if (!file) {
      err << "error: cannot open " << parser.get("out") << "\n";
      return 1;
    }
    file << report.csv;
  }
  maybe_explain_cache(parser, session, out);
  return fault_abort_exit(session, session.measure(), err);
}

}  // namespace mnemo::cli
