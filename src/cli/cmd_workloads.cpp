#include <cstdio>

#include "cli/cli_common.hpp"
#include "cli/commands.hpp"
#include "hybridmem/emulation_profile.hpp"
#include "util/bytes.hpp"
#include "util/table.hpp"
#include "workload/characterize.hpp"
#include "workload/downsample.hpp"
#include "workload/spec_file.hpp"
#include "workload/suite.hpp"

namespace mnemo::cli {

int cmd_workloads(const Args&, std::ostream& out, std::ostream&) {
  util::TablePrinter table({"name", "distribution", "ratio", "record size",
                            "use case"});
  for (const auto& spec : workload::paper_suite()) {
    table.add_row({spec.name, std::string(to_string(spec.distribution)),
                   spec.ratio_label(),
                   std::string(to_string(spec.record_size)), spec.use_case});
  }
  out << table.render();
  out << "\nall workloads: 10,000 keys and 100,000 requests (Table III).\n";
  return 0;
}

int cmd_generate(const Args& args, std::ostream& out, std::ostream& err) {
  util::ArgParser parser("mnemo generate", "materialize a workload trace");
  add_workload_options(parser);
  parser.add_option("out", "output trace CSV path", "trace.csv");
  std::string error;
  if (!parser.parse(args, &error)) {
    err << error << "\n" << parser.help();
    return 2;
  }
  const workload::Trace trace = load_workload(parser);
  trace.save_csv(parser.get("out"));
  out << "wrote " << parser.get("out") << ": " << trace.requests().size()
      << " requests over " << trace.key_count() << " keys ("
      << util::format_bytes(trace.dataset_bytes()) << " dataset)\n";
  return 0;
}

int cmd_spec(const Args& args, std::ostream& out, std::ostream& err) {
  util::ArgParser parser("mnemo spec",
                         "print a workload spec file (template for "
                         "custom workloads)");
  parser.add_option("workload", "built-in workload to dump", "trending");
  std::string error;
  if (!parser.parse(args, &error)) {
    err << error << "\n" << parser.help();
    return 2;
  }
  out << workload::format_spec(
      workload::paper_workload(parser.get("workload")));
  return 0;
}

int cmd_inspect(const Args& args, std::ostream& out, std::ostream& err) {
  util::ArgParser parser("mnemo inspect",
                         "characterize a workload: skew, reuse distances, "
                         "cache-fit prediction");
  add_workload_options(parser);
  std::string error;
  if (!parser.parse(args, &error)) {
    err << error << "\n" << parser.help();
    return 2;
  }
  const workload::Trace trace = load_workload(parser);
  const workload::Characterization c = workload::characterize(trace);

  util::TablePrinter table({"metric", "value"});
  table.add_row({"keys", std::to_string(c.keys)});
  table.add_row({"requests", std::to_string(c.requests)});
  table.add_row({"dataset", util::format_bytes(c.dataset_bytes)});
  table.add_row({"read fraction", util::TablePrinter::pct(c.read_fraction, 1)});
  table.add_row(
      {"insert fraction", util::TablePrinter::pct(c.insert_fraction, 1)});
  table.add_row({"hot-10% share", util::TablePrinter::pct(c.hot10_share, 1)});
  table.add_row({"hot-20% share", util::TablePrinter::pct(c.hot20_share, 1)});
  table.add_row({"gini (popularity)", util::TablePrinter::num(c.gini, 3)});
  table.add_row({"reuse distance p50",
                 util::format_bytes(
                     static_cast<std::uint64_t>(c.reuse_p50_bytes))});
  table.add_row({"reuse distance p90",
                 util::format_bytes(
                     static_cast<std::uint64_t>(c.reuse_p90_bytes))});
  table.add_row({"reuse distance p99",
                 util::format_bytes(
                     static_cast<std::uint64_t>(c.reuse_p99_bytes))});
  table.add_row({"cold accesses", std::to_string(c.cold_accesses)});
  const auto platform = hybridmem::paper_testbed();
  const auto bypass = static_cast<std::uint64_t>(
      platform.llc_bypass_fraction * static_cast<double>(platform.llc_bytes));
  table.add_row(
      {"predicted LLC hit rate (12 MiB)",
       util::TablePrinter::pct(
           c.predicted_hit_rate(platform.llc_bytes, bypass), 1)});
  out << "workload: " << trace.name() << "\n" << table.render();
  out << "\nreuse distances are byte-granular LRU stack distances; the "
         "LLC prediction follows from them directly.\n";
  return 0;
}

int cmd_downsample(const Args& args, std::ostream& out, std::ostream& err) {
  util::ArgParser parser("mnemo downsample",
                         "shrink a trace, preserving its distribution");
  add_workload_options(parser);
  parser.add_option("keep", "fraction of requests to keep", "0.1");
  parser.add_option("out", "output trace CSV path", "downsampled.csv");
  std::string error;
  if (!parser.parse(args, &error)) {
    err << error << "\n" << parser.help();
    return 2;
  }
  const workload::Trace trace = load_workload(parser);
  const double keep = parser.get_double("keep");
  if (keep <= 0.0 || keep > 1.0) {
    err << "--keep must be in (0, 1]\n";
    return 2;
  }
  const workload::Trace down =
      workload::downsample(trace, keep, trace.key_count() ^ 0xd5);
  down.save_csv(parser.get("out"));
  char line[160];
  std::snprintf(line, sizeof line,
                "kept %zu of %zu requests; key-distribution distance %.4f\n",
                down.requests().size(), trace.requests().size(),
                workload::key_distribution_distance(trace, down));
  out << line << "wrote " << parser.get("out") << "\n";
  return 0;
}

}  // namespace mnemo::cli
