#include "cli/cli_common.hpp"

#include <fstream>
#include <stdexcept>

#include "core/campaign.hpp"
#include "faultinject/fault_plan.hpp"
#include "kvstore/factory.hpp"
#include "workload/spec_file.hpp"
#include "workload/suite.hpp"

namespace mnemo::cli {

kvstore::StoreKind parse_store(const std::string& name) {
  for (const kvstore::StoreKind kind : kvstore::kAllStoreKinds) {
    if (name == kvstore::to_string(kind)) return kind;
  }
  throw std::invalid_argument(
      "--store: expected vermilion, cachet or dynastore, got " + name);
}

core::EstimateModel parse_model(const std::string& name) {
  if (name == "uniform") return core::EstimateModel::kUniformDelta;
  if (name == "size-aware") return core::EstimateModel::kSizeAware;
  throw std::invalid_argument(
      "--model: expected uniform or size-aware, got " + name);
}

void add_workload_options(util::ArgParser& parser) {
  parser.add_option("trace", "load the workload from a trace CSV", "");
  parser.add_option("spec", "load the workload from a spec file "
                            "(see `spec` command for a template)",
                    "");
  parser.add_option("workload",
                    "built-in Table III workload name (see `workloads`)",
                    "trending");
  parser.add_option("keys", "override key count", "0");
  parser.add_option("requests", "override request count", "0");
  parser.add_option("seed", "workload seed", "0");
}

workload::Trace load_workload(const util::ArgParser& parser) {
  if (!parser.get("trace").empty()) {
    return workload::Trace::load_csv(parser.get("trace"));
  }
  workload::WorkloadSpec spec =
      parser.get("spec").empty()
          ? workload::paper_workload(parser.get("workload"))
          : workload::load_spec_file(parser.get("spec"));
  if (parser.get_u64("keys") > 0) spec.key_count = parser.get_u64("keys");
  if (parser.get_u64("requests") > 0) {
    spec.request_count = parser.get_u64("requests");
  }
  if (parser.get_u64("seed") > 0) spec.seed = parser.get_u64("seed");
  return workload::Trace::generate(spec);
}

void add_mnemo_options(util::ArgParser& parser) {
  parser.add_option("store", "store architecture: vermilion (Redis-like), "
                             "cachet (Memcached-like), dynastore "
                             "(DynamoDB-like)",
                    "vermilion");
  parser.add_flag("tiered", "use MnemoT's accesses/size key ordering");
  parser.add_option("model", "estimate model: uniform | size-aware",
                    "size-aware");
  parser.add_option("p", "SlowMem price factor (cost floor)", "0.2");
  parser.add_option("slo", "permissible slowdown vs FastMem-only", "0.1");
  parser.add_option("repeats", "runs per measurement", "2");
  parser.add_option("threads",
                    "task-scheduler worker threads for measurement "
                    "campaigns (0 = hardware; results are identical at any "
                    "count)",
                    "0");
  parser.add_flag("stats",
                  "print campaign timing/occupancy stats after the run");
}

core::MnemoConfig mnemo_config(const util::ArgParser& parser) {
  core::MnemoConfig cfg;
  cfg.store = parse_store(parser.get("store"));
  cfg.ordering = parser.has_flag("tiered") ? core::OrderingPolicy::kTiered
                                           : core::OrderingPolicy::kTouchOrder;
  cfg.estimate_model = parse_model(parser.get("model"));
  cfg.price_factor = parser.get_double("p");
  cfg.slo_slowdown = parser.get_double("slo");
  cfg.repeats = static_cast<int>(parser.get_u64("repeats"));
  cfg.threads = static_cast<std::size_t>(parser.get_u64("threads"));
  return cfg;
}

void add_fault_options(util::ArgParser& parser) {
  parser.add_option("faults",
                    "deterministic fault plan, comma-separated key=value "
                    "(keys: seed, transient, retries, retry_cost, recover, "
                    "poison, remap_cost, bw_period, bw_window, bw_factor)",
                    "");
  parser.add_option("fail-policy",
                    "quarantined-cell handling: degrade (complete with "
                    "partial results) | abort (exit nonzero)",
                    "degrade");
}

void apply_fault_options(const util::ArgParser& parser,
                         core::MnemoConfig& cfg) {
  if (!parser.get("faults").empty()) {
    cfg.faults = faultinject::FaultPlan::parse(parser.get("faults"));
  }
  cfg.fail_policy =
      faultinject::parse_fail_policy(parser.get("fail-policy"));
}

void print_fault_banner(const core::MnemoConfig& cfg, std::ostream& out) {
  if (cfg.faults.empty()) return;
  out << "faults: " << cfg.faults.summary() << " | policy "
      << faultinject::to_string(cfg.fail_policy) << "\n";
}

void maybe_print_campaign_stats(const util::ArgParser& parser,
                                std::ostream& out) {
  if (!parser.has_flag("stats")) return;
  out << "\n" << core::campaign_totals().render("campaign totals");
}

void add_cache_options(util::ArgParser& parser) {
  parser.add_option("cache-dir",
                    "content-addressed artifact cache directory "
                    "(empty = no caching)",
                    "");
  parser.add_flag("no-cache",
                  "bypass the cache even when --cache-dir is set");
  parser.add_flag("explain-cache",
                  "print per-stage cache keys and hit/miss decisions");
}

core::SessionConfig session_config(const util::ArgParser& parser) {
  core::SessionConfig sc;
  sc.mnemo = mnemo_config(parser);
  apply_fault_options(parser, sc.mnemo);
  sc.cache_dir = parser.get("cache-dir");
  sc.use_cache = !parser.has_flag("no-cache");
  return sc;
}

void maybe_explain_cache(const util::ArgParser& parser,
                         core::Session& session, std::ostream& out) {
  if (!parser.has_flag("explain-cache")) return;
  out << "\n" << session.explain_cache();
}

int emit_session_report(const util::ArgParser& parser,
                        core::Session& session, std::ostream& out,
                        std::ostream& err) {
  const core::MnemoConfig& cfg = session.config().mnemo;
  out << session.report().text;
  const core::MeasureArtifact& m = session.measure();
  if (!m.degraded && !parser.get("out").empty()) {
    std::ofstream file(parser.get("out"), std::ios::binary);
    if (!file) {
      err << "error: cannot open " << parser.get("out") << "\n";
      return 1;
    }
    file << session.report().csv;
    out << "wrote " << parser.get("out") << " ("
        << session.estimate().curve.points.size() - 1 << " rows)\n";
  }
  if (!m.failures.empty()) {
    out << "\npartial results: " << m.failures.size()
        << " campaign cell(s) quarantined\n"
        << core::render_failure_ledger(m.failures);
  } else if (!cfg.faults.empty()) {
    out << "no campaign cells quarantined\n";
  }
  maybe_explain_cache(parser, session, out);
  maybe_print_campaign_stats(parser, out);
  if (!m.failures.empty() &&
      cfg.fail_policy == faultinject::FailPolicy::kAbort) {
    const core::CellFailure& f = m.failures.front();
    err << "fault policy abort: cell #" << f.cell << " (fast keys "
        << f.fast_keys << ", repeat " << f.repeat
        << ") quarantined: " << f.error.to_string() << "\n";
    return 1;
  }
  return 0;
}

}  // namespace mnemo::cli
