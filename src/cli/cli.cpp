#include "cli/cli.hpp"

#include <exception>
#include <functional>
#include <map>

#include "cli/commands.hpp"
#include "util/argparse.hpp"
#include "util/status.hpp"

/// Dispatcher only: each subcommand lives in its own cmd_*.cpp (see
/// commands.hpp for the grouping); shared option plumbing in
/// cli_common.cpp. This file owns command lookup, "did you mean"
/// suggestions and the exit-code conventions.
namespace mnemo::cli {

int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err) {
  if (args.empty()) {
    cmd_help(out);
    return 2;
  }
  const std::string& command = args.front();
  const std::vector<std::string> rest(args.begin() + 1, args.end());
  using Handler =
      std::function<int(const Args&, std::ostream&, std::ostream&)>;
  const std::map<std::string, Handler> commands = {
      {"workloads", cmd_workloads},
      {"generate", cmd_generate},
      {"spec", cmd_spec},
      {"inspect", cmd_inspect},
      {"downsample", cmd_downsample},
      {"profile", cmd_profile},
      {"plan", cmd_plan},
      {"compare", cmd_compare},
      {"tails", cmd_tails},
      {"run", cmd_run},
      {"characterize", cmd_characterize},
      {"measure", cmd_measure},
      {"advise", cmd_advise},
      {"report", cmd_report},
      {"serve", cmd_serve},
      {"fsck", cmd_fsck},
      {"migrate", cmd_migrate},
      {"testbed", cmd_testbed},
  };
  if (command == "help" || command == "--help") return cmd_help(out);
  const auto it = commands.find(command);
  if (it == commands.end()) {
    err << "unknown command: " << command;
    std::vector<std::string> names;
    names.reserve(commands.size());
    for (const auto& [name, handler] : commands) names.push_back(name);
    const std::string suggestion = util::closest_match(command, names);
    if (!suggestion.empty()) {
      err << " (did you mean " << suggestion << "?)";
    }
    err << "\n";
    cmd_help(err);
    return 2;
  }
  try {
    return it->second(rest, out, err);
  } catch (const util::ParseError& e) {
    // Malformed user input (spec/trace files): diagnostic already carries
    // file:line; exit 2 like other usage errors, not 1.
    err << "parse error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace mnemo::cli
