#include "cli/cli.hpp"

#include <exception>
#include <functional>
#include <map>

#include "core/campaign.hpp"
#include "core/migration.hpp"
#include "core/mnemo.hpp"
#include "core/tail_estimator.hpp"
#include "faultinject/fault_plan.hpp"
#include "kvstore/factory.hpp"
#include "util/argparse.hpp"
#include "util/bytes.hpp"
#include "util/status.hpp"
#include "util/table.hpp"
#include "workload/characterize.hpp"
#include "workload/downsample.hpp"
#include "workload/spec_file.hpp"
#include "workload/suite.hpp"

namespace mnemo::cli {

namespace {

kvstore::StoreKind parse_store(const std::string& name) {
  for (const kvstore::StoreKind kind : kvstore::kAllStoreKinds) {
    if (name == kvstore::to_string(kind)) return kind;
  }
  throw std::invalid_argument(
      "--store: expected vermilion, cachet or dynastore, got " + name);
}

core::EstimateModel parse_model(const std::string& name) {
  if (name == "uniform") return core::EstimateModel::kUniformDelta;
  if (name == "size-aware") return core::EstimateModel::kSizeAware;
  throw std::invalid_argument(
      "--model: expected uniform or size-aware, got " + name);
}

/// Shared workload-source options: either --trace file.csv or --workload
/// plus optional overrides.
void add_workload_options(util::ArgParser& parser) {
  parser.add_option("trace", "load the workload from a trace CSV", "");
  parser.add_option("spec", "load the workload from a spec file "
                            "(see `spec` command for a template)",
                    "");
  parser.add_option("workload",
                    "built-in Table III workload name (see `workloads`)",
                    "trending");
  parser.add_option("keys", "override key count", "0");
  parser.add_option("requests", "override request count", "0");
  parser.add_option("seed", "workload seed", "0");
}

workload::Trace load_workload(const util::ArgParser& parser) {
  if (!parser.get("trace").empty()) {
    return workload::Trace::load_csv(parser.get("trace"));
  }
  workload::WorkloadSpec spec =
      parser.get("spec").empty()
          ? workload::paper_workload(parser.get("workload"))
          : workload::load_spec_file(parser.get("spec"));
  if (parser.get_u64("keys") > 0) spec.key_count = parser.get_u64("keys");
  if (parser.get_u64("requests") > 0) {
    spec.request_count = parser.get_u64("requests");
  }
  if (parser.get_u64("seed") > 0) spec.seed = parser.get_u64("seed");
  return workload::Trace::generate(spec);
}

void add_mnemo_options(util::ArgParser& parser) {
  parser.add_option("store", "store architecture: vermilion (Redis-like), "
                             "cachet (Memcached-like), dynastore "
                             "(DynamoDB-like)",
                    "vermilion");
  parser.add_flag("tiered", "use MnemoT's accesses/size key ordering");
  parser.add_option("model", "estimate model: uniform | size-aware",
                    "size-aware");
  parser.add_option("p", "SlowMem price factor (cost floor)", "0.2");
  parser.add_option("slo", "permissible slowdown vs FastMem-only", "0.1");
  parser.add_option("repeats", "runs per measurement", "2");
  parser.add_option("threads",
                    "measurement-campaign worker threads (0 = hardware; "
                    "results are identical at any count)",
                    "0");
  parser.add_flag("stats",
                  "print campaign timing/occupancy stats after the run");
}

core::MnemoConfig mnemo_config(const util::ArgParser& parser) {
  core::MnemoConfig cfg;
  cfg.store = parse_store(parser.get("store"));
  cfg.ordering = parser.has_flag("tiered") ? core::OrderingPolicy::kTiered
                                           : core::OrderingPolicy::kTouchOrder;
  cfg.estimate_model = parse_model(parser.get("model"));
  cfg.price_factor = parser.get_double("p");
  cfg.slo_slowdown = parser.get_double("slo");
  cfg.repeats = static_cast<int>(parser.get_u64("repeats"));
  cfg.threads = static_cast<std::size_t>(parser.get_u64("threads"));
  return cfg;
}

/// Fault-injection options — only `profile` and `plan` take them, so the
/// other commands keep rejecting the flags with their usage text.
void add_fault_options(util::ArgParser& parser) {
  parser.add_option("faults",
                    "deterministic fault plan, comma-separated key=value "
                    "(keys: seed, transient, retries, retry_cost, recover, "
                    "poison, remap_cost, bw_period, bw_window, bw_factor)",
                    "");
  parser.add_option("fail-policy",
                    "quarantined-cell handling: degrade (complete with "
                    "partial results) | abort (exit nonzero)",
                    "degrade");
}

void apply_fault_options(const util::ArgParser& parser,
                         core::MnemoConfig& cfg) {
  if (!parser.get("faults").empty()) {
    cfg.faults = faultinject::FaultPlan::parse(parser.get("faults"));
  }
  cfg.fail_policy =
      faultinject::parse_fail_policy(parser.get("fail-policy"));
}

/// Banner printed only when a fault plan is armed, so fault-free output
/// stays byte-identical to the healthy tool's.
void print_fault_banner(const core::MnemoConfig& cfg, std::ostream& out) {
  if (cfg.faults.empty()) return;
  out << "faults: " << cfg.faults.summary() << " | policy "
      << faultinject::to_string(cfg.fail_policy) << "\n";
}

/// Append the process-wide campaign accounting when --stats was given.
void maybe_print_campaign_stats(const util::ArgParser& parser,
                                std::ostream& out) {
  if (!parser.has_flag("stats")) return;
  out << "\n" << core::campaign_totals().render("campaign totals");
}

// ------------------------------------------------------------- commands

int cmd_workloads(const std::vector<std::string>&, std::ostream& out,
                  std::ostream&) {
  util::TablePrinter table({"name", "distribution", "ratio", "record size",
                            "use case"});
  for (const auto& spec : workload::paper_suite()) {
    table.add_row({spec.name, std::string(to_string(spec.distribution)),
                   spec.ratio_label(),
                   std::string(to_string(spec.record_size)), spec.use_case});
  }
  out << table.render();
  out << "\nall workloads: 10,000 keys and 100,000 requests (Table III).\n";
  return 0;
}

int cmd_generate(const std::vector<std::string>& args, std::ostream& out,
                 std::ostream& err) {
  util::ArgParser parser("mnemo generate", "materialize a workload trace");
  add_workload_options(parser);
  parser.add_option("out", "output trace CSV path", "trace.csv");
  std::string error;
  if (!parser.parse(args, &error)) {
    err << error << "\n" << parser.help();
    return 2;
  }
  const workload::Trace trace = load_workload(parser);
  trace.save_csv(parser.get("out"));
  out << "wrote " << parser.get("out") << ": " << trace.requests().size()
      << " requests over " << trace.key_count() << " keys ("
      << util::format_bytes(trace.dataset_bytes()) << " dataset)\n";
  return 0;
}

int cmd_profile(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err) {
  util::ArgParser parser("mnemo profile",
                         "profile a workload and emit sizing advice");
  add_workload_options(parser);
  add_mnemo_options(parser);
  add_fault_options(parser);
  parser.add_option("out", "advice CSV path (key id, est throughput, cost)",
                    "");
  std::string error;
  if (!parser.parse(args, &error)) {
    err << error << "\n" << parser.help();
    return 2;
  }
  const workload::Trace trace = load_workload(parser);
  core::MnemoConfig cfg = mnemo_config(parser);
  apply_fault_options(parser, cfg);
  const core::Mnemo mnemo(cfg);
  print_fault_banner(cfg, out);
  const core::MnemoReport report = mnemo.profile(trace);

  out << "workload: " << trace.name() << " on "
      << kvstore::to_string(cfg.store) << " (" << to_string(report.ordering)
      << " ordering, " << to_string(cfg.estimate_model) << " model)\n";
  char line[160];
  if (report.degraded) {
    out << "baselines quarantined: no estimate (see failure ledger)\n";
  } else {
    std::snprintf(line, sizeof line,
                  "baselines: FastMem-only %.0f ops/s | SlowMem-only %.0f "
                  "ops/s | sensitivity +%.1f%%\n",
                  report.baselines.fast.throughput_ops,
                  report.baselines.slow.throughput_ops,
                  report.baselines.sensitivity() * 100.0);
    out << line;
    if (report.slo_choice) {
      const core::SloChoice& c = *report.slo_choice;
      std::snprintf(line, sizeof line,
                    "sweet spot @ %.0f%% SLO: %zu keys (%s) in FastMem -> "
                    "memory cost %.0f%% of FastMem-only (%.0f%% savings)\n",
                    cfg.slo_slowdown * 100.0, c.point.fast_keys,
                    util::format_bytes(c.point.fast_bytes).c_str(),
                    c.cost_factor * 100.0, c.savings_vs_fast * 100.0);
      out << line;
    } else {
      out << "no configuration satisfies the SLO\n";
    }
    if (!parser.get("out").empty()) {
      report.write_csv(parser.get("out"));
      out << "wrote " << parser.get("out") << " ("
          << report.curve.points.size() - 1 << " rows)\n";
    }
  }
  if (report.partial()) {
    out << "\npartial results: " << report.cell_failures.size()
        << " campaign cell(s) quarantined\n"
        << core::render_failure_ledger(report.cell_failures);
  } else if (!cfg.faults.empty()) {
    out << "no campaign cells quarantined\n";
  }
  maybe_print_campaign_stats(parser, out);
  if (report.partial() &&
      cfg.fail_policy == faultinject::FailPolicy::kAbort) {
    const core::CellFailure& f = report.cell_failures.front();
    err << "fault policy abort: cell #" << f.cell << " (fast keys "
        << f.fast_keys << ", repeat " << f.repeat
        << ") quarantined: " << f.error.to_string() << "\n";
    return 1;
  }
  return 0;
}

int cmd_plan(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err) {
  util::ArgParser parser("mnemo plan",
                         "capacity plan for the Table III suite");
  add_mnemo_options(parser);
  add_fault_options(parser);
  std::string error;
  if (!parser.parse(args, &error)) {
    err << error << "\n" << parser.help();
    return 2;
  }
  core::MnemoConfig cfg = mnemo_config(parser);
  apply_fault_options(parser, cfg);
  const core::Mnemo mnemo(cfg);
  print_fault_banner(cfg, out);
  util::TablePrinter table(
      {"workload", "DRAM", "NVM", "cost vs DRAM-only", "slowdown"});
  std::vector<core::CellFailure> all_failures;
  std::string first_failed_workload;
  for (const auto& spec : workload::paper_suite()) {
    const workload::Trace trace = workload::Trace::generate(spec);
    const core::MnemoReport report = mnemo.profile(trace);
    if (report.partial()) {
      if (all_failures.empty()) first_failed_workload = spec.name;
      all_failures.insert(all_failures.end(), report.cell_failures.begin(),
                          report.cell_failures.end());
    }
    if (report.degraded) {
      table.add_row({spec.name, "-", "-", "quarantined", "-"});
      continue;
    }
    if (!report.slo_choice) {
      table.add_row({spec.name, "-", "-", "SLO unreachable", "-"});
      continue;
    }
    const core::SloChoice& c = *report.slo_choice;
    table.add_row(
        {spec.name, util::format_bytes(c.point.fast_bytes),
         util::format_bytes(trace.dataset_bytes() - c.point.fast_bytes),
         util::TablePrinter::pct(c.cost_factor, 0),
         util::TablePrinter::pct(c.slowdown_vs_fast, 1)});
  }
  out << table.render();
  if (!cfg.faults.empty()) {
    if (!all_failures.empty()) {
      out << "\npartial results: " << all_failures.size()
          << " campaign cell(s) quarantined\n"
          << core::render_failure_ledger(all_failures);
    } else {
      out << "\nno campaign cells quarantined\n";
    }
  }
  maybe_print_campaign_stats(parser, out);
  if (!all_failures.empty() &&
      cfg.fail_policy == faultinject::FailPolicy::kAbort) {
    const core::CellFailure& f = all_failures.front();
    err << "fault policy abort: workload " << first_failed_workload
        << " cell #" << f.cell << " (fast keys " << f.fast_keys
        << ", repeat " << f.repeat
        << ") quarantined: " << f.error.to_string() << "\n";
    return 1;
  }
  return 0;
}

int cmd_downsample(const std::vector<std::string>& args, std::ostream& out,
                   std::ostream& err) {
  util::ArgParser parser("mnemo downsample",
                         "shrink a trace, preserving its distribution");
  add_workload_options(parser);
  parser.add_option("keep", "fraction of requests to keep", "0.1");
  parser.add_option("out", "output trace CSV path", "downsampled.csv");
  std::string error;
  if (!parser.parse(args, &error)) {
    err << error << "\n" << parser.help();
    return 2;
  }
  const workload::Trace trace = load_workload(parser);
  const double keep = parser.get_double("keep");
  if (keep <= 0.0 || keep > 1.0) {
    err << "--keep must be in (0, 1]\n";
    return 2;
  }
  const workload::Trace down =
      workload::downsample(trace, keep, trace.key_count() ^ 0xd5);
  down.save_csv(parser.get("out"));
  char line[160];
  std::snprintf(line, sizeof line,
                "kept %zu of %zu requests; key-distribution distance %.4f\n",
                down.requests().size(), trace.requests().size(),
                workload::key_distribution_distance(trace, down));
  out << line << "wrote " << parser.get("out") << "\n";
  return 0;
}

int cmd_tails(const std::vector<std::string>& args, std::ostream& out,
              std::ostream& err) {
  util::ArgParser parser("mnemo tails",
                         "mixture-model tail estimates along the curve");
  add_workload_options(parser);
  add_mnemo_options(parser);
  std::string error;
  if (!parser.parse(args, &error)) {
    err << error << "\n" << parser.help();
    return 2;
  }
  const workload::Trace trace = load_workload(parser);
  const core::MnemoConfig cfg = mnemo_config(parser);
  const core::Mnemo mnemo(cfg);
  const core::MnemoReport report = mnemo.profile(trace);
  util::TablePrinter table({"FastMem keys", "cost R(p)", "fast req share",
                            "est p50 (us)", "est p95 (us)", "est p99 (us)"});
  for (const double frac : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const auto idx = static_cast<std::size_t>(
        frac * static_cast<double>(report.curve.points.size() - 1));
    const core::EstimatePoint& p = report.curve.points[idx];
    const core::TailEstimate est = core::TailEstimator::estimate(
        report.pattern, report.order, p.fast_keys, report.baselines);
    table.add_row({std::to_string(p.fast_keys),
                   util::TablePrinter::num(p.cost_factor, 3),
                   util::TablePrinter::pct(est.fast_request_share, 1),
                   util::TablePrinter::num(est.p50_ns / 1e3, 1),
                   util::TablePrinter::num(est.p95_ns / 1e3, 1),
                   util::TablePrinter::num(est.p99_ns / 1e3, 1)});
  }
  out << table.render();
  out << "\ntails use the baseline-mixture extension (the paper reports "
         "but does not estimate tails).\n";
  maybe_print_campaign_stats(parser, out);
  return 0;
}

int cmd_spec(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err) {
  util::ArgParser parser("mnemo spec",
                         "print a workload spec file (template for "
                         "custom workloads)");
  parser.add_option("workload", "built-in workload to dump", "trending");
  std::string error;
  if (!parser.parse(args, &error)) {
    err << error << "\n" << parser.help();
    return 2;
  }
  out << workload::format_spec(
      workload::paper_workload(parser.get("workload")));
  return 0;
}

int cmd_compare(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err) {
  util::ArgParser parser("mnemo compare",
                         "profile one workload across all three store "
                         "architectures");
  add_workload_options(parser);
  add_mnemo_options(parser);
  std::string error;
  if (!parser.parse(args, &error)) {
    err << error << "\n" << parser.help();
    return 2;
  }
  const workload::Trace trace = load_workload(parser);
  core::MnemoConfig cfg = mnemo_config(parser);
  util::TablePrinter table({"store", "FastMem-only ops/s",
                            "SlowMem-only ops/s", "sensitivity",
                            "SLO cost R(p)", "savings"});
  for (const kvstore::StoreKind kind : kvstore::kAllStoreKinds) {
    cfg.store = kind;
    const core::Mnemo mnemo(cfg);
    const core::MnemoReport report = mnemo.profile(trace);
    std::string cost = "-";
    std::string savings = "-";
    if (report.slo_choice) {
      cost = util::TablePrinter::num(report.slo_choice->cost_factor, 3);
      savings =
          util::TablePrinter::pct(report.slo_choice->savings_vs_fast, 1);
    }
    table.add_row(
        {std::string(kvstore::to_string(kind)),
         util::TablePrinter::num(report.baselines.fast.throughput_ops, 0),
         util::TablePrinter::num(report.baselines.slow.throughput_ops, 0),
         util::TablePrinter::pct(report.baselines.sensitivity(), 1), cost,
         savings});
  }
  out << "workload: " << trace.name() << "\n" << table.render();
  maybe_print_campaign_stats(parser, out);
  return 0;
}

int cmd_inspect(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err) {
  util::ArgParser parser("mnemo inspect",
                         "characterize a workload: skew, reuse distances, "
                         "cache-fit prediction");
  add_workload_options(parser);
  std::string error;
  if (!parser.parse(args, &error)) {
    err << error << "\n" << parser.help();
    return 2;
  }
  const workload::Trace trace = load_workload(parser);
  const workload::Characterization c = workload::characterize(trace);

  util::TablePrinter table({"metric", "value"});
  table.add_row({"keys", std::to_string(c.keys)});
  table.add_row({"requests", std::to_string(c.requests)});
  table.add_row({"dataset", util::format_bytes(c.dataset_bytes)});
  table.add_row({"read fraction", util::TablePrinter::pct(c.read_fraction, 1)});
  table.add_row(
      {"insert fraction", util::TablePrinter::pct(c.insert_fraction, 1)});
  table.add_row({"hot-10% share", util::TablePrinter::pct(c.hot10_share, 1)});
  table.add_row({"hot-20% share", util::TablePrinter::pct(c.hot20_share, 1)});
  table.add_row({"gini (popularity)", util::TablePrinter::num(c.gini, 3)});
  table.add_row({"reuse distance p50",
                 util::format_bytes(
                     static_cast<std::uint64_t>(c.reuse_p50_bytes))});
  table.add_row({"reuse distance p90",
                 util::format_bytes(
                     static_cast<std::uint64_t>(c.reuse_p90_bytes))});
  table.add_row({"reuse distance p99",
                 util::format_bytes(
                     static_cast<std::uint64_t>(c.reuse_p99_bytes))});
  table.add_row({"cold accesses", std::to_string(c.cold_accesses)});
  const auto platform = hybridmem::paper_testbed();
  const auto bypass = static_cast<std::uint64_t>(
      platform.llc_bypass_fraction * static_cast<double>(platform.llc_bytes));
  table.add_row(
      {"predicted LLC hit rate (12 MiB)",
       util::TablePrinter::pct(
           c.predicted_hit_rate(platform.llc_bytes, bypass), 1)});
  out << "workload: " << trace.name() << "\n" << table.render();
  out << "\nreuse distances are byte-granular LRU stack distances; the "
         "LLC prediction follows from them directly.\n";
  return 0;
}

int cmd_migrate(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err) {
  util::ArgParser parser(
      "mnemo migrate",
      "dynamic re-tiering (MnemoDyn extension) vs static placement");
  add_workload_options(parser);
  parser.add_option("store", "store architecture", "vermilion");
  parser.add_option("threads",
                    "measurement-campaign worker threads (0 = hardware)",
                    "0");
  parser.add_option("budget", "FastMem budget as a dataset fraction", "0.3");
  parser.add_option("epoch", "requests per re-tiering epoch", "2000");
  parser.add_option("cap", "max migrated bytes per epoch (0 = unlimited)",
                    "16777216");
  parser.add_flag("background", "migrations do not stall the client");
  parser.add_flag("reactive", "disable drift prediction");
  std::string error;
  if (!parser.parse(args, &error)) {
    err << error << "\n" << parser.help();
    return 2;
  }
  const workload::Trace trace = load_workload(parser);
  const double budget = parser.get_double("budget");
  if (budget <= 0.0 || budget > 1.0) {
    err << "--budget must be in (0, 1]\n";
    return 2;
  }

  core::SensitivityConfig sens;
  sens.store = parse_store(parser.get("store"));
  sens.repeats = 1;
  sens.threads = static_cast<std::size_t>(parser.get_u64("threads"));
  core::MigrationConfig mig;
  mig.fast_budget_bytes = static_cast<std::uint64_t>(
      budget * static_cast<double>(trace.dataset_bytes()));
  mig.epoch_requests = parser.get_u64("epoch");
  mig.migration_bytes_per_epoch = parser.get_u64("cap");
  mig.foreground = !parser.has_flag("background");
  mig.predictive = !parser.has_flag("reactive");

  const core::DynamicTierer tierer(sens, mig);
  const core::RunMeasurement oracle = tierer.run_static_oracle(trace);
  const core::MigrationResult dynamic = tierer.run(trace);

  util::TablePrinter table({"strategy", "throughput (ops/s)", "vs static",
                            "keys moved", "migration (ms)"});
  table.add_row({"static oracle (MnemoT advice)",
                 util::TablePrinter::num(oracle.throughput_ops, 0), "0.0%",
                 "0", "0"});
  table.add_row(
      {mig.predictive ? "dynamic (predictive)" : "dynamic (reactive)",
       util::TablePrinter::num(dynamic.measurement.throughput_ops, 0),
       util::TablePrinter::pct(
           dynamic.measurement.throughput_ops / oracle.throughput_ops - 1.0,
           1),
       std::to_string(dynamic.migrations),
       util::TablePrinter::num(dynamic.migration_ns / 1e6, 0)});
  out << "workload: " << trace.name() << ", FastMem budget "
      << util::format_bytes(mig.fast_budget_bytes) << "\n"
      << table.render();
  return 0;
}

int cmd_testbed(const std::vector<std::string>&, std::ostream& out,
                std::ostream&) {
  const auto p = hybridmem::paper_testbed();
  util::TablePrinter table({"node", "latency (ns)", "bandwidth (GB/s)",
                            "capacity"});
  table.add_row({std::string(p.fast.name),
                 util::TablePrinter::num(p.fast.latency_ns, 1),
                 util::TablePrinter::num(p.fast.bandwidth_gbps, 2),
                 util::format_bytes(p.fast.capacity_bytes)});
  table.add_row({std::string(p.slow.name),
                 util::TablePrinter::num(p.slow.latency_ns, 1),
                 util::TablePrinter::num(p.slow.bandwidth_gbps, 2),
                 util::format_bytes(p.slow.capacity_bytes)});
  out << table.render();
  char line[160];
  std::snprintf(line, sizeof line,
                "factors: B %.2fx bandwidth, L %.2fx latency; LLC %s\n",
                p.bandwidth_factor(), p.latency_factor(),
                util::format_bytes(p.llc_bytes).c_str());
  out << line;
  return 0;
}

int cmd_help(std::ostream& out) {
  out << "mnemo — memory sizing & data tiering consultant for hybrid "
         "memory systems\n\n"
         "usage: mnemo <command> [options]\n\n"
         "commands:\n"
         "  workloads    list the built-in Table III workload suite\n"
         "  generate     materialize a workload trace to CSV\n"
         "  inspect      characterize a workload (skew, reuse, cache fit)\n"
         "  profile      run Mnemo/MnemoT on a workload, emit the advice\n"
         "  compare      profile one workload across all three stores\n"
         "  plan         capacity plan for the whole suite at an SLO\n"
         "  spec         print a workload spec-file template\n"
         "  downsample   shrink a trace while preserving its distribution\n"
         "  tails        mixture-model tail estimates along the curve\n"
         "  migrate      dynamic re-tiering vs static placement\n"
         "  testbed      show the emulated platform (Table I)\n"
         "  help         this text\n\n"
         "run `mnemo <command> --help` is not needed: invalid options "
         "print the command's usage.\n";
  return 0;
}

}  // namespace

int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err) {
  if (args.empty()) {
    cmd_help(out);
    return 2;
  }
  const std::string& command = args.front();
  const std::vector<std::string> rest(args.begin() + 1, args.end());
  using Handler = std::function<int(const std::vector<std::string>&,
                                    std::ostream&, std::ostream&)>;
  const std::map<std::string, Handler> commands = {
      {"workloads", cmd_workloads}, {"generate", cmd_generate},
      {"profile", cmd_profile},     {"plan", cmd_plan},
      {"downsample", cmd_downsample}, {"tails", cmd_tails},
      {"testbed", cmd_testbed},     {"spec", cmd_spec},
      {"compare", cmd_compare},     {"migrate", cmd_migrate},
      {"inspect", cmd_inspect},
  };
  if (command == "help" || command == "--help") return cmd_help(out);
  const auto it = commands.find(command);
  if (it == commands.end()) {
    err << "unknown command: " << command << "\n";
    cmd_help(err);
    return 2;
  }
  try {
    return it->second(rest, out, err);
  } catch (const util::ParseError& e) {
    // Malformed user input (spec/trace files): diagnostic already carries
    // file:line; exit 2 like other usage errors, not 1.
    err << "parse error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace mnemo::cli
