#include "hybridmem/memory_node.hpp"

#include "util/assert.hpp"

namespace mnemo::hybridmem {

MemoryNode::MemoryNode(NodeSpec spec) : spec_(std::move(spec)) {
  MNEMO_EXPECTS(spec_.latency_ns > 0.0);
  MNEMO_EXPECTS(spec_.bandwidth_gbps > 0.0);
}

}  // namespace mnemo::hybridmem
