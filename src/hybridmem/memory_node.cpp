#include "hybridmem/memory_node.hpp"

#include "util/assert.hpp"

namespace mnemo::hybridmem {

double NodeSpec::stream_ns(std::uint64_t bytes) const {
  MNEMO_EXPECTS(bandwidth_gbps > 0.0);
  // GB/s == bytes/ns exactly (1e9 bytes per 1e9 ns).
  return static_cast<double>(bytes) / bandwidth_gbps;
}

MemoryNode::MemoryNode(NodeSpec spec) : spec_(std::move(spec)) {
  MNEMO_EXPECTS(spec_.latency_ns > 0.0);
  MNEMO_EXPECTS(spec_.bandwidth_gbps > 0.0);
}

bool MemoryNode::allocate(std::uint64_t bytes) noexcept {
  if (bytes > free_bytes()) return false;
  used_ += bytes;
  ++objects_;
  return true;
}

void MemoryNode::release(std::uint64_t bytes) noexcept {
  MNEMO_EXPECTS(bytes <= used_);
  MNEMO_EXPECTS(objects_ > 0);
  used_ -= bytes;
  --objects_;
}

bool MemoryNode::grow(std::uint64_t bytes) noexcept {
  if (bytes > free_bytes()) return false;
  used_ += bytes;
  return true;
}

void MemoryNode::shrink(std::uint64_t bytes) noexcept {
  MNEMO_EXPECTS(bytes <= used_);
  used_ -= bytes;
}

double MemoryNode::access_ns(const AccessTraits& t, MemOp op,
                             double bandwidth_factor) const {
  MNEMO_EXPECTS(bandwidth_factor > 0.0);
  const double latency =
      spec_.latency_ns * t.latency_touches * t.latency_sensitivity;
  const double exposed = 1.0 - t.bandwidth_overlap;
  const double stream =
      spec_.stream_ns(t.streamed_bytes) * exposed / bandwidth_factor;
  double ns = latency + stream;
  if (op == MemOp::kWrite) ns *= t.write_discount;
  return ns;
}

void MemoryNode::note_traffic(MemOp op, std::uint64_t bytes) noexcept {
  if (op == MemOp::kRead) {
    ++reads_;
  } else {
    ++writes_;
  }
  bytes_streamed_ += bytes;
}

}  // namespace mnemo::hybridmem
