#pragma once

#include <cstdint>
#include <memory>
#include <memory_resource>
#include <optional>
#include <unordered_map>
#include <vector>

#include "faultinject/fault_injector.hpp"
#include "hybridmem/access.hpp"
#include "hybridmem/emulation_profile.hpp"
#include "hybridmem/llc_model.hpp"
#include "hybridmem/memory_node.hpp"
#include "util/assert.hpp"
#include "util/flat_lru.hpp"

namespace mnemo::hybridmem {

/// The hybrid memory system: FastMem + SlowMem as a flat address-space
/// extension (no hardware caching of SlowMem in FastMem — the paper's
/// assumption), fronted by a shared LLC.
///
/// Objects (key-value records) are registered on a node; every access is
/// priced by (a) the LLC if the whole object is resident, otherwise (b) the
/// owning node's latency/bandwidth under the caller's AccessTraits. All
/// times are simulated nanoseconds on a virtual clock; nothing here touches
/// the wall clock.
class HybridMemory {
 public:
  /// `memory` (optional) backs the platform's flat tables (object table,
  /// LLC recency) — a campaign cell's arena when one is plumbed through
  /// (DESIGN.md §12), the default heap otherwise. The rare overflow map
  /// for tagged overhead IDs stays on the heap either way.
  explicit HybridMemory(const EmulationProfile& profile,
                        std::pmr::memory_resource* memory = nullptr);

  /// Place a new object. Returns false if the node is out of capacity.
  [[nodiscard]] bool place(std::uint64_t object_id, std::uint64_t bytes,
                           NodeId node);

  /// Remove an object entirely. No-op if unknown.
  void remove(std::uint64_t object_id);

  /// Move an object to the other node (static re-placement, not runtime
  /// migration — Mnemo provides static allocations only). Returns false if
  /// the destination lacks capacity; the object then stays put.
  [[nodiscard]] bool migrate(std::uint64_t object_id, NodeId to);

  /// Change an object's size in place (record update with a different
  /// value size). Returns false if the node cannot fit the growth.
  /// Inline: every record-update PUT resizes its object (DESIGN.md §8).
  [[nodiscard]] bool resize(std::uint64_t object_id, std::uint64_t new_bytes) {
    ObjectInfo* info = find_object(object_id);
    MNEMO_EXPECTS(info != nullptr);
    if (new_bytes > info->bytes) {
      if (!node(info->node).grow(new_bytes - info->bytes)) return false;
    } else if (new_bytes < info->bytes) {
      node(info->node).shrink(info->bytes - new_bytes);
    }
    info->bytes = new_bytes;
    llc_.invalidate(object_id);
    return true;
  }

  [[nodiscard]] std::optional<NodeId> locate(std::uint64_t object_id) const;
  [[nodiscard]] std::optional<std::uint64_t> object_size(
      std::uint64_t object_id) const;

  /// Price one logical access to a placed object. `traits.streamed_bytes`
  /// of 0 means "touch metadata only" and streams the object's own size
  /// instead. Requires the object to be placed. Defined inline: every
  /// GET/PUT payload touch lands here (DESIGN.md §8).
  AccessResult access(std::uint64_t object_id, MemOp op,
                      const AccessTraits& traits) {
    const ObjectInfo* info = find_object(object_id);
    MNEMO_EXPECTS(info != nullptr);

    AccessTraits effective = traits;
    if (effective.streamed_bytes == 0) effective.streamed_bytes = info->bytes;

    AccessResult result;
    const bool hit = llc_.access(object_id, info->bytes);
    if (hit) {
      result.llc_hit = true;
      result.ns = llc_.hit_ns(effective.streamed_bytes) *
                  effective.latency_touches;
      if (op == MemOp::kWrite) result.ns *= effective.write_discount;
    } else {
      // Faults live on the SlowMem medium and only fire on LLC misses; an
      // unarmed (or paused) injector leaves this path bit-identical to the
      // healthy platform.
      double bw_factor = 1.0;
      double extra_ns = 0.0;
      if (injector_ && !injector_->paused() && info->node == NodeId::kSlow) {
        if (op == MemOp::kRead && injector_->poisoned(object_id)) {
          result.fault = FaultKind::kPoisoned;
          injector_->note_poison_hit();
        } else {
          bw_factor = injector_->next_bandwidth_factor();
          if (op == MemOp::kRead) {
            const auto outcome = injector_->on_slow_read();
            extra_ns = outcome.extra_ns;
            result.fault_retries = outcome.retries;
            if (outcome.faulted) result.fault = FaultKind::kTransient;
            result.failed = outcome.failed;
          }
        }
      }
      result.ns =
          node(info->node).access_ns(effective, op, bw_factor) + extra_ns;
      // A read whose retries exhausted delivered no data, so it must not
      // leave the line cached — a retry has to face the medium again.
      if (result.failed) llc_.invalidate(object_id);
    }
    node(info->node).note_traffic(op, effective.streamed_bytes);
    return result;
  }

  /// Price a raw access against a node, bypassing placement and LLC — used
  /// by microbenchmarks that characterize the nodes themselves (Table I).
  [[nodiscard]] double raw_access_ns(NodeId node, const AccessTraits& traits,
                                     MemOp op) const;

  [[nodiscard]] const MemoryNode& node(NodeId id) const noexcept {
    return id == NodeId::kFast ? fast_ : slow_;
  }
  [[nodiscard]] MemoryNode& node(NodeId id) noexcept {
    return id == NodeId::kFast ? fast_ : slow_;
  }
  [[nodiscard]] const LlcModel& llc() const noexcept { return llc_; }
  [[nodiscard]] const EmulationProfile& profile() const noexcept {
    return profile_;
  }
  [[nodiscard]] std::size_t object_count() const noexcept {
    return object_count_;
  }

  /// Pre-size the object table and LLC for `max_objects` dense IDs so the
  /// replay hot path performs no steady-state allocations (DESIGN.md §8).
  /// Callers that know the trace key count (DualServer::populate) invoke
  /// this once up front; everything still works, just slower, without it.
  void reserve_objects(std::size_t max_objects);

  /// Batch entry point for the lane-fused replay (core/lane_band): hint
  /// the object-table and LLC set-index loads the next access() of
  /// `object_id` will perform, issued while the current op executes.
  /// Advisory only — no architectural effect on placement, cache state or
  /// statistics — so bit-identity across replay modes is untouched.
  void prefetch_object(std::uint64_t object_id) const noexcept {
#if defined(__GNUC__) || defined(__clang__)
    if (object_id < dense_objects_.size()) {
      __builtin_prefetch(&dense_objects_[static_cast<std::size_t>(object_id)]);
    }
#endif
    llc_.prefetch(object_id);
  }

  /// Total bytes resident across both nodes.
  [[nodiscard]] std::uint64_t total_used_bytes() const noexcept;

  /// Reset LLC state (between experiment phases) without moving data.
  void drop_caches() { llc_.clear(); }

  /// Arm deterministic fault injection on this platform's SlowMem. No-op
  /// for an empty plan. `stream` makes independent deployments (campaign
  /// cells, retry attempts) draw independent fault sequences from the same
  /// plan seed. Must be called at most once, before any access.
  void arm_faults(const faultinject::FaultPlan& plan, std::uint64_t stream);

  /// The armed injector, or nullptr on a healthy platform.
  [[nodiscard]] faultinject::FaultInjector* fault_injector() noexcept {
    return injector_.get();
  }
  [[nodiscard]] const faultinject::FaultInjector* fault_injector()
      const noexcept {
    return injector_.get();
  }

  /// Fault events absorbed so far (all-zero on a healthy platform).
  [[nodiscard]] faultinject::FaultStats fault_stats() const noexcept {
    return injector_ ? injector_->stats() : faultinject::FaultStats{};
  }

 private:
  struct ObjectInfo {
    std::uint64_t bytes = 0;
    NodeId node = NodeId::kFast;
    bool present = false;
  };

  // Object IDs are dense [0, key_count) for records (a Placement
  // guarantee), so the table is a flat vector indexed by ID with a
  // presence flag — no hashing on the access hot path. Tagged IDs at or
  // above util::kDenseIdCap (per-store overhead objects) take the
  // overflow map; they see only place/resize/remove, never access().
  [[nodiscard]] ObjectInfo* find_object(std::uint64_t object_id) {
    if (object_id < dense_objects_.size()) {
      ObjectInfo& info = dense_objects_[static_cast<std::size_t>(object_id)];
      return info.present ? &info : nullptr;
    }
    return find_object_slow(object_id);
  }
  [[nodiscard]] const ObjectInfo* find_object(std::uint64_t object_id) const {
    return const_cast<HybridMemory*>(this)->find_object(object_id);
  }
  [[nodiscard]] ObjectInfo* find_object_slow(std::uint64_t object_id);
  ObjectInfo& insert_object(std::uint64_t object_id);
  void erase_object(std::uint64_t object_id);

  EmulationProfile profile_;
  MemoryNode fast_;
  MemoryNode slow_;
  LlcModel llc_;
  std::pmr::vector<ObjectInfo> dense_objects_;
  std::unordered_map<std::uint64_t, ObjectInfo> overflow_objects_;
  std::size_t object_count_ = 0;
  std::unique_ptr<faultinject::FaultInjector> injector_;
};

}  // namespace mnemo::hybridmem
