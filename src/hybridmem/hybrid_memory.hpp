#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>

#include "faultinject/fault_injector.hpp"
#include "hybridmem/access.hpp"
#include "hybridmem/emulation_profile.hpp"
#include "hybridmem/llc_model.hpp"
#include "hybridmem/memory_node.hpp"

namespace mnemo::hybridmem {

/// The hybrid memory system: FastMem + SlowMem as a flat address-space
/// extension (no hardware caching of SlowMem in FastMem — the paper's
/// assumption), fronted by a shared LLC.
///
/// Objects (key-value records) are registered on a node; every access is
/// priced by (a) the LLC if the whole object is resident, otherwise (b) the
/// owning node's latency/bandwidth under the caller's AccessTraits. All
/// times are simulated nanoseconds on a virtual clock; nothing here touches
/// the wall clock.
class HybridMemory {
 public:
  explicit HybridMemory(const EmulationProfile& profile);

  /// Place a new object. Returns false if the node is out of capacity.
  [[nodiscard]] bool place(std::uint64_t object_id, std::uint64_t bytes,
                           NodeId node);

  /// Remove an object entirely. No-op if unknown.
  void remove(std::uint64_t object_id);

  /// Move an object to the other node (static re-placement, not runtime
  /// migration — Mnemo provides static allocations only). Returns false if
  /// the destination lacks capacity; the object then stays put.
  [[nodiscard]] bool migrate(std::uint64_t object_id, NodeId to);

  /// Change an object's size in place (record update with a different
  /// value size). Returns false if the node cannot fit the growth.
  [[nodiscard]] bool resize(std::uint64_t object_id, std::uint64_t new_bytes);

  [[nodiscard]] std::optional<NodeId> locate(std::uint64_t object_id) const;
  [[nodiscard]] std::optional<std::uint64_t> object_size(
      std::uint64_t object_id) const;

  /// Price one logical access to a placed object. `traits.streamed_bytes`
  /// of 0 means "touch metadata only" and streams the object's own size
  /// instead. Requires the object to be placed.
  AccessResult access(std::uint64_t object_id, MemOp op,
                      const AccessTraits& traits);

  /// Price a raw access against a node, bypassing placement and LLC — used
  /// by microbenchmarks that characterize the nodes themselves (Table I).
  [[nodiscard]] double raw_access_ns(NodeId node, const AccessTraits& traits,
                                     MemOp op) const;

  [[nodiscard]] const MemoryNode& node(NodeId id) const;
  [[nodiscard]] MemoryNode& node(NodeId id);
  [[nodiscard]] const LlcModel& llc() const noexcept { return llc_; }
  [[nodiscard]] const EmulationProfile& profile() const noexcept {
    return profile_;
  }
  [[nodiscard]] std::size_t object_count() const noexcept {
    return objects_.size();
  }

  /// Total bytes resident across both nodes.
  [[nodiscard]] std::uint64_t total_used_bytes() const noexcept;

  /// Reset LLC state (between experiment phases) without moving data.
  void drop_caches() { llc_.clear(); }

  /// Arm deterministic fault injection on this platform's SlowMem. No-op
  /// for an empty plan. `stream` makes independent deployments (campaign
  /// cells, retry attempts) draw independent fault sequences from the same
  /// plan seed. Must be called at most once, before any access.
  void arm_faults(const faultinject::FaultPlan& plan, std::uint64_t stream);

  /// The armed injector, or nullptr on a healthy platform.
  [[nodiscard]] faultinject::FaultInjector* fault_injector() noexcept {
    return injector_.get();
  }
  [[nodiscard]] const faultinject::FaultInjector* fault_injector()
      const noexcept {
    return injector_.get();
  }

  /// Fault events absorbed so far (all-zero on a healthy platform).
  [[nodiscard]] faultinject::FaultStats fault_stats() const noexcept {
    return injector_ ? injector_->stats() : faultinject::FaultStats{};
  }

 private:
  struct ObjectInfo {
    std::uint64_t bytes;
    NodeId node;
  };

  EmulationProfile profile_;
  MemoryNode fast_;
  MemoryNode slow_;
  LlcModel llc_;
  std::unordered_map<std::uint64_t, ObjectInfo> objects_;
  std::unique_ptr<faultinject::FaultInjector> injector_;
};

}  // namespace mnemo::hybridmem
