#include "hybridmem/llc_model.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace mnemo::hybridmem {

LlcModel::LlcModel(std::uint64_t capacity_bytes, double hit_latency_ns,
                   double hit_bandwidth_gbps, double bypass_fraction,
                   std::pmr::memory_resource* memory)
    : capacity_(capacity_bytes),
      hit_latency_ns_(hit_latency_ns),
      hit_bandwidth_gbps_(hit_bandwidth_gbps),
      bypass_threshold_(static_cast<std::uint64_t>(
          static_cast<double>(capacity_bytes) * bypass_fraction)),
      lru_(memory) {
  MNEMO_EXPECTS(capacity_bytes > 0);
  MNEMO_EXPECTS(hit_latency_ns > 0.0);
  MNEMO_EXPECTS(hit_bandwidth_gbps > 0.0);
  MNEMO_EXPECTS(bypass_fraction > 0.0 && bypass_fraction <= 1.0);
}

double LlcModel::hit_rate() const noexcept {
  const std::uint64_t total = hits_ + misses_;
  return total == 0 ? 0.0
                    : static_cast<double>(hits_) / static_cast<double>(total);
}

void LlcModel::reserve(std::size_t max_objects) {
  const std::size_t resident_cap = static_cast<std::size_t>(
      std::min<std::uint64_t>(max_objects, capacity_ / kMinEntryBytes + 1));
  lru_.reserve(max_objects, resident_cap);
}

void LlcModel::evict_to(std::uint64_t need) {
  MNEMO_EXPECTS(need <= capacity_);
  while (used_ + need > capacity_ && !lru_.empty()) {
    used_ -= lru_.back();
    lru_.pop_back();
    ++evictions_;
  }
}

void LlcModel::evict_grown(std::uint64_t grown_id) {
  // Victims come from the LRU end; the grown entry itself sits at the MRU
  // end and is only dropped if, alone, it still exceeds capacity.
  while (used_ > capacity_ && lru_.size() > 1) {
    used_ -= lru_.back();
    lru_.pop_back();
    ++evictions_;
  }
  if (used_ > capacity_) {
    const std::uint64_t* bytes = lru_.find(grown_id);
    MNEMO_ASSERT(bytes != nullptr);
    used_ -= *bytes;
    (void)lru_.erase(grown_id);
    ++evictions_;
  }
}

void LlcModel::clear() {
  lru_.clear();
  used_ = 0;
  // Clearing marks a measurement boundary (e.g. after the load phase);
  // the hit statistics restart with the content.
  hits_ = 0;
  misses_ = 0;
  evictions_ = 0;
}

}  // namespace mnemo::hybridmem
