#include "hybridmem/llc_model.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace mnemo::hybridmem {

LlcModel::LlcModel(std::uint64_t capacity_bytes, double hit_latency_ns,
                   double hit_bandwidth_gbps, double bypass_fraction)
    : capacity_(capacity_bytes),
      hit_latency_ns_(hit_latency_ns),
      hit_bandwidth_gbps_(hit_bandwidth_gbps),
      bypass_threshold_(static_cast<std::uint64_t>(
          static_cast<double>(capacity_bytes) * bypass_fraction)) {
  MNEMO_EXPECTS(capacity_bytes > 0);
  MNEMO_EXPECTS(hit_latency_ns > 0.0);
  MNEMO_EXPECTS(hit_bandwidth_gbps > 0.0);
  MNEMO_EXPECTS(bypass_fraction > 0.0 && bypass_fraction <= 1.0);
}

double LlcModel::hit_rate() const noexcept {
  const std::uint64_t total = hits_ + misses_;
  return total == 0 ? 0.0
                    : static_cast<double>(hits_) / static_cast<double>(total);
}

double LlcModel::hit_ns(std::uint64_t bytes) const {
  return hit_latency_ns_ + static_cast<double>(bytes) / hit_bandwidth_gbps_;
}

bool LlcModel::access(std::uint64_t id, std::uint64_t bytes) {
  const auto it = index_.find(id);
  if (it != index_.end()) {
    // Size may have changed (record update); keep accounting honest.
    used_ -= it->second->bytes;
    used_ += bytes;
    it->second->bytes = bytes;
    lru_.splice(lru_.begin(), lru_, it->second);
    ++hits_;
    return true;
  }
  ++misses_;
  if (bytes > bypass_threshold_) return false;
  evict_to(bytes);
  lru_.push_front(Entry{id, bytes});
  index_[id] = lru_.begin();
  used_ += bytes;
  return false;
}

void LlcModel::evict_to(std::uint64_t need) {
  MNEMO_EXPECTS(need <= capacity_);
  while (used_ + need > capacity_ && !lru_.empty()) {
    const Entry victim = lru_.back();
    lru_.pop_back();
    index_.erase(victim.id);
    used_ -= victim.bytes;
  }
}

void LlcModel::invalidate(std::uint64_t id) {
  const auto it = index_.find(id);
  if (it == index_.end()) return;
  used_ -= it->second->bytes;
  lru_.erase(it->second);
  index_.erase(it);
}

void LlcModel::clear() {
  lru_.clear();
  index_.clear();
  used_ = 0;
  // Clearing marks a measurement boundary (e.g. after the load phase);
  // the hit statistics restart with the content.
  hits_ = 0;
  misses_ = 0;
}

}  // namespace mnemo::hybridmem
