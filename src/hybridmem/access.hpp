#pragma once

#include <cstdint>
#include <string_view>

namespace mnemo::hybridmem {

/// The two memory components of the hybrid system, named as in the paper.
enum class NodeId : std::uint8_t { kFast = 0, kSlow = 1 };

inline constexpr std::string_view to_string(NodeId n) {
  return n == NodeId::kFast ? "FastMem" : "SlowMem";
}

/// Kind of memory traffic an access generates.
enum class MemOp : std::uint8_t { kRead = 0, kWrite = 1 };

/// How a key-value store touches memory for one logical operation. The
/// store layer describes *what* it does; the emulator prices it against the
/// node the data lives on. This split keeps store architecture (tree
/// descent, slab lookup, journal append) independent of memory technology.
struct AccessTraits {
  /// Dependent cache-missing touches (pointer chases): each costs one full
  /// node latency, serialized.
  std::uint32_t latency_touches = 1;
  /// Sequentially streamed payload bytes, priced against node bandwidth.
  std::uint64_t streamed_bytes = 0;
  /// Multiplier on the latency component; >1 models latency-bound engines
  /// that cannot hide misses (e.g. B-tree descent), <1 models speculative
  /// or batched designs.
  double latency_sensitivity = 1.0;
  /// Fraction of the stream time hidden behind CPU work / prefetch
  /// (0 = fully exposed, 0.9 = 90 % overlapped).
  double bandwidth_overlap = 0.0;
  /// Fraction of the nominal cost actually paid by writes thanks to
  /// write-combining buffers (1.0 = writes pay full price).
  double write_discount = 1.0;
};

/// Fault absorbed by one access (ordered by severity so a worst-wins
/// reduction over several accesses is a plain max).
enum class FaultKind : std::uint8_t { kNone = 0, kTransient = 1, kPoisoned = 2 };

inline constexpr std::string_view to_string(FaultKind f) {
  switch (f) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kTransient:
      return "transient";
    case FaultKind::kPoisoned:
      return "poisoned";
  }
  return "?";
}

/// Outcome of pricing one access.
struct AccessResult {
  double ns = 0.0;     ///< simulated service time of the memory part
  bool llc_hit = false;  ///< whole object was LLC-resident
  FaultKind fault = FaultKind::kNone;  ///< injected fault, if any
  int fault_retries = 0;  ///< transient retry attempts absorbed
  bool failed = false;    ///< retries exhausted; data not delivered
};

}  // namespace mnemo::hybridmem
