#include "hybridmem/placement.hpp"

#include "util/assert.hpp"

namespace mnemo::hybridmem {

Placement::Placement(std::size_t key_count, NodeId everywhere)
    : nodes_(key_count, everywhere),
      fast_keys_(everywhere == NodeId::kFast ? key_count : 0) {}

Placement Placement::from_order(std::span<const std::uint64_t> ordered_keys,
                                std::size_t fast_prefix) {
  MNEMO_EXPECTS(fast_prefix <= ordered_keys.size());
  Placement p(ordered_keys.size(), NodeId::kSlow);
  for (std::size_t i = 0; i < fast_prefix; ++i) {
    p.set(ordered_keys[i], NodeId::kFast);
  }
  return p;
}

Placement Placement::from_order_with_budget(
    std::span<const std::uint64_t> ordered_keys,
    std::span<const std::uint64_t> key_sizes, std::uint64_t fast_budget) {
  MNEMO_EXPECTS(ordered_keys.size() == key_sizes.size());
  Placement p(ordered_keys.size(), NodeId::kSlow);
  std::uint64_t used = 0;
  for (const std::uint64_t key : ordered_keys) {
    MNEMO_EXPECTS(key < key_sizes.size());
    const std::uint64_t size = key_sizes[key];
    if (used + size > fast_budget) break;
    used += size;
    p.set(key, NodeId::kFast);
  }
  return p;
}

void Placement::set(std::uint64_t key, NodeId node) {
  MNEMO_EXPECTS(key < nodes_.size());
  if (nodes_[key] == node) return;
  nodes_[key] = node;
  if (node == NodeId::kFast) {
    ++fast_keys_;
  } else {
    --fast_keys_;
  }
}

std::uint64_t Placement::bytes_on(
    NodeId node, std::span<const std::uint64_t> key_sizes) const {
  MNEMO_EXPECTS(key_sizes.size() == nodes_.size());
  std::uint64_t sum = 0;
  for (std::size_t k = 0; k < nodes_.size(); ++k) {
    if (nodes_[k] == node) sum += key_sizes[k];
  }
  return sum;
}

}  // namespace mnemo::hybridmem
