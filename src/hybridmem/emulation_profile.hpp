#pragma once

#include <cstdint>

#include "hybridmem/memory_node.hpp"

namespace mnemo::hybridmem {

/// Full configuration of the emulated hybrid memory system.
struct EmulationProfile {
  NodeSpec fast;
  NodeSpec slow;
  std::uint64_t llc_bytes = 0;
  double llc_latency_ns = 0.0;
  double llc_bandwidth_gbps = 0.0;
  /// Objects larger than this fraction of the LLC bypass it entirely
  /// (streamed payloads exhibit non-temporal behaviour and do not stay
  /// resident). Default lets ~64 KiB objects cache in a 12 MB LLC —
  /// captions and text posts can be cache-resident, 100 KB thumbnails
  /// always stream from their node.
  double llc_bypass_fraction = 64.0 * 1024.0 / (12.0 * 1024.0 * 1024.0);

  /// SlowMem bandwidth as a fraction of FastMem's (the paper's "B" factor).
  [[nodiscard]] double bandwidth_factor() const {
    return slow.bandwidth_gbps / fast.bandwidth_gbps;
  }
  /// SlowMem latency as a multiple of FastMem's (the paper's "L" factor).
  [[nodiscard]] double latency_factor() const {
    return slow.latency_ns / fast.latency_ns;
  }
};

/// The paper's testbed (Table I): a dual-socket Xeon with two 4 GB DDR3
/// nodes and a 12 MB shared LLC. FastMem is unmodified DRAM (65.7 ns,
/// 14.9 GB/s); SlowMem is the throttled node (238.1 ns, 1.81 GB/s), i.e.
/// bandwidth reduced 0.12x and latency increased 3.62x.
EmulationProfile paper_testbed();

/// Same technology factors scaled to a given per-node capacity — used by
/// tests and sweeps that want datasets larger or smaller than 4 GB without
/// changing timing behaviour.
EmulationProfile paper_testbed_with_capacity(std::uint64_t node_bytes);

/// An Optane-DC-like projection (idle latency ~3x DRAM, bandwidth ~0.35x)
/// for sensitivity studies beyond the paper's throttling emulation.
EmulationProfile optane_projection();

}  // namespace mnemo::hybridmem
