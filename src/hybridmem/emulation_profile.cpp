#include "hybridmem/emulation_profile.hpp"

#include "util/bytes.hpp"

namespace mnemo::hybridmem {

using util::kGiB;
using util::kMiB;

EmulationProfile paper_testbed_with_capacity(std::uint64_t node_bytes) {
  EmulationProfile p;
  p.fast = NodeSpec{"FastMem", 65.7, 14.9, node_bytes};
  p.slow = NodeSpec{"SlowMem", 238.1, 1.81, node_bytes};
  p.llc_bytes = 12 * kMiB;
  p.llc_latency_ns = 12.0;       // typical shared-L3 load-to-use
  p.llc_bandwidth_gbps = 100.0;  // on-chip SRAM stream bandwidth
  return p;
}

EmulationProfile paper_testbed() {
  return paper_testbed_with_capacity(4 * kGiB);
}

EmulationProfile optane_projection() {
  EmulationProfile p = paper_testbed();
  p.slow = NodeSpec{"OptaneDC", 65.7 * 3.0, 14.9 * 0.35, 32 * kGiB};
  return p;
}

}  // namespace mnemo::hybridmem
