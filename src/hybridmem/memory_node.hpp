#pragma once

#include <cstdint>
#include <string>

#include "hybridmem/access.hpp"

namespace mnemo::hybridmem {

/// Static characteristics of one memory component (one NUMA node in the
/// paper's testbed).
struct NodeSpec {
  std::string name;
  double latency_ns = 0.0;      ///< idle random-access latency
  double bandwidth_gbps = 0.0;  ///< sustained stream bandwidth, GB/s
  std::uint64_t capacity_bytes = 0;

  /// ns to stream `bytes` sequentially at this node's bandwidth.
  [[nodiscard]] double stream_ns(std::uint64_t bytes) const;
};

/// One memory component with capacity accounting. Allocation is
/// object-granular (the emulator tracks whole key-value records); the node
/// only checks capacity and keeps usage statistics.
class MemoryNode {
 public:
  explicit MemoryNode(NodeSpec spec);

  [[nodiscard]] const NodeSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::uint64_t used_bytes() const noexcept { return used_; }
  [[nodiscard]] std::uint64_t free_bytes() const noexcept {
    return spec_.capacity_bytes - used_;
  }
  [[nodiscard]] std::uint64_t object_count() const noexcept { return objects_; }

  /// Reserve `bytes`; returns false (and changes nothing) if it would
  /// exceed capacity.
  [[nodiscard]] bool allocate(std::uint64_t bytes) noexcept;

  /// Release `bytes` previously allocated. Requires bytes <= used_bytes().
  void release(std::uint64_t bytes) noexcept;

  /// Grow an existing object by `bytes` without changing the object count.
  /// Returns false if it would exceed capacity.
  [[nodiscard]] bool grow(std::uint64_t bytes) noexcept;

  /// Shrink an existing object by `bytes` without changing the object count.
  void shrink(std::uint64_t bytes) noexcept;

  /// Price a raw access against this node (no LLC involved):
  /// touches serialized latencies plus an exposed bandwidth stream.
  /// `bandwidth_factor` scales the node's effective stream bandwidth
  /// (degradation episodes inject factors < 1); requires factor > 0.
  [[nodiscard]] double access_ns(const AccessTraits& t, MemOp op,
                                 double bandwidth_factor = 1.0) const;

  /// Lifetime traffic statistics.
  [[nodiscard]] std::uint64_t reads() const noexcept { return reads_; }
  [[nodiscard]] std::uint64_t writes() const noexcept { return writes_; }
  [[nodiscard]] std::uint64_t bytes_streamed() const noexcept {
    return bytes_streamed_;
  }
  void note_traffic(MemOp op, std::uint64_t bytes) noexcept;

 private:
  NodeSpec spec_;
  std::uint64_t used_ = 0;
  std::uint64_t objects_ = 0;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t bytes_streamed_ = 0;
};

}  // namespace mnemo::hybridmem
