#pragma once

#include <cstdint>
#include <string>

#include "hybridmem/access.hpp"
#include "util/assert.hpp"

namespace mnemo::hybridmem {

/// Static characteristics of one memory component (one NUMA node in the
/// paper's testbed).
struct NodeSpec {
  std::string name;
  double latency_ns = 0.0;      ///< idle random-access latency
  double bandwidth_gbps = 0.0;  ///< sustained stream bandwidth, GB/s
  std::uint64_t capacity_bytes = 0;

  /// ns to stream `bytes` sequentially at this node's bandwidth.
  [[nodiscard]] double stream_ns(std::uint64_t bytes) const {
    MNEMO_EXPECTS(bandwidth_gbps > 0.0);
    // GB/s == bytes/ns exactly (1e9 bytes per 1e9 ns).
    return static_cast<double>(bytes) / bandwidth_gbps;
  }
};

/// One memory component with capacity accounting. Allocation is
/// object-granular (the emulator tracks whole key-value records); the node
/// only checks capacity and keeps usage statistics.
class MemoryNode {
 public:
  explicit MemoryNode(NodeSpec spec);

  [[nodiscard]] const NodeSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::uint64_t used_bytes() const noexcept { return used_; }
  [[nodiscard]] std::uint64_t free_bytes() const noexcept {
    return spec_.capacity_bytes - used_;
  }
  [[nodiscard]] std::uint64_t object_count() const noexcept { return objects_; }

  /// Reserve `bytes`; returns false (and changes nothing) if it would
  /// exceed capacity.
  [[nodiscard]] bool allocate(std::uint64_t bytes) noexcept {
    if (bytes > free_bytes()) return false;
    used_ += bytes;
    ++objects_;
    return true;
  }

  /// Release `bytes` previously allocated. Requires bytes <= used_bytes().
  void release(std::uint64_t bytes) noexcept {
    MNEMO_EXPECTS(bytes <= used_);
    MNEMO_EXPECTS(objects_ > 0);
    used_ -= bytes;
    --objects_;
  }

  /// Grow an existing object by `bytes` without changing the object count.
  /// Returns false if it would exceed capacity.
  [[nodiscard]] bool grow(std::uint64_t bytes) noexcept {
    if (bytes > free_bytes()) return false;
    used_ += bytes;
    return true;
  }

  /// Shrink an existing object by `bytes` without changing the object count.
  void shrink(std::uint64_t bytes) noexcept {
    MNEMO_EXPECTS(bytes <= used_);
    used_ -= bytes;
  }

  /// Price a raw access against this node (no LLC involved):
  /// touches serialized latencies plus an exposed bandwidth stream.
  /// `bandwidth_factor` scales the node's effective stream bandwidth
  /// (degradation episodes inject factors < 1); requires factor > 0.
  /// Inline: priced on every LLC miss of the replay hot path.
  [[nodiscard]] double access_ns(const AccessTraits& t, MemOp op,
                                 double bandwidth_factor = 1.0) const {
    MNEMO_EXPECTS(bandwidth_factor > 0.0);
    const double latency =
        spec_.latency_ns * t.latency_touches * t.latency_sensitivity;
    const double exposed = 1.0 - t.bandwidth_overlap;
    double stream = spec_.stream_ns(t.streamed_bytes) * exposed;
    // Healthy platforms always pass factor 1.0: skip the divide (x / 1.0
    // is exactly x, so results are bit-identical either way).
    if (bandwidth_factor != 1.0) stream /= bandwidth_factor;
    double ns = latency + stream;
    if (op == MemOp::kWrite) ns *= t.write_discount;
    return ns;
  }

  /// Lifetime traffic statistics.
  [[nodiscard]] std::uint64_t reads() const noexcept { return reads_; }
  [[nodiscard]] std::uint64_t writes() const noexcept { return writes_; }
  [[nodiscard]] std::uint64_t bytes_streamed() const noexcept {
    return bytes_streamed_;
  }
  void note_traffic(MemOp op, std::uint64_t bytes) noexcept {
    if (op == MemOp::kRead) {
      ++reads_;
    } else {
      ++writes_;
    }
    bytes_streamed_ += bytes;
  }

 private:
  NodeSpec spec_;
  std::uint64_t used_ = 0;
  std::uint64_t objects_ = 0;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t bytes_streamed_ = 0;
};

}  // namespace mnemo::hybridmem
