#include "hybridmem/hybrid_memory.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace mnemo::hybridmem {

HybridMemory::HybridMemory(const EmulationProfile& profile,
                           std::pmr::memory_resource* memory)
    : profile_(profile),
      fast_(profile.fast),
      slow_(profile.slow),
      llc_(profile.llc_bytes, profile.llc_latency_ns,
           profile.llc_bandwidth_gbps, profile.llc_bypass_fraction, memory),
      dense_objects_(memory != nullptr ? memory
                                       : std::pmr::get_default_resource()) {}

std::uint64_t HybridMemory::total_used_bytes() const noexcept {
  return fast_.used_bytes() + slow_.used_bytes();
}

HybridMemory::ObjectInfo* HybridMemory::find_object_slow(
    std::uint64_t object_id) {
  if (object_id < util::kDenseIdCap) return nullptr;  // table not grown yet
  const auto it = overflow_objects_.find(object_id);
  return it == overflow_objects_.end() ? nullptr : &it->second;
}

HybridMemory::ObjectInfo& HybridMemory::insert_object(
    std::uint64_t object_id) {
  ++object_count_;
  if (object_id < util::kDenseIdCap) {
    if (object_id >= dense_objects_.size()) {
      std::size_t grown =
          dense_objects_.empty() ? 64 : dense_objects_.size() * 2;
      while (grown <= object_id) grown *= 2;
      grown = std::min<std::size_t>(
          grown, static_cast<std::size_t>(util::kDenseIdCap));
      dense_objects_.resize(grown);
    }
    ObjectInfo& info = dense_objects_[static_cast<std::size_t>(object_id)];
    info.present = true;
    return info;
  }
  ObjectInfo& info = overflow_objects_[object_id];
  info.present = true;
  return info;
}

void HybridMemory::erase_object(std::uint64_t object_id) {
  --object_count_;
  if (object_id < util::kDenseIdCap) {
    dense_objects_[static_cast<std::size_t>(object_id)] = ObjectInfo{};
    return;
  }
  overflow_objects_.erase(object_id);
}

void HybridMemory::reserve_objects(std::size_t max_objects) {
  const std::size_t dense = std::min<std::size_t>(
      max_objects, static_cast<std::size_t>(util::kDenseIdCap));
  if (dense > dense_objects_.size()) dense_objects_.resize(dense);
  llc_.reserve(max_objects);
}

bool HybridMemory::place(std::uint64_t object_id, std::uint64_t bytes,
                         NodeId node_id) {
  MNEMO_EXPECTS(find_object(object_id) == nullptr);
  if (!node(node_id).allocate(bytes)) return false;
  ObjectInfo& info = insert_object(object_id);
  info.bytes = bytes;
  info.node = node_id;
  return true;
}

void HybridMemory::remove(std::uint64_t object_id) {
  const ObjectInfo* info = find_object(object_id);
  if (info == nullptr) return;
  node(info->node).release(info->bytes);
  llc_.invalidate(object_id);
  erase_object(object_id);
}

bool HybridMemory::migrate(std::uint64_t object_id, NodeId to) {
  ObjectInfo* info = find_object(object_id);
  MNEMO_EXPECTS(info != nullptr);
  if (info->node == to) return true;
  if (!node(to).allocate(info->bytes)) return false;
  node(info->node).release(info->bytes);
  info->node = to;
  return true;
}

std::optional<NodeId> HybridMemory::locate(std::uint64_t object_id) const {
  const ObjectInfo* info = find_object(object_id);
  if (info == nullptr) return std::nullopt;
  return info->node;
}

std::optional<std::uint64_t> HybridMemory::object_size(
    std::uint64_t object_id) const {
  const ObjectInfo* info = find_object(object_id);
  if (info == nullptr) return std::nullopt;
  return info->bytes;
}

void HybridMemory::arm_faults(const faultinject::FaultPlan& plan,
                              std::uint64_t stream) {
  if (plan.empty()) return;
  MNEMO_EXPECTS(injector_ == nullptr);
  injector_ = std::make_unique<faultinject::FaultInjector>(plan, stream);
}

double HybridMemory::raw_access_ns(NodeId node_id, const AccessTraits& traits,
                                   MemOp op) const {
  return node(node_id).access_ns(traits, op);
}

}  // namespace mnemo::hybridmem
