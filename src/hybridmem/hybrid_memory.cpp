#include "hybridmem/hybrid_memory.hpp"

#include "util/assert.hpp"

namespace mnemo::hybridmem {

HybridMemory::HybridMemory(const EmulationProfile& profile)
    : profile_(profile),
      fast_(profile.fast),
      slow_(profile.slow),
      llc_(profile.llc_bytes, profile.llc_latency_ns,
           profile.llc_bandwidth_gbps, profile.llc_bypass_fraction) {}

const MemoryNode& HybridMemory::node(NodeId id) const {
  return id == NodeId::kFast ? fast_ : slow_;
}

MemoryNode& HybridMemory::node(NodeId id) {
  return id == NodeId::kFast ? fast_ : slow_;
}

std::uint64_t HybridMemory::total_used_bytes() const noexcept {
  return fast_.used_bytes() + slow_.used_bytes();
}

bool HybridMemory::place(std::uint64_t object_id, std::uint64_t bytes,
                         NodeId node_id) {
  MNEMO_EXPECTS(!objects_.contains(object_id));
  if (!node(node_id).allocate(bytes)) return false;
  objects_.emplace(object_id, ObjectInfo{bytes, node_id});
  return true;
}

void HybridMemory::remove(std::uint64_t object_id) {
  const auto it = objects_.find(object_id);
  if (it == objects_.end()) return;
  node(it->second.node).release(it->second.bytes);
  llc_.invalidate(object_id);
  objects_.erase(it);
}

bool HybridMemory::migrate(std::uint64_t object_id, NodeId to) {
  const auto it = objects_.find(object_id);
  MNEMO_EXPECTS(it != objects_.end());
  if (it->second.node == to) return true;
  if (!node(to).allocate(it->second.bytes)) return false;
  node(it->second.node).release(it->second.bytes);
  it->second.node = to;
  return true;
}

bool HybridMemory::resize(std::uint64_t object_id, std::uint64_t new_bytes) {
  const auto it = objects_.find(object_id);
  MNEMO_EXPECTS(it != objects_.end());
  ObjectInfo& info = it->second;
  if (new_bytes > info.bytes) {
    if (!node(info.node).grow(new_bytes - info.bytes)) return false;
  } else if (new_bytes < info.bytes) {
    node(info.node).shrink(info.bytes - new_bytes);
  }
  info.bytes = new_bytes;
  llc_.invalidate(object_id);
  return true;
}

std::optional<NodeId> HybridMemory::locate(std::uint64_t object_id) const {
  const auto it = objects_.find(object_id);
  if (it == objects_.end()) return std::nullopt;
  return it->second.node;
}

std::optional<std::uint64_t> HybridMemory::object_size(
    std::uint64_t object_id) const {
  const auto it = objects_.find(object_id);
  if (it == objects_.end()) return std::nullopt;
  return it->second.bytes;
}

AccessResult HybridMemory::access(std::uint64_t object_id, MemOp op,
                                  const AccessTraits& traits) {
  const auto it = objects_.find(object_id);
  MNEMO_EXPECTS(it != objects_.end());
  const ObjectInfo& info = it->second;

  AccessTraits effective = traits;
  if (effective.streamed_bytes == 0) effective.streamed_bytes = info.bytes;

  AccessResult result;
  const bool hit = llc_.access(object_id, info.bytes);
  if (hit) {
    result.llc_hit = true;
    result.ns = llc_.hit_ns(effective.streamed_bytes) *
                effective.latency_touches;
    if (op == MemOp::kWrite) result.ns *= effective.write_discount;
  } else {
    // Faults live on the SlowMem medium and only fire on LLC misses; an
    // unarmed (or paused) injector leaves this path bit-identical to the
    // healthy platform.
    double bw_factor = 1.0;
    double extra_ns = 0.0;
    if (injector_ && !injector_->paused() && info.node == NodeId::kSlow) {
      if (op == MemOp::kRead && injector_->poisoned(object_id)) {
        result.fault = FaultKind::kPoisoned;
        injector_->note_poison_hit();
      } else {
        bw_factor = injector_->next_bandwidth_factor();
        if (op == MemOp::kRead) {
          const auto outcome = injector_->on_slow_read();
          extra_ns = outcome.extra_ns;
          result.fault_retries = outcome.retries;
          if (outcome.faulted) result.fault = FaultKind::kTransient;
          result.failed = outcome.failed;
        }
      }
    }
    result.ns = node(info.node).access_ns(effective, op, bw_factor) + extra_ns;
    // A read whose retries exhausted delivered no data, so it must not
    // leave the line cached — a retry has to face the medium again.
    if (result.failed) llc_.invalidate(object_id);
  }
  node(info.node).note_traffic(op, effective.streamed_bytes);
  return result;
}

void HybridMemory::arm_faults(const faultinject::FaultPlan& plan,
                              std::uint64_t stream) {
  if (plan.empty()) return;
  MNEMO_EXPECTS(injector_ == nullptr);
  injector_ = std::make_unique<faultinject::FaultInjector>(plan, stream);
}

double HybridMemory::raw_access_ns(NodeId node_id, const AccessTraits& traits,
                                   MemOp op) const {
  return node(node_id).access_ns(traits, op);
}

}  // namespace mnemo::hybridmem
