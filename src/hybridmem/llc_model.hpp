#pragma once

#include <cstdint>
#include <memory_resource>

#include "util/flat_lru.hpp"

namespace mnemo::hybridmem {

/// Last-level-cache model: an LRU over whole resident objects with a byte
/// budget (the testbed's 12 MB shared LLC). Object-granular rather than
/// line-granular — for Mnemo's record sizes (1 KB–100 KB) a record is
/// either streamed through the cache and reused soon (hit) or evicted by
/// the ~1 GB working set before reuse (miss), which whole-object LRU
/// captures at a fraction of the bookkeeping cost of per-line tags.
///
/// Objects larger than `bypass_fraction` of capacity never cache (streaming
/// accesses would self-evict anyway).
///
/// The recency structure is an array-backed intrusive LRU over dense object
/// IDs (util::FlatLru, DESIGN.md §8): membership is a vector index, a touch
/// rewrites four slot indices, and a miss-install reuses a pooled slot —
/// no per-insertion heap allocation on the replay hot path. reserve()
/// pre-sizes both tables so steady-state replay allocates nothing.
class LlcModel {
 public:
  /// Slot-pool sizing floor: no cacheable object is smaller than a cache
  /// line, so capacity / kMinEntryBytes bounds how many entries can ever
  /// be resident at once.
  static constexpr std::uint64_t kMinEntryBytes = 64;

  /// `memory` (optional) backs the recency tables — a campaign cell's
  /// arena when one is plumbed through, the default heap otherwise.
  LlcModel(std::uint64_t capacity_bytes, double hit_latency_ns,
           double hit_bandwidth_gbps, double bypass_fraction = 0.25,
           std::pmr::memory_resource* memory = nullptr);

  /// Record an access to object `id` of `bytes` size. Returns true on hit.
  /// On miss the object is installed (evicting LRU victims) unless it
  /// bypasses. A hit whose object grew in place (record update) re-runs
  /// eviction after the size update, so `used_` never exceeds capacity;
  /// if the grown object alone no longer fits, it is dropped from the
  /// cache (the hit still counts — the data was served before the growth).
  /// Inline (hot path); the eviction loops stay out of line.
  bool access(std::uint64_t id, std::uint64_t bytes) {
    if (std::uint64_t* cached = lru_.touch(id)) {
      // Size may have changed (record update); keep accounting honest.
      used_ -= *cached;
      used_ += bytes;
      *cached = bytes;
      ++hits_;
      // A grow-in-place can push used_ past capacity: make room now rather
      // than leaving the budget silently overcommitted.
      if (used_ > capacity_) evict_grown(id);
      return true;
    }
    ++misses_;
    if (bytes > bypass_threshold_) return false;
    if (used_ + bytes > capacity_) evict_to(bytes);
    lru_.push_front(id, bytes);
    used_ += bytes;
    return false;
  }

  /// Batch entry point for the lane-fused replay: hint the set-index load
  /// an upcoming access(id, ...) will perform. Advisory only (no recency
  /// or statistics effect), so bit-identity across replay modes holds.
  void prefetch(std::uint64_t id) const noexcept { lru_.prefetch(id); }

  /// Drop an object (e.g. deleted or resized record). Inline: every record
  /// update resizes its object, which lands here (DESIGN.md §8).
  void invalidate(std::uint64_t id) {
    const std::uint64_t* bytes = lru_.find(id);
    if (bytes == nullptr) return;
    used_ -= *bytes;
    (void)lru_.erase(id);
  }

  /// Forget everything and restart the hit statistics (a measurement
  /// boundary, e.g. between the load phase and the measured run).
  void clear();

  /// Pre-size the ID index for objects [0, max_objects) and the entry pool
  /// for as many of them as could ever be resident, so replay performs no
  /// steady-state allocations.
  void reserve(std::size_t max_objects);

  /// ns to serve `bytes` from the LLC on a hit.
  [[nodiscard]] double hit_ns(std::uint64_t bytes) const {
    return hit_latency_ns_ + static_cast<double>(bytes) / hit_bandwidth_gbps_;
  }

  [[nodiscard]] std::uint64_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t used() const noexcept { return used_; }
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  /// Entries dropped to make room (capacity pressure only; invalidate()
  /// and clear() do not count).
  [[nodiscard]] std::uint64_t evictions() const noexcept {
    return evictions_;
  }
  [[nodiscard]] double hit_rate() const noexcept;

  /// Whether `id` is currently cached (test/observability hook).
  [[nodiscard]] bool resident(std::uint64_t id) const {
    return lru_.find(id) != nullptr;
  }

 private:
  void evict_to(std::uint64_t need);
  void evict_grown(std::uint64_t grown_id);

  std::uint64_t capacity_;
  double hit_latency_ns_;
  double hit_bandwidth_gbps_;
  std::uint64_t bypass_threshold_;
  std::uint64_t used_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  util::FlatLru<std::uint64_t> lru_;  ///< payload = resident bytes
};

}  // namespace mnemo::hybridmem
