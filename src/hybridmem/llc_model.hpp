#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

namespace mnemo::hybridmem {

/// Last-level-cache model: an LRU over whole resident objects with a byte
/// budget (the testbed's 12 MB shared LLC). Object-granular rather than
/// line-granular — for Mnemo's record sizes (1 KB–100 KB) a record is
/// either streamed through the cache and reused soon (hit) or evicted by
/// the ~1 GB working set before reuse (miss), which whole-object LRU
/// captures at a fraction of the bookkeeping cost of per-line tags.
///
/// Objects larger than `bypass_fraction` of capacity never cache (streaming
/// accesses would self-evict anyway).
class LlcModel {
 public:
  LlcModel(std::uint64_t capacity_bytes, double hit_latency_ns,
           double hit_bandwidth_gbps, double bypass_fraction = 0.25);

  /// Record an access to object `id` of `bytes` size. Returns true on hit.
  /// On miss the object is installed (evicting LRU victims) unless it
  /// bypasses.
  bool access(std::uint64_t id, std::uint64_t bytes);

  /// Drop an object (e.g. deleted or resized record).
  void invalidate(std::uint64_t id);

  /// Forget everything and restart the hit statistics (a measurement
  /// boundary, e.g. between the load phase and the measured run).
  void clear();

  /// ns to serve `bytes` from the LLC on a hit.
  [[nodiscard]] double hit_ns(std::uint64_t bytes) const;

  [[nodiscard]] std::uint64_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t used() const noexcept { return used_; }
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] double hit_rate() const noexcept;

 private:
  struct Entry {
    std::uint64_t id;
    std::uint64_t bytes;
  };

  void evict_to(std::uint64_t need);

  std::uint64_t capacity_;
  double hit_latency_ns_;
  double hit_bandwidth_gbps_;
  std::uint64_t bypass_threshold_;
  std::uint64_t used_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
};

}  // namespace mnemo::hybridmem
