#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hybridmem/access.hpp"
#include "util/assert.hpp"

namespace mnemo::hybridmem {

/// Static key → node assignment, produced by Mnemo's Placement Engine and
/// consumed by the dual-server router. Keys are dense integer IDs
/// [0, key_count).
class Placement {
 public:
  /// Everything on one node.
  Placement(std::size_t key_count, NodeId everywhere);

  /// First `fast_prefix` entries of `ordered_keys` go to FastMem, the rest
  /// to SlowMem (the paper's "key tiering": a cut point in an ordered key
  /// list). `ordered_keys` must be a permutation of [0, key_count).
  static Placement from_order(std::span<const std::uint64_t> ordered_keys,
                              std::size_t fast_prefix);

  /// Cut an ordered key list by a FastMem byte budget: keys are assigned
  /// to FastMem in order until their cumulative size exceeds the budget.
  static Placement from_order_with_budget(
      std::span<const std::uint64_t> ordered_keys,
      std::span<const std::uint64_t> key_sizes, std::uint64_t fast_budget);

  // Inline: the dual-server router calls this once per replayed request.
  [[nodiscard]] NodeId node_of(std::uint64_t key) const {
    MNEMO_EXPECTS(key < nodes_.size());
    return nodes_[key];
  }
  void set(std::uint64_t key, NodeId node);

  [[nodiscard]] std::size_t key_count() const noexcept {
    return nodes_.size();
  }

  /// Two placements are equal when every key lives on the same node. Used
  /// by the lane-fused replay (core::LaneBand) to recognize repeat-sibling
  /// lanes: cells that share a placement and differ only in repeat.
  friend bool operator==(const Placement&, const Placement&) = default;
  [[nodiscard]] std::size_t fast_keys() const noexcept { return fast_keys_; }
  [[nodiscard]] std::size_t slow_keys() const noexcept {
    return nodes_.size() - fast_keys_;
  }

  /// Bytes each node must hold under this placement for the given sizes.
  [[nodiscard]] std::uint64_t bytes_on(
      NodeId node, std::span<const std::uint64_t> key_sizes) const;

 private:
  std::vector<NodeId> nodes_;
  std::size_t fast_keys_ = 0;
};

}  // namespace mnemo::hybridmem
