#include "pricing/cost_regression.hpp"

#include <algorithm>

#include "stats/regression.hpp"
#include "util/assert.hpp"

namespace mnemo::pricing {

namespace {

double fit_single(const VmCatalog& catalog, bool use_memory) {
  // Least squares of price against one regressor through the origin:
  // beta = sum(x*y) / sum(x*x).
  double xy = 0.0;
  double xx = 0.0;
  for (const VmInstance& vm : catalog.instances) {
    const double x = use_memory ? vm.memory_gb : vm.vcpus;
    xy += x * vm.hourly_usd;
    xx += x * x;
  }
  MNEMO_EXPECTS(xx > 0.0);
  return xy / xx;
}

double fit_r_squared(const VmCatalog& catalog, const CostDecomposition& d) {
  std::vector<double> y;
  std::vector<double> yhat;
  for (const VmInstance& vm : catalog.instances) {
    y.push_back(vm.hourly_usd);
    yhat.push_back(vm.vcpus * d.vcpu_hourly_usd +
                   vm.memory_gb * d.gb_hourly_usd);
  }
  return stats::r_squared(y, yhat);
}

}  // namespace

CostDecomposition decompose(const VmCatalog& catalog) {
  MNEMO_EXPECTS(catalog.instances.size() >= 2);
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  rows.reserve(catalog.instances.size());
  for (const VmInstance& vm : catalog.instances) {
    rows.push_back({vm.vcpus, vm.memory_gb});
    y.push_back(vm.hourly_usd);
  }
  const auto beta = stats::least_squares(rows, y);

  CostDecomposition d;
  d.vcpu_hourly_usd = beta[0];
  d.gb_hourly_usd = beta[1];
  if (d.vcpu_hourly_usd < 0.0) {
    d.vcpu_hourly_usd = 0.0;
    d.gb_hourly_usd = fit_single(catalog, /*use_memory=*/true);
    d.clamped_nonnegative = true;
  } else if (d.gb_hourly_usd < 0.0) {
    d.gb_hourly_usd = 0.0;
    d.vcpu_hourly_usd = fit_single(catalog, /*use_memory=*/false);
    d.clamped_nonnegative = true;
  }
  d.r_squared = fit_r_squared(catalog, d);
  return d;
}

double memory_fraction(const VmInstance& vm, const CostDecomposition& d) {
  MNEMO_EXPECTS(vm.hourly_usd > 0.0);
  const double mem = vm.memory_gb * d.gb_hourly_usd;
  return std::clamp(mem / vm.hourly_usd, 0.0, 1.0);
}

std::vector<MemoryShare> figure1_shares(
    const std::vector<VmCatalog>& catalogs) {
  std::vector<MemoryShare> shares;
  for (const VmCatalog& catalog : catalogs) {
    const CostDecomposition d = decompose(catalog);
    for (const VmInstance& vm : catalog.instances) {
      if (!vm.memory_optimized) continue;
      shares.push_back(
          MemoryShare{catalog.provider, vm.name, memory_fraction(vm, d)});
    }
  }
  return shares;
}

}  // namespace mnemo::pricing
