#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mnemo::pricing {

/// One cloud VM instance offering: shape and on-demand hourly price.
struct VmInstance {
  std::string name;
  double vcpus = 0.0;
  double memory_gb = 0.0;
  double hourly_usd = 0.0;
  bool memory_optimized = false;  ///< include in the Fig 1 report
};

/// A provider's instance family used for one regression (one bar group of
/// Fig 1).
struct VmCatalog {
  std::string provider;
  std::string family;
  std::vector<VmInstance> instances;
};

/// The Nov-2018 price sheets the paper regresses over (Section I):
/// AWS ElastiCache cache.r5, Google Compute Engine n1-ultramem/megamem,
/// Azure E-series and M-series memory-optimized VMs. Values are the
/// public on-demand us-east/us-central list prices of that era.
std::vector<VmCatalog> paper_catalogs();

}  // namespace mnemo::pricing
