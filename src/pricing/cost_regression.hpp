#pragma once

#include <vector>

#include "pricing/vm_instance.hpp"

namespace mnemo::pricing {

/// Result of decomposing a provider's VM prices into per-resource rates
/// via the paper's model  VMcost = vCPU * C + GB * M  (Amur et al.
/// least-squares methodology).
struct CostDecomposition {
  double vcpu_hourly_usd = 0.0;    ///< C
  double gb_hourly_usd = 0.0;      ///< M
  double r_squared = 0.0;          ///< fit quality over the catalog
  bool clamped_nonnegative = false;  ///< a negative rate was re-fit to 0
};

/// Fit C and M for a catalog. Rates are physical quantities, so a plain
/// least-squares solution with a negative coefficient is re-fit with that
/// coefficient pinned to zero (2-variable non-negative least squares).
CostDecomposition decompose(const VmCatalog& catalog);

/// Fraction of one instance's price attributable to memory under a
/// decomposition, clamped to [0, 1].
double memory_fraction(const VmInstance& vm, const CostDecomposition& d);

/// One bar of Fig 1.
struct MemoryShare {
  std::string provider;
  std::string instance;
  double fraction = 0.0;
};

/// Memory-cost share of every memory-optimized instance across the
/// catalogs — the data behind Fig 1 (expected: roughly 60-85%).
std::vector<MemoryShare> figure1_shares(
    const std::vector<VmCatalog>& catalogs);

}  // namespace mnemo::pricing
