#include "pricing/vm_instance.hpp"

namespace mnemo::pricing {

std::vector<VmCatalog> paper_catalogs() {
  std::vector<VmCatalog> catalogs;

  // AWS ElastiCache cache.r5 (us-east-1, Nov 2018). The family is close
  // to proportional in vCPU:GiB, so the m5 cache nodes are included to
  // condition the regression, as Amur et al. do by using all instances of
  // a provider; the memory-optimized flags select what Fig 1 reports.
  catalogs.push_back(VmCatalog{
      "AWS",
      "ElastiCache r5/m5",
      {
          {"cache.m5.large", 2, 6.38, 0.156, false},
          {"cache.m5.xlarge", 4, 12.93, 0.311, false},
          {"cache.m5.2xlarge", 8, 26.04, 0.622, false},
          {"cache.m5.4xlarge", 16, 52.26, 1.244, false},
          {"cache.m5.12xlarge", 48, 157.12, 3.732, false},
          {"cache.m5.24xlarge", 96, 314.32, 7.464, false},
          {"cache.r5.large", 2, 13.07, 0.216, true},
          {"cache.r5.xlarge", 4, 26.32, 0.431, true},
          {"cache.r5.2xlarge", 8, 52.82, 0.862, true},
          {"cache.r5.4xlarge", 16, 105.81, 1.725, true},
          {"cache.r5.12xlarge", 48, 317.77, 5.175, true},
          {"cache.r5.24xlarge", 96, 635.61, 10.349, true},
      }});

  // Google Compute Engine memory-optimized (us-central1, Nov 2018).
  catalogs.push_back(VmCatalog{
      "Google",
      "n1-ultramem/megamem",
      {
          {"n1-megamem-96", 96, 1433.6, 10.674, true},
          {"n1-ultramem-40", 40, 961, 6.3039, true},
          {"n1-ultramem-80", 80, 1922, 12.6078, true},
          {"n1-ultramem-160", 160, 3844, 25.2156, true},
      }});

  // Microsoft Azure memory-optimized E (Ev3) and extreme-memory M series
  // (East US Linux, Nov 2018).
  catalogs.push_back(VmCatalog{
      "Azure",
      "E-series / M-series",
      {
          {"E2 v3", 2, 16, 0.126, true},
          {"E4 v3", 4, 32, 0.252, true},
          {"E8 v3", 8, 64, 0.504, true},
          {"E16 v3", 16, 128, 1.008, true},
          {"E32 v3", 32, 256, 2.016, true},
          {"E64 v3", 64, 432, 3.629, true},
          {"M64s", 64, 1024, 6.669, true},
          {"M64ms", 64, 1792, 10.337, true},
          {"M128s", 128, 2048, 13.338, true},
          {"M128ms", 128, 3892, 26.688, true},
      }});

  return catalogs;
}

}  // namespace mnemo::pricing
