#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace mnemo::workload {

/// Deterministic per-key record-size assignment. A key's size never changes
/// across runs (it is derived from the key ID and the model seed), which is
/// what lets Mnemo reason about capacity at key granularity.
class RecordSizeModel {
 public:
  virtual ~RecordSizeModel() = default;

  /// Size in bytes of the value stored under `key`.
  [[nodiscard]] virtual std::uint64_t size_of(std::uint64_t key) const = 0;

  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual std::unique_ptr<RecordSizeModel> clone() const = 0;
};

/// All records the same size.
class FixedSizeModel final : public RecordSizeModel {
 public:
  explicit FixedSizeModel(std::uint64_t bytes);
  [[nodiscard]] std::uint64_t size_of(std::uint64_t key) const override;
  [[nodiscard]] std::string_view name() const override { return "fixed"; }
  [[nodiscard]] std::unique_ptr<RecordSizeModel> clone() const override;

 private:
  std::uint64_t bytes_;
};

/// Log-normal spread around a median — the shape of real content-size
/// distributions (sizes cluster near a typical value with a heavy right
/// tail). Clamped to [min_bytes, max_bytes].
class LognormalSizeModel final : public RecordSizeModel {
 public:
  LognormalSizeModel(std::uint64_t median_bytes, double sigma,
                     std::uint64_t min_bytes, std::uint64_t max_bytes,
                     std::uint64_t seed = 0xface);
  [[nodiscard]] std::uint64_t size_of(std::uint64_t key) const override;
  [[nodiscard]] std::string_view name() const override { return "lognormal"; }
  [[nodiscard]] std::unique_ptr<RecordSizeModel> clone() const override;

  [[nodiscard]] std::uint64_t median_bytes() const { return median_; }

 private:
  std::uint64_t median_;
  double sigma_;
  std::uint64_t min_;
  std::uint64_t max_;
  std::uint64_t seed_;
};

/// A weighted mixture of size models: key k is deterministically assigned
/// to one component. Implements the Trending Preview workload's
/// thumbnail + text post + photo caption blend.
class MixtureSizeModel final : public RecordSizeModel {
 public:
  struct Component {
    double weight;
    std::shared_ptr<const RecordSizeModel> model;
  };

  MixtureSizeModel(std::string name, std::vector<Component> components,
                   std::uint64_t seed = 0x5eed);
  [[nodiscard]] std::uint64_t size_of(std::uint64_t key) const override;
  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] std::unique_ptr<RecordSizeModel> clone() const override;

 private:
  std::string name_;
  std::vector<Component> components_;
  std::uint64_t seed_;
};

/// The paper's record-size types (Table III / Fig 4), inferred from public
/// "social media cheat sheets": thumbnails ≈ 100 KB, text posts ≈ 10 KB,
/// photo captions ≈ 1 KB.
enum class RecordSizeType {
  kThumbnail,     ///< ≈ 100 KB news/profile photo thumbnail
  kTextPost,      ///< ≈ 10 KB text post / article summary
  kPhotoCaption,  ///< ≈ 1 KB short caption
  kPreviewMix,    ///< Trending Preview: thumbnail + caption + summary blend
};

std::string_view to_string(RecordSizeType type);
std::uint64_t nominal_bytes(RecordSizeType type);

std::unique_ptr<RecordSizeModel> make_size_model(RecordSizeType type,
                                                 std::uint64_t seed = 0xface);

/// One row of the "social media cheat sheet" behind Fig 4.
struct SocialMediaEntry {
  std::string platform;
  std::string content;
  std::uint64_t typical_bytes;
};

/// The dataset plotted in Fig 4 (CDF of common data sizes across
/// platforms). Values follow the 2018 cheat sheets the paper cites:
/// character limits for text content (1 byte/char) and typical encoded
/// sizes for image thumbnails.
const std::vector<SocialMediaEntry>& social_media_size_table();

}  // namespace mnemo::workload
