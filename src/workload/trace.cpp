#include "workload/trace.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "util/assert.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace mnemo::workload {

namespace {

/// stoull with file:line provenance — every malformed numeric field in a
/// trace CSV must name the exact line it sits on.
std::uint64_t parse_u64_field(const std::string& path, std::size_t line,
                              const std::string& value, const char* what) {
  try {
    std::size_t used = 0;
    const std::uint64_t v = std::stoull(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw util::ParseError(
        path, line, std::string(what) + ": not an integer: " + value);
  }
}

}  // namespace

std::string_view to_string(OpType op) {
  switch (op) {
    case OpType::kRead:
      return "read";
    case OpType::kUpdate:
      return "update";
    case OpType::kInsert:
      return "insert";
  }
  return "?";
}

Trace::Trace(std::string name, std::uint64_t key_count,
             std::vector<Request> requests,
             std::vector<std::uint64_t> key_sizes,
             std::uint64_t initial_key_count)
    : name_(std::move(name)),
      key_count_(key_count),
      initial_key_count_(
          initial_key_count == ~0ULL ? key_count : initial_key_count),
      requests_(std::move(requests)),
      key_sizes_(std::move(key_sizes)) {
  MNEMO_EXPECTS(key_sizes_.size() == key_count_);
  MNEMO_EXPECTS(initial_key_count_ <= key_count_);
  // Inserted keys appear exactly once as kInsert, in ID order, before any
  // other access to them.
  std::uint64_t next_insert = initial_key_count_;
  for (const Request& r : requests_) {
    MNEMO_EXPECTS(r.key < key_count_);
    if (r.op == OpType::kInsert) {
      MNEMO_EXPECTS(r.key == next_insert);
      ++next_insert;
    } else {
      MNEMO_EXPECTS(r.key < next_insert || r.key < initial_key_count_);
    }
  }
  MNEMO_EXPECTS(next_insert == key_count_);
}

Trace Trace::generate(const WorkloadSpec& spec) {
  spec.check();
  util::Rng rng(spec.seed);
  const auto sizes_model = spec.make_record_sizes();

  // Inserts extend the key space beyond the preloaded keys; the exact
  // count is drawn up front so the final keyspace (and the distribution's
  // support) is known.
  std::uint64_t inserts = 0;
  std::vector<bool> is_insert(spec.request_count, false);
  if (spec.insert_fraction > 0.0) {
    for (std::uint64_t i = 0; i < spec.request_count; ++i) {
      if (rng.next_double() < spec.insert_fraction) {
        is_insert[i] = true;
        ++inserts;
      }
    }
  }
  const std::uint64_t total_keys = spec.key_count + inserts;
  auto dist = make_distribution(spec.distribution, total_keys,
                                spec.dist_params);

  std::vector<std::uint64_t> sizes(total_keys);
  for (std::uint64_t k = 0; k < total_keys; ++k) {
    sizes[k] = sizes_model->size_of(k);
  }

  std::vector<Request> reqs;
  reqs.reserve(spec.request_count);
  std::uint64_t current_keys = spec.key_count;
  for (std::uint64_t i = 0; i < spec.request_count; ++i) {
    if (is_insert[i]) {
      reqs.push_back(
          Request{static_cast<std::uint32_t>(current_keys), OpType::kInsert});
      ++current_keys;
      continue;
    }
    // Draw over the final keyspace, folded onto the keys existing now —
    // YCSB's approach to sampling a growing dataset. For kLatest the
    // fold keeps recency intact (high draws stay near current_keys - 1).
    std::uint64_t key = dist->next(rng);
    if (key >= current_keys) {
      key = spec.distribution == DistributionKind::kLatest
                ? current_keys - 1 - (total_keys - 1 - key) % current_keys
                : key % current_keys;
    }
    const OpType op = rng.next_double() < spec.read_fraction
                          ? OpType::kRead
                          : OpType::kUpdate;
    reqs.push_back(Request{static_cast<std::uint32_t>(key), op});
  }
  return Trace(spec.name, total_keys, std::move(reqs), std::move(sizes),
               spec.key_count);
}

std::uint64_t Trace::size_of(std::uint64_t key) const {
  MNEMO_EXPECTS(key < key_count_);
  return key_sizes_[key];
}

std::uint64_t Trace::dataset_bytes() const {
  std::uint64_t sum = 0;
  for (const auto s : key_sizes_) sum += s;
  return sum;
}

std::vector<std::uint64_t> Trace::access_counts() const {
  std::vector<std::uint64_t> counts(key_count_, 0);
  for (const Request& r : requests_) ++counts[r.key];
  return counts;
}

std::vector<std::uint64_t> Trace::read_counts() const {
  std::vector<std::uint64_t> counts(key_count_, 0);
  for (const Request& r : requests_) {
    if (r.op == OpType::kRead) ++counts[r.key];
  }
  return counts;
}

std::vector<std::uint64_t> Trace::write_counts() const {
  std::vector<std::uint64_t> counts(key_count_, 0);
  for (const Request& r : requests_) {
    // Updates and inserts both write the record.
    if (r.op != OpType::kRead) ++counts[r.key];
  }
  return counts;
}

std::uint64_t Trace::total_reads() const {
  std::uint64_t n = 0;
  for (const Request& r : requests_) n += r.op == OpType::kRead ? 1 : 0;
  return n;
}

std::uint64_t Trace::total_writes() const {
  return requests_.size() - total_reads();
}

double Trace::hot_share(double fraction) const {
  MNEMO_EXPECTS(fraction > 0.0 && fraction <= 1.0);
  auto counts = access_counts();
  std::sort(counts.begin(), counts.end(), std::greater<>());
  const auto take = std::max<std::size_t>(
      1, static_cast<std::size_t>(fraction * static_cast<double>(counts.size())));
  std::uint64_t hot = 0;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    total += counts[i];
    if (i < take) hot += counts[i];
  }
  MNEMO_EXPECTS(total > 0);
  return static_cast<double>(hot) / static_cast<double>(total);
}

void Trace::save_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Trace::save_csv: cannot open " + path);
  util::csv::Writer w(out);
  w.row({"trace", name_});
  w.row({"key_count", std::to_string(key_count_),
         std::to_string(initial_key_count_)});
  w.field("sizes");
  for (const auto s : key_sizes_) w.field(static_cast<std::uint64_t>(s));
  w.end_row();
  for (const Request& r : requests_) {
    w.field(static_cast<std::uint64_t>(r.key)).field(to_string(r.op));
    w.end_row();
  }
}

Trace Trace::load_csv(const std::string& path) {
  const auto rows = util::csv::read_file_numbered(path);
  if (rows.size() < 3 || rows[0].fields.size() != 2 ||
      rows[0].fields[0] != "trace") {
    throw util::ParseError(path, rows.empty() ? 1 : rows[0].line,
                           "malformed trace header (want `trace,<name>`)");
  }
  const std::string name = rows[0].fields[1];
  if (rows[1].fields.size() < 2 || rows[1].fields[0] != "key_count") {
    throw util::ParseError(path, rows[1].line,
                           "malformed key_count row "
                           "(want `key_count,<n>[,<initial>]`)");
  }
  const std::uint64_t key_count =
      parse_u64_field(path, rows[1].line, rows[1].fields[1], "key_count");
  const std::uint64_t initial_keys =
      rows[1].fields.size() > 2
          ? parse_u64_field(path, rows[1].line, rows[1].fields[2],
                            "initial key count")
          : key_count;
  if (initial_keys > key_count) {
    throw util::ParseError(path, rows[1].line,
                           "initial key count exceeds key_count");
  }
  std::vector<std::uint64_t> sizes;
  sizes.reserve(key_count);
  for (std::size_t i = 1; i < rows[2].fields.size(); ++i) {
    sizes.push_back(
        parse_u64_field(path, rows[2].line, rows[2].fields[i], "size"));
  }
  if (sizes.size() != key_count) {
    throw util::ParseError(path, rows[2].line,
                           "size row has " + std::to_string(sizes.size()) +
                               " entries, want " + std::to_string(key_count));
  }
  // Validate what the Trace constructor would otherwise abort on: these
  // are user-input errors, not programming errors, so they must surface
  // as diagnostics with the offending line.
  std::vector<Request> reqs;
  reqs.reserve(rows.size() - 3);
  std::uint64_t next_insert = initial_keys;
  for (std::size_t i = 3; i < rows.size(); ++i) {
    const std::size_t line = rows[i].line;
    const std::vector<std::string>& f = rows[i].fields;
    if (f.size() != 2) {
      throw util::ParseError(path, line,
                             "malformed request row (want `<key>,<op>`)");
    }
    const std::uint64_t key = parse_u64_field(path, line, f[0], "key");
    if (key >= key_count) {
      throw util::ParseError(path, line,
                             "key " + std::to_string(key) +
                                 " out of range (key_count " +
                                 std::to_string(key_count) + ")");
    }
    OpType op;
    if (f[1] == "read") {
      op = OpType::kRead;
    } else if (f[1] == "update") {
      op = OpType::kUpdate;
    } else if (f[1] == "insert") {
      op = OpType::kInsert;
    } else {
      throw util::ParseError(
          path, line, "unknown op '" + f[1] + "' (want read|update|insert)");
    }
    if (op == OpType::kInsert) {
      if (key != next_insert) {
        throw util::ParseError(path, line,
                               "insert out of order: key " +
                                   std::to_string(key) + ", expected " +
                                   std::to_string(next_insert));
      }
      ++next_insert;
    } else if (key >= next_insert) {
      throw util::ParseError(path, line,
                             "key " + std::to_string(key) +
                                 " accessed before its insert");
    }
    reqs.push_back(Request{static_cast<std::uint32_t>(key), op});
  }
  if (next_insert != key_count) {
    throw util::ParseError(path, rows.back().line,
                           "trace ends with " + std::to_string(next_insert) +
                               " of " + std::to_string(key_count) +
                               " keys inserted");
  }
  return Trace(name, key_count, std::move(reqs), std::move(sizes),
               initial_keys);
}

}  // namespace mnemo::workload
