#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workload/workload_spec.hpp"

namespace mnemo::workload {

/// Operation type of one client request. Table III workloads use reads and
/// updates; kInsert (YCSB workload-D style) creates a brand-new key and
/// grows the dataset during the run.
enum class OpType : std::uint8_t { kRead = 0, kUpdate = 1, kInsert = 2 };

std::string_view to_string(OpType op);

/// One client request.
struct Request {
  std::uint32_t key;
  OpType op;
};

/// A materialized workload: the exact key/request-type sequence plus the
/// per-key record sizes. This is precisely the "workload descriptor" Mnemo
/// takes as input (Section IV): key access distribution and request type
/// sequence for a given dataset.
class Trace {
 public:
  Trace() = default;
  /// `initial_key_count` (default: all keys) is how many keys exist
  /// before the run; keys [initial_key_count, key_count) are created by
  /// kInsert requests, each exactly once and in ID order.
  Trace(std::string name, std::uint64_t key_count,
        std::vector<Request> requests, std::vector<std::uint64_t> key_sizes,
        std::uint64_t initial_key_count = ~0ULL);

  /// Generate from a declarative spec with the spec's seed.
  static Trace generate(const WorkloadSpec& spec);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::uint64_t key_count() const noexcept { return key_count_; }
  /// Keys present before the first request (== key_count() for the
  /// insert-free Table III workloads).
  [[nodiscard]] std::uint64_t initial_key_count() const noexcept {
    return initial_key_count_;
  }
  [[nodiscard]] std::uint64_t total_inserts() const {
    return key_count_ - initial_key_count_;
  }
  [[nodiscard]] const std::vector<Request>& requests() const noexcept {
    return requests_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& key_sizes() const noexcept {
    return key_sizes_;
  }
  [[nodiscard]] std::uint64_t size_of(std::uint64_t key) const;

  /// Total dataset size (sum of all record sizes) — Mnemo's fixed total
  /// capacity C.
  [[nodiscard]] std::uint64_t dataset_bytes() const;

  /// Per-key request counts (reads + writes), indexed by key ID.
  [[nodiscard]] std::vector<std::uint64_t> access_counts() const;
  [[nodiscard]] std::vector<std::uint64_t> read_counts() const;
  [[nodiscard]] std::vector<std::uint64_t> write_counts() const;

  [[nodiscard]] std::uint64_t total_reads() const;
  [[nodiscard]] std::uint64_t total_writes() const;

  /// Fraction of requests landing on the hottest `fraction` of keys
  /// (by access count). A skew metric used in reports.
  [[nodiscard]] double hot_share(double fraction) const;

  /// Persist as CSV (`key,op` rows after a `# sizes` preamble) and back.
  void save_csv(const std::string& path) const;
  static Trace load_csv(const std::string& path);

 private:
  std::string name_;
  std::uint64_t key_count_ = 0;
  std::uint64_t initial_key_count_ = 0;
  std::vector<Request> requests_;
  std::vector<std::uint64_t> key_sizes_;
};

}  // namespace mnemo::workload
