#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "workload/key_distribution.hpp"
#include "workload/record_size.hpp"

namespace mnemo::workload {

/// Declarative description of one YCSB-style workload: the key request
/// distribution, the read:write operation ratio, the record-size type and
/// the workload scale. One row of the paper's Table III.
struct WorkloadSpec {
  std::string name;
  std::string use_case;  ///< the "Use Case" column of Table III
  DistributionKind distribution = DistributionKind::kUniform;
  DistributionParams dist_params{};
  double read_fraction = 1.0;  ///< 1.0 = readonly, 0.5 = updateheavy
  /// Fraction of requests that insert brand-new keys (YCSB workload-D
  /// style, e.g. 0.05 for 95:5 read:insert). Inserted keys extend the
  /// key space beyond `key_count` initial keys; non-insert requests are
  /// split read/update by `read_fraction`. 0 = fixed keyspace.
  double insert_fraction = 0.0;
  RecordSizeType record_size = RecordSizeType::kThumbnail;
  std::uint64_t key_count = 10'000;      ///< Table III: 10,000 keys
  std::uint64_t request_count = 100'000;  ///< Table III: 100,000 requests
  std::uint64_t seed = 0x6d6e656dULL;

  [[nodiscard]] std::unique_ptr<KeyDistribution> make_key_distribution()
      const {
    return make_distribution(distribution, key_count, dist_params);
  }
  [[nodiscard]] std::unique_ptr<RecordSizeModel> make_record_sizes() const {
    return make_size_model(record_size, seed ^ 0x517e);
  }

  /// "100:0 readonly" / "50:50 updateheavy" style label.
  [[nodiscard]] std::string ratio_label() const;

  /// Validate ranges; aborts (contract violation) on nonsense specs.
  void check() const;
};

}  // namespace mnemo::workload
