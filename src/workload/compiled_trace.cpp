#include "workload/compiled_trace.hpp"

#include "util/rng.hpp"
#include "util/simd.hpp"

namespace mnemo::workload {

CompiledTrace::CompiledTrace(const Trace& trace) : trace_(&trace) {
  const std::vector<Request>& requests = trace.requests();
  ops_.reserve(requests.size());
  keys_.reserve(requests.size());
  std::size_t reads = 0;
  for (const Request& req : requests) {
    ops_.push_back(req.op);
    keys_.push_back(req.key);
    if (req.op == OpType::kRead) ++reads;
  }

  key_sizes_ = std::span<const std::uint64_t>(trace.key_sizes());
  const std::size_t num_keys = key_sizes_.size();
  // Batch the hash/digest table build (util::simd): key_hashes_ is
  // mix64 over the key iota, key_digests_ is mix64 over key ^ size·φ —
  // the exact scalar avalanche, four keys per vector.
  key_hashes_.resize(num_keys);
  util::simd::mix64_iota_batch(0, key_hashes_.data(), num_keys);
  key_digests_.resize(num_keys);
  for (std::size_t key = 0; key < num_keys; ++key) {
    const std::uint64_t size = key_sizes_[key];
    key_digests_[key] = key ^ (size * 0x9e3779b97f4a7c15ULL);
    dataset_bytes_ += size;
  }
  util::simd::mix64_batch(key_digests_.data(), key_digests_.data(),
                          num_keys);

  // The byte streams the service-vs-bytes fit consumes, split by request
  // class exactly as the per-cell loop used to build them.
  read_bytes_.reserve(reads);
  write_bytes_.reserve(requests.size() - reads);
  for (const Request& req : requests) {
    const auto bytes =
        static_cast<double>(key_sizes_[static_cast<std::size_t>(req.key)]);
    if (req.op == OpType::kRead) {
      read_bytes_.push_back(bytes);
    } else {
      write_bytes_.push_back(bytes);
    }
  }
  read_fit_ = fit_moments(read_bytes_);
  write_fit_ = fit_moments(write_bytes_);
}

ServiceFitMoments CompiledTrace::fit_moments(
    std::span<const double> bytes) {
  ServiceFitMoments m;
  if (bytes.empty()) return m;
  // Index-order accumulation, matching stats::fit_line's normal-equation
  // loop addition chain for addition chain, so each sum is the same double
  // to the last bit.
  const double first = bytes.front();
  for (const double b : bytes) {
    if (b != first) {
      m.distinct = true;
      break;
    }
  }
  for (const double b : bytes) {
    m.n += 1.0;
    m.sum_x += b;
    m.sum_xx += b * b;
  }
  return m;
}

}  // namespace mnemo::workload
