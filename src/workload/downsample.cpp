#include "workload/downsample.hpp"

#include <algorithm>
#include <cmath>

#include "stats/cdf.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace mnemo::workload {

Trace downsample(const Trace& trace, double keep_fraction, std::uint64_t seed,
                 std::size_t interval) {
  MNEMO_EXPECTS(keep_fraction > 0.0 && keep_fraction <= 1.0);
  MNEMO_EXPECTS(interval > 0);

  const auto& reqs = trace.requests();
  util::Rng rng(seed);
  std::vector<Request> kept;
  kept.reserve(static_cast<std::size_t>(
      static_cast<double>(reqs.size()) * keep_fraction) + interval);

  std::vector<std::uint32_t> idx(interval);
  for (std::size_t start = 0; start < reqs.size(); start += interval) {
    const std::size_t len = std::min(interval, reqs.size() - start);
    const auto keep = static_cast<std::size_t>(
        std::llround(static_cast<double>(len) * keep_fraction));
    if (keep == 0) continue;
    // Partial Fisher–Yates: choose `keep` positions uniformly without
    // replacement, then restore request order within the interval.
    idx.resize(len);
    for (std::size_t i = 0; i < len; ++i) {
      idx[i] = static_cast<std::uint32_t>(i);
    }
    for (std::size_t i = 0; i < keep; ++i) {
      const auto j = static_cast<std::size_t>(
          rng.uniform(i, len - 1));
      std::swap(idx[i], idx[j]);
    }
    std::sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(keep));
    // Inserts define the key space and must survive sampling (every key
    // must still be created exactly once); track which sampled slots are
    // inserts and add back any evicted ones.
    std::vector<bool> taken(len, false);
    for (std::size_t i = 0; i < keep; ++i) {
      taken[idx[i]] = true;
    }
    for (std::size_t i = 0; i < len; ++i) {
      if (!taken[i] && reqs[start + i].op == OpType::kInsert) {
        taken[i] = true;
      }
    }
    for (std::size_t i = 0; i < len; ++i) {
      if (taken[i]) kept.push_back(reqs[start + i]);
    }
  }

  return Trace(trace.name() + "_downsampled", trace.key_count(),
               std::move(kept),
               std::vector<std::uint64_t>(trace.key_sizes()),
               trace.initial_key_count());
}

double key_distribution_distance(const Trace& a, const Trace& b) {
  MNEMO_EXPECTS(a.key_count() == b.key_count());
  const auto ca = stats::cumulative_share(a.access_counts());
  const auto cb = stats::cumulative_share(b.access_counts());
  double worst = 0.0;
  for (std::size_t i = 0; i < ca.size(); ++i) {
    worst = std::max(worst, std::fabs(ca[i] - cb[i]));
  }
  return worst;
}

}  // namespace mnemo::workload
