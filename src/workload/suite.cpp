#include "workload/suite.hpp"

#include "util/assert.hpp"

namespace mnemo::workload {

namespace {

WorkloadSpec base(std::uint64_t seed) {
  WorkloadSpec s;
  s.key_count = 10'000;
  s.request_count = 100'000;
  s.seed = seed;
  return s;
}

}  // namespace

std::vector<WorkloadSpec> paper_suite(std::uint64_t seed) {
  std::vector<WorkloadSpec> suite;

  WorkloadSpec trending = base(seed ^ 0x01);
  trending.name = "trending";
  trending.use_case = "Read Facebook short Trending News.";
  trending.distribution = DistributionKind::kHotspot;
  trending.read_fraction = 1.0;
  trending.record_size = RecordSizeType::kThumbnail;
  suite.push_back(trending);

  WorkloadSpec newsfeed = base(seed ^ 0x02);
  newsfeed.name = "news_feed";
  newsfeed.use_case = "Read Facebook News Feed.";
  newsfeed.distribution = DistributionKind::kLatest;
  // The feed refreshes throughout the run: the recency pivot sweeps the
  // whole key space once (10,000 keys over 100,000 requests), which is
  // why News Feed "really depends on the latest accessed data" and offers
  // almost no static cost-reduction opportunity (paper Fig 9).
  newsfeed.dist_params.latest_drift = 0.1;
  newsfeed.read_fraction = 1.0;
  newsfeed.record_size = RecordSizeType::kThumbnail;
  suite.push_back(newsfeed);

  WorkloadSpec timeline = base(seed ^ 0x03);
  timeline.name = "timeline";
  timeline.use_case = "Read Facebook user's Timeline.";
  timeline.distribution = DistributionKind::kScrambledZipfian;
  timeline.read_fraction = 1.0;
  timeline.record_size = RecordSizeType::kThumbnail;
  suite.push_back(timeline);

  WorkloadSpec edit = base(seed ^ 0x04);
  edit.name = "edit_thumbnail";
  edit.use_case = "Edit Profile Photo - Add filter/frame.";
  edit.distribution = DistributionKind::kScrambledZipfian;
  edit.read_fraction = 0.5;
  edit.record_size = RecordSizeType::kThumbnail;
  suite.push_back(edit);

  WorkloadSpec preview = base(seed ^ 0x05);
  preview.name = "trending_preview";
  preview.use_case =
      "Scroll through Facebook Trending News. Preview the news photo "
      "thumbnail, caption and news summary.";
  preview.distribution = DistributionKind::kHotspot;
  preview.read_fraction = 1.0;
  preview.record_size = RecordSizeType::kPreviewMix;
  suite.push_back(preview);

  return suite;
}

WorkloadSpec paper_workload(std::string_view name, std::uint64_t seed) {
  for (auto& spec : paper_suite(seed)) {
    if (spec.name == name) return spec;
  }
  MNEMO_EXPECTS(false && "unknown Table III workload name");
  return {};
}

std::vector<WorkloadSpec> record_size_sweep(std::uint64_t seed) {
  std::vector<WorkloadSpec> out;
  for (const RecordSizeType type :
       {RecordSizeType::kThumbnail, RecordSizeType::kTextPost,
        RecordSizeType::kPhotoCaption}) {
    WorkloadSpec s = paper_workload("timeline", seed);
    s.record_size = type;
    s.name = std::string("timeline_") + std::string(to_string(type));
    out.push_back(s);
  }
  return out;
}

std::vector<WorkloadSpec> distribution_sweep(std::uint64_t seed) {
  return {paper_workload("trending", seed), paper_workload("news_feed", seed),
          paper_workload("timeline", seed)};
}

std::vector<WorkloadSpec> ratio_sweep(std::uint64_t seed) {
  return {paper_workload("timeline", seed),
          paper_workload("edit_thumbnail", seed)};
}

WorkloadSpec ycsb_d(std::uint64_t seed) {
  WorkloadSpec s = base(seed ^ 0x0d);
  s.name = "ycsb_d";
  s.use_case = "YCSB workload D: read latest status updates.";
  s.distribution = DistributionKind::kLatest;
  s.read_fraction = 1.0;     // non-insert requests are all reads
  s.insert_fraction = 0.05;  // 95:5 read:insert
  s.record_size = RecordSizeType::kTextPost;
  return s;
}

}  // namespace mnemo::workload
