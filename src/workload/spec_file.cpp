#include "workload/spec_file.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/status.hpp"

namespace mnemo::workload {

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

double parse_double(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const double v = std::stod(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument(key + ": not a number: " + value);
  }
}

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const std::uint64_t v = std::stoull(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument(key + ": not an integer: " + value);
  }
}

}  // namespace

DistributionKind parse_distribution(const std::string& name) {
  for (const DistributionKind kind :
       {DistributionKind::kUniform, DistributionKind::kZipfian,
        DistributionKind::kScrambledZipfian, DistributionKind::kLatest,
        DistributionKind::kHotspot, DistributionKind::kSequential}) {
    if (name == to_string(kind)) return kind;
  }
  throw std::invalid_argument("unknown distribution: " + name);
}

RecordSizeType parse_record_size(const std::string& name) {
  for (const RecordSizeType type :
       {RecordSizeType::kThumbnail, RecordSizeType::kTextPost,
        RecordSizeType::kPhotoCaption, RecordSizeType::kPreviewMix}) {
    if (name == to_string(type)) return type;
  }
  throw std::invalid_argument("unknown record_size: " + name);
}

WorkloadSpec parse_spec(std::istream& in, const std::string& source) {
  WorkloadSpec spec;
  spec.name = "custom";
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw util::ParseError(source, line_no, "expected key = value");
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    // The value parsers report *what* is wrong; the wrapper pins *where*.
    try {
      if (key == "name") {
        spec.name = value;
      } else if (key == "use_case") {
        spec.use_case = value;
      } else if (key == "distribution") {
        spec.distribution = parse_distribution(value);
      } else if (key == "zipf_theta") {
        spec.dist_params.zipf_theta = parse_double(key, value);
      } else if (key == "hot_key_fraction") {
        spec.dist_params.hot_key_fraction = parse_double(key, value);
      } else if (key == "hot_op_fraction") {
        spec.dist_params.hot_op_fraction = parse_double(key, value);
      } else if (key == "latest_drift") {
        spec.dist_params.latest_drift = parse_double(key, value);
      } else if (key == "read_fraction") {
        spec.read_fraction = parse_double(key, value);
        if (spec.read_fraction < 0.0 || spec.read_fraction > 1.0) {
          throw std::invalid_argument("read_fraction: must be in [0, 1]");
        }
      } else if (key == "insert_fraction") {
        spec.insert_fraction = parse_double(key, value);
        if (spec.insert_fraction < 0.0 || spec.insert_fraction >= 1.0) {
          throw std::invalid_argument("insert_fraction: must be in [0, 1)");
        }
      } else if (key == "record_size") {
        spec.record_size = parse_record_size(value);
      } else if (key == "keys") {
        spec.key_count = parse_u64(key, value);
      } else if (key == "requests") {
        spec.request_count = parse_u64(key, value);
      } else if (key == "seed") {
        spec.seed = parse_u64(key, value);
      } else {
        throw std::invalid_argument("unknown key '" + key + "'");
      }
    } catch (const util::ParseError&) {
      throw;
    } catch (const std::invalid_argument& e) {
      throw util::ParseError(source, line_no, e.what());
    }
  }
  spec.check();
  return spec;
}

WorkloadSpec load_spec_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open spec file: " + path);
  return parse_spec(in, path);
}

std::string format_spec(const WorkloadSpec& spec) {
  std::ostringstream out;
  out << "name = " << spec.name << "\n";
  if (!spec.use_case.empty()) out << "use_case = " << spec.use_case << "\n";
  out << "distribution = " << to_string(spec.distribution) << "\n";
  out << "zipf_theta = " << spec.dist_params.zipf_theta << "\n";
  out << "hot_key_fraction = " << spec.dist_params.hot_key_fraction << "\n";
  out << "hot_op_fraction = " << spec.dist_params.hot_op_fraction << "\n";
  out << "latest_drift = " << spec.dist_params.latest_drift << "\n";
  out << "read_fraction = " << spec.read_fraction << "\n";
  out << "insert_fraction = " << spec.insert_fraction << "\n";
  out << "record_size = " << to_string(spec.record_size) << "\n";
  out << "keys = " << spec.key_count << "\n";
  out << "requests = " << spec.request_count << "\n";
  out << "seed = " << spec.seed << "\n";
  return out.str();
}

void save_spec_file(const WorkloadSpec& spec, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write spec file: " + path);
  out << format_spec(spec);
}

}  // namespace mnemo::workload
