#include "workload/characterize.hpp"

#include <algorithm>
#include <functional>

#include "stats/fenwick.hpp"
#include "stats/summary.hpp"
#include "util/assert.hpp"

namespace mnemo::workload {

double Characterization::predicted_hit_rate(std::uint64_t cache_bytes,
                                            std::uint64_t bypass_bytes) const {
  if (requests == 0) return 0.0;
  std::uint64_t hits = 0;
  for (std::size_t i = 0; i < reuse_distances_bytes.size(); ++i) {
    if (bypass_bytes > 0 && reuse_sizes_bytes[i] >
                                static_cast<double>(bypass_bytes)) {
      continue;  // object never caches
    }
    // The re-accessed record hits iff everything touched since its last
    // access (itself included) still fits — byte-LRU stack condition.
    if (reuse_distances_bytes[i] <= static_cast<double>(cache_bytes)) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(requests);
}

namespace {

double gini_coefficient(std::vector<std::uint64_t> counts) {
  std::sort(counts.begin(), counts.end());
  double cum = 0.0;
  double weighted = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cum += static_cast<double>(counts[i]);
    weighted += static_cast<double>(i + 1) * static_cast<double>(counts[i]);
  }
  if (cum == 0.0) return 0.0;
  const auto n = static_cast<double>(counts.size());
  return (2.0 * weighted) / (n * cum) - (n + 1.0) / n;
}

double top_fraction_share(const std::vector<std::uint64_t>& counts,
                          double fraction) {
  std::vector<std::uint64_t> sorted(counts);
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  const auto take = std::max<std::size_t>(
      1, static_cast<std::size_t>(fraction *
                                  static_cast<double>(sorted.size())));
  std::uint64_t hot = 0;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    total += sorted[i];
    if (i < take) hot += sorted[i];
  }
  return total == 0 ? 0.0
                    : static_cast<double>(hot) / static_cast<double>(total);
}

}  // namespace

Characterization characterize(const Trace& trace) {
  Characterization c;
  c.keys = trace.key_count();
  c.requests = trace.requests().size();
  c.dataset_bytes = trace.dataset_bytes();
  MNEMO_EXPECTS(c.requests > 0);

  std::uint64_t reads = 0;
  std::uint64_t inserts = 0;
  for (const Request& r : trace.requests()) {
    if (r.op == OpType::kRead) ++reads;
    if (r.op == OpType::kInsert) ++inserts;
  }
  c.read_fraction =
      static_cast<double>(reads) / static_cast<double>(c.requests);
  c.insert_fraction =
      static_cast<double>(inserts) / static_cast<double>(c.requests);

  const auto counts = trace.access_counts();
  c.hot10_share = top_fraction_share(counts, 0.10);
  c.hot20_share = top_fraction_share(counts, 0.20);
  c.gini = gini_coefficient(counts);

  // Byte-weighted LRU stack distances. The Fenwick tree is indexed by
  // request position; position p carries the record size of the key whose
  // most recent access was at p. For an access at time t to a key last
  // seen at t0, the bytes of distinct records touched in between is the
  // range sum (t0, t) — add the record itself for the fit condition.
  stats::FenwickTree tree(c.requests);
  std::vector<std::int64_t> last_seen(trace.key_count(), -1);
  c.reuse_distances_bytes.reserve(c.requests);
  for (std::size_t t = 0; t < c.requests; ++t) {
    const Request& r = trace.requests()[t];
    const auto size = static_cast<double>(trace.size_of(r.key));
    const std::int64_t t0 = last_seen[r.key];
    if (t0 >= 0) {
      const double between =
          tree.range_sum(static_cast<std::size_t>(t0) + 1, t);
      c.reuse_distances_bytes.push_back(between + size);
      c.reuse_sizes_bytes.push_back(size);
      tree.add(static_cast<std::size_t>(t0), -size);
    } else {
      ++c.cold_accesses;
    }
    tree.add(t, size);
    last_seen[r.key] = static_cast<std::int64_t>(t);
  }

  if (!c.reuse_distances_bytes.empty()) {
    std::vector<double> sorted(c.reuse_distances_bytes);
    std::sort(sorted.begin(), sorted.end());
    c.reuse_p50_bytes = stats::percentile_sorted(sorted, 0.50);
    c.reuse_p90_bytes = stats::percentile_sorted(sorted, 0.90);
    c.reuse_p99_bytes = stats::percentile_sorted(sorted, 0.99);
  }
  return c;
}

}  // namespace mnemo::workload
