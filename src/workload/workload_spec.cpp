#include "workload/workload_spec.hpp"

#include <cstdio>

#include "util/assert.hpp"

namespace mnemo::workload {

std::string WorkloadSpec::ratio_label() const {
  const int reads = static_cast<int>(read_fraction * 100.0 + 0.5);
  char buf[48];
  std::snprintf(buf, sizeof buf, "%d:%d %s", reads, 100 - reads,
                read_fraction >= 0.999 ? "readonly"
                : read_fraction >= 0.5 ? "updateheavy"
                                       : "writeheavy");
  return buf;
}

void WorkloadSpec::check() const {
  MNEMO_EXPECTS(!name.empty());
  MNEMO_EXPECTS(read_fraction >= 0.0 && read_fraction <= 1.0);
  MNEMO_EXPECTS(insert_fraction >= 0.0 && insert_fraction < 1.0);
  MNEMO_EXPECTS(key_count > 0);
  MNEMO_EXPECTS(request_count > 0);
}

}  // namespace mnemo::workload
