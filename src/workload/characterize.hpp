#pragma once

#include <cstdint>
#include <vector>

#include "workload/trace.hpp"

namespace mnemo::workload {

/// Quantitative profile of a workload — what an operator should know
/// before asking Mnemo for sizing advice. Computed in one pass over the
/// trace (O(n log n) for the stack distances).
struct Characterization {
  std::uint64_t keys = 0;
  std::uint64_t requests = 0;
  std::uint64_t dataset_bytes = 0;
  double read_fraction = 0.0;
  double insert_fraction = 0.0;

  /// Popularity skew: request share of the hottest 10% / 20% of keys and
  /// the Gini coefficient of per-key access counts (0 = uniform,
  /// -> 1 = all requests on one key).
  double hot10_share = 0.0;
  double hot20_share = 0.0;
  double gini = 0.0;

  /// Byte-granular LRU stack distances: for each re-access, the total
  /// size of distinct records touched since the previous access to the
  /// same key (plus the record itself). Quantiles in bytes; cold (first)
  /// accesses are excluded.
  double reuse_p50_bytes = 0.0;
  double reuse_p90_bytes = 0.0;
  double reuse_p99_bytes = 0.0;
  std::uint64_t cold_accesses = 0;  ///< first touches (no reuse distance)

  /// Fraction of accesses whose stack distance fits a byte-LRU cache of
  /// `cache_bytes` whose entries are capped at `bypass_bytes` (0 = no
  /// cap). This predicts the emulator's object-granular LLC hit rate.
  [[nodiscard]] double predicted_hit_rate(std::uint64_t cache_bytes,
                                          std::uint64_t bypass_bytes) const;

  /// All per-access stack distances (bytes; one entry per re-access, in
  /// trace order) — kept for custom cache-size what-ifs.
  std::vector<double> reuse_distances_bytes;
  /// Record size of the re-accessed key, parallel to
  /// reuse_distances_bytes (needed for the bypass cap).
  std::vector<double> reuse_sizes_bytes;
};

/// Analyze a trace. The stack distances use the classic Fenwick-tree
/// algorithm over last-access timestamps, weighted by record size.
Characterization characterize(const Trace& trace);

}  // namespace mnemo::workload
