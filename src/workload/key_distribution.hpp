#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "util/rng.hpp"

namespace mnemo::workload {

/// A request-key distribution over dense key IDs [0, key_count). These are
/// the YCSB request distributions the paper's custom workloads use (Fig 3):
/// uniform, zipfian, scrambled zipfian, latest, hotspot.
class KeyDistribution {
 public:
  virtual ~KeyDistribution() = default;

  /// Draw the next requested key ID.
  [[nodiscard]] virtual std::uint64_t next(util::Rng& rng) = 0;

  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual std::uint64_t key_count() const = 0;
  [[nodiscard]] virtual std::unique_ptr<KeyDistribution> clone() const = 0;
};

/// Every key equally likely.
class UniformDistribution final : public KeyDistribution {
 public:
  explicit UniformDistribution(std::uint64_t key_count);
  std::uint64_t next(util::Rng& rng) override;
  [[nodiscard]] std::string_view name() const override { return "uniform"; }
  [[nodiscard]] std::uint64_t key_count() const override { return n_; }
  [[nodiscard]] std::unique_ptr<KeyDistribution> clone() const override;

 private:
  std::uint64_t n_;
};

/// YCSB's ZipfianGenerator (Gray et al. "Quickly generating billion-record
/// synthetic databases" rejection-free algorithm). Rank 0 is the hottest
/// key, so popularity is monotonically decreasing in key ID.
class ZipfianDistribution final : public KeyDistribution {
 public:
  static constexpr double kDefaultTheta = 0.99;

  ZipfianDistribution(std::uint64_t key_count, double theta = kDefaultTheta);
  std::uint64_t next(util::Rng& rng) override;
  [[nodiscard]] std::string_view name() const override { return "zipfian"; }
  [[nodiscard]] std::uint64_t key_count() const override { return n_; }
  [[nodiscard]] std::unique_ptr<KeyDistribution> clone() const override;

  [[nodiscard]] double theta() const noexcept { return theta_; }

 private:
  static double zeta(std::uint64_t n, double theta);

  std::uint64_t n_;
  double theta_;
  double zetan_;
  double alpha_;
  double eta_;
  double half_pow_theta_;
};

/// Zipfian popularity scattered across the key space by FNV hashing the
/// zipfian rank (YCSB's ScrambledZipfianGenerator): the hot keys exist but
/// are not contiguous in ID order.
class ScrambledZipfianDistribution final : public KeyDistribution {
 public:
  explicit ScrambledZipfianDistribution(std::uint64_t key_count,
                                        double theta = 0.99);
  std::uint64_t next(util::Rng& rng) override;
  [[nodiscard]] std::string_view name() const override {
    return "scrambled_zipfian";
  }
  [[nodiscard]] std::uint64_t key_count() const override {
    return base_.key_count();
  }
  [[nodiscard]] std::unique_ptr<KeyDistribution> clone() const override;

 private:
  ZipfianDistribution base_;
};

/// YCSB's SkewedLatestGenerator: popularity is zipfian in *recency*, so the
/// most recently inserted keys (highest IDs, since IDs are assigned in
/// insertion order) are hottest. Models "News Feed" reads.
///
/// `drift_keys_per_request` moves the recency pivot forward as the run
/// progresses — the News Feed effect: fresh stories keep arriving, so the
/// hot set sweeps through the key space (wrapping around) and no static
/// placement can pin it down. 0 disables drift (classic YCSB behaviour).
class LatestDistribution final : public KeyDistribution {
 public:
  explicit LatestDistribution(std::uint64_t key_count, double theta = 0.99,
                              double drift_keys_per_request = 0.0);
  std::uint64_t next(util::Rng& rng) override;
  [[nodiscard]] std::string_view name() const override { return "latest"; }
  [[nodiscard]] std::uint64_t key_count() const override {
    return base_.key_count();
  }
  [[nodiscard]] std::unique_ptr<KeyDistribution> clone() const override;

  [[nodiscard]] double drift() const noexcept { return drift_; }

 private:
  ZipfianDistribution base_;
  double drift_;
  std::uint64_t requests_ = 0;
};

/// YCSB's HotspotIntegerGenerator: `hot_op_fraction` of requests go
/// uniformly to the first `hot_key_fraction` of the key space, the rest
/// uniformly to the cold remainder. Models "Trending".
class HotspotDistribution final : public KeyDistribution {
 public:
  HotspotDistribution(std::uint64_t key_count, double hot_key_fraction = 0.2,
                      double hot_op_fraction = 0.8);
  std::uint64_t next(util::Rng& rng) override;
  [[nodiscard]] std::string_view name() const override { return "hotspot"; }
  [[nodiscard]] std::uint64_t key_count() const override { return n_; }
  [[nodiscard]] std::unique_ptr<KeyDistribution> clone() const override;

  [[nodiscard]] double hot_key_fraction() const noexcept {
    return hot_key_fraction_;
  }
  [[nodiscard]] double hot_op_fraction() const noexcept {
    return hot_op_fraction_;
  }

 private:
  std::uint64_t n_;
  double hot_key_fraction_;
  double hot_op_fraction_;
  std::uint64_t hot_keys_;
};

/// Round-robin over the key space; used by loaders and tests.
class SequentialDistribution final : public KeyDistribution {
 public:
  explicit SequentialDistribution(std::uint64_t key_count);
  std::uint64_t next(util::Rng& rng) override;
  [[nodiscard]] std::string_view name() const override { return "sequential"; }
  [[nodiscard]] std::uint64_t key_count() const override { return n_; }
  [[nodiscard]] std::unique_ptr<KeyDistribution> clone() const override;

 private:
  std::uint64_t n_;
  std::uint64_t next_ = 0;
};

/// The distribution menu used by WorkloadSpec.
enum class DistributionKind {
  kUniform,
  kZipfian,
  kScrambledZipfian,
  kLatest,
  kHotspot,
  kSequential,
};

std::string_view to_string(DistributionKind kind);

/// Parameters for the kinds that need them.
struct DistributionParams {
  double zipf_theta = 0.99;
  double hot_key_fraction = 0.2;
  double hot_op_fraction = 0.8;
  /// For kLatest: keys the recency pivot advances per request (News Feed
  /// freshness drift); 0 keeps the classic static YCSB behaviour.
  double latest_drift = 0.0;
};

std::unique_ptr<KeyDistribution> make_distribution(
    DistributionKind kind, std::uint64_t key_count,
    const DistributionParams& params = {});

}  // namespace mnemo::workload
