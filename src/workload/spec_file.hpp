#pragma once

#include <iosfwd>
#include <string>

#include "workload/workload_spec.hpp"

namespace mnemo::workload {

/// Plain-text workload spec files: `key = value` lines with `#` comments,
/// the format the `mnemo` CLI accepts for custom workloads.
///
///   name = my_feed
///   distribution = latest        # uniform|zipfian|scrambled_zipfian|
///                                # latest|hotspot|sequential
///   zipf_theta = 0.99
///   latest_drift = 0.1
///   read_fraction = 0.95
///   record_size = thumbnail      # thumbnail|text_post|photo_caption|
///                                # preview_mix
///   keys = 10000
///   requests = 100000
///   seed = 42
///
/// Unknown keys and malformed values throw util::ParseError (a
/// std::invalid_argument) whose what() reports `source:line:`; omitted
/// keys keep WorkloadSpec defaults. `source` names the input in
/// diagnostics — load_spec_file passes the file path.
WorkloadSpec parse_spec(std::istream& in,
                        const std::string& source = "<spec>");
WorkloadSpec load_spec_file(const std::string& path);

/// Serialize a spec in the same format (round-trips through parse_spec).
std::string format_spec(const WorkloadSpec& spec);
void save_spec_file(const WorkloadSpec& spec, const std::string& path);

/// Name <-> enum helpers shared with the CLI.
DistributionKind parse_distribution(const std::string& name);
RecordSizeType parse_record_size(const std::string& name);

}  // namespace mnemo::workload
