#pragma once

#include <vector>

#include "workload/workload_spec.hpp"

namespace mnemo::workload {

/// The paper's five custom YCSB workloads (Table III): Trending, News Feed,
/// Timeline, Edit Thumbnail, Trending Preview — 10,000 keys and 100,000
/// requests each.
std::vector<WorkloadSpec> paper_suite(std::uint64_t seed = 0x6d6e656dULL);

/// Look up one Table III workload by name; aborts on unknown names.
WorkloadSpec paper_workload(std::string_view name,
                            std::uint64_t seed = 0x6d6e656dULL);

/// Fig 5c's record-size sweep: the Timeline access pattern at thumbnail
/// (100 KB), text post (10 KB) and photo caption (1 KB) record sizes.
std::vector<WorkloadSpec> record_size_sweep(std::uint64_t seed = 0x6d6e656dULL);

/// Fig 5a's key-distribution comparison set (Trending / News Feed /
/// Timeline — hotspot / latest / scrambled zipfian at equal size & ratio).
std::vector<WorkloadSpec> distribution_sweep(std::uint64_t seed = 0x6d6e656dULL);

/// Fig 5b's read:write comparison (Timeline 100:0 vs Edit Thumbnail 50:50).
std::vector<WorkloadSpec> ratio_sweep(std::uint64_t seed = 0x6d6e656dULL);

/// YCSB workload D ("read latest") as an extension beyond Table III:
/// 95:5 read:insert with a latest request distribution — the inserts
/// themselves move the hot set, the native YCSB mechanism the news_feed
/// workload's drift parameter approximates.
WorkloadSpec ycsb_d(std::uint64_t seed = 0x6d6e656dULL);

}  // namespace mnemo::workload
