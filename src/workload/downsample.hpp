#pragma once

#include <cstdint>

#include "workload/trace.hpp"

namespace mnemo::workload {

/// Downsize a workload by evicting random requests at fixed intervals
/// (the paper's §V "Workload downsampling"): the request sequence is split
/// into consecutive intervals and a random subset of each interval is kept,
/// preserving both the key-popularity distribution and the temporal
/// structure (which matters for `latest`-style patterns).
///
/// `keep_fraction` in (0, 1]; `interval` is the block length (defaults to
/// 100 requests). Key sizes and key count are preserved so capacity
/// reasoning is unchanged.
Trace downsample(const Trace& trace, double keep_fraction,
                 std::uint64_t seed, std::size_t interval = 100);

/// Kolmogorov–Smirnov-style distance between the key-popularity CDFs of
/// two traces over the same key space; used to verify that downsampling
/// preserved the distribution.
double key_distribution_distance(const Trace& a, const Trace& b);

}  // namespace mnemo::workload
