#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "workload/trace.hpp"

namespace mnemo::workload {

/// x-side normal-equation moments of one byte stream, precomputed once per
/// campaign for stats::fit_line_moments: n = Σ1, sum_x = Σx, sum_xx = Σx²,
/// each accumulated in index order exactly as stats::fit_line's own loop
/// would, so the downstream 2×2 solve sees bit-identical coefficients.
/// `distinct` records whether the stream has at least two different values
/// (the fit-vs-flat-mean guard, also placement-invariant).
struct ServiceFitMoments {
  double n = 0.0;
  double sum_x = 0.0;
  double sum_xx = 0.0;
  bool distinct = false;
};

/// Campaign-invariant view of a Trace, built once per measurement campaign
/// and shared read-only by every cell (DESIGN.md §12). Everything here is a
/// pure function of the trace — independent of placement, repeat, thread
/// count and fault plan — so hoisting it out of the per-cell loop cannot
/// change a single observable byte:
///
///  - flat SoA request streams (op, dense key id, record size as the
///    double fed to the service-vs-bytes regression),
///  - per-key tables: record size, util::mix64 bucket hash (the Vermilion
///    dict hash and the Cachet assoc hash are the same value) and the
///    util::record_digest record-generator seed,
///  - the per-op byte streams split by request class (read_bytes /
///    write_bytes) that fit_service_line consumes, and
///  - dataset_bytes(), an O(keys) sum every cell used to recompute.
///
/// The Trace must outlive the CompiledTrace (the per-key size table is
/// viewed, not copied — same contract as DualServer::populate).
class CompiledTrace {
 public:
  explicit CompiledTrace(const Trace& trace);

  [[nodiscard]] const Trace& trace() const noexcept { return *trace_; }
  [[nodiscard]] std::uint64_t key_count() const noexcept {
    return trace_->key_count();
  }
  [[nodiscard]] std::uint64_t initial_key_count() const noexcept {
    return trace_->initial_key_count();
  }
  /// Cached Trace::dataset_bytes() — O(1) instead of O(keys) per cell.
  [[nodiscard]] std::uint64_t dataset_bytes() const noexcept {
    return dataset_bytes_;
  }

  [[nodiscard]] std::size_t request_count() const noexcept {
    return ops_.size();
  }
  /// Requests split into parallel arrays, index-aligned with requests().
  [[nodiscard]] std::span<const OpType> ops() const noexcept { return ops_; }
  [[nodiscard]] std::span<const std::uint32_t> keys() const noexcept {
    return keys_;
  }

  /// Exact sizes for the per-cell sample vectors (reads + writes ==
  /// request_count()).
  [[nodiscard]] std::size_t read_count() const noexcept {
    return read_bytes_.size();
  }
  [[nodiscard]] std::size_t write_count() const noexcept {
    return write_bytes_.size();
  }
  /// Record sizes of read (resp. write) requests, in request order — the
  /// placement-invariant x-axis of the service-vs-bytes fit, identical to
  /// what the per-cell loop used to rebuild.
  [[nodiscard]] std::span<const double> read_bytes() const noexcept {
    return read_bytes_;
  }
  [[nodiscard]] std::span<const double> write_bytes() const noexcept {
    return write_bytes_;
  }
  /// Normal-equation moments of read_bytes() / write_bytes(), for the
  /// per-cell service-line fit via stats::fit_line_moments.
  [[nodiscard]] const ServiceFitMoments& read_fit() const noexcept {
    return read_fit_;
  }
  [[nodiscard]] const ServiceFitMoments& write_fit() const noexcept {
    return write_fit_;
  }

  [[nodiscard]] std::span<const std::uint64_t> key_sizes() const noexcept {
    return key_sizes_;
  }
  /// util::mix64(key): the bucket hash both chained hash tables derive
  /// probe targets from. Placement-invariant, hence hoisted.
  [[nodiscard]] std::uint64_t key_hash(std::uint64_t key) const noexcept {
    return key_hashes_[static_cast<std::size_t>(key)];
  }
  /// util::record_digest(key, size_of(key)): the payload-generator seed /
  /// synthetic checksum. Invariant because a key's record size is fixed
  /// for the whole trace (updates rewrite the same size).
  [[nodiscard]] std::uint64_t key_digest(std::uint64_t key) const noexcept {
    return key_digests_[static_cast<std::size_t>(key)];
  }
  [[nodiscard]] std::span<const std::uint64_t> key_hashes() const noexcept {
    return key_hashes_;
  }
  [[nodiscard]] std::span<const std::uint64_t> key_digests() const noexcept {
    return key_digests_;
  }

  /// Zero-indirection replay view for the lane-fused executor: raw
  /// pointers into the flat streams so the per-op decode — op, key, and
  /// the key's hash/digest hints — is loaded once per op and shared by
  /// every lane of a band (DESIGN.md §14). The cursor borrows from the
  /// CompiledTrace and must not outlive it.
  struct ReplayCursor {
    const OpType* ops = nullptr;
    const std::uint32_t* keys = nullptr;
    const std::uint64_t* hashes = nullptr;    ///< indexed by key id
    const std::uint64_t* digests = nullptr;   ///< indexed by key id
    std::size_t size = 0;

    struct Decoded {
      OpType op;
      std::uint32_t key;
      std::uint64_t hash;
      std::uint64_t digest;
    };

    [[nodiscard]] Decoded decode(std::size_t i) const noexcept {
      const std::uint32_t key = keys[i];
      return {ops[i], key, hashes[key], digests[key]};
    }

    /// Hint the next op's hint loads into cache while the lanes execute
    /// the current one. Purely advisory — no architectural effect.
    void prefetch(std::size_t i) const noexcept {
      if (i < size) {
        const std::uint32_t key = keys[i];
        __builtin_prefetch(&hashes[key]);
        __builtin_prefetch(&digests[key]);
      }
    }
  };

  [[nodiscard]] ReplayCursor cursor() const noexcept {
    return {ops_.data(), keys_.data(), key_hashes_.data(),
            key_digests_.data(), ops_.size()};
  }

 private:
  static ServiceFitMoments fit_moments(std::span<const double> bytes);

  const Trace* trace_;
  std::uint64_t dataset_bytes_ = 0;
  std::vector<OpType> ops_;
  std::vector<std::uint32_t> keys_;
  std::vector<double> read_bytes_;
  std::vector<double> write_bytes_;
  ServiceFitMoments read_fit_;
  ServiceFitMoments write_fit_;
  std::span<const std::uint64_t> key_sizes_;
  std::vector<std::uint64_t> key_hashes_;
  std::vector<std::uint64_t> key_digests_;
};

}  // namespace mnemo::workload
