#include "workload/key_distribution.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace mnemo::workload {

// ---------------------------------------------------------------- uniform

UniformDistribution::UniformDistribution(std::uint64_t key_count)
    : n_(key_count) {
  MNEMO_EXPECTS(key_count > 0);
}

std::uint64_t UniformDistribution::next(util::Rng& rng) {
  return rng.uniform(0, n_ - 1);
}

std::unique_ptr<KeyDistribution> UniformDistribution::clone() const {
  return std::make_unique<UniformDistribution>(*this);
}

// ---------------------------------------------------------------- zipfian

double ZipfianDistribution::zeta(std::uint64_t n, double theta) {
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

ZipfianDistribution::ZipfianDistribution(std::uint64_t key_count, double theta)
    : n_(key_count), theta_(theta) {
  MNEMO_EXPECTS(key_count > 0);
  MNEMO_EXPECTS(theta > 0.0 && theta < 1.0);
  zetan_ = zeta(n_, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  const double zeta2 = zeta(2, theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
  half_pow_theta_ = 1.0 + std::pow(0.5, theta_);
}

std::uint64_t ZipfianDistribution::next(util::Rng& rng) {
  const double u = rng.next_double();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < half_pow_theta_) return 1;
  const auto rank = static_cast<std::uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

std::unique_ptr<KeyDistribution> ZipfianDistribution::clone() const {
  return std::make_unique<ZipfianDistribution>(*this);
}

// ------------------------------------------------------ scrambled zipfian

ScrambledZipfianDistribution::ScrambledZipfianDistribution(
    std::uint64_t key_count, double theta)
    : base_(key_count, theta) {}

std::uint64_t ScrambledZipfianDistribution::next(util::Rng& rng) {
  const std::uint64_t rank = base_.next(rng);
  return util::fnv1a64(rank) % base_.key_count();
}

std::unique_ptr<KeyDistribution> ScrambledZipfianDistribution::clone() const {
  return std::make_unique<ScrambledZipfianDistribution>(*this);
}

// ----------------------------------------------------------------- latest

LatestDistribution::LatestDistribution(std::uint64_t key_count, double theta,
                                       double drift_keys_per_request)
    : base_(key_count, theta), drift_(drift_keys_per_request) {
  MNEMO_EXPECTS(drift_keys_per_request >= 0.0);
}

std::uint64_t LatestDistribution::next(util::Rng& rng) {
  const std::uint64_t n = base_.key_count();
  const std::uint64_t back = base_.next(rng);  // 0 = most recent
  // The pivot starts at the newest key and advances with freshness drift;
  // requests wrap around the key space modulo n.
  const auto advance = static_cast<std::uint64_t>(
      drift_ * static_cast<double>(requests_));
  ++requests_;
  const std::uint64_t pivot = (n - 1 + advance) % n;
  return (pivot + n - back % n) % n;
}

std::unique_ptr<KeyDistribution> LatestDistribution::clone() const {
  return std::make_unique<LatestDistribution>(*this);
}

// ---------------------------------------------------------------- hotspot

HotspotDistribution::HotspotDistribution(std::uint64_t key_count,
                                         double hot_key_fraction,
                                         double hot_op_fraction)
    : n_(key_count),
      hot_key_fraction_(hot_key_fraction),
      hot_op_fraction_(hot_op_fraction),
      hot_keys_(static_cast<std::uint64_t>(
          std::ceil(static_cast<double>(key_count) * hot_key_fraction))) {
  MNEMO_EXPECTS(key_count > 0);
  MNEMO_EXPECTS(hot_key_fraction > 0.0 && hot_key_fraction < 1.0);
  MNEMO_EXPECTS(hot_op_fraction > 0.0 && hot_op_fraction <= 1.0);
  MNEMO_EXPECTS(hot_keys_ >= 1 && hot_keys_ < n_);
}

std::uint64_t HotspotDistribution::next(util::Rng& rng) {
  if (rng.next_double() < hot_op_fraction_) {
    return rng.uniform(0, hot_keys_ - 1);
  }
  return rng.uniform(hot_keys_, n_ - 1);
}

std::unique_ptr<KeyDistribution> HotspotDistribution::clone() const {
  return std::make_unique<HotspotDistribution>(*this);
}

// ------------------------------------------------------------- sequential

SequentialDistribution::SequentialDistribution(std::uint64_t key_count)
    : n_(key_count) {
  MNEMO_EXPECTS(key_count > 0);
}

std::uint64_t SequentialDistribution::next(util::Rng& /*rng*/) {
  const std::uint64_t k = next_;
  next_ = (next_ + 1) % n_;
  return k;
}

std::unique_ptr<KeyDistribution> SequentialDistribution::clone() const {
  auto copy = std::make_unique<SequentialDistribution>(n_);
  copy->next_ = next_;
  return copy;
}

// ---------------------------------------------------------------- factory

std::string_view to_string(DistributionKind kind) {
  switch (kind) {
    case DistributionKind::kUniform:
      return "uniform";
    case DistributionKind::kZipfian:
      return "zipfian";
    case DistributionKind::kScrambledZipfian:
      return "scrambled_zipfian";
    case DistributionKind::kLatest:
      return "latest";
    case DistributionKind::kHotspot:
      return "hotspot";
    case DistributionKind::kSequential:
      return "sequential";
  }
  return "?";
}

std::unique_ptr<KeyDistribution> make_distribution(
    DistributionKind kind, std::uint64_t key_count,
    const DistributionParams& params) {
  switch (kind) {
    case DistributionKind::kUniform:
      return std::make_unique<UniformDistribution>(key_count);
    case DistributionKind::kZipfian:
      return std::make_unique<ZipfianDistribution>(key_count,
                                                   params.zipf_theta);
    case DistributionKind::kScrambledZipfian:
      return std::make_unique<ScrambledZipfianDistribution>(
          key_count, params.zipf_theta);
    case DistributionKind::kLatest:
      return std::make_unique<LatestDistribution>(
          key_count, params.zipf_theta, params.latest_drift);
    case DistributionKind::kHotspot:
      return std::make_unique<HotspotDistribution>(
          key_count, params.hot_key_fraction, params.hot_op_fraction);
    case DistributionKind::kSequential:
      return std::make_unique<SequentialDistribution>(key_count);
  }
  MNEMO_ASSERT(false);
  return nullptr;
}

}  // namespace mnemo::workload
