#include "workload/record_size.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace mnemo::workload {

using util::kKiB;

// ------------------------------------------------------------------ fixed

FixedSizeModel::FixedSizeModel(std::uint64_t bytes) : bytes_(bytes) {
  MNEMO_EXPECTS(bytes > 0);
}

std::uint64_t FixedSizeModel::size_of(std::uint64_t /*key*/) const {
  return bytes_;
}

std::unique_ptr<RecordSizeModel> FixedSizeModel::clone() const {
  return std::make_unique<FixedSizeModel>(*this);
}

// -------------------------------------------------------------- lognormal

LognormalSizeModel::LognormalSizeModel(std::uint64_t median_bytes,
                                       double sigma, std::uint64_t min_bytes,
                                       std::uint64_t max_bytes,
                                       std::uint64_t seed)
    : median_(median_bytes),
      sigma_(sigma),
      min_(min_bytes),
      max_(max_bytes),
      seed_(seed) {
  MNEMO_EXPECTS(median_bytes > 0);
  MNEMO_EXPECTS(sigma >= 0.0);
  MNEMO_EXPECTS(min_bytes > 0 && min_bytes <= median_bytes);
  MNEMO_EXPECTS(max_bytes >= median_bytes);
}

std::uint64_t LognormalSizeModel::size_of(std::uint64_t key) const {
  // A tiny private generator keyed by (seed, key) makes the mapping a pure
  // function of the key ID — exactly reproducible and order-independent.
  util::Rng rng(util::mix64(seed_ ^ util::mix64(key + 1)));
  const double z = rng.gaussian();
  const double v = static_cast<double>(median_) * std::exp(sigma_ * z);
  const auto bytes = static_cast<std::uint64_t>(std::llround(v));
  return std::clamp(bytes, min_, max_);
}

std::unique_ptr<RecordSizeModel> LognormalSizeModel::clone() const {
  return std::make_unique<LognormalSizeModel>(*this);
}

// ---------------------------------------------------------------- mixture

MixtureSizeModel::MixtureSizeModel(std::string name,
                                   std::vector<Component> components,
                                   std::uint64_t seed)
    : name_(std::move(name)), components_(std::move(components)), seed_(seed) {
  MNEMO_EXPECTS(!components_.empty());
  double total = 0.0;
  for (const auto& c : components_) {
    MNEMO_EXPECTS(c.weight > 0.0);
    MNEMO_EXPECTS(c.model != nullptr);
    total += c.weight;
  }
  for (auto& c : components_) c.weight /= total;
}

std::uint64_t MixtureSizeModel::size_of(std::uint64_t key) const {
  const double u =
      static_cast<double>(util::mix64(seed_ ^ util::mix64(key + 17)) >> 11) *
      0x1.0p-53;
  double acc = 0.0;
  for (const auto& c : components_) {
    acc += c.weight;
    if (u < acc) return c.model->size_of(key);
  }
  return components_.back().model->size_of(key);
}

std::unique_ptr<RecordSizeModel> MixtureSizeModel::clone() const {
  return std::make_unique<MixtureSizeModel>(*this);
}

// ------------------------------------------------------------ paper types

std::string_view to_string(RecordSizeType type) {
  switch (type) {
    case RecordSizeType::kThumbnail:
      return "thumbnail";
    case RecordSizeType::kTextPost:
      return "text_post";
    case RecordSizeType::kPhotoCaption:
      return "photo_caption";
    case RecordSizeType::kPreviewMix:
      return "preview_mix";
  }
  return "?";
}

std::uint64_t nominal_bytes(RecordSizeType type) {
  switch (type) {
    case RecordSizeType::kThumbnail:
      return 100 * kKiB;
    case RecordSizeType::kTextPost:
      return 10 * kKiB;
    case RecordSizeType::kPhotoCaption:
      return 1 * kKiB;
    case RecordSizeType::kPreviewMix:
      // weighted blend of the three components below
      return (100 * kKiB + 10 * kKiB + 1 * kKiB) / 3;
  }
  return 0;
}

std::unique_ptr<RecordSizeModel> make_size_model(RecordSizeType type,
                                                 std::uint64_t seed) {
  // Mild spread (sigma 0.15): platform thumbnails/posts are near-constant
  // size but not byte-identical.
  switch (type) {
    case RecordSizeType::kThumbnail:
      return std::make_unique<LognormalSizeModel>(100 * kKiB, 0.15, 60 * kKiB,
                                                  180 * kKiB, seed);
    case RecordSizeType::kTextPost:
      return std::make_unique<LognormalSizeModel>(10 * kKiB, 0.15, 6 * kKiB,
                                                  18 * kKiB, seed);
    case RecordSizeType::kPhotoCaption:
      return std::make_unique<LognormalSizeModel>(1 * kKiB, 0.15, 512,
                                                  2 * kKiB, seed);
    case RecordSizeType::kPreviewMix: {
      std::vector<MixtureSizeModel::Component> parts;
      parts.push_back({1.0, std::shared_ptr<const RecordSizeModel>(
                                make_size_model(RecordSizeType::kThumbnail,
                                                seed ^ 0x1))});
      parts.push_back({1.0, std::shared_ptr<const RecordSizeModel>(
                                make_size_model(RecordSizeType::kTextPost,
                                                seed ^ 0x2))});
      parts.push_back({1.0, std::shared_ptr<const RecordSizeModel>(
                                make_size_model(RecordSizeType::kPhotoCaption,
                                                seed ^ 0x3))});
      return std::make_unique<MixtureSizeModel>("preview_mix",
                                                std::move(parts), seed);
    }
  }
  MNEMO_ASSERT(false);
  return nullptr;
}

const std::vector<SocialMediaEntry>& social_media_size_table() {
  // 2018-era "social media cheat sheet" values: text limits at 1 byte per
  // character, images as typical JPEG-encoded sizes at the recommended
  // pixel dimensions.
  static const std::vector<SocialMediaEntry> kTable = {
      {"Facebook", "status text (typical)", 150},
      {"Facebook", "status text (limit)", 63206},
      {"Facebook", "link caption", 500},
      {"Facebook", "news thumbnail (1200x630)", 95 * kKiB},
      {"Facebook", "profile photo (180x180)", 12 * kKiB},
      {"Twitter", "tweet", 280},
      {"Twitter", "card summary text", 200},
      {"Twitter", "in-stream photo (440x220)", 60 * kKiB},
      {"Instagram", "caption (limit)", 2200},
      {"Instagram", "thumbnail (161x161)", 9 * kKiB},
      {"Instagram", "feed photo (1080x1080)", 150 * kKiB},
      {"LinkedIn", "post text (limit)", 1300},
      {"LinkedIn", "article body (typical)", 8 * kKiB},
      {"LinkedIn", "link thumbnail (1200x627)", 90 * kKiB},
      {"Pinterest", "pin description", 500},
      {"Pinterest", "pin image (600x900)", 120 * kKiB},
      {"YouTube", "video description", 5000},
      {"YouTube", "thumbnail (1280x720)", 110 * kKiB},
  };
  return kTable;
}

}  // namespace mnemo::workload
