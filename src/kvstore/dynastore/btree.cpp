#include "kvstore/dynastore/btree.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"

namespace mnemo::kvstore::dynastore {

BPlusTree::BPlusTree() {
  auto leaf = std::make_unique<Leaf>();
  first_leaf_ = leaf.get();
  root_ = std::move(leaf);
}

BPlusTree::~BPlusTree() = default;

std::uint64_t BPlusTree::overhead_bytes() const noexcept {
  // Per node: header + kFanout key slots + kFanout pointers — a fixed-size
  // page model, like an on-heap B-tree with preallocated arrays.
  constexpr std::uint64_t kNodeBytes = 32 + kFanout * 8 + kFanout * 8;
  return nodes_ * kNodeBytes;
}

BPlusTree::Leaf* BPlusTree::descend(std::uint64_t key,
                                    std::uint32_t* depth) const {
  Node* node = root_.get();
  std::uint32_t d = 1;
  while (!node->is_leaf) {
    auto& internal = static_cast<Internal&>(*node);
    const auto it = std::upper_bound(internal.keys.begin(),
                                     internal.keys.end(), key);
    node = internal.children[static_cast<std::size_t>(
                                 it - internal.keys.begin())]
               .get();
    ++d;
  }
  if (depth != nullptr) *depth = d;
  return static_cast<Leaf*>(node);
}

BPlusTree::FindResult BPlusTree::find(std::uint64_t key) {
  FindResult result;
  Leaf* leaf = descend(key, &result.depth);
  const auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
  if (it != leaf->keys.end() && *it == key) {
    result.record =
        &leaf->values[static_cast<std::size_t>(it - leaf->keys.begin())];
  }
  return result;
}

bool BPlusTree::insert_into(Node& node, std::uint64_t key, Record&& value,
                            std::uint32_t* depth, bool* existed,
                            SplitResult* split) {
  ++*depth;
  if (node.is_leaf) {
    auto& leaf = static_cast<Leaf&>(node);
    const auto it =
        std::lower_bound(leaf.keys.begin(), leaf.keys.end(), key);
    const auto idx = static_cast<std::size_t>(it - leaf.keys.begin());
    if (it != leaf.keys.end() && *it == key) {
      leaf.values[idx] = std::move(value);
      *existed = true;
      return false;
    }
    leaf.keys.insert(it, key);
    leaf.values.insert(leaf.values.begin() + static_cast<std::ptrdiff_t>(idx),
                       std::move(value));
    ++size_;
    if (leaf.keys.size() < kFanout) return false;

    // Split the leaf in half; right sibling joins the leaf chain.
    auto right = std::make_unique<Leaf>();
    const std::size_t half = leaf.keys.size() / 2;
    right->keys.assign(leaf.keys.begin() + static_cast<std::ptrdiff_t>(half),
                       leaf.keys.end());
    right->values.assign(
        std::make_move_iterator(leaf.values.begin() +
                                static_cast<std::ptrdiff_t>(half)),
        std::make_move_iterator(leaf.values.end()));
    leaf.keys.resize(half);
    leaf.values.resize(half);
    right->next = leaf.next;
    leaf.next = right.get();
    ++nodes_;
    split->separator = right->keys.front();
    split->right = std::move(right);
    return true;
  }

  auto& internal = static_cast<Internal&>(node);
  const auto it =
      std::upper_bound(internal.keys.begin(), internal.keys.end(), key);
  const auto child_idx = static_cast<std::size_t>(it - internal.keys.begin());
  SplitResult child_split;
  if (!insert_into(*internal.children[child_idx], key, std::move(value),
                   depth, existed, &child_split)) {
    return false;
  }
  internal.keys.insert(internal.keys.begin() +
                           static_cast<std::ptrdiff_t>(child_idx),
                       child_split.separator);
  internal.children.insert(
      internal.children.begin() + static_cast<std::ptrdiff_t>(child_idx) + 1,
      std::move(child_split.right));
  if (internal.children.size() <= kFanout) return false;

  // Split the internal node; the middle key moves up.
  auto right = std::make_unique<Internal>();
  const std::size_t mid = internal.keys.size() / 2;
  split->separator = internal.keys[mid];
  right->keys.assign(internal.keys.begin() + static_cast<std::ptrdiff_t>(mid) + 1,
                     internal.keys.end());
  right->children.assign(
      std::make_move_iterator(internal.children.begin() +
                              static_cast<std::ptrdiff_t>(mid) + 1),
      std::make_move_iterator(internal.children.end()));
  internal.keys.resize(mid);
  internal.children.resize(mid + 1);
  ++nodes_;
  split->right = std::move(right);
  return true;
}

BPlusTree::UpsertResult BPlusTree::upsert(std::uint64_t key, Record value) {
  UpsertResult result;
  SplitResult split;
  if (insert_into(*root_, key, std::move(value), &result.depth,
                  &result.existed, &split)) {
    auto new_root = std::make_unique<Internal>();
    new_root->keys.push_back(split.separator);
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split.right));
    root_ = std::move(new_root);
    ++nodes_;
    ++height_;
  }
  return result;
}

BPlusTree::EraseResult BPlusTree::erase(std::uint64_t key) {
  EraseResult result;
  Leaf* leaf = descend(key, &result.depth);
  const auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
  if (it == leaf->keys.end() || *it != key) return result;
  const auto idx = static_cast<std::size_t>(it - leaf->keys.begin());
  leaf->keys.erase(it);
  leaf->values.erase(leaf->values.begin() + static_cast<std::ptrdiff_t>(idx));
  --size_;
  result.erased = true;
  return result;
}

void BPlusTree::check_node(const Node& node, std::uint64_t lo,
                           std::uint64_t hi, std::uint32_t depth,
                           std::uint32_t expected_leaf_depth) const {
  if (node.is_leaf) {
    const auto& leaf = static_cast<const Leaf&>(node);
    MNEMO_ASSERT(depth == expected_leaf_depth);
    MNEMO_ASSERT(leaf.keys.size() == leaf.values.size());
    MNEMO_ASSERT(std::is_sorted(leaf.keys.begin(), leaf.keys.end()));
    for (const auto k : leaf.keys) {
      MNEMO_ASSERT(k >= lo && k < hi);
    }
    return;
  }
  const auto& internal = static_cast<const Internal&>(node);
  MNEMO_ASSERT(internal.children.size() == internal.keys.size() + 1);
  MNEMO_ASSERT(internal.children.size() <= kFanout);
  MNEMO_ASSERT(std::is_sorted(internal.keys.begin(), internal.keys.end()));
  for (std::size_t i = 0; i < internal.children.size(); ++i) {
    const std::uint64_t child_lo = i == 0 ? lo : internal.keys[i - 1];
    const std::uint64_t child_hi =
        i == internal.keys.size() ? hi : internal.keys[i];
    check_node(*internal.children[i], child_lo, child_hi, depth + 1,
               expected_leaf_depth);
  }
}

void BPlusTree::check_invariants() const {
  check_node(*root_, 0, std::numeric_limits<std::uint64_t>::max(), 1,
             height_);
  // Leaf chain covers exactly size_ records in sorted order.
  std::size_t seen = 0;
  std::uint64_t prev = 0;
  bool first = true;
  const Leaf* leaf = first_leaf_;
  while (leaf != nullptr) {
    for (const auto k : leaf->keys) {
      MNEMO_ASSERT(first || k > prev);
      prev = k;
      first = false;
      ++seen;
    }
    leaf = leaf->next;
  }
  MNEMO_ASSERT(seen == size_);
}

}  // namespace mnemo::kvstore::dynastore
