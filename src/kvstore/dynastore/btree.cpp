#include "kvstore/dynastore/btree.hpp"

#include <algorithm>
#include <iterator>
#include <limits>

#include "util/assert.hpp"

namespace mnemo::kvstore::dynastore {

BPlusTree::BPlusTree() {
  auto leaf = std::make_unique<Leaf>();
  first_leaf_ = leaf.get();
  root_ = std::move(leaf);
}

BPlusTree::~BPlusTree() = default;

std::uint64_t BPlusTree::overhead_bytes() const noexcept {
  // Per node: header + kFanout key slots + kFanout pointers — a fixed-size
  // page model, like an on-heap B-tree with preallocated arrays.
  constexpr std::uint64_t kNodeBytes = 32 + kFanout * 8 + kFanout * 8;
  return nodes_ * kNodeBytes;
}

bool BPlusTree::insert_into(Node& node, std::uint64_t key, Record&& value,
                            std::uint32_t* depth, bool* existed,
                            SplitResult* split) {
  ++*depth;
  if (node.is_leaf) {
    auto& leaf = static_cast<Leaf&>(node);
    const std::size_t idx = lower_idx(leaf.keys, leaf.nkeys, key);
    if (idx < leaf.nkeys && leaf.keys[idx] == key) {
      leaf.values[idx] = std::move(value);
      *existed = true;
      return false;
    }
    for (std::size_t i = leaf.nkeys; i > idx; --i) leaf.keys[i] = leaf.keys[i - 1];
    leaf.keys[idx] = key;
    ++leaf.nkeys;
    leaf.values.insert(leaf.values.begin() + static_cast<std::ptrdiff_t>(idx),
                       std::move(value));
    ++size_;
    if (leaf.nkeys < kFanout) return false;

    // Split the leaf in half; right sibling joins the leaf chain.
    auto right = std::make_unique<Leaf>();
    const std::size_t half = leaf.nkeys / 2;
    right->nkeys = leaf.nkeys - static_cast<std::uint32_t>(half);
    std::copy(leaf.keys + half, leaf.keys + leaf.nkeys, right->keys);
    right->values.assign(
        std::make_move_iterator(leaf.values.begin() +
                                static_cast<std::ptrdiff_t>(half)),
        std::make_move_iterator(leaf.values.end()));
    leaf.nkeys = static_cast<std::uint32_t>(half);
    leaf.values.resize(half);
    right->next = leaf.next;
    leaf.next = right.get();
    ++nodes_;
    split->separator = right->keys[0];
    split->right = std::move(right);
    return true;
  }

  auto& internal = static_cast<Internal&>(node);
  const std::size_t child_idx = upper_idx(internal.keys, internal.nkeys, key);
  SplitResult child_split;
  if (!insert_into(*internal.children[child_idx], key, std::move(value),
                   depth, existed, &child_split)) {
    return false;
  }
  // Insert the separator at child_idx and the new right child after the
  // one that split (children count is nkeys + 1 before the bump).
  for (std::size_t i = internal.nkeys; i > child_idx; --i) {
    internal.keys[i] = internal.keys[i - 1];
  }
  internal.keys[child_idx] = child_split.separator;
  for (std::size_t i = internal.nkeys + 1; i > child_idx + 1; --i) {
    internal.children[i] = std::move(internal.children[i - 1]);
  }
  internal.children[child_idx + 1] = std::move(child_split.right);
  ++internal.nkeys;
  if (internal.nkeys + 1 <= kFanout) return false;

  // Split the internal node; the middle key moves up.
  auto right = std::make_unique<Internal>();
  const std::size_t mid = internal.nkeys / 2;
  split->separator = internal.keys[mid];
  right->nkeys = internal.nkeys - static_cast<std::uint32_t>(mid) - 1;
  std::copy(internal.keys + mid + 1, internal.keys + internal.nkeys,
            right->keys);
  for (std::size_t i = 0; i <= right->nkeys; ++i) {
    right->children[i] = std::move(internal.children[mid + 1 + i]);
  }
  internal.nkeys = static_cast<std::uint32_t>(mid);
  ++nodes_;
  split->right = std::move(right);
  return true;
}

BPlusTree::UpsertResult BPlusTree::upsert(std::uint64_t key, Record value) {
  UpsertResult result;
  SplitResult split;
  if (insert_into(*root_, key, std::move(value), &result.depth,
                  &result.existed, &split)) {
    auto new_root = std::make_unique<Internal>();
    new_root->nkeys = 1;
    new_root->keys[0] = split.separator;
    new_root->children[0] = std::move(root_);
    new_root->children[1] = std::move(split.right);
    root_ = std::move(new_root);
    ++nodes_;
    ++height_;
  }
  return result;
}

BPlusTree::EraseResult BPlusTree::erase(std::uint64_t key) {
  EraseResult result;
  Leaf* leaf = descend(key, &result.depth);
  const std::size_t idx = lower_idx(leaf->keys, leaf->nkeys, key);
  if (idx >= leaf->nkeys || leaf->keys[idx] != key) return result;
  for (std::size_t i = idx; i + 1 < leaf->nkeys; ++i) {
    leaf->keys[i] = leaf->keys[i + 1];
  }
  --leaf->nkeys;
  leaf->values.erase(leaf->values.begin() + static_cast<std::ptrdiff_t>(idx));
  --size_;
  result.erased = true;
  return result;
}

void BPlusTree::check_node(const Node& node, std::uint64_t lo,
                           std::uint64_t hi, std::uint32_t depth,
                           std::uint32_t expected_leaf_depth) const {
  MNEMO_ASSERT(std::is_sorted(node.keys, node.keys + node.nkeys));
  if (node.is_leaf) {
    const auto& leaf = static_cast<const Leaf&>(node);
    MNEMO_ASSERT(depth == expected_leaf_depth);
    MNEMO_ASSERT(leaf.nkeys == leaf.values.size());
    for (std::size_t i = 0; i < leaf.nkeys; ++i) {
      MNEMO_ASSERT(leaf.keys[i] >= lo && leaf.keys[i] < hi);
    }
    return;
  }
  const auto& internal = static_cast<const Internal&>(node);
  MNEMO_ASSERT(internal.nkeys + 1 <= kFanout);
  for (std::size_t i = 0; i <= internal.nkeys; ++i) {
    MNEMO_ASSERT(internal.children[i] != nullptr);
    const std::uint64_t child_lo = i == 0 ? lo : internal.keys[i - 1];
    const std::uint64_t child_hi =
        i == internal.nkeys ? hi : internal.keys[i];
    check_node(*internal.children[i], child_lo, child_hi, depth + 1,
               expected_leaf_depth);
  }
  // Slots past the live range must not own nodes (moved-from after split).
  for (std::size_t i = internal.nkeys + 1; i <= kFanout; ++i) {
    MNEMO_ASSERT(internal.children[i] == nullptr);
  }
}

void BPlusTree::check_invariants() const {
  check_node(*root_, 0, std::numeric_limits<std::uint64_t>::max(), 1,
             height_);
  // Leaf chain covers exactly size_ records in sorted order.
  std::size_t seen = 0;
  std::uint64_t prev = 0;
  bool first = true;
  const Leaf* leaf = first_leaf_;
  while (leaf != nullptr) {
    for (std::size_t i = 0; i < leaf->nkeys; ++i) {
      const std::uint64_t k = leaf->keys[i];
      MNEMO_ASSERT(first || k > prev);
      prev = k;
      first = false;
      ++seen;
    }
    leaf = leaf->next;
  }
  MNEMO_ASSERT(seen == size_);
}

}  // namespace mnemo::kvstore::dynastore
