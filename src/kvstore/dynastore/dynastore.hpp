#pragma once

#include "kvstore/dynastore/btree.hpp"
#include "kvstore/dynastore/journal.hpp"
#include "kvstore/kvstore.hpp"

namespace mnemo::kvstore {

/// DynamoDB-local-like store: a B+-tree index, per-item metadata blocks and
/// a write-ahead journal. Reads descend the tree (dependent pointer chases)
/// and copy the item several times (storage engine -> item cache ->
/// response); writes additionally append to the journal. This is the most
/// SlowMem-sensitive architecture in the paper's comparison (Fig 8b/9) —
/// here that emerges from its access pattern rather than a tuned constant:
/// the deepest dependent-miss chains and the highest stream amplification.
class DynaStore final : public KeyValueStore {
 public:
  DynaStore(hybridmem::HybridMemory& memory, const StoreConfig& config);
  ~DynaStore() override;

  OpResult get(std::uint64_t key) override;
  OpResult put(std::uint64_t key, std::uint64_t value_size) override;
  /// DynaStore does no key hashing (the B+-tree compares keys directly),
  /// so only the record digest is worth passing through; hinted get is the
  /// inherited delegate.
  OpResult put(std::uint64_t key, std::uint64_t value_size,
               const KeyHints& hints) override;
  OpResult erase(std::uint64_t key) override;

  [[nodiscard]] bool contains(std::uint64_t key) const override;
  [[nodiscard]] std::size_t record_count() const override {
    return tree_.size();
  }
  [[nodiscard]] std::uint64_t overhead_bytes() const override {
    return tree_.overhead_bytes() + journal_.bytes() +
           tree_.size() * kItemMetadataBytes;
  }

  [[nodiscard]] const dynastore::BPlusTree& tree() const noexcept {
    return tree_;
  }
  [[nodiscard]] const dynastore::Journal& journal() const noexcept {
    return journal_;
  }

  /// Ordered range scan (DynamoDB Query/Scan over the key range): visits
  /// up to `limit` live records with keys >= `start_key` in key order and
  /// returns their keys. The simulated cost (one tree descent plus a
  /// sequential leaf walk streaming each record) is reported through
  /// `service_ns`.
  struct ScanResult {
    std::vector<std::uint64_t> keys;
    double service_ns = 0.0;
  };
  ScanResult scan(std::uint64_t start_key, std::size_t limit);

 protected:
  Record* mutable_record(std::uint64_t key) override;

 private:
  /// Shared body of the hinted/unhinted puts; `digest` must equal
  /// util::record_digest(key, value_size) (the KeyHints contract).
  OpResult put_impl(std::uint64_t key, std::uint64_t value_size,
                    std::uint64_t digest);

  /// Per-item metadata block (version vector, TTL, attribute map header).
  static constexpr std::uint64_t kItemMetadataBytes = 256;

  dynastore::BPlusTree tree_;
  dynastore::Journal journal_;
};

}  // namespace mnemo::kvstore
