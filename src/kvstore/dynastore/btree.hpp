#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "kvstore/record.hpp"

namespace mnemo::kvstore::dynastore {

/// B+-tree index mapping 64-bit keys to records. Fan-out 64; values live
/// only in leaves; leaves are chained for ordered scans. Every operation
/// reports the descent depth, which the store converts into dependent
/// memory touches (the pointer-chasing that makes the DynamoDB-like engine
/// the most SlowMem-sensitive architecture).
///
/// Deletion is tombstone-free but lazy: keys are removed from their leaf
/// without rebalancing (underfull leaves persist). Real LSM/B-tree engines
/// defer this work to compaction; Mnemo's workloads never shrink the key
/// space, so the simplification is behaviour-neutral.
class BPlusTree {
 public:
  static constexpr std::size_t kFanout = 64;

  BPlusTree();
  ~BPlusTree();

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  struct FindResult {
    Record* record = nullptr;
    std::uint32_t depth = 0;  ///< nodes touched root -> leaf
  };
  FindResult find(std::uint64_t key);

  struct UpsertResult {
    bool existed = false;
    std::uint32_t depth = 0;
  };
  UpsertResult upsert(std::uint64_t key, Record value);

  struct EraseResult {
    bool erased = false;
    std::uint32_t depth = 0;
  };
  EraseResult erase(std::uint64_t key);

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::uint32_t height() const noexcept { return height_; }
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_; }

  /// Index bookkeeping bytes (nodes, key slots, child pointers), excluding
  /// record payloads.
  [[nodiscard]] std::uint64_t overhead_bytes() const noexcept;

  /// In-order visit of all (key, record) pairs.
  template <typename F>
  void for_each(F&& fn) const {
    const Leaf* leaf = first_leaf_;
    while (leaf != nullptr) {
      for (std::size_t i = 0; i < leaf->keys.size(); ++i) {
        fn(leaf->keys[i], leaf->values[i]);
      }
      leaf = leaf->next;
    }
  }

  /// In-order visit starting at the first key >= `start`. The visitor
  /// returns false to stop. Backs DynaStore's range scans.
  template <typename F>
  void for_each_from(std::uint64_t start, F&& fn) const {
    std::uint32_t depth = 0;
    const Leaf* leaf = descend(start, &depth);
    while (leaf != nullptr) {
      for (std::size_t i = 0; i < leaf->keys.size(); ++i) {
        if (leaf->keys[i] < start) continue;
        if (!fn(leaf->keys[i], leaf->values[i])) return;
      }
      leaf = leaf->next;
    }
  }

  /// Verify B+-tree invariants (ordering, fan-out bounds, leaf chain);
  /// aborts on violation. Exposed for property tests.
  void check_invariants() const;

 private:
  struct Node;
  struct Internal;
  struct Leaf;

  struct Node {
    bool is_leaf;
    explicit Node(bool leaf) : is_leaf(leaf) {}
    virtual ~Node() = default;
  };

  struct Internal final : Node {
    Internal() : Node(false) {}
    // children.size() == keys.size() + 1; subtree i holds keys < keys[i].
    std::vector<std::uint64_t> keys;
    std::vector<std::unique_ptr<Node>> children;
  };

  struct Leaf final : Node {
    Leaf() : Node(true) {}
    std::vector<std::uint64_t> keys;
    std::vector<Record> values;
    Leaf* next = nullptr;
  };

  struct SplitResult {
    std::uint64_t separator = 0;
    std::unique_ptr<Node> right;
  };

  Leaf* descend(std::uint64_t key, std::uint32_t* depth) const;
  bool insert_into(Node& node, std::uint64_t key, Record&& value,
                   std::uint32_t* depth, bool* existed, SplitResult* split);
  void check_node(const Node& node, std::uint64_t lo, std::uint64_t hi,
                  std::uint32_t depth, std::uint32_t expected_leaf_depth) const;

  std::unique_ptr<Node> root_;
  Leaf* first_leaf_ = nullptr;
  std::size_t size_ = 0;
  std::size_t nodes_ = 1;
  std::uint32_t height_ = 1;
};

}  // namespace mnemo::kvstore::dynastore
