#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "kvstore/record.hpp"

namespace mnemo::kvstore::dynastore {

/// B+-tree index mapping 64-bit keys to records. Fan-out 64; values live
/// only in leaves; leaves are chained for ordered scans. Every operation
/// reports the descent depth, which the store converts into dependent
/// memory touches (the pointer-chasing that makes the DynamoDB-like engine
/// the most SlowMem-sensitive architecture).
///
/// Keys and child pointers live inline in the node (fixed-capacity arrays,
/// not separately allocated vectors), so a descent's binary search touches
/// only the node's own cache lines — one dependent load per level instead
/// of three (DESIGN.md §8). Splits, ordering, and reported depths are
/// identical to the vector-backed layout this replaces.
///
/// Deletion is tombstone-free but lazy: keys are removed from their leaf
/// without rebalancing (underfull leaves persist). Real LSM/B-tree engines
/// defer this work to compaction; Mnemo's workloads never shrink the key
/// space, so the simplification is behaviour-neutral.
class BPlusTree {
 public:
  static constexpr std::size_t kFanout = 64;

  BPlusTree();
  ~BPlusTree();

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  struct FindResult {
    Record* record = nullptr;
    std::uint32_t depth = 0;  ///< nodes touched root -> leaf
  };
  /// Defined inline: every DynaStore GET descends here (DESIGN.md §8).
  FindResult find(std::uint64_t key) {
    FindResult result;
    Leaf* leaf = descend(key, &result.depth);
    const std::size_t idx = lower_idx(leaf->keys, leaf->nkeys, key);
    if (idx < leaf->nkeys && leaf->keys[idx] == key) {
      result.record = &leaf->values[idx];
    }
    return result;
  }

  struct UpsertResult {
    bool existed = false;
    std::uint32_t depth = 0;
  };
  UpsertResult upsert(std::uint64_t key, Record value);

  struct EraseResult {
    bool erased = false;
    std::uint32_t depth = 0;
  };
  EraseResult erase(std::uint64_t key);

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::uint32_t height() const noexcept { return height_; }
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_; }

  /// Index bookkeeping bytes (nodes, key slots, child pointers), excluding
  /// record payloads.
  [[nodiscard]] std::uint64_t overhead_bytes() const noexcept;

  /// In-order visit of all (key, record) pairs.
  template <typename F>
  void for_each(F&& fn) const {
    const Leaf* leaf = first_leaf_;
    while (leaf != nullptr) {
      for (std::size_t i = 0; i < leaf->nkeys; ++i) {
        fn(leaf->keys[i], leaf->values[i]);
      }
      leaf = leaf->next;
    }
  }

  /// In-order visit starting at the first key >= `start`. The visitor
  /// returns false to stop. Backs DynaStore's range scans.
  template <typename F>
  void for_each_from(std::uint64_t start, F&& fn) const {
    std::uint32_t depth = 0;
    const Leaf* leaf = descend(start, &depth);
    while (leaf != nullptr) {
      for (std::size_t i = 0; i < leaf->nkeys; ++i) {
        if (leaf->keys[i] < start) continue;
        if (!fn(leaf->keys[i], leaf->values[i])) return;
      }
      leaf = leaf->next;
    }
  }

  /// Verify B+-tree invariants (ordering, fan-out bounds, leaf chain);
  /// aborts on violation. Exposed for property tests.
  void check_invariants() const;

 private:
  struct Node;
  struct Internal;
  struct Leaf;

  struct Node {
    bool is_leaf;
    /// Keys in use: keys[0, nkeys) sorted. Leaves hold up to kFanout keys
    /// (split at kFanout); internals up to kFanout - 1 in steady state
    /// (kFanout transiently, just before their split).
    std::uint32_t nkeys = 0;
    std::uint64_t keys[kFanout];
    explicit Node(bool leaf) : is_leaf(leaf) {}
    virtual ~Node() = default;
  };

  struct Internal final : Node {
    Internal() : Node(false) {}
    // children[0, nkeys]; subtree i holds keys < keys[i]. One spare slot
    // for the transient pre-split state (kFanout + 1 children).
    std::unique_ptr<Node> children[kFanout + 1];
  };

  struct Leaf final : Node {
    Leaf() : Node(true) {}
    std::vector<Record> values;  ///< values[i] belongs to keys[i]
    Leaf* next = nullptr;
  };

  struct SplitResult {
    std::uint64_t separator = 0;
    std::unique_ptr<Node> right;
  };

  /// Key searches returning the std::lower_bound / std::upper_bound index.
  /// The search strategy is unobservable (reported depth counts nodes, not
  /// comparisons), so it is chosen for cache behaviour: a branchless linear
  /// count touches the key array's cache lines in order (hardware-
  /// prefetchable, auto-vectorizable), where a binary search costs ~3
  /// dependent line misses on a cold 512-byte array. On random descents
  /// most nodes ARE cold, so the scan wins at every level (DESIGN.md §8).
  [[nodiscard]] static std::size_t lower_idx(const std::uint64_t* a,
                                             std::size_t n,
                                             std::uint64_t key) {
    std::size_t idx = 0;
    for (std::size_t i = 0; i < n; ++i) idx += a[i] < key ? 1 : 0;
    return idx;
  }
  [[nodiscard]] static std::size_t upper_idx(const std::uint64_t* a,
                                             std::size_t n,
                                             std::uint64_t key) {
    std::size_t idx = 0;
    for (std::size_t i = 0; i < n; ++i) idx += a[i] <= key ? 1 : 0;
    return idx;
  }

  Leaf* descend(std::uint64_t key, std::uint32_t* depth) const {
    Node* node = root_.get();
    std::uint32_t d = 1;
    while (!node->is_leaf) {
      auto& internal = static_cast<Internal&>(*node);
      node = internal.children[upper_idx(internal.keys, internal.nkeys, key)]
                 .get();
      ++d;
    }
    if (depth != nullptr) *depth = d;
    return static_cast<Leaf*>(node);
  }

  bool insert_into(Node& node, std::uint64_t key, Record&& value,
                   std::uint32_t* depth, bool* existed, SplitResult* split);
  void check_node(const Node& node, std::uint64_t lo, std::uint64_t hi,
                  std::uint32_t depth, std::uint32_t expected_leaf_depth) const;

  std::unique_ptr<Node> root_;
  Leaf* first_leaf_ = nullptr;
  std::size_t size_ = 0;
  std::size_t nodes_ = 1;
  std::uint32_t height_ = 1;
};

}  // namespace mnemo::kvstore::dynastore
