#pragma once

#include <cstdint>

namespace mnemo::kvstore::dynastore {

/// Write-ahead journal model: every mutation appends a header + payload to
/// the active segment; full segments seal and a background checkpoint
/// reclaims sealed segments once the journal passes a size threshold. The
/// journal's live bytes count toward the store's node-side overhead —
/// write amplification made visible to the capacity model.
class Journal {
 public:
  static constexpr std::uint64_t kRecordHeader = 32;
  static constexpr std::uint64_t kSegmentBytes = 4ULL << 20;   // 4 MiB
  static constexpr std::uint64_t kCheckpointAt = 64ULL << 20;  // 64 MiB

  struct AppendResult {
    std::uint64_t appended_bytes = 0;
    bool sealed_segment = false;  ///< this append sealed a segment
    bool checkpointed = false;    ///< this append triggered a checkpoint
  };

  /// Log one mutation of `payload_bytes`.
  AppendResult append(std::uint64_t key, std::uint64_t payload_bytes);

  /// Live journal bytes (active + sealed, uncheckpointed segments).
  [[nodiscard]] std::uint64_t bytes() const noexcept { return live_bytes_; }
  [[nodiscard]] std::uint64_t segments() const noexcept {
    return sealed_segments_ + 1;
  }
  [[nodiscard]] std::uint64_t appends() const noexcept { return appends_; }
  [[nodiscard]] std::uint64_t checkpoints() const noexcept {
    return checkpoints_;
  }
  [[nodiscard]] std::uint64_t lifetime_bytes() const noexcept {
    return lifetime_bytes_;
  }

 private:
  std::uint64_t active_fill_ = 0;
  std::uint64_t sealed_segments_ = 0;
  std::uint64_t live_bytes_ = 0;
  std::uint64_t lifetime_bytes_ = 0;
  std::uint64_t appends_ = 0;
  std::uint64_t checkpoints_ = 0;
};

}  // namespace mnemo::kvstore::dynastore
