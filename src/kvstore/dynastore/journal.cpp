#include "kvstore/dynastore/journal.hpp"

namespace mnemo::kvstore::dynastore {

Journal::AppendResult Journal::append(std::uint64_t /*key*/,
                                      std::uint64_t payload_bytes) {
  AppendResult result;
  result.appended_bytes = kRecordHeader + payload_bytes;
  active_fill_ += result.appended_bytes;
  live_bytes_ += result.appended_bytes;
  lifetime_bytes_ += result.appended_bytes;
  ++appends_;

  while (active_fill_ >= kSegmentBytes) {
    active_fill_ -= kSegmentBytes;
    ++sealed_segments_;
    result.sealed_segment = true;
  }
  if (live_bytes_ >= kCheckpointAt) {
    // Checkpoint reclaims all sealed segments; only the active tail stays.
    live_bytes_ = active_fill_;
    sealed_segments_ = 0;
    ++checkpoints_;
    result.checkpointed = true;
  }
  return result;
}

}  // namespace mnemo::kvstore::dynastore
