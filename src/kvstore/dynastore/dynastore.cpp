#include "kvstore/dynastore/dynastore.hpp"

#include "util/assert.hpp"

namespace mnemo::kvstore {

using hybridmem::MemOp;

DynaStore::DynaStore(hybridmem::HybridMemory& memory,
                     const StoreConfig& config)
    : KeyValueStore(memory, config, StoreKind::kDynaStore) {}

DynaStore::~DynaStore() {
  tree_.for_each([this](std::uint64_t key, const Record& /*rec*/) {
    memory().remove(key);
  });
}

Record* DynaStore::mutable_record(std::uint64_t key) {
  return tree_.find(key).record;
}

DynaStore::ScanResult DynaStore::scan(std::uint64_t start_key,
                                      std::size_t limit) {
  ScanResult result;
  const auto probe = tree_.find(start_key);
  const std::uint32_t hot = probe.depth > 1 ? probe.depth - 1 : 0;
  double ns = profile().cpu_read_ns + index_walk_ns(hot, 1);
  tree_.for_each_from(start_key, [&](std::uint64_t key, const Record& rec) {
    if (result.keys.size() >= limit) return false;
    if (rec.expired(now_ns())) return true;  // skip dead items
    result.keys.push_back(key);
    // Sequential leaf walk: each item streams its payload once, without
    // the dependent-descent latency of point gets.
    const auto access =
        payload_access(key, rec.size, hybridmem::MemOp::kRead);
    ns += access.ns + profile().cpu_per_probe_ns;
    return true;
  });
  const OpResult finalized = finalize(true, ns, false);
  result.service_ns = finalized.service_ns;
  ++stats_.gets;
  if (!result.keys.empty()) {
    ++stats_.hits;
  } else {
    ++stats_.misses;
  }
  return result;
}

OpResult DynaStore::get(std::uint64_t key) {
  ++stats_.gets;
  auto found = tree_.find(key);
  // Upper tree levels stay hot in cache; the leaf and the per-item
  // metadata block are dependent misses on the data's node.
  const std::uint32_t hot = found.depth > 1 ? found.depth - 1 : 0;
  double ns = profile().cpu_read_ns + index_walk_ns(hot, 2);
  if (found.record == nullptr) {
    ++stats_.misses;
    return finalize(false, ns, false);
  }
  if (check_expired(*found.record)) {
    // DynamoDB TTL semantics: expired items vanish from reads; the
    // background sweeper reclaims them (here: immediately).
    (void)tree_.erase(key);
    journal_.append(key, 0);
    memory().remove(key);
    sync_overhead_accounting(overhead_bytes());
    ++stats_.misses;
    return finalize(false, ns, false);
  }
  ++stats_.hits;
  if (found.record->stored()) {
    MNEMO_ASSERT(checksum_bytes(found.record->bytes) ==
                 found.record->checksum);
  }
  const auto access = payload_access(key, found.record->size, MemOp::kRead);
  ns += access.ns;
  return finalize(true, ns, access.llc_hit);
}

OpResult DynaStore::put(std::uint64_t key, std::uint64_t value_size) {
  return put_impl(key, value_size, util::record_digest(key, value_size));
}

OpResult DynaStore::put(std::uint64_t key, std::uint64_t value_size,
                        const KeyHints& hints) {
  return put_impl(key, value_size, hints.digest);
}

OpResult DynaStore::put_impl(std::uint64_t key, std::uint64_t value_size,
                             std::uint64_t digest) {
  ++stats_.puts;
  Record rec = make_record(key, value_size, payload_mode(), digest);

  // 1. Journal append (WAL discipline: log before applying).
  const auto logged = journal_.append(key, value_size);
  (void)logged;

  // 2. Apply to the tree.
  const auto up = tree_.upsert(key, std::move(rec));
  const std::uint32_t hot = up.depth > 1 ? up.depth - 1 : 0;
  double ns = profile().cpu_write_ns + index_walk_ns(hot, 3);

  // 3. Capacity accounting for the record payload.
  if (up.existed) {
    if (!memory().resize(key, value_size)) {
      return finalize(false, ns, false);
    }
  } else if (!memory().place(key, value_size, node())) {
    (void)tree_.erase(key);
    return finalize(false, ns, false);
  }
  sync_overhead_accounting(overhead_bytes());

  const auto access = payload_access(key, value_size, MemOp::kWrite);
  ns += access.ns;
  return finalize(true, ns, access.llc_hit);
}

OpResult DynaStore::erase(std::uint64_t key) {
  ++stats_.erases;
  const auto er = tree_.erase(key);
  const std::uint32_t hot = er.depth > 1 ? er.depth - 1 : 0;
  double ns = profile().cpu_write_ns + index_walk_ns(hot, 2);
  if (!er.erased) return finalize(false, ns, false);
  journal_.append(key, 0);  // deletion marker
  memory().remove(key);
  sync_overhead_accounting(overhead_bytes());
  return finalize(true, ns, false);
}

bool DynaStore::contains(std::uint64_t key) const {
  bool found = false;
  tree_.for_each([&](std::uint64_t k, const Record&) {
    if (k == key) found = true;
  });
  return found;
}

}  // namespace mnemo::kvstore
