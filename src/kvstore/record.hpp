#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mnemo::kvstore {

/// Whether stores keep actual payload bytes or only their size + checksum.
/// All performance numbers come from the simulated clock, so both modes
/// produce identical results; kSynthetic avoids multi-GB memcpy wall-clock
/// during large sweeps (see DESIGN.md "Payloads").
enum class PayloadMode : std::uint8_t { kStored = 0, kSynthetic = 1 };

/// A stored value. In kStored mode `bytes` holds the payload; in kSynthetic
/// mode it is empty and only `size`/`checksum` are kept.
struct Record {
  std::uint64_t size = 0;
  std::uint64_t checksum = 0;
  /// Absolute expiry on the owning store's simulated clock; 0 = never.
  /// (All three paper stores support per-item TTLs: Redis EXPIRE,
  /// Memcached exptime, DynamoDB TTL attributes.)
  double expires_at_ns = 0.0;
  std::vector<std::byte> bytes;

  [[nodiscard]] bool stored() const noexcept { return !bytes.empty(); }
  [[nodiscard]] bool expired(double now_ns) const noexcept {
    return expires_at_ns > 0.0 && now_ns >= expires_at_ns;
  }
};

/// Deterministically generate the canonical payload for (key, size): a
/// repeatable byte pattern whose checksum get() can verify end-to-end.
Record make_record(std::uint64_t key, std::uint64_t size, PayloadMode mode);

/// make_record with the util::record_digest(key, size) value already in
/// hand — the campaign-invariant generator seed workload::CompiledTrace
/// precomputes once per key. Produces bit-identical records to the
/// three-argument form; passing a digest that is not record_digest(key,
/// size) is a contract violation.
Record make_record(std::uint64_t key, std::uint64_t size, PayloadMode mode,
                   std::uint64_t digest);

/// The checksum make_record would produce for (key, size) — lets synthetic
/// mode verify integrity without materializing bytes.
std::uint64_t expected_checksum(std::uint64_t key, std::uint64_t size);

/// FNV-1a over a byte buffer.
std::uint64_t checksum_bytes(const std::vector<std::byte>& bytes);

}  // namespace mnemo::kvstore
