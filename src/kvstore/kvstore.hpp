#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <memory_resource>
#include <string>

#include "hybridmem/hybrid_memory.hpp"
#include "kvstore/record.hpp"
#include "kvstore/service_profile.hpp"
#include "util/rng.hpp"

namespace mnemo::kvstore {

/// Result of one store operation. `service_ns` is the simulated end-to-end
/// service time of the request (CPU + memory + jitter). `fault` reports an
/// injected memory fault the operation absorbed: kTransient with ok ==
/// false means the read exhausted its retries; kPoisoned means the payload
/// lives on a poisoned SlowMem line and must be remapped by the caller.
struct OpResult {
  bool ok = false;
  double service_ns = 0.0;
  bool llc_hit = false;
  hybridmem::FaultKind fault = hybridmem::FaultKind::kNone;
};

/// Lifetime operation counters for one store instance.
struct StoreStats {
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;
  std::uint64_t erases = 0;
  std::uint64_t hits = 0;       ///< gets that found the key
  std::uint64_t misses = 0;     ///< gets that did not
  std::uint64_t evictions = 0;  ///< records dropped for capacity (Cachet)
  std::uint64_t expirations = 0;  ///< records lazily reclaimed past TTL
  double busy_ns = 0.0;         ///< total simulated service time

  [[nodiscard]] std::uint64_t ops() const noexcept {
    return gets + puts + erases;
  }
};

/// Construction-time options shared by all store architectures.
struct StoreConfig {
  hybridmem::NodeId node = hybridmem::NodeId::kFast;
  PayloadMode payload_mode = PayloadMode::kSynthetic;
  std::uint64_t seed = 0x5706e;
  /// Override the architecture's calibrated profile (tests/ablations).
  const ServiceProfile* profile_override = nullptr;
  /// Disable service-time jitter and tail spikes (ablation).
  bool deterministic_service = false;
  /// Optional backing for the store's internal flat tables (slot pools,
  /// bucket arrays, access stamps): a campaign cell's arena when one is
  /// plumbed through (DESIGN.md §12), the default heap when null. Not
  /// owned; must outlive the store.
  std::pmr::memory_resource* table_memory = nullptr;
};

/// Campaign-invariant per-key values a caller may precompute once and
/// replay into every cell (workload::CompiledTrace, DESIGN.md §12). The
/// values MUST equal what the store would compute itself — they are an
/// optimization contract, not an override: `hash` is util::mix64(key)
/// (the bucket hash of both chained tables) and `digest` is
/// util::record_digest(key, size) (the payload-generator seed). Probe
/// counts, chain order and rehash schedule are therefore untouched.
struct KeyHints {
  std::uint64_t hash = 0;
  std::uint64_t digest = 0;
};

/// The stochastic service-time tail every operation passes through
/// (KeyValueStore::finalize): multiplicative gaussian jitter with a floor,
/// plus an occasional tail spike. A standalone value type so the
/// lane-fused replay (core::LaneBand, DESIGN.md §14) can advance a repeat
/// sibling's noise stream over a recorded deterministic skeleton with the
/// exact arithmetic and rng consumption of a full replay.
class ServiceNoise {
 public:
  ServiceNoise(const ServiceProfile& profile, bool deterministic,
               std::uint64_t seed)
      : jitter_sigma_(profile.jitter_sigma),
        tail_spike_prob_(profile.tail_spike_prob),
        tail_spike_mult_(profile.tail_spike_mult),
        deterministic_(deterministic),
        rng_(seed) {}

  /// The noise stream of one server instance: the same profile resolution
  /// and rng seeding KeyValueStore's constructor performs.
  [[nodiscard]] static ServiceNoise for_instance(const StoreConfig& config,
                                                 StoreKind kind) {
    return ServiceNoise(config.profile_override ? *config.profile_override
                                                : default_profile(kind),
                        config.deterministic_service,
                        config.seed ^ (static_cast<std::uint64_t>(kind) << 56));
  }

  /// Scale one operation's deterministic service time by the next noise
  /// draw. Every call consumes exactly the rng sequence one served
  /// operation would, so an independent replica of the same
  /// (profile, seed) stream stays in lockstep with a live instance.
  double apply(double ns) {
    if (deterministic_) return ns;
    const double z = rng_.gaussian();
    double factor = 1.0 + jitter_sigma_ * z;
    factor = std::max(0.5, factor);
    if (tail_spike_prob_ > 0.0 && rng_.next_double() < tail_spike_prob_) {
      factor *= tail_spike_mult_;
    }
    return ns * factor;
  }

 private:
  double jitter_sigma_;
  double tail_spike_prob_;
  double tail_spike_mult_;
  bool deterministic_;
  util::Rng rng_;
};

/// Abstract in-memory key-value store bound to one memory node of the
/// hybrid system — the analogue of the paper's `numactl`-pinned server
/// process. Keys are dense 64-bit IDs; values carry an explicit size.
///
/// Every operation returns its simulated service time; the store never
/// consults the wall clock.
class KeyValueStore {
 public:
  KeyValueStore(hybridmem::HybridMemory& memory, const StoreConfig& config,
                StoreKind kind);
  virtual ~KeyValueStore();

  KeyValueStore(const KeyValueStore&) = delete;
  KeyValueStore& operator=(const KeyValueStore&) = delete;

  /// Fetch the value for `key`. ok == false if absent. In kStored mode the
  /// payload checksum is verified end-to-end.
  virtual OpResult get(std::uint64_t key) = 0;

  /// Insert or update `key` with a `value_size`-byte value.
  /// ok == false if the node lacks capacity and nothing could be evicted.
  virtual OpResult put(std::uint64_t key, std::uint64_t value_size) = 0;

  /// Hinted variants: behaviour is bit-identical to get/put — the hints
  /// carry values the store would otherwise recompute per operation
  /// (KeyHints contract above). Architectures that can use them override;
  /// the defaults ignore the hints and delegate.
  virtual OpResult get(std::uint64_t key, const KeyHints& /*hints*/) {
    return get(key);
  }
  virtual OpResult put(std::uint64_t key, std::uint64_t value_size,
                       const KeyHints& /*hints*/) {
    return put(key, value_size);
  }

  /// Pre-size internal tables for `keys` dense keys so populate/replay
  /// avoid growth reallocations. Purely an allocation hint: observable
  /// bucket/rehash schedules are never pre-sized (their growth is part of
  /// the modelled overhead accounting). Default: no-op.
  virtual void reserve_keys(std::size_t /*keys*/) {}

  /// put() with a time-to-live on the store's simulated clock (now() +
  /// ttl_ns). Expired keys are lazily reclaimed by the next get().
  OpResult put_ttl(std::uint64_t key, std::uint64_t value_size,
                   double ttl_ns);

  /// Delete `key`. ok == false if absent.
  virtual OpResult erase(std::uint64_t key) = 0;

  [[nodiscard]] virtual bool contains(std::uint64_t key) const = 0;
  [[nodiscard]] virtual std::size_t record_count() const = 0;

  /// Bytes of index/metadata overhead this engine currently maintains (in
  /// addition to record payloads) — registered against the node.
  [[nodiscard]] virtual std::uint64_t overhead_bytes() const = 0;

  [[nodiscard]] StoreKind kind() const noexcept { return kind_; }
  [[nodiscard]] std::string_view name() const { return to_string(kind_); }
  [[nodiscard]] hybridmem::NodeId node() const noexcept {
    return config_.node;
  }
  [[nodiscard]] const StoreStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const ServiceProfile& profile() const noexcept {
    return profile_;
  }
  [[nodiscard]] hybridmem::HybridMemory& memory() noexcept { return memory_; }
  [[nodiscard]] PayloadMode payload_mode() const noexcept {
    return config_.payload_mode;
  }

  /// The store's simulated clock: total service time it has performed.
  /// TTLs are expressed against this (single-threaded server semantics:
  /// time advances as requests are served).
  [[nodiscard]] double now_ns() const noexcept { return stats_.busy_ns; }

  /// Skeleton tap for the lane-fused replay (core::LaneBand, DESIGN.md
  /// §14): while armed, finalize() records each operation's deterministic
  /// pre-noise service time through `cursor` before applying noise. The
  /// cursor is shared across both DualServer instances so the writes land
  /// in op order. Arm only on a fault-free deployment after populate;
  /// pass nullptr to disarm. Purely observational — results, rng streams
  /// and statistics are untouched.
  void set_skeleton_tap(double** cursor) noexcept { skeleton_tap_ = cursor; }

 protected:
  /// Apply jitter/tail noise, account busy time, and stamp the result.
  /// Defined inline: it closes every operation on the replay hot path.
  OpResult finalize(bool ok, double ns, bool llc_hit) {
    const hybridmem::FaultKind fault = pending_fault_;
    // A read whose transient retries exhausted never delivered the data:
    // the operation fails regardless of what the store layer concluded.
    if (pending_failed_) ok = false;
    pending_fault_ = hybridmem::FaultKind::kNone;
    pending_failed_ = false;
    if (skeleton_tap_ != nullptr) *(*skeleton_tap_)++ = ns;
    // Multiplicative noise: the request-to-request variability a real
    // client observes. The rng stream advances identically regardless of
    // data placement, so measured-vs-estimated differences reflect model
    // error, not divergent random sequences.
    ns = noise_.apply(ns);
    stats_.busy_ns += ns;
    return OpResult{ok, ns, llc_hit, fault};
  }

  /// Access to the stored record for TTL stamping; nullptr if absent.
  /// Implementations may advance internal maintenance state (incremental
  /// rehash etc.), mirroring a real lookup.
  virtual Record* mutable_record(std::uint64_t key) = 0;

  /// True (and counts the expiration) if `rec` is past its TTL at the
  /// store's current clock — callers then drop the record and miss.
  bool check_expired(const Record& rec) {
    if (!rec.expired(now_ns())) return false;
    ++stats_.expirations;
    return true;
  }

  /// Price an index walk: `hot_probes` structure touches expected to be
  /// cache resident (upper tree levels, hot buckets) plus `cold_probes`
  /// dependent misses paid at node latency x the profile's sensitivity.
  [[nodiscard]] double index_walk_ns(std::uint32_t hot_probes,
                                     std::uint32_t cold_probes) const {
    const auto& prof = memory_.profile();
    const double hot = static_cast<double>(hot_probes) * prof.llc_latency_ns;
    const double cold = static_cast<double>(cold_probes) *
                        memory_.node(config_.node).spec().latency_ns *
                        profile_.latency_sensitivity;
    const double cpu = static_cast<double>(hot_probes + cold_probes) *
                       profile_.cpu_per_probe_ns;
    return hot + cold + cpu;
  }

  /// Price the payload movement of a GET/PUT against the hybrid memory
  /// (LLC-aware), applying the profile's amplification/overlap/discount.
  /// Defined inline: one call per GET/PUT on the replay hot path.
  hybridmem::AccessResult payload_access(std::uint64_t key,
                                         std::uint64_t bytes,
                                         hybridmem::MemOp op) {
    const double amp = op == hybridmem::MemOp::kRead
                           ? profile_.read_stream_amplification
                           : profile_.write_stream_amplification;
    hybridmem::AccessTraits traits;
    traits.latency_touches = 1;
    traits.streamed_bytes =
        static_cast<std::uint64_t>(static_cast<double>(bytes) * amp);
    traits.latency_sensitivity = profile_.latency_sensitivity;
    traits.bandwidth_overlap = profile_.bandwidth_overlap;
    traits.write_discount = profile_.write_discount;
    const hybridmem::AccessResult access = memory_.access(key, op, traits);
    pending_fault_ = std::max(pending_fault_, access.fault);
    pending_failed_ = pending_failed_ || access.failed;
    return access;
  }

  /// Keep the node-side accounting of index/journal overhead in sync.
  /// `overhead_object_id` must be unique per store instance.
  void sync_overhead_accounting(std::uint64_t new_bytes);

  [[nodiscard]] std::uint64_t overhead_object_id() const noexcept {
    return overhead_object_id_;
  }

  StoreStats stats_;

 private:
  hybridmem::HybridMemory& memory_;
  StoreConfig config_;
  StoreKind kind_;
  ServiceProfile profile_;
  ServiceNoise noise_;
  double** skeleton_tap_ = nullptr;
  std::uint64_t overhead_object_id_;
  std::uint64_t accounted_overhead_ = 0;
  /// Fault absorbed by payload_access since the last finalize (sticky,
  /// worst-wins) — lets finalize stamp the OpResult without every store
  /// architecture threading fault state through its own paths.
  hybridmem::FaultKind pending_fault_ = hybridmem::FaultKind::kNone;
  bool pending_failed_ = false;
};

}  // namespace mnemo::kvstore
