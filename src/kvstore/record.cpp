#include "kvstore/record.hpp"

#include "util/rng.hpp"

namespace mnemo::kvstore {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

}  // namespace

std::uint64_t checksum_bytes(const std::vector<std::byte>& bytes) {
  std::uint64_t h = kFnvOffset;
  for (const std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t expected_checksum(std::uint64_t key, std::uint64_t size) {
  // Must match the pattern emitted by make_record in kStored mode: we use
  // a closed form over the generator stream rather than materializing it.
  std::uint64_t h = kFnvOffset;
  std::uint64_t state = util::record_digest(key, size);
  for (std::uint64_t i = 0; i < size; ++i) {
    if (i % 8 == 0) state = util::mix64(state + 1);
    const auto byte = static_cast<std::uint64_t>((state >> ((i % 8) * 8)) &
                                                 0xff);
    h ^= byte;
    h *= kFnvPrime;
  }
  return h;
}

Record make_record(std::uint64_t key, std::uint64_t size, PayloadMode mode) {
  return make_record(key, size, mode, util::record_digest(key, size));
}

Record make_record(std::uint64_t /*key*/, std::uint64_t size,
                   PayloadMode mode, std::uint64_t digest) {
  // Contract (not re-checked here — recomputing the digest per call is
  // exactly the work the caller hoisted): digest == record_digest(key,
  // size). The golden bit-identity suite pins the consequence.
  Record r;
  r.size = size;
  if (mode == PayloadMode::kSynthetic) {
    // Cheap stand-in checksum; integrity in synthetic mode is validated by
    // size+identity, not content. Avoids the O(size) walk per op.
    r.checksum = digest;
    return r;
  }
  r.bytes.resize(size);
  std::uint64_t state = digest;
  for (std::uint64_t i = 0; i < size; ++i) {
    if (i % 8 == 0) state = util::mix64(state + 1);
    r.bytes[i] = static_cast<std::byte>((state >> ((i % 8) * 8)) & 0xff);
  }
  r.checksum = checksum_bytes(r.bytes);
  return r;
}

}  // namespace mnemo::kvstore
