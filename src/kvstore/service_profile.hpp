#pragma once

#include <cstdint>
#include <string_view>

#include "hybridmem/access.hpp"

namespace mnemo::kvstore {

/// The three store architectures evaluated by the paper, as open-source
/// analogues (see DESIGN.md §1 for the mapping rationale):
///   kVermilion — Redis-like single-threaded event-loop store
///   kCachet    — Memcached-like slab/LRU store with overlapped transfers
///   kDynaStore — DynamoDB-local-like B+-tree + journal store
enum class StoreKind : std::uint8_t { kVermilion = 0, kCachet = 1, kDynaStore = 2 };

std::string_view to_string(StoreKind kind);
std::string_view paper_analogue(StoreKind kind);  ///< "Redis" etc.

/// Per-architecture service-time model. The CPU terms cover everything the
/// paper's end-to-end client measurement folds into a request that is *not*
/// memory technology dependent: server event loop, request parsing, client
/// library, loopback RPC. The memory terms parameterize how the engine's
/// access pattern exposes it to node latency/bandwidth (see DESIGN.md §3).
///
/// Values are calibrated so the emulated FastMem/SlowMem throughput gap per
/// store matches the paper's observations (Redis ≈ 1.4x, Memcached ≈
/// flat, DynamoDB severely impacted) — the calibration targets are recorded
/// next to the numbers in service_profile.cpp.
struct ServiceProfile {
  double cpu_read_ns = 0.0;    ///< fixed non-memory cost of a GET
  double cpu_write_ns = 0.0;   ///< fixed non-memory cost of a PUT/UPDATE
  double cpu_per_probe_ns = 0.0;  ///< CPU per internal index probe

  /// Multiplier on node latency for dependent index touches.
  double latency_sensitivity = 1.0;
  /// Fraction of payload stream time hidden behind CPU/prefetch.
  double bandwidth_overlap = 0.0;
  /// Fraction of nominal cost writes actually pay (write combining).
  double write_discount = 1.0;
  /// How many times a payload is effectively streamed per GET (server read
  /// + response assembly) and per PUT.
  double read_stream_amplification = 1.0;
  double write_stream_amplification = 1.0;

  /// Deterministic service-time noise: relative sigma of multiplicative
  /// jitter, plus occasional tail spikes (GC pause, slab rebalance, ...).
  double jitter_sigma = 0.02;
  double tail_spike_prob = 0.0;
  double tail_spike_mult = 1.0;
};

/// The calibrated profile for each architecture.
const ServiceProfile& default_profile(StoreKind kind);

}  // namespace mnemo::kvstore
