#include "kvstore/factory.hpp"

#include "kvstore/cachet/cachet.hpp"
#include "kvstore/dynastore/dynastore.hpp"
#include "kvstore/vermilion/vermilion.hpp"
#include "util/assert.hpp"

namespace mnemo::kvstore {

std::unique_ptr<KeyValueStore> make_store(StoreKind kind,
                                          hybridmem::HybridMemory& memory,
                                          const StoreConfig& config) {
  switch (kind) {
    case StoreKind::kVermilion:
      return std::make_unique<Vermilion>(memory, config);
    case StoreKind::kCachet:
      return std::make_unique<Cachet>(memory, config);
    case StoreKind::kDynaStore:
      return std::make_unique<DynaStore>(memory, config);
  }
  MNEMO_ASSERT(false);
  return nullptr;
}

}  // namespace mnemo::kvstore
