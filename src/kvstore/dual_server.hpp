#pragma once

#include <memory>
#include <span>

#include "hybridmem/placement.hpp"
#include "kvstore/factory.hpp"
#include "util/assert.hpp"
#include "util/status.hpp"
#include "workload/trace.hpp"

namespace mnemo::workload {
class CompiledTrace;
}

namespace mnemo::kvstore {

/// The paper's two-server deployment: one server instance pinned to
/// FastMem, one to SlowMem, both the same architecture, sharing the
/// platform (one HybridMemory, hence one LLC). This is the analogue of the
/// paper's modified YCSB core that "redirects requests across the two
/// server instances" according to the key placement.
class DualServer {
 public:
  /// Seed perturbation applied to the SlowMem instance's StoreConfig so
  /// the two instances draw distinct jitter streams, like two independent
  /// processes. Public so skeleton replay (core::LaneBand, DESIGN.md §14)
  /// can reproduce an instance's noise stream without building the store.
  static constexpr std::uint64_t kSlowSeedMix = 0x510'3141ULL;

  DualServer(hybridmem::HybridMemory& memory, StoreKind kind,
             const StoreConfig& base_config);

  /// Load every key of the trace into the server its placement names.
  /// Population happens in key order (the paper's load phase). On capacity
  /// failure the typed error carries the offending key, the bytes it
  /// needed, and the node's remaining capacity; keys already loaded stay
  /// loaded (the caller owns the deployment's lifetime).
  ///
  /// The trace must outlive this DualServer: key sizes are viewed through
  /// a span over the trace's own table, not deep-copied (every campaign
  /// cell replays the same shared trace — copying its per-key size table
  /// per cell was pure overhead).
  [[nodiscard]] util::Status populate(const workload::Trace& trace,
                                      const hybridmem::Placement& placement);

  /// Compiled-campaign populate (DESIGN.md §12): same key order, same
  /// routing, same typed errors as the Trace overload — but the per-key
  /// hash/digest come precomputed from the CompiledTrace, and each
  /// instance's slot pools are pre-sized (an allocation hint only; bucket
  /// growth schedules are part of the model and stay untouched).
  [[nodiscard]] util::Status populate(const workload::CompiledTrace& compiled,
                                      const hybridmem::Placement& placement);

  /// Execute one client request, routed by the placement given at
  /// populate(). Updates keep the key on its assigned server. A read that
  /// hits a poisoned SlowMem line is transparently remapped to FastMem
  /// (the move and remap costs charged to this request); a read whose
  /// transient retries exhaust is a typed error carrying the key.
  ///
  /// Defined inline — this is the replay loop's single entry point
  /// (DESIGN.md §8); the rare fault-recovery tail lives out of line.
  [[nodiscard]] util::Result<OpResult> execute(
      const workload::Request& request) {
    MNEMO_EXPECTS(request.key < key_sizes_.size());
    KeyValueStore& server = route(request.key);
    if (request.op != workload::OpType::kRead) {
      // kUpdate overwrites in place; kInsert creates the key (same put path
      // — the stores upsert). Writes are not fault targets.
      return server.put(request.key, key_sizes_[request.key]);
    }
    OpResult r = server.get(request.key);
    if (r.fault == hybridmem::FaultKind::kNone) [[likely]] return r;
    return recover_faulted_read(request, r);
  }

  /// Hinted variant of execute() for compiled-campaign replay: `hints`
  /// must be the KeyHints of request.key (CompiledTrace::key_hashes /
  /// key_digests). Behaviour is bit-identical to execute(request); the
  /// rare fault-recovery tail is shared.
  [[nodiscard]] util::Result<OpResult> execute(const workload::Request& request,
                                               const KeyHints& hints) {
    MNEMO_EXPECTS(request.key < key_sizes_.size());
    return execute(request.op, request.key, hints);
  }

  /// Unchecked hot-loop form taking the op/key streams directly: the
  /// compiled replay iterates CompiledTrace's flat arrays, whose keys were
  /// all bounds-validated once at compile time, so the per-request
  /// precondition check is hoisted along with the hashes.
  [[nodiscard]] util::Result<OpResult> execute(workload::OpType op,
                                               std::uint64_t key,
                                               const KeyHints& hints) {
    KeyValueStore& server = route(key);
    if (op != workload::OpType::kRead) {
      return server.put(key, key_sizes_[key], hints);
    }
    OpResult r = server.get(key, hints);
    if (r.fault == hybridmem::FaultKind::kNone) [[likely]] return r;
    return recover_faulted_read(
        workload::Request{static_cast<std::uint32_t>(key), op}, r);
  }

  [[nodiscard]] KeyValueStore& fast() noexcept { return *fast_; }
  [[nodiscard]] KeyValueStore& slow() noexcept { return *slow_; }
  [[nodiscard]] const KeyValueStore& fast() const noexcept { return *fast_; }
  [[nodiscard]] const KeyValueStore& slow() const noexcept { return *slow_; }
  [[nodiscard]] StoreKind kind() const noexcept { return kind_; }

  /// Combined op counters across both instances.
  [[nodiscard]] StoreStats combined_stats() const;

  /// Move one key's record to the other tier (delete + re-insert, like a
  /// live migration between the two server processes). Returns the
  /// simulated time the move cost. With faults armed, the migration first
  /// reads the source record — transient faults are retried with
  /// exponential backoff in simulated time (bounded by the plan's retry
  /// budget; exhaustion is a kRetriesExhausted error) and a poisoned
  /// source is recovered at the plan's remap cost. A full destination is a
  /// kCapacityExhausted error and the key stays put. Used by the dynamic
  /// re-tiering extension; Mnemo proper only does static placement.
  [[nodiscard]] util::Result<double> move_key(std::uint64_t key,
                                              hybridmem::NodeId to);

  [[nodiscard]] const hybridmem::Placement& placement() const noexcept {
    return placement_;
  }

 private:
  [[nodiscard]] KeyValueStore& route(std::uint64_t key) {
    return placement_.node_of(key) == hybridmem::NodeId::kFast ? *fast_
                                                               : *slow_;
  }

  /// Slow path of execute(): poisoned-line remap or transient-retry
  /// exhaustion. Only reached when the read reported a fault.
  [[nodiscard]] util::Result<OpResult> recover_faulted_read(
      const workload::Request& request, OpResult r);

  StoreKind kind_;
  std::unique_ptr<KeyValueStore> fast_;
  std::unique_ptr<KeyValueStore> slow_;
  hybridmem::Placement placement_{0, hybridmem::NodeId::kFast};
  std::span<const std::uint64_t> key_sizes_;
};

}  // namespace mnemo::kvstore
