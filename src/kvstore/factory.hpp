#pragma once

#include <memory>

#include "kvstore/kvstore.hpp"

namespace mnemo::kvstore {

/// Construct a store of the requested architecture bound to the node named
/// in `config`.
std::unique_ptr<KeyValueStore> make_store(StoreKind kind,
                                          hybridmem::HybridMemory& memory,
                                          const StoreConfig& config);

/// All three architectures, in the paper's presentation order.
inline constexpr StoreKind kAllStoreKinds[] = {
    StoreKind::kVermilion, StoreKind::kCachet, StoreKind::kDynaStore};

}  // namespace mnemo::kvstore
