#include "kvstore/service_profile.hpp"

namespace mnemo::kvstore {

std::string_view to_string(StoreKind kind) {
  switch (kind) {
    case StoreKind::kVermilion:
      return "vermilion";
    case StoreKind::kCachet:
      return "cachet";
    case StoreKind::kDynaStore:
      return "dynastore";
  }
  return "?";
}

std::string_view paper_analogue(StoreKind kind) {
  switch (kind) {
    case StoreKind::kVermilion:
      return "Redis";
    case StoreKind::kCachet:
      return "Memcached";
    case StoreKind::kDynaStore:
      return "DynamoDB";
  }
  return "?";
}

const ServiceProfile& default_profile(StoreKind kind) {
  // Calibration targets (100 KB thumbnail records, Table I node timings:
  // FastMem payload stream ~6.9 us, SlowMem ~56.8 us):
  //  * Vermilion: paper Fig 5a shows ~40% throughput gain Fast vs Slow
  //      -> (cpu + slow_mem) / (cpu + fast_mem) ~ 1.4 with cpu ~ 115 us
  //        (a YCSB client + RPC round trip per op; Fig 5 Redis throughput
  //         is in the high-10^3 ops/s range).
  //  * Cachet: paper Fig 8b/9 show Memcached "barely influenced": its
  //      pipelined chunked transfers overlap ~90% of the stream
  //      -> gap ~ 6%.
  //  * DynaStore: paper: "severely impacted": tree descent is dependent
  //      pointer chasing and items are copied multiple times
  //      -> gap ~ 1.9x.
  static const ServiceProfile kVermilionProfile = {
      /*cpu_read_ns=*/115'000.0,
      /*cpu_write_ns=*/118'000.0,
      /*cpu_per_probe_ns=*/40.0,
      /*latency_sensitivity=*/1.0,
      /*bandwidth_overlap=*/0.0,
      /*write_discount=*/0.55,
      /*read_stream_amplification=*/1.0,
      /*write_stream_amplification=*/1.0,
      /*jitter_sigma=*/0.02,
      /*tail_spike_prob=*/0.004,
      /*tail_spike_mult=*/6.0,
  };
  static const ServiceProfile kCachetProfile = {
      /*cpu_read_ns=*/62'000.0,
      /*cpu_write_ns=*/64'000.0,
      /*cpu_per_probe_ns=*/25.0,
      /*latency_sensitivity=*/0.8,
      /*bandwidth_overlap=*/0.90,
      /*write_discount=*/0.50,
      /*read_stream_amplification=*/1.0,
      /*write_stream_amplification=*/1.0,
      /*jitter_sigma=*/0.015,
      /*tail_spike_prob=*/0.002,
      /*tail_spike_mult=*/4.0,
  };
  static const ServiceProfile kDynaStoreProfile = {
      /*cpu_read_ns=*/160'000.0,
      /*cpu_write_ns=*/175'000.0,
      /*cpu_per_probe_ns=*/120.0,
      /*latency_sensitivity=*/1.6,
      /*bandwidth_overlap=*/0.0,
      /*write_discount=*/0.80,
      /*read_stream_amplification=*/3.0,
      /*write_stream_amplification=*/2.0,
      /*jitter_sigma=*/0.03,
      /*tail_spike_prob=*/0.01,
      /*tail_spike_mult=*/12.0,
  };
  switch (kind) {
    case StoreKind::kVermilion:
      return kVermilionProfile;
    case StoreKind::kCachet:
      return kCachetProfile;
    case StoreKind::kDynaStore:
      return kDynaStoreProfile;
  }
  return kVermilionProfile;
}

}  // namespace mnemo::kvstore
