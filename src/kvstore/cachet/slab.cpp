#include "kvstore/cachet/slab.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace mnemo::kvstore::cachet {

SlabAllocator::SlabAllocator() {
  std::uint64_t chunk = kMinChunk;
  while (chunk <= kPageBytes) {
    SlabClass c{};
    c.chunk_size = chunk;
    c.chunks_per_page = kPageBytes / chunk;
    classes_.push_back(c);
    const auto next = static_cast<std::uint64_t>(
        std::ceil(static_cast<double>(chunk) * kGrowthFactor));
    // Align to 8 bytes like memcached's chunk sizing.
    chunk = (next + 7) & ~7ULL;
  }
}

std::size_t SlabAllocator::class_for(std::uint64_t item_bytes) const {
  const std::uint64_t need = item_bytes + kItemHeader;
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    if (classes_[i].chunk_size >= need) return i;
  }
  return classes_.size();  // huge
}

std::uint64_t SlabAllocator::chunk_bytes(std::size_t cls,
                                         std::uint64_t item_bytes) const {
  if (cls < classes_.size()) return classes_[cls].chunk_size;
  const std::uint64_t need = item_bytes + kItemHeader;
  return (need + kPageBytes - 1) / kPageBytes * kPageBytes;
}

void SlabAllocator::take(std::size_t cls, std::uint64_t item_bytes) {
  if (cls >= classes_.size()) {
    const std::uint64_t bytes = chunk_bytes(cls, item_bytes);
    page_bytes_ += bytes;
    used_chunk_bytes_ += bytes;
    ++huge_items_;
    return;
  }
  SlabClass& c = classes_[cls];
  if (c.free_chunks == 0) {
    ++c.pages;
    c.free_chunks += c.chunks_per_page;
    page_bytes_ += kPageBytes;
  }
  --c.free_chunks;
  ++c.used_chunks;
  used_chunk_bytes_ += c.chunk_size;
}

void SlabAllocator::give_back(std::size_t cls, std::uint64_t item_bytes) {
  if (cls >= classes_.size()) {
    MNEMO_EXPECTS(huge_items_ > 0);
    const std::uint64_t bytes = chunk_bytes(cls, item_bytes);
    page_bytes_ -= bytes;
    used_chunk_bytes_ -= bytes;
    --huge_items_;
    return;
  }
  SlabClass& c = classes_[cls];
  MNEMO_EXPECTS(c.used_chunks > 0);
  --c.used_chunks;
  ++c.free_chunks;
  used_chunk_bytes_ -= c.chunk_size;
}

SlabAllocator::ClassStats SlabAllocator::class_stats(std::size_t cls) const {
  MNEMO_EXPECTS(cls < classes_.size());
  const SlabClass& c = classes_[cls];
  return ClassStats{c.chunk_size, c.pages, c.used_chunks, c.free_chunks};
}

}  // namespace mnemo::kvstore::cachet
