#pragma once

#include <vector>

#include "kvstore/cachet/assoc.hpp"
#include "kvstore/cachet/slab.hpp"
#include "kvstore/kvstore.hpp"
#include "util/flat_lru.hpp"

namespace mnemo::kvstore {

/// Memcached-like store: slab allocation with size classes, per-class LRU
/// eviction, and a power-of-two chained assoc table. Its multi-worker,
/// prefetch-friendly pipeline overlaps most of the payload transfer with
/// CPU work (profile bandwidth_overlap ≈ 0.9), which is why the paper
/// finds Memcached "barely influenced" by SlowMem (Fig 8b / Fig 9).
///
/// Capacity is consumed at slab-chunk granularity, so the node sees the
/// allocator's internal fragmentation, and when a placement fails the
/// store evicts from the item's own slab class LRU — memcached semantics.
class Cachet final : public KeyValueStore {
 public:
  Cachet(hybridmem::HybridMemory& memory, const StoreConfig& config);
  ~Cachet() override;

  OpResult get(std::uint64_t key) override;
  OpResult put(std::uint64_t key, std::uint64_t value_size) override;
  OpResult get(std::uint64_t key, const KeyHints& hints) override;
  OpResult put(std::uint64_t key, std::uint64_t value_size,
               const KeyHints& hints) override;
  OpResult erase(std::uint64_t key) override;

  void reserve_keys(std::size_t keys) override;

  [[nodiscard]] bool contains(std::uint64_t key) const override;
  [[nodiscard]] std::size_t record_count() const override {
    return assoc_.size();
  }
  [[nodiscard]] std::uint64_t overhead_bytes() const override;

  [[nodiscard]] const cachet::SlabAllocator& slabs() const noexcept {
    return slabs_;
  }

 protected:
  Record* mutable_record(std::uint64_t key) override;

 private:
  /// Shared bodies of the hinted/unhinted entry points. `hash` must equal
  /// util::mix64(key) and `digest` util::record_digest(key, value_size)
  /// (the KeyHints contract) — both paths are then bit-identical.
  OpResult get_impl(std::uint64_t key, std::uint64_t hash);
  OpResult put_impl(std::uint64_t key, std::uint64_t value_size,
                    std::uint64_t hash, std::uint64_t digest);

  void lru_touch(cachet::Item& item);
  void drop_item(std::uint64_t key);
  /// Evict the LRU item of `cls`; returns false if the class is empty.
  bool evict_one(std::size_t cls);

  cachet::AssocTable assoc_;
  cachet::SlabAllocator slabs_;
  /// One LRU per slab class (+1 for the huge class); front = hottest.
  /// Array-backed intrusive lists keyed by the (dense) record key, so a
  /// touch is pointer-free index surgery (DESIGN.md §8).
  std::vector<util::FlatLru<util::NoPayload>> lru_;
};

}  // namespace mnemo::kvstore
