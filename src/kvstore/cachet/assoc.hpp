#pragma once

#include <cstdint>
#include <forward_list>
#include <list>
#include <vector>

#include "kvstore/record.hpp"

namespace mnemo::kvstore::cachet {

/// One cached item: payload plus the slab/LRU bookkeeping Cachet needs.
struct Item {
  std::uint64_t key = 0;
  Record value;
  std::size_t slab_class = 0;
  std::list<std::uint64_t>::iterator lru_it;  ///< position in class LRU
};

/// Memcached's `assoc` hash table: power-of-two buckets with chaining,
/// doubled when the load factor passes 1.5. Lookups report chain probes
/// for memory-latency accounting.
class AssocTable {
 public:
  static constexpr std::size_t kInitialBuckets = 16;
  static constexpr double kMaxLoad = 1.5;

  AssocTable();

  struct FindResult {
    Item* item = nullptr;
    std::uint32_t probes = 0;
  };
  FindResult find(std::uint64_t key);

  /// Insert a new item (key must not already exist — Cachet checks first).
  /// Returns probes walked and a stable-until-next-mutation pointer.
  Item* insert(Item item, std::uint32_t* probes);

  struct EraseResult {
    bool erased = false;
    std::uint32_t probes = 0;
    Item item;  ///< the removed item (for slab/LRU cleanup), valid if erased
  };
  EraseResult erase(std::uint64_t key);

  [[nodiscard]] std::size_t size() const noexcept { return used_; }
  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return buckets_.size();
  }
  [[nodiscard]] std::uint64_t overhead_bytes() const noexcept;

  template <typename F>
  void for_each(F&& fn) const {
    for (const auto& bucket : buckets_) {
      for (const auto& item : bucket) fn(item);
    }
  }

 private:
  using Bucket = std::forward_list<Item>;

  void maybe_expand();

  std::vector<Bucket> buckets_;
  std::size_t used_ = 0;
};

}  // namespace mnemo::kvstore::cachet
