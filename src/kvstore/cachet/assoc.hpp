#pragma once

#include <cstdint>
#include <memory_resource>
#include <vector>

#include "kvstore/record.hpp"
#include "util/rng.hpp"

namespace mnemo::kvstore::cachet {

/// One cached item: payload plus the slab bookkeeping Cachet needs. LRU
/// position lives in the per-class util::FlatLru keyed by `key`, so the
/// item carries no iterator into an external list.
struct Item {
  std::uint64_t key = 0;
  Record value;
  std::size_t slab_class = 0;
};

/// Memcached's `assoc` hash table: power-of-two buckets with chaining,
/// doubled when the load factor passes 1.5. Lookups report chain probes
/// for memory-latency accounting.
///
/// Like vermilion::Dict, storage is flat (DESIGN.md §8): items live in a
/// contiguous slot pool chained by int32 indices with a free list, and a
/// bucket is the index of its chain head. Chain order and probe counts
/// match the forward_list version exactly.
class AssocTable {
 public:
  static constexpr std::size_t kInitialBuckets = 16;
  static constexpr double kMaxLoad = 1.5;

  /// `memory` (optional) backs the slot pool and bucket array — a campaign
  /// cell's arena when one is plumbed through, the heap otherwise.
  explicit AssocTable(std::pmr::memory_resource* memory = nullptr);

  struct FindResult {
    Item* item = nullptr;
    std::uint32_t probes = 0;
  };
  /// Defined inline: every Cachet GET and PUT starts here (DESIGN.md §8).
  /// The hash-taking overload lets campaign replay pass the precomputed
  /// util::mix64(key) (DESIGN.md §12); it MUST equal mix64(key), so probe
  /// sequences are exactly those of the hashing overload.
  FindResult find(std::uint64_t key) { return find(key, util::mix64(key)); }
  FindResult find(std::uint64_t key, std::uint64_t hash) {
    FindResult result;
    for (std::int32_t n = buckets_[hash & (buckets_.size() - 1)];
         n != kNil; n = pool_[static_cast<std::size_t>(n)].next) {
      ++result.probes;
      Node& node = pool_[static_cast<std::size_t>(n)];
      if (node.item.key == key) {
        result.item = &node.item;
        return result;
      }
    }
    if (result.probes == 0) result.probes = 1;
    return result;
  }

  /// Insert a new item (key must not already exist — Cachet checks first).
  /// Returns probes walked and a stable-until-next-mutation pointer. The
  /// hash-taking overload obeys the same contract as find(key, hash).
  Item* insert(Item item, std::uint32_t* probes) {
    const std::uint64_t hash = util::mix64(item.key);
    return insert(std::move(item), probes, hash);
  }
  Item* insert(Item item, std::uint32_t* probes, std::uint64_t hash);

  /// Pre-size the slot pool for `n` items. The bucket array is NOT
  /// pre-sized: its doubling schedule is part of the modelled behaviour
  /// and overhead accounting.
  void reserve(std::size_t n) { pool_.reserve(n); }

  struct EraseResult {
    bool erased = false;
    std::uint32_t probes = 0;
    Item item;  ///< the removed item (for slab/LRU cleanup), valid if erased
  };
  EraseResult erase(std::uint64_t key);

  [[nodiscard]] std::size_t size() const noexcept { return used_; }
  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return buckets_.size();
  }
  [[nodiscard]] std::uint64_t overhead_bytes() const noexcept;

  template <typename F>
  void for_each(F&& fn) const {
    for (const std::int32_t head : buckets_) {
      for (std::int32_t n = head; n != kNil;
           n = pool_[static_cast<std::size_t>(n)].next) {
        fn(pool_[static_cast<std::size_t>(n)].item);
      }
    }
  }

 private:
  static constexpr std::int32_t kNil = -1;

  struct Node {
    Item item;
    std::int32_t next = kNil;
  };

  [[nodiscard]] std::int32_t alloc_node(Item&& item);
  void maybe_expand();

  std::pmr::vector<Node> pool_;
  std::int32_t free_ = kNil;  ///< recycled slots, threaded via next
  std::pmr::vector<std::int32_t> buckets_;  ///< chain heads, kNil when empty
  std::size_t used_ = 0;
};

}  // namespace mnemo::kvstore::cachet
