#pragma once

#include <cstdint>
#include <vector>

namespace mnemo::kvstore::cachet {

/// Memcached-style slab allocator model. Memory is carved into 1 MiB pages
/// assigned to size classes; a class hands out fixed-size chunks. Items are
/// stored in the smallest class whose chunk fits the item, so capacity is
/// consumed at chunk granularity (internal fragmentation included) — the
/// behaviour that makes Memcached's memory footprint deviate from the raw
/// dataset size.
class SlabAllocator {
 public:
  static constexpr std::uint64_t kPageBytes = 1ULL << 20;  // 1 MiB
  static constexpr std::uint64_t kMinChunk = 96;
  static constexpr double kGrowthFactor = 1.25;
  static constexpr std::uint64_t kItemHeader = 48;  ///< memcached item hdr

  SlabAllocator();

  /// Slab class index for an item of `item_bytes` payload (header added
  /// internally). Items too large for the largest class use per-item page
  /// allocations, reported as class_count().
  [[nodiscard]] std::size_t class_for(std::uint64_t item_bytes) const;

  /// Chunk size of a class; for the huge class this is the page-rounded
  /// size of the specific item, so pass item_bytes.
  [[nodiscard]] std::uint64_t chunk_bytes(std::size_t cls,
                                          std::uint64_t item_bytes) const;

  /// Take a chunk from `cls` (allocating a fresh page if the free list is
  /// empty). Never fails — capacity limits are enforced by the memory node,
  /// not the allocator.
  void take(std::size_t cls, std::uint64_t item_bytes);

  /// Return a chunk to `cls`'s free list.
  void give_back(std::size_t cls, std::uint64_t item_bytes);

  [[nodiscard]] std::size_t class_count() const noexcept {
    return classes_.size();
  }
  [[nodiscard]] std::uint64_t pages_allocated_bytes() const noexcept {
    return page_bytes_;
  }
  [[nodiscard]] std::uint64_t used_chunk_bytes() const noexcept {
    return used_chunk_bytes_;
  }
  /// Page bytes not covered by live chunks (free chunks + tail waste).
  [[nodiscard]] std::uint64_t slack_bytes() const noexcept {
    return page_bytes_ - used_chunk_bytes_;
  }

  struct ClassStats {
    std::uint64_t chunk_size = 0;
    std::uint64_t pages = 0;
    std::uint64_t used_chunks = 0;
    std::uint64_t free_chunks = 0;
  };
  [[nodiscard]] ClassStats class_stats(std::size_t cls) const;

 private:
  struct SlabClass {
    std::uint64_t chunk_size;
    std::uint64_t chunks_per_page;
    std::uint64_t pages = 0;
    std::uint64_t used_chunks = 0;
    std::uint64_t free_chunks = 0;
  };

  std::vector<SlabClass> classes_;
  std::uint64_t page_bytes_ = 0;        ///< total page bytes incl. huge
  std::uint64_t used_chunk_bytes_ = 0;  ///< live chunk bytes incl. huge
  std::uint64_t huge_items_ = 0;
};

}  // namespace mnemo::kvstore::cachet
