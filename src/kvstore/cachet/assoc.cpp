#include "kvstore/cachet/assoc.hpp"

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace mnemo::kvstore::cachet {

AssocTable::AssocTable() : buckets_(kInitialBuckets) {}

std::uint64_t AssocTable::overhead_bytes() const noexcept {
  return buckets_.size() * sizeof(void*);
}

void AssocTable::maybe_expand() {
  if (static_cast<double>(used_) <
      kMaxLoad * static_cast<double>(buckets_.size())) {
    return;
  }
  std::vector<Bucket> bigger(buckets_.size() * 2);
  for (Bucket& bucket : buckets_) {
    while (!bucket.empty()) {
      const std::size_t idx =
          util::mix64(bucket.front().key) & (bigger.size() - 1);
      bigger[idx].splice_after(bigger[idx].before_begin(), bucket,
                               bucket.before_begin());
    }
  }
  buckets_ = std::move(bigger);
}

AssocTable::FindResult AssocTable::find(std::uint64_t key) {
  FindResult result;
  Bucket& bucket = buckets_[util::mix64(key) & (buckets_.size() - 1)];
  for (Item& item : bucket) {
    ++result.probes;
    if (item.key == key) {
      result.item = &item;
      return result;
    }
  }
  if (result.probes == 0) result.probes = 1;
  return result;
}

Item* AssocTable::insert(Item item, std::uint32_t* probes) {
  maybe_expand();
  Bucket& bucket = buckets_[util::mix64(item.key) & (buckets_.size() - 1)];
  if (probes != nullptr) *probes = 1;
  bucket.push_front(std::move(item));
  ++used_;
  return &bucket.front();
}

AssocTable::EraseResult AssocTable::erase(std::uint64_t key) {
  EraseResult result;
  Bucket& bucket = buckets_[util::mix64(key) & (buckets_.size() - 1)];
  auto prev = bucket.before_begin();
  for (auto it = bucket.begin(); it != bucket.end(); ++it, ++prev) {
    ++result.probes;
    if (it->key == key) {
      result.item = std::move(*it);
      bucket.erase_after(prev);
      --used_;
      result.erased = true;
      return result;
    }
  }
  return result;
}

}  // namespace mnemo::kvstore::cachet
