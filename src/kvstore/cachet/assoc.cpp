#include "kvstore/cachet/assoc.hpp"

#include <utility>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace mnemo::kvstore::cachet {

AssocTable::AssocTable(std::pmr::memory_resource* memory)
    : pool_(memory != nullptr ? memory : std::pmr::get_default_resource()),
      buckets_(pool_.get_allocator()) {
  buckets_.assign(kInitialBuckets, kNil);
}

std::uint64_t AssocTable::overhead_bytes() const noexcept {
  // One pointer per bucket head — the modelled server's layout, unchanged
  // by the flat storage underneath.
  return buckets_.size() * sizeof(void*);
}

std::int32_t AssocTable::alloc_node(Item&& item) {
  std::int32_t n;
  if (free_ != kNil) {
    n = free_;
    free_ = pool_[static_cast<std::size_t>(n)].next;
  } else {
    MNEMO_ASSERT(pool_.size() < static_cast<std::size_t>(kNil));
    n = static_cast<std::int32_t>(pool_.size());
    pool_.emplace_back();
  }
  Node& node = pool_[static_cast<std::size_t>(n)];
  node.item = std::move(item);
  node.next = kNil;
  return n;
}

void AssocTable::maybe_expand() {
  if (static_cast<double>(used_) <
      kMaxLoad * static_cast<double>(buckets_.size())) {
    return;
  }
  // Same-resource construction keeps the final move-assign an O(1) steal.
  std::pmr::vector<std::int32_t> bigger(buckets_.size() * 2, kNil,
                                        buckets_.get_allocator());
  for (std::int32_t& head : buckets_) {
    // Pop each chain head-first onto the new chain heads — the same
    // order the forward_list splice_after expansion produced.
    while (head != kNil) {
      const std::int32_t n = head;
      Node& node = pool_[static_cast<std::size_t>(n)];
      head = node.next;
      std::int32_t& dst = bigger[util::mix64(node.item.key) & (bigger.size() - 1)];
      node.next = dst;
      dst = n;
    }
  }
  buckets_ = std::move(bigger);
}

Item* AssocTable::insert(Item item, std::uint32_t* probes,
                         std::uint64_t hash) {
  maybe_expand();
  std::int32_t& bucket = buckets_[hash & (buckets_.size() - 1)];
  if (probes != nullptr) *probes = 1;
  const std::int32_t n = alloc_node(std::move(item));
  pool_[static_cast<std::size_t>(n)].next = bucket;
  bucket = n;
  ++used_;
  return &pool_[static_cast<std::size_t>(n)].item;
}

AssocTable::EraseResult AssocTable::erase(std::uint64_t key) {
  EraseResult result;
  std::int32_t* link = &buckets_[util::mix64(key) & (buckets_.size() - 1)];
  while (*link != kNil) {
    const std::int32_t n = *link;
    Node& node = pool_[static_cast<std::size_t>(n)];
    ++result.probes;
    if (node.item.key == key) {
      *link = node.next;
      result.item = std::move(node.item);
      node.item = Item{};  // release any payload promptly
      node.next = free_;
      free_ = n;
      --used_;
      result.erased = true;
      return result;
    }
    link = &node.next;
  }
  return result;
}

}  // namespace mnemo::kvstore::cachet
