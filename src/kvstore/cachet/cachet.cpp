#include "kvstore/cachet/cachet.hpp"

#include "util/assert.hpp"

namespace mnemo::kvstore {

using cachet::Item;
using hybridmem::MemOp;

Cachet::Cachet(hybridmem::HybridMemory& memory, const StoreConfig& config)
    : KeyValueStore(memory, config, StoreKind::kCachet),
      assoc_(config.table_memory) {
  lru_.reserve(slabs_.class_count() + 1);
  for (std::size_t i = 0; i < slabs_.class_count() + 1; ++i) {
    lru_.emplace_back(config.table_memory);
  }
}

void Cachet::reserve_keys(std::size_t keys) {
  assoc_.reserve(keys);
  // Per-class residency is unknown up front; pre-size only the dense
  // id→slot indexes (4 bytes/id), which every class consults.
  for (auto& lru : lru_) lru.reserve(keys, 0);
}

Cachet::~Cachet() {
  assoc_.for_each([this](const Item& item) { this->memory().remove(item.key); });
}

std::uint64_t Cachet::overhead_bytes() const {
  // Bucket array + free/tail slab slack. Live chunks are already accounted
  // against the node at chunk granularity by put().
  return assoc_.overhead_bytes() + slabs_.slack_bytes();
}

void Cachet::lru_touch(Item& item) {
  (void)lru_[item.slab_class].touch(item.key);
}

bool Cachet::evict_one(std::size_t cls) {
  auto& lru = lru_[cls];
  if (lru.empty()) return false;
  const std::uint64_t victim = lru.back_id();
  drop_item(victim);
  ++stats_.evictions;
  return true;
}

void Cachet::drop_item(std::uint64_t key) {
  auto erased = assoc_.erase(key);
  MNEMO_ASSERT(erased.erased);
  Item& item = erased.item;
  const bool unlinked = lru_[item.slab_class].erase(key);
  MNEMO_ASSERT(unlinked);
  slabs_.give_back(item.slab_class, item.value.size);
  memory().remove(key);
}

Record* Cachet::mutable_record(std::uint64_t key) {
  const auto found = assoc_.find(key);
  return found.item != nullptr ? &found.item->value : nullptr;
}

OpResult Cachet::get(std::uint64_t key) {
  return get_impl(key, util::mix64(key));
}

OpResult Cachet::get(std::uint64_t key, const KeyHints& hints) {
  return get_impl(key, hints.hash);
}

OpResult Cachet::get_impl(std::uint64_t key, std::uint64_t hash) {
  ++stats_.gets;
  const auto found = assoc_.find(key, hash);
  double ns = profile().cpu_read_ns + index_walk_ns(1, found.probes);
  if (found.item == nullptr) {
    ++stats_.misses;
    return finalize(false, ns, false);
  }
  if (check_expired(found.item->value)) {
    // Memcached exptime semantics: the item is dead on arrival of the
    // next fetch; reclaim its chunk and miss.
    drop_item(key);
    sync_overhead_accounting(overhead_bytes());
    ++stats_.misses;
    return finalize(false, ns, false);
  }
  ++stats_.hits;
  lru_touch(*found.item);
  const Record& rec = found.item->value;
  if (rec.stored()) {
    MNEMO_ASSERT(checksum_bytes(rec.bytes) == rec.checksum);
  }
  const auto access = payload_access(key, rec.size, MemOp::kRead);
  ns += access.ns;
  return finalize(true, ns, access.llc_hit);
}

OpResult Cachet::put(std::uint64_t key, std::uint64_t value_size) {
  return put_impl(key, value_size, util::mix64(key),
                  util::record_digest(key, value_size));
}

OpResult Cachet::put(std::uint64_t key, std::uint64_t value_size,
                     const KeyHints& hints) {
  return put_impl(key, value_size, hints.hash, hints.digest);
}

OpResult Cachet::put_impl(std::uint64_t key, std::uint64_t value_size,
                          std::uint64_t hash, std::uint64_t digest) {
  ++stats_.puts;
  double ns = profile().cpu_write_ns;

  // Update in place if present (memcached `set` on an existing key).
  auto found = assoc_.find(key, hash);
  ns += index_walk_ns(1, found.probes);
  if (found.item != nullptr) {
    const std::size_t new_cls = slabs_.class_for(value_size);
    if (new_cls != found.item->slab_class) {
      // Item migrates slab class: release old chunk, take a new one.
      slabs_.give_back(found.item->slab_class, found.item->value.size);
      slabs_.take(new_cls, value_size);
      (void)lru_[found.item->slab_class].erase(key);
      lru_[new_cls].push_front(key, {});
      found.item->slab_class = new_cls;
    }
    if (!memory().resize(key, slabs_.chunk_bytes(new_cls, value_size))) {
      return finalize(false, ns, false);
    }
    found.item->value = make_record(key, value_size, payload_mode(), digest);
    lru_touch(*found.item);
    const auto access = payload_access(key, value_size, MemOp::kWrite);
    ns += access.ns;
    return finalize(true, ns, access.llc_hit);
  }

  const std::size_t cls = slabs_.class_for(value_size);
  const std::uint64_t chunk = slabs_.chunk_bytes(cls, value_size);
  // Evict from this item's class until the node can hold the chunk.
  while (!memory().place(key, chunk, node())) {
    if (!evict_one(cls)) {
      return finalize(false, ns, false);
    }
  }
  slabs_.take(cls, value_size);
  Item item;
  item.key = key;
  item.value = make_record(key, value_size, payload_mode(), digest);
  item.slab_class = cls;
  lru_[cls].push_front(key, {});
  std::uint32_t probes = 0;
  assoc_.insert(std::move(item), &probes, hash);
  ns += index_walk_ns(0, probes);
  sync_overhead_accounting(overhead_bytes());
  const auto access = payload_access(key, value_size, MemOp::kWrite);
  ns += access.ns;
  return finalize(true, ns, access.llc_hit);
}

OpResult Cachet::erase(std::uint64_t key) {
  ++stats_.erases;
  const auto found = assoc_.find(key);
  const double ns = profile().cpu_write_ns + index_walk_ns(1, found.probes);
  if (found.item == nullptr) return finalize(false, ns, false);
  drop_item(key);
  sync_overhead_accounting(overhead_bytes());
  return finalize(true, ns, false);
}

bool Cachet::contains(std::uint64_t key) const {
  bool found = false;
  assoc_.for_each([&](const Item& item) {
    if (item.key == key) found = true;
  });
  return found;
}

}  // namespace mnemo::kvstore
