#include "kvstore/kvstore.hpp"

#include <algorithm>
#include <atomic>

#include "util/assert.hpp"

namespace mnemo::kvstore {

namespace {

/// Object-ID namespace tags (top byte) so records, per-instance index
/// overhead and journals never collide inside one HybridMemory.
constexpr std::uint64_t kOverheadTag = 0x0100'0000'0000'0000ULL;

std::uint64_t next_instance_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

KeyValueStore::KeyValueStore(hybridmem::HybridMemory& memory,
                             const StoreConfig& config, StoreKind kind)
    : memory_(memory),
      config_(config),
      kind_(kind),
      profile_(config.profile_override ? *config.profile_override
                                       : default_profile(kind)),
      jitter_rng_(config.seed ^ (static_cast<std::uint64_t>(kind) << 56)),
      overhead_object_id_(kOverheadTag | next_instance_id()) {}

KeyValueStore::~KeyValueStore() {
  // Release the overhead accounting object; record objects are owned by
  // the concrete store and removed in its destructor.
  if (accounted_overhead_ > 0) memory_.remove(overhead_object_id_);
}

OpResult KeyValueStore::put_ttl(std::uint64_t key, std::uint64_t value_size,
                                double ttl_ns) {
  MNEMO_EXPECTS(ttl_ns > 0.0);
  const OpResult result = put(key, value_size);
  if (result.ok) {
    Record* rec = mutable_record(key);
    MNEMO_ASSERT(rec != nullptr);
    rec->expires_at_ns = now_ns() + ttl_ns;
  }
  return result;
}

bool KeyValueStore::check_expired(const Record& rec) {
  if (!rec.expired(now_ns())) return false;
  ++stats_.expirations;
  return true;
}

OpResult KeyValueStore::finalize(bool ok, double ns, bool llc_hit) {
  const hybridmem::FaultKind fault = pending_fault_;
  // A read whose transient retries exhausted never delivered the data:
  // the operation fails regardless of what the store layer concluded.
  if (pending_failed_) ok = false;
  pending_fault_ = hybridmem::FaultKind::kNone;
  pending_failed_ = false;
  if (!config_.deterministic_service) {
    // Multiplicative noise: the request-to-request variability a real
    // client observes. The rng stream advances identically regardless of
    // data placement, so measured-vs-estimated differences reflect model
    // error, not divergent random sequences.
    const double z = jitter_rng_.gaussian();
    double factor = 1.0 + profile_.jitter_sigma * z;
    factor = std::max(0.5, factor);
    if (profile_.tail_spike_prob > 0.0 &&
        jitter_rng_.next_double() < profile_.tail_spike_prob) {
      factor *= profile_.tail_spike_mult;
    }
    ns *= factor;
  }
  stats_.busy_ns += ns;
  return OpResult{ok, ns, llc_hit, fault};
}

double KeyValueStore::index_walk_ns(std::uint32_t hot_probes,
                                    std::uint32_t cold_probes) const {
  const auto& prof = memory_.profile();
  const double hot = static_cast<double>(hot_probes) * prof.llc_latency_ns;
  const double cold = static_cast<double>(cold_probes) *
                      memory_.node(config_.node).spec().latency_ns *
                      profile_.latency_sensitivity;
  const double cpu = static_cast<double>(hot_probes + cold_probes) *
                     profile_.cpu_per_probe_ns;
  return hot + cold + cpu;
}

hybridmem::AccessResult KeyValueStore::payload_access(std::uint64_t key,
                                                      std::uint64_t bytes,
                                                      hybridmem::MemOp op) {
  const double amp = op == hybridmem::MemOp::kRead
                         ? profile_.read_stream_amplification
                         : profile_.write_stream_amplification;
  hybridmem::AccessTraits traits;
  traits.latency_touches = 1;
  traits.streamed_bytes =
      static_cast<std::uint64_t>(static_cast<double>(bytes) * amp);
  traits.latency_sensitivity = profile_.latency_sensitivity;
  traits.bandwidth_overlap = profile_.bandwidth_overlap;
  traits.write_discount = profile_.write_discount;
  const hybridmem::AccessResult access = memory_.access(key, op, traits);
  pending_fault_ = std::max(pending_fault_, access.fault);
  pending_failed_ = pending_failed_ || access.failed;
  return access;
}

void KeyValueStore::sync_overhead_accounting(std::uint64_t new_bytes) {
  if (new_bytes == accounted_overhead_) return;
  if (accounted_overhead_ == 0) {
    // Index overhead is bookkeeping, not a placement decision: it must not
    // fail the experiment, so a full node is tolerated (tracked best
    // effort).
    if (!memory_.place(overhead_object_id_, new_bytes, config_.node)) {
      return;
    }
  } else if (!memory_.resize(overhead_object_id_, new_bytes)) {
    return;
  }
  accounted_overhead_ = new_bytes;
}

}  // namespace mnemo::kvstore
