#include "kvstore/kvstore.hpp"

#include <algorithm>
#include <atomic>

#include "util/assert.hpp"

namespace mnemo::kvstore {

namespace {

/// Object-ID namespace tags (top byte) so records, per-instance index
/// overhead and journals never collide inside one HybridMemory.
constexpr std::uint64_t kOverheadTag = 0x0100'0000'0000'0000ULL;

std::uint64_t next_instance_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

KeyValueStore::KeyValueStore(hybridmem::HybridMemory& memory,
                             const StoreConfig& config, StoreKind kind)
    : memory_(memory),
      config_(config),
      kind_(kind),
      profile_(config.profile_override ? *config.profile_override
                                       : default_profile(kind)),
      noise_(ServiceNoise::for_instance(config, kind)),
      overhead_object_id_(kOverheadTag | next_instance_id()) {}

KeyValueStore::~KeyValueStore() {
  // Release the overhead accounting object; record objects are owned by
  // the concrete store and removed in its destructor.
  if (accounted_overhead_ > 0) memory_.remove(overhead_object_id_);
}

OpResult KeyValueStore::put_ttl(std::uint64_t key, std::uint64_t value_size,
                                double ttl_ns) {
  MNEMO_EXPECTS(ttl_ns > 0.0);
  const OpResult result = put(key, value_size);
  if (result.ok) {
    Record* rec = mutable_record(key);
    MNEMO_ASSERT(rec != nullptr);
    rec->expires_at_ns = now_ns() + ttl_ns;
  }
  return result;
}

void KeyValueStore::sync_overhead_accounting(std::uint64_t new_bytes) {
  if (new_bytes == accounted_overhead_) return;
  if (accounted_overhead_ == 0) {
    // Index overhead is bookkeeping, not a placement decision: it must not
    // fail the experiment, so a full node is tolerated (tracked best
    // effort).
    if (!memory_.place(overhead_object_id_, new_bytes, config_.node)) {
      return;
    }
  } else if (!memory_.resize(overhead_object_id_, new_bytes)) {
    return;
  }
  accounted_overhead_ = new_bytes;
}

}  // namespace mnemo::kvstore
