#include "kvstore/vermilion/vermilion.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace mnemo::kvstore {

using hybridmem::MemOp;

std::string_view to_string(EvictionPolicy policy) {
  switch (policy) {
    case EvictionPolicy::kNoEviction:
      return "noeviction";
    case EvictionPolicy::kAllKeysLru:
      return "allkeys-lru";
    case EvictionPolicy::kAllKeysRandom:
      return "allkeys-random";
  }
  return "?";
}

Vermilion::Vermilion(hybridmem::HybridMemory& memory,
                     const StoreConfig& config, EvictionPolicy eviction)
    : KeyValueStore(memory, config, StoreKind::kVermilion),
      dict_(config.table_memory),
      eviction_(eviction),
      eviction_rng_(config.seed ^ 0xe71c7),
      last_access_dense_(config.table_memory != nullptr
                             ? config.table_memory
                             : std::pmr::get_default_resource()) {}

void Vermilion::reserve_keys(std::size_t keys) {
  dict_.reserve(keys);
  // Stamps are pure bookkeeping (never part of overhead accounting), so
  // pre-growing them is behaviour-neutral: absent slots read as 0 either way.
  const std::size_t dense =
      std::min<std::size_t>(keys, static_cast<std::size_t>(util::kDenseIdCap));
  if (dense > last_access_dense_.size()) last_access_dense_.resize(dense, 0);
}

void Vermilion::stamp_access(std::uint64_t key) {
  const std::uint64_t stamp = ++access_clock_;
  if (key < util::kDenseIdCap) {
    if (key >= last_access_dense_.size()) {
      std::size_t grown =
          last_access_dense_.empty() ? 64 : last_access_dense_.size() * 2;
      while (grown <= key) grown *= 2;
      grown = std::min<std::size_t>(
          grown, static_cast<std::size_t>(util::kDenseIdCap));
      last_access_dense_.resize(grown, 0);
    }
    last_access_dense_[static_cast<std::size_t>(key)] = stamp;
    return;
  }
  last_access_overflow_[key] = stamp;
}

void Vermilion::clear_stamp(std::uint64_t key) {
  if (key < util::kDenseIdCap) {
    if (key < last_access_dense_.size()) {
      last_access_dense_[static_cast<std::size_t>(key)] = 0;
    }
    return;
  }
  last_access_overflow_.erase(key);
}

std::uint64_t Vermilion::stamp_of(std::uint64_t key) const {
  if (key < util::kDenseIdCap) {
    return key < last_access_dense_.size()
               ? last_access_dense_[static_cast<std::size_t>(key)]
               : 0;
  }
  const auto it = last_access_overflow_.find(key);
  return it == last_access_overflow_.end() ? 0 : it->second;
}

std::uint64_t Vermilion::pick_random_victim(std::uint64_t protect_key) {
  // Sample dict entries reservoir-style; cheap at Mnemo's scales and
  // policy-faithful (Redis samples its dict too).
  std::uint64_t victim = protect_key;
  std::uint64_t seen = 0;
  dict_.for_each([&](const vermilion::Dict::Entry& e) {
    if (e.key == protect_key) return;
    ++seen;
    if (eviction_rng_.uniform(1, seen) == 1) victim = e.key;
  });
  return victim;
}

std::uint64_t Vermilion::pick_lru_victim(std::uint64_t protect_key) {
  std::uint64_t victim = protect_key;
  std::uint64_t victim_stamp = ~0ULL;
  for (int i = 0; i < kEvictionSamples; ++i) {
    const std::uint64_t candidate = pick_random_victim(protect_key);
    if (candidate == protect_key) continue;
    const std::uint64_t stamp = stamp_of(candidate);
    if (stamp < victim_stamp) {
      victim_stamp = stamp;
      victim = candidate;
    }
  }
  return victim;
}

bool Vermilion::evict_for(std::uint64_t need, std::uint64_t protect_key) {
  if (eviction_ == EvictionPolicy::kNoEviction) return false;
  while (memory().node(node()).free_bytes() < need) {
    if (dict_.size() == 0) return false;
    const std::uint64_t victim = eviction_ == EvictionPolicy::kAllKeysLru
                                     ? pick_lru_victim(protect_key)
                                     : pick_random_victim(protect_key);
    if (victim == protect_key) return false;  // nothing else to evict
    (void)dict_.erase(victim);
    memory().remove(victim);
    clear_stamp(victim);
    ++stats_.evictions;
  }
  sync_overhead_accounting(dict_.overhead_bytes());
  return true;
}

Vermilion::~Vermilion() {
  dict_.for_each([this](const vermilion::Dict::Entry& e) {
    memory().remove(e.key);
  });
}

Record* Vermilion::mutable_record(std::uint64_t key) {
  const auto found = dict_.find(key);
  return found.entry != nullptr ? &found.entry->value : nullptr;
}

void Vermilion::drop_expired(std::uint64_t key) {
  (void)dict_.erase(key);
  memory().remove(key);
  clear_stamp(key);
  sync_overhead_accounting(dict_.overhead_bytes());
}

OpResult Vermilion::get(std::uint64_t key) {
  return get_impl(key, util::mix64(key));
}

OpResult Vermilion::get(std::uint64_t key, const KeyHints& hints) {
  return get_impl(key, hints.hash);
}

OpResult Vermilion::get_impl(std::uint64_t key, std::uint64_t hash) {
  ++stats_.gets;
  const auto found = dict_.find(key, hash);
  double ns = profile().cpu_read_ns + index_walk_ns(1, found.probes);
  if (found.entry == nullptr) {
    ++stats_.misses;
    return finalize(false, ns, false);
  }
  if (check_expired(found.entry->value)) {
    // Redis-style lazy expiration: reclaim on access and report a miss.
    drop_expired(key);
    ++stats_.misses;
    return finalize(false, ns, false);
  }
  ++stats_.hits;
  stamp_access(key);
  const Record& rec = found.entry->value;
  if (rec.stored()) {
    // End-to-end integrity: the payload really round-trips.
    MNEMO_ASSERT(checksum_bytes(rec.bytes) == rec.checksum);
  }
  const auto access = payload_access(key, rec.size, MemOp::kRead);
  ns += access.ns;
  return finalize(true, ns, access.llc_hit);
}

OpResult Vermilion::put(std::uint64_t key, std::uint64_t value_size) {
  return put_impl(key, value_size, util::mix64(key),
                  util::record_digest(key, value_size));
}

OpResult Vermilion::put(std::uint64_t key, std::uint64_t value_size,
                        const KeyHints& hints) {
  return put_impl(key, value_size, hints.hash, hints.digest);
}

OpResult Vermilion::put_impl(std::uint64_t key, std::uint64_t value_size,
                             std::uint64_t hash, std::uint64_t digest) {
  ++stats_.puts;
  Record rec = make_record(key, value_size, payload_mode(), digest);
  const auto up = dict_.upsert(key, std::move(rec), hash);
  double ns = profile().cpu_write_ns + index_walk_ns(1, up.probes);

  if (up.existed) {
    if (!memory().resize(key, value_size)) {
      const std::uint64_t old_size = memory().object_size(key).value_or(0);
      const std::uint64_t growth =
          value_size > old_size ? value_size - old_size : 0;
      if (!evict_for(growth, key) || !memory().resize(key, value_size)) {
        // Rollback is unnecessary: the old accounting stands; report
        // failure so the caller can react.
        return finalize(false, ns, false);
      }
    }
  } else {
    if (!memory().place(key, value_size, node())) {
      if (!evict_for(value_size, key) ||
          !memory().place(key, value_size, node())) {
        (void)dict_.erase(key);
        return finalize(false, ns, false);
      }
    }
  }
  stamp_access(key);
  sync_overhead_accounting(dict_.overhead_bytes());
  const auto access = payload_access(key, value_size, MemOp::kWrite);
  ns += access.ns;
  return finalize(true, ns, access.llc_hit);
}

OpResult Vermilion::erase(std::uint64_t key) {
  ++stats_.erases;
  const auto er = dict_.erase(key);
  const double ns = profile().cpu_write_ns + index_walk_ns(1, er.probes);
  if (!er.erased) return finalize(false, ns, false);
  memory().remove(key);
  clear_stamp(key);
  sync_overhead_accounting(dict_.overhead_bytes());
  return finalize(true, ns, false);
}

bool Vermilion::contains(std::uint64_t key) const {
  // find() advances rehash state; use a const-safe walk instead.
  bool found = false;
  dict_.for_each([&](const vermilion::Dict::Entry& e) {
    if (e.key == key) found = true;
  });
  return found;
}

}  // namespace mnemo::kvstore
