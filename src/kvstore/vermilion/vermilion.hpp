#pragma once

#include <memory_resource>
#include <unordered_map>
#include <vector>

#include "kvstore/kvstore.hpp"
#include "kvstore/vermilion/dict.hpp"
#include "util/flat_lru.hpp"

namespace mnemo::kvstore {

/// What Vermilion does when a write does not fit its node — the Redis
/// `maxmemory-policy` analogue.
enum class EvictionPolicy : std::uint8_t {
  kNoEviction = 0,     ///< reject the write (Redis noeviction, default)
  kAllKeysLru = 1,     ///< evict the approximately least-recently-used key
  kAllKeysRandom = 2,  ///< evict a uniformly random key
};

std::string_view to_string(EvictionPolicy policy);

/// Redis-like store: a single-threaded event-loop engine over a chained
/// hash dict with incremental rehash. The service model charges one
/// dependent node-latency probe per chain link walked plus one payload
/// stream per request — the architecture whose sensitivity to SlowMem
/// tracks the key-access distribution most directly (paper Fig 5a).
class Vermilion final : public KeyValueStore {
 public:
  Vermilion(hybridmem::HybridMemory& memory, const StoreConfig& config,
            EvictionPolicy eviction = EvictionPolicy::kNoEviction);
  ~Vermilion() override;

  [[nodiscard]] EvictionPolicy eviction_policy() const noexcept {
    return eviction_;
  }

  OpResult get(std::uint64_t key) override;
  OpResult put(std::uint64_t key, std::uint64_t value_size) override;
  OpResult get(std::uint64_t key, const KeyHints& hints) override;
  OpResult put(std::uint64_t key, std::uint64_t value_size,
               const KeyHints& hints) override;
  OpResult erase(std::uint64_t key) override;

  void reserve_keys(std::size_t keys) override;

  [[nodiscard]] bool contains(std::uint64_t key) const override;
  [[nodiscard]] std::size_t record_count() const override {
    return dict_.size();
  }
  [[nodiscard]] std::uint64_t overhead_bytes() const override {
    return dict_.overhead_bytes();
  }

 protected:
  Record* mutable_record(std::uint64_t key) override;

 private:
  /// Shared bodies of the hinted/unhinted entry points. `hash` must equal
  /// util::mix64(key) and `digest` util::record_digest(key, value_size)
  /// (the KeyHints contract) — both paths are then bit-identical.
  OpResult get_impl(std::uint64_t key, std::uint64_t hash);
  OpResult put_impl(std::uint64_t key, std::uint64_t value_size,
                    std::uint64_t hash, std::uint64_t digest);

  void drop_expired(std::uint64_t key);
  /// Free space for `need` bytes per the eviction policy. Returns false
  /// if no victim can be found (empty store or kNoEviction).
  bool evict_for(std::uint64_t need, std::uint64_t protect_key);
  /// Redis-style sampled-LRU victim: of `kEvictionSamples` random keys,
  /// pick the least recently touched.
  std::uint64_t pick_lru_victim(std::uint64_t protect_key);
  std::uint64_t pick_random_victim(std::uint64_t protect_key);

  static constexpr int kEvictionSamples = 5;  // Redis maxmemory-samples

  /// Per-key last-access stamps, flat-table edition (DESIGN.md §8): a
  /// stamp of 0 means "never touched", exactly what the old map returned
  /// for a missing key, so erasing a key is resetting its slot to 0.
  void stamp_access(std::uint64_t key);
  void clear_stamp(std::uint64_t key);
  [[nodiscard]] std::uint64_t stamp_of(std::uint64_t key) const;

  vermilion::Dict dict_;
  EvictionPolicy eviction_;
  util::Rng eviction_rng_;
  /// Approximate LRU clock: per-key last-access stamps (op counter).
  std::uint64_t access_clock_ = 0;
  std::pmr::vector<std::uint64_t> last_access_dense_;
  std::unordered_map<std::uint64_t, std::uint64_t> last_access_overflow_;
};

}  // namespace mnemo::kvstore
