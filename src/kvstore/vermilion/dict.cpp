#include "kvstore/vermilion/dict.hpp"

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace mnemo::kvstore::vermilion {

Dict::Dict() { tables_[0].resize(kInitialBuckets); }

std::size_t Dict::bucket_of(std::uint64_t key, std::size_t buckets) {
  return util::mix64(key) & (buckets - 1);
}

std::size_t Dict::bucket_count() const noexcept {
  return tables_[0].size() + tables_[1].size();
}

std::uint64_t Dict::overhead_bytes() const noexcept {
  // One pointer per bucket head plus a per-entry header (key, size,
  // checksum, next pointer) — the dictEntry analogue.
  constexpr std::uint64_t kEntryHeader = 40;
  return bucket_count() * sizeof(void*) + used_ * kEntryHeader;
}

void Dict::maybe_start_rehash() {
  if (rehashing()) return;
  if (used_ < tables_[0].size()) return;
  tables_[1].assign(tables_[0].size() * 2, Bucket{});
  rehash_idx_ = 0;
}

void Dict::rehash_step() {
  if (!rehashing()) return;
  std::size_t migrated_buckets = 0;
  while (migrated_buckets < kRehashBucketsPerOp &&
         rehash_idx_ < static_cast<std::ptrdiff_t>(tables_[0].size())) {
    Bucket& src = tables_[0][static_cast<std::size_t>(rehash_idx_)];
    while (!src.empty()) {
      const std::size_t dst_idx =
          bucket_of(src.front().key, tables_[1].size());
      Bucket& dst = tables_[1][dst_idx];
      dst.splice_after(dst.before_begin(), src, src.before_begin());
    }
    ++rehash_idx_;
    ++migrated_buckets;
  }
  if (rehash_idx_ >= static_cast<std::ptrdiff_t>(tables_[0].size())) {
    tables_[0] = std::move(tables_[1]);
    tables_[1].clear();
    rehash_idx_ = -1;
  }
}

Dict::FindResult Dict::find(std::uint64_t key) {
  rehash_step();
  FindResult result;
  const int table_limit = rehashing() ? 2 : 1;
  for (int t = 0; t < table_limit; ++t) {
    Table& table = tables_[t];
    if (table.empty()) continue;
    Bucket& bucket = table[bucket_of(key, table.size())];
    for (Entry& e : bucket) {
      ++result.probes;
      if (e.key == key) {
        result.entry = &e;
        return result;
      }
    }
  }
  if (result.probes == 0) result.probes = 1;  // empty-bucket inspection
  return result;
}

Dict::UpsertResult Dict::upsert(std::uint64_t key, Record value) {
  maybe_start_rehash();
  rehash_step();
  UpsertResult result;
  const int table_limit = rehashing() ? 2 : 1;
  for (int t = 0; t < table_limit; ++t) {
    Table& table = tables_[t];
    if (table.empty()) continue;
    Bucket& bucket = table[bucket_of(key, table.size())];
    for (Entry& e : bucket) {
      ++result.probes;
      if (e.key == key) {
        e.value = std::move(value);
        result.existed = true;
        result.entry = &e;
        return result;
      }
    }
  }
  // Insert into the table new keys should land in (table 1 mid-rehash).
  Table& target = rehashing() ? tables_[1] : tables_[0];
  Bucket& bucket = target[bucket_of(key, target.size())];
  bucket.push_front(Entry{key, std::move(value)});
  ++used_;
  ++result.probes;
  result.entry = &bucket.front();
  return result;
}

Dict::EraseResult Dict::erase(std::uint64_t key) {
  rehash_step();
  EraseResult result;
  const int table_limit = rehashing() ? 2 : 1;
  for (int t = 0; t < table_limit; ++t) {
    Table& table = tables_[t];
    if (table.empty()) continue;
    Bucket& bucket = table[bucket_of(key, table.size())];
    auto prev = bucket.before_begin();
    for (auto it = bucket.begin(); it != bucket.end(); ++it, ++prev) {
      ++result.probes;
      if (it->key == key) {
        bucket.erase_after(prev);
        --used_;
        result.erased = true;
        return result;
      }
    }
  }
  return result;
}

}  // namespace mnemo::kvstore::vermilion
