#include "kvstore/vermilion/dict.hpp"

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace mnemo::kvstore::vermilion {

Dict::Dict(std::pmr::memory_resource* memory)
    : pool_(memory != nullptr ? memory : std::pmr::get_default_resource()),
      tables_{Table(pool_.get_allocator()), Table(pool_.get_allocator())} {
  tables_[0].assign(kInitialBuckets, kNil);
}

std::size_t Dict::bucket_count() const noexcept {
  return tables_[0].size() + tables_[1].size();
}

std::uint64_t Dict::overhead_bytes() const noexcept {
  // One pointer per bucket head plus a per-entry header (key, size,
  // checksum, next pointer) — the dictEntry analogue. The modelled sizes
  // describe the simulated server's layout, not this implementation's, so
  // they are unchanged by the flat storage.
  constexpr std::uint64_t kEntryHeader = 40;
  return bucket_count() * sizeof(void*) + used_ * kEntryHeader;
}

std::int32_t Dict::alloc_node(std::uint64_t key, Record&& value) {
  std::int32_t n;
  if (free_ != kNil) {
    n = free_;
    free_ = pool_[static_cast<std::size_t>(n)].next;
  } else {
    MNEMO_ASSERT(pool_.size() < static_cast<std::size_t>(kNil));
    n = static_cast<std::int32_t>(pool_.size());
    pool_.emplace_back();
  }
  Node& node = pool_[static_cast<std::size_t>(n)];
  node.entry.key = key;
  node.entry.value = std::move(value);
  node.next = kNil;
  return n;
}

void Dict::maybe_start_rehash() {
  if (rehashing()) return;
  if (used_ < tables_[0].size()) return;
  tables_[1].assign(tables_[0].size() * 2, kNil);
  rehash_idx_ = 0;
}

void Dict::rehash_step() {
  if (!rehashing()) return;
  std::size_t migrated_buckets = 0;
  while (migrated_buckets < kRehashBucketsPerOp &&
         rehash_idx_ < static_cast<std::ptrdiff_t>(tables_[0].size())) {
    std::int32_t& src = tables_[0][static_cast<std::size_t>(rehash_idx_)];
    // Pop the source chain head-first onto the destination chain heads —
    // the same order the forward_list splice_after migration produced.
    while (src != kNil) {
      const std::int32_t n = src;
      Node& node = pool_[static_cast<std::size_t>(n)];
      src = node.next;
      std::int32_t& dst =
          tables_[1][bucket_of(node.entry.key, tables_[1].size())];
      node.next = dst;
      dst = n;
    }
    ++rehash_idx_;
    ++migrated_buckets;
  }
  if (rehash_idx_ >= static_cast<std::ptrdiff_t>(tables_[0].size())) {
    tables_[0] = std::move(tables_[1]);
    tables_[1].clear();
    rehash_idx_ = -1;
  }
}

Dict::FindResult Dict::find_rehashing(std::uint64_t key,
                                      std::uint64_t hash) {
  rehash_step();
  FindResult result;
  const int table_limit = rehashing() ? 2 : 1;
  for (int t = 0; t < table_limit; ++t) {
    Table& table = tables_[t];
    if (table.empty()) continue;
    for (std::int32_t n = table[hash & (table.size() - 1)]; n != kNil;
         n = pool_[static_cast<std::size_t>(n)].next) {
      ++result.probes;
      Node& node = pool_[static_cast<std::size_t>(n)];
      if (node.entry.key == key) {
        result.entry = &node.entry;
        return result;
      }
    }
  }
  if (result.probes == 0) result.probes = 1;  // empty-bucket inspection
  return result;
}

Dict::UpsertResult Dict::upsert(std::uint64_t key, Record value,
                                std::uint64_t hash) {
  maybe_start_rehash();
  rehash_step();
  UpsertResult result;
  const int table_limit = rehashing() ? 2 : 1;
  for (int t = 0; t < table_limit; ++t) {
    Table& table = tables_[t];
    if (table.empty()) continue;
    for (std::int32_t n = table[hash & (table.size() - 1)]; n != kNil;
         n = pool_[static_cast<std::size_t>(n)].next) {
      ++result.probes;
      Node& node = pool_[static_cast<std::size_t>(n)];
      if (node.entry.key == key) {
        node.entry.value = std::move(value);
        result.existed = true;
        result.entry = &node.entry;
        return result;
      }
    }
  }
  // Insert into the table new keys should land in (table 1 mid-rehash).
  Table& target = rehashing() ? tables_[1] : tables_[0];
  std::int32_t& bucket = target[hash & (target.size() - 1)];
  const std::int32_t n = alloc_node(key, std::move(value));
  pool_[static_cast<std::size_t>(n)].next = bucket;
  bucket = n;
  ++used_;
  ++result.probes;
  result.entry = &pool_[static_cast<std::size_t>(n)].entry;
  return result;
}

Dict::EraseResult Dict::erase(std::uint64_t key) {
  rehash_step();
  EraseResult result;
  const int table_limit = rehashing() ? 2 : 1;
  for (int t = 0; t < table_limit; ++t) {
    Table& table = tables_[t];
    if (table.empty()) continue;
    std::int32_t* link = &table[bucket_of(key, table.size())];
    while (*link != kNil) {
      const std::int32_t n = *link;
      Node& node = pool_[static_cast<std::size_t>(n)];
      ++result.probes;
      if (node.entry.key == key) {
        *link = node.next;
        node.entry.value = Record{};  // release any payload promptly
        node.next = free_;
        free_ = n;
        --used_;
        result.erased = true;
        return result;
      }
      link = &node.next;
    }
  }
  return result;
}

}  // namespace mnemo::kvstore::vermilion
