#pragma once

#include <cstdint>
#include <forward_list>
#include <vector>

#include "kvstore/record.hpp"

namespace mnemo::kvstore::vermilion {

/// Redis-style chained hash table with *incremental rehash*: when the load
/// factor crosses 1.0 a second table of twice the size is created and a few
/// buckets migrate per operation, so no single request pays the full rehash
/// cost — the behaviour that keeps Redis's service times flat.
///
/// find/insert/erase report how many chain links they walked so the store
/// can charge memory latency per dependent probe.
class Dict {
 public:
  static constexpr std::size_t kInitialBuckets = 16;
  static constexpr std::size_t kRehashBucketsPerOp = 2;

  Dict();

  struct Entry {
    std::uint64_t key;
    Record value;
  };

  /// Result of a lookup: pointer into the table (invalidated by the next
  /// mutation) plus the number of chain links traversed across both tables.
  struct FindResult {
    Entry* entry = nullptr;
    std::uint32_t probes = 0;
  };

  FindResult find(std::uint64_t key);

  /// Insert a new key or overwrite an existing one. Returns the probe
  /// count and whether the key already existed.
  struct UpsertResult {
    bool existed = false;
    std::uint32_t probes = 0;
    Entry* entry = nullptr;
  };
  UpsertResult upsert(std::uint64_t key, Record value);

  /// Remove a key; returns probes and whether it was present.
  struct EraseResult {
    bool erased = false;
    std::uint32_t probes = 0;
  };
  EraseResult erase(std::uint64_t key);

  [[nodiscard]] std::size_t size() const noexcept { return used_; }
  [[nodiscard]] bool rehashing() const noexcept { return rehash_idx_ >= 0; }
  [[nodiscard]] std::size_t bucket_count() const noexcept;

  /// Bytes of table/entry bookkeeping (bucket arrays + per-entry headers),
  /// excluding payload bytes.
  [[nodiscard]] std::uint64_t overhead_bytes() const noexcept;

  /// Visit every entry (order unspecified).
  template <typename F>
  void for_each(F&& fn) const {
    for (const auto& table : tables_) {
      for (const auto& bucket : table) {
        for (const auto& e : bucket) fn(e);
      }
    }
  }

 private:
  using Bucket = std::forward_list<Entry>;
  using Table = std::vector<Bucket>;

  [[nodiscard]] static std::size_t bucket_of(std::uint64_t key,
                                             std::size_t buckets);
  void maybe_start_rehash();
  void rehash_step();

  Table tables_[2];
  std::ptrdiff_t rehash_idx_ = -1;  ///< next bucket of tables_[0] to migrate
  std::size_t used_ = 0;
};

}  // namespace mnemo::kvstore::vermilion
