#pragma once

#include <cstdint>
#include <memory_resource>
#include <vector>

#include "kvstore/record.hpp"
#include "util/rng.hpp"

namespace mnemo::kvstore::vermilion {

/// Redis-style chained hash table with *incremental rehash*: when the load
/// factor crosses 1.0 a second table of twice the size is created and a few
/// buckets migrate per operation, so no single request pays the full rehash
/// cost — the behaviour that keeps Redis's service times flat.
///
/// find/insert/erase report how many chain links they walked so the store
/// can charge memory latency per dependent probe.
///
/// Storage is flat (DESIGN.md §8): entries live in one contiguous slot
/// pool chained by int32 indices, and a bucket is just the index of its
/// chain head. Chain order, probe counts, and rehash migration order are
/// exactly those of the forward_list version this replaces — only the
/// memory layout changed (no per-entry heap node, erased slots recycled
/// through a free list).
class Dict {
 public:
  static constexpr std::size_t kInitialBuckets = 16;
  static constexpr std::size_t kRehashBucketsPerOp = 2;

  /// `memory` (optional) backs the slot pool and bucket arrays — a
  /// campaign cell's arena when one is plumbed through, the heap otherwise.
  explicit Dict(std::pmr::memory_resource* memory = nullptr);

  struct Entry {
    std::uint64_t key;
    Record value;
  };

  /// Result of a lookup: pointer into the table (invalidated by the next
  /// mutation) plus the number of chain links traversed across both tables.
  struct FindResult {
    Entry* entry = nullptr;
    std::uint32_t probes = 0;
  };

  /// Defined inline in the steady state — every Vermilion GET starts here
  /// (DESIGN.md §8). Mid-rehash lookups (which must also migrate buckets
  /// and probe both tables) take the out-of-line tail.
  ///
  /// The hash-taking overload lets campaign replay pass the precomputed
  /// util::mix64(key) (DESIGN.md §12); it MUST equal mix64(key), so probe
  /// sequences are exactly those of the hashing overload.
  FindResult find(std::uint64_t key) { return find(key, util::mix64(key)); }
  FindResult find(std::uint64_t key, std::uint64_t hash) {
    if (rehashing()) [[unlikely]] { return find_rehashing(key, hash); }
    FindResult result;
    Table& table = tables_[0];
    for (std::int32_t n = table[hash & (table.size() - 1)]; n != kNil;
         n = pool_[static_cast<std::size_t>(n)].next) {
      ++result.probes;
      Node& node = pool_[static_cast<std::size_t>(n)];
      if (node.entry.key == key) {
        result.entry = &node.entry;
        return result;
      }
    }
    if (result.probes == 0) result.probes = 1;  // empty-bucket inspection
    return result;
  }

  /// Insert a new key or overwrite an existing one. Returns the probe
  /// count and whether the key already existed.
  struct UpsertResult {
    bool existed = false;
    std::uint32_t probes = 0;
    Entry* entry = nullptr;
  };
  UpsertResult upsert(std::uint64_t key, Record value) {
    return upsert(key, std::move(value), util::mix64(key));
  }
  UpsertResult upsert(std::uint64_t key, Record value, std::uint64_t hash);

  /// Pre-size the slot pool for `n` entries. The bucket tables are NOT
  /// pre-sized: their growth schedule (incremental rehash) is part of the
  /// modelled behaviour and overhead accounting.
  void reserve(std::size_t n) { pool_.reserve(n); }

  /// Remove a key; returns probes and whether it was present.
  struct EraseResult {
    bool erased = false;
    std::uint32_t probes = 0;
  };
  EraseResult erase(std::uint64_t key);

  [[nodiscard]] std::size_t size() const noexcept { return used_; }
  [[nodiscard]] bool rehashing() const noexcept { return rehash_idx_ >= 0; }
  [[nodiscard]] std::size_t bucket_count() const noexcept;

  /// Bytes of table/entry bookkeeping (bucket arrays + per-entry headers),
  /// excluding payload bytes.
  [[nodiscard]] std::uint64_t overhead_bytes() const noexcept;

  /// Visit every entry (table 0 then table 1, buckets in order, chains
  /// front to back — the order RNG-sampling callers rely on).
  template <typename F>
  void for_each(F&& fn) const {
    for (const auto& table : tables_) {
      for (const std::int32_t head : table) {
        for (std::int32_t n = head; n != kNil; n = pool_[n].next) {
          fn(pool_[static_cast<std::size_t>(n)].entry);
        }
      }
    }
  }

 private:
  static constexpr std::int32_t kNil = -1;

  struct Node {
    Entry entry;
    std::int32_t next = kNil;
  };

  /// Bucket = index of its chain head in the pool (kNil when empty).
  using Table = std::pmr::vector<std::int32_t>;

  [[nodiscard]] static std::size_t bucket_of(std::uint64_t key,
                                             std::size_t buckets) {
    return util::mix64(key) & (buckets - 1);
  }
  FindResult find_rehashing(std::uint64_t key, std::uint64_t hash);
  [[nodiscard]] std::int32_t alloc_node(std::uint64_t key, Record&& value);
  void maybe_start_rehash();
  void rehash_step();

  std::pmr::vector<Node> pool_;
  std::int32_t free_ = kNil;  ///< recycled slots, threaded via next
  Table tables_[2];
  std::ptrdiff_t rehash_idx_ = -1;  ///< next bucket of tables_[0] to migrate
  std::size_t used_ = 0;
};

}  // namespace mnemo::kvstore::vermilion
