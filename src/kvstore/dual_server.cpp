#include "kvstore/dual_server.hpp"

#include "faultinject/fault_injector.hpp"
#include "util/assert.hpp"
#include "workload/compiled_trace.hpp"

namespace mnemo::kvstore {

DualServer::DualServer(hybridmem::HybridMemory& memory, StoreKind kind,
                       const StoreConfig& base_config)
    : kind_(kind) {
  StoreConfig fast_cfg = base_config;
  fast_cfg.node = hybridmem::NodeId::kFast;
  StoreConfig slow_cfg = base_config;
  slow_cfg.node = hybridmem::NodeId::kSlow;
  // Distinct jitter streams per instance, like two independent processes.
  slow_cfg.seed = base_config.seed ^ kSlowSeedMix;
  fast_ = make_store(kind, memory, fast_cfg);
  slow_ = make_store(kind, memory, slow_cfg);
}

util::Status DualServer::populate(const workload::Trace& trace,
                                  const hybridmem::Placement& placement) {
  MNEMO_EXPECTS(placement.key_count() == trace.key_count());
  placement_ = placement;
  key_sizes_ = std::span<const std::uint64_t>(trace.key_sizes());
  // Pre-size the platform's flat tables for the dense key range so the
  // replay loop runs allocation-free (DESIGN.md §8).
  fast_->memory().reserve_objects(
      static_cast<std::size_t>(placement.key_count()));
  // Only keys that exist before the run are loaded; keys beyond
  // initial_key_count() arrive via kInsert requests during execution.
  for (std::uint64_t key = 0; key < trace.initial_key_count(); ++key) {
    KeyValueStore& server = route(key);
    const OpResult r = server.put(key, key_sizes_[key]);
    if (!r.ok) {
      util::Error e;
      e.code = util::ErrorCode::kCapacityExhausted;
      e.message = std::string("populate: ") +
                  std::string(hybridmem::to_string(server.node())) +
                  " cannot fit key";
      e.key = key;
      e.requested_bytes = key_sizes_[key];
      e.available_bytes = server.memory().node(server.node()).free_bytes();
      return e;
    }
  }
  return {};
}

util::Status DualServer::populate(const workload::CompiledTrace& compiled,
                                  const hybridmem::Placement& placement) {
  const workload::Trace& trace = compiled.trace();
  MNEMO_EXPECTS(placement.key_count() == trace.key_count());
  placement_ = placement;
  key_sizes_ = compiled.key_sizes();
  fast_->memory().reserve_objects(
      static_cast<std::size_t>(placement.key_count()));
  // Allocation hint only: slot pools sized for the dense key range (a key
  // lives on exactly one server, so this over-reserves each pool, which an
  // arena-backed cell absorbs once); observable bucket/rehash growth
  // schedules are never pre-sized.
  fast_->reserve_keys(static_cast<std::size_t>(placement.key_count()));
  slow_->reserve_keys(static_cast<std::size_t>(placement.key_count()));
  const std::span<const std::uint64_t> hashes = compiled.key_hashes();
  const std::span<const std::uint64_t> digests = compiled.key_digests();
  for (std::uint64_t key = 0; key < trace.initial_key_count(); ++key) {
    KeyValueStore& server = route(key);
    const KeyHints hints{hashes[key], digests[key]};
    const OpResult r = server.put(key, key_sizes_[key], hints);
    if (!r.ok) {
      util::Error e;
      e.code = util::ErrorCode::kCapacityExhausted;
      e.message = std::string("populate: ") +
                  std::string(hybridmem::to_string(server.node())) +
                  " cannot fit key";
      e.key = key;
      e.requested_bytes = key_sizes_[key];
      e.available_bytes = server.memory().node(server.node()).free_bytes();
      return e;
    }
  }
  return {};
}

util::Result<OpResult> DualServer::recover_faulted_read(
    const workload::Request& request, OpResult r) {
  if (r.fault == hybridmem::FaultKind::kPoisoned) {
    // The SlowMem copy is uncorrectable: remap the key to FastMem (the
    // move recovers the record at the plan's remap cost) and re-serve the
    // request from there. Everything is charged to this request.
    const util::Result<double> moved =
        move_key(request.key, hybridmem::NodeId::kFast);
    faultinject::FaultInjector* inj =
        fast_->memory().fault_injector();
    if (!moved.ok()) {
      // Destination full: serve in place, paying the recovery cost on
      // every poisoned read instead of once.
      r.service_ns += inj != nullptr ? inj->plan().poison_remap_cost_ns : 0.0;
      return r;
    }
    OpResult again = fast_->get(request.key);
    again.service_ns += r.service_ns + moved.value();
    again.fault = hybridmem::FaultKind::kPoisoned;
    return again;
  }
  if (!r.ok && r.fault == hybridmem::FaultKind::kTransient) {
    const faultinject::FaultInjector* inj =
        fast_->memory().fault_injector();
    util::Error e;
    e.code = util::ErrorCode::kFaultInjected;
    e.message = "read failed: transient SlowMem fault retries exhausted";
    e.key = request.key;
    e.attempts = inj != nullptr ? inj->plan().transient_max_retries : 0;
    return e;
  }
  return r;
}

util::Result<double> DualServer::move_key(std::uint64_t key,
                                          hybridmem::NodeId to) {
  MNEMO_EXPECTS(key < key_sizes_.size());
  if (placement_.node_of(key) == to) return 0.0;
  KeyValueStore& src = route(key);
  KeyValueStore& dst =
      to == hybridmem::NodeId::kFast ? *fast_ : *slow_;
  double cost = 0.0;

  // With faults armed, migrating a record means actually reading it off
  // the source medium first. Transient faults are retried with exponential
  // backoff in simulated time; a poisoned source is recovered once at the
  // remap cost. On a healthy platform this read is skipped entirely so
  // fault-free timing is unchanged.
  faultinject::FaultInjector* inj = src.memory().fault_injector();
  if (inj != nullptr && src.node() == hybridmem::NodeId::kSlow) {
    double backoff_ns = inj->plan().transient_retry_cost_ns;
    int attempts = 0;
    for (;;) {
      const OpResult peek = src.get(key);
      cost += peek.service_ns;
      if (peek.fault == hybridmem::FaultKind::kPoisoned) {
        cost += inj->plan().poison_remap_cost_ns;
        break;
      }
      if (peek.ok) break;
      MNEMO_EXPECTS(peek.fault == hybridmem::FaultKind::kTransient &&
                    "move_key requires the key to be resident");
      ++attempts;
      if (attempts > inj->plan().transient_max_retries) {
        util::Error e;
        e.code = util::ErrorCode::kRetriesExhausted;
        e.message = "move_key: migration read kept faulting";
        e.key = key;
        e.attempts = attempts;
        return e;
      }
      cost += backoff_ns;
      backoff_ns *= 2.0;
    }
  }

  // The structural move itself (delete + re-insert + possible restore)
  // must not consume fault events: it models metadata operations, and a
  // fault mid-restore would corrupt the deployment invariant that every
  // key stays resident somewhere.
  faultinject::FaultPause pause(inj);
  const OpResult out = src.erase(key);
  MNEMO_EXPECTS(out.ok);
  const OpResult in = dst.put(key, key_sizes_[key]);
  if (!in.ok) {
    // Destination full: put the record back where it was.
    const OpResult restore = src.put(key, key_sizes_[key]);
    MNEMO_ASSERT(restore.ok);
    util::Error e;
    e.code = util::ErrorCode::kCapacityExhausted;
    e.message = std::string("move_key: ") +
                std::string(hybridmem::to_string(to)) + " cannot fit key";
    e.key = key;
    e.requested_bytes = key_sizes_[key];
    e.available_bytes = dst.memory().node(to).free_bytes();
    return e;
  }
  placement_.set(key, to);
  return cost + out.service_ns + in.service_ns;
}

StoreStats DualServer::combined_stats() const {
  StoreStats s = fast_->stats();
  const StoreStats& t = slow_->stats();
  s.gets += t.gets;
  s.puts += t.puts;
  s.erases += t.erases;
  s.hits += t.hits;
  s.misses += t.misses;
  s.evictions += t.evictions;
  s.busy_ns += t.busy_ns;
  return s;
}

}  // namespace mnemo::kvstore
