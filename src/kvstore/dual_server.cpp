#include "kvstore/dual_server.hpp"

#include "util/assert.hpp"

namespace mnemo::kvstore {

DualServer::DualServer(hybridmem::HybridMemory& memory, StoreKind kind,
                       const StoreConfig& base_config)
    : kind_(kind) {
  StoreConfig fast_cfg = base_config;
  fast_cfg.node = hybridmem::NodeId::kFast;
  StoreConfig slow_cfg = base_config;
  slow_cfg.node = hybridmem::NodeId::kSlow;
  // Distinct jitter streams per instance, like two independent processes.
  slow_cfg.seed = base_config.seed ^ 0x510'3141ULL;
  fast_ = make_store(kind, memory, fast_cfg);
  slow_ = make_store(kind, memory, slow_cfg);
}

KeyValueStore& DualServer::route(std::uint64_t key) {
  return placement_.node_of(key) == hybridmem::NodeId::kFast ? *fast_
                                                             : *slow_;
}

void DualServer::populate(const workload::Trace& trace,
                          const hybridmem::Placement& placement) {
  MNEMO_EXPECTS(placement.key_count() == trace.key_count());
  placement_ = placement;
  key_sizes_ = trace.key_sizes();
  // Only keys that exist before the run are loaded; keys beyond
  // initial_key_count() arrive via kInsert requests during execution.
  for (std::uint64_t key = 0; key < trace.initial_key_count(); ++key) {
    const OpResult r = route(key).put(key, key_sizes_[key]);
    MNEMO_ASSERT(r.ok && "populate must fit the configured node capacities");
  }
}

OpResult DualServer::execute(const workload::Request& request) {
  MNEMO_EXPECTS(request.key < key_sizes_.size());
  KeyValueStore& server = route(request.key);
  if (request.op == workload::OpType::kRead) {
    return server.get(request.key);
  }
  // kUpdate overwrites in place; kInsert creates the key (same put path —
  // the stores upsert).
  return server.put(request.key, key_sizes_[request.key]);
}

double DualServer::move_key(std::uint64_t key, hybridmem::NodeId to) {
  MNEMO_EXPECTS(key < key_sizes_.size());
  if (placement_.node_of(key) == to) return 0.0;
  KeyValueStore& src = route(key);
  KeyValueStore& dst =
      to == hybridmem::NodeId::kFast ? *fast_ : *slow_;
  const OpResult out = src.erase(key);
  MNEMO_EXPECTS(out.ok);
  const OpResult in = dst.put(key, key_sizes_[key]);
  if (!in.ok) {
    // Destination full: put the record back where it was.
    const OpResult restore = src.put(key, key_sizes_[key]);
    MNEMO_ASSERT(restore.ok);
    return -1.0;
  }
  placement_.set(key, to);
  return out.service_ns + in.service_ns;
}

StoreStats DualServer::combined_stats() const {
  StoreStats s = fast_->stats();
  const StoreStats& t = slow_->stats();
  s.gets += t.gets;
  s.puts += t.puts;
  s.erases += t.erases;
  s.hits += t.hits;
  s.misses += t.misses;
  s.evictions += t.evictions;
  s.busy_ns += t.busy_ns;
  return s;
}

}  // namespace mnemo::kvstore
