#include "faultinject/fault_plan.hpp"

#include <cstdio>
#include <stdexcept>

namespace mnemo::faultinject {

std::string_view to_string(FailPolicy policy) {
  return policy == FailPolicy::kAbort ? "abort" : "degrade";
}

FailPolicy parse_fail_policy(const std::string& name) {
  if (name == "abort") return FailPolicy::kAbort;
  if (name == "degrade") return FailPolicy::kDegrade;
  throw std::invalid_argument("--fail-policy: expected abort or degrade, got " +
                              name);
}

std::string FaultPlan::summary() const {
  if (empty()) return "no faults";
  char buf[256];
  std::string out;
  if (transient_read_rate > 0.0) {
    std::snprintf(buf, sizeof buf,
                  "transient reads %.2g (retries %d @ %.0f ns, recover %.2f)",
                  transient_read_rate, transient_max_retries,
                  transient_retry_cost_ns, transient_recover_prob);
    out += buf;
  }
  if (poison_rate > 0.0) {
    if (!out.empty()) out += "; ";
    std::snprintf(buf, sizeof buf, "poisoned lines %.2g (remap %.0f ns)",
                  poison_rate, poison_remap_cost_ns);
    out += buf;
  }
  if (bw_period_accesses > 0) {
    if (!out.empty()) out += "; ";
    std::snprintf(buf, sizeof buf,
                  "bandwidth windows %llu/%llu accesses at %.2fx",
                  static_cast<unsigned long long>(bw_window_accesses),
                  static_cast<unsigned long long>(bw_period_accesses),
                  bw_degraded_factor);
    out += buf;
  }
  return out;
}

void FaultPlan::check() const {
  auto fail = [](const std::string& what) {
    throw std::invalid_argument("fault plan: " + what);
  };
  if (transient_read_rate < 0.0 || transient_read_rate > 1.0) {
    fail("transient rate must be in [0, 1]");
  }
  if (transient_max_retries < 0) fail("retries must be >= 0");
  if (transient_retry_cost_ns < 0.0) fail("retry_cost must be >= 0");
  if (transient_recover_prob < 0.0 || transient_recover_prob > 1.0) {
    fail("recover must be in [0, 1]");
  }
  if (poison_rate < 0.0 || poison_rate > 1.0) {
    fail("poison rate must be in [0, 1]");
  }
  if (poison_remap_cost_ns < 0.0) fail("remap_cost must be >= 0");
  if (bw_period_accesses > 0) {
    if (bw_window_accesses == 0) fail("bw_window must be > 0");
    if (bw_window_accesses > bw_period_accesses) {
      fail("bw_window must be <= bw_period");
    }
    if (bw_degraded_factor <= 0.0 || bw_degraded_factor > 1.0) {
      fail("bw_factor must be in (0, 1]");
    }
  }
}

namespace {

double parse_num(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const double v = std::stod(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("--faults: " + key + ": not a number: " +
                                value);
  }
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("--faults: expected key=value, got '" +
                                  item + "'");
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "seed") {
      plan.seed = static_cast<std::uint64_t>(parse_num(key, value));
    } else if (key == "transient") {
      plan.transient_read_rate = parse_num(key, value);
    } else if (key == "retries") {
      plan.transient_max_retries = static_cast<int>(parse_num(key, value));
    } else if (key == "retry_cost") {
      plan.transient_retry_cost_ns = parse_num(key, value);
    } else if (key == "recover") {
      plan.transient_recover_prob = parse_num(key, value);
    } else if (key == "poison") {
      plan.poison_rate = parse_num(key, value);
    } else if (key == "remap_cost") {
      plan.poison_remap_cost_ns = parse_num(key, value);
    } else if (key == "bw_period") {
      plan.bw_period_accesses =
          static_cast<std::uint64_t>(parse_num(key, value));
    } else if (key == "bw_window") {
      plan.bw_window_accesses =
          static_cast<std::uint64_t>(parse_num(key, value));
    } else if (key == "bw_factor") {
      plan.bw_degraded_factor = parse_num(key, value);
    } else {
      throw std::invalid_argument(
          "--faults: unknown key '" + key +
          "' (valid: seed, transient, retries, retry_cost, recover, "
          "poison, remap_cost, bw_period, bw_window, bw_factor)");
    }
  }
  plan.check();
  return plan;
}

}  // namespace mnemo::faultinject
