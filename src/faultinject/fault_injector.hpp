#pragma once

#include <cstdint>

#include "faultinject/fault_plan.hpp"
#include "util/rng.hpp"

namespace mnemo::faultinject {

/// Deterministic per-deployment fault source. One injector belongs to one
/// HybridMemory instance (shared-nothing, like everything per-cell) and is
/// consulted on every SlowMem LLC-miss access. All randomness comes from a
/// private xoshiro stream seeded by (plan.seed, stream); the poison set is
/// a pure hash of the same pair — so a (plan, stream) pair replays
/// bit-identically, and an injector that triggers zero events leaves the
/// deployment's timing exactly equal to the fault-free platform's.
class FaultInjector {
 public:
  FaultInjector(const FaultPlan& plan, std::uint64_t stream);

  /// Outcome of the transient-fault draw for one SlowMem read.
  struct ReadOutcome {
    bool faulted = false;  ///< the read drew a transient fault
    bool failed = false;   ///< retries exhausted; the access failed
    int retries = 0;       ///< retry attempts performed
    double extra_ns = 0.0;  ///< simulated retry cost to add to the access
  };

  /// Permanent-fault membership: true iff `object_id`'s SlowMem copy is
  /// poisoned. Pure (no state advanced) and stable for the injector's
  /// lifetime; reads must be remapped by the caller.
  [[nodiscard]] bool poisoned(std::uint64_t object_id) const noexcept;

  /// Draw the transient-fault outcome for one SlowMem read. The private
  /// RNG advances a deterministic number of draws per call, so the stream
  /// position depends only on the access sequence.
  ReadOutcome on_slow_read();

  /// Bandwidth multiplier for the next SlowMem access; advances the
  /// window clock. 1.0 outside degradation episodes.
  double next_bandwidth_factor();

  /// Count a poisoned read the caller is about to remap.
  void note_poison_hit() noexcept { ++stats_.poison_hits; }

  /// Suppression: while paused() the memory layer must not consult the
  /// injector at all (structural moves, restores). Managed by FaultPause.
  void pause() noexcept { ++pause_depth_; }
  void resume() noexcept { --pause_depth_; }
  [[nodiscard]] bool paused() const noexcept { return pause_depth_ > 0; }

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] std::uint64_t stream() const noexcept { return stream_; }
  [[nodiscard]] const FaultStats& stats() const noexcept { return stats_; }

 private:
  FaultPlan plan_;
  std::uint64_t stream_;
  std::uint64_t poison_salt_;
  util::Rng rng_;
  FaultStats stats_;
  std::uint64_t slow_accesses_ = 0;  ///< bw window clock
  int pause_depth_ = 0;
};

/// RAII suppression scope around structural operations (the erase/put/
/// restore legs of a key move) that must not consume fault events. Safe on
/// a null injector (healthy platform).
class FaultPause {
 public:
  explicit FaultPause(FaultInjector* injector) noexcept
      : injector_(injector) {
    if (injector_ != nullptr) injector_->pause();
  }
  ~FaultPause() {
    if (injector_ != nullptr) injector_->resume();
  }
  FaultPause(const FaultPause&) = delete;
  FaultPause& operator=(const FaultPause&) = delete;

 private:
  FaultInjector* injector_;
};

}  // namespace mnemo::faultinject
