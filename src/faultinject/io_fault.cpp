#include "faultinject/io_fault.hpp"

#include <atomic>
#include <chrono>
#include <thread>
#include <utility>

#include "util/assert.hpp"
#include "util/hash.hpp"

namespace mnemo::faultinject {

namespace {

/// The one installed injector. Plain pointer behind an atomic: the
/// production fast path (no chaos) is a single relaxed load of nullptr.
/// Installation/removal happens only from ScopedIoFaults on a test
/// thread while no chaos consumers run, enforced by the nesting assert.
std::atomic<IoFaultInjector*> g_injector{nullptr};

/// Uniform [0,1) from a 128-bit stable hash — the same draw-by-hash trick
/// the poison set uses: pure in its inputs, so replayable anywhere.
double unit_draw(std::uint64_t seed, std::string_view site,
                 std::uint64_t ordinal) {
  util::StableHasher h;
  h.u64(seed);
  h.str(site);
  h.u64(ordinal);
  return static_cast<double>(h.lo() >> 11) * 0x1.0p-53;
}

}  // namespace

IoFaultInjector::IoFaultInjector(IoFaultPlan plan) : plan_(plan) {}

util::WriteFault IoFaultInjector::on_write(const std::string& path) {
  std::uint64_t ordinal = 0;
  {
    std::lock_guard lock(mu_);
    ordinal = write_ordinal_[path]++;
    ++stats_.writes_seen;
  }
  util::WriteFault fault;
  // Two independent draws per (path, ordinal) site: a write can fail to
  // open or tear, not both, with open-failure drawn first so the two
  // rates stay independently tunable.
  if (plan_.write_fail_rate > 0.0 &&
      unit_draw(plan_.seed, "write-fail:" + path, ordinal) <
          plan_.write_fail_rate) {
    fault.fail_open = true;
    std::lock_guard lock(mu_);
    ++stats_.write_failures;
    return fault;
  }
  if (plan_.torn_write_rate > 0.0 &&
      unit_draw(plan_.seed, "torn:" + path, ordinal) <
          plan_.torn_write_rate) {
    // Clamp strictly below 1.0: a plan fraction of 1.0 would otherwise
    // read as "not torn" and silently drop the injected crash.
    fault.torn_fraction =
        plan_.torn_fraction < 1.0 ? plan_.torn_fraction : 0.999;
    std::lock_guard lock(mu_);
    ++stats_.torn_writes;
  }
  return fault;
}

double IoFaultInjector::cell_delay_ms(std::size_t cell) {
  if (plan_.slow_cell_rate <= 0.0 || plan_.slow_cell_ms <= 0.0) return 0.0;
  if (unit_draw(plan_.seed, "slow-cell", cell) >= plan_.slow_cell_rate) {
    return 0.0;
  }
  std::lock_guard lock(mu_);
  ++stats_.delayed_cells;
  return plan_.slow_cell_ms;
}

IoFaultStats IoFaultInjector::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

ScopedIoFaults::ScopedIoFaults(IoFaultPlan plan) : injector_(plan) {
  IoFaultInjector* expected = nullptr;
  const bool installed = g_injector.compare_exchange_strong(
      expected, &injector_, std::memory_order_release,
      std::memory_order_relaxed);
  MNEMO_ASSERT(installed && "nested ScopedIoFaults");
  util::set_write_fault_hook([this](const std::string& path) {
    return injector_.on_write(path);
  });
}

ScopedIoFaults::~ScopedIoFaults() {
  util::set_write_fault_hook(nullptr);
  g_injector.store(nullptr, std::memory_order_release);
}

void chaos_cell_delay(std::size_t cell) {
  IoFaultInjector* injector = g_injector.load(std::memory_order_acquire);
  if (injector == nullptr) return;
  const double ms = injector->cell_delay_ms(cell);
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::milli>(ms));
}

void chaos_band_delay(std::size_t first, std::size_t count) {
  IoFaultInjector* injector = g_injector.load(std::memory_order_acquire);
  if (injector == nullptr) return;
  double ms = 0.0;
  // One draw (and one stat bump when it hits) per member cell, exactly as
  // if the band's cells had stalled individually; the sleeps coalesce.
  for (std::size_t i = 0; i < count; ++i) {
    ms += injector->cell_delay_ms(first + i);
  }
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::milli>(ms));
}

}  // namespace mnemo::faultinject
